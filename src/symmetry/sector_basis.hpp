// SectorBasis: combinatorial enumeration of a U(1) number-conserved sector.
//
// Every Hamiltonian this library targets conserves particle number (the
// Hubbard builders are pinned to [H, N] = 0 at the CAR and Pauli level), yet
// the full statevector carries all 2^n amplitudes. A SectorBasis enumerates
// only the occupation configurations with fixed particle count — per
// *species*: a set of disjoint qubit masks, each with its own conserved
// count, so a spinful (N_up, N_down) product sector is the two-species case
// and a plain fixed-N sector the one-species case. The half-filled (5,5)
// sector of the n = 20 spinful lattice has C(10,5)^2 = 63,504 configurations
// against 2^20 = 1,048,576 full-space amplitudes, and the ratio grows fast
// enough with n to bring n = 28-32 lattices inside the Krylov machinery.
//
// Ranking is combinadic (table-driven): within one species the compacted
// occupation word w with set bits p_1 < ... < p_k has
// rank(w) = sum_i C(p_i, i), which enumerates the C(bits, k) words in
// ascending numeric order; species compose mixed-radix with species 0
// fastest. rank/unrank are O(n) table lookups with no allocation, so the
// sector-restricted operator kernels (src/symmetry/sector_operator.hpp) can
// rank on the hot path. See DESIGN.md "Symmetry sectors".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gecos {

/// One conserved species of a sector: `count` particles on the qubits of
/// `mask` (bit q of a configuration = occupation of qubit/JW mode q).
struct SpeciesSector {
  std::uint64_t mask = 0;  ///< occupation bits belonging to this species
  std::size_t count = 0;   ///< conserved particle number on those bits
};

/// Enumeration of the occupation configurations of a product of
/// fixed-particle-number species, with O(n) table-driven rank/unrank.
class SectorBasis {
 public:
  /// Sector over n_qubits (1..63) from explicit species. The species masks
  /// must be nonzero, pairwise disjoint, and cover all n qubits; each count
  /// must not exceed its mask's popcount. Throws std::invalid_argument on
  /// any violation; a structurally valid sector whose dimension would
  /// overflow size_t throws Error{dim_mismatch} with the offending sizes.
  SectorBasis(std::size_t n_qubits, std::vector<SpeciesSector> species);

  /// Single-species sector: `count` particles anywhere on n_qubits.
  static SectorBasis fixed_number(std::size_t n_qubits, std::size_t count);
  /// Spinful (N_up, N_down) product sector in the spin-fastest mode layout
  /// of fermion/hubbard.hpp: up modes are the even qubits, down modes the
  /// odd qubits. n_qubits must be even.
  static SectorBasis spinful(std::size_t n_qubits, std::size_t n_up,
                             std::size_t n_down);

  /// Full-space qubit count n and sector dimension (product of the
  /// per-species binomials).
  std::size_t n_qubits() const { return n_qubits_; }
  std::size_t dim() const { return dim_; }

  /// The species (mask, count) pairs, in construction order (= mixed-radix
  /// order, species 0 fastest).
  std::vector<SpeciesSector> species() const;

  /// True when the configuration lies in the sector (per-species popcounts
  /// match; no occupation outside the species masks).
  bool contains(std::uint64_t config) const;

  /// Rank of a configuration, in [0, dim()). Precondition (debug-asserted):
  /// contains(config). Allocation-free.
  std::size_t rank(std::uint64_t config) const;

  /// Configuration of rank r (inverse of rank). Precondition
  /// (debug-asserted): r < dim(). Allocation-free.
  std::uint64_t config_at(std::size_t r) const;

  /// The rank-0 configuration (each species' count lowest mask bits set).
  std::uint64_t first_config() const;

  /// Successor in rank order: config_at(rank(config) + 1), via per-species
  /// Gosper steps instead of a full unrank. Precondition (debug-asserted):
  /// contains(config); the successor of the last configuration wraps to
  /// first_config(). Allocation-free.
  std::uint64_t next_config(std::uint64_t config) const;

  /// Two bases are equal when they enumerate the same sector: same qubit
  /// count and same (mask, count) species sequence.
  bool operator==(const SectorBasis& o) const;

 private:
  /// Per-species enumeration data, precomputed at construction.
  struct Species {
    std::uint64_t mask = 0;    // occupation bits of the species
    std::size_t count = 0;     // conserved popcount
    std::size_t bits = 0;      // popcount(mask)
    std::size_t dim = 0;       // C(bits, count)
    std::size_t stride = 0;    // mixed-radix stride in the sector rank
    std::uint64_t bottom = 0;  // compact word of the lowest member
    std::uint64_t top = 0;     // compact word of the highest member
  };

  std::size_t n_qubits_ = 0;
  std::size_t dim_ = 0;
  std::vector<Species> species_;
};

}  // namespace gecos
