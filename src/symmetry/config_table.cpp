#include "symmetry/config_table.hpp"

#include <map>
#include <mutex>
#include <string>

#include "telemetry/telemetry.hpp"

namespace gecos {

namespace {

// Registry key: the serialized sector descriptor — exactly the domain of
// SectorBasis::operator==, so equal bases collide and distinct bases never
// do. Raw bytes in a std::string keep the map ordering deterministic
// without a hash.
std::string descriptor_key(const SectorBasis& basis) {
  std::string key;
  auto put_u64 = [&key](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      key.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  put_u64(basis.n_qubits());
  for (const SpeciesSector& s : basis.species()) {
    put_u64(s.mask);
    put_u64(s.count);
  }
  return key;
}

struct TableRegistry {
  std::mutex mutex;
  std::map<std::string, std::weak_ptr<const ConfigTable>> slots;
};

// Leaked (never destroyed): operators owning shared tables may be torn
// down during static destruction, after a registry with static storage
// duration would already be gone.
TableRegistry& registry() {
  static TableRegistry* r = new TableRegistry;
  return *r;
}

}  // namespace

std::shared_ptr<const ConfigTable> shared_config_table(
    const SectorBasis& basis) {
  TableRegistry& reg = registry();
  const std::string key = descriptor_key(basis);
  std::scoped_lock<std::mutex> lk(reg.mutex);
  // Sweep expired slots opportunistically so the map never grows beyond
  // the set of sectors ever used plus dead entries from the current locked
  // section's perspective.
  for (auto it = reg.slots.begin(); it != reg.slots.end();)
    it = it->second.expired() ? reg.slots.erase(it) : std::next(it);
  auto it = reg.slots.find(key);
  if (it != reg.slots.end()) {
    if (auto live = it->second.lock()) {
      telemetry::count(telemetry::Counter::sector_table_hits);
      return live;
    }
  }
  // Build under the lock: two threads racing on the same large sector
  // would otherwise both pay the enumeration walk, and the walk is cheap
  // relative to the solves that follow it.
  auto table = std::make_shared<ConfigTable>(basis.dim());
  std::uint64_t cfg = basis.first_config();
  for (std::size_t r = 0; r < table->size(); ++r) {
    (*table)[r] = cfg;
    cfg = basis.next_config(cfg);
  }
  reg.slots[key] = table;
  telemetry::count(telemetry::Counter::sector_table_builds);
  return table;
}

std::size_t config_table_registry_size() {
  TableRegistry& reg = registry();
  std::scoped_lock<std::mutex> lk(reg.mutex);
  return reg.slots.size();
}

}  // namespace gecos
