#include "symmetry/sector_basis.hpp"

#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace gecos {

namespace {

/// Pascal's triangle up to n = 64 (the configuration word width). Every
/// C(n, k) with n <= 64 fits in a uint64_t (the largest is C(64, 32) ~
/// 1.8e18); computed once at static-initialization time, so the rank/unrank
/// hot paths are pure table lookups.
struct BinomTable {
  std::uint64_t c[65][65] = {};
  BinomTable() {
    for (int n = 0; n <= 64; ++n) {
      c[n][0] = 1;
      for (int k = 1; k <= n; ++k) c[n][k] = c[n - 1][k - 1] + c[n - 1][k];
    }
  }
};
const BinomTable kBinom;

/// Combinadic (colex) rank of a compact fixed-weight word: set bits
/// p_1 < ... < p_k contribute sum_i C(p_i, i), which orders the C(bits, k)
/// words ascending numerically.
std::size_t combinadic_rank(std::uint64_t w) {
  std::size_t r = 0;
  int i = 1;
  while (w != 0) {
    const int p = std::countr_zero(w);
    r += static_cast<std::size_t>(kBinom.c[p][i]);
    ++i;
    w &= w - 1;
  }
  return r;
}

/// Inverse of combinadic_rank for a word of `count` set bits among `bits`
/// positions: greedily place the highest bit first (largest p with
/// C(p, i) <= r). O(bits) — the candidate position only ever decreases.
std::uint64_t combinadic_unrank(std::size_t r, std::size_t bits,
                                std::size_t count) {
  std::uint64_t w = 0;
  std::size_t p = bits;  // exclusive upper bound on the next position
  for (std::size_t i = count; i >= 1; --i) {
    --p;
    while (kBinom.c[p][i] > r) --p;
    w |= std::uint64_t{1} << p;
    r -= static_cast<std::size_t>(kBinom.c[p][i]);
  }
  return w;
}

}  // namespace

SectorBasis::SectorBasis(std::size_t n_qubits,
                         std::vector<SpeciesSector> species) {
  if (n_qubits < 1 || n_qubits > 63)
    throw std::invalid_argument("SectorBasis: need 1 <= n_qubits <= 63");
  if (species.empty())
    throw std::invalid_argument("SectorBasis: need at least one species");
  n_qubits_ = n_qubits;
  const std::uint64_t all = (std::uint64_t{1} << n_qubits) - 1;
  std::uint64_t covered = 0;
  dim_ = 1;
  for (const SpeciesSector& s : species) {
    if (s.mask == 0)
      throw std::invalid_argument("SectorBasis: empty species mask");
    if ((s.mask & ~all) != 0)
      throw std::invalid_argument("SectorBasis: species mask exceeds n_qubits");
    if ((s.mask & covered) != 0)
      throw std::invalid_argument("SectorBasis: species masks must be disjoint");
    covered |= s.mask;
    Species sp;
    sp.mask = s.mask;
    sp.count = s.count;
    sp.bits = static_cast<std::size_t>(std::popcount(s.mask));
    if (s.count > sp.bits)
      throw std::invalid_argument("SectorBasis: count exceeds species size");
    sp.dim = static_cast<std::size_t>(kBinom.c[sp.bits][sp.count]);
    sp.stride = dim_;
    sp.bottom = (s.count == 0) ? 0 : (~std::uint64_t{0} >> (64 - s.count));
    sp.top = sp.bottom << (sp.bits - s.count);
    // Resource condition, not API misuse: a structurally valid sector whose
    // dimension product overflows size_t gets the structured taxonomy with
    // the offending numbers instead of undefined wraparound.
    if (dim_ > std::numeric_limits<std::size_t>::max() / sp.dim)
      throw Error(ErrorKind::dim_mismatch,
                  "SectorBasis: sector dimension overflow at species " +
                      std::to_string(species_.size()) + " (partial dim " +
                      std::to_string(dim_) + " x species dim " +
                      std::to_string(sp.dim) + " exceeds size_t)");
    dim_ *= sp.dim;
    species_.push_back(sp);
  }
  if (covered != all)
    throw std::invalid_argument(
        "SectorBasis: species masks must cover all qubits");
}

SectorBasis SectorBasis::fixed_number(std::size_t n_qubits,
                                      std::size_t count) {
  if (n_qubits < 1 || n_qubits > 63)
    throw std::invalid_argument("SectorBasis: need 1 <= n_qubits <= 63");
  const std::uint64_t all = (std::uint64_t{1} << n_qubits) - 1;
  return SectorBasis(n_qubits, {{all, count}});
}

SectorBasis SectorBasis::spinful(std::size_t n_qubits, std::size_t n_up,
                                 std::size_t n_down) {
  if (n_qubits < 2 || n_qubits > 63 || n_qubits % 2 != 0)
    throw std::invalid_argument(
        "SectorBasis::spinful: need an even n_qubits in [2, 62]");
  const std::uint64_t all = (std::uint64_t{1} << n_qubits) - 1;
  const std::uint64_t even = all / 3;  // 0b...010101: the up (spin-0) modes
  return SectorBasis(n_qubits, {{even, n_up}, {all & ~even, n_down}});
}

std::vector<SpeciesSector> SectorBasis::species() const {
  std::vector<SpeciesSector> out;
  out.reserve(species_.size());
  for (const Species& s : species_) out.push_back({s.mask, s.count});
  return out;
}

bool SectorBasis::contains(std::uint64_t config) const {
  if ((config >> n_qubits_) != 0) return false;
  for (const Species& s : species_)
    if (static_cast<std::size_t>(std::popcount(config & s.mask)) != s.count)
      return false;
  return true;
}

std::size_t SectorBasis::rank(std::uint64_t config) const {
  assert(contains(config));
  std::size_t r = 0;
  for (const Species& s : species_)
    r += combinadic_rank(gather_bits(config, s.mask)) * s.stride;
  return r;
}

std::uint64_t SectorBasis::config_at(std::size_t r) const {
  assert(r < dim_);
  std::uint64_t config = 0;
  for (const Species& s : species_) {
    const std::size_t rs = (r / s.stride) % s.dim;
    config |= scatter_bits(combinadic_unrank(rs, s.bits, s.count), s.mask);
  }
  return config;
}

std::uint64_t SectorBasis::first_config() const {
  std::uint64_t config = 0;
  for (const Species& s : species_) config |= scatter_bits(s.bottom, s.mask);
  return config;
}

std::uint64_t SectorBasis::next_config(std::uint64_t config) const {
  assert(contains(config));
  // Mixed-radix increment, species 0 fastest: advance the first species that
  // has a successor, resetting the ones that wrapped below it.
  for (const Species& s : species_) {
    const std::uint64_t w = gather_bits(config, s.mask);
    if (s.dim > 1 && w != s.top)
      return (config & ~s.mask) | scatter_bits(next_same_popcount(w), s.mask);
    config = (config & ~s.mask) | scatter_bits(s.bottom, s.mask);
  }
  return config;  // every species wrapped: back to first_config()
}

bool SectorBasis::operator==(const SectorBasis& o) const {
  if (n_qubits_ != o.n_qubits_ || species_.size() != o.species_.size())
    return false;
  for (std::size_t i = 0; i < species_.size(); ++i)
    if (species_[i].mask != o.species_[i].mask ||
        species_[i].count != o.species_[i].count)
      return false;
  return true;
}

}  // namespace gecos
