// SectorOperator: a number-conserving Hamiltonian restricted to a sector.
//
// Takes a symbolic sum (ScbSum or PauliSum) that commutes with every species
// number operator of a SectorBasis and applies it matrix-free *within* the
// sector: the LinearOperator dim() is the sector dimension, so Lanczos,
// KrylovEvolver and the imaginary-time projector run on sector vectors
// unchanged — same interface, exponentially fewer amplitudes.
//
// Construction first rewrites the sum into *transition-canonical* form:
// every X/Y factor branches into the transition family (X = s + s+,
// Y = i s+ - i s; 2^f words per term with f X/Y factors, f = 0 for every
// Jordan-Wigner-derived fermionic sum), and identical words merge. This
// matters because the SCB spans the single-qubit operator space with eight
// elements, so a sum can be number-conserving as an OPERATOR while no
// individual word is (XX + YY hopping); after canonicalization each word
// moves a definite particle count per species, branches that cancel
// (s+ s+ of XX against YY) vanish exactly, and conservation becomes a
// per-word test: any surviving word with a nonzero species number change
// makes construction throw. (Sums that conserve only through diagonal
// identities like I = n + m split across words are rejected conservatively
// — none of the builders in this repo produce such forms.)
//
// Each surviving word then compiles into a mask kernel (the
// flip/select/sign decomposition of ops/term.hpp's TermKernel). All
// *diagonal* kernels (no flips — the U and mu terms of a Hubbard
// Hamiltonian) are folded into ONE precomputed per-rank diagonal vector at
// construction, so they cost a single fused pass per apply instead of one
// sweep each; every *hop* kernel moves each selected configuration to its
// ranked image rank(x ^ flip), which conservation guarantees is in the
// sector. The rank -> configuration table is also precomputed (8 bytes per
// sector state), so the hot loop never walks the enumeration.
//
// apply_add parallelizes the diagonal pass and each hop kernel over
// contiguous rank chunks of the input; a kernel's configuration map
// x -> x ^ flip is a bijection, so no two chunks ever write the same output
// rank (the library-wide output-partitioning rule) and results are
// deterministic for any thread count. Nothing allocates after
// construction. See DESIGN.md "Symmetry sectors".
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ops/linear_op.hpp"
#include "ops/pauli.hpp"
#include "ops/scb_sum.hpp"
#include "symmetry/config_table.hpp"
#include "symmetry/sector_basis.hpp"

namespace gecos {

/// Matrix-free restriction of a number-conserving operator to a sector.
class SectorOperator : public LinearOperator {
 public:
  /// Compiles the sum's bare terms into sector kernels. Throws
  /// std::invalid_argument when the sum is empty, its qubit count differs
  /// from the basis, or the transition-canonical conservation check finds a
  /// word with a nonzero species particle-number change.
  SectorOperator(SectorBasis basis, const ScbSum& h);
  /// Same, from a Pauli-string sum (each string is an SCB word already).
  SectorOperator(SectorBasis basis, const PauliSum& h);

  /// The sector enumeration this operator is restricted to.
  const SectorBasis& basis() const { return basis_; }
  /// Full-space qubit count n of the underlying operator.
  std::size_t n_qubits() const override { return basis_.n_qubits(); }
  /// Sector dimension — the vector length apply_add works on (NOT 2^n).
  std::size_t dim() const override { return basis_.dim(); }
  /// Surviving transition-canonical words: hop kernels plus the number of
  /// diagonal words fused into the precomputed diagonal (X/Y factors branch
  /// at construction and canceling branches merge away, so this can differ
  /// from the input term count).
  std::size_t num_kernels() const { return kernels_.size() + num_diagonal_; }
  /// Hop (off-diagonal) kernels only — the per-apply sweeps after the fused
  /// diagonal pass (used by the bench traffic model).
  std::size_t num_hop_kernels() const { return kernels_.size(); }
  /// True when a fused precomputed diagonal pass runs per apply.
  bool has_fused_diagonal() const { return !diag_.empty(); }
  /// True when the hop kernels run off precomputed rank-target tables
  /// (rank, sign and selection folded into one uint32 per state — see the
  /// compile() notes) instead of on-the-fly rank() lookups.
  bool has_hop_tables() const { return !hop_targets_.empty(); }
  /// True when this operator and o hold the same shared rank -> config
  /// table (equal sectors, table still live when the later one compiled).
  /// Diagnostic for the cache tests and the serve artifact layer.
  bool shares_config_table(const SectorOperator& o) const {
    return configs_ != nullptr && configs_ == o.configs_;
  }

  /// Two-argument accumulate and overwriting apply from the base class.
  using LinearOperator::apply_add;
  /// y += scale * (P H P) x over sector ranks (x.size() == dim(); x and y
  /// distinct buffers, asserted). One parallel sweep per kernel,
  /// allocation-free and deterministic for any thread count.
  void apply_add(std::span<const cplx> x, std::span<cplx> y,
                 cplx scale) const override;

 private:
  /// One transition-canonical hop word as sector masks (see ops/term.hpp
  /// TermKernel for the flip/select/sign decomposition). Canonical words
  /// have every flipped bit select-constrained, so no membership filtering
  /// is ever needed at apply time.
  struct SectorKernel {
    std::uint64_t flip = 0;
    std::uint64_t select_mask = 0;
    std::uint64_t select_val = 0;
    std::uint64_t sign_mask = 0;
    cplx base;
  };

  /// Shared constructor body: canonicalization + conservation check +
  /// kernel compilation + config/diagonal table precomputation.
  void compile(const ScbSum& h);

  SectorBasis basis_;
  std::vector<SectorKernel> kernels_;        // hop kernels, term order
  std::size_t num_diagonal_ = 0;             // words fused into diag_
  // Shared rank -> configuration table from the process-wide registry
  // (symmetry/config_table.hpp): equal sectors share one table.
  std::shared_ptr<const ConfigTable> configs_;
  std::vector<cplx> diag_;                   // fused diagonal (empty if none)
  // Per-hop-kernel target tables (kernels_.size() * dim entries): entry r
  // packs rank(cfg ^ flip), the (-1)^{pc(sign & cfg)} sign bit and the
  // selection test into one uint32 (simd::kHopSkip when unselected), so the
  // apply loop is a pure streaming gather/scatter with no rank() walk.
  // Empty when the sector is too large for the table budget.
  std::vector<std::uint32_t> hop_targets_;
};

}  // namespace gecos
