// SectorVector: the owning state type of a U(1) symmetry sector.
//
// The sector-native sibling of StateVector: it owns dim(basis) amplitudes in
// the same 64-byte-aligned storage, indexed by SectorBasis rank instead of
// by basis-state bit pattern, and carries the identical norm / inner /
// apply / expectation surface, so the Krylov solvers and every measurement
// idiom work on sector states unchanged. embed() and project() convert to
// and from the full 2^n space: embed writes each sector amplitude at its
// configuration's full-space index (zero elsewhere), project reads them
// back — project(embed(v)) is exactly v (amplitudes are copied, never
// combined), and project discards any amplitude outside the sector.
#pragma once

#include <cstdint>
#include <span>

#include "ops/linear_op.hpp"
#include "state/state_vector.hpp"
#include "symmetry/sector_basis.hpp"

namespace gecos {

/// Owning sector-dimension amplitude vector over a SectorBasis.
class SectorVector {
 public:
  /// The rank-0 configuration state |first_config()> of the sector. A
  /// failed amplitude allocation throws Error{dim_mismatch} with the
  /// requested byte count instead of a raw std::bad_alloc.
  explicit SectorVector(SectorBasis basis);

  /// Basis (occupation) state |config>; throws std::invalid_argument when
  /// the configuration is not in the sector.
  static SectorVector config_state(SectorBasis basis, std::uint64_t config);
  /// Normalized Gaussian-random sector state from a fixed seed.
  static SectorVector random(SectorBasis basis, std::uint64_t seed);
  /// Restriction of a full 2^n state to the sector: amplitude of rank r is
  /// full[config_at(r)]; everything outside the sector is discarded. Throws
  /// std::invalid_argument on a qubit-count mismatch.
  static SectorVector project(SectorBasis basis, const StateVector& full);

  /// The sector enumeration and its dimension (= amplitude count).
  const SectorBasis& basis() const { return basis_; }
  std::size_t dim() const { return data_.size(); }
  /// Full-space qubit count n of the underlying sector.
  std::size_t n_qubits() const { return basis_.n_qubits(); }

  /// Amplitude views (index = SectorBasis rank).
  std::span<cplx> amps() { return data_; }
  std::span<const cplx> amps() const { return data_; }
  /// Unchecked single-amplitude access by rank.
  cplx& operator[](std::size_t r) { return data_[r]; }
  const cplx& operator[](std::size_t r) const { return data_[r]; }

  /// Euclidean norm and in-place normalization (throws on the zero vector).
  double norm() const;
  void normalize();

  /// Inner product <this|o> (conjugate-linear in *this); throws on a
  /// sector mismatch.
  cplx inner(const SectorVector& o) const;
  /// Max |a_r - o_r| against another vector of the same sector.
  double max_abs_diff(const SectorVector& o) const;

  /// In-place x = A x through the internal scratch buffer. The operator's
  /// dim() must equal the sector dimension (a SectorOperator over the same
  /// basis; throws otherwise).
  void apply(const LinearOperator& op);
  /// <x| A |x> through the internal scratch buffer; same dimension
  /// requirement and the same one-owner concurrency rule as
  /// StateVector::expectation.
  cplx expectation(const LinearOperator& op) const;

  /// Embedding into the full 2^n space: amplitude r lands at full-space
  /// index config_at(r), all other amplitudes are zero. Requires
  /// n_qubits() <= 30 (the StateVector limit) — the whole point of large
  /// sectors is that this is impossible at scale.
  StateVector embed() const;

 private:
  AlignedVec& scratch() const;

  SectorBasis basis_;
  AlignedVec data_;
  mutable AlignedVec scratch_;  // lazily sized; cache, not value state
};

}  // namespace gecos
