// Shared rank -> configuration tables for sector operators.
//
// Every SectorOperator needs the full rank -> configuration table of its
// sector (8 bytes per sector state) to drive the diagonal fuse and the
// hop-target precomputation. Before this registry existed each operator
// walked the enumeration and materialized a private copy — so the three
// Hubbard operators of one serving job (Hamiltonian + two observables over
// the same sector) carried three identical multi-megabyte tables and paid
// the enumeration walk three times. ROADMAP item 3 calls this out as the
// session/cache refactor: the table is a pure function of the sector
// descriptor, so it belongs in a shared, refcounted registry.
//
// shared_config_table() keys a process-wide map by the serialized sector
// descriptor (n_qubits + ordered (mask, count) species — exactly the
// SectorBasis equality domain) and holds weak_ptrs: a table lives as long
// as some operator (or the serve artifact cache) pins it and is rebuilt on
// demand afterwards, so idle sectors cost nothing. Hits and builds are
// counted into the telemetry registry (sector_table_hits /
// sector_table_builds) — the serve_batch bench's warm-cache gate asserts
// builds == 0 on a re-submitted job. See DESIGN.md "Serving layer".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "symmetry/sector_basis.hpp"

namespace gecos {

/// A sector's full rank -> configuration table: entry r is config_at(r).
using ConfigTable = std::vector<std::uint64_t>;

/// Returns the shared rank -> configuration table of `basis`, building it
/// (one enumeration walk) only when no live table exists for an equal
/// sector. Thread-safe; two bases comparing operator== always yield the
/// same pointer while either result is alive.
std::shared_ptr<const ConfigTable> shared_config_table(
    const SectorBasis& basis);

/// Number of registry slots currently tracked (live or expired; expired
/// slots are swept opportunistically on lookups). Test diagnostic only.
std::size_t config_table_registry_size();

}  // namespace gecos
