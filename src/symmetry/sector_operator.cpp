#include "symmetry/sector_operator.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "ops/term.hpp"
#include "simd/kernels.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace gecos {

namespace {

/// Upper bound on the total hop-target table size (bytes). Sectors beyond
/// it fall back to the on-the-fly rank() path — correctness is identical,
/// only the matvec constant differs.
constexpr std::size_t kHopTableBudget = std::size_t{256} << 20;

/// Rewrites one SCB word into the transition-canonical family: every X/Y
/// factor branches into {s, s+} (X = s + s+, Y = i s+ - i s), all other
/// factors pass through. Accumulates the 2^f branch words (f = number of
/// X/Y factors) into `out`, where canceling branches of different input
/// words merge away exactly.
void canonicalize_word(const std::vector<Scb>& word, cplx coeff, ScbSum& out) {
  std::vector<std::size_t> xy;
  for (std::size_t q = 0; q < word.size(); ++q)
    if (word[q] == Scb::X || word[q] == Scb::Y) xy.push_back(q);
  // 2^f branches per word: physical number-conserving terms carry at most a
  // handful of X/Y factors (a hop is two), so an X/Y-heavy word signals a
  // non-conserving operator long before the expansion could blow up.
  if (xy.size() > 24)
    throw std::invalid_argument(
        "SectorOperator: word with > 24 X/Y factors cannot be "
        "canonicalized (and cannot conserve particle number)");
  std::vector<Scb> branch = word;
  for (std::uint64_t g = 0; g < (std::uint64_t{1} << xy.size()); ++g) {
    cplx c = coeff;
    for (std::size_t i = 0; i < xy.size(); ++i) {
      const bool raise = ((g >> i) & 1) != 0;
      branch[xy[i]] = raise ? Scb::Sp : Scb::Sm;
      if (word[xy[i]] == Scb::Y) c *= raise ? cplx(0.0, 1.0) : cplx(0.0, -1.0);
    }
    out.add(branch, c);
  }
}

}  // namespace

SectorOperator::SectorOperator(SectorBasis basis, const ScbSum& h)
    : basis_(std::move(basis)) {
  compile(h);
}

SectorOperator::SectorOperator(SectorBasis basis, const PauliSum& h)
    : basis_(std::move(basis)) {
  // Pauli strings are SCB words already ({I,X,Y,Z} is a subset of the
  // basis); route through an ScbSum so both constructors share the
  // canonicalization and the kernel compiler.
  ScbSum s(h.num_qubits());
  for (const auto& [str, coeff] : h.sorted_terms()) s.add(str.ops(), coeff);
  compile(s);
}

void SectorOperator::compile(const ScbSum& h) {
  if (h.empty())
    throw std::invalid_argument("SectorOperator: empty operator sum");
  if (h.num_qubits() != basis_.n_qubits())
    throw std::invalid_argument("SectorOperator: qubit-count mismatch");

  // Transition-canonical rewrite (see the header comment): after this,
  // every word moves a definite particle count per species.
  ScbSum canon(h.num_qubits());
  for (const auto& [word, coeff] : h.terms())
    canonicalize_word(word, coeff, canon);

  // Conservation check + compilation in one pass. Coefficients here are
  // exact +-1 / +-i multiples of the input coefficients and equal-magnitude
  // branches cancel exactly in floating point (ScbSum::add erases them at
  // its own 1e-14 merge tolerance), so the skip threshold is the same small
  // ABSOLUTE epsilon — scaling it by the sum's magnitude would silently
  // drop genuine small terms from sums with large coefficient disparity,
  // quietly compiling a different operator. Dirt above this threshold with
  // a nonzero species delta throws instead: loud beats wrong.
  const double tol = 1e-14;
  const auto species = basis_.species();
  std::vector<SectorKernel> diagonal;
  for (const auto& [word, coeff] : canon.terms()) {
    if (std::abs(coeff) <= tol) continue;
    for (const SpeciesSector& s : species) {
      int delta = 0;
      for (std::size_t q = 0; q < word.size(); ++q) {
        if (!((s.mask >> q) & 1)) continue;
        if (word[q] == Scb::Sp) ++delta;
        else if (word[q] == Scb::Sm) --delta;
      }
      if (delta != 0)
        throw std::invalid_argument(
            "SectorOperator: operator does not conserve a species particle "
            "number (nonzero sector-changing component)");
    }
    const TermKernel tk(ScbTerm(coeff, word, false));
    const SectorKernel k{tk.flip, tk.select_mask, tk.select_val, tk.sign_mask,
                         tk.base};
    (k.flip == 0 ? diagonal : kernels_).push_back(k);
  }
  num_diagonal_ = diagonal.size();
  if (kernels_.empty() && diagonal.empty())
    throw std::invalid_argument(
        "SectorOperator: operator vanishes in canonical form");
  // Same instrumentation site as ScbSum's kernel rebuild: every surviving
  // canonical word cost one TermKernel mask compilation.
  telemetry::count(telemetry::Counter::kernel_compiles,
                   kernels_.size() + num_diagonal_);

  // Fetch the shared rank -> configuration table (one enumeration walk per
  // sector process-wide; the hot loop only loads it) and fuse every
  // diagonal word into one per-rank coefficient vector: U/mu-style terms
  // then cost a single pass per apply instead of one sweep each.
  const std::size_t d = basis_.dim();
  configs_ = shared_config_table(basis_);
  const std::uint64_t* const cfgs = configs_->data();
  if (!diagonal.empty()) {
    diag_.assign(d, cplx(0.0));
    for (const SectorKernel& k : diagonal) {
      parallel_for(d, [&](std::size_t lo, std::size_t hi, int) {
        for (std::size_t r = lo; r < hi; ++r) {
          const std::uint64_t c = cfgs[r];
          if ((c & k.select_mask) == k.select_val) {
            const bool neg = (std::popcount(c & k.sign_mask) & 1) != 0;
            diag_[r] += neg ? -k.base : k.base;
          }
        }
      });
    }
  }

  // Hop-target tables: fold the selection test, the Jordan-Wigner sign and
  // the rank(cfg ^ flip) lookup of every hop kernel into one uint32 per
  // (kernel, rank), so apply_add streams through the table instead of
  // re-deriving them per matvec. Rank and sign share 32 bits, so the table
  // needs d small enough that rank | sign-bit cannot collide with the skip
  // sentinel; larger sectors (or tables past the memory budget) keep the
  // on-the-fly path.
  if (!kernels_.empty() && d < std::size_t{0x7FFFFFFF} &&
      kernels_.size() * d * sizeof(std::uint32_t) <= kHopTableBudget) {
    hop_targets_.resize(kernels_.size() * d);
    for (std::size_t j = 0; j < kernels_.size(); ++j) {
      const SectorKernel& k = kernels_[j];
      std::uint32_t* tgt = hop_targets_.data() + j * d;
      parallel_for(d, [&](std::size_t lo, std::size_t hi, int) {
        for (std::size_t r = lo; r < hi; ++r) {
          const std::uint64_t cfg = cfgs[r];
          if ((cfg & k.select_mask) != k.select_val) {
            tgt[r] = simd::kHopSkip;
            continue;
          }
          std::uint32_t t =
              static_cast<std::uint32_t>(basis_.rank(cfg ^ k.flip));
          if ((std::popcount(cfg & k.sign_mask) & 1) != 0)
            t |= simd::kHopSignBit;
          tgt[r] = t;
        }
      });
    }
  }
}

void SectorOperator::apply_add(std::span<const cplx> x, std::span<cplx> y,
                               cplx scale) const {
  assert(x.data() != y.data() &&
         "SectorOperator::apply_add: x and y must not alias");
  assert(x.size() == basis_.dim() && y.size() == basis_.dim());
  const std::size_t d = basis_.dim();
  const simd::Kernels& kn = simd::active();
  if (telemetry::metrics_enabled()) {
    // Same traffic model as the bench roofline: 48 B/amplitude for the
    // fused diagonal pass, 52 B/amplitude per table-driven hop kernel
    // (48 B without tables).
    const std::uint64_t d64 = d;
    const std::uint64_t diag = diag_.empty() ? 0 : 1;
    const std::uint64_t hops = kernels_.size();
    const std::uint64_t hop_bytes = hop_targets_.empty() ? 48 : 52;
    telemetry::count(telemetry::Counter::kernel_sweeps, diag + hops);
    telemetry::count(telemetry::Counter::amplitudes_touched,
                     (diag + hops) * d64);
    telemetry::count(telemetry::Counter::bytes_moved,
                     diag * 48 * d64 + hops * hop_bytes * d64);
  }
  // Fused diagonal first (rank-preserving: each chunk owns its y range),
  // one wide elementwise pass through the dispatch layer.
  if (!diag_.empty()) {
    parallel_for(d, [&](std::size_t lo, std::size_t hi, int) {
      kn.diag_mul_add(y.data() + lo, diag_.data() + lo, x.data() + lo,
                      hi - lo, scale);
    });
  }
  // Hop kernels, term order: x -> x ^ flip is a bijection on configurations
  // and stays inside the sector (conservation), so the scattered writes of
  // distinct input chunks never collide. With precomputed target tables the
  // sweep is a pure gather/scatter (hop_scatter); without them it re-derives
  // selection, sign and rank per state.
  for (std::size_t j = 0; j < kernels_.size(); ++j) {
    const SectorKernel& k = kernels_[j];
    const cplx base = k.base * scale;
    if (!hop_targets_.empty()) {
      const std::uint32_t* tgt = hop_targets_.data() + j * d;
      parallel_for(d, [&](std::size_t lo, std::size_t hi, int) {
        kn.hop_scatter(y.data(), x.data() + lo, tgt + lo, hi - lo, base);
      });
      continue;
    }
    const std::uint64_t* const cfgs = configs_->data();
    parallel_for(d, [&](std::size_t lo, std::size_t hi, int) {
      for (std::size_t r = lo; r < hi; ++r) {
        const std::uint64_t cfg = cfgs[r];
        if ((cfg & k.select_mask) == k.select_val) {
          const bool neg = (std::popcount(cfg & k.sign_mask) & 1) != 0;
          y[basis_.rank(cfg ^ k.flip)] += (neg ? -base : base) * x[r];
        }
      }
    });
  }
}

}  // namespace gecos
