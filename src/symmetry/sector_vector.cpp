#include "symmetry/sector_vector.hpp"

#include <random>
#include <stdexcept>
#include <string>
#include <utility>

#include "linalg/blas1.hpp"
#include "util/error.hpp"

namespace gecos {

SectorVector::SectorVector(SectorBasis basis) : basis_(std::move(basis)) {
  try {
    data_.assign(basis_.dim(), cplx(0.0));
  } catch (const std::bad_alloc&) {
    throw Error(ErrorKind::dim_mismatch,
                "SectorVector: allocation of " +
                    std::to_string(basis_.dim() * sizeof(cplx)) +
                    " bytes failed for sector dim " +
                    std::to_string(basis_.dim()));
  }
  data_[0] = cplx(1.0);
}

SectorVector SectorVector::config_state(SectorBasis basis,
                                        std::uint64_t config) {
  if (!basis.contains(config))
    throw std::invalid_argument(
        "SectorVector::config_state: configuration not in the sector");
  SectorVector v(std::move(basis));
  v.data_[0] = cplx(0.0);
  v.data_[v.basis_.rank(config)] = cplx(1.0);
  return v;
}

SectorVector SectorVector::random(SectorBasis basis, std::uint64_t seed) {
  SectorVector v(std::move(basis));
  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  std::normal_distribution<double> g;
  for (cplx& a : v.data_) a = cplx(g(rng), g(rng));
  v.normalize();
  return v;
}

SectorVector SectorVector::project(SectorBasis basis, const StateVector& full) {
  if (full.n_qubits() != basis.n_qubits())
    throw std::invalid_argument("SectorVector::project: qubit-count mismatch");
  SectorVector v(std::move(basis));
  std::uint64_t cfg = v.basis_.first_config();
  for (std::size_t r = 0; r < v.dim(); ++r) {
    v.data_[r] = full[cfg];
    cfg = v.basis_.next_config(cfg);
  }
  return v;
}

double SectorVector::norm() const { return vec_norm(data_); }

void SectorVector::normalize() {
  const double n = norm();
  if (n == 0.0)
    throw std::invalid_argument("SectorVector::normalize: zero vector");
  vec_scale(amps(), cplx(1.0 / n));
}

cplx SectorVector::inner(const SectorVector& o) const {
  if (!(basis_ == o.basis_))
    throw std::invalid_argument("SectorVector::inner: sector mismatch");
  return vec_dot(data_, o.data_);
}

double SectorVector::max_abs_diff(const SectorVector& o) const {
  if (!(basis_ == o.basis_))
    throw std::invalid_argument("SectorVector::max_abs_diff: sector mismatch");
  return vec_max_abs_diff(data_, o.data_);
}

AlignedVec& SectorVector::scratch() const {
  if (scratch_.size() != data_.size()) scratch_.resize(data_.size());
  return scratch_;
}

void SectorVector::apply(const LinearOperator& op) {
  op.apply_inplace(amps(), scratch());
}

cplx SectorVector::expectation(const LinearOperator& op) const {
  AlignedVec& s = scratch();
  op.apply(data_, s);
  return vec_dot(data_, s);
}

StateVector SectorVector::embed() const {
  StateVector full = StateVector::basis(basis_.n_qubits(), 0);
  full[0] = cplx(0.0);
  std::uint64_t cfg = basis_.first_config();
  for (std::size_t r = 0; r < dim(); ++r) {
    full[cfg] = data_[r];
    cfg = basis_.next_config(cfg);
  }
  return full;
}

}  // namespace gecos
