// gecosd wire protocol: framed, versioned request/reply messages.
//
// The serving layer (DESIGN.md "Serving layer") talks over a unix-domain
// socket in length-prefixed frames: a u32 byte count followed by that many
// payload bytes, serialized with the same PayloadWriter/PayloadReader
// primitives as the checkpoint format — native-endian raw fields, so a
// fetched eigenvalue is the solver's double bit-for-bit. Every payload
// begins with a u32 MsgType; the first frame on a connection must be kHello
// carrying the 8-byte protocol magic "GECOSRV1" and the protocol version,
// mirroring the GECOSCK1 checkpoint header so both on-disk and on-wire
// formats fail version drift loudly. Any server-side failure travels back
// as a kError frame holding the machine-readable error_kind_name() plus the
// human message; the client parses the kind and rethrows a gecos::Error, so
// a daemon hop is transparent to error-handling code. Malformed traffic
// (bad magic, oversized frame, short read, unknown message type) is
// ErrorKind::protocol everywhere.
//
// JobSpec is the one request schema for all four job kinds (ground state /
// quench / expectation / spectral): lattice + sector parameters key the
// job, job_key() hashes the canonical encoding MINUS the priority field
// (two submissions differing only in priority are the same work), and
// evolution_key() hashes the evolution-defining subset — the scheduler
// coalesces expectation jobs with equal evolution keys into one Krylov
// pass (observable batching). Results round-trip through JobResult with
// bitwise-exact doubles.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fermion/hubbard.hpp"
#include "io/checkpoint.hpp"
#include "util/error.hpp"

namespace gecos::serve {

/// 8-byte protocol magic carried by the kHello frame; the trailing '1' is
/// the coarse protocol generation (fine version in kServeVersion).
inline constexpr char kServeMagic[8] = {'G', 'E', 'C', 'O',
                                        'S', 'R', 'V', '1'};

/// Protocol version; a kHello carrying any other value is answered with a
/// version_mismatch error and the connection is closed.
inline constexpr std::uint32_t kServeVersion = 1;

/// Frame size ceiling (bytes). A length prefix beyond this is protocol
/// error — it is far above any legitimate job result and keeps a corrupt
/// or hostile prefix from driving a giant allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

/// Message type — the leading u32 of every frame payload. Requests are
/// odd-position, each paired with its *Ok reply; kError replaces any reply.
enum class MsgType : std::uint32_t {
  kHello = 1,       ///< magic + version handshake (first frame, both ways)
  kHelloOk = 2,     ///< handshake accepted
  kSubmit = 3,      ///< JobSpec -> job id
  kSubmitOk = 4,    ///< u64 job id
  kStatus = 5,      ///< u64 job id -> JobStatus
  kStatusOk = 6,    ///< encoded JobStatus
  kCancel = 7,      ///< u64 job id -> cancelled flag
  kCancelOk = 8,    ///< u32 1 = cancel accepted, 0 = already terminal
  kFetch = 9,       ///< u64 job id -> JobResult (done jobs only)
  kFetchOk = 10,    ///< encoded JobResult
  kShutdown = 11,   ///< stop accepting work and exit after the reply
  kShutdownOk = 12, ///< daemon is shutting down
  kStats = 13,      ///< -> ServerStats
  kStatsOk = 14,    ///< encoded ServerStats
  kError = 15,      ///< error_kind_name string + message string
};

/// What a job computes.
enum class JobKind : std::uint32_t {
  kGroundState = 1,  ///< k lowest eigenpairs via thick-restart Lanczos
  kQuench = 2,       ///< CDW quench: Loschmidt echo trajectory
  kExpectation = 3,  ///< quench + per-step observable expectations
  kSpectral = 4,     ///< continued-fraction spectral function of a probe
};

/// Lifecycle state of a submitted job.
enum class JobState : std::uint32_t {
  kQueued = 1,     ///< accepted, waiting for the executor
  kRunning = 2,    ///< on the executor thread now
  kDone = 3,       ///< result available via kFetch
  kFailed = 4,     ///< terminal error; status carries kind + message
  kCancelled = 5,  ///< cancelled before completing
};

/// Diagonal observable menu for expectation jobs. All entries are diagonal
/// in the occupation basis, so a batched pass measures each one with a
/// cheap elementwise sweep — no extra matvecs.
enum class ObservableKind : std::uint32_t {
  kDensity = 1,      ///< n_{site_a} (both spins when spinful)
  kDoublon = 2,      ///< n_{site_a,up} n_{site_a,down} (spinful lattices)
  kDensityCorr = 3,  ///< n_{site_a} n_{site_b} density-density correlator
  kTotalNumber = 4,  ///< total particle number N
};

/// One requested observable (site indices into the lx*ly lattice; unused
/// sites stay 0).
struct ObservableSpec {
  ObservableKind kind = ObservableKind::kDensity;  ///< which observable
  std::uint32_t site_a = 0;  ///< primary site index
  std::uint32_t site_b = 0;  ///< partner site (kDensityCorr only)
};

/// The one request schema for every job kind. Fields irrelevant to a kind
/// keep their defaults and still participate in job_key() — a canonical
/// spec is its own cache key.
struct JobSpec {
  JobKind kind = JobKind::kGroundState;  ///< what to compute
  HubbardParams lattice;                 ///< the lattice to build H from
  bool use_sector = true;   ///< restrict to the (n_up, n_down) sector
  std::uint32_t n_up = 0;   ///< sector count, species up (or total-N)
  std::uint32_t n_down = 0; ///< sector count, species down
  std::uint32_t num_eigenpairs = 1;     ///< ground state: k lowest pairs
  double tol = 1e-10;                   ///< solver residual tolerance
  std::uint64_t max_matvecs = 20000;    ///< solver matvec budget
  std::uint64_t seed = 20260730;        ///< start-vector seed
  std::uint64_t checkpoint_interval = 0; ///< matvecs between job checkpoints
  double dt = 0.02;                     ///< quench/expectation step size
  std::uint64_t steps = 0;              ///< quench/expectation step count
  /// Initial occupation bitmask for evolution jobs; 0 selects the CDW
  /// default hubbard_cdw_occupation(lattice).
  std::uint64_t initial_occupation = 0;
  std::vector<ObservableSpec> observables;  ///< expectation jobs
  double eta = 0.1;                  ///< spectral Lorentzian half-width
  std::uint64_t max_moments = 128;   ///< spectral continued-fraction depth
  double w_min = -10.0;              ///< spectral grid lower bound
  double w_max = 10.0;               ///< spectral grid upper bound
  std::uint64_t w_points = 201;      ///< spectral grid size
  /// Scheduling priority (higher runs first). Deliberately EXCLUDED from
  /// job_key(): priority changes scheduling, not the computed artifact.
  std::uint32_t priority = 0;
};

/// Result payload of a finished job; arrays round-trip bitwise. Evolution
/// values are row-major [step][observable].
struct JobResult {
  JobKind kind = JobKind::kGroundState;  ///< mirrors the spec kind
  std::vector<double> eigenvalues;       ///< ground state: ascending
  std::vector<double> residuals;         ///< ground state: per pair
  std::vector<double> residual_history;  ///< ground state: trajectory
  std::uint64_t matvecs = 0;     ///< operator applications spent
  std::uint64_t iterations = 0;  ///< solver iterations
  bool converged = false;        ///< solver converged within budget
  bool resumed = false;          ///< continued from a daemon checkpoint
  std::vector<double> times;     ///< evolution time points (step ends)
  std::vector<double> values;    ///< [step][observable] expectations (real)
  std::vector<double> loschmidt; ///< |<psi0|psi(t)>|^2 per step
  std::vector<double> omega;     ///< spectral grid
  std::vector<double> spectral;  ///< A(omega) on the grid
};

/// Point-in-time job status — the PR 9 progress fields over the wire.
struct JobStatus {
  std::uint64_t id = 0;                    ///< job id
  JobState state = JobState::kQueued;      ///< lifecycle state
  JobKind kind = JobKind::kGroundState;    ///< what it computes
  std::uint32_t priority = 0;              ///< scheduling priority
  std::uint64_t iteration = 0;             ///< solver iteration
  std::uint64_t matvecs = 0;               ///< operator applications
  double metric = 0.0;                     ///< current residual / estimate
  double target = 0.0;                     ///< convergence target
  double elapsed_s = 0.0;                  ///< solve wall time so far
  double eta_s = -1.0;                     ///< estimated remaining; <0 unknown
  std::string error_kind;     ///< error_kind_name() when state == kFailed
  std::string error_message;  ///< human message when state == kFailed
};

/// Daemon-side aggregate counters, served by kStats.
struct ServerStats {
  std::uint64_t submitted = 0;     ///< jobs accepted
  std::uint64_t completed = 0;     ///< jobs reaching kDone
  std::uint64_t failed = 0;        ///< jobs reaching kFailed
  std::uint64_t cancelled = 0;     ///< jobs reaching kCancelled
  std::uint64_t batch_passes = 0;  ///< coalesced evolution passes run
  std::uint64_t batched_jobs = 0;  ///< expectation jobs served by them
  std::uint64_t cache_hits = 0;    ///< artifact-cache hits
  std::uint64_t cache_misses = 0;  ///< artifact-cache builds
  std::uint64_t cache_evictions = 0;  ///< artifact-cache LRU evictions
  std::uint64_t cache_bytes = 0;   ///< artifact-cache resident bytes
  std::uint64_t cache_entries = 0; ///< artifact-cache resident entries
  std::uint64_t queue_depth = 0;   ///< jobs waiting
  std::uint64_t running = 0;       ///< jobs on the executor now
};

/// Serializes lattice parameters canonically (shared by the spec encoding
/// and the artifact-cache key hashes).
void encode_lattice(PayloadWriter& w, const HubbardParams& p);
/// Decodes lattice parameters written by encode_lattice().
HubbardParams decode_lattice(PayloadReader& r);

/// Validates a spec's structural invariants (lattice sizes, sector counts
/// vs mode counts, per-kind field ranges, observable site indices). Throws
/// Error{protocol} naming the offending field.
void validate_job_spec(const JobSpec& spec);

/// Serializes a spec canonically (field order fixed; priority included
/// last). decode_job_spec() inverts it exactly.
void encode_job_spec(PayloadWriter& w, const JobSpec& spec);
/// Decodes a spec written by encode_job_spec(); throws Error{protocol} on
/// out-of-range enum values.
JobSpec decode_job_spec(PayloadReader& r);

/// Serializes a result; decode inverts it with bitwise-exact doubles.
void encode_job_result(PayloadWriter& w, const JobResult& res);
/// Decodes a result written by encode_job_result().
JobResult decode_job_result(PayloadReader& r);

/// Serializes a status snapshot; decode inverts it.
void encode_job_status(PayloadWriter& w, const JobStatus& st);
/// Decodes a status written by encode_job_status().
JobStatus decode_job_status(PayloadReader& r);

/// Serializes the daemon counters; decode inverts it.
void encode_server_stats(PayloadWriter& w, const ServerStats& st);
/// Decodes counters written by encode_server_stats().
ServerStats decode_server_stats(PayloadReader& r);

/// Content hash of a spec's canonical encoding with the priority field
/// zeroed: the identity of the computed artifact. Equal keys mean a warm
/// re-submit can reuse checkpoints, cache entries and terminal results.
std::uint64_t job_key(const JobSpec& spec);

/// Content hash of the evolution-defining subset (lattice, sector, dt,
/// steps, initial occupation, tol, seed): expectation jobs with equal
/// evolution keys share one state trajectory and are batched into a single
/// Krylov pass.
std::uint64_t evolution_key(const JobSpec& spec);

/// Blocking exact write of a length-prefixed frame to a socket/pipe fd.
/// Throws Error{protocol} on a short write or an oversized payload.
void write_frame(int fd, std::span<const unsigned char> payload);

/// Blocking exact read of one length-prefixed frame. Throws
/// Error{protocol} on EOF mid-frame or an oversized length prefix; an
/// immediate clean EOF (before any length byte) returns an empty vector so
/// servers can treat connection close as a non-error.
std::vector<unsigned char> read_frame(int fd);

/// Builds a kError frame payload from a gecos::Error (or any kind +
/// message pair) for the server's catch-all reply path.
std::vector<unsigned char> encode_error_frame(ErrorKind kind,
                                              const std::string& message);

/// If `payload` is a kError frame, parses kind + message and throws the
/// corresponding gecos::Error (unknown kind names map to
/// ErrorKind::protocol so newer daemons stay readable). Otherwise returns
/// a reader positioned AFTER the leading MsgType, which must equal
/// `expect` (Error{protocol} otherwise).
PayloadReader expect_reply(std::span<const unsigned char> payload,
                           MsgType expect);

}  // namespace gecos::serve
