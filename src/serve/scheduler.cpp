#include "serve/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "io/checkpoint.hpp"
#include "serve/batch.hpp"
#include "solver/lanczos.hpp"
#include "spectral/continued_fraction.hpp"
#include "symmetry/sector_vector.hpp"
#include "telemetry/telemetry.hpp"

namespace gecos::serve {

namespace {

// Internal control-flow exceptions thrown by the progress callback to pull
// a solver off the executor thread. Never escape the scheduler.
struct JobCancelled {};
struct JobAbandoned {};

bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

bool is_evolution(JobKind k) {
  return k == JobKind::kQuench || k == JobKind::kExpectation;
}

// The evolution start state: explicit occupation, or the CDW default.
std::uint64_t initial_occupation(const JobSpec& spec) {
  return spec.initial_occupation != 0
             ? spec.initial_occupation
             : hubbard_cdw_occupation(spec.lattice);
}

// Per-species particle counts of an occupation — the cached_sector_op key
// for evolution/spectral jobs, chosen so the cached basis is exactly
// hubbard_sector_of(lattice, occupation).
std::pair<std::uint32_t, std::uint32_t> sector_counts(const HubbardParams& p,
                                                      std::uint64_t occ) {
  if (!p.spinful)
    return {static_cast<std::uint32_t>(std::popcount(occ)), 0};
  const auto count = [&](int spin) {
    return static_cast<std::uint32_t>(
        std::popcount(occ & hubbard_species_mask(p, spin)));
  };
  return {count(0), count(1)};
}

void fill_ground_state(JobResult& out, const LanczosResult& res) {
  out.kind = JobKind::kGroundState;
  out.eigenvalues = res.eigenvalues;
  out.residuals = res.residuals;
  out.residual_history = res.residual_history;
  out.matvecs = res.matvecs;
  out.iterations = res.iterations;
  out.converged = res.converged;
  out.resumed = res.resumed;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache_bytes) {
  if (!opts_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.state_dir, ec);
    if (ec)
      throw Error(ErrorKind::io_corrupt,
                  "cannot create state dir " + opts_.state_dir);
    if (opts_.resume_jobs) load_journals();
  }
  if (opts_.autostart) start();
}

Scheduler::~Scheduler() { stop(/*abandon_running=*/true); }

std::uint64_t Scheduler::submit(const JobSpec& spec) {
  validate_job_spec(spec);
  std::unique_lock<std::mutex> lk(mutex_);
  const std::uint64_t id = next_id_++;
  Job job;
  job.id = id;
  job.spec = spec;
  job.key = job_key(spec);
  ++submitted_;
  telemetry::count(telemetry::Counter::jobs_submitted);
  write_journal_locked(job);
  jobs_.emplace(id, std::move(job));
  work_cv_.notify_one();
  return id;
}

bool Scheduler::cancel(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw Error(ErrorKind::not_found, "no such job: " + std::to_string(id));
  Job& job = it->second;
  if (is_terminal(job.state)) return false;
  job.cancel_requested = true;
  if (job.state == JobState::kQueued) {
    job.state = JobState::kCancelled;
    ++cancelled_;
    write_journal_locked(job);
    cv_.notify_all();
  }
  return true;
}

JobStatus Scheduler::status(std::uint64_t id) const {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw Error(ErrorKind::not_found, "no such job: " + std::to_string(id));
  return status_locked(it->second);
}

std::vector<JobStatus> Scheduler::list() const {
  std::unique_lock<std::mutex> lk(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(status_locked(job));
  return out;
}

JobResult Scheduler::fetch(std::uint64_t id) const {
  std::unique_lock<std::mutex> lk(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw Error(ErrorKind::not_found, "no such job: " + std::to_string(id));
  const Job& job = it->second;
  switch (job.state) {
    case JobState::kDone:
      return job.result;
    case JobState::kCancelled:
      throw Error(ErrorKind::cancelled,
                  "job " + std::to_string(id) + " was cancelled");
    case JobState::kFailed: {
      ErrorKind kind = ErrorKind::breakdown;
      parse_error_kind(job.error_kind, kind);
      throw Error(kind, job.error_message);
    }
    case JobState::kQueued:
    case JobState::kRunning:
      throw Error(ErrorKind::not_found,
                  "job " + std::to_string(id) + " has no result yet");
  }
  throw Error(ErrorKind::not_found, "job in unknown state");
}

bool Scheduler::wait(std::uint64_t id, double timeout_s) const {
  std::unique_lock<std::mutex> lk(mutex_);
  if (jobs_.find(id) == jobs_.end())
    throw Error(ErrorKind::not_found, "no such job: " + std::to_string(id));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  return cv_.wait_until(lk, deadline, [&] {
    auto it = jobs_.find(id);
    return it != jobs_.end() && is_terminal(it->second.state);
  });
}

ServerStats Scheduler::stats() const {
  ServerStats st;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    st.submitted = submitted_;
    st.completed = completed_;
    st.failed = failed_;
    st.cancelled = cancelled_;
    st.batch_passes = batch_passes_;
    st.batched_jobs = batched_jobs_;
    for (const auto& [id, job] : jobs_) {
      if (job.state == JobState::kQueued) ++st.queue_depth;
      if (job.state == JobState::kRunning) ++st.running;
    }
  }
  // Cache counters come from the cache's own lock; the scheduler lock is
  // released first so the two mutexes never nest.
  st.cache_hits = cache_.hits();
  st.cache_misses = cache_.misses();
  st.cache_evictions = cache_.evictions();
  st.cache_bytes = cache_.resident_bytes();
  st.cache_entries = cache_.resident_entries();
  return st;
}

void Scheduler::start() {
  std::unique_lock<std::mutex> lk(mutex_);
  if (running_) return;
  stopping_ = false;
  abandon_ = false;
  running_ = true;
  executor_ = std::thread([this] { executor_loop(); });
}

void Scheduler::stop(bool abandon_running) {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    if (!running_) return;
    stopping_ = true;
    abandon_ = abandon_running;
    work_cv_.notify_all();
  }
  executor_.join();
  std::unique_lock<std::mutex> lk(mutex_);
  running_ = false;
  stopping_ = false;
  abandon_ = false;
}

void Scheduler::executor_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    work_cv_.wait(lk, [&] {
      if (stopping_) return true;
      for (const auto& [id, job] : jobs_)
        if (job.state == JobState::kQueued) return true;
      return false;
    });
    if (stopping_) return;
    // Highest priority first; the id-ascending map walk breaks ties toward
    // the earliest submission (strict > keeps the first seen).
    std::uint64_t best = 0;
    const Job* best_job = nullptr;
    for (const auto& [id, job] : jobs_) {
      if (job.state != JobState::kQueued) continue;
      if (best_job == nullptr || job.spec.priority > best_job->spec.priority) {
        best = id;
        best_job = &job;
      }
    }
    if (best_job == nullptr) continue;  // lost a race with cancel()
    jobs_.at(best).state = JobState::kRunning;
    lk.unlock();
    run_job(best);
    lk.lock();
  }
}

void Scheduler::run_job(std::uint64_t leader) {
  std::vector<std::uint64_t> ids{leader};
  JobSpec spec;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    spec = jobs_.at(leader).spec;
    if (is_evolution(spec.kind)) {
      // Observable batching: pull every queued job riding the same
      // evolution into this pass (a quench is an expectation job with zero
      // observables, so the two kinds coalesce freely).
      const std::uint64_t ekey = evolution_key(spec);
      for (auto& [id, job] : jobs_) {
        if (id == leader || job.state != JobState::kQueued) continue;
        if (!is_evolution(job.spec.kind)) continue;
        if (evolution_key(job.spec) != ekey) continue;
        job.state = JobState::kRunning;
        ids.push_back(id);
      }
    }
  }
  try {
    switch (spec.kind) {
      case JobKind::kGroundState: {
        JobResult result;
        run_ground_state(spec, leader, result);
        finish_done(leader, std::move(result));
        break;
      }
      case JobKind::kQuench:
      case JobKind::kExpectation:
        run_evolution_batch(ids);
        break;
      case JobKind::kSpectral: {
        JobResult result;
        run_spectral(spec, leader, result);
        finish_done(leader, std::move(result));
        break;
      }
    }
  } catch (const JobAbandoned&) {
    for (const std::uint64_t id : ids) requeue(id);
  } catch (const JobCancelled&) {
    for (const std::uint64_t id : ids) finish_cancelled(id);
  } catch (const Error& e) {
    for (const std::uint64_t id : ids)
      finish_failed(id, e.kind(), e.what());
  } catch (const std::invalid_argument& e) {
    // validate_job_spec should have caught this at submit; a leak through
    // is still the requester's data, not solver state.
    for (const std::uint64_t id : ids)
      finish_failed(id, ErrorKind::protocol, e.what());
  } catch (const std::exception& e) {
    for (const std::uint64_t id : ids)
      finish_failed(id, ErrorKind::breakdown, e.what());
  }
}

void Scheduler::run_ground_state(const JobSpec& spec, std::uint64_t id,
                                 JobResult& out) {
  LanczosOptions lo;
  lo.k = spec.num_eigenpairs;
  lo.tol = spec.tol;
  lo.max_matvecs = static_cast<std::size_t>(spec.max_matvecs);
  lo.seed = spec.seed;
  lo.compute_vectors = false;
  lo.progress = progress_for(id, /*cancel_throws=*/true);
  std::string ck;
  if (!opts_.state_dir.empty() && spec.checkpoint_interval > 0) {
    ck = checkpoint_path(job_key(spec));
    lo.checkpoint_path = ck;
    lo.checkpoint_interval =
        static_cast<std::size_t>(spec.checkpoint_interval);
  }
  const auto run = [&](const LinearOperator& h) {
    Lanczos solver(h, lo);
    const LanczosResult& res = (!ck.empty() && checkpoint_exists(ck))
                                   ? solver.resume(ck)
                                   : solver.solve();
    fill_ground_state(out, res);
  };
  if (spec.use_sector) {
    // The shared_ptr pins the cache entry for the whole solve.
    const auto h =
        cached_sector_op(cache_, spec.lattice, spec.n_up, spec.n_down);
    run(*h);
  } else {
    const auto h = cached_hubbard(cache_, spec.lattice);
    run(*h);
  }
  if (!ck.empty()) remove_checkpoint(ck);
}

void Scheduler::run_evolution_batch(const std::vector<std::uint64_t>& ids) {
  std::vector<JobSpec> specs;
  specs.reserve(ids.size());
  {
    std::unique_lock<std::mutex> lk(mutex_);
    for (const std::uint64_t id : ids) specs.push_back(jobs_.at(id).spec);
  }
  const JobSpec& lead = specs.front();
  const HubbardParams& p = lead.lattice;
  const std::uint64_t occ = initial_occupation(lead);

  // Union the observable lists; cols[i] maps job i's observables to columns
  // of the combined per-step sweep.
  std::vector<ObservableSpec> combined;
  std::vector<std::vector<std::size_t>> cols(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (const ObservableSpec& o : specs[i].observables) {
      std::size_t at = combined.size();
      for (std::size_t c = 0; c < combined.size(); ++c) {
        if (combined[c].kind == o.kind && combined[c].site_a == o.site_a &&
            combined[c].site_b == o.site_b) {
          at = c;
          break;
        }
      }
      if (at == combined.size()) combined.push_back(o);
      cols[i].push_back(at);
    }
  }

  const auto [n_up, n_down] = sector_counts(p, occ);
  const auto h = cached_sector_op(cache_, p, n_up, n_down);
  std::vector<std::shared_ptr<const SectorOperator>> obs_ops;
  obs_ops.reserve(combined.size());
  for (const ObservableSpec& o : combined)
    obs_ops.push_back(cached_observable(cache_, p, n_up, n_down, o));
  const SectorVector psi0 = SectorVector::config_state(h->basis(), occ);

  const BatchResult br = run_observable_batch(
      *h, psi0, lead.dt, static_cast<std::size_t>(lead.steps), obs_ops,
      lead.tol, progress_for(ids.front(), /*cancel_throws=*/false));

  if (ids.size() > 1) {
    std::unique_lock<std::mutex> lk(mutex_);
    ++batch_passes_;
    batched_jobs_ += ids.size();
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    JobResult r;
    r.kind = specs[i].kind;
    r.times = br.times;
    r.loschmidt = br.loschmidt;
    r.matvecs = br.matvecs;
    r.iterations = lead.steps;
    r.converged = true;
    r.values.reserve(br.times.size() * cols[i].size());
    for (std::size_t s = 0; s < br.times.size(); ++s)
      for (const std::size_t c : cols[i])
        r.values.push_back(br.values[s * combined.size() + c]);
    finish_done(ids[i], std::move(r));
  }
}

void Scheduler::run_spectral(const JobSpec& spec, std::uint64_t id,
                             JobResult& out) {
  const HubbardParams& p = spec.lattice;
  const std::uint64_t occ = initial_occupation(spec);
  const auto [n_up, n_down] = sector_counts(p, occ);
  const auto h = cached_sector_op(cache_, p, n_up, n_down);
  const SectorVector psi0 = SectorVector::config_state(h->basis(), occ);

  SpectralFunctionOptions so;
  so.max_moments = static_cast<std::size_t>(spec.max_moments);
  so.progress = progress_for(id, /*cancel_throws=*/true);
  SpectralFunction sf(*h, so);
  std::size_t moments = 0;
  if (!spec.observables.empty()) {
    const auto probe =
        cached_observable(cache_, p, n_up, n_down, spec.observables.front());
    moments = sf.build(*probe, psi0.amps());
  } else {
    moments = sf.build(psi0.amps());
  }

  out.kind = JobKind::kSpectral;
  out.iterations = moments;
  out.matvecs = moments;
  out.converged = true;
  out.omega.resize(spec.w_points);
  const double dw = (spec.w_max - spec.w_min) /
                    static_cast<double>(spec.w_points - 1);
  for (std::uint64_t i = 0; i < spec.w_points; ++i)
    out.omega[i] = spec.w_min + dw * static_cast<double>(i);
  out.spectral.resize(spec.w_points);
  sf.evaluate(out.omega, spec.eta, out.spectral);
}

void Scheduler::finish_done(std::uint64_t id, JobResult result) {
  std::unique_lock<std::mutex> lk(mutex_);
  Job& job = jobs_.at(id);
  if (job.cancel_requested) {
    // Cancelled mid-run but the pass carried it to completion (evolution
    // riders); honor the cancellation, drop the result.
    job.state = JobState::kCancelled;
    ++cancelled_;
  } else {
    job.state = JobState::kDone;
    job.result = std::move(result);
    ++completed_;
    telemetry::count(telemetry::Counter::jobs_completed);
  }
  write_journal_locked(job);
  cv_.notify_all();
}

void Scheduler::finish_failed(std::uint64_t id, ErrorKind kind,
                              const std::string& message) {
  std::unique_lock<std::mutex> lk(mutex_);
  Job& job = jobs_.at(id);
  job.state = JobState::kFailed;
  job.error_kind = error_kind_name(kind);
  job.error_message = message;
  ++failed_;
  write_journal_locked(job);
  cv_.notify_all();
}

void Scheduler::finish_cancelled(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mutex_);
  Job& job = jobs_.at(id);
  job.state = JobState::kCancelled;
  ++cancelled_;
  write_journal_locked(job);
  cv_.notify_all();
}

void Scheduler::requeue(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mutex_);
  Job& job = jobs_.at(id);
  job.state = JobState::kQueued;
  job.iteration = 0;
  job.matvecs = 0;
  job.metric = 0.0;
  job.target = 0.0;
  job.elapsed_s = 0.0;
  job.eta_s = -1.0;
  // The journal already says queued (running is never journaled), and the
  // solver checkpoint — keyed by job_key — stays on disk, so a successor
  // scheduler resumes instead of restarting.
  cv_.notify_all();
}

std::string Scheduler::journal_path(std::uint64_t id) const {
  return opts_.state_dir + "/job_" + std::to_string(id) + ".job";
}

std::string Scheduler::checkpoint_path(std::uint64_t key) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(key));
  return opts_.state_dir + "/ck_" + hex + ".ckpt";
}

void Scheduler::write_journal_locked(const Job& job) {
  if (opts_.state_dir.empty()) return;
  PayloadWriter w;
  w.put_u64(job.id);
  const JobState journaled =
      job.state == JobState::kRunning ? JobState::kQueued : job.state;
  w.put_u32(static_cast<std::uint32_t>(journaled));
  encode_job_spec(w, job.spec);
  if (journaled == JobState::kDone) encode_job_result(w, job.result);
  if (journaled == JobState::kFailed) {
    w.put_string(job.error_kind);
    w.put_string(job.error_message);
  }
  write_checkpoint(journal_path(job.id), PayloadKind::kServeJob, w.bytes());
}

void Scheduler::load_journals() {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(opts_.state_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 8 && name.rfind("job_", 0) == 0 &&
        name.compare(name.size() - 4, 4, ".job") == 0)
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    try {
      const Checkpoint ck = read_checkpoint(path, PayloadKind::kServeJob);
      PayloadReader r(ck.payload);
      Job job;
      job.id = r.get_u64();
      const std::uint32_t state = r.get_u32();
      job.spec = decode_job_spec(r);
      job.key = job_key(job.spec);
      switch (static_cast<JobState>(state)) {
        case JobState::kQueued:
        case JobState::kRunning:  // defensive: treat as queued
          job.state = JobState::kQueued;
          break;
        case JobState::kDone:
          job.state = JobState::kDone;
          job.result = decode_job_result(r);
          break;
        case JobState::kFailed:
          job.state = JobState::kFailed;
          job.error_kind = r.get_string();
          job.error_message = r.get_string();
          break;
        case JobState::kCancelled:
          job.state = JobState::kCancelled;
          break;
        default:
          throw Error(ErrorKind::io_corrupt, "unknown journaled job state");
      }
      r.require_end();
      next_id_ = std::max(next_id_, job.id + 1);
      jobs_.insert_or_assign(job.id, std::move(job));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gecos-serve: skipping damaged job journal %s: %s\n",
                   path.c_str(), e.what());
    }
  }
}

JobStatus Scheduler::status_locked(const Job& job) const {
  JobStatus st;
  st.id = job.id;
  st.state = job.state;
  st.kind = job.spec.kind;
  st.priority = job.spec.priority;
  st.iteration = job.iteration;
  st.matvecs = job.matvecs;
  st.metric = job.metric;
  st.target = job.target;
  st.elapsed_s = job.elapsed_s;
  st.eta_s = job.eta_s;
  st.error_kind = job.error_kind;
  st.error_message = job.error_message;
  return st;
}

telemetry::ProgressFn Scheduler::progress_for(std::uint64_t id,
                                              bool cancel_throws) {
  return [this, id, cancel_throws](const telemetry::ProgressEvent& ev) {
    std::unique_lock<std::mutex> lk(mutex_);
    Job& job = jobs_.at(id);
    job.iteration = ev.iteration;
    job.matvecs = ev.matvecs;
    job.metric = ev.metric;
    job.target = ev.target;
    job.elapsed_s = ev.elapsed_s;
    job.eta_s = ev.eta_s;
    if (abandon_) throw JobAbandoned{};
    if (cancel_throws && job.cancel_requested) throw JobCancelled{};
  };
}

}  // namespace gecos::serve
