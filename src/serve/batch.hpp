// Observable batching: one evolution pass serving many expectation jobs.
//
// An expectation job evolves a state under H and measures observables at
// every step. The evolution is the expensive part — each Krylov step costs
// tens of matvecs over the sector dimension — while every observable in
// the serve menu (ObservableKind) is DIAGONAL in the occupation basis, so
// measuring one more observable against the already-evolved state is a
// single cheap elementwise sweep, no extra matvecs. The scheduler
// therefore coalesces all queued expectation jobs sharing an
// evolution_key() into ONE pass through run_observable_batch() and splits
// the per-observable columns back out per job: K jobs cost one evolution
// plus K measurement sweeps instead of K evolutions. The serve_batch bench
// entry gates the resulting >= 5x win and the bitwise identity of batched
// vs sequential values (the evolution trajectory is the same object, so
// equality is exact, not approximate). See DESIGN.md "Serving layer".
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fermion/hubbard.hpp"
#include "ops/scb_sum.hpp"
#include "serve/protocol.hpp"
#include "symmetry/sector_operator.hpp"
#include "symmetry/sector_vector.hpp"
#include "telemetry/progress.hpp"

namespace gecos::serve {

/// Builds one observable of the serve menu as a diagonal ScbSum over the
/// lattice's modes (kDensity sums the site's spin modes; kDensityCorr is
/// the ScbSum product, so n_a n_a collapses correctly via the SCB closure;
/// kTotalNumber sums every mode). Throws std::invalid_argument on site
/// indices outside the lattice or kDoublon on a spinless lattice.
ScbSum build_observable(const HubbardParams& p, const ObservableSpec& obs);

/// Outcome of one batched evolution pass. `values` is row-major
/// [step][observable]; expectations of the Hermitian diagonal observables
/// are real, the imaginary parts are dropped.
struct BatchResult {
  std::vector<double> times;      ///< time at each step end (dt, 2dt, ...)
  std::vector<double> values;     ///< [step][observable] expectations
  std::vector<double> loschmidt;  ///< |<psi0|psi(t)>|^2 per step
  std::uint64_t matvecs = 0;      ///< evolution matvecs spent
};

/// Evolves psi0 under h for `steps` Krylov steps of dt and measures every
/// observable after each step — the one-pass core the scheduler and the
/// serve_batch bench share. Observables must live on h's sector. Counts
/// observables beyond the first into telemetry observables_batched. The
/// optional progress sink (phase "serve.batch") fires after every step with
/// the step index, total and matvec count; a throwing sink aborts the pass
/// (the scheduler's cancel/abandon hook).
BatchResult run_observable_batch(
    const SectorOperator& h, const SectorVector& psi0, double dt,
    std::size_t steps,
    std::span<const std::shared_ptr<const SectorOperator>> observables,
    double krylov_tol, const telemetry::ProgressFn& progress = {});

}  // namespace gecos::serve
