// gecosd socket front end: unix-domain accept loop over a Scheduler.
//
// The Server owns nothing but the socket: every piece of job machinery
// (queueing, execution, durability, caching) lives in the Scheduler it
// wraps, so the protocol shim stays small enough to test over a
// socketpair and the daemon's crash-recovery story is exactly the
// scheduler's. Connections are handled one at a time on the caller's
// thread — requests are tiny and replies immediate (submit returns an id,
// not a result), while the solves run on the scheduler's executor; a
// single accept thread therefore keeps every client responsive without a
// connection pool. Each connection must open with the kHello handshake
// (magic + version, rejected loudly on drift); every request either gets
// its paired *Ok reply or a kError frame carrying error_kind_name() + a
// message, so client-side code sees gecos::Error exactly as if the call
// had been in-process. A kShutdown request is acknowledged, the
// connection drains, and serve() returns — the daemon's clean exit path
// (the unclean one, SIGKILL, is covered by the scheduler's journals and
// exercised by tools/serve_smoke.cpp). See DESIGN.md "Serving layer".
#pragma once

#include <string>
#include <vector>

#include "serve/scheduler.hpp"

namespace gecos::serve {

/// Unix-domain-socket protocol front end over a Scheduler.
class Server {
 public:
  /// Binds and listens on `socket_path` (an existing socket file is
  /// unlinked first — stale sockets from a killed daemon must not block
  /// restart). Throws Error{protocol} when the path exceeds the AF_UNIX
  /// limit or the bind fails. The scheduler must outlive the server.
  Server(Scheduler& scheduler, std::string socket_path);
  /// Closes the listening socket and unlinks the path.
  ~Server();

  Server(const Server&) = delete;             ///< owns the socket
  Server& operator=(const Server&) = delete;  ///< owns the socket

  /// Accepts and serves connections until a client sends kShutdown (the
  /// reply is sent and the connection drained before returning). A
  /// malformed connection is dropped with a kError frame where possible;
  /// the loop keeps serving.
  void serve();

  /// The bound socket path.
  const std::string& socket_path() const { return path_; }

 private:
  // Serves one connection to EOF; returns true when it requested shutdown.
  bool handle_connection(int fd);
  // Dispatches one decoded request; fills `reply` (never empty) and sets
  // `shutdown` on kShutdown.
  std::vector<unsigned char> handle_request(
      std::span<const unsigned char> payload, bool& shutdown);

  Scheduler& scheduler_;
  std::string path_;
  int listen_fd_ = -1;
};

}  // namespace gecos::serve
