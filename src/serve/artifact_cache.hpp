// Cross-request artifact cache: content-hashed, LRU-bounded, refcounted.
//
// A gecosd process serves many jobs against few distinct physical setups:
// the same lattice's Hamiltonian, the same sector's compiled operator, the
// same observable set. Before this cache each job rebuilt them from
// scratch — Jordan-Wigner expansion, transition canonicalization, kernel
// compilation, hop-table precomputation — work that dwarfs a warm solve.
// ROADMAP item 3 names the fix: hoist those function-local artifacts into
// shared, refcounted objects keyed by content.
//
// Keys are 64-bit content hashes of the canonical parameter encoding (the
// caller picks the hash; the serve layer uses xxh64 over PayloadWriter
// bytes with a per-artifact-type tag). Values are type-erased
// shared_ptr<const void> with the concrete type_info recorded: a key
// colliding across types is treated as a miss rather than a wrong-type
// cast. Eviction is LRU by byte budget, and an entry some caller still
// pins (use_count > 1) is never evicted — the budget bounds IDLE bytes,
// live working sets are allowed to exceed it. Builds run OUTSIDE the lock
// (they can take seconds), so two racing builders may both build; the
// first insert wins and the loser adopts it, keeping the pointer-identity
// guarantee. Hits/misses/evictions feed both local accessors and the
// telemetry registry (artifact_hits / artifact_misses /
// artifact_evictions) — the serve_batch bench's warm-cache gate reads
// them. See DESIGN.md "Serving layer".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <typeinfo>
#include <utility>

#include "fermion/hubbard.hpp"
#include "serve/protocol.hpp"
#include "symmetry/sector_operator.hpp"

namespace gecos::serve {

/// Content-hash keyed LRU cache of immutable simulation artifacts.
class ArtifactCache {
 public:
  /// Cache with an idle-byte budget (see the file comment; pinned entries
  /// are exempt from eviction).
  explicit ArtifactCache(std::size_t byte_budget) : budget_(byte_budget) {}

  /// Returns the cached artifact for `key`, or builds one with `build` (a
  /// callable returning std::shared_ptr<const T>) and caches it under
  /// `bytes_of(*built)` accounted bytes. Type-checked: a key present under
  /// a different T is a miss. Thread-safe; build runs outside the lock —
  /// racing builders both build, the first insert wins and the loser
  /// adopts it (pointer identity preserved).
  template <class T, class Build, class BytesOf> std::shared_ptr<const T>
  get_or_build(std::uint64_t key, Build&& build, BytesOf&& bytes_of) {
    if (auto hit = lookup(key, typeid(T)))
      return std::static_pointer_cast<const T>(hit);
    std::shared_ptr<const T> built = std::forward<Build>(build)();
    auto adopted =
        insert(key, typeid(T), std::static_pointer_cast<const void>(built),
               std::forward<BytesOf>(bytes_of)(*built));
    return std::static_pointer_cast<const T>(adopted);
  }

  /// Lifetime lookup/build/eviction counters and resident totals.
  std::uint64_t hits() const;
  std::uint64_t misses() const;      ///< lookups that had to build
  std::uint64_t evictions() const;   ///< entries LRU-evicted
  std::size_t resident_bytes() const;    ///< accounted bytes resident now
  std::size_t resident_entries() const;  ///< entries resident now

  /// Drops every unpinned entry (pinned entries stay; their bytes remain
  /// accounted until released and re-swept).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;
  };

  std::shared_ptr<const void> lookup(std::uint64_t key,
                                     const std::type_info& type);
  std::shared_ptr<const void> insert(std::uint64_t key,
                                     const std::type_info& type,
                                     std::shared_ptr<const void> value,
                                     std::size_t bytes);
  void evict_locked();

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> entries_;
  std::size_t budget_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t seq_ = 0;  // LRU clock
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The lattice Hamiltonian as a shared ScbSum (JW expansion cached; its
/// compiled-kernel cache is shared by all copies, see ops/scb_sum.hpp).
std::shared_ptr<const ScbSum> cached_hubbard(ArtifactCache& cache,
                                             const HubbardParams& p);

/// The lattice Hamiltonian compiled into the (n_up, n_down) sector —
/// kernels, fused diagonal and hop tables built once per cache lifetime.
std::shared_ptr<const SectorOperator> cached_sector_op(ArtifactCache& cache,
                                                       const HubbardParams& p,
                                                       std::uint32_t n_up,
                                                       std::uint32_t n_down);

/// A diagonal observable compiled into the same sector (for batched
/// expectation sweeps).
std::shared_ptr<const SectorOperator> cached_observable(
    ArtifactCache& cache, const HubbardParams& p, std::uint32_t n_up,
    std::uint32_t n_down, const ObservableSpec& obs);

}  // namespace gecos::serve
