#include "serve/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/xxhash.hpp"

namespace gecos::serve {

namespace {

// Hash seeds separating the two key domains: equal bytes under different
// seeds still produce unrelated keys.
constexpr std::uint64_t kJobKeySeed = 0x4A4F424B45593031ULL;   // "JOBKEY01"
constexpr std::uint64_t kEvolKeySeed = 0x45564F4C4B455931ULL;  // "EVOLKEY1"

void put_bool(PayloadWriter& w, bool b) { w.put_u32(b ? 1 : 0); }

bool get_bool(PayloadReader& r) {
  const std::uint32_t v = r.get_u32();
  if (v > 1) throw Error(ErrorKind::protocol, "boolean field out of range");
  return v != 0;
}

void put_doubles(PayloadWriter& w, const std::vector<double>& v) {
  w.put_u64(v.size());
  for (const double x : v) w.put_f64(x);
}

std::vector<double> get_doubles(PayloadReader& r) {
  const std::uint64_t n = r.get_u64();
  if (n > r.remaining() / sizeof(double))
    throw Error(ErrorKind::protocol, "array length exceeds payload");
  std::vector<double> v(n);
  for (double& x : v) x = r.get_f64();
  return v;
}

// Exact read/write loops over a blocking fd, EINTR-restarted. Return false
// on EOF (read) / error instead of throwing so callers choose the message.
bool read_exact(int fd, unsigned char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t k = ::read(fd, buf + done, n - done);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    done += static_cast<std::size_t>(k);
  }
  return true;
}

bool write_exact(int fd, const unsigned char* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t k = ::write(fd, buf + done, n - done);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

void encode_lattice(PayloadWriter& w, const HubbardParams& p) {
  w.put_u64(p.lx);
  w.put_u64(p.ly);
  w.put_f64(p.t);
  w.put_f64(p.u);
  w.put_f64(p.mu);
  put_bool(w, p.periodic_x);
  put_bool(w, p.periodic_y);
  put_bool(w, p.spinful);
}

HubbardParams decode_lattice(PayloadReader& r) {
  HubbardParams p;
  p.lx = r.get_u64();
  p.ly = r.get_u64();
  p.t = r.get_f64();
  p.u = r.get_f64();
  p.mu = r.get_f64();
  p.periodic_x = get_bool(r);
  p.periodic_y = get_bool(r);
  p.spinful = get_bool(r);
  return p;
}

void validate_job_spec(const JobSpec& spec) {
  const auto fail = [](const char* what) {
    throw Error(ErrorKind::protocol, std::string("invalid job spec: ") + what);
  };
  if (spec.kind != JobKind::kGroundState && spec.kind != JobKind::kQuench &&
      spec.kind != JobKind::kExpectation && spec.kind != JobKind::kSpectral)
    fail("unknown job kind");
  if (spec.lattice.lx < 1 || spec.lattice.ly < 1) fail("empty lattice");
  const std::size_t modes = hubbard_num_modes(spec.lattice);
  if (modes > 63) fail("lattice exceeds 63 modes");
  if (!spec.use_sector && modes > 24)
    fail("full-space jobs are limited to 24 modes (use a sector)");
  if (spec.use_sector) {
    // hubbard_sector re-validates, but failing here keeps the error a
    // protocol error with the field name instead of an invalid_argument
    // from deep inside the symmetry layer.
    const std::size_t up_bits = spec.lattice.spinful ? modes / 2 : modes;
    const std::size_t dn_bits = spec.lattice.spinful ? modes / 2 : 0;
    if (spec.n_up > up_bits) fail("n_up exceeds species mode count");
    if (spec.n_down > dn_bits) fail("n_down exceeds species mode count");
  }
  if (spec.tol <= 0.0) fail("tol must be positive");
  if (spec.kind == JobKind::kGroundState) {
    if (spec.num_eigenpairs < 1) fail("num_eigenpairs must be >= 1");
    if (spec.max_matvecs < 1) fail("max_matvecs must be >= 1");
  }
  if (spec.kind == JobKind::kQuench || spec.kind == JobKind::kExpectation) {
    if (spec.steps < 1) fail("steps must be >= 1 for evolution jobs");
    if (!(spec.dt > 0.0)) fail("dt must be positive");
  }
  // Evolution and spectral jobs run on sector states (the batching core and
  // the probe construction are sector-based); full-space variants are a
  // ground-state-only facility.
  if (spec.kind != JobKind::kGroundState && !spec.use_sector)
    fail("evolution and spectral jobs require use_sector");
  if (spec.kind == JobKind::kExpectation && spec.observables.empty())
    fail("expectation job without observables");
  const std::size_t sites = hubbard_num_sites(spec.lattice);
  for (const ObservableSpec& o : spec.observables) {
    if (o.kind != ObservableKind::kDensity &&
        o.kind != ObservableKind::kDoublon &&
        o.kind != ObservableKind::kDensityCorr &&
        o.kind != ObservableKind::kTotalNumber)
      fail("unknown observable kind");
    if (o.kind == ObservableKind::kDoublon && !spec.lattice.spinful)
      fail("doublon observable requires a spinful lattice");
    if (o.site_a >= sites || (o.kind == ObservableKind::kDensityCorr &&
                              o.site_b >= sites))
      fail("observable site index out of range");
  }
  if (spec.kind == JobKind::kSpectral) {
    if (spec.max_moments < 1) fail("max_moments must be >= 1");
    if (!(spec.eta > 0.0)) fail("eta must be positive");
    if (!(spec.w_max > spec.w_min)) fail("w_max must exceed w_min");
    if (spec.w_points < 2) fail("w_points must be >= 2");
  }
}

void encode_job_spec(PayloadWriter& w, const JobSpec& spec) {
  w.put_u32(static_cast<std::uint32_t>(spec.kind));
  encode_lattice(w, spec.lattice);
  put_bool(w, spec.use_sector);
  w.put_u32(spec.n_up);
  w.put_u32(spec.n_down);
  w.put_u32(spec.num_eigenpairs);
  w.put_f64(spec.tol);
  w.put_u64(spec.max_matvecs);
  w.put_u64(spec.seed);
  w.put_u64(spec.checkpoint_interval);
  w.put_f64(spec.dt);
  w.put_u64(spec.steps);
  w.put_u64(spec.initial_occupation);
  w.put_u64(spec.observables.size());
  for (const ObservableSpec& o : spec.observables) {
    w.put_u32(static_cast<std::uint32_t>(o.kind));
    w.put_u32(o.site_a);
    w.put_u32(o.site_b);
  }
  w.put_f64(spec.eta);
  w.put_u64(spec.max_moments);
  w.put_f64(spec.w_min);
  w.put_f64(spec.w_max);
  w.put_u64(spec.w_points);
  w.put_u32(spec.priority);
}

JobSpec decode_job_spec(PayloadReader& r) {
  JobSpec spec;
  spec.kind = static_cast<JobKind>(r.get_u32());
  spec.lattice = decode_lattice(r);
  spec.use_sector = get_bool(r);
  spec.n_up = r.get_u32();
  spec.n_down = r.get_u32();
  spec.num_eigenpairs = r.get_u32();
  spec.tol = r.get_f64();
  spec.max_matvecs = r.get_u64();
  spec.seed = r.get_u64();
  spec.checkpoint_interval = r.get_u64();
  spec.dt = r.get_f64();
  spec.steps = r.get_u64();
  spec.initial_occupation = r.get_u64();
  const std::uint64_t n_obs = r.get_u64();
  if (n_obs > r.remaining() / (3 * sizeof(std::uint32_t)))
    throw Error(ErrorKind::protocol, "observable count exceeds payload");
  spec.observables.resize(n_obs);
  for (ObservableSpec& o : spec.observables) {
    o.kind = static_cast<ObservableKind>(r.get_u32());
    o.site_a = r.get_u32();
    o.site_b = r.get_u32();
  }
  spec.eta = r.get_f64();
  spec.max_moments = r.get_u64();
  spec.w_min = r.get_f64();
  spec.w_max = r.get_f64();
  spec.w_points = r.get_u64();
  spec.priority = r.get_u32();
  return spec;
}

void encode_job_result(PayloadWriter& w, const JobResult& res) {
  w.put_u32(static_cast<std::uint32_t>(res.kind));
  put_doubles(w, res.eigenvalues);
  put_doubles(w, res.residuals);
  put_doubles(w, res.residual_history);
  w.put_u64(res.matvecs);
  w.put_u64(res.iterations);
  put_bool(w, res.converged);
  put_bool(w, res.resumed);
  put_doubles(w, res.times);
  put_doubles(w, res.values);
  put_doubles(w, res.loschmidt);
  put_doubles(w, res.omega);
  put_doubles(w, res.spectral);
}

JobResult decode_job_result(PayloadReader& r) {
  JobResult res;
  res.kind = static_cast<JobKind>(r.get_u32());
  res.eigenvalues = get_doubles(r);
  res.residuals = get_doubles(r);
  res.residual_history = get_doubles(r);
  res.matvecs = r.get_u64();
  res.iterations = r.get_u64();
  res.converged = get_bool(r);
  res.resumed = get_bool(r);
  res.times = get_doubles(r);
  res.values = get_doubles(r);
  res.loschmidt = get_doubles(r);
  res.omega = get_doubles(r);
  res.spectral = get_doubles(r);
  return res;
}

void encode_job_status(PayloadWriter& w, const JobStatus& st) {
  w.put_u64(st.id);
  w.put_u32(static_cast<std::uint32_t>(st.state));
  w.put_u32(static_cast<std::uint32_t>(st.kind));
  w.put_u32(st.priority);
  w.put_u64(st.iteration);
  w.put_u64(st.matvecs);
  w.put_f64(st.metric);
  w.put_f64(st.target);
  w.put_f64(st.elapsed_s);
  w.put_f64(st.eta_s);
  w.put_string(st.error_kind);
  w.put_string(st.error_message);
}

JobStatus decode_job_status(PayloadReader& r) {
  JobStatus st;
  st.id = r.get_u64();
  st.state = static_cast<JobState>(r.get_u32());
  st.kind = static_cast<JobKind>(r.get_u32());
  st.priority = r.get_u32();
  st.iteration = r.get_u64();
  st.matvecs = r.get_u64();
  st.metric = r.get_f64();
  st.target = r.get_f64();
  st.elapsed_s = r.get_f64();
  st.eta_s = r.get_f64();
  st.error_kind = r.get_string();
  st.error_message = r.get_string();
  return st;
}

void encode_server_stats(PayloadWriter& w, const ServerStats& st) {
  w.put_u64(st.submitted);
  w.put_u64(st.completed);
  w.put_u64(st.failed);
  w.put_u64(st.cancelled);
  w.put_u64(st.batch_passes);
  w.put_u64(st.batched_jobs);
  w.put_u64(st.cache_hits);
  w.put_u64(st.cache_misses);
  w.put_u64(st.cache_evictions);
  w.put_u64(st.cache_bytes);
  w.put_u64(st.cache_entries);
  w.put_u64(st.queue_depth);
  w.put_u64(st.running);
}

ServerStats decode_server_stats(PayloadReader& r) {
  ServerStats st;
  st.submitted = r.get_u64();
  st.completed = r.get_u64();
  st.failed = r.get_u64();
  st.cancelled = r.get_u64();
  st.batch_passes = r.get_u64();
  st.batched_jobs = r.get_u64();
  st.cache_hits = r.get_u64();
  st.cache_misses = r.get_u64();
  st.cache_evictions = r.get_u64();
  st.cache_bytes = r.get_u64();
  st.cache_entries = r.get_u64();
  st.queue_depth = r.get_u64();
  st.running = r.get_u64();
  return st;
}

std::uint64_t job_key(const JobSpec& spec) {
  // Canonical encoding with the priority zeroed: two submissions differing
  // only in priority name the same artifact.
  JobSpec canon = spec;
  canon.priority = 0;
  PayloadWriter w;
  encode_job_spec(w, canon);
  return xxh64(w.bytes().data(), w.bytes().size(), kJobKeySeed);
}

std::uint64_t evolution_key(const JobSpec& spec) {
  PayloadWriter w;
  encode_lattice(w, spec.lattice);
  put_bool(w, spec.use_sector);
  w.put_u32(spec.n_up);
  w.put_u32(spec.n_down);
  w.put_f64(spec.dt);
  w.put_u64(spec.steps);
  w.put_u64(spec.initial_occupation);
  w.put_f64(spec.tol);
  w.put_u64(spec.seed);
  return xxh64(w.bytes().data(), w.bytes().size(), kEvolKeySeed);
}

void write_frame(int fd, std::span<const unsigned char> payload) {
  if (payload.size() > kMaxFrameBytes)
    throw Error(ErrorKind::protocol, "frame payload exceeds kMaxFrameBytes");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char hdr[sizeof(len)];
  std::memcpy(hdr, &len, sizeof(len));
  if (!write_exact(fd, hdr, sizeof(hdr)) ||
      !write_exact(fd, payload.data(), payload.size()))
    throw Error(ErrorKind::protocol, "short write on frame");
}

std::vector<unsigned char> read_frame(int fd) {
  std::uint32_t len = 0;
  unsigned char hdr[sizeof(len)];
  // Distinguish clean EOF (peer closed between frames) from EOF mid-frame:
  // the first byte read decides which.
  const ssize_t first = [&] {
    for (;;) {
      const ssize_t k = ::read(fd, hdr, 1);
      if (k < 0 && errno == EINTR) continue;
      return k;
    }
  }();
  if (first == 0) return {};
  if (first < 0 || !read_exact(fd, hdr + 1, sizeof(hdr) - 1))
    throw Error(ErrorKind::protocol, "short read on frame length");
  std::memcpy(&len, hdr, sizeof(len));
  if (len > kMaxFrameBytes)
    throw Error(ErrorKind::protocol, "frame length exceeds kMaxFrameBytes");
  std::vector<unsigned char> payload(len);
  if (len > 0 && !read_exact(fd, payload.data(), len))
    throw Error(ErrorKind::protocol, "short read on frame payload");
  return payload;
}

std::vector<unsigned char> encode_error_frame(ErrorKind kind,
                                              const std::string& message) {
  PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(MsgType::kError));
  w.put_string(error_kind_name(kind));
  w.put_string(message);
  return {w.bytes().begin(), w.bytes().end()};
}

PayloadReader expect_reply(std::span<const unsigned char> payload,
                           MsgType expect) {
  PayloadReader r(payload);
  const MsgType type = static_cast<MsgType>(r.get_u32());
  if (type == MsgType::kError) {
    const std::string kind_name = r.get_string();
    const std::string message = r.get_string();
    ErrorKind kind = ErrorKind::protocol;
    if (!parse_error_kind(kind_name, kind)) kind = ErrorKind::protocol;
    throw Error(kind, message);
  }
  if (type != expect)
    throw Error(ErrorKind::protocol, "unexpected reply message type");
  return r;
}

}  // namespace gecos::serve
