#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace gecos::serve {

Server::Server(Scheduler& scheduler, std::string socket_path)
    : scheduler_(scheduler), path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.empty() || path_.size() >= sizeof(addr.sun_path))
    throw Error(ErrorKind::protocol,
                "socket path empty or exceeds AF_UNIX limit: " + path_);
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw Error(ErrorKind::protocol,
                std::string("socket(): ") + std::strerror(errno));
  // A daemon killed hard leaves its socket file behind; restart must not
  // require manual cleanup.
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrorKind::protocol, "bind(" + path_ + "): " +
                                         std::strerror(err));
  }
  if (::listen(listen_fd_, 8) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    throw Error(ErrorKind::protocol,
                std::string("listen(): ") + std::strerror(err));
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

void Server::serve() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorKind::protocol,
                  std::string("accept(): ") + std::strerror(errno));
    }
    bool shutdown = false;
    try {
      shutdown = handle_connection(fd);
    } catch (const std::exception& e) {
      // A torn frame mid-connection; drop the client, keep the daemon.
      std::fprintf(stderr, "gecosd: dropping connection: %s\n", e.what());
    }
    ::close(fd);
    if (shutdown) return;
  }
}

bool Server::handle_connection(int fd) {
  // Handshake: first frame must be kHello carrying magic + version.
  {
    const std::vector<unsigned char> hello = read_frame(fd);
    if (hello.empty()) return false;  // connected and left
    try {
      PayloadReader r(hello);
      if (static_cast<MsgType>(r.get_u32()) != MsgType::kHello)
        throw Error(ErrorKind::protocol, "first frame must be hello");
      const std::string magic = r.get_string();
      if (magic != std::string(kServeMagic, sizeof(kServeMagic)))
        throw Error(ErrorKind::protocol, "bad protocol magic");
      const std::uint32_t version = r.get_u32();
      r.require_end();
      if (version != kServeVersion)
        throw Error(ErrorKind::version_mismatch,
                    "client speaks protocol version " +
                        std::to_string(version) + ", server speaks " +
                        std::to_string(kServeVersion));
      PayloadWriter w;
      w.put_u32(static_cast<std::uint32_t>(MsgType::kHelloOk));
      w.put_u32(kServeVersion);
      write_frame(fd, w.bytes());
    } catch (const Error& e) {
      write_frame(fd, encode_error_frame(e.kind(), e.what()));
      return false;
    }
  }
  // Request loop to EOF or shutdown.
  for (;;) {
    const std::vector<unsigned char> payload = read_frame(fd);
    if (payload.empty()) return false;  // clean close
    bool shutdown = false;
    const std::vector<unsigned char> reply =
        handle_request(payload, shutdown);
    write_frame(fd, reply);
    if (shutdown) {
      // Drain until the client closes so its final read never races the
      // server's close().
      while (!read_frame(fd).empty()) {
      }
      return true;
    }
  }
}

std::vector<unsigned char> Server::handle_request(
    std::span<const unsigned char> payload, bool& shutdown) {
  try {
    PayloadReader r(payload);
    const MsgType type = static_cast<MsgType>(r.get_u32());
    PayloadWriter w;
    switch (type) {
      case MsgType::kSubmit: {
        const JobSpec spec = decode_job_spec(r);
        r.require_end();
        const std::uint64_t id = scheduler_.submit(spec);
        w.put_u32(static_cast<std::uint32_t>(MsgType::kSubmitOk));
        w.put_u64(id);
        break;
      }
      case MsgType::kStatus: {
        const std::uint64_t id = r.get_u64();
        r.require_end();
        w.put_u32(static_cast<std::uint32_t>(MsgType::kStatusOk));
        encode_job_status(w, scheduler_.status(id));
        break;
      }
      case MsgType::kCancel: {
        const std::uint64_t id = r.get_u64();
        r.require_end();
        const bool accepted = scheduler_.cancel(id);
        w.put_u32(static_cast<std::uint32_t>(MsgType::kCancelOk));
        w.put_u32(accepted ? 1 : 0);
        break;
      }
      case MsgType::kFetch: {
        const std::uint64_t id = r.get_u64();
        r.require_end();
        const JobResult res = scheduler_.fetch(id);
        w.put_u32(static_cast<std::uint32_t>(MsgType::kFetchOk));
        encode_job_result(w, res);
        break;
      }
      case MsgType::kStats: {
        r.require_end();
        w.put_u32(static_cast<std::uint32_t>(MsgType::kStatsOk));
        encode_server_stats(w, scheduler_.stats());
        break;
      }
      case MsgType::kShutdown: {
        r.require_end();
        shutdown = true;
        w.put_u32(static_cast<std::uint32_t>(MsgType::kShutdownOk));
        break;
      }
      default:
        throw Error(ErrorKind::protocol,
                    "unexpected message type " +
                        std::to_string(static_cast<std::uint32_t>(type)));
    }
    return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
  } catch (const Error& e) {
    return encode_error_frame(e.kind(), e.what());
  } catch (const std::invalid_argument& e) {
    return encode_error_frame(ErrorKind::protocol, e.what());
  } catch (const std::exception& e) {
    return encode_error_frame(ErrorKind::breakdown, e.what());
  }
}

}  // namespace gecos::serve
