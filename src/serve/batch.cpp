#include "serve/batch.hpp"

#include <stdexcept>

#include "solver/krylov_evolve.hpp"
#include "telemetry/telemetry.hpp"

namespace gecos::serve {

namespace {

// One N-word: |1><1| projectors at the given modes, identity elsewhere.
void add_number_word(ScbSum& sum, std::size_t num_modes,
                     std::span<const std::uint32_t> modes, cplx coeff) {
  std::vector<Scb> word(num_modes, Scb::I);
  for (const std::uint32_t m : modes) word[m] = Scb::N;
  sum.add(word, coeff);
}

// Site density n_site = sum over the site's spin modes of N.
ScbSum site_density(const HubbardParams& p, std::uint32_t site) {
  const std::size_t num_modes = hubbard_num_modes(p);
  const std::size_t x = site % p.lx;
  const std::size_t y = site / p.lx;
  ScbSum sum(num_modes);
  const int spins = p.spinful ? 2 : 1;
  for (int sp = 0; sp < spins; ++sp) {
    const std::uint32_t m = hubbard_mode(p, x, y, sp);
    add_number_word(sum, num_modes, std::span(&m, 1), cplx(1.0));
  }
  return sum;
}

}  // namespace

ScbSum build_observable(const HubbardParams& p, const ObservableSpec& obs) {
  const std::size_t sites = hubbard_num_sites(p);
  const std::size_t num_modes = hubbard_num_modes(p);
  if (obs.site_a >= sites)
    throw std::invalid_argument("build_observable: site_a out of range");
  switch (obs.kind) {
    case ObservableKind::kDensity:
      return site_density(p, obs.site_a);
    case ObservableKind::kDoublon: {
      if (!p.spinful)
        throw std::invalid_argument(
            "build_observable: doublon needs a spinful lattice");
      const std::size_t x = obs.site_a % p.lx;
      const std::size_t y = obs.site_a / p.lx;
      const std::uint32_t modes[2] = {hubbard_mode(p, x, y, 0),
                                      hubbard_mode(p, x, y, 1)};
      ScbSum sum(num_modes);
      add_number_word(sum, num_modes, modes, cplx(1.0));
      return sum;
    }
    case ObservableKind::kDensityCorr: {
      if (obs.site_b >= sites)
        throw std::invalid_argument("build_observable: site_b out of range");
      // The SCB closure does the work: N * N = N per mode, so the a == b
      // diagonal and the shared-mode cross terms collapse exactly.
      return site_density(p, obs.site_a) * site_density(p, obs.site_b);
    }
    case ObservableKind::kTotalNumber: {
      ScbSum sum(num_modes);
      for (std::uint32_t m = 0; m < num_modes; ++m)
        add_number_word(sum, num_modes, std::span(&m, 1), cplx(1.0));
      return sum;
    }
  }
  throw std::invalid_argument("build_observable: unknown observable kind");
}

BatchResult run_observable_batch(
    const SectorOperator& h, const SectorVector& psi0, double dt,
    std::size_t steps,
    std::span<const std::shared_ptr<const SectorOperator>> observables,
    double krylov_tol, const telemetry::ProgressFn& progress) {
  if (steps == 0)
    throw std::invalid_argument("run_observable_batch: steps must be >= 1");
  for (const auto& obs : observables)
    if (obs == nullptr || !(obs->basis() == h.basis()))
      throw std::invalid_argument(
          "run_observable_batch: observable sector mismatch");
  KrylovOptions ko;
  ko.tol = krylov_tol;
  const KrylovEvolver evolver(h, ko);

  BatchResult out;
  out.times.reserve(steps);
  out.loschmidt.reserve(steps);
  out.values.reserve(steps * observables.size());
  if (observables.size() > 1)
    telemetry::count(telemetry::Counter::observables_batched,
                     observables.size() - 1);

  const std::uint64_t t0 = telemetry::now_ns();
  SectorVector psi = psi0;
  for (std::size_t s = 0; s < steps; ++s) {
    evolver.step(psi.amps(), dt);
    out.matvecs += evolver.last_matvecs();
    out.times.push_back(dt * static_cast<double>(s + 1));
    const cplx overlap = psi0.inner(psi);
    out.loschmidt.push_back(std::norm(overlap));
    for (const auto& obs : observables)
      out.values.push_back(psi.expectation(*obs).real());
    if (progress) {
      telemetry::ProgressEvent ev;
      ev.phase = "serve.batch";
      ev.iteration = s + 1;
      ev.total = steps;
      ev.matvecs = static_cast<std::size_t>(out.matvecs);
      ev.elapsed_s =
          static_cast<double>(telemetry::now_ns() - t0) * 1e-9;
      if (s + 1 < steps)
        ev.eta_s = ev.elapsed_s * static_cast<double>(steps - s - 1) /
                   static_cast<double>(s + 1);
      else
        ev.eta_s = 0.0;
      progress(ev);
    }
  }
  return out;
}

}  // namespace gecos::serve
