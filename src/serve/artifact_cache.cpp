#include "serve/artifact_cache.hpp"

#include "io/xxhash.hpp"
#include "serve/batch.hpp"
#include "telemetry/telemetry.hpp"

namespace gecos::serve {

namespace {

// Per-artifact-type hash tags: the same lattice bytes keyed as a Hubbard
// sum, a sector operator or an observable never collide.
constexpr std::uint64_t kHubbardTag = 0x4855424201ULL;
constexpr std::uint64_t kSectorOpTag = 0x534543544F500001ULL;
constexpr std::uint64_t kObservableTag = 0x4F42530000000001ULL;

std::uint64_t hash_payload(const PayloadWriter& w, std::uint64_t tag) {
  return xxh64(w.bytes().data(), w.bytes().size(), tag);
}

// Rough byte accounting per artifact type. Exactness is not needed — the
// budget bounds idle memory, and these track the dominant allocations.
std::size_t scb_sum_bytes(const ScbSum& s) {
  return s.size() * (s.num_qubits() * sizeof(Scb) + 64);
}

std::size_t sector_op_bytes(const SectorOperator& op) {
  // Hop tables dominate (4 B per kernel per rank); the shared config table
  // (8 B per rank) is counted once even though it is registry-shared.
  return op.dim() * (8 + 4 * op.num_hop_kernels()) + 4096;
}

}  // namespace

std::uint64_t ArtifactCache::hits() const {
  std::scoped_lock<std::mutex> lk(mutex_);
  return hits_;
}

std::uint64_t ArtifactCache::misses() const {
  std::scoped_lock<std::mutex> lk(mutex_);
  return misses_;
}

std::uint64_t ArtifactCache::evictions() const {
  std::scoped_lock<std::mutex> lk(mutex_);
  return evictions_;
}

std::size_t ArtifactCache::resident_bytes() const {
  std::scoped_lock<std::mutex> lk(mutex_);
  return bytes_;
}

std::size_t ArtifactCache::resident_entries() const {
  std::scoped_lock<std::mutex> lk(mutex_);
  return entries_.size();
}

void ArtifactCache::clear() {
  std::scoped_lock<std::mutex> lk(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.value.use_count() == 1) {
      bytes_ -= it->second.bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::shared_ptr<const void> ArtifactCache::lookup(std::uint64_t key,
                                                  const std::type_info& type) {
  std::scoped_lock<std::mutex> lk(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end() && *it->second.type == type) {
    ++hits_;
    it->second.last_use = ++seq_;
    telemetry::count(telemetry::Counter::artifact_hits);
    return it->second.value;
  }
  ++misses_;
  telemetry::count(telemetry::Counter::artifact_misses);
  return nullptr;
}

std::shared_ptr<const void> ArtifactCache::insert(
    std::uint64_t key, const std::type_info& type,
    std::shared_ptr<const void> value, std::size_t bytes) {
  std::scoped_lock<std::mutex> lk(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing builder won while we were building outside the lock (or a
    // key collided across types — then overwrite). Adopt the winner so
    // every caller holds the SAME object: pointer identity is what makes
    // shared kernel caches and config tables actually shared.
    if (*it->second.type == type) return it->second.value;
    bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  Entry e;
  e.value = std::move(value);
  e.type = &type;
  e.bytes = bytes;
  e.last_use = ++seq_;
  bytes_ += bytes;
  auto stored = e.value;
  entries_.emplace(key, std::move(e));
  evict_locked();
  return stored;
}

void ArtifactCache::evict_locked() {
  // LRU scan until under budget; entries some caller still pins
  // (use_count > 1: ours plus theirs) are exempt — the budget bounds idle
  // bytes, not the live working set.
  while (bytes_ > budget_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.value.use_count() > 1) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use)
        victim = it;
    }
    if (victim == entries_.end()) return;  // everything pinned
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
    telemetry::count(telemetry::Counter::artifact_evictions);
  }
}

std::shared_ptr<const ScbSum> cached_hubbard(ArtifactCache& cache,
                                             const HubbardParams& p) {
  PayloadWriter w;
  encode_lattice(w, p);
  const std::uint64_t key = hash_payload(w, kHubbardTag);
  return cache.get_or_build<ScbSum>(
      key, [&] { return std::make_shared<const ScbSum>(hubbard_scb(p)); },
      scb_sum_bytes);
}

std::shared_ptr<const SectorOperator> cached_sector_op(ArtifactCache& cache,
                                                       const HubbardParams& p,
                                                       std::uint32_t n_up,
                                                       std::uint32_t n_down) {
  PayloadWriter w;
  encode_lattice(w, p);
  w.put_u32(n_up);
  w.put_u32(n_down);
  const std::uint64_t key = hash_payload(w, kSectorOpTag);
  return cache.get_or_build<SectorOperator>(
      key,
      [&] {
        const std::shared_ptr<const ScbSum> h = cached_hubbard(cache, p);
        return std::make_shared<const SectorOperator>(
            hubbard_sector(p, n_up, n_down), *h);
      },
      sector_op_bytes);
}

std::shared_ptr<const SectorOperator> cached_observable(
    ArtifactCache& cache, const HubbardParams& p, std::uint32_t n_up,
    std::uint32_t n_down, const ObservableSpec& obs) {
  PayloadWriter w;
  encode_lattice(w, p);
  w.put_u32(n_up);
  w.put_u32(n_down);
  w.put_u32(static_cast<std::uint32_t>(obs.kind));
  w.put_u32(obs.site_a);
  w.put_u32(obs.site_b);
  const std::uint64_t key = hash_payload(w, kObservableTag);
  return cache.get_or_build<SectorOperator>(
      key,
      [&] {
        return std::make_shared<const SectorOperator>(
            hubbard_sector(p, n_up, n_down), build_observable(p, obs));
      },
      sector_op_bytes);
}

}  // namespace gecos::serve
