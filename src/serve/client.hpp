// gecosd client: typed request methods over one daemon connection.
//
// The Client wraps a connected unix-domain socket and turns each protocol
// exchange into an ordinary method call: encode the request, write one
// frame, read one frame, decode the paired *Ok reply. A kError reply is
// parsed and rethrown as the gecos::Error the daemon caught, so calling
// through a daemon looks exactly like calling the Scheduler in-process —
// the same kinds, the same messages, one extra hop. The constructor runs
// the kHello handshake eagerly; version drift therefore fails at
// connection time, not on the first real request. The connection is used
// synchronously from one thread (the protocol is strict request/reply);
// open one Client per thread for concurrent use. See DESIGN.md "Serving
// layer".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace gecos::serve {

/// Synchronous request/reply connection to a gecosd daemon.
class Client {
 public:
  /// Connects to the daemon socket and completes the kHello handshake.
  /// Throws Error{protocol} when the connect fails and
  /// Error{version_mismatch} on protocol drift.
  explicit Client(const std::string& socket_path);
  /// Closes the connection.
  ~Client();

  Client(const Client&) = delete;             ///< owns the socket
  Client& operator=(const Client&) = delete;  ///< owns the socket

  /// Submits a job; returns the daemon-assigned job id.
  std::uint64_t submit(const JobSpec& spec);

  /// Point-in-time status of a job.
  JobStatus status(std::uint64_t id);

  /// Requests cancellation; true when the daemon accepted it (the job was
  /// not yet terminal).
  bool cancel(std::uint64_t id);

  /// Fetches the result of a kDone job; rethrows the daemon's error for
  /// failed/cancelled/pending jobs.
  JobResult fetch(std::uint64_t id);

  /// Daemon aggregate counters.
  ServerStats stats();

  /// Asks the daemon to exit after acknowledging.
  void shutdown();

  /// Polls status every poll_s until the job is terminal or timeout_s
  /// elapses; returns the last status seen (check .state — a timeout
  /// returns a non-terminal snapshot rather than throwing).
  JobStatus wait(std::uint64_t id, double timeout_s, double poll_s = 0.05);

 private:
  // One framed round trip; returns the reply payload positioned past the
  // expected MsgType (kError replies throw).
  std::vector<unsigned char> request(std::span<const unsigned char> payload);

  int fd_ = -1;
};

}  // namespace gecos::serve
