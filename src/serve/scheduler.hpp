// Job scheduler: priority queue, durable jobs, observable batching.
//
// The execution core of gecosd, usable in-process without any socket (the
// serve_batch bench and the scheduler tests drive it directly; the Server
// is a thin protocol shim over it). One executor thread drains a priority
// queue (higher priority first, submission order within a priority); the
// solvers themselves parallelize through the existing thread pool, so one
// job at a time saturates the machine and jobs never fight over it.
//
// Durability rides entirely on src/io/: every submitted job is journaled
// to `<state_dir>/job_<id>.job` (PayloadKind::kServeJob) at accept time
// and rewritten only on reaching a terminal state, so a SIGKILL'd daemon
// restarts with every non-terminal job re-enqueued. Ground-state jobs with
// a checkpoint_interval additionally write the PR 6 Lanczos checkpoint at
// `<state_dir>/ck_<job_key>.ckpt`; on restart the re-enqueued job resumes
// from it, and the PR 6 guarantee — a resumed trajectory is bit-identical
// to the uninterrupted one for a fixed thread count — now holds end-to-end
// through a daemon kill (pinned by tools/serve_smoke.cpp in CI). The
// checkpoint is keyed by job_key(), not job id, so a warm re-submission of
// an identical spec also finds it.
//
// Observable batching: when the executor pops an expectation job it
// collects EVERY other queued expectation job with the same
// evolution_key(), unions their observable lists, runs ONE
// run_observable_batch() pass and splits the columns back out per job —
// K requests against one (H, psi0) trajectory cost one evolution. Cancel
// is cooperative: queued jobs cancel immediately; a running ground-state
// job observes the flag at its next progress callback; evolution jobs
// check at terminal transition. See DESIGN.md "Serving layer".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/artifact_cache.hpp"
#include "serve/protocol.hpp"
#include "telemetry/progress.hpp"

namespace gecos::serve {

/// Tuning knobs for a Scheduler.
struct SchedulerOptions {
  /// Directory for job journals and solver checkpoints; empty disables
  /// persistence entirely (jobs die with the process). Created if absent.
  std::string state_dir;
  /// Artifact-cache idle-byte budget (see ArtifactCache).
  std::size_t cache_bytes = std::size_t{512} << 20;
  /// Scan state_dir at construction and re-enqueue non-terminal jobs.
  bool resume_jobs = true;
  /// Start the executor thread immediately. false lets tests enqueue a
  /// deterministic backlog and then call start().
  bool autostart = true;
};

/// Priority job queue + executor + artifact cache + durable job journal.
class Scheduler {
 public:
  /// Builds the cache, loads/resumes journaled jobs when state_dir is set,
  /// and (unless autostart is off) starts the executor thread.
  explicit Scheduler(SchedulerOptions opts = {});
  /// Stops the executor (abandoning a running job back to the queue
  /// journal, checkpoint intact) and joins it.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;             ///< one owner
  Scheduler& operator=(const Scheduler&) = delete;  ///< one owner

  /// Validates, journals and enqueues a job; returns its id. Throws
  /// Error{protocol} on an invalid spec.
  std::uint64_t submit(const JobSpec& spec);

  /// Requests cancellation. Returns true when the job will end cancelled
  /// (it was queued, or running and will observe the flag); false when it
  /// is already terminal. Throws Error{not_found} on an unknown id.
  bool cancel(std::uint64_t id);

  /// Point-in-time status snapshot. Throws Error{not_found}.
  JobStatus status(std::uint64_t id) const;

  /// Status of every known job, id-ascending.
  std::vector<JobStatus> list() const;

  /// Result of a kDone job. Throws Error{not_found} on an unknown or
  /// still-pending id, Error{cancelled} on a cancelled job, and the job's
  /// own recorded Error on a failed one.
  JobResult fetch(std::uint64_t id) const;

  /// Blocks until the job is terminal or timeout_s elapses; returns true
  /// when terminal. Throws Error{not_found}.
  bool wait(std::uint64_t id, double timeout_s) const;

  /// Aggregate counters (queue depth, batch passes, cache totals).
  ServerStats stats() const;

  /// The artifact cache (shared with in-process callers like the bench).
  ArtifactCache& cache() { return cache_; }

  /// Starts the executor thread if not running (autostart=false path).
  void start();

  /// Stops the executor and joins it. abandon_running interrupts a running
  /// ground-state job at its next progress callback and re-journals it
  /// queued (checkpoint intact, so a successor scheduler resumes it);
  /// false waits for the running job to finish first. Queued jobs stay
  /// queued in the journal either way.
  void stop(bool abandon_running);

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    std::uint64_t key = 0;       // job_key(spec)
    JobState state = JobState::kQueued;
    JobResult result;            // valid when state == kDone
    std::string error_kind;      // valid when state == kFailed
    std::string error_message;   // valid when state == kFailed
    bool cancel_requested = false;
    // Live progress (updated by the solver's progress callback).
    std::uint64_t iteration = 0;
    std::uint64_t matvecs = 0;
    double metric = 0.0;
    double target = 0.0;
    double elapsed_s = 0.0;
    double eta_s = -1.0;
  };

  void executor_loop();
  // Runs one popped job (plus coalesced batch peers for expectation jobs)
  // outside the lock; commits terminal states back under it.
  void run_job(std::uint64_t id);
  void run_ground_state(const JobSpec& spec, std::uint64_t id,
                        JobResult& out);
  void run_evolution_batch(const std::vector<std::uint64_t>& ids);
  void run_spectral(const JobSpec& spec, std::uint64_t id, JobResult& out);
  // Terminal-state commit helpers (lock taken inside).
  void finish_done(std::uint64_t id, JobResult result);
  void finish_failed(std::uint64_t id, ErrorKind kind,
                     const std::string& message);
  void finish_cancelled(std::uint64_t id);
  // Journal I/O (no lock requirements; paths derived from opts_).
  std::string journal_path(std::uint64_t id) const;
  std::string checkpoint_path(std::uint64_t key) const;
  void write_journal_locked(const Job& job);
  void load_journals();
  JobStatus status_locked(const Job& job) const;
  // Progress callback bridging a solver to one job's live fields; throws
  // to implement abandon, and — when cancel_throws (single-job kinds only;
  // a batched pass must not die because one rider cancelled) — cancel.
  telemetry::ProgressFn progress_for(std::uint64_t id, bool cancel_throws);
  void requeue(std::uint64_t id);

  SchedulerOptions opts_;
  ArtifactCache cache_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;       // job state transitions
  std::condition_variable work_cv_;          // queue/not-stopping changes
  std::map<std::uint64_t, Job> jobs_;
  std::uint64_t next_id_ = 1;
  bool running_ = false;    // executor thread live
  bool stopping_ = false;   // executor asked to exit
  bool abandon_ = false;    // interrupt the running solve via its callback
  std::thread executor_;
  // Aggregate counters (protected by mutex_).
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t batch_passes_ = 0;
  std::uint64_t batched_jobs_ = 0;
};

}  // namespace gecos::serve
