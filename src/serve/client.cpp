#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace gecos::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    throw Error(ErrorKind::protocol,
                "socket path empty or exceeds AF_UNIX limit: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw Error(ErrorKind::protocol,
                std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error(ErrorKind::protocol, "connect(" + socket_path + "): " +
                                         std::strerror(err));
  }
  try {
    PayloadWriter w;
    w.put_u32(static_cast<std::uint32_t>(MsgType::kHello));
    w.put_string(std::string(kServeMagic, sizeof(kServeMagic)));
    w.put_u32(kServeVersion);
    write_frame(fd_, w.bytes());
    const std::vector<unsigned char> reply = read_frame(fd_);
    if (reply.empty())
      throw Error(ErrorKind::protocol, "daemon closed during handshake");
    PayloadReader r = expect_reply(reply, MsgType::kHelloOk);
    if (r.get_u32() != kServeVersion)
      throw Error(ErrorKind::version_mismatch,
                  "daemon acknowledged a different protocol version");
    r.require_end();
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<unsigned char> Client::request(
    std::span<const unsigned char> payload) {
  write_frame(fd_, payload);
  std::vector<unsigned char> reply = read_frame(fd_);
  if (reply.empty())
    throw Error(ErrorKind::protocol, "daemon closed the connection");
  return reply;
}

std::uint64_t Client::submit(const JobSpec& spec) {
  PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(MsgType::kSubmit));
  encode_job_spec(w, spec);
  const std::vector<unsigned char> reply = request(w.bytes());
  PayloadReader r = expect_reply(reply, MsgType::kSubmitOk);
  const std::uint64_t id = r.get_u64();
  r.require_end();
  return id;
}

JobStatus Client::status(std::uint64_t id) {
  PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(MsgType::kStatus));
  w.put_u64(id);
  const std::vector<unsigned char> reply = request(w.bytes());
  PayloadReader r = expect_reply(reply, MsgType::kStatusOk);
  const JobStatus st = decode_job_status(r);
  r.require_end();
  return st;
}

bool Client::cancel(std::uint64_t id) {
  PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(MsgType::kCancel));
  w.put_u64(id);
  const std::vector<unsigned char> reply = request(w.bytes());
  PayloadReader r = expect_reply(reply, MsgType::kCancelOk);
  const std::uint32_t accepted = r.get_u32();
  r.require_end();
  return accepted != 0;
}

JobResult Client::fetch(std::uint64_t id) {
  PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(MsgType::kFetch));
  w.put_u64(id);
  const std::vector<unsigned char> reply = request(w.bytes());
  PayloadReader r = expect_reply(reply, MsgType::kFetchOk);
  JobResult res = decode_job_result(r);
  r.require_end();
  return res;
}

ServerStats Client::stats() {
  PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(MsgType::kStats));
  const std::vector<unsigned char> reply = request(w.bytes());
  PayloadReader r = expect_reply(reply, MsgType::kStatsOk);
  const ServerStats st = decode_server_stats(r);
  r.require_end();
  return st;
}

void Client::shutdown() {
  PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(MsgType::kShutdown));
  const std::vector<unsigned char> reply = request(w.bytes());
  PayloadReader r = expect_reply(reply, MsgType::kShutdownOk);
  r.require_end();
}

JobStatus Client::wait(std::uint64_t id, double timeout_s, double poll_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    const JobStatus st = status(id);
    if (st.state == JobState::kDone || st.state == JobState::kFailed ||
        st.state == JobState::kCancelled)
      return st;
    if (std::chrono::steady_clock::now() >= deadline) return st;
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
  }
}

}  // namespace gecos::serve
