// Second-quantized fermionic operators.
//
// The workload layer of GECOS: Hamiltonians are composed as sums of products
// of ladder operators a_p / a_p^dagger over modes 0..n-1 obeying the
// canonical anticommutation relations (CAR)
//
//   {a_p, a_q^dagger} = delta_pq,   {a_p, a_q} = {a_p^dagger, a_q^dagger} = 0.
//
// FermionProduct is one coefficient-weighted operator word; FermionSum is a
// merged sum of words. normal_order() rewrites any sum into the canonical
// form (creators ascending by mode, then annihilators descending) using the
// CAR — the fermionic counterpart of the SCB Cayley collapse performed after
// the Jordan-Wigner map (src/fermion/jordan_wigner.hpp, DESIGN.md
// "Jordan-Wigner convention").
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace gecos {

/// One ladder operator: a_mode (dagger == false) or a_mode^dagger.
struct LadderOp {
  std::uint32_t mode = 0;  ///< fermionic mode (site/spin-orbital) index
  bool dagger = false;     ///< true = creation, false = annihilation

  /// Ordering key for canonical word storage (mode, then dagger).
  auto operator<=>(const LadderOp&) const = default;
};

/// coeff * l_1 l_2 ... l_k, factors applied as written (l_1 leftmost, i.e.
/// applied last to a state). An empty factor list is the scalar coeff * 1.
class FermionProduct {
 public:
  /// The scalar 1 (empty factor list, coefficient 1).
  FermionProduct() = default;
  /// coeff * factors, applied as written.
  FermionProduct(cplx coeff, std::vector<LadderOp> factors)
      : coeff_(coeff), factors_(std::move(factors)) {}

  /// Convenience for the common one- and two-body patterns, e.g.
  /// FermionProduct::one_body(c, p, q) = c * a_p^dagger a_q.
  static FermionProduct one_body(cplx coeff, std::uint32_t p, std::uint32_t q);
  /// c * a_p^dagger a_q^dagger a_r a_s.
  static FermionProduct two_body(cplx coeff, std::uint32_t p, std::uint32_t q,
                                 std::uint32_t r, std::uint32_t s);

  /// Scalar coefficient and factor word, as constructed.
  cplx coeff() const { return coeff_; }
  const std::vector<LadderOp>& factors() const { return factors_; }
  /// Number of ladder factors (0 for a scalar).
  std::size_t degree() const { return factors_.size(); }
  /// Smallest mode count containing every factor (max mode + 1; 0 if scalar).
  std::size_t min_modes() const;

  /// Reversed factor order, each factor daggered, coefficient conjugated.
  FermionProduct adjoint() const;

  /// Human-readable form, e.g. "(0.5) a+_1 a_0".
  std::string str() const;

 private:
  cplx coeff_ = 1.0;
  std::vector<LadderOp> factors_;
};

/// Sum of ladder-operator words with like-word merging. Deterministic
/// iteration (std::map over words). Words are stored as given; call
/// normal_order() to canonicalize so that equal operators always merge.
class FermionSum {
 public:
  /// The empty (zero) sum.
  FermionSum() = default;

  /// Accumulates a product; merges coefficients of an identical factor word
  /// and drops the word when the merged coefficient cancels below tol.
  void add(const FermionProduct& p, double tol = 1e-14);
  void add(const FermionSum& o, double tol = 1e-14);

  /// Number of live words / whether the sum is zero.
  std::size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }
  /// Smallest mode count containing every term.
  std::size_t min_modes() const;

  /// Deterministic word -> coefficient view.
  const std::map<std::vector<LadderOp>, cplx>& terms() const { return terms_; }
  /// Coefficient of a factor word (0 if absent).
  cplx coeff_of(const std::vector<LadderOp>& word) const;

  /// Termwise sum/difference and scalar scaling.
  FermionSum operator+(const FermionSum& o) const;
  FermionSum operator-(const FermionSum& o) const;
  FermionSum operator*(cplx s) const;
  /// Word concatenation, distributively: (c1 w1)(c2 w2) = c1 c2 (w1 w2).
  FermionSum operator*(const FermionSum& o) const;

  /// Termwise adjoint.
  FermionSum adjoint() const;
  /// True when normal_order(*this - adjoint()) has no surviving term.
  bool is_hermitian(double tol = 1e-12) const;

  /// Human-readable " + "-joined term list ("0" for the empty sum).
  std::string str() const;

 private:
  std::map<std::vector<LadderOp>, cplx> terms_;
};

/// CAR rewriting of one product into canonical normal order: creators first,
/// ascending by mode, then annihilators descending by mode. Every swap of an
/// annihilator past a creator emits the contraction term delta_pq * (word
/// with the pair removed); same-mode repeated creators/annihilators vanish
/// (Pauli exclusion). Worst case the rewriting branches into O(2^min(c,a))
/// contraction terms for a word with c creators and a annihilators — the
/// products built here are few-body, so this stays tiny.
FermionSum normal_order(const FermionProduct& p, double tol = 1e-14);
/// normal_order over every term of a sum, with cross-term merging.
FermionSum normal_order(const FermionSum& s, double tol = 1e-14);

}  // namespace gecos
