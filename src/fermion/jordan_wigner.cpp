#include "fermion/jordan_wigner.hpp"

#include <stdexcept>

namespace gecos {

ScbTerm jw_ladder(std::uint32_t mode, bool dagger, std::size_t num_qubits) {
  if (mode >= num_qubits)
    throw std::invalid_argument("jw_ladder: mode out of range");
  std::vector<Scb> ops(num_qubits, Scb::I);
  for (std::uint32_t q = 0; q < mode; ++q) ops[q] = Scb::Z;
  ops[mode] = dagger ? Scb::Sp : Scb::Sm;
  return ScbTerm(1.0, std::move(ops), false);
}

ScbTerm jw_product(const FermionProduct& p, std::size_t num_qubits) {
  if (p.min_modes() > num_qubits)
    throw std::invalid_argument("jw_product: mode out of range");
  std::vector<Scb> acc(num_qubits, Scb::I);
  cplx coeff = p.coeff();
  for (const LadderOp& f : p.factors()) {
    if (coeff == cplx(0.0)) break;
    // acc := acc * jw(f), qubit by qubit. The factor's word is Z below the
    // mode, s/s+ at the mode, I above — multiply only the touched qubits.
    for (std::uint32_t q = 0; q < f.mode; ++q) {
      const ScaledScb m = scb_mul(acc[q], Scb::Z);
      coeff *= m.coeff;
      acc[q] = m.op;
    }
    const ScaledScb m = scb_mul(acc[f.mode], f.dagger ? Scb::Sp : Scb::Sm);
    coeff *= m.coeff;
    acc[f.mode] = m.op;
  }
  if (coeff == cplx(0.0)) std::fill(acc.begin(), acc.end(), Scb::I);
  ScbTerm t(1.0, std::move(acc), false);
  t.set_coeff(coeff);
  return t;
}

ScbSum jw_sum(const FermionSum& s, std::size_t num_qubits) {
  ScbSum out(num_qubits);
  for (const auto& [word, c] : s.terms()) {
    const ScbTerm t = jw_product(FermionProduct(c, word), num_qubits);
    if (t.coeff() != cplx(0.0)) out.add(t);
  }
  return out;
}

}  // namespace gecos
