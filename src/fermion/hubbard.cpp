#include "fermion/hubbard.hpp"

#include <bit>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

namespace gecos {

namespace {

/// Nearest-neighbor bonds (each once) as site-index pairs.
std::vector<std::pair<std::size_t, std::size_t>> bonds(const HubbardParams& p) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const auto site = [&](std::size_t x, std::size_t y) { return y * p.lx + x; };
  for (std::size_t y = 0; y < p.ly; ++y)
    for (std::size_t x = 0; x < p.lx; ++x) {
      if (x + 1 < p.lx) out.emplace_back(site(x, y), site(x + 1, y));
      // A wrap bond on a 2-site axis would duplicate the open bond.
      else if (p.periodic_x && p.lx > 2) out.emplace_back(site(x, y), site(0, y));
      if (y + 1 < p.ly) out.emplace_back(site(x, y), site(x, y + 1));
      else if (p.periodic_y && p.ly > 2) out.emplace_back(site(x, y), site(x, 0));
    }
  return out;
}

/// Mode of (site, spin) — the single place the spin-fastest layout lives;
/// hubbard_mode and hubbard_hamiltonian both go through it.
std::uint32_t site_mode(const HubbardParams& p, std::size_t site, int spin) {
  return static_cast<std::uint32_t>(p.spinful ? 2 * site + spin : site);
}

/// n_p n_q as a bare ladder word (n_p alone when p == q).
FermionProduct density_density(double coeff, std::uint32_t pm,
                               std::uint32_t qm) {
  if (pm == qm) return FermionProduct(coeff, {{pm, true}, {pm, false}});
  return FermionProduct(
      coeff, {{pm, true}, {pm, false}, {qm, true}, {qm, false}});
}

}  // namespace

std::size_t hubbard_num_sites(const HubbardParams& p) { return p.lx * p.ly; }

std::size_t hubbard_num_modes(const HubbardParams& p) {
  return hubbard_num_sites(p) * (p.spinful ? 2 : 1);
}

std::uint32_t hubbard_mode(const HubbardParams& p, std::size_t x,
                           std::size_t y, int spin) {
  if (x >= p.lx || y >= p.ly || spin < 0 || spin >= (p.spinful ? 2 : 1))
    throw std::invalid_argument("hubbard_mode: index out of range");
  return site_mode(p, y * p.lx + x, spin);
}

FermionSum hubbard_hamiltonian(const HubbardParams& p) {
  if (p.lx == 0 || p.ly == 0)
    throw std::invalid_argument("hubbard_hamiltonian: empty lattice");
  const int num_spins = p.spinful ? 2 : 1;
  const auto mode = [&](std::size_t site, int sp) {
    return site_mode(p, site, sp);
  };
  FermionSum h;
  for (const auto& [i, j] : bonds(p)) {
    for (int sp = 0; sp < num_spins; ++sp) {
      h.add(FermionProduct::one_body(-p.t, mode(i, sp), mode(j, sp)));
      h.add(FermionProduct::one_body(-p.t, mode(j, sp), mode(i, sp)));
    }
    if (!p.spinful && p.u != 0.0)
      h.add(density_density(p.u, mode(i, 0), mode(j, 0)));
  }
  if (p.spinful && p.u != 0.0)
    for (std::size_t s = 0; s < hubbard_num_sites(p); ++s)
      h.add(density_density(p.u, mode(s, 0), mode(s, 1)));
  if (p.mu != 0.0)
    for (std::size_t s = 0; s < hubbard_num_sites(p); ++s)
      for (int sp = 0; sp < num_spins; ++sp)
        h.add(density_density(-p.mu, mode(s, sp), mode(s, sp)));
  return h;
}

ScbSum hubbard_scb(const HubbardParams& p) {
  return jw_sum(hubbard_hamiltonian(p), hubbard_num_modes(p));
}

std::uint64_t hubbard_cdw_occupation(const HubbardParams& p) {
  if (hubbard_num_modes(p) > 63)
    throw std::invalid_argument("hubbard_cdw_occupation: > 63 modes");
  std::uint64_t occ = 0;
  for (std::size_t y = 0; y < p.ly; ++y)
    for (std::size_t x = 0; x < p.lx; ++x) {
      if ((x + y) % 2 != 0) continue;
      occ |= std::uint64_t{1} << hubbard_mode(p, x, y, 0);
      if (p.spinful) occ |= std::uint64_t{1} << hubbard_mode(p, x, y, 1);
    }
  return occ;
}

FermionSum total_number(std::size_t num_modes) {
  FermionSum n;
  for (std::size_t m = 0; m < num_modes; ++m)
    n.add(FermionProduct(1.0, {{static_cast<std::uint32_t>(m), true},
                               {static_cast<std::uint32_t>(m), false}}));
  return n;
}

std::uint64_t hubbard_species_mask(const HubbardParams& p, int spin) {
  const std::size_t modes = hubbard_num_modes(p);
  if (modes > 63)
    throw std::invalid_argument("hubbard_species_mask: > 63 modes");
  const std::uint64_t all = (std::uint64_t{1} << modes) - 1;
  if (!p.spinful) {
    if (spin != 0)
      throw std::invalid_argument("hubbard_species_mask: spinless has spin 0");
    return all;
  }
  if (spin < 0 || spin > 1)
    throw std::invalid_argument("hubbard_species_mask: spin must be 0 or 1");
  // Single source of truth for the interleaved spin layout is the sector
  // subsystem's spinful constructor — deriving the mask from it keeps the
  // two construction paths incapable of diverging.
  return SectorBasis::spinful(modes, 0, 0).species()[spin].mask;
}

SectorBasis hubbard_sector(const HubbardParams& p, std::size_t n_up,
                           std::size_t n_down) {
  const std::size_t modes = hubbard_num_modes(p);
  if (!p.spinful) {
    if (n_down != 0)
      throw std::invalid_argument(
          "hubbard_sector: spinless lattices take the total as n_up "
          "(n_down must be 0)");
    return SectorBasis::fixed_number(modes, n_up);
  }
  return SectorBasis::spinful(modes, n_up, n_down);
}

SectorBasis hubbard_sector_of(const HubbardParams& p,
                              std::uint64_t occupation) {
  const std::size_t modes = hubbard_num_modes(p);
  if (modes < 64 && (occupation >> modes) != 0)
    throw std::invalid_argument("hubbard_sector_of: occupation beyond modes");
  if (!p.spinful)
    return hubbard_sector(
        p, static_cast<std::size_t>(std::popcount(occupation)));
  const auto count = [&](int spin) {
    return static_cast<std::size_t>(
        std::popcount(occupation & hubbard_species_mask(p, spin)));
  };
  return hubbard_sector(p, count(0), count(1));
}

FermionSum random_two_body(std::size_t num_modes, std::size_t num_one,
                           std::size_t num_two, std::uint64_t seed) {
  if (num_modes < 2)
    throw std::invalid_argument("random_two_body: need >= 2 modes");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> md(
      0, static_cast<std::uint32_t>(num_modes - 1));
  std::uniform_real_distribution<double> cd(-1.0, 1.0);
  FermionSum h;
  for (std::size_t k = 0; k < num_one; ++k) {
    const std::uint32_t pm = md(rng), q = md(rng);
    const cplx c(cd(rng), cd(rng));
    h.add(FermionProduct::one_body(c, pm, q));
    h.add(FermionProduct::one_body(std::conj(c), q, pm));
  }
  for (std::size_t k = 0; k < num_two; ++k) {
    std::uint32_t pm = md(rng), q = md(rng), r = md(rng), s = md(rng);
    while (q == pm) q = md(rng);  // a+_p a+_p (and a_r a_r) vanish; redraw
    while (s == r) s = md(rng);
    const cplx c(cd(rng), cd(rng));
    h.add(FermionProduct::two_body(c, pm, q, r, s));
    h.add(FermionProduct::two_body(std::conj(c), s, r, q, pm));
  }
  return h;
}

}  // namespace gecos
