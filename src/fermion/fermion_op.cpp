#include "fermion/fermion_op.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gecos {

FermionProduct FermionProduct::one_body(cplx coeff, std::uint32_t p,
                                        std::uint32_t q) {
  return FermionProduct(coeff, {{p, true}, {q, false}});
}

FermionProduct FermionProduct::two_body(cplx coeff, std::uint32_t p,
                                        std::uint32_t q, std::uint32_t r,
                                        std::uint32_t s) {
  return FermionProduct(coeff, {{p, true}, {q, true}, {r, false}, {s, false}});
}

std::size_t FermionProduct::min_modes() const {
  std::size_t n = 0;
  for (const LadderOp& f : factors_)
    n = std::max(n, static_cast<std::size_t>(f.mode) + 1);
  return n;
}

FermionProduct FermionProduct::adjoint() const {
  std::vector<LadderOp> adj(factors_.rbegin(), factors_.rend());
  for (LadderOp& f : adj) f.dagger = !f.dagger;
  return FermionProduct(std::conj(coeff_), std::move(adj));
}

std::string FermionProduct::str() const {
  std::ostringstream os;
  os << "(" << coeff_.real();
  if (coeff_.imag() != 0.0)
    os << (coeff_.imag() > 0 ? "+" : "") << coeff_.imag() << "i";
  os << ")";
  for (const LadderOp& f : factors_)
    os << " a" << (f.dagger ? "+" : "") << "_" << f.mode;
  return os.str();
}

void FermionSum::add(const FermionProduct& p, double tol) {
  auto it = terms_.find(p.factors());
  if (it == terms_.end()) {
    if (std::abs(p.coeff()) > tol) terms_.emplace(p.factors(), p.coeff());
    return;
  }
  it->second += p.coeff();
  if (std::abs(it->second) <= tol) terms_.erase(it);
}

void FermionSum::add(const FermionSum& o, double tol) {
  for (const auto& [word, c] : o.terms_) add(FermionProduct(c, word), tol);
}

std::size_t FermionSum::min_modes() const {
  std::size_t n = 0;
  for (const auto& [word, c] : terms_)
    for (const LadderOp& f : word)
      n = std::max(n, static_cast<std::size_t>(f.mode) + 1);
  return n;
}

cplx FermionSum::coeff_of(const std::vector<LadderOp>& word) const {
  auto it = terms_.find(word);
  return it == terms_.end() ? cplx(0.0) : it->second;
}

FermionSum FermionSum::operator+(const FermionSum& o) const {
  FermionSum r = *this;
  r.add(o);
  return r;
}

FermionSum FermionSum::operator-(const FermionSum& o) const {
  FermionSum r = *this;
  for (const auto& [word, c] : o.terms_) r.add(FermionProduct(-c, word));
  return r;
}

FermionSum FermionSum::operator*(cplx s) const {
  FermionSum r;
  if (s == cplx(0.0)) return r;
  r.terms_ = terms_;
  for (auto& [word, c] : r.terms_) c *= s;
  return r;
}

FermionSum FermionSum::operator*(const FermionSum& o) const {
  FermionSum r;
  for (const auto& [aw, ac] : terms_)
    for (const auto& [bw, bc] : o.terms_) {
      std::vector<LadderOp> word = aw;
      word.insert(word.end(), bw.begin(), bw.end());
      r.add(FermionProduct(ac * bc, std::move(word)));
    }
  return r;
}

FermionSum FermionSum::adjoint() const {
  FermionSum r;
  for (const auto& [word, c] : terms_)
    r.add(FermionProduct(c, word).adjoint());
  return r;
}

bool FermionSum::is_hermitian(double tol) const {
  const FermionSum diff = normal_order(*this - adjoint(), tol);
  for (const auto& [word, c] : diff.terms())
    if (std::abs(c) > tol) return false;
  return true;
}

std::string FermionSum::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [word, c] : terms_) {
    if (!first) os << " + ";
    first = false;
    os << FermionProduct(c, word).str();
  }
  if (first) os << "0";
  return os.str();
}

FermionSum normal_order(const FermionProduct& p, double tol) {
  // Worklist rewriting: pop a product, apply the first CAR rule that fires,
  // push the rewritten product(s); products with no applicable rule are in
  // canonical order and land in the output sum.
  FermionSum out;
  std::vector<FermionProduct> work{p};
  while (!work.empty()) {
    FermionProduct cur = std::move(work.back());
    work.pop_back();
    if (std::abs(cur.coeff()) <= tol) continue;
    const std::vector<LadderOp>& f = cur.factors();
    bool rewrote = false;
    for (std::size_t i = 0; i + 1 < f.size(); ++i) {
      const LadderOp a = f[i], b = f[i + 1];
      if (!a.dagger && b.dagger) {
        // a_p a_q^dagger = delta_pq - a_q^dagger a_p.
        std::vector<LadderOp> swapped = f;
        std::swap(swapped[i], swapped[i + 1]);
        work.emplace_back(-cur.coeff(), std::move(swapped));
        if (a.mode == b.mode) {
          std::vector<LadderOp> contracted;
          contracted.reserve(f.size() - 2);
          contracted.insert(contracted.end(), f.begin(),
                            f.begin() + static_cast<std::ptrdiff_t>(i));
          contracted.insert(contracted.end(),
                            f.begin() + static_cast<std::ptrdiff_t>(i) + 2,
                            f.end());
          work.emplace_back(cur.coeff(), std::move(contracted));
        }
        rewrote = true;
        break;
      }
      if (a.dagger == b.dagger) {
        if (a.mode == b.mode) {  // a_p a_p = 0, a_p^dagger a_p^dagger = 0
          rewrote = true;
          break;
        }
        // Same species out of order: anticommute (no contraction).
        const bool out_of_order = a.dagger ? a.mode > b.mode : a.mode < b.mode;
        if (out_of_order) {
          std::vector<LadderOp> swapped = f;
          std::swap(swapped[i], swapped[i + 1]);
          work.emplace_back(-cur.coeff(), std::move(swapped));
          rewrote = true;
          break;
        }
      }
    }
    if (!rewrote) out.add(cur, tol);
  }
  return out;
}

FermionSum normal_order(const FermionSum& s, double tol) {
  FermionSum out;
  for (const auto& [word, c] : s.terms())
    out.add(normal_order(FermionProduct(c, word), tol), tol);
  return out;
}

}  // namespace gecos
