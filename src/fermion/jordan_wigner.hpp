// Jordan-Wigner map: ladder operators directly into SCB terms.
//
// Mode p maps to qubit p (qubit 0 = least significant). The image of one
// ladder operator is ONE bare SCB product,
//
//   a_p         ->  Z_0 ... Z_{p-1} s_p      (s  = |0><1|, annihilation)
//   a_p^dagger  ->  Z_0 ... Z_{p-1} s+_p     (s+ = |1><0|)
//
// and because the SCB closes under multiplication, the image of a *product*
// of ladder operators is again one bare SCB product, collapsed per qubit by
// scb_mul — this is the paper's direct composition: one term per fermionic
// word, versus the 2^k Pauli strings the factor-by-factor decomposition
// pays (k = number of {n, m, s, s+} factors; see ops/conversion.hpp).
// Conventions are spelled out in DESIGN.md "Jordan-Wigner convention".
#pragma once

#include <cstdint>

#include "fermion/fermion_op.hpp"
#include "ops/scb_sum.hpp"
#include "ops/term.hpp"

namespace gecos {

/// JW image of a_mode (dagger == false) or a_mode^dagger on num_qubits
/// qubits: one bare ScbTerm with Z on qubits 0..mode-1 and s/s+ on `mode`.
/// O(num_qubits). Throws if mode >= num_qubits.
ScbTerm jw_ladder(std::uint32_t mode, bool dagger, std::size_t num_qubits);

/// JW image of a ladder-operator product: the factor images are multiplied
/// symbolically qubit-by-qubit through the Cayley closure (scb_mul), so the
/// result is a *single* bare ScbTerm — possibly with coefficient 0 when the
/// word annihilates every state (e.g. a_p a_p). O(degree * num_qubits).
ScbTerm jw_product(const FermionProduct& p, std::size_t num_qubits);

/// JW image of a whole sum: one SCB term per fermionic word (zero-collapsed
/// words drop out; distinct fermionic words can collapse to the same SCB
/// word and merge). The SCB term count is therefore <= s.size() — always
/// polynomial in the fermionic term count, with no 2^k expansion.
ScbSum jw_sum(const FermionSum& s, std::size_t num_qubits);

}  // namespace gecos
