// Concrete second-quantized scenarios: Fermi-Hubbard lattices and a seeded
// random two-body "molecular-like" generator.
//
// These are the workloads the SCB-vs-Pauli comparison of the paper is run
// on: every builder returns a FermionSum (manifestly Hermitian by explicit
// conjugate pairs); hubbard_scb / molecular-via-jw_sum produce the direct
// SCB representation, and ScbSum::to_pauli the "usual strategy" expansion
// measured against it in bench_main (fermion_* entries of BENCH_pauli.json).
#pragma once

#include <cstdint>

#include "fermion/fermion_op.hpp"
#include "fermion/jordan_wigner.hpp"
#include "symmetry/sector_basis.hpp"

namespace gecos {

/// Fermi-Hubbard model on an lx x ly rectangular lattice.
///
///   H = -t sum_<ij>,sp (a+_{i,sp} a_{j,sp} + h.c.)
///       + U sum_i n_{i,up} n_{i,down}          (spinful)
///       + U sum_<ij> n_i n_j                   (spinless: density-density)
///       - mu sum_{i,sp} n_{i,sp}
///
/// <ij> ranges over nearest-neighbor bonds, each counted once; boundaries
/// wrap per axis when periodic (wrap bonds that duplicate an open bond on
/// 2-site axes are skipped).
struct HubbardParams {
  std::size_t lx = 4;        ///< sites along x (>= 1)
  std::size_t ly = 1;        ///< sites along y (1 = 1D chain)
  double t = 1.0;            ///< hopping amplitude
  double u = 4.0;            ///< interaction strength
  double mu = 0.0;           ///< chemical potential
  bool periodic_x = false;   ///< wrap bonds along x
  bool periodic_y = false;   ///< wrap bonds along y
  bool spinful = false;      ///< two spin species per site
};

/// Number of lattice sites: lx * ly.
std::size_t hubbard_num_sites(const HubbardParams& p);
/// Number of fermionic modes (= JW qubits): sites * (spinful ? 2 : 1).
std::size_t hubbard_num_modes(const HubbardParams& p);
/// Mode index of (x, y, spin): spin is the fastest axis (up = 0, down = 1),
/// then x, then y — so on-site spin pairs are JW-adjacent.
std::uint32_t hubbard_mode(const HubbardParams& p, std::size_t x,
                           std::size_t y, int spin);

/// The Hubbard Hamiltonian as a fermionic sum (one bare word per ladder
/// product; conjugate hopping pairs present explicitly). O(sites) terms.
FermionSum hubbard_hamiltonian(const HubbardParams& p);

/// Direct SCB representation: jw_sum(hubbard_hamiltonian(p)) on
/// hubbard_num_modes(p) qubits. One SCB term per fermionic word.
ScbSum hubbard_scb(const HubbardParams& p);

/// Total particle number N = sum_p a+_p a_p (commutes with every builder in
/// this header; pinned by tests/test_hubbard.cpp).
FermionSum total_number(std::size_t num_modes);

/// Occupation bitmask (bit = JW qubit = mode) of the charge-density-wave
/// product state used as the quench initial state: sites on the even
/// checkerboard (x + y even) are occupied — both spins when spinful — the
/// odd checkerboard is empty. This is a half-filling eigenstate of every
/// n_i, far from the Hubbard ground state, so evolving it under
/// hubbard_scb(p) is a genuine quench. Feed it to StateVector::product.
std::uint64_t hubbard_cdw_occupation(const HubbardParams& p);

// -- U(1) sector pickers (src/symmetry/) -------------------------------------
// Every builder in this header conserves particle number per spin species,
// so its spectrum decomposes over the SectorBasis sectors below; see
// DESIGN.md "Symmetry sectors".

/// Occupation-bit mask of one spin species of the lattice (bit = JW qubit =
/// mode). Spinful: spin 0 (up) is the even modes, spin 1 (down) the odd
/// modes (the spin-fastest layout of hubbard_mode); spinless lattices have
/// one species, spin 0 = all modes. Throws on an invalid spin or > 63 modes.
std::uint64_t hubbard_species_mask(const HubbardParams& p, int spin);

/// The (N_up, N_down) sector of a spinful lattice, or the fixed total-N
/// sector of a spinless one (pass the total as n_up; n_down must then be 0).
/// hubbard_scb(p) commutes with both species numbers, so SectorOperator
/// accepts it on this basis. Throws on counts exceeding the mode counts.
SectorBasis hubbard_sector(const HubbardParams& p, std::size_t n_up,
                           std::size_t n_down = 0);

/// The sector containing a given occupation bitmask — e.g.
/// hubbard_sector_of(p, hubbard_cdw_occupation(p)) is the half-filling
/// sector the CDW quench state lives in.
SectorBasis hubbard_sector_of(const HubbardParams& p, std::uint64_t occupation);

/// Seeded random Hermitian "molecular-like" Hamiltonian over num_modes
/// spin-orbitals: num_one one-body pairs h_pq a+_p a_q + h.c. and num_two
/// two-body quadruples h_pqrs a+_p a+_q a_r a_s + h.c., with coefficients
/// uniform in [-1, 1]^2 (complex for off-diagonal words). Mode tuples are
/// drawn uniformly; duplicate draws merge, so the returned sum can hold
/// fewer than 2 * (num_one + num_two) words.
FermionSum random_two_body(std::size_t num_modes, std::size_t num_one,
                           std::size_t num_two, std::uint64_t seed);

}  // namespace gecos
