// KrylovBasis: preallocated batched storage for Krylov subspace vectors.
//
// Every Krylov method in src/solver/ (Lanczos eigensolver, exp(zH) evolver,
// imaginary-time projector) carries a set of m orthonormal statevectors next
// to the 2^n state being processed. A KrylovBasis owns all m vectors in ONE
// 64-byte-aligned block (same allocator as StateVector, contiguous so
// basis-wide sweeps stream linearly), hands out per-vector spans, and
// implements the two batched primitives the solvers share: Gram-Schmidt
// orthogonalization of a work vector against the stored prefix and linear
// recombination (Ritz-vector recovery, exp(T) coefficient application). All
// inner loops route through the parallel BLAS-1 kernels; nothing here
// allocates after construction, which is what makes solver iterations
// allocation-free after warm-up.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/blas1.hpp"
#include "state/state_vector.hpp"

namespace gecos {

/// Owning block of `capacity` aligned statevectors of a fixed dimension.
class KrylovBasis {
 public:
  /// Allocates capacity * dim amplitudes up front (the only allocation this
  /// class ever performs). Throws std::invalid_argument on a zero size and
  /// Error{dim_mismatch} when the product overflows or cannot be allocated.
  KrylovBasis(std::size_t dim, std::size_t capacity);

  /// Amplitude count per vector and number of preallocated slots.
  std::size_t dim() const { return dim_; }
  std::size_t capacity() const { return capacity_; }

  /// Repartitions the backing allocation into `capacity()` slots of `dim`
  /// amplitudes each and zero-fills them — reuse of one allocation across
  /// solves of different vector lengths (e.g. a full-space basis re-aimed at
  /// a sector dimension). PRECONDITION (debug-asserted, not checked in
  /// release builds): dim >= 1 and dim * capacity() fits in the original
  /// allocation — a larger dim would hand out overlapping/out-of-bounds
  /// slot spans. This never allocates or shrinks the backing store.
  void reset(std::size_t dim);

  /// View of slot j (unchecked beyond an assert; slots are caller-managed).
  std::span<cplx> vec(std::size_t j);
  std::span<const cplx> vec(std::size_t j) const;

  /// Classical Gram-Schmidt: removes the components of slots [0, count)
  /// from w, accumulating the removed coefficients into h (h[j] +=
  /// <v_j|w>). `passes` >= 2 gives the classic "twice is enough"
  /// re-orthogonalization; corrections from later passes are folded into h
  /// so h always holds the total removed component. w must not alias any
  /// slot.
  void orthogonalize(std::span<cplx> w, std::size_t count, std::span<cplx> h,
                     int passes = 2) const;

  /// Orthogonalization without coefficient recording (h discarded): the
  /// re-orthogonalization primitive of the Lanczos three-term recurrence.
  void project_out(std::span<cplx> w, std::size_t count, int passes = 2) const;

  /// y += sum_{j < count} coeffs[j] * v_j (Ritz vectors, exp(T) e1
  /// recombination). y must not alias any slot.
  void accumulate(std::span<cplx> y, std::span<const cplx> coeffs,
                  std::size_t count) const;

 private:
  std::size_t dim_ = 0;
  std::size_t capacity_ = 0;
  AlignedVec store_;
};

}  // namespace gecos
