#include "state/state_vector.hpp"
#include "linalg/blas1.hpp"
#include "util/error.hpp"

#include <random>
#include <stdexcept>
#include <string>

namespace gecos {

StateVector::StateVector(std::size_t n_qubits) : n_(n_qubits) {
  // n_qubits = 0 is API misuse (invalid_argument, as ever); a too-large
  // count is a resource condition and gets the structured taxonomy — the
  // requested dimension in the message, never shift-overflow UB or a raw
  // bad_alloc escaping to the caller.
  if (n_qubits < 1)
    throw std::invalid_argument("StateVector: need n_qubits >= 1");
  if (n_qubits > 30)
    throw Error(ErrorKind::dim_mismatch,
                "StateVector: n_qubits = " + std::to_string(n_qubits) +
                    " exceeds the 30-qubit limit (16 * 2^n bytes must stay "
                    "addressable)");
  try {
    data_.assign(std::size_t{1} << n_qubits, cplx(0.0));
  } catch (const std::bad_alloc&) {
    throw Error(ErrorKind::dim_mismatch,
                "StateVector: allocation of " +
                    std::to_string((std::size_t{1} << n_qubits) *
                                   sizeof(cplx)) +
                    " bytes failed for n_qubits = " +
                    std::to_string(n_qubits));
  }
  data_[0] = cplx(1.0);
}

StateVector StateVector::basis(std::size_t n_qubits, std::uint64_t index) {
  StateVector s(n_qubits);
  if (index >= s.dim())
    throw std::invalid_argument("StateVector::basis: index out of range");
  s.data_[0] = cplx(0.0);
  s.data_[index] = cplx(1.0);
  return s;
}

StateVector StateVector::product(std::size_t n_qubits, std::uint64_t bits) {
  return basis(n_qubits, bits);
}

StateVector StateVector::random(std::size_t n_qubits, std::uint64_t seed) {
  StateVector s(n_qubits);
  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  std::normal_distribution<double> g;
  for (cplx& a : s.data_) a = cplx(g(rng), g(rng));
  s.normalize();
  return s;
}

double StateVector::norm() const { return vec_norm(data_); }

void StateVector::normalize() {
  const double n = norm();
  if (n == 0.0)
    throw std::invalid_argument("StateVector::normalize: zero vector");
  vec_scale(amps(), cplx(1.0 / n));
}

cplx StateVector::inner(const StateVector& o) const {
  if (dim() != o.dim())
    throw std::invalid_argument("StateVector::inner: size mismatch");
  return vec_dot(data_, o.data_);
}

double StateVector::max_abs_diff(const StateVector& o) const {
  if (dim() != o.dim())
    throw std::invalid_argument("StateVector::max_abs_diff: size mismatch");
  return vec_max_abs_diff(data_, o.data_);
}

AlignedVec& StateVector::scratch() const {
  if (scratch_.size() != data_.size()) scratch_.resize(data_.size());
  return scratch_;
}

void StateVector::apply(const LinearOperator& op) {
  op.apply_inplace(amps(), scratch());
}

cplx StateVector::expectation(const LinearOperator& op) const {
  AlignedVec& s = scratch();
  op.apply(data_, s);
  return vec_dot(data_, s);
}

}  // namespace gecos
