#include "state/state_vector.hpp"
#include "linalg/blas1.hpp"

#include <random>
#include <stdexcept>

namespace gecos {

StateVector::StateVector(std::size_t n_qubits) : n_(n_qubits) {
  if (n_qubits < 1 || n_qubits > 30)
    throw std::invalid_argument("StateVector: need 1 <= n_qubits <= 30");
  data_.assign(std::size_t{1} << n_qubits, cplx(0.0));
  data_[0] = cplx(1.0);
}

StateVector StateVector::basis(std::size_t n_qubits, std::uint64_t index) {
  StateVector s(n_qubits);
  if (index >= s.dim())
    throw std::invalid_argument("StateVector::basis: index out of range");
  s.data_[0] = cplx(0.0);
  s.data_[index] = cplx(1.0);
  return s;
}

StateVector StateVector::product(std::size_t n_qubits, std::uint64_t bits) {
  return basis(n_qubits, bits);
}

StateVector StateVector::random(std::size_t n_qubits, std::uint64_t seed) {
  StateVector s(n_qubits);
  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  std::normal_distribution<double> g;
  for (cplx& a : s.data_) a = cplx(g(rng), g(rng));
  s.normalize();
  return s;
}

double StateVector::norm() const { return vec_norm(data_); }

void StateVector::normalize() {
  const double n = norm();
  if (n == 0.0)
    throw std::invalid_argument("StateVector::normalize: zero vector");
  vec_scale(amps(), cplx(1.0 / n));
}

cplx StateVector::inner(const StateVector& o) const {
  if (dim() != o.dim())
    throw std::invalid_argument("StateVector::inner: size mismatch");
  return vec_dot(data_, o.data_);
}

double StateVector::max_abs_diff(const StateVector& o) const {
  if (dim() != o.dim())
    throw std::invalid_argument("StateVector::max_abs_diff: size mismatch");
  return vec_max_abs_diff(data_, o.data_);
}

AlignedVec& StateVector::scratch() const {
  if (scratch_.size() != data_.size()) scratch_.resize(data_.size());
  return scratch_;
}

void StateVector::apply(const LinearOperator& op) {
  op.apply_inplace(amps(), scratch());
}

cplx StateVector::expectation(const LinearOperator& op) const {
  AlignedVec& s = scratch();
  op.apply(data_, s);
  return vec_dot(data_, s);
}

}  // namespace gecos
