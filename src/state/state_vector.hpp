// StateVector: the owning statevector type of the simulation layer.
//
// Until this layer existed every workload juggled raw std::vector<cplx>
// buffers; a StateVector owns 2^n amplitudes in 64-byte-aligned storage
// (cache-line- and AVX-512-friendly for the parallel kernels), knows its
// qubit count, and carries the common state operations: basis/product/random
// construction, normalization, inner products, applying any LinearOperator,
// and expectation values. A scratch buffer of the same alignment is kept
// inside the state and reused across apply()/expectation() calls, so
// repeated measurement in an evolution loop does no per-call allocation.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "ops/linear_op.hpp"

namespace gecos {

/// Minimal 64-byte-aligned allocator so statevector storage starts on a
/// cache-line boundary (std::allocator only guarantees alignof(cplx) = 16).
template <typename T>
struct AlignedAllocator {
  /// Value type required of allocators.
  using value_type = T;
  /// Alignment of every allocation, in bytes.
  static constexpr std::size_t kAlign = 64;

  /// Default and converting constructors (stateless allocator).
  AlignedAllocator() = default;
  /// Rebinding copy from any instantiation.
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  /// Aligned allocation of n objects.
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  /// Matching deallocation.
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }
  /// All instances are interchangeable.
  bool operator==(const AlignedAllocator&) const { return true; }
};

/// Aligned amplitude buffer used by StateVector.
using AlignedVec = std::vector<cplx, AlignedAllocator<cplx>>;

/// Owning 2^n-amplitude quantum state with aligned storage.
class StateVector {
 public:
  /// |0...0> on n qubits. n = 0 throws std::invalid_argument (API misuse);
  /// n > 30 or a failed 16 * 2^n-byte allocation throws
  /// Error{dim_mismatch} carrying the requested size (resource condition).
  explicit StateVector(std::size_t n_qubits);

  /// Computational basis state |index> on n qubits.
  static StateVector basis(std::size_t n_qubits, std::uint64_t index);
  /// Product state with qubit q in |1> iff bit q of `bits` is set — the
  /// fermionic occupation-number states of the quench scenarios (identical
  /// to basis(); named for intent at call sites).
  static StateVector product(std::size_t n_qubits, std::uint64_t bits);
  /// Normalized Gaussian-random state from a fixed seed (reproducible).
  static StateVector random(std::size_t n_qubits, std::uint64_t seed);

  /// Qubit count and amplitude count (2^n).
  std::size_t n_qubits() const { return n_; }
  std::size_t dim() const { return data_.size(); }

  /// Amplitude views (basis index = bit pattern, qubit 0 least significant).
  std::span<cplx> amps() { return data_; }
  std::span<const cplx> amps() const { return data_; }
  /// Unchecked single-amplitude access.
  cplx& operator[](std::size_t i) { return data_[i]; }
  const cplx& operator[](std::size_t i) const { return data_[i]; }

  /// Euclidean norm and in-place normalization (throws on the zero vector).
  double norm() const;
  void normalize();

  /// Inner product <this|o> (conjugate-linear in *this).
  cplx inner(const StateVector& o) const;
  /// Max |a_i - o_i| against another state of the same size.
  double max_abs_diff(const StateVector& o) const;

  /// In-place x = A x through the internal scratch buffer (allocated once,
  /// reused across calls).
  void apply(const LinearOperator& op);
  /// <x| A |x> through the internal scratch buffer; real part is the
  /// physical expectation value when A is Hermitian. NOTE: const but not
  /// concurrency-safe on one object — apply()/expectation() share the
  /// per-object scratch, so parallel measurement threads must each own a
  /// StateVector (copies are cheap relative to any 2^n workload).
  cplx expectation(const LinearOperator& op) const;

 private:
  AlignedVec& scratch() const;

  std::size_t n_ = 0;
  AlignedVec data_;
  mutable AlignedVec scratch_;  // lazily sized; cache, not value state
};

}  // namespace gecos
