#include "state/krylov_basis.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace gecos {

KrylovBasis::KrylovBasis(std::size_t dim, std::size_t capacity)
    : dim_(dim), capacity_(capacity) {
  if (dim == 0 || capacity == 0)
    throw std::invalid_argument("KrylovBasis: dim and capacity must be >= 1");
  if (dim > std::numeric_limits<std::size_t>::max() / sizeof(cplx) / capacity)
    throw Error(ErrorKind::dim_mismatch,
                "KrylovBasis: " + std::to_string(dim) + " x " +
                    std::to_string(capacity) +
                    " amplitudes overflow addressable memory");
  try {
    store_.assign(dim * capacity, cplx(0.0));
  } catch (const std::bad_alloc&) {
    throw Error(ErrorKind::dim_mismatch,
                "KrylovBasis: allocation of " +
                    std::to_string(dim * capacity * sizeof(cplx)) +
                    " bytes failed (dim " + std::to_string(dim) +
                    ", capacity " + std::to_string(capacity) + ")");
  }
}

void KrylovBasis::reset(std::size_t dim) {
  assert(dim >= 1 && dim * capacity_ <= store_.size() &&
         "KrylovBasis::reset: new dim must fit the backing allocation");
  dim_ = dim;
  std::fill(store_.begin(),
            store_.begin() + static_cast<std::ptrdiff_t>(dim_ * capacity_),
            cplx(0.0));
}

std::span<cplx> KrylovBasis::vec(std::size_t j) {
  assert(j < capacity_);
  return {store_.data() + j * dim_, dim_};
}

std::span<const cplx> KrylovBasis::vec(std::size_t j) const {
  assert(j < capacity_);
  return {store_.data() + j * dim_, dim_};
}

void KrylovBasis::orthogonalize(std::span<cplx> w, std::size_t count,
                                std::span<cplx> h, int passes) const {
  assert(w.size() == dim_ && count <= capacity_ && h.size() >= count);
  for (int pass = 0; pass < passes; ++pass) {
    for (std::size_t j = 0; j < count; ++j) {
      const cplx c = vec_dot(vec(j), w);
      vec_axpy(w, -c, vec(j));
      h[j] += c;
    }
  }
}

void KrylovBasis::project_out(std::span<cplx> w, std::size_t count,
                              int passes) const {
  assert(w.size() == dim_ && count <= capacity_);
  for (int pass = 0; pass < passes; ++pass) {
    for (std::size_t j = 0; j < count; ++j) {
      const cplx c = vec_dot(vec(j), w);
      vec_axpy(w, -c, vec(j));
    }
  }
}

void KrylovBasis::accumulate(std::span<cplx> y, std::span<const cplx> coeffs,
                             std::size_t count) const {
  assert(y.size() == dim_ && count <= capacity_ && coeffs.size() >= count);
  for (std::size_t j = 0; j < count; ++j) vec_axpy(y, coeffs[j], vec(j));
}

}  // namespace gecos
