#include "telemetry/telemetry.hpp"

#include <unistd.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace gecos::telemetry {

namespace {

// One thread's accumulation slab. Members are relaxed atomics only so a
// concurrent snapshot read is not a data race; the owning thread is the
// only writer, so the adds never contend.
struct HistShard {
  std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
};

struct Shard {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<HistShard, kNumHists> hists{};
};

// Plain (non-atomic) accumulation target for retired shards; only touched
// under the registry mutex.
struct Totals {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistogramSnapshot, kNumHists> hists{};
};

void merge_shard_into(const Shard& s, Totals& t) {
  for (std::size_t i = 0; i < kNumCounters; ++i)
    t.counters[i] += s.counters[i].load(std::memory_order_relaxed);
  for (std::size_t h = 0; h < kNumHists; ++h) {
    const HistShard& hs = s.hists[h];
    HistogramSnapshot& out = t.hists[h];
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      out.buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
    out.count += hs.count.load(std::memory_order_relaxed);
    out.sum += hs.sum.load(std::memory_order_relaxed);
  }
}

// Shard registry. Deliberately leaked (never destroyed): pool-worker TLS
// destructors retire shards when the pool joins its threads during static
// destruction, which may run after any registry with static storage
// duration would already be gone.
class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry;  // leaked, see class comment
    return *r;
  }

  Shard* acquire() {
    auto s = std::make_unique<Shard>();
    Shard* raw = s.get();
    std::scoped_lock<std::mutex> lk(m_);
    live_.push_back(std::move(s));
    return raw;
  }

  void release(Shard* s) {
    std::scoped_lock<std::mutex> lk(m_);
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].get() == s) {
        merge_shard_into(*s, retired_);
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  MetricsSnapshot snapshot() {
    std::scoped_lock<std::mutex> lk(m_);
    Totals t = retired_;
    for (const auto& s : live_) merge_shard_into(*s, t);
    MetricsSnapshot out;
    out.counters = t.counters;
    out.hists = t.hists;
    for (std::size_t g = 0; g < kNumGauges; ++g)
      out.gauges[g] = gauges_[g].load(std::memory_order_relaxed);
    return out;
  }

  void gauge_store(Gauge g, std::int64_t v) {
    gauges_[static_cast<std::size_t>(g)].store(v, std::memory_order_relaxed);
  }

 private:
  Registry() = default;
  std::mutex m_;
  std::vector<std::unique_ptr<Shard>> live_;
  Totals retired_;
  std::array<std::atomic<std::int64_t>, kNumGauges> gauges_{};
};

// TLS handle: lazily acquires a shard on first enabled increment, retires
// it into the registry totals when the thread exits.
struct ShardHandle {
  Shard* shard = nullptr;
  Shard& get() {
    if (shard == nullptr) shard = Registry::instance().acquire();
    return *shard;
  }
  ~ShardHandle() {
    if (shard != nullptr) Registry::instance().release(shard);
  }
};

thread_local ShardHandle tls_shard;

// Static registrar: env plumbing runs before main in every binary linking
// the library, so GECOS_METRICS / GECOS_TRACE work without code changes.
struct EnvInit {
  EnvInit() { init_from_env(); }
};
const EnvInit env_init_registrar;

std::string& env_trace_path() {
  static std::string path;  // constructed before the atexit registration
  return path;
}

void write_env_trace_at_exit() {
  const std::string& path = env_trace_path();
  TraceWriter w;
  if (w.write_file(path)) {
    std::fprintf(stderr, "gecos: trace written to %s (%zu events)\n",
                 path.c_str(), trace_events().size());
  } else {
    std::fprintf(stderr, "gecos: failed to write GECOS_TRACE file %s\n",
                 path.c_str());
  }
}

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::matvecs:
      return "matvecs";
    case Counter::kernel_sweeps:
      return "kernel_sweeps";
    case Counter::amplitudes_touched:
      return "amplitudes_touched";
    case Counter::bytes_moved:
      return "bytes_moved";
    case Counter::checkpoint_writes:
      return "checkpoint_writes";
    case Counter::checkpoint_restores:
      return "checkpoint_restores";
    case Counter::checkpoint_bytes:
      return "checkpoint_bytes";
    case Counter::pool_dispatches:
      return "pool_dispatches";
    case Counter::pool_chunks:
      return "pool_chunks";
    case Counter::spans_dropped:
      return "spans_dropped";
    case Counter::kernel_compiles:
      return "kernel_compiles";
    case Counter::sector_table_builds:
      return "sector_table_builds";
    case Counter::sector_table_hits:
      return "sector_table_hits";
    case Counter::artifact_hits:
      return "artifact_hits";
    case Counter::artifact_misses:
      return "artifact_misses";
    case Counter::artifact_evictions:
      return "artifact_evictions";
    case Counter::jobs_submitted:
      return "jobs_submitted";
    case Counter::jobs_completed:
      return "jobs_completed";
    case Counter::observables_batched:
      return "observables_batched";
    case Counter::kCount:
      break;
  }
  return "unknown";
}

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::simd_tier:
      return "simd_tier";
    case Gauge::threads:
      return "threads";
    case Gauge::kCount:
      break;
  }
  return "unknown";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::matvec_ns:
      return "matvec_ns";
    case Hist::pool_task_ns:
      return "pool_task_ns";
    case Hist::pool_idle_ns:
      return "pool_idle_ns";
    case Hist::checkpoint_write_ns:
      return "checkpoint_write_ns";
    case Hist::kCount:
      break;
  }
  return "unknown";
}

namespace detail {

void counter_add_enabled(Counter c, std::uint64_t v) {
  tls_shard.get().counters[static_cast<std::size_t>(c)].fetch_add(
      v, std::memory_order_relaxed);
}

void observe_enabled(Hist h, std::uint64_t value) {
  HistShard& hs = tls_shard.get().hists[static_cast<std::size_t>(h)];
  hs.buckets[hist_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  hs.count.fetch_add(1, std::memory_order_relaxed);
  hs.sum.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics.store(on, std::memory_order_relaxed);
}

void gauge_set(Gauge g, std::int64_t v) {
  Registry::instance().gauge_store(g, v);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank && seen > 0)
      return static_cast<double>(hist_bucket_upper(b));
  }
  return static_cast<double>(hist_bucket_upper(kHistBuckets - 1));
}

double HistogramSnapshot::mean() const {
  return count == 0
             ? 0.0
             : static_cast<double>(sum) / static_cast<double>(count);
}

MetricsSnapshot metrics_snapshot() { return Registry::instance().snapshot(); }

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  auto sub = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : std::uint64_t{0};
  };
  MetricsSnapshot d;
  for (std::size_t i = 0; i < kNumCounters; ++i)
    d.counters[i] = sub(after.counters[i], before.counters[i]);
  d.gauges = after.gauges;
  for (std::size_t h = 0; h < kNumHists; ++h) {
    for (std::size_t b = 0; b < kHistBuckets; ++b)
      d.hists[h].buckets[b] =
          sub(after.hists[h].buckets[b], before.hists[h].buckets[b]);
    d.hists[h].count = sub(after.hists[h].count, before.hists[h].count);
    d.hists[h].sum = sub(after.hists[h].sum, before.hists[h].sum);
  }
  return d;
}

std::size_t hist_bucket(std::uint64_t v) {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

std::uint64_t hist_bucket_upper(std::size_t b) {
  if (b == 0) return 0;
  // The top bucket is a catch-all: hist_bucket clamps bit_width 64 into
  // bucket kHistBuckets - 1, so its upper bound must cover UINT64_MAX.
  if (b >= kHistBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

std::string expand_trace_path(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
  std::size_t i = 0;
  while (i < path.size()) {
    if (path[i] == '%' && i + 1 < path.size() && path[i + 1] == 'p') {
      out += pid;
      i += 2;
    } else {
      out += path[i];
      ++i;
    }
  }
  return out;
}

bool parse_metrics_env(const char* text) {
  const std::string s(text == nullptr ? "" : text);
  if (s == "0") return false;
  if (s == "1") return true;
  throw std::invalid_argument("GECOS_METRICS='" + s +
                              "': expected 0 or 1");
}

void init_from_env() {
  static bool done = false;
  if (done) return;
  done = true;
  if (const char* env = std::getenv("GECOS_METRICS")) {
    try {
      set_metrics_enabled(parse_metrics_env(env));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gecos: %s\n", e.what());
      std::exit(2);
    }
  }
  if (const char* env = std::getenv("GECOS_TRACE")) {
    if (env[0] == '\0') {
      std::fprintf(stderr,
                   "gecos: GECOS_TRACE='': expected a file path\n");
      std::exit(2);
    }
    env_trace_path() = expand_trace_path(env);
    set_metrics_enabled(true);
    set_tracing_enabled(true);
    std::atexit(&write_env_trace_at_exit);
  }
}

}  // namespace gecos::telemetry
