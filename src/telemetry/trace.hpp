// Scoped wall-time spans and the chrome://tracing / Perfetto exporter.
//
// GECOS_SPAN("lanczos.restart") drops a ScopedSpan on the stack: when
// tracing is DISABLED the constructor is one relaxed atomic load and the
// destructor a predicted dead branch — safe to leave in matvec-grained hot
// paths. When ENABLED, construction captures a steady-clock timestamp and
// destruction records a completed event (name, thread, nesting depth,
// start, duration) into the calling thread's preallocated ring buffer.
//
// Rings are fixed-capacity circular buffers (kSpanRingCapacity events,
// allocated on a thread's first recorded span — never on the disabled
// path); when full, the oldest events are overwritten and
// Counter::spans_dropped ticks. Nesting depth is tracked with a
// thread-local counter so tests and the trace_report.py self-time digest
// can attribute parent/child without re-deriving containment.
//
// TraceWriter serializes every ring (live threads plus retired ones) as
// trace-event JSON — "X" complete events with microsecond timestamps —
// loadable by chrome://tracing and https://ui.perfetto.dev, and validated
// by tools/trace_report.py. Span names must be string literals (they are
// stored by pointer and emitted unescaped).
//
// GECOS_TRACE=<path> turns tracing on at process start and writes <path>
// at exit; bench_main --trace does the same per run. See DESIGN.md
// "Telemetry & tracing".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gecos::telemetry {

namespace detail {

/// The one global tracing switch (relaxed load on every span site).
inline std::atomic<bool> g_tracing{false};

}  // namespace detail

/// True when span recording is on (GECOS_TRACE, bench --trace, or
/// set_tracing_enabled).
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Turns span recording on or off. The first enable fixes the trace epoch
/// (timestamp zero). Spans already open when the state flips record
/// normally on close.
void set_tracing_enabled(bool on);

/// Per-thread ring capacity in events (~32 B each). Rings are allocated at
/// a thread's first recorded span; a full ring overwrites its oldest
/// events.
inline constexpr std::size_t kSpanRingCapacity = std::size_t{1} << 15;

/// One completed span as exported: name/thread/depth plus start and
/// duration in nanoseconds relative to the trace epoch.
struct TraceEvent {
  const char* name = "";     ///< static string literal passed to GECOS_SPAN
  std::uint32_t tid = 0;     ///< stable per-thread id (registration order)
  std::uint32_t depth = 0;   ///< nesting depth at open (0 = outermost)
  std::uint64_t ts_ns = 0;   ///< start, ns since the trace epoch
  std::uint64_t dur_ns = 0;  ///< wall duration in ns
};

/// RAII span: prefer the GECOS_SPAN macro. The name argument must be a
/// string literal (stored by pointer, emitted unescaped).
class ScopedSpan {
 public:
  /// Captures the start timestamp when tracing is enabled; otherwise one
  /// relaxed load.
  explicit ScopedSpan(const char* name) {
    if (tracing_enabled()) [[unlikely]]
      start(name);
  }
  /// Records the completed event into the thread's ring if the span was
  /// opened with tracing enabled.
  ~ScopedSpan() {
    if (active_) [[unlikely]]
      finish();
  }
  /// Non-copyable: a span is a unique open/close pair on one stack frame.
  ScopedSpan(const ScopedSpan&) = delete;
  /// Non-assignable, same reason.
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void start(const char* name);  // out-of-line enabled path
  void finish();                 // out-of-line enabled path
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Snapshot of all recorded events (live + retired rings), sorted by
/// (tid, ts). Events still open are not included.
std::vector<TraceEvent> trace_events();

/// Number of events overwritten by full rings since the last trace_clear()
/// (also surfaced as Counter::spans_dropped while metrics are enabled).
std::uint64_t trace_dropped_events();

/// Empties every ring and zeroes the dropped-event count; the epoch is
/// kept.
void trace_clear();

/// Serializer for the trace-event JSON format.
class TraceWriter {
 public:
  /// Writes {"traceEvents": [...]} — process/thread metadata plus one "X"
  /// complete event per recorded span, timestamps in microseconds.
  void write(std::ostream& os) const;
  /// write() to a file; returns false (and leaves a partial file) on I/O
  /// failure.
  bool write_file(const std::string& path) const;
};

}  // namespace gecos::telemetry

// Helper macros for a unique local name per GECOS_SPAN line.
#define GECOS_SPAN_CONCAT_INNER(a, b) a##b
/// Two-level expansion so __LINE__ is substituted before pasting.
#define GECOS_SPAN_CONCAT(a, b) GECOS_SPAN_CONCAT_INNER(a, b)
/// Opens a scoped trace span covering the rest of the enclosing block.
/// `name` must be a string literal, conventionally "subsystem.operation".
#define GECOS_SPAN(name)                                             \
  ::gecos::telemetry::ScopedSpan GECOS_SPAN_CONCAT(gecos_span_at_, \
                                                   __LINE__) {       \
    name                                                             \
  }
