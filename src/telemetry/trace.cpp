#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "telemetry/telemetry.hpp"

namespace gecos::telemetry {

namespace {

// One thread's preallocated circular event buffer. record() runs on the
// owning thread only; collection locks the ring mutex, so the per-record
// cost is one uncontended lock.
struct Ring {
  explicit Ring(std::uint32_t id) : tid(id) { buf.resize(kSpanRingCapacity); }

  void record(const TraceEvent& ev) {
    std::scoped_lock<std::mutex> lk(m);
    buf[head] = ev;
    head = (head + 1) % buf.size();
    if (total >= buf.size()) {
      ++dropped;
      count(Counter::spans_dropped);
    }
    ++total;
  }

  std::mutex m;
  std::vector<TraceEvent> buf;
  std::size_t head = 0;      // next write slot
  std::uint64_t total = 0;   // events ever recorded
  std::uint64_t dropped = 0; // events overwritten
  std::uint32_t tid;
};

// Ring registry; leaked for the same static-destruction-order reason as
// the metrics shard registry (worker TLS retires rings at pool join time).
class TraceRegistry {
 public:
  static TraceRegistry& instance() {
    static TraceRegistry* r = new TraceRegistry;  // leaked, see class comment
    return *r;
  }

  Ring* acquire() {
    std::scoped_lock<std::mutex> lk(m_);
    auto ring = std::make_unique<Ring>(next_tid_++);
    Ring* raw = ring.get();
    live_.push_back(std::move(ring));
    return raw;
  }

  void release(Ring* r) {
    std::scoped_lock<std::mutex> lk(m_);
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].get() == r) {
        retired_.push_back(std::move(live_[i]));
        live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  std::vector<TraceEvent> collect() {
    std::scoped_lock<std::mutex> lk(m_);
    std::vector<TraceEvent> out;
    for (const auto& list : {&live_, &retired_}) {
      for (const auto& ring : *list) {
        std::scoped_lock<std::mutex> rk(ring->m);
        const std::size_t cap = ring->buf.size();
        const std::size_t n =
            ring->total < cap ? static_cast<std::size_t>(ring->total) : cap;
        // Oldest surviving event first: at slot `head` when wrapped.
        const std::size_t start = ring->total < cap ? 0 : ring->head;
        for (std::size_t i = 0; i < n; ++i)
          out.push_back(ring->buf[(start + i) % cap]);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.tid != b.tid) return a.tid < b.tid;
                if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                return a.dur_ns > b.dur_ns;  // parents before children
              });
    return out;
  }

  std::uint64_t dropped() {
    std::scoped_lock<std::mutex> lk(m_);
    std::uint64_t d = 0;
    for (const auto& list : {&live_, &retired_})
      for (const auto& ring : *list) {
        std::scoped_lock<std::mutex> rk(ring->m);
        d += ring->dropped;
      }
    return d;
  }

  void clear() {
    std::scoped_lock<std::mutex> lk(m_);
    for (const auto& list : {&live_, &retired_})
      for (const auto& ring : *list) {
        std::scoped_lock<std::mutex> rk(ring->m);
        ring->head = 0;
        ring->total = 0;
        ring->dropped = 0;
      }
    // Fully retired rings hold no live thread; drop them so cleared traces
    // do not accumulate dead buffers across bench entries.
    retired_.clear();
  }

 private:
  TraceRegistry() = default;
  std::mutex m_;
  std::vector<std::unique_ptr<Ring>> live_;
  std::vector<std::unique_ptr<Ring>> retired_;
  std::uint32_t next_tid_ = 1;
};

struct RingHandle {
  Ring* ring = nullptr;
  Ring& get() {
    if (ring == nullptr) ring = TraceRegistry::instance().acquire();
    return *ring;
  }
  ~RingHandle() {
    if (ring != nullptr) TraceRegistry::instance().release(ring);
  }
};

thread_local RingHandle tls_ring;
thread_local std::uint32_t tls_depth = 0;

// Trace epoch: fixed at the first enable so timestamps are small positive
// microsecond offsets in the viewer.
std::atomic<std::uint64_t> g_epoch_ns{0};

std::uint64_t trace_now_ns() {
  return now_ns() - g_epoch_ns.load(std::memory_order_relaxed);
}

}  // namespace

void set_tracing_enabled(bool on) {
  if (on) {
    std::uint64_t expected = 0;
    g_epoch_ns.compare_exchange_strong(expected, now_ns(),
                                       std::memory_order_relaxed);
  }
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

void ScopedSpan::start(const char* name) {
  name_ = name;
  depth_ = tls_depth++;
  t0_ = trace_now_ns();
  active_ = true;
}

void ScopedSpan::finish() {
  const std::uint64_t t1 = trace_now_ns();
  --tls_depth;
  TraceEvent ev;
  ev.name = name_;
  ev.depth = depth_;
  ev.ts_ns = t0_;
  ev.dur_ns = t1 >= t0_ ? t1 - t0_ : 0;
  Ring& ring = tls_ring.get();
  ev.tid = ring.tid;
  ring.record(ev);
}

std::vector<TraceEvent> trace_events() {
  return TraceRegistry::instance().collect();
}

std::uint64_t trace_dropped_events() {
  return TraceRegistry::instance().dropped();
}

void trace_clear() { TraceRegistry::instance().clear(); }

void TraceWriter::write(std::ostream& os) const {
  const std::vector<TraceEvent> events = trace_events();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
        "\"process_name\", \"args\": {\"name\": \"gecos\"}}";
  std::uint32_t named_tid = 0;
  for (const TraceEvent& ev : events) {
    if (ev.tid != named_tid) {
      named_tid = ev.tid;
      os << ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << ev.tid
         << ", \"name\": \"thread_name\", \"args\": {\"name\": \"gecos-"
         << ev.tid << "\"}}";
    }
    // ts/dur in microseconds (the trace-event unit), 3 decimals = ns.
    const double ts_us = static_cast<double>(ev.ts_ns) / 1000.0;
    const double dur_us = static_cast<double>(ev.dur_ns) / 1000.0;
    char num[64];
    os << ",\n{\"name\": \"" << ev.name
       << "\", \"cat\": \"gecos\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << ev.tid << ", \"ts\": ";
    std::snprintf(num, sizeof num, "%.3f", ts_us);
    os << num << ", \"dur\": ";
    std::snprintf(num, sizeof num, "%.3f", dur_us);
    os << num << ", \"args\": {\"depth\": " << ev.depth << "}}";
  }
  os << "\n]}\n";
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace gecos::telemetry
