#include "telemetry/progress.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

namespace gecos::telemetry {

double eta_from_decay(double first_metric, double metric, double target,
                      double elapsed_s) {
  if (!(first_metric > 0.0) || !(metric > 0.0) || !(target > 0.0) ||
      !(elapsed_s > 0.0))
    return -1.0;
  if (metric <= target) return 0.0;
  const double decay = std::log(first_metric / metric);
  if (!(decay > 0.0)) return -1.0;  // not converging (yet)
  return elapsed_s * std::log(metric / target) / decay;
}

ProgressFn stderr_progress(const char* tag, double min_interval_s) {
  struct State {
    std::chrono::steady_clock::time_point last{};
    std::string last_phase;
    bool any = false;
  };
  auto state = std::make_shared<State>();
  const std::string prefix(tag == nullptr ? "" : tag);
  return [state, prefix, min_interval_s](const ProgressEvent& ev) {
    const auto now = std::chrono::steady_clock::now();
    const bool phase_change = !state->any || state->last_phase != ev.phase;
    if (!phase_change &&
        std::chrono::duration<double>(now - state->last).count() <
            min_interval_s)
      return;
    state->any = true;
    state->last = now;
    state->last_phase = ev.phase;
    std::string line = "gecos";
    if (!prefix.empty()) line += "[" + prefix + "]";
    char buf[160];
    std::snprintf(buf, sizeof buf, " %-12s iter %zu", ev.phase, ev.iteration);
    line += buf;
    if (ev.total != 0) {
      std::snprintf(buf, sizeof buf, "/%zu", ev.total);
      line += buf;
    }
    if (ev.matvecs != 0) {
      std::snprintf(buf, sizeof buf, "  matvecs %zu", ev.matvecs);
      line += buf;
    }
    if (ev.metric != 0.0 || ev.target != 0.0) {
      std::snprintf(buf, sizeof buf, "  metric %.3e", ev.metric);
      line += buf;
      if (ev.target != 0.0) {
        std::snprintf(buf, sizeof buf, " -> %.1e", ev.target);
        line += buf;
      }
    }
    std::snprintf(buf, sizeof buf, "  elapsed %.1fs", ev.elapsed_s);
    line += buf;
    if (ev.eta_s >= 0.0) {
      std::snprintf(buf, sizeof buf, "  eta ~%.0fs", ev.eta_s);
      line += buf;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
  };
}

}  // namespace gecos::telemetry
