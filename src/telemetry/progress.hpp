// Solver progress reporting: the ProgressSink callback contract.
//
// Long solves (the n = 32 sector ground state runs ~102 s) were black boxes
// until they returned. Every iterative driver — Lanczos, imag_time, the
// Krylov and Trotter evolvers, the spectral estimators — now accepts an
// optional callback invoked at iteration boundaries with a ProgressEvent:
// where the solve is (iteration / total), how converged it is (metric vs
// target), how much work it has done (matvecs, elapsed) and a best-effort
// ETA. Callbacks run on the solver's calling thread, outside parallel
// regions, and are never invoked when unset, so the disabled cost is one
// branch on an empty std::function.
//
// stderr_progress() builds the standard throttled human-readable reporter
// (bench_main --progress and tools/resume_driver --progress use it);
// anything else — a daemon's job table, a test capturing trajectories — is
// just another std::function. See DESIGN.md "Telemetry & tracing".
#pragma once

#include <cstddef>
#include <functional>

namespace gecos::telemetry {

/// One progress report at an iteration boundary. Fields a driver cannot
/// know keep their defaults (total = 0 means open-ended, eta_s < 0 means
/// unknown).
struct ProgressEvent {
  const char* phase = "";     ///< driver tag, e.g. "lanczos", "krylov"
  std::size_t iteration = 0;  ///< 1-based iteration / step / sample index
  std::size_t total = 0;      ///< planned iterations; 0 when open-ended
  double metric = 0.0;        ///< residual / error estimate / variance
  double target = 0.0;        ///< convergence target for metric; 0 = none
  std::size_t matvecs = 0;    ///< operator applications so far
  double elapsed_s = 0.0;     ///< wall seconds since the solve started
  double eta_s = -1.0;        ///< estimated seconds remaining; < 0 unknown
};

/// The ProgressSink: any callable taking a ProgressEvent. An empty function
/// disables reporting.
using ProgressFn = std::function<void(const ProgressEvent&)>;

/// ETA from geometric convergence: assumes metric decays exponentially from
/// first_metric to metric over elapsed_s and extrapolates to target.
/// Returns -1 when the inputs do not support an estimate (non-positive
/// values, no decay yet) and 0 once metric <= target.
double eta_from_decay(double first_metric, double metric, double target,
                      double elapsed_s);

/// The standard stderr reporter: single-line reports, throttled to one
/// print per min_interval_s (the throttle never drops the first event of a
/// phase). tag prefixes every line (bench uses the entry name).
ProgressFn stderr_progress(const char* tag = "", double min_interval_s = 0.25);

}  // namespace gecos::telemetry
