// Telemetry metrics registry: counters, gauges and log-bucketed histograms.
//
// The instrumentation layer every hot subsystem reports into. Design goals,
// in priority order:
//
//   1. The DISABLED path costs one relaxed atomic load and a predicted
//      branch — cheap enough to leave count()/observe() calls inline in the
//      matvec kernels without moving the recorded bench numbers, and it
//      never allocates, so the zero-allocation-after-warmup contract of the
//      solvers is untouched when telemetry is off (pinned by
//      tests/test_telemetry.cpp's alloc probe).
//   2. The ENABLED path is race-free without a hot-path lock: every thread
//      accumulates into its own lock-free shard (plain relaxed atomics, so
//      a concurrent snapshot read is not a data race), and shards are only
//      merged under the registry mutex — on snapshot, and when a thread
//      exits and retires its shard into the global totals.
//   3. Increment sites are coarse: once per operator application, per
//      kernel sweep, per checkpoint — never per amplitude. Byte counts are
//      the same analytic traffic models the bench roofline uses, so
//      bytes_moved / elapsed is directly comparable to stream_triad.
//
// Histograms use 64 fixed power-of-two buckets (bucket index =
// std::bit_width(value); bucket 0 holds exactly {0}): recording is two
// relaxed adds, percentile estimates come from the merged cumulative bucket
// counts and are bounded by value <= estimate < 2 * value. No dynamic bins,
// no allocation after the shard exists.
//
// GECOS_METRICS=1 enables metrics at process start; GECOS_TRACE=<path>
// (see trace.hpp) implies it. Both are parsed strictly — an invalid value
// terminates with the offending token rather than degrading silently. Every
// "%p" in the GECOS_TRACE path expands to the process id, so a daemon and
// the clients it forks can all trace concurrently without clobbering one
// file (see expand_trace_path). See DESIGN.md "Telemetry & tracing".
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gecos::telemetry {

/// Monotonic event counters. Semantics of the traffic trio: matvecs counts
/// LinearOperator::apply entries (one logical operator application);
/// kernel_sweeps counts per-term statevector passes inside them;
/// amplitudes_touched / bytes_moved follow the bench traffic models (48 B
/// per touched amplitude for mask kernels, 52 B for table-driven sector
/// hops), so they are comparable to the stream_triad roofline.
enum class Counter : int {
  matvecs = 0,         ///< LinearOperator::apply calls (logical matvecs)
  kernel_sweeps,       ///< per-term statevector passes
  amplitudes_touched,  ///< amplitudes read-modify-written by kernels
  bytes_moved,         ///< modeled statevector traffic in bytes
  checkpoint_writes,   ///< checkpoint files written (incl. .bak rotation)
  checkpoint_restores, ///< checkpoint files read back successfully
  checkpoint_bytes,    ///< payload bytes written to checkpoint files
  pool_dispatches,     ///< parallel_for calls that reached the thread pool
  pool_chunks,         ///< chunks executed across all pool dispatches
  spans_dropped,       ///< trace span events overwritten in a full ring
  kernel_compiles,     ///< term kernels compiled (ScbSum + SectorOperator)
  sector_table_builds, ///< sector rank->config tables materialized
  sector_table_hits,   ///< sector table requests served from the registry
  artifact_hits,       ///< serve artifact-cache lookups that hit
  artifact_misses,     ///< serve artifact-cache lookups that built
  artifact_evictions,  ///< serve artifact-cache entries evicted (LRU)
  jobs_submitted,      ///< serve jobs accepted by the scheduler
  jobs_completed,      ///< serve jobs that reached the done state
  observables_batched, ///< expectation requests coalesced into shared passes
  kCount               ///< number of counters (not a counter)
};

/// Last-write-wins instantaneous values. Gauges are single global atomics,
/// recorded unconditionally (the write sites are cold configuration paths).
enum class Gauge : int {
  simd_tier = 0,  ///< active SimdTier as an integer (0 scalar/1 avx2/2 avx512)
  threads,        ///< current worker-count setting (num_threads())
  kCount          ///< number of gauges (not a gauge)
};

/// Log-bucketed duration histograms (values in nanoseconds).
enum class Hist : int {
  matvec_ns = 0,        ///< wall time per LinearOperator::apply
  pool_task_ns,         ///< wall time per executed pool chunk
  pool_idle_ns,         ///< worker wait time between pool dispatches
  checkpoint_write_ns,  ///< wall time per checkpoint write
  kCount                ///< number of histograms (not a histogram)
};

/// Array extents for the snapshot structs.
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);
/// Array extent for Gauge-indexed storage.
inline constexpr std::size_t kNumGauges =
    static_cast<std::size_t>(Gauge::kCount);
/// Array extent for Hist-indexed storage.
inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount);
/// Fixed bucket count: bucket b holds values with std::bit_width(v) == b,
/// i.e. [2^(b-1), 2^b) for b >= 1 and exactly {0} for b = 0.
inline constexpr std::size_t kHistBuckets = 64;

/// Stable snake_case name of a counter (used by the bench JSON telemetry
/// block and the tests).
const char* counter_name(Counter c);
/// Stable snake_case name of a gauge.
const char* gauge_name(Gauge g);
/// Stable snake_case name of a histogram.
const char* hist_name(Hist h);

namespace detail {

/// The one global metrics switch. Inline so the disabled check compiles to
/// a single relaxed load at every instrumentation site.
inline std::atomic<bool> g_metrics{false};

/// Out-of-line enabled paths (shard lookup + relaxed adds).
void counter_add_enabled(Counter c, std::uint64_t v);
/// Histogram record, enabled path.
void observe_enabled(Hist h, std::uint64_t value);

}  // namespace detail

/// True when metrics recording is on (GECOS_METRICS=1, GECOS_TRACE, or
/// set_metrics_enabled). The relaxed load every count()/observe() site pays
/// when disabled.
inline bool metrics_enabled() {
  return detail::g_metrics.load(std::memory_order_relaxed);
}

/// Turns metrics recording on or off at runtime (bench --trace and the
/// telemetry_overhead entry toggle this; GECOS_METRICS sets the initial
/// state). Thread-safe; takes effect at each site's next enabled check.
void set_metrics_enabled(bool on);

/// Adds v to a counter. Disabled: one relaxed load + branch, no allocation.
/// Enabled: relaxed add into the calling thread's shard (first use on a
/// thread allocates that shard — the warmup).
inline void count(Counter c, std::uint64_t v = 1) {
  if (metrics_enabled()) [[unlikely]]
    detail::counter_add_enabled(c, v);
}

/// Records a value (nanoseconds) into a histogram; same cost contract as
/// count().
inline void observe(Hist h, std::uint64_t value) {
  if (metrics_enabled()) [[unlikely]]
    detail::observe_enabled(h, value);
}

/// Sets a gauge. Unconditional (gauges live on cold configuration paths:
/// set_num_threads, SIMD tier selection).
void gauge_set(Gauge g, std::int64_t v);

/// Monotonic nanosecond clock for duration instrumentation
/// (std::chrono::steady_clock since an arbitrary process-local epoch).
std::uint64_t now_ns();

/// Merged view of one histogram: bucket counts plus exact count/sum.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};  ///< per-bucket counts
  std::uint64_t count = 0;                            ///< values recorded
  std::uint64_t sum = 0;                              ///< exact value sum
  /// Upper-bound percentile estimate, p in [0, 100]: the smallest bucket
  /// upper bound whose cumulative count covers fraction p of the samples.
  /// Guarantee for v >= 1: v <= percentile-estimate < 2 v. Returns 0 when
  /// empty.
  double percentile(double p) const;
  /// Exact mean (sum / count); 0 when empty.
  double mean() const;
};

/// Point-in-time merge of every live thread shard plus the retired totals.
struct MetricsSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};  ///< by Counter index
  std::array<std::int64_t, kNumGauges> gauges{};       ///< by Gauge index
  std::array<HistogramSnapshot, kNumHists> hists{};    ///< by Hist index
  /// Convenience accessor by enum.
  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  /// Gauge accessor by enum.
  std::int64_t gauge(Gauge g) const {
    return gauges[static_cast<std::size_t>(g)];
  }
  /// Histogram accessor by enum.
  const HistogramSnapshot& hist(Hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }
};

/// Merges retired totals and every live shard under the registry lock.
/// Increments issued before a pool-dispatch completion or a thread join are
/// visible; concurrent in-flight increments may or may not be included.
MetricsSnapshot metrics_snapshot();

/// Interval view: counters and histograms are after - before (saturating at
/// zero per field), gauges are taken from `after`. The bench harness wraps
/// each entry in a snapshot pair and reports the delta.
MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after);

/// Bucket index for a value (= std::bit_width clamped to kHistBuckets - 1);
/// exposed for the histogram tests.
std::size_t hist_bucket(std::uint64_t v);

/// Inclusive upper bound of a bucket (2^b - 1; bucket 0 -> 0; the top
/// bucket is a catch-all with upper bound UINT64_MAX, since hist_bucket
/// clamps into it); the value percentile() reports for samples in bucket b.
std::uint64_t hist_bucket_upper(std::size_t b);

/// Strict GECOS_METRICS parser: "0" -> false, "1" -> true, anything else
/// throws std::invalid_argument naming the offending token. Exposed so the
/// tests can exercise the policy without re-execing.
bool parse_metrics_env(const char* text);

/// Expands every "%p" in a GECOS_TRACE path to the calling process's pid
/// (decimal). This is how concurrent processes — gecosd plus the clients it
/// serves, or a fork+exec test harness — share one GECOS_TRACE value
/// without racing on a single output file. A literal "%p" cannot be
/// escaped; no other placeholders exist.
std::string expand_trace_path(const std::string& path);

/// Applies GECOS_METRICS / GECOS_TRACE once per process (runs automatically
/// before main via a static registrar; later calls are no-ops). An invalid
/// value prints the offending token to stderr and exits with status 2 —
/// matching bench_main's unknown-flag policy. GECOS_TRACE=<path> enables
/// metrics + tracing and registers an atexit hook that writes the trace
/// JSON to <path>.
void init_from_env();

}  // namespace gecos::telemetry
