// XXH64: the 64-bit xxHash non-cryptographic checksum.
//
// Self-contained implementation of the public-domain XXH64 algorithm
// (Yann Collet's specification, https://github.com/Cyan4973/xxHash) —
// the checkpoint layer needs a fast whole-file integrity hash and the
// container bakes in no hashing library. XXH64 consumes ~one cycle per
// byte scalar, far below checkpoint I/O cost, and its avalanche finalizer
// makes single-bit payload flips flip ~half the digest bits, which is the
// property the corruption-matrix tests lean on. Verified against the
// reference vectors (e.g. XXH64("", 0) = 0xEF46DB3751D8E999) in
// tests/test_checkpoint.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gecos {

/// XXH64 digest of `len` bytes at `data` with the given seed.
/// Matches the reference implementation bit-for-bit on all inputs.
std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed = 0);

}  // namespace gecos
