// XXH64 reference algorithm: 4 parallel 64-bit lanes over 32-byte stripes,
// lane merge, tail absorption, avalanche finalizer.
#include "io/xxhash.hpp"

#include <cstring>

namespace gecos {

namespace {

constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kP3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kP5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

// Unaligned little-endian loads (memcpy compiles to a single mov).
inline std::uint64_t load64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t load32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t round_step(std::uint64_t acc, std::uint64_t input) {
  acc += input * kP2;
  acc = rotl(acc, 31);
  return acc * kP1;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= round_step(0, val);
  return acc * kP1 + kP4;
}

}  // namespace

std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kP1 + kP2;
    std::uint64_t v2 = seed + kP2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kP1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = round_step(v1, load64(p));
      v2 = round_step(v2, load64(p + 8));
      v3 = round_step(v3, load64(p + 16));
      v4 = round_step(v4, load64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kP5;
  }

  h += static_cast<std::uint64_t>(len);

  while (p + 8 <= end) {
    h ^= round_step(0, load64(p));
    h = rotl(h, 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(load32(p)) * kP1;
    h = rotl(h, 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kP5;
    h = rotl(h, 11) * kP1;
    ++p;
  }

  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

}  // namespace gecos
