// Versioned, checksummed, crash-safe binary checkpoint format.
//
// Long solves (the recorded n=32 sector ground state is ~100 s single-core;
// ROADMAP item 2 targets n=36-40) die with nothing to show when the process
// is killed at matvec 150. This layer gives every owning state type and
// every solver a durable on-disk form. The wire layout is a fixed 24-byte
// header (8-byte magic "GECOSCK1", u32 format version, u32 payload kind,
// u64 payload size), the raw payload bytes, and a trailing XXH64 digest of
// everything before it — see DESIGN.md "Checkpoint format & failure model"
// for the byte-exact table. Multi-byte fields are native-endian: a file
// moved across endianness fails the version check, which is the honest
// answer (the amplitude payload would be byte-swapped anyway).
//
// Writes are crash-safe by construction: the full image is written to a
// writer-unique side file `path + ".tmp.<pid>.<seq>"`, flushed and fsync'd,
// the previous checkpoint (if any) is rotated to `path + ".bak"`, and the
// tmp file renamed into place — both renames atomic on POSIX, so at every
// instant the path set contains at least one complete, validated
// checkpoint. The pid + sequence suffix makes concurrent writers (threads
// of one process, or a daemon and its tools racing on the same path) safe:
// each assembles its full image in a private side file, and the atomic
// renames guarantee the published file is always ONE writer's complete
// image, never an interleaving (pinned by tests/test_checkpoint.cpp's
// concurrent-writer test). Readers validate size floor,
// magic, checksum, version, payload-size consistency, and payload kind, in
// that order, and report failures through the gecos::Error taxonomy
// (io_corrupt / version_mismatch); read_checkpoint_with_fallback() falls
// back to the `.bak` rotation when the primary is missing or damaged —
// recovery always proceeds from the last good file.
//
// PayloadWriter/PayloadReader are the (de)serialization primitives: a
// little append-only byte builder and a bounds-checked cursor. Amplitudes
// are memcpy'd as raw IEEE doubles, so a save/load round trip is bitwise
// exact — including signed zeros and NaN payloads.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "state/state_vector.hpp"
#include "symmetry/sector_basis.hpp"
#include "symmetry/sector_vector.hpp"
#include "util/error.hpp"

namespace gecos {

/// 8-byte file magic; the trailing '1' is a coarse format generation (the
/// fine version lives in the header's version field).
inline constexpr char kCheckpointMagic[8] = {'G', 'E', 'C', 'O',
                                             'S', 'C', 'K', '1'};

/// Current checkpoint format version. Readers accept exactly this version
/// and throw Error{version_mismatch} for anything else.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Size of the fixed header (magic + version + kind + payload size).
inline constexpr std::size_t kCheckpointHeaderSize = 24;

/// What a checkpoint's payload contains. Stored in the header so a reader
/// rejects e.g. a Lanczos state handed to load_state_vector().
enum class PayloadKind : std::uint32_t {
  kStateVector = 1,   ///< full 2^n state: n, dim, amplitudes
  kSectorVector = 2,  ///< sector descriptor + rank-indexed amplitudes
  kSectorBasis = 3,   ///< sector descriptor only (masks + counts)
  kLanczosState = 4,  ///< mid-flight thick-restart Lanczos solver state
  kImagTimeState = 5, ///< mid-flight imaginary-time projection state
  kServeJob = 6,      ///< gecosd job journal: spec + state + result payload
};

/// Append-only payload builder. All put_* calls append native-endian raw
/// bytes; bytes() views the accumulated buffer for write_checkpoint().
class PayloadWriter {
 public:
  /// Appends a 32-bit unsigned integer.
  void put_u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  /// Appends a 64-bit unsigned integer.
  void put_u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  /// Appends an IEEE double, bit-exact.
  void put_f64(double v) { raw(&v, sizeof(v)); }
  /// Appends a complex amplitude span as raw interleaved (re, im) doubles.
  void put_cplx(std::span<const cplx> v) { raw(v.data(), v.size_bytes()); }
  /// Appends a length-prefixed (u64) byte string.
  void put_string(const std::string& s);
  /// View of the accumulated payload bytes.
  std::span<const unsigned char> bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n);

  std::vector<unsigned char> buf_;
};

/// Bounds-checked payload cursor. Every get_* advances the read position
/// and throws Error{io_corrupt} when the payload is too short; a checksum-
/// valid file can still be structurally short if written by buggy code, so
/// readers never trust lengths blindly.
class PayloadReader {
 public:
  /// Wraps a payload byte span (not owned; must outlive the reader).
  explicit PayloadReader(std::span<const unsigned char> data) : data_(data) {}

  /// Reads a 32-bit unsigned integer.
  std::uint32_t get_u32();
  /// Reads a 64-bit unsigned integer.
  std::uint64_t get_u64();
  /// Reads an IEEE double, bit-exact.
  double get_f64();
  /// Reads out.size() complex amplitudes into `out`.
  void get_cplx(std::span<cplx> out);
  /// Reads a length-prefixed (u64) byte string.
  std::string get_string();
  /// Bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws Error{io_corrupt} unless the whole payload was consumed —
  /// trailing junk means the payload and its descriptor disagree.
  void require_end() const;

 private:
  const unsigned char* raw(std::size_t n);

  std::span<const unsigned char> data_;
  std::size_t pos_ = 0;
};

/// A validated checkpoint image: its payload kind, the payload bytes, and
/// whether it was served from the `.bak` rotation instead of the primary.
struct Checkpoint {
  PayloadKind kind = PayloadKind::kStateVector;  ///< header payload kind
  std::vector<unsigned char> payload;            ///< validated payload bytes
  bool from_backup = false;  ///< true when read from path + ".bak"
};

/// Atomically writes a checkpoint: full image to a writer-unique
/// `path + ".tmp.<pid>.<seq>"` side file (fsync'd), existing `path` rotated
/// to `path + ".bak"`, tmp renamed into place. Safe against concurrent
/// writers on the same path (each publishes a complete image; see the file
/// comment). Throws Error{io_corrupt} on any filesystem failure.
void write_checkpoint(const std::string& path, PayloadKind kind,
                      std::span<const unsigned char> payload);

/// Reads and fully validates `path` (size floor, magic, checksum, version,
/// payload-size consistency — in that order). Throws Error{io_corrupt} or
/// Error{version_mismatch}.
Checkpoint read_checkpoint(const std::string& path);

/// read_checkpoint() plus a payload-kind requirement; a kind mismatch is
/// Error{io_corrupt} ("wrong payload kind").
Checkpoint read_checkpoint(const std::string& path, PayloadKind expect);

/// Reads `path`, falling back to `path + ".bak"` when the primary is
/// missing or fails validation. Rethrows the primary's error when both are
/// bad; sets Checkpoint::from_backup when the rotation was used.
Checkpoint read_checkpoint_with_fallback(const std::string& path,
                                         PayloadKind expect);

/// True when `path` or its `.bak` rotation exists on disk (existence only;
/// no validation).
bool checkpoint_exists(const std::string& path);

/// Removes `path` and its `.tmp` / `.bak` siblings if present (cleanup for
/// drivers and tests). Never throws.
void remove_checkpoint(const std::string& path) noexcept;

/// Appends a SectorBasis descriptor (n_qubits, species count, then each
/// species' mask + count) to a payload under construction.
void encode_sector_basis(PayloadWriter& w, const SectorBasis& basis);

/// Reads a SectorBasis descriptor written by encode_sector_basis() and
/// reconstructs the basis (re-running full constructor validation).
SectorBasis decode_sector_basis(PayloadReader& r);

/// Saves a full 2^n state (payload kind kStateVector).
void save_state_vector(const std::string& path, const StateVector& psi);

/// Loads a kStateVector checkpoint, `.bak` fallback included; the returned
/// state is bitwise equal to the one saved.
StateVector load_state_vector(const std::string& path);

/// Saves a sector state with its basis descriptor (kind kSectorVector).
void save_sector_vector(const std::string& path, const SectorVector& psi);

/// Loads a kSectorVector checkpoint, `.bak` fallback included.
SectorVector load_sector_vector(const std::string& path);

/// Saves a sector descriptor alone (kind kSectorBasis).
void save_sector_basis(const std::string& path, const SectorBasis& basis);

/// Loads a kSectorBasis checkpoint, `.bak` fallback included.
SectorBasis load_sector_basis(const std::string& path);

}  // namespace gecos
