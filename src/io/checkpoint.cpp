// Checkpoint wire format: header/payload/digest assembly, atomic
// tmp+fsync+rename writes with .bak rotation, and strict staged validation
// on read (size floor -> magic -> checksum -> version -> descriptor).
#include "io/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "io/xxhash.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace gecos {

namespace {

/// Minimum possible file size: header + empty payload + trailing digest.
constexpr std::size_t kMinFileSize = kCheckpointHeaderSize + 8;

std::string errno_text() { return std::strerror(errno); }

/// Reads a whole file into a byte vector; false when it cannot be opened.
bool slurp(const std::string& path, std::vector<unsigned char>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    throw Error(ErrorKind::io_corrupt, path + ": ftell: " + errno_text());
  }
  std::fseek(f, 0, SEEK_SET);
  out.resize(static_cast<std::size_t>(size));
  const std::size_t got = size ? std::fread(out.data(), 1, out.size(), f) : 0;
  std::fclose(f);
  if (got != out.size())
    throw Error(ErrorKind::io_corrupt, path + ": short read");
  return true;
}

/// fsync the directory containing `path` so the renames themselves are
/// durable (best-effort: some filesystems reject directory fsync).
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash ? slash : 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Parses and validates a complete checkpoint image. The validation order
/// is part of the format contract (documented in DESIGN.md): size floor,
/// magic, checksum, version, payload-size consistency.
Checkpoint parse(const std::string& path,
                 std::vector<unsigned char>&& bytes) {
  if (bytes.size() < kMinFileSize)
    throw Error(ErrorKind::io_corrupt,
                path + ": file too short (" + std::to_string(bytes.size()) +
                    " bytes) to be a checkpoint");
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)))
    throw Error(ErrorKind::io_corrupt, path + ": bad magic");

  const std::size_t hashed = bytes.size() - 8;
  std::uint64_t stored;
  std::memcpy(&stored, bytes.data() + hashed, 8);
  if (xxh64(bytes.data(), hashed) != stored)
    throw Error(ErrorKind::io_corrupt, path + ": checksum mismatch");

  std::uint32_t version, kind_raw;
  std::uint64_t payload_size;
  std::memcpy(&version, bytes.data() + 8, 4);
  std::memcpy(&kind_raw, bytes.data() + 12, 4);
  std::memcpy(&payload_size, bytes.data() + 16, 8);
  if (version != kCheckpointVersion)
    throw Error(ErrorKind::version_mismatch,
                path + ": format version " + std::to_string(version) +
                    ", this build reads version " +
                    std::to_string(kCheckpointVersion));
  if (payload_size != hashed - kCheckpointHeaderSize)
    throw Error(ErrorKind::io_corrupt,
                path + ": payload size field disagrees with file size");

  Checkpoint ck;
  ck.kind = static_cast<PayloadKind>(kind_raw);
  ck.payload.assign(bytes.begin() + kCheckpointHeaderSize,
                    bytes.begin() + static_cast<std::ptrdiff_t>(hashed));
  return ck;
}

}  // namespace

// ---------------------------------------------------------------------------
// PayloadWriter / PayloadReader

void PayloadWriter::raw(const void* p, std::size_t n) {
  const unsigned char* b = static_cast<const unsigned char*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void PayloadWriter::put_string(const std::string& s) {
  put_u64(s.size());
  raw(s.data(), s.size());
}

const unsigned char* PayloadReader::raw(std::size_t n) {
  if (n > data_.size() - pos_)
    throw Error(ErrorKind::io_corrupt,
                "payload truncated: need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(pos_) + ", have " +
                    std::to_string(data_.size() - pos_));
  const unsigned char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint32_t PayloadReader::get_u32() {
  std::uint32_t v;
  std::memcpy(&v, raw(sizeof(v)), sizeof(v));
  return v;
}

std::uint64_t PayloadReader::get_u64() {
  std::uint64_t v;
  std::memcpy(&v, raw(sizeof(v)), sizeof(v));
  return v;
}

double PayloadReader::get_f64() {
  double v;
  std::memcpy(&v, raw(sizeof(v)), sizeof(v));
  return v;
}

void PayloadReader::get_cplx(std::span<cplx> out) {
  std::memcpy(out.data(), raw(out.size_bytes()), out.size_bytes());
}

std::string PayloadReader::get_string() {
  const std::uint64_t n = get_u64();
  if (n > data_.size() - pos_)
    throw Error(ErrorKind::io_corrupt,
                "payload truncated inside a string field");
  const unsigned char* p = raw(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(n));
}

void PayloadReader::require_end() const {
  if (pos_ != data_.size())
    throw Error(ErrorKind::io_corrupt,
                "payload has " + std::to_string(data_.size() - pos_) +
                    " trailing bytes past its descriptor");
}

// ---------------------------------------------------------------------------
// File-level read/write

void write_checkpoint(const std::string& path, PayloadKind kind,
                      std::span<const unsigned char> payload) {
  GECOS_SPAN("checkpoint.write");
  const bool metrics = telemetry::metrics_enabled();
  const std::uint64_t t0 = metrics ? telemetry::now_ns() : 0;
  // Assemble the full image in memory: header, payload, trailing digest.
  std::vector<unsigned char> image(kCheckpointHeaderSize + payload.size() + 8);
  std::memcpy(image.data(), kCheckpointMagic, sizeof(kCheckpointMagic));
  const std::uint32_t version = kCheckpointVersion;
  const std::uint32_t kind_raw = static_cast<std::uint32_t>(kind);
  const std::uint64_t payload_size = payload.size();
  std::memcpy(image.data() + 8, &version, 4);
  std::memcpy(image.data() + 12, &kind_raw, 4);
  std::memcpy(image.data() + 16, &payload_size, 8);
  if (!payload.empty())
    std::memcpy(image.data() + kCheckpointHeaderSize, payload.data(),
                payload.size());
  const std::size_t hashed = image.size() - 8;
  const std::uint64_t digest = xxh64(image.data(), hashed);
  std::memcpy(image.data() + hashed, &digest, 8);

  // Durable write to a writer-unique side file first; the primary is never
  // opened for writing, so a crash at any point here leaves it untouched.
  // The pid + sequence suffix keeps concurrent writers (two checkpointing
  // threads, or a daemon racing its tools) out of each other's buffers: a
  // fixed ".tmp" name would interleave two writers' bytes in one file and
  // publish garbage through the rename. With unique side files every rename
  // publishes one writer's COMPLETE image; the final path/bak pair is some
  // serialization of the racers, each file individually valid.
  static std::atomic<std::uint64_t> write_seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(write_seq.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f)
    throw Error(ErrorKind::io_corrupt, tmp + ": open: " + errno_text());
  const bool wrote =
      std::fwrite(image.data(), 1, image.size(), f) == image.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    throw Error(ErrorKind::io_corrupt, tmp + ": write: " + errno_text());
  }

  // Rotate the previous checkpoint, then publish. Each rename is atomic;
  // between them the last good image lives at .bak.
  std::rename(path.c_str(), (path + ".bak").c_str());  // ok if absent
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(ErrorKind::io_corrupt, path + ": rename: " + errno_text());
  }
  sync_parent_dir(path);
  if (metrics) {
    telemetry::count(telemetry::Counter::checkpoint_writes);
    telemetry::count(telemetry::Counter::checkpoint_bytes, image.size());
    telemetry::observe(telemetry::Hist::checkpoint_write_ns,
                       telemetry::now_ns() - t0);
  }
}

Checkpoint read_checkpoint(const std::string& path) {
  GECOS_SPAN("checkpoint.read");
  std::vector<unsigned char> bytes;
  if (!slurp(path, bytes))
    throw Error(ErrorKind::io_corrupt, path + ": cannot open: " +
                                           errno_text());
  Checkpoint ck = parse(path, std::move(bytes));
  telemetry::count(telemetry::Counter::checkpoint_restores);
  return ck;
}

Checkpoint read_checkpoint(const std::string& path, PayloadKind expect) {
  Checkpoint ck = read_checkpoint(path);
  if (ck.kind != expect)
    throw Error(ErrorKind::io_corrupt,
                path + ": wrong payload kind " +
                    std::to_string(static_cast<std::uint32_t>(ck.kind)) +
                    " (expected " +
                    std::to_string(static_cast<std::uint32_t>(expect)) + ")");
  return ck;
}

Checkpoint read_checkpoint_with_fallback(const std::string& path,
                                         PayloadKind expect) {
  try {
    return read_checkpoint(path, expect);
  } catch (const Error& primary_error) {
    try {
      Checkpoint ck = read_checkpoint(path + ".bak", expect);
      ck.from_backup = true;
      return ck;
    } catch (const Error&) {
      throw primary_error;  // the primary's diagnosis is the useful one
    }
  }
}

bool checkpoint_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0 ||
         ::access((path + ".bak").c_str(), F_OK) == 0;
}

void remove_checkpoint(const std::string& path) noexcept {
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// Type serializers

void encode_sector_basis(PayloadWriter& w, const SectorBasis& basis) {
  const std::vector<SpeciesSector> sp = basis.species();
  w.put_u64(basis.n_qubits());
  w.put_u64(sp.size());
  for (const SpeciesSector& s : sp) {
    w.put_u64(s.mask);
    w.put_u64(s.count);
  }
}

SectorBasis decode_sector_basis(PayloadReader& r) {
  const std::uint64_t n = r.get_u64();
  const std::uint64_t n_species = r.get_u64();
  if (n_species > 64)  // more species than qubits cannot be a valid sector
    throw Error(ErrorKind::io_corrupt,
                "sector descriptor claims " + std::to_string(n_species) +
                    " species");
  std::vector<SpeciesSector> sp(static_cast<std::size_t>(n_species));
  for (SpeciesSector& s : sp) {
    s.mask = r.get_u64();
    s.count = static_cast<std::size_t>(r.get_u64());
  }
  return SectorBasis(static_cast<std::size_t>(n), std::move(sp));
}

void save_state_vector(const std::string& path, const StateVector& psi) {
  PayloadWriter w;
  w.put_u64(psi.n_qubits());
  w.put_u64(psi.dim());
  w.put_cplx(psi.amps());
  write_checkpoint(path, PayloadKind::kStateVector, w.bytes());
}

StateVector load_state_vector(const std::string& path) {
  const Checkpoint ck =
      read_checkpoint_with_fallback(path, PayloadKind::kStateVector);
  PayloadReader r(ck.payload);
  const std::uint64_t n = r.get_u64();
  const std::uint64_t dim = r.get_u64();
  if (n < 1 || n > 63 || dim != (std::uint64_t{1} << n))
    throw Error(ErrorKind::io_corrupt,
                path + ": state descriptor n=" + std::to_string(n) +
                    " dim=" + std::to_string(dim) + " is inconsistent");
  StateVector psi(static_cast<std::size_t>(n));
  r.get_cplx(psi.amps());
  r.require_end();
  return psi;
}

void save_sector_vector(const std::string& path, const SectorVector& psi) {
  PayloadWriter w;
  encode_sector_basis(w, psi.basis());
  w.put_u64(psi.dim());
  w.put_cplx(psi.amps());
  write_checkpoint(path, PayloadKind::kSectorVector, w.bytes());
}

SectorVector load_sector_vector(const std::string& path) {
  const Checkpoint ck =
      read_checkpoint_with_fallback(path, PayloadKind::kSectorVector);
  PayloadReader r(ck.payload);
  SectorBasis basis = decode_sector_basis(r);
  const std::uint64_t dim = r.get_u64();
  if (dim != basis.dim())
    throw Error(ErrorKind::io_corrupt,
                path + ": amplitude count " + std::to_string(dim) +
                    " disagrees with sector dimension " +
                    std::to_string(basis.dim()));
  SectorVector psi{std::move(basis)};
  r.get_cplx(psi.amps());
  r.require_end();
  return psi;
}

void save_sector_basis(const std::string& path, const SectorBasis& basis) {
  PayloadWriter w;
  encode_sector_basis(w, basis);
  write_checkpoint(path, PayloadKind::kSectorBasis, w.bytes());
}

SectorBasis load_sector_basis(const std::string& path) {
  const Checkpoint ck =
      read_checkpoint_with_fallback(path, PayloadKind::kSectorBasis);
  PayloadReader r(ck.payload);
  SectorBasis basis = decode_sector_basis(r);
  r.require_end();
  return basis;
}

}  // namespace gecos
