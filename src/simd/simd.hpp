// Runtime-dispatched SIMD tier selection for the wide statevector kernels.
//
// The hot loops of the library (blas1 reductions and updates, TermKernel /
// TermExp sweeps, SectorOperator matvecs) route their innermost contiguous
// ranges through a table of function pointers (src/simd/kernels.hpp) chosen
// at runtime from up to three tiers:
//
//   scalar  — portable std::fma implementation, always compiled, the
//             reference every wide tier is pinned against (test_simd);
//   avx2    — 2 complex<double> per register (AVX2 + FMA3);
//   avx512  — 4 complex<double> per register (AVX-512 F/DQ/VL/BW).
//
// Tier selection: the first call reads the GECOS_SIMD environment variable
// ("scalar" | "avx2" | "avx512", mirroring GECOS_THREADS); when unset, the
// widest tier both compiled in AND supported by the host CPUID is picked.
// Forcing a tier the host cannot run throws std::invalid_argument — loud
// beats a SIGILL. bench_main exposes the same knob as --simd.
//
// Every tier computes BITWISE-IDENTICAL results for identical (pointer,
// length) ranges: reductions accumulate into a fixed 8-double lane pattern
// (lane j sums the doubles at positions == j mod 8) combined by one shared
// tree, and elementwise kernels use the exact fused-multiply-add formulas
// of the x86 fmaddsub/fmsubadd instructions (the scalar tier spells them
// with std::fma). The kernel translation units are compiled with
// -ffp-contract=off so no compiler re-fusion can break the equivalence.
// See DESIGN.md "SIMD kernels & runtime dispatch".
#pragma once

#include <string>

namespace gecos {

/// Dispatch tiers, narrowest to widest. Values are stable (used as array
/// indices and recorded in BENCH_pauli.json's hw block).
enum class SimdTier { scalar = 0, avx2 = 1, avx512 = 2 };

/// Human-readable tier name ("scalar" / "avx2" / "avx512"), the same
/// spelling GECOS_SIMD and --simd accept.
const char* simd_tier_name(SimdTier t);

/// Parses a tier name; throws std::invalid_argument on anything else.
SimdTier parse_simd_tier(const std::string& name);

/// True when the tier is both compiled into this binary and supported by
/// the host CPU (CPUID). The scalar tier is always available.
bool simd_tier_available(SimdTier t);

/// Widest available tier on this host (what auto-selection picks).
SimdTier simd_best_tier();

/// Currently active tier. The first call initializes it from GECOS_SIMD
/// (throwing std::invalid_argument on an unknown name or an unavailable
/// tier) or from simd_best_tier() when the variable is unset.
SimdTier simd_tier();

/// Forces the active tier; throws std::invalid_argument when the tier is
/// not available on this host. Thread-safe, but callers should switch tiers
/// only between (not during) kernel invocations — concurrent kernels keep
/// working either way, each call snapshots one table.
void set_simd_tier(SimdTier t);

}  // namespace gecos
