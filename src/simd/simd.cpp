#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "simd/kernels.hpp"
#include "telemetry/telemetry.hpp"

namespace gecos {

namespace {

/// Host CPUID support for a tier (independent of what was compiled in).
bool cpu_supports(SimdTier t) {
#if defined(__x86_64__) || defined(_M_X64)
  switch (t) {
    case SimdTier::scalar:
      return true;
    case SimdTier::avx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdTier::avx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512bw");
  }
  return false;
#else
  return t == SimdTier::scalar;
#endif
}

/// First-use tier: GECOS_SIMD when set (loud failure on an unknown name or
/// an unavailable tier — a silent fallback would quietly un-force what the
/// user forced), else the widest available tier.
SimdTier initial_tier() {
  if (const char* env = std::getenv("GECOS_SIMD")) {
    const SimdTier t = parse_simd_tier(env);
    if (!simd_tier_available(t))
      throw std::invalid_argument(
          std::string("GECOS_SIMD=") + simd_tier_name(t) +
          ": tier not available on this host (compiled: " +
          (simd::impl_for(t).compiled ? "yes" : "no") + ", cpu: " +
          (cpu_supports(t) ? "yes" : "no") + ")");
    return t;
  }
  return simd_best_tier();
}

std::atomic<SimdTier>& tier_state() {
  static std::atomic<SimdTier> t = [] {
    const SimdTier tier = initial_tier();
    telemetry::gauge_set(telemetry::Gauge::simd_tier,
                         static_cast<std::int64_t>(tier));
    return std::atomic<SimdTier>{tier};
  }();
  return t;
}

}  // namespace

const char* simd_tier_name(SimdTier t) {
  switch (t) {
    case SimdTier::scalar:
      return "scalar";
    case SimdTier::avx2:
      return "avx2";
    case SimdTier::avx512:
      return "avx512";
  }
  return "unknown";
}

SimdTier parse_simd_tier(const std::string& name) {
  if (name == "scalar") return SimdTier::scalar;
  if (name == "avx2") return SimdTier::avx2;
  if (name == "avx512") return SimdTier::avx512;
  throw std::invalid_argument("parse_simd_tier: unknown tier '" + name +
                              "' (expected scalar | avx2 | avx512)");
}

bool simd_tier_available(SimdTier t) {
  return simd::impl_for(t).compiled && cpu_supports(t);
}

SimdTier simd_best_tier() {
  if (simd_tier_available(SimdTier::avx512)) return SimdTier::avx512;
  if (simd_tier_available(SimdTier::avx2)) return SimdTier::avx2;
  return SimdTier::scalar;
}

SimdTier simd_tier() {
  return tier_state().load(std::memory_order_relaxed);
}

void set_simd_tier(SimdTier t) {
  if (!simd_tier_available(t))
    throw std::invalid_argument(
        std::string("set_simd_tier: tier '") + simd_tier_name(t) +
        "' is not available on this host");
  tier_state().store(t, std::memory_order_relaxed);
  telemetry::gauge_set(telemetry::Gauge::simd_tier,
                       static_cast<std::int64_t>(t));
}

namespace simd {

const TierImpl& impl_for(SimdTier t) {
  switch (t) {
    case SimdTier::avx2:
      return kAvx2Impl;
    case SimdTier::avx512:
      return kAvx512Impl;
    case SimdTier::scalar:
      break;
  }
  return kScalarImpl;
}

const Kernels& active() { return impl_for(simd_tier()).kernels; }

}  // namespace simd

}  // namespace gecos
