// AVX2 + FMA3 dispatch tier: two complex<double> per 256-bit register.
// Compiled with -mavx2 -mfma (set per-file in CMakeLists.txt); on targets
// or toolchains without those flags the tier degrades to an empty table
// marked not-compiled, and runtime dispatch never selects it.
#include "simd/kernels_generic.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace gecos::simd {

namespace {

// 256-bit pack of two interleaved complex<double>. The shuffles stay within
// 128-bit lanes (permute_pd / movedup), so every op is cheap on all AVX2
// parts.
struct Avx2Pack {
  using V = __m256d;
  static constexpr std::size_t width = 2;
  static V zero() { return _mm256_setzero_pd(); }
  static V load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, V x) { _mm256_storeu_pd(p, x); }
  static V broadcast(double x) { return _mm256_set1_pd(x); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V fmadd(V a, V b, V c) { return _mm256_fmadd_pd(a, b, c); }
  static V fmaddsub(V a, V b, V c) { return _mm256_fmaddsub_pd(a, b, c); }
  static V fmsubadd(V a, V b, V c) { return _mm256_fmsubadd_pd(a, b, c); }
  static V swap_pairs(V x) { return _mm256_permute_pd(x, 0b0101); }
  static V dup_even(V x) { return _mm256_movedup_pd(x); }
  static V dup_odd(V x) { return _mm256_permute_pd(x, 0b1111); }
};

}  // namespace

const TierImpl kAvx2Impl{Impl<Avx2Pack>::table(), true};

}  // namespace gecos::simd

#else  // !(__AVX2__ && __FMA__)

namespace gecos::simd {

const TierImpl kAvx2Impl{Kernels{}, false};

}  // namespace gecos::simd

#endif
