// Tier-generic kernel implementations (included by the per-tier TUs only).
//
// Each tier translation unit defines a Pack type — a fixed-width vector of
// interleaved re/im doubles with load/store, add/mul and the three fused
// ops fmadd / fmaddsub / fmsubadd plus the in-register shuffles swap_pairs
// / dup_even / dup_odd — and instantiates Impl<Pack> to obtain its Kernels
// table. The bodies below spell every floating-point operation explicitly
// (std::fma in the scalar tails, the fused Pack ops in the main loops) and
// the TUs are compiled with -ffp-contract=off, so each tier performs the
// exact same IEEE operations per element and the results are
// bitwise-identical — the contract test_simd pins.
//
// Reduction lane pattern: the main loops process 4 complex (8 doubles) per
// iteration split across 8/width packs, so accumulator lane j always sums
// the doubles at flat positions == j mod 8 regardless of register width;
// tails accumulate into the same lane slots with std::fma. Elementwise
// main loops advance by the pack width and finish with scalar tails using
// the matching formulas.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.hpp"

namespace gecos::simd {

/// Scalar complex product s * x with the exact rounding of the vector
/// fmaddsub formula: re = fma(s.re, x.re, -(s.im * x.im)),
/// im = fma(s.re, x.im, s.im * x.re). Used by every tail loop (and by the
/// per-tier hop_scatter body) so tails match the wide lanes bitwise.
inline cplx cmul_fma(cplx s, cplx x) {
  const double te = s.imag() * x.imag();
  const double to = s.imag() * x.real();
  return cplx(std::fma(s.real(), x.real(), -te),
              std::fma(s.real(), x.imag(), to));
}

/// Kernel bodies over one Pack type; P::width is the number of complex
/// elements per register (1 / 2 / 4).
template <class P>
struct Impl {
  /// Complex elements per pack.
  static constexpr std::size_t kW = P::width;
  /// Doubles per pack.
  static constexpr std::size_t kD = 2 * kW;
  /// Packs per 8-double lane block.
  static constexpr std::size_t kPacks = 8 / kD;

  /// Broadcast-constant complex product s * x (s given as the two broadcast
  /// packs sr = {s.re...}, si = {s.im...}).
  static typename P::V cmul(typename P::V sr, typename P::V si,
                            typename P::V x) {
    return P::fmaddsub(sr, x, P::mul(si, P::swap_pairs(x)));
  }

  /// Elementwise complex product u_i * x_i (u per-element, not broadcast).
  static typename P::V cmul_elem(typename P::V u, typename P::V x) {
    return P::fmaddsub(P::dup_even(u), x, P::mul(P::dup_odd(u),
                                                 P::swap_pairs(x)));
  }

  /// norm2_lanes kernel (see Kernels::norm2_lanes).
  static void norm2_lanes(const cplx* v, std::size_t n, double* lanes) {
    typename P::V acc[kPacks];
    for (std::size_t k = 0; k < kPacks; ++k) acc[k] = P::zero();
    const double* p = reinterpret_cast<const double*>(v);
    const std::size_t main = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main; i += 4) {
      const double* q = p + 2 * i;
      for (std::size_t k = 0; k < kPacks; ++k) {
        const typename P::V x = P::load(q + k * kD);
        acc[k] = P::fmadd(x, x, acc[k]);
      }
    }
    for (std::size_t k = 0; k < kPacks; ++k) P::store(lanes + k * kD, acc[k]);
    for (std::size_t i = main; i < n; ++i) {
      const std::size_t l = 2 * (i & 3);
      lanes[l] = std::fma(v[i].real(), v[i].real(), lanes[l]);
      lanes[l + 1] = std::fma(v[i].imag(), v[i].imag(), lanes[l + 1]);
    }
  }

  /// dot_lanes kernel (see Kernels::dot_lanes): per element the product
  /// conj(a) * b is formed as fmsubadd(dup_even(a), b, dup_odd(a) *
  /// swap(b)) — re = fma(a.re, b.re, a.im * b.im), im = fma(a.re, b.im,
  /// -(a.im * b.re)) — then added to the lane accumulator.
  static void dot_lanes(const cplx* a, const cplx* b, std::size_t n,
                        double* lanes) {
    typename P::V acc[kPacks];
    for (std::size_t k = 0; k < kPacks; ++k) acc[k] = P::zero();
    const double* pa = reinterpret_cast<const double*>(a);
    const double* pb = reinterpret_cast<const double*>(b);
    const std::size_t main = n & ~std::size_t{3};
    for (std::size_t i = 0; i < main; i += 4) {
      const double* qa = pa + 2 * i;
      const double* qb = pb + 2 * i;
      for (std::size_t k = 0; k < kPacks; ++k) {
        const typename P::V av = P::load(qa + k * kD);
        const typename P::V bv = P::load(qb + k * kD);
        const typename P::V t = P::mul(P::dup_odd(av), P::swap_pairs(bv));
        acc[k] = P::add(acc[k], P::fmsubadd(P::dup_even(av), bv, t));
      }
    }
    for (std::size_t k = 0; k < kPacks; ++k) P::store(lanes + k * kD, acc[k]);
    for (std::size_t i = main; i < n; ++i) {
      const std::size_t l = 2 * (i & 3);
      const double te = a[i].imag() * b[i].imag();
      const double to = a[i].imag() * b[i].real();
      lanes[l] = lanes[l] + std::fma(a[i].real(), b[i].real(), te);
      lanes[l + 1] = lanes[l + 1] + std::fma(a[i].real(), b[i].imag(), -to);
    }
  }

  /// scale kernel (see Kernels::scale).
  static void scale(cplx* v, std::size_t n, cplx s) {
    double* p = reinterpret_cast<double*>(v);
    const typename P::V sr = P::broadcast(s.real());
    const typename P::V si = P::broadcast(s.imag());
    const std::size_t main = n - n % kW;
    for (std::size_t i = 0; i < main; i += kW)
      P::store(p + 2 * i, cmul(sr, si, P::load(p + 2 * i)));
    for (std::size_t i = main; i < n; ++i) v[i] = cmul_fma(s, v[i]);
  }

  /// axpy kernel (see Kernels::axpy).
  static void axpy(cplx* y, const cplx* x, std::size_t n, cplx s) {
    double* py = reinterpret_cast<double*>(y);
    const double* px = reinterpret_cast<const double*>(x);
    const typename P::V sr = P::broadcast(s.real());
    const typename P::V si = P::broadcast(s.imag());
    const std::size_t main = n - n % kW;
    for (std::size_t i = 0; i < main; i += kW) {
      const typename P::V t = cmul(sr, si, P::load(px + 2 * i));
      P::store(py + 2 * i, P::add(P::load(py + 2 * i), t));
    }
    for (std::size_t i = main; i < n; ++i) {
      const cplx t = cmul_fma(s, x[i]);
      y[i] = cplx(y[i].real() + t.real(), y[i].imag() + t.imag());
    }
  }

  /// axpby kernel (see Kernels::axpby).
  static void axpby(cplx* y, const cplx* x, std::size_t n, cplx a, cplx b) {
    double* py = reinterpret_cast<double*>(y);
    const double* px = reinterpret_cast<const double*>(x);
    const typename P::V ar = P::broadcast(a.real());
    const typename P::V ai = P::broadcast(a.imag());
    const typename P::V br = P::broadcast(b.real());
    const typename P::V bi = P::broadcast(b.imag());
    const std::size_t main = n - n % kW;
    for (std::size_t i = 0; i < main; i += kW) {
      const typename P::V t = cmul(ar, ai, P::load(px + 2 * i));
      const typename P::V u = cmul(br, bi, P::load(py + 2 * i));
      P::store(py + 2 * i, P::add(t, u));
    }
    for (std::size_t i = main; i < n; ++i) {
      const cplx t = cmul_fma(a, x[i]);
      const cplx u = cmul_fma(b, y[i]);
      y[i] = cplx(t.real() + u.real(), t.imag() + u.imag());
    }
  }

  /// diag_mul_add kernel (see Kernels::diag_mul_add).
  static void diag_mul_add(cplx* y, const cplx* d, const cplx* x,
                           std::size_t n, cplx s) {
    double* py = reinterpret_cast<double*>(y);
    const double* pd = reinterpret_cast<const double*>(d);
    const double* px = reinterpret_cast<const double*>(x);
    const typename P::V sr = P::broadcast(s.real());
    const typename P::V si = P::broadcast(s.imag());
    const std::size_t main = n - n % kW;
    for (std::size_t i = 0; i < main; i += kW) {
      const typename P::V t =
          cmul_elem(P::load(pd + 2 * i), P::load(px + 2 * i));
      P::store(py + 2 * i, P::add(P::load(py + 2 * i), cmul(sr, si, t)));
    }
    for (std::size_t i = main; i < n; ++i) {
      const cplx t = cmul_fma(s, cmul_fma(d[i], x[i]));
      y[i] = cplx(y[i].real() + t.real(), y[i].imag() + t.imag());
    }
  }

  /// phase_mul kernel (see Kernels::phase_mul).
  static void phase_mul(cplx* x, const cplx* p, std::size_t n) {
    double* px = reinterpret_cast<double*>(x);
    const double* pp = reinterpret_cast<const double*>(p);
    const std::size_t main = n - n % kW;
    for (std::size_t i = 0; i < main; i += kW)
      P::store(px + 2 * i,
               cmul_elem(P::load(pp + 2 * i), P::load(px + 2 * i)));
    for (std::size_t i = main; i < n; ++i) x[i] = cmul_fma(p[i], x[i]);
  }

  /// pair_rot kernel (see Kernels::pair_rot).
  static void pair_rot(cplx* a, cplx* b, std::size_t n, double c, cplx u,
                       cplx v) {
    double* pa = reinterpret_cast<double*>(a);
    double* pb = reinterpret_cast<double*>(b);
    const typename P::V cv = P::broadcast(c);
    const typename P::V ur = P::broadcast(u.real());
    const typename P::V ui = P::broadcast(u.imag());
    const typename P::V vr = P::broadcast(v.real());
    const typename P::V vi = P::broadcast(v.imag());
    const std::size_t main = n - n % kW;
    for (std::size_t i = 0; i < main; i += kW) {
      const typename P::V av = P::load(pa + 2 * i);
      const typename P::V bv = P::load(pb + 2 * i);
      P::store(pa + 2 * i, P::fmadd(cv, av, cmul(vr, vi, bv)));
      P::store(pb + 2 * i, P::fmadd(cv, bv, cmul(ur, ui, av)));
    }
    for (std::size_t i = main; i < n; ++i) {
      const cplx t1 = cmul_fma(v, b[i]);
      const cplx t2 = cmul_fma(u, a[i]);
      a[i] = cplx(std::fma(c, a[i].real(), t1.real()),
                  std::fma(c, a[i].imag(), t1.imag()));
      b[i] = cplx(std::fma(c, b[i].real(), t2.real()),
                  std::fma(c, b[i].imag(), t2.imag()));
    }
  }

  /// hop_scatter kernel (see Kernels::hop_scatter). Scalar body in every
  /// tier (the scattered writes defeat vector stores), but compiled with
  /// the tier's ISA flags so the loads and the complex update use the
  /// widest scalar forms available.
  static void hop_scatter(cplx* y, const cplx* x, const std::uint32_t* tgt,
                          std::size_t n, cplx base) {
    const cplx nbase(-base.real(), -base.imag());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t t = tgt[i];
      if (t == kHopSkip) continue;
      const cplx amp = (t & kHopSignBit) != 0 ? nbase : base;
      const cplx add = cmul_fma(amp, x[i]);
      cplx& out = y[t & kHopRankMask];
      out = cplx(out.real() + add.real(), out.imag() + add.imag());
    }
  }

  /// The tier's dispatch table.
  static constexpr Kernels table() {
    return Kernels{&norm2_lanes, &dot_lanes,    &scale,     &axpy,
                   &axpby,       &diag_mul_add, &phase_mul, &pair_rot,
                   &hop_scatter};
  }
};

}  // namespace gecos::simd
