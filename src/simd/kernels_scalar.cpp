// Scalar dispatch tier: one complex per "pack", every fused op spelled with
// std::fma so the arithmetic matches the AVX2/AVX-512 lanes bitwise (the
// contract test_simd pins). Always compiled — this is both the portable
// fallback and the reference the wide tiers are tested against.
#include "simd/kernels_generic.hpp"

namespace gecos::simd {

namespace {

// Width-1 "vector": two doubles, even slot = re, odd slot = im. The fused
// ops mirror the x86 semantics exactly: fmaddsub subtracts c on the even
// slot and adds on the odd, fmsubadd the reverse, each a single rounding.
struct ScalarPack {
  struct V {
    double e0, e1;
  };
  static constexpr std::size_t width = 1;
  static V zero() { return {0.0, 0.0}; }
  static V load(const double* p) { return {p[0], p[1]}; }
  static void store(double* p, V x) {
    p[0] = x.e0;
    p[1] = x.e1;
  }
  static V broadcast(double x) { return {x, x}; }
  static V add(V a, V b) { return {a.e0 + b.e0, a.e1 + b.e1}; }
  static V mul(V a, V b) { return {a.e0 * b.e0, a.e1 * b.e1}; }
  static V fmadd(V a, V b, V c) {
    return {std::fma(a.e0, b.e0, c.e0), std::fma(a.e1, b.e1, c.e1)};
  }
  static V fmaddsub(V a, V b, V c) {
    return {std::fma(a.e0, b.e0, -c.e0), std::fma(a.e1, b.e1, c.e1)};
  }
  static V fmsubadd(V a, V b, V c) {
    return {std::fma(a.e0, b.e0, c.e0), std::fma(a.e1, b.e1, -c.e1)};
  }
  static V swap_pairs(V x) { return {x.e1, x.e0}; }
  static V dup_even(V x) { return {x.e0, x.e0}; }
  static V dup_odd(V x) { return {x.e1, x.e1}; }
};

}  // namespace

const TierImpl kScalarImpl{Impl<ScalarPack>::table(), true};

}  // namespace gecos::simd
