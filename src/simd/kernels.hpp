// Dispatch table of the wide range kernels (internal to the library).
//
// One Kernels struct of function pointers per tier, defined in the per-tier
// translation units (kernels_scalar.cpp / kernels_avx2.cpp /
// kernels_avx512.cpp — the latter two compiled with their ISA flags and
// registered as unavailable when the toolchain or target cannot build
// them). Hot-path callers snapshot active() once per operation and invoke
// the pointers on contiguous (pointer, length) ranges from inside their
// parallel_for chunk bodies; the dispatch itself is one relaxed atomic load.
//
// All kernels are tail-safe (any length, any alignment) and produce
// bitwise-identical results across tiers — see src/simd/simd.hpp for the
// lane-accumulator and FMA-formula contract that guarantees it.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

#include "simd/simd.hpp"

namespace gecos::simd {

/// The library-wide scalar type (same alias as linalg/blas1.hpp).
using cplx = std::complex<double>;

/// Sentinel in a hop-target table: no output for this rank (input not
/// selected by the kernel's mask).
inline constexpr std::uint32_t kHopSkip = 0xFFFFFFFFu;
/// Hop-target sign flag: the amplitude picks up a factor -1.
inline constexpr std::uint32_t kHopSignBit = 0x80000000u;
/// Hop-target rank mask (low 31 bits of a table entry).
inline constexpr std::uint32_t kHopRankMask = 0x7FFFFFFFu;

/// Function-pointer table of one dispatch tier. All lengths are in complex
/// elements; distinct pointer arguments must not alias.
struct Kernels {
  /// Fills lanes[0..7] with the partial sums of |v_i|^2 doubles, lane j
  /// holding the doubles at flat positions == j mod 8 (see simd.hpp).
  /// Combine with combine8().
  void (*norm2_lanes)(const cplx* v, std::size_t n, double* lanes) = nullptr;
  /// Fills lanes[0..7] with partial sums of conj(a_i) * b_i: lanes 2j /
  /// 2j+1 hold the real / imaginary sums of the complex accumulator lane j
  /// (products at positions == j mod 4). Combine with combine_dot().
  void (*dot_lanes)(const cplx* a, const cplx* b, std::size_t n,
                    double* lanes) = nullptr;
  /// v_i *= s.
  void (*scale)(cplx* v, std::size_t n, cplx s) = nullptr;
  /// y_i += s * x_i.
  void (*axpy)(cplx* y, const cplx* x, std::size_t n, cplx s) = nullptr;
  /// y_i = a * x_i + b * y_i (the fused Chebyshev update).
  void (*axpby)(cplx* y, const cplx* x, std::size_t n, cplx a,
                cplx b) = nullptr;
  /// y_i += s * d_i * x_i (SectorOperator fused-diagonal pass).
  void (*diag_mul_add)(cplx* y, const cplx* d, const cplx* x, std::size_t n,
                       cplx s) = nullptr;
  /// x_i *= p_i (fused Trotter diagonal: precomputed phase table sweep).
  void (*phase_mul)(cplx* x, const cplx* p, std::size_t n) = nullptr;
  /// Two-stream pair rotation (c real): a_i' = c a_i + v b_i and
  /// b_i' = u a_i + c b_i — the exact TermExp 2x2 exponential block.
  void (*pair_rot)(cplx* a, cplx* b, std::size_t n, double c, cplx u,
                   cplx v) = nullptr;
  /// Sector hop through a precomputed target table: for each i with
  /// tgt_i != kHopSkip, y[tgt_i & kHopRankMask] += (+-base) * x_i, the sign
  /// taken from kHopSignBit. The targets must be a permutation of their
  /// subset (race-freedom is the caller's output-partitioning obligation).
  void (*hop_scatter)(cplx* y, const cplx* x, const std::uint32_t* tgt,
                      std::size_t n, cplx base) = nullptr;
};

/// One tier's table plus whether this binary compiled it (a tier can be
/// present-but-unavailable on non-x86 builds or pre-AVX toolchains).
struct TierImpl {
  /// The tier's kernel table (all-null when not compiled).
  Kernels kernels;
  /// True when the translation unit actually built the wide code.
  bool compiled = false;
};

/// Per-tier tables, defined in the tier translation units. Constant-
/// initialized (function addresses only), so reading .compiled never
/// executes tier code on an unsupporting host.
extern const TierImpl kScalarImpl;
/// AVX2 + FMA3 tier table (see kScalarImpl).
extern const TierImpl kAvx2Impl;
/// AVX-512 F/DQ/VL/BW tier table (see kScalarImpl).
extern const TierImpl kAvx512Impl;

/// Table of a specific tier (compiled or not — check .compiled).
const TierImpl& impl_for(SimdTier t);

/// Kernel table of the currently active tier (one atomic load).
const Kernels& active();

/// Combines the 8 reduction lanes of norm2_lanes with the shared fixed
/// tree — every caller must use this (and only this) combine so results
/// stay bitwise-identical across tiers.
inline double combine8(const double* lanes) {
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

/// Combines the 4 complex accumulator lanes of dot_lanes (same contract as
/// combine8).
inline cplx combine_dot(const double* lanes) {
  return cplx((lanes[0] + lanes[2]) + (lanes[4] + lanes[6]),
              (lanes[1] + lanes[3]) + (lanes[5] + lanes[7]));
}

}  // namespace gecos::simd
