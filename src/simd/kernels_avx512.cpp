// AVX-512 dispatch tier: four complex<double> per 512-bit register.
// Compiled with -mavx512f -mavx512dq -mavx512vl -mavx512bw -mfma (set
// per-file in CMakeLists.txt); on targets or toolchains without those
// flags the tier degrades to an empty table marked not-compiled, and
// runtime dispatch never selects it.
#include "simd/kernels_generic.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__) && \
    defined(__AVX512BW__)

#include <immintrin.h>

namespace gecos::simd {

namespace {

// 512-bit pack of four interleaved complex<double>. One 8-double register
// holds the entire reduction lane block, so norm/dot run on a single
// accumulator.
struct Avx512Pack {
  using V = __m512d;
  static constexpr std::size_t width = 4;
  static V zero() { return _mm512_setzero_pd(); }
  static V load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, V x) { _mm512_storeu_pd(p, x); }
  static V broadcast(double x) { return _mm512_set1_pd(x); }
  static V add(V a, V b) { return _mm512_add_pd(a, b); }
  static V mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V fmadd(V a, V b, V c) { return _mm512_fmadd_pd(a, b, c); }
  static V fmaddsub(V a, V b, V c) { return _mm512_fmaddsub_pd(a, b, c); }
  static V fmsubadd(V a, V b, V c) { return _mm512_fmsubadd_pd(a, b, c); }
  static V swap_pairs(V x) { return _mm512_permute_pd(x, 0x55); }
  static V dup_even(V x) { return _mm512_movedup_pd(x); }
  static V dup_odd(V x) { return _mm512_permute_pd(x, 0xFF); }
};

}  // namespace

const TierImpl kAvx512Impl{Impl<Avx512Pack>::table(), true};

}  // namespace gecos::simd

#else  // !(full AVX-512 feature set)

namespace gecos::simd {

const TierImpl kAvx512Impl{Kernels{}, false};

}  // namespace gecos::simd

#endif
