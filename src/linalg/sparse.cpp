#include "linalg/sparse.hpp"
#include "linalg/blas1.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace gecos {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> entries)
    : rows_(rows), cols_(cols) {
  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  rowptr_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    cplx sum = 0;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    if (sum != cplx(0.0)) {
      assert(entries[i].row < rows_ && entries[i].col < cols_);
      cols_idx_.push_back(entries[i].col);
      vals_.push_back(sum);
      ++rowptr_[entries[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) rowptr_[r + 1] += rowptr_[r];
}

CsrMatrix CsrMatrix::from_dense(const Matrix& m, double tol) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (std::abs(m(i, j)) > tol) t.push_back({i, j, m(i, j)});
  return CsrMatrix(m.rows(), m.cols(), std::move(t));
}

std::vector<cplx> CsrMatrix::apply(std::span<const cplx> v) const {
  std::vector<cplx> y(rows_, cplx(0.0));
  apply_add(v, y, 1.0);
  return y;
}

std::size_t CsrMatrix::n_qubits() const {
  if (rows_ == 0 || (rows_ & (rows_ - 1)) != 0)
    throw std::invalid_argument(
        "CsrMatrix::n_qubits: rows is not a power of two");
  return static_cast<std::size_t>(std::countr_zero(rows_));
}

void CsrMatrix::apply_add(std::span<const cplx> x, std::span<cplx> y,
                          cplx s) const {
  assert(x.size() == cols_ && y.size() == rows_);
  assert(x.data() != y.data() && "CsrMatrix::apply_add: x, y must not alias");
  if (telemetry::metrics_enabled()) {
    telemetry::count(telemetry::Counter::kernel_sweeps);
    telemetry::count(telemetry::Counter::amplitudes_touched, rows_);
    // 32 B per output (y rmw) + 32 B per stored entry (value + x gather).
    telemetry::count(telemetry::Counter::bytes_moved,
                     32 * rows_ + 32 * nnz());
  }
  // Rows partition the output, so row blocks are race-free.
  parallel_for(rows_, [&](std::size_t r0, std::size_t r1, int) {
    for (std::size_t r = r0; r < r1; ++r) {
      cplx acc = 0;
      for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
        acc += vals_[k] * x[cols_idx_[k]];
      y[r] += s * acc;
    }
  });
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      m(r, cols_idx_[k]) += vals_[k];
  return m;
}

CsrMatrix CsrMatrix::dagger() const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      t.push_back({cols_idx_[k], r, std::conj(vals_[k])});
  return CsrMatrix(cols_, rows_, std::move(t));
}

bool CsrMatrix::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  // Compare against the adjoint entry-by-entry via a map (nnz is small).
  std::map<std::pair<std::size_t, std::size_t>, cplx> entries;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = rowptr_[r]; k < rowptr_[r + 1]; ++k)
      entries[{r, cols_idx_[k]}] = vals_[k];
  for (const auto& [rc, v] : entries) {
    auto it = entries.find({rc.second, rc.first});
    const cplx other = it == entries.end() ? cplx(0.0) : it->second;
    if (std::abs(v - std::conj(other)) > tol) return false;
  }
  return true;
}

double CsrMatrix::norm_max() const {
  double s = 0;
  for (const auto& v : vals_) s = std::max(s, std::abs(v));
  return s;
}

int conjugate_gradient(const CsrMatrix& a, std::span<const cplx> b,
                       std::span<cplx> x, double tol, int max_iters) {
  assert(a.rows() == a.cols() && b.size() == a.rows() && x.size() == a.rows());
  const std::size_t n = b.size();
  std::vector<cplx> r(b.begin(), b.end());
  std::vector<cplx> ax = a.apply(x);
  for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];
  std::vector<cplx> p = r;
  double rs = std::norm(vec_dot(r, r).real()) >= 0 ? vec_dot(r, r).real() : 0;
  rs = vec_dot(r, r).real();
  const double b_norm = std::max(vec_norm(b), 1e-300);
  for (int it = 0; it < max_iters; ++it) {
    if (std::sqrt(rs) / b_norm < tol) return it;
    std::vector<cplx> ap = a.apply(p);
    const double denom = vec_dot(p, ap).real();
    if (denom <= 0) return -1;  // not positive definite along p
    const double alpha = rs / denom;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rs_new = vec_dot(r, r).real();
    const double beta = rs_new / rs;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs = rs_new;
  }
  return std::sqrt(rs) / b_norm < tol ? max_iters : -1;
}

}  // namespace gecos
