// Dense complex matrices and vectors.
//
// Small, dependency-free linear algebra used as the *ground truth* layer of
// GECOS: every circuit the library emits is verified against dense matrix
// exponentials and matrix-vector products built here. Matrices are row-major
// with value-semantics (Rule of Zero); sizes stay small (<= 2^12) because the
// verification layer only ever touches few-qubit unitaries.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <random>
#include <span>
#include <vector>

namespace gecos {

/// The scalar type of the whole library: double-precision complex.
using cplx = std::complex<double>;

/// Dense row-major complex matrix with value semantics.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  /// Construct from a nested initializer list; rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<cplx>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);
  /// Explicit all-zero matrix (same as the sizing constructor).
  static Matrix zero(std::size_t rows, std::size_t cols);
  /// Haar-ish random unitary via Gram-Schmidt on a random Gaussian matrix.
  static Matrix random_unitary(std::size_t n, std::mt19937& rng);
  /// Random Hermitian with entries of magnitude O(1).
  static Matrix random_hermitian(std::size_t n, std::mt19937& rng);

  /// Shape accessors; empty() is true only for the default-constructed 0x0.
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access (row-major).
  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  /// Contiguous view of one row.
  std::span<cplx> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const cplx> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  /// Row-major view of the whole storage.
  std::span<const cplx> flat() const { return data_; }
  std::span<cplx> flat() { return data_; }

  /// Elementwise sum/difference and matrix/scalar products; shapes must
  /// match (matrix product: inner dimensions). operator* allocates the
  /// result and delegates to mul_into, O(n^3).
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(cplx s) const;
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(cplx s);

  /// *this += s * o without a temporary.
  Matrix& add_scaled(const Matrix& o, cplx s);

  /// out = a * b into an existing (or resized) buffer; no allocation when
  /// out already has the right shape. out must not alias a or b. This is the
  /// single product kernel (cache-blocked over k-panels); operator* wraps it.
  static void mul_into(Matrix& out, const Matrix& a, const Matrix& b);

  /// Conjugate transpose.
  Matrix dagger() const;
  Matrix transpose() const;
  Matrix conj() const;

  /// Kronecker product: (*this) (x) o.
  Matrix kron(const Matrix& o) const;

  /// Matrix-vector product (*this) v; v.size() must equal cols(). O(n^2).
  std::vector<cplx> apply(std::span<const cplx> v) const;

  /// Frobenius norm.
  double norm_fro() const;
  /// Max absolute entry.
  double norm_max() const;
  /// Spectral norm upper bound estimate via a few power iterations on A†A.
  double norm2_est(int iters = 30) const;

  /// Max |a_ij - o_ij| (shapes must match).
  double max_abs_diff(const Matrix& o) const;
  /// Entrywise ||A - A^dagger||_max <= tol.
  bool is_hermitian(double tol = 1e-12) const;
  /// ||A A^dagger - I||_max <= tol (O(n^3)).
  bool is_unitary(double tol = 1e-10) const;
  /// Sum of the diagonal.
  cplx trace() const;

  /// Extracts the top-left block of the given shape.
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Scalar-from-the-left product s * m.
Matrix operator*(cplx s, const Matrix& m);

/// Kronecker product of a list, left-to-right: ops[0] (x) ops[1] (x) ...
Matrix kron_all(std::span<const Matrix> ops);

// The vec_norm/vec_dot/vec_axpy family of statevector kernels lives in
// linalg/blas1.hpp (one shared parallel implementation).

}  // namespace gecos
