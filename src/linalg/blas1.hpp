// Shared BLAS-1 vector kernels for statevector-sized amplitude buffers.
//
// One parallel implementation of the norm/dot/axpy/scale/copy family, used
// by every layer that iterates over amplitudes: StateVector, the Trotter
// engine, the Krylov solvers in src/solver/, and the CG reference solver.
// Reductions keep one partial per parallel_for chunk in a fixed-size stack
// array (chunk ids are bounded by kMaxParallelChunks) and combine them in
// chunk order, so every kernel here is allocation-free and deterministic for
// a fixed thread count. Before this header the same loops were re-derived in
// matrix.cpp and at solver call sites; new amplitude loops belong here.
#pragma once

#include <complex>
#include <random>
#include <span>
#include <vector>

namespace gecos {

/// The scalar type of the whole library (same alias as linalg/matrix.hpp).
using cplx = std::complex<double>;

/// Euclidean norm ||v||_2. Doubles as the numerical-health sweep of the
/// solver stack: throws Error{numerical_nan} when any amplitude is
/// NaN/Inf (detected for free off the reduction sum).
double vec_norm(std::span<const cplx> v);
/// Inner product <a|b>, conjugate-linear in a (sizes must match). Same
/// free NaN/Inf detection as vec_norm: throws Error{numerical_nan}.
cplx vec_dot(std::span<const cplx> a, std::span<const cplx> b);
/// Max |a_i - b_i| (sizes must match).
double vec_max_abs_diff(std::span<const cplx> a, std::span<const cplx> b);
/// v *= s in place.
void vec_scale(std::span<cplx> v, cplx s);
/// y += s * x (sizes must match).
void vec_axpy(std::span<cplx> y, cplx s, std::span<const cplx> x);
/// y = a * x + b * y in one pass (sizes must match) — the fused update of
/// the Chebyshev three-term recurrence t_{k+1} = 2 H t_k - t_{k-1} used by
/// the kernel-polynomial layer (src/spectral/kpm.hpp): the shift-and-negate
/// of the previous vector and the scaled current vector land in a single
/// sweep instead of a scale followed by an axpy.
void vec_axpby(std::span<cplx> y, cplx a, std::span<const cplx> x, cplx b);
/// dst = src elementwise (sizes must match, buffers must not overlap).
void vec_copy(std::span<cplx> dst, std::span<const cplx> src);
/// v = s elementwise.
void vec_fill(std::span<cplx> v, cplx s);
/// Normalized Gaussian-random statevector of the given dimension.
std::vector<cplx> random_state(std::size_t dim, std::mt19937& rng);
/// Max |a_i - e^{i phi} b_i| minimized over a global phase phi.
double vec_diff_up_to_phase(std::span<const cplx> a, std::span<const cplx> b);

}  // namespace gecos
