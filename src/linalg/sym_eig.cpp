#include "linalg/sym_eig.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <string>

#include "util/error.hpp"

namespace gecos {

namespace {

/// Sorts ws.d ascending and permutes the columns of ws.z to match, using
/// ws.tmp as scratch (insertion sort: m is small and the Ritz values of a
/// converging Krylov run arrive nearly sorted).
void sort_pairs(std::size_t m, SymEigWorkspace& ws) {
  for (std::size_t i = 1; i < m; ++i) {
    const double di = ws.d[i];
    for (std::size_t r = 0; r < m; ++r) ws.tmp[r] = ws.z[r * m + i];
    std::size_t j = i;
    while (j > 0 && ws.d[j - 1] > di) {
      ws.d[j] = ws.d[j - 1];
      for (std::size_t r = 0; r < m; ++r) ws.z[r * m + j] = ws.z[r * m + j - 1];
      --j;
    }
    ws.d[j] = di;
    for (std::size_t r = 0; r < m; ++r) ws.z[r * m + j] = ws.tmp[r];
  }
}

}  // namespace

void SymEigWorkspace::reserve(std::size_t m) {
  if (a.size() < m * m) a.resize(m * m);
  if (z.size() < m * m) z.resize(m * m);
  if (d.size() < m) d.resize(m);
  if (e.size() < m) e.resize(m);
  if (tmp.size() < 2 * m) tmp.resize(2 * m);
}

void eigh_sym(std::span<const double> a, std::size_t m, SymEigWorkspace& ws) {
  assert(a.size() >= m * m);
  ws.reserve(m);
  std::copy(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(m * m),
            ws.a.begin());
  std::fill(ws.z.begin(), ws.z.begin() + static_cast<std::ptrdiff_t>(m * m),
            0.0);
  for (std::size_t i = 0; i < m; ++i) ws.z[i * m + i] = 1.0;
  double* w = ws.a.data();

  double frob = 0;
  for (std::size_t i = 0; i < m * m; ++i) frob += w[i] * w[i];
  frob = std::sqrt(frob);
  const double tol = 1e-15 * std::max(frob, 1e-300);

  const int max_sweeps = 64;
  bool converged = false;
  double off_residual = 0;
  for (int sweep = 0; sweep <= max_sweeps; ++sweep) {
    double off = 0;
    for (std::size_t p = 0; p < m; ++p)
      for (std::size_t q = p + 1; q < m; ++q) off += 2 * w[p * m + q] * w[p * m + q];
    off_residual = std::sqrt(off);
    if (off_residual <= tol) {
      converged = true;
      break;
    }
    if (sweep == max_sweeps) break;  // residual above was the final one
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) {
        const double apq = w[p * m + q];
        if (std::abs(apq) <= 1e-300) continue;
        // Classic Jacobi rotation annihilating the (p, q) entry.
        const double theta = (w[q * m + q] - w[p * m + p]) / (2 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t r = 0; r < m; ++r) {
          const double arp = w[r * m + p], arq = w[r * m + q];
          w[r * m + p] = c * arp - s * arq;
          w[r * m + q] = s * arp + c * arq;
        }
        for (std::size_t cidx = 0; cidx < m; ++cidx) {
          const double apr = w[p * m + cidx], aqr = w[q * m + cidx];
          w[p * m + cidx] = c * apr - s * aqr;
          w[q * m + cidx] = s * apr + c * aqr;
        }
        for (std::size_t r = 0; r < m; ++r) {
          const double zrp = ws.z[r * m + p], zrq = ws.z[r * m + q];
          ws.z[r * m + p] = c * zrp - s * zrq;
          ws.z[r * m + q] = s * zrp + c * zrq;
        }
      }
    }
  }
  if (!converged)
    throw Error(ErrorKind::not_converged,
                "eigh_sym: Jacobi off-diagonal residual " +
                    std::to_string(off_residual) + " > tol " +
                    std::to_string(tol) + " after " +
                    std::to_string(max_sweeps) + " sweeps (m = " +
                    std::to_string(m) + ")");
  for (std::size_t i = 0; i < m; ++i) ws.d[i] = w[i * m + i];
  sort_pairs(m, ws);
}

void eigh_tridiag(std::span<const double> alpha, std::span<const double> beta,
                  std::size_t m, SymEigWorkspace& ws) {
  assert(alpha.size() >= m && (m == 0 || beta.size() >= m - 1));
  ws.reserve(m);
  if (m == 0) return;
  std::copy(alpha.begin(), alpha.begin() + static_cast<std::ptrdiff_t>(m),
            ws.d.begin());
  if (m > 1)
    std::copy(beta.begin(), beta.begin() + static_cast<std::ptrdiff_t>(m - 1),
              ws.e.begin());
  ws.e[m - 1] = 0.0;
  std::fill(ws.z.begin(), ws.z.begin() + static_cast<std::ptrdiff_t>(m * m),
            0.0);
  for (std::size_t i = 0; i < m; ++i) ws.z[i * m + i] = 1.0;
  double* d = ws.d.data();
  double* e = ws.e.data();

  // Implicit-shift QL: for each leading index l, chase the off-diagonal to
  // zero with Givens rotations driven by a Wilkinson-style shift, then
  // deflate. The rotation product is accumulated into ws.z.
  for (std::size_t l = 0; l < m; ++l) {
    for (int iter = 0;; ++iter) {
      std::size_t split = l;
      while (split + 1 < m) {
        const double dd = std::abs(d[split]) + std::abs(d[split + 1]);
        if (std::abs(e[split]) <= 1e-16 * dd) break;
        ++split;
      }
      if (split == l) break;
      if (iter >= 50)
        throw Error(ErrorKind::not_converged,
                    "eigh_tridiag: QL off-diagonal residual " +
                        std::to_string(std::abs(e[l])) +
                        " after 50 shifts at eigenvalue index " +
                        std::to_string(l) + " (m = " + std::to_string(m) +
                        ")");
      // Shift from the 2x2 trailing block at l.
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[split] - d[l] + e[l] / (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
      double s = 1.0, c = 1.0, p = 0.0;
      bool underflow = false;  // rotation chain hit an exact zero: re-split
      for (std::size_t i = split; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[split] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        for (std::size_t k = 0; k < m; ++k) {
          f = ws.z[k * m + i + 1];
          ws.z[k * m + i + 1] = s * ws.z[k * m + i] + c * f;
          ws.z[k * m + i] = c * ws.z[k * m + i] - s * f;
        }
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[split] = 0.0;
    }
  }
  sort_pairs(m, ws);
}

void expm_tridiag_e1(std::span<const double> alpha,
                     std::span<const double> beta, std::size_t m, cplx z,
                     std::span<cplx> out, SymEigWorkspace& ws) {
  assert(out.size() >= m);
  eigh_tridiag(alpha, beta, m, ws);
  // out_k = sum_j Z_kj exp(z d_j) Z_0j; the weights exp(z d_j) Z_0j are
  // staged in ws.tmp (reserved at 2m doubles = m complex slots).
  for (std::size_t j = 0; j < m; ++j) {
    const cplx wj = std::exp(z * ws.d[j]) * ws.z[j];  // row 0, column j
    ws.tmp[2 * j] = wj.real();
    ws.tmp[2 * j + 1] = wj.imag();
  }
  for (std::size_t k = 0; k < m; ++k) {
    cplx s = 0;
    for (std::size_t j = 0; j < m; ++j)
      s += ws.z[k * m + j] * cplx(ws.tmp[2 * j], ws.tmp[2 * j + 1]);
    out[k] = s;
  }
}

}  // namespace gecos
