// Compressed-sparse-row complex matrices.
//
// Used for the finite-difference substrate (Section V-C): operator assembly,
// matrix-free verification of the SCB decompositions and the classical
// conjugate-gradient reference solver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "ops/linear_op.hpp"

namespace gecos {

/// One explicit entry of a sparse matrix in coordinate form.
struct Triplet {
  std::size_t row = 0;  ///< row index
  std::size_t col = 0;  ///< column index
  cplx value;           ///< entry value (duplicates are summed on build)
};

/// Immutable CSR matrix built from triplets (duplicates are summed). Also a
/// LinearOperator: square matrices plug into StateVector/Trotter workloads,
/// with dim() == rows() (rows need not be a power of two for the standalone
/// CSR uses; n_qubits() throws when rows() is not a power of two).
class CsrMatrix : public LinearOperator {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;
  /// Build from coordinate triplets; duplicates are summed. O(nnz log nnz).
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> entries);

  /// Sparsify a dense matrix, keeping entries with |value| > tol.
  static CsrMatrix from_dense(const Matrix& m, double tol = 0.0);

  /// Shape and stored-entry count.
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return vals_.size(); }

  /// log2(rows()); throws std::invalid_argument when rows() is not a power
  /// of two (non-statevector-shaped matrices are fine as plain CSR but not
  /// as LinearOperators on qubit registers).
  std::size_t n_qubits() const override;
  /// Statevector dimension = rows() (overrides the 2^n default).
  std::size_t dim() const override { return rows_; }

  /// Allocation-returning matrix-vector product A v; O(nnz). The
  /// two-argument span form comes from LinearOperator.
  using LinearOperator::apply;
  /// Matrix-vector product A v; O(nnz).
  std::vector<cplx> apply(std::span<const cplx> v) const;
  /// Two-argument accumulate shorthand from the base class.
  using LinearOperator::apply_add;
  /// y += s * (A x), parallel over row blocks; x and y must be distinct
  /// buffers (asserted).
  void apply_add(std::span<const cplx> x, std::span<cplx> y,
                 cplx s) const override;

  /// Dense copy (verification only).
  Matrix to_dense() const;
  /// Conjugate transpose as a new CSR matrix.
  CsrMatrix dagger() const;
  /// Entrywise ||A - A^dagger||_max <= tol.
  bool is_hermitian(double tol = 1e-12) const;
  /// Max absolute stored entry.
  double norm_max() const;

  /// Row slices for iteration.
  std::span<const std::size_t> row_ptr() const { return rowptr_; }
  std::span<const std::size_t> col_idx() const { return cols_idx_; }
  std::span<const cplx> values() const { return vals_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowptr_;
  std::vector<std::size_t> cols_idx_;
  std::vector<cplx> vals_;
};

/// Solves A x = b for Hermitian positive-definite A by conjugate gradients.
/// Returns the iteration count, or -1 if tolerance was not reached.
int conjugate_gradient(const CsrMatrix& a, std::span<const cplx> b,
                       std::span<cplx> x, double tol = 1e-10,
                       int max_iters = 10000);

}  // namespace gecos
