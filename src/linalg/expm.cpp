#include "linalg/expm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace gecos {

EigenSystem eigh(const Matrix& h, double tol, int max_sweeps) {
  assert(h.rows() == h.cols());
  const std::size_t n = h.rows();
  Matrix a = h;
  Matrix v = Matrix::identity(n);

  auto off_mass = [&]() {
    double s = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += std::norm(a(i, j));
    return std::sqrt(s);
  };

  const double scale = std::max(h.norm_max(), 1e-300);
  for (int sweep = 0; sweep < max_sweeps && off_mass() > tol * scale; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cplx apq = a(p, q);
        const double mag = std::abs(apq);
        if (mag < 1e-300) continue;
        // Complex Jacobi rotation zeroing a(p,q):
        //   J acts on the (p,q) plane, J = [[c, s*e^{i phi}], [-s*e^{-i phi}, c]].
        const cplx phase = apq / mag;
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        const double tau = (aqq - app) / (2.0 * mag);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        const cplx sp = s * phase;          // J(p,q)
        const cplx sm = -s * std::conj(phase);  // J(q,p)
        // A <- J^dagger A J. Update columns p,q then rows p,q.
        for (std::size_t k = 0; k < n; ++k) {
          const cplx akp = a(k, p), akq = a(k, q);
          a(k, p) = akp * c + akq * sm;
          a(k, q) = akp * sp + akq * c;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const cplx apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk + std::conj(sm) * aqk;
          a(q, k) = std::conj(sp) * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const cplx vkp = v(k, p), vkq = v(k, q);
          v(k, p) = vkp * c + vkq * sm;
          v(k, q) = vkp * sp + vkq * c;
        }
      }
    }
  }

  EigenSystem es;
  es.eigenvalues.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i).real();
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] < diag[y]; });
  es.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    es.eigenvalues[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      es.eigenvectors(i, j) = v(i, order[j]);
  }
  return es;
}

Matrix expm_hermitian(const Matrix& h, double t) {
  const EigenSystem es = eigh(h);
  const std::size_t n = h.rows();
  Matrix r(n, n);
  // r = V diag(e^{i t w}) V^dagger
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      cplx acc = 0;
      for (std::size_t k = 0; k < n; ++k) {
        const cplx ph = std::polar(1.0, t * es.eigenvalues[k]);
        acc += es.eigenvectors(i, k) * ph * std::conj(es.eigenvectors(j, k));
      }
      r(i, j) = acc;
    }
  return r;
}

Matrix expm(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  double nrm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < n; ++j) row += std::abs(a(i, j));
    nrm = std::max(nrm, row);
  }
  int k = 0;
  while (nrm > 0.5) {
    nrm /= 2;
    ++k;
  }
  Matrix s = a * cplx(std::ldexp(1.0, -k));
  Matrix result = Matrix::identity(n);
  Matrix power = Matrix::identity(n);
  // One scratch buffer serves every product: the Taylor loop ping-pongs
  // power <-> scratch and the squaring loop result <-> scratch, so the 18 + k
  // multiplies allocate exactly once instead of once per iteration.
  Matrix scratch(n, n);
  double fact = 1.0;
  for (int term = 1; term <= 18; ++term) {
    Matrix::mul_into(scratch, power, s);
    std::swap(power, scratch);
    fact *= term;
    result.add_scaled(power, cplx(1.0 / fact));
  }
  for (int i = 0; i < k; ++i) {
    Matrix::mul_into(scratch, result, result);
    std::swap(result, scratch);
  }
  return result;
}

Matrix sqrt_unitary_2x2(const Matrix& u) {
  assert(u.rows() == 2 && u.cols() == 2);
  const cplx det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
  const cplx tr = u(0, 0) + u(1, 1);
  cplx sd = std::sqrt(det);
  cplx denom = std::sqrt(tr + 2.0 * sd);
  if (std::abs(denom) < 1e-12) {
    sd = -sd;  // other branch of sqrt(det)
    denom = std::sqrt(tr + 2.0 * sd);
  }
  if (std::abs(denom) < 1e-12)
    throw std::runtime_error("sqrt_unitary_2x2: degenerate input");
  Matrix r = u;
  r(0, 0) += sd;
  r(1, 1) += sd;
  r *= cplx(1.0) / denom;
  return r;
}

}  // namespace gecos
