#include "linalg/matrix.hpp"
#include "linalg/blas1.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace gecos {

Matrix::Matrix(std::initializer_list<std::initializer_list<cplx>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("ragged matrix literal");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix Matrix::random_unitary(std::size_t n, std::mt19937& rng) {
  std::normal_distribution<double> g;
  Matrix a(n, n);
  for (auto& x : a.data_) x = cplx(g(rng), g(rng));
  // Gram-Schmidt on rows.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      cplx proj = 0;
      for (std::size_t k = 0; k < n; ++k) proj += std::conj(a(j, k)) * a(i, k);
      for (std::size_t k = 0; k < n; ++k) a(i, k) -= proj * a(j, k);
    }
    double nr = 0;
    for (std::size_t k = 0; k < n; ++k) nr += std::norm(a(i, k));
    nr = std::sqrt(nr);
    for (std::size_t k = 0; k < n; ++k) a(i, k) /= nr;
  }
  return a;
}

Matrix Matrix::random_hermitian(std::size_t n, std::mt19937& rng) {
  std::normal_distribution<double> g;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = g(rng);
    for (std::size_t j = i + 1; j < n; ++j) {
      cplx v(g(rng), g(rng));
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  return a;
}

Matrix Matrix::operator+(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  r += o;
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix r = *this;
  r -= o;
  return r;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(cplx s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator*(cplx s) const {
  Matrix r = *this;
  r *= s;
  return r;
}

Matrix operator*(cplx s, const Matrix& m) { return m * s; }

Matrix& Matrix::add_scaled(const Matrix& o, cplx s) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
  return *this;
}

void Matrix::mul_into(Matrix& out, const Matrix& a, const Matrix& b) {
  assert(a.cols_ == b.rows_);
  assert(&out != &a && &out != &b);
  if (out.rows_ != a.rows_ || out.cols_ != b.cols_) out = Matrix(a.rows_, b.cols_);
  std::fill(out.data_.begin(), out.data_.end(), cplx(0.0));
  // ikj keeps the inner loop contiguous in both out and b; the k-panel keeps
  // the active slice of b resident across all rows of a instead of streaming
  // the whole of b once per row (which thrashes LLC from n ~ 512 on). Within
  // each (i, j) the k contributions still accumulate in ascending order, so
  // results are bitwise identical to the unblocked ikj / naive ijk loops.
  constexpr std::size_t kPanel = 64;
  for (std::size_t kk = 0; kk < a.cols_; kk += kPanel) {
    const std::size_t kend = std::min(kk + kPanel, a.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      cplx* rrow = out.data_.data() + i * out.cols_;
      for (std::size_t k = kk; k < kend; ++k) {
        const cplx aik = a(i, k);
        if (aik == cplx(0.0)) continue;
        const cplx* brow = b.data_.data() + k * b.cols_;
        for (std::size_t j = 0; j < b.cols_; ++j) rrow[j] += aik * brow[j];
      }
    }
  }
}

Matrix Matrix::operator*(const Matrix& o) const {
  Matrix r;
  mul_into(r, *this, o);
  return r;
}

Matrix Matrix::dagger() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) r(j, i) = std::conj((*this)(i, j));
  return r;
}

Matrix Matrix::transpose() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) r(j, i) = (*this)(i, j);
  return r;
}

Matrix Matrix::conj() const {
  Matrix r = *this;
  for (auto& x : r.data_) x = std::conj(x);
  return r;
}

Matrix Matrix::kron(const Matrix& o) const {
  Matrix r(rows_ * o.rows_, cols_ * o.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) {
      const cplx a = (*this)(i, j);
      if (a == cplx(0.0)) continue;
      for (std::size_t k = 0; k < o.rows_; ++k)
        for (std::size_t l = 0; l < o.cols_; ++l)
          r(i * o.rows_ + k, j * o.cols_ + l) = a * o(k, l);
    }
  return r;
}

std::vector<cplx> Matrix::apply(std::span<const cplx> v) const {
  assert(v.size() == cols_);
  std::vector<cplx> r(rows_, cplx(0.0));
  for (std::size_t i = 0; i < rows_; ++i) {
    cplx acc = 0;
    const cplx* row = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    r[i] = acc;
  }
  return r;
}

double Matrix::norm_fro() const {
  double s = 0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

double Matrix::norm_max() const {
  double s = 0;
  for (const auto& x : data_) s = std::max(s, std::abs(x));
  return s;
}

double Matrix::norm2_est(int iters) const {
  if (empty()) return 0.0;
  std::mt19937 rng(12345);
  std::vector<cplx> v = random_state(cols_, rng);
  double lam = 0.0;
  for (int it = 0; it < iters; ++it) {
    // w = A v ; v = A† w ; lambda ~ ||A v||.
    std::vector<cplx> w = apply(v);
    lam = vec_norm(w);
    if (lam == 0.0) return 0.0;
    std::vector<cplx> u(cols_, cplx(0.0));
    for (std::size_t i = 0; i < rows_; ++i) {
      const cplx* row = data_.data() + i * cols_;
      for (std::size_t j = 0; j < cols_; ++j) u[j] += std::conj(row[j]) * w[i];
    }
    const double nu = vec_norm(u);
    if (nu == 0.0) break;
    for (auto& x : u) x /= nu;
    v = std::move(u);
  }
  return lam;
}

double Matrix::max_abs_diff(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  double s = 0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    s = std::max(s, std::abs(data_[i] - o.data_[i]));
  return s;
}

bool Matrix::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i; j < cols_; ++j)
      if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol) return false;
  return true;
}

bool Matrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const Matrix p = (*this) * dagger();
  return p.max_abs_diff(Matrix::identity(rows_)) <= tol;
}

cplx Matrix::trace() const {
  cplx t = 0;
  for (std::size_t i = 0; i < std::min(rows_, cols_); ++i) t += (*this)(i, i);
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  assert(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix r(nr, nc);
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nc; ++j) r(i, j) = (*this)(r0 + i, c0 + j);
  return r;
}

Matrix kron_all(std::span<const Matrix> ops) {
  if (ops.empty()) return Matrix::identity(1);
  Matrix r = ops[0];
  for (std::size_t i = 1; i < ops.size(); ++i) r = r.kron(ops[i]);
  return r;
}

}  // namespace gecos
