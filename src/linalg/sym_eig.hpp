// Small real-symmetric eigensolvers for projected Krylov problems.
//
// The Krylov layer (src/solver/) reduces every large Hermitian operator to a
// small real-symmetric matrix: strictly tridiagonal for a plain Lanczos run,
// arrowhead-plus-tridiagonal after a thick restart. This header provides the
// two matching eigensolvers — implicit-shift QL for the tridiagonal fast
// path and cyclic Jacobi for the general dense-symmetric case — plus the
// exp(z*T)e1 evaluation the Krylov propagator needs. All routines work out
// of a caller-owned SymEigWorkspace so solver iterations allocate nothing
// after warm-up (the workspace grows monotonically and is reused). Problem
// sizes are Krylov subspace dimensions (tens to a few hundred), so the
// O(m^3) dense algorithms here are never the bottleneck next to a 2^n
// matvec.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/blas1.hpp"

namespace gecos {

/// Reusable scratch for the small symmetric eigensolvers. All buffers grow
/// monotonically (reserve() or first use) and are never shrunk, so repeated
/// solves of bounded size are allocation-free.
struct SymEigWorkspace {
  /// Pre-sizes every buffer for problems up to m x m.
  void reserve(std::size_t m);

  std::vector<double> a;    ///< m*m working copy (destroyed by the solve)
  std::vector<double> z;    ///< m*m eigenvectors, row-major, column j = vec j
  std::vector<double> d;    ///< eigenvalues, ascending after a solve
  std::vector<double> e;    ///< off-diagonal scratch (QL)
  std::vector<double> tmp;  ///< permutation / coefficient scratch
};

/// Eigen-decomposition of a dense real-symmetric matrix (row-major `a`,
/// m x m; only the stored values are read, symmetry is assumed). Cyclic
/// Jacobi to machine precision. Results: ws.d (ascending) and ws.z (column
/// j of the row-major m x m block is the eigenvector of ws.d[j]).
/// Allocation-free when ws was reserved for >= m. Throws
/// Error{not_converged} (with the off-diagonal residual in the message)
/// when 64 sweeps fail to reach tolerance instead of returning silently
/// unconverged results.
void eigh_sym(std::span<const double> a, std::size_t m, SymEigWorkspace& ws);

/// Eigen-decomposition of a symmetric tridiagonal matrix with diagonal
/// `alpha` (size m) and off-diagonal `beta` (size m-1): implicit-shift QL
/// with eigenvector accumulation. Same output convention and workspace
/// behavior as eigh_sym; O(m^2) per eigenvalue instead of Jacobi sweeps.
/// Throws Error{not_converged} (with the stuck off-diagonal residual) when
/// 50 implicit shifts fail to deflate an eigenvalue.
void eigh_tridiag(std::span<const double> alpha, std::span<const double> beta,
                  std::size_t m, SymEigWorkspace& ws);

/// out = exp(z * T) e1 for the symmetric tridiagonal T given by alpha/beta
/// (sizes m and m-1), any complex z (z = -i*dt: unitary propagation;
/// z = -dt: imaginary-time projection). Computed through eigh_tridiag:
/// out_k = sum_j z_kj exp(z d_j) z_0j. out must have size m.
void expm_tridiag_e1(std::span<const double> alpha,
                     std::span<const double> beta, std::size_t m, cplx z,
                     std::span<cplx> out, SymEigWorkspace& ws);

}  // namespace gecos
