// Matrix exponentials and Hermitian eigen-decomposition.
//
// expm_hermitian uses a cyclic Jacobi eigensolver (exact for the Hermitian
// matrices every Hamiltonian in this library is); expm handles the general
// case with scaling-and-squaring over a truncated Taylor series, adequate for
// the small verification matrices we feed it.
#pragma once

#include "linalg/matrix.hpp"

namespace gecos {

/// Eigen-decomposition H = V diag(w) V† of a Hermitian matrix.
struct EigenSystem {
  std::vector<double> eigenvalues;  // ascending
  Matrix eigenvectors;              // columns are eigenvectors
};

/// Cyclic Jacobi diagonalization; tol on the off-diagonal Frobenius mass.
EigenSystem eigh(const Matrix& h, double tol = 1e-13, int max_sweeps = 60);

/// exp(i * t * H) for Hermitian H via eigendecomposition (exact).
Matrix expm_hermitian(const Matrix& h, double t);

/// exp(A) for a general square matrix (scaling and squaring + Taylor).
Matrix expm(const Matrix& a);

/// Principal square root of a 2x2 unitary (used by Barenco decompositions).
Matrix sqrt_unitary_2x2(const Matrix& u);

}  // namespace gecos
