#include "linalg/blas1.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "simd/kernels.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace gecos {

double vec_norm(std::span<const cplx> v) {
  // Parallel reduction: per-chunk stack partials (chunk ids are bounded by
  // kMaxParallelChunks) combined in chunk order, so the result is
  // deterministic for a fixed thread count and the call allocation-free.
  // Each chunk runs the dispatched wide kernel on its contiguous range and
  // collapses the 8 accumulator lanes with the shared combine tree, so the
  // value is also identical across dispatch tiers.
  const simd::Kernels& kn = simd::active();
  std::array<double, kMaxParallelChunks> partial{};
  parallel_for(v.size(), [&](std::size_t b, std::size_t e, int chunk) {
    double lanes[8];
    kn.norm2_lanes(v.data() + b, e - b, lanes);
    partial[static_cast<std::size_t>(chunk)] = simd::combine8(lanes);
  });
  double s = 0;
  for (double p : partial) s += p;
  // Health sweep for free: the reduction already touched every amplitude,
  // and any NaN/Inf among them poisons the sum. parallel_for bodies must
  // not throw, so the check lives on the combined scalar.
  if (!std::isfinite(s))
    throw Error(ErrorKind::numerical_nan,
                "vec_norm: non-finite amplitude in a vector of dim " +
                    std::to_string(v.size()));
  return std::sqrt(s);
}

cplx vec_dot(std::span<const cplx> a, std::span<const cplx> b) {
  assert(a.size() == b.size());
  const simd::Kernels& kn = simd::active();
  std::array<cplx, kMaxParallelChunks> partial{};
  parallel_for(a.size(), [&](std::size_t b0, std::size_t e, int chunk) {
    double lanes[8];
    kn.dot_lanes(a.data() + b0, b.data() + b0, e - b0, lanes);
    partial[static_cast<std::size_t>(chunk)] = simd::combine_dot(lanes);
  });
  cplx s = 0;
  for (const cplx& p : partial) s += p;
  // Same free NaN/Inf sweep as vec_norm (a finite-but-huge dot of finite
  // vectors cannot overflow to Inf without a non-finite input at these
  // normalized magnitudes; cancellation cannot manufacture a NaN).
  if (!std::isfinite(s.real()) || !std::isfinite(s.imag()))
    throw Error(ErrorKind::numerical_nan,
                "vec_dot: non-finite amplitude in a vector of dim " +
                    std::to_string(a.size()));
  return s;
}

double vec_max_abs_diff(std::span<const cplx> a, std::span<const cplx> b) {
  assert(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s = std::max(s, std::abs(a[i] - b[i]));
  return s;
}

void vec_scale(std::span<cplx> v, cplx s) {
  const simd::Kernels& kn = simd::active();
  parallel_for(v.size(), [&](std::size_t b, std::size_t e, int) {
    kn.scale(v.data() + b, e - b, s);
  });
}

void vec_axpy(std::span<cplx> y, cplx s, std::span<const cplx> x) {
  assert(y.size() == x.size());
  const simd::Kernels& kn = simd::active();
  parallel_for(y.size(), [&](std::size_t b, std::size_t e, int) {
    kn.axpy(y.data() + b, x.data() + b, e - b, s);
  });
}

void vec_axpby(std::span<cplx> y, cplx a, std::span<const cplx> x, cplx b) {
  assert(y.size() == x.size());
  const simd::Kernels& kn = simd::active();
  parallel_for(y.size(), [&](std::size_t b0, std::size_t e, int) {
    kn.axpby(y.data() + b0, x.data() + b0, e - b0, a, b);
  });
}

void vec_copy(std::span<cplx> dst, std::span<const cplx> src) {
  assert(dst.size() == src.size());
  parallel_for(dst.size(), [&](std::size_t b, std::size_t e, int) {
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(b),
              src.begin() + static_cast<std::ptrdiff_t>(e),
              dst.begin() + static_cast<std::ptrdiff_t>(b));
  });
}

void vec_fill(std::span<cplx> v, cplx s) {
  parallel_for(v.size(), [&](std::size_t b, std::size_t e, int) {
    std::fill(v.begin() + static_cast<std::ptrdiff_t>(b),
              v.begin() + static_cast<std::ptrdiff_t>(e), s);
  });
}

std::vector<cplx> random_state(std::size_t dim, std::mt19937& rng) {
  std::normal_distribution<double> g;
  std::vector<cplx> v(dim);
  for (auto& x : v) x = cplx(g(rng), g(rng));
  const double n = vec_norm(v);
  for (auto& x : v) x /= n;
  return v;
}

double vec_diff_up_to_phase(std::span<const cplx> a, std::span<const cplx> b) {
  // Optimal global phase aligns <a|b> to the positive real axis.
  const cplx d = vec_dot(a, b);
  const cplx phase = std::abs(d) > 1e-300 ? d / std::abs(d) : cplx(1.0);
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s = std::max(s, std::abs(a[i] * phase - b[i]));
  return s;
}

}  // namespace gecos
