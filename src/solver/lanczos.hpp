// Thick-restart Lanczos: k lowest eigenpairs of a Hermitian LinearOperator.
//
// The dense Jacobi eigh caps every spectral question at ~10 qubits; this
// solver needs only the matrix-free apply_add hot path, so ground-state
// energies and gaps of the n = 20+ Hubbard lattices come from the same
// kernels the evolution engine runs on. It is the standard iterative
// projection scheme: build an orthonormal Krylov basis V_m with the
// Hermitian three-term recurrence, diagonalize the small projected matrix,
// lock the best Ritz pairs and restart the basis from them (thick restart,
// Wu-Simon style) so memory stays at max_subspace vectors no matter how
// many iterations convergence takes. Reorthogonalization policy, residual
// convergence criteria and the restart rule are documented in DESIGN.md
// "Krylov solver layer". After construction (which preallocates the basis,
// the projected matrix and the small-eigensolver workspace), solve() runs
// allocation-free — probe-verified in tests/test_lanczos.cpp.
//
// Long solves are resumable: with LanczosOptions::checkpoint_path and
// checkpoint_interval set, the solver writes its complete mid-flight state
// (live basis prefix, projected matrix, omega recurrence, RNG and counters)
// through src/io/checkpoint.hpp every `interval` matvecs, at the top of the
// iteration loop where that state is self-contained. resume() reloads a
// checkpoint (`.bak` fallback included) and continues the identical
// trajectory: for a fixed thread count the resumed run is bit-for-bit the
// uninterrupted one. Checkpoint writes allocate (serialization buffers);
// the zero-allocation guarantee holds whenever checkpointing is off, which
// is the default. See DESIGN.md "Checkpoint format & failure model".
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "linalg/sym_eig.hpp"
#include "ops/linear_op.hpp"
#include "state/krylov_basis.hpp"
#include "telemetry/progress.hpp"

namespace gecos {

/// Reorthogonalization policy of a Lanczos run (see DESIGN.md).
enum class LanczosReorth {
  kFull,       ///< every iteration orthogonalizes against the whole basis
  kSelective,  ///< omega-recurrence estimate triggers full passes on demand
  kNone,       ///< bare three-term recurrence (ghost eigenvalues; testing)
};

/// Tuning knobs for the Lanczos eigensolver.
struct LanczosOptions {
  std::size_t k = 1;               ///< number of lowest eigenpairs wanted
  std::size_t max_subspace = 48;   ///< basis cap m before a thick restart
  std::size_t max_matvecs = 20000; ///< hard budget on operator applications
  double tol = 1e-10;              ///< residual bound ||H y - theta y||
  LanczosReorth reorth = LanczosReorth::kFull;  ///< see DESIGN.md
  bool compute_vectors = true;     ///< recover Ritz vectors after convergence
  std::uint64_t seed = 20260730;   ///< start-vector seed when none is given
  /// Checkpoint file path; empty (the default) disables checkpointing and
  /// preserves the zero-allocation solve guarantee.
  std::string checkpoint_path;
  /// Matvecs between checkpoint writes; 0 (the default) disables them.
  std::size_t checkpoint_interval = 0;
  /// Optional ProgressSink (phase "lanczos"): called on the solver thread
  /// once per progress_interval iterations with the current worst residual,
  /// matvec count and a decay-extrapolated ETA. Empty disables reporting.
  telemetry::ProgressFn progress;
  /// Iterations between progress callbacks (0 behaves as 1).
  std::size_t progress_interval = 1;
};

/// One thick-restart boundary of a solve, as recorded in
/// LanczosResult::restart_history.
struct LanczosRestartInfo {
  std::size_t iteration = 0;  ///< Lanczos steps completed at the restart
  std::size_t matvecs = 0;    ///< operator applications at the restart
  double lowest_ritz = 0.0;   ///< best Ritz value carried into the restart
  double norm_drift = 0.0;    ///< health monitor at this boundary
  double ortho_loss = 0.0;    ///< health monitor at this boundary
};

/// Outcome of a Lanczos solve. Buffers are preallocated at construction and
/// reused across solves.
struct LanczosResult {
  std::vector<double> eigenvalues;  ///< k lowest Ritz values, ascending
  std::vector<double> residuals;    ///< ||H y_i - theta_i y_i|| per pair
  std::size_t iterations = 0;       ///< Lanczos steps (= basis extensions)
  std::size_t matvecs = 0;          ///< operator applications
  std::size_t restarts = 0;         ///< thick restarts performed
  bool converged = false;           ///< all k residuals <= tol
  std::size_t checkpoints_written = 0;  ///< checkpoint files produced
  /// Matvecs inherited from the checkpoint by resume() — work a fresh run
  /// would have had to redo. 0 on a non-resumed solve.
  std::size_t resumed_matvecs = 0;
  bool resumed = false;  ///< true when this result came out of resume()
  /// Numerical-health monitors sampled at every restart boundary (and at
  /// the resume boundary): worst | ||v_i|| - 1 | over the kept Ritz
  /// vectors, and worst |<v_i, v_res>| against the new residual vector.
  double max_norm_drift = 0.0;
  double max_ortho_loss = 0.0;  ///< see max_norm_drift
  /// Worst residual over the (available) requested Ritz pairs after each
  /// iteration — the convergence trajectory. Capacity is reserved at
  /// construction (max_matvecs + 1 entries), so recording never allocates
  /// during a solve; a resumed run records only its own iterations.
  std::vector<double> residual_history;
  /// One entry per thick restart (see LanczosRestartInfo); reserved at
  /// construction like residual_history.
  std::vector<LanczosRestartInfo> restart_history;
};

/// Thick-restart Lanczos eigensolver for the k lowest eigenpairs.
class Lanczos {
 public:
  /// Captures the operator by reference (it must outlive the solver) and
  /// preallocates every buffer a solve touches. Throws
  /// std::invalid_argument when k = 0, when the subspace cannot hold
  /// k + 2 vectors, or when the operator dimension is < 2.
  explicit Lanczos(const LinearOperator& op, LanczosOptions opts = {});

  /// Runs from a seeded random start vector. The result reference stays
  /// valid until the next solve on this object.
  const LanczosResult& solve();
  /// Runs from the given start vector (need not be normalized; must have
  /// operator dimension). A zero start vector throws.
  const LanczosResult& solve(std::span<const cplx> v0);

  /// Continues a solve from the checkpoint at `path` (falling back to
  /// `path + ".bak"` when the primary is missing or corrupt). The
  /// checkpoint must have been written by a solver over the same operator
  /// geometry — dim, max_subspace, k and reorth policy are validated and a
  /// mismatch throws Error{dim_mismatch}; damaged files throw
  /// Error{io_corrupt} / Error{version_mismatch}. The continuation is
  /// bit-identical to the uninterrupted run for a fixed thread count.
  const LanczosResult& resume(const std::string& path);

  /// Result of the last solve (zeroed before the first).
  const LanczosResult& result() const { return result_; }

  /// Ritz vector i (i < k) of the last solve; valid when
  /// opts.compute_vectors was set. Normalized, stored in solver-owned
  /// memory that the next solve overwrites.
  std::span<const cplx> ritz_vector(std::size_t i) const;

 private:
  /// The iteration shared by both solve() overloads (slot 0 holds the
  /// unnormalized start vector on entry).
  const LanczosResult& run();
  /// The main loop plus final Ritz extraction, entered with the newest
  /// basis vector at slot j0 (0 for a fresh run, the checkpointed index
  /// for a resume).
  const LanczosResult& loop(std::size_t j0);
  /// Serializes the loop-top state (basis prefix 0..j, projected matrix,
  /// omega recurrence, RNG, counters) to opts_.checkpoint_path.
  void save_checkpoint(std::size_t j) const;
  /// One Lanczos extension from slot j: leaves the unnormalized residual in
  /// slot j+1 and returns its norm beta_j.
  double extend(std::size_t j) const;
  /// Diagonalizes the leading jj x jj block of the projected matrix.
  void project_eig(std::size_t jj) const;
  /// Contracts the jj-vector basis to the l lowest Ritz vectors plus the
  /// (already normalized) residual vector in slot jj, whose coupling norm
  /// is b.
  void thick_restart(std::size_t jj, std::size_t l, double b) const;

  const LinearOperator& op_;
  LanczosOptions opts_;
  std::size_t dim_ = 0;
  std::size_t m_ = 0;  // effective subspace cap
  mutable std::size_t locked_ = 0;  // thick-restart prefix (0 until one)

  std::size_t keep_ = 0;    // Ritz pairs kept at a thick restart (>= k)

  mutable KrylovBasis basis_;  // m_ + 1 slots: v_0..v_m
  mutable KrylovBasis aux_;    // keep_ slots: restart staging / Ritz vectors
  mutable std::vector<double> tmat_;  // m_ x m_ projected matrix, row-major
  mutable std::vector<double> proj_;  // packed leading block for eigh_sym
  mutable std::vector<double> omega_, omega_prev_;  // selective-reorth bound
  mutable std::vector<cplx> coeffs_;  // recombination scratch
  mutable SymEigWorkspace ws_;
  mutable std::mt19937_64 rng_;
  // Member (not loop-local) so its cached spare Gaussian serializes with
  // the checkpoint and the resumed draw sequence stays exact.
  mutable std::normal_distribution<double> dist_;
  mutable std::size_t next_checkpoint_ = 0;  // matvec count of next write
  mutable std::uint64_t solve_start_ns_ = 0;  // progress elapsed/ETA anchor
  mutable double first_metric_ = 0.0;  // first finite residual (ETA decay)
  mutable LanczosResult result_;
};

}  // namespace gecos
