// Imaginary-time projection: ground states by exp(-tau H) power filtering.
//
// Propagating in imaginary time suppresses every excited component by
// exp(-tau (E_i - E_0)), so repeatedly applying exp(-dt H) and renormalizing
// projects any state with nonzero ground-state overlap onto the ground
// state. The exponential itself is evaluated through the Krylov engine
// (KrylovEvolver::apply_expm with real negative z), which makes each
// projection step spectrally exact up to the configured tolerance — the
// method's only error is the finite filtering time, which the
// energy-variance stopping rule bounds: var = <H^2> - <H>^2 vanishes
// exactly on eigenstates and |E - E_0| <= var / gap near the ground state.
// This is the designated cross-check for the Lanczos eigensolver: same
// matvec kernels, completely different projection principle. See DESIGN.md
// "Krylov solver layer".
// Long projections are resumable: with ImagTimeOptions::checkpoint_path
// and checkpoint_interval set, the current state and its accumulated
// imaginary time beta are written through src/io/checkpoint.hpp every
// `interval` steps, and opts.resume picks the run back up from the last
// good file (`.bak` fallback included) — the continuation filters from
// exactly the saved state, so the projected physics is that of the
// uninterrupted run. See DESIGN.md "Checkpoint format & failure model".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ops/linear_op.hpp"
#include "solver/krylov_evolve.hpp"
#include "state/state_vector.hpp"
#include "telemetry/progress.hpp"

namespace gecos {

/// Tuning knobs for the imaginary-time projector.
struct ImagTimeOptions {
  double dt = 0.5;                  ///< imaginary-time step tau per iteration
  std::size_t max_steps = 1000;     ///< iteration cap
  double variance_tol = 1e-10;      ///< stop when <H^2> - <H>^2 <= this
  std::size_t max_subspace = 24;    ///< Krylov cap for each exp(-dt H)
  double krylov_tol = 1e-12;        ///< per-step Krylov error budget
  /// Checkpoint file path; empty (the default) disables checkpointing.
  std::string checkpoint_path;
  /// Projection steps between checkpoint writes; 0 disables them.
  std::size_t checkpoint_interval = 0;
  /// When set, an existing checkpoint at checkpoint_path is loaded and the
  /// projection continues from it (fresh start when no file exists, so
  /// drivers need only one code path).
  bool resume = false;
  /// Optional ProgressSink (phase "imag_time"): called on the solver thread
  /// once per progress_interval steps with the current energy variance,
  /// matvec count and a decay-extrapolated ETA. Empty disables reporting.
  telemetry::ProgressFn progress;
  /// Steps between progress callbacks (0 behaves as 1).
  std::size_t progress_interval = 1;
};

/// Outcome of an imaginary-time projection.
struct ImagTimeResult {
  double energy = 0.0;        ///< final <H>
  double variance = 0.0;      ///< final <H^2> - <H>^2
  std::size_t steps = 0;      ///< projection steps taken (incl. resumed)
  std::size_t matvecs = 0;    ///< operator applications (steps + measurement)
  bool converged = false;     ///< variance_tol reached within max_steps
  double beta = 0.0;          ///< total imaginary time, including resumed
  bool resumed = false;       ///< true when a checkpoint was loaded
  std::size_t resumed_steps = 0;        ///< steps inherited from the file
  std::size_t checkpoints_written = 0;  ///< checkpoint files produced
  /// <H> after every measurement (one per projection step plus the final
  /// one) — the filtering trajectory. Reserved up front (max_steps + 1
  /// entries, capacity-guarded), recorded for this run's steps only.
  std::vector<double> energy_history;
  /// <H^2> - <H>^2 alongside energy_history.
  std::vector<double> variance_history;
};

/// Projects psi onto the ground state of h (Hermitian; kLanczos Krylov mode
/// is used internally) by renormalized exp(-dt H) steps, stopping on the
/// energy variance. psi is the start state on entry (must have nonzero
/// ground-state overlap — a random state almost surely does) and the
/// projected state on exit, normalized. psi.size() must equal h.dim() —
/// which need not be 2^n: sector vectors over a SectorOperator
/// (src/symmetry/) project with the same call. Throws std::invalid_argument
/// on a dimension mismatch or non-positive dt; a state that collapses to
/// zero norm mid-run throws Error{breakdown}, and checkpoint problems
/// surface as Error{io_corrupt} / Error{version_mismatch} /
/// Error{dim_mismatch}.
ImagTimeResult imag_time_ground_state(const LinearOperator& h,
                                      std::span<cplx> psi,
                                      const ImagTimeOptions& opts = {});

/// StateVector overload of the span entry point above.
ImagTimeResult imag_time_ground_state(const LinearOperator& h,
                                      StateVector& psi,
                                      const ImagTimeOptions& opts = {});

}  // namespace gecos
