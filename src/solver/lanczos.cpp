#include "solver/lanczos.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/checkpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace gecos {

namespace {

/// Orthogonality-loss threshold of the selective policy: a full pass fires
/// when the omega estimate crosses sqrt(machine epsilon).
const double kOmegaLimit = std::sqrt(std::numeric_limits<double>::epsilon());
/// Baseline orthogonality level right after an explicit orthogonalization.
const double kEps = std::numeric_limits<double>::epsilon();
/// Health-monitor bound on norm drift / orthogonality loss at restart and
/// resume boundaries: explicit (re)orthogonalization keeps both near 1e-13,
/// so crossing 1e-6 means the basis invariants are gone, not merely noisy.
const double kHealthLimit = 1e-6;

}  // namespace

Lanczos::Lanczos(const LinearOperator& op, LanczosOptions opts)
    : op_(op),
      opts_(opts),
      dim_(op.dim()),
      m_(std::min(opts.max_subspace, dim_)),
      keep_(std::min(opts.k + 8, m_ >= 2 ? m_ - 2 : std::size_t{0})),
      basis_(dim_ < 2 ? 2 : dim_, (m_ < 2 ? 2 : m_) + 1),
      aux_(dim_ < 2 ? 2 : dim_, keep_ == 0 ? 1 : keep_),
      rng_(opts.seed) {
  if (opts.k == 0) throw std::invalid_argument("Lanczos: k must be >= 1");
  if (dim_ < 2) throw std::invalid_argument("Lanczos: operator dim < 2");
  if (opts.k + 2 > m_)
    throw std::invalid_argument(
        "Lanczos: max_subspace must be >= k + 2 (and <= operator dim)");
  tmat_.assign(m_ * m_, 0.0);
  proj_.assign(m_ * m_, 0.0);
  omega_.assign(m_ + 1, kEps);
  omega_prev_.assign(m_ + 1, kEps);
  coeffs_.assign(m_ + 1, cplx(0.0));
  ws_.reserve(m_);
  result_.eigenvalues.assign(opts_.k, 0.0);
  result_.residuals.assign(opts_.k, 0.0);
  // Histories are capacity-bounded here so recording during a solve is a
  // plain push_back within reserve — the zero-allocation guarantee holds.
  // One iteration per matvec bounds residual_history; every restart costs
  // at least two extensions (keep_ <= m_ - 2), bounding restart_history.
  result_.residual_history.reserve(opts_.max_matvecs + 1);
  result_.restart_history.reserve(opts_.max_matvecs / 2 + 2);
}

std::span<const cplx> Lanczos::ritz_vector(std::size_t i) const {
  assert(i < opts_.k && opts_.compute_vectors);
  return aux_.vec(i);
}

double Lanczos::extend(std::size_t j) const {
  std::span<cplx> w = basis_.vec(j + 1);
  op_.apply(basis_.vec(j), w);
  ++result_.matvecs;

  // Local recurrence: remove the known couplings of column j of the
  // projected matrix — the single sub-diagonal beta for a plain Lanczos
  // step, the whole border row when v_j is the residual vector of a thick
  // restart (j == locked_).
  if (j == locked_ && locked_ > 0) {
    for (std::size_t i = 0; i < locked_; ++i)
      vec_axpy(w, cplx(-tmat_[i * m_ + j]), basis_.vec(i));
  } else if (j > 0) {
    vec_axpy(w, cplx(-tmat_[(j - 1) * m_ + j]), basis_.vec(j - 1));
  }
  const double a = vec_dot(basis_.vec(j), w).real();
  tmat_[j * m_ + j] = a;
  vec_axpy(w, cplx(-a), basis_.vec(j));

  switch (opts_.reorth) {
    case LanczosReorth::kFull:
      // The local recurrence was the first Gram-Schmidt pass; one classical
      // pass over the whole prefix restores machine-level orthogonality
      // ("twice is enough").
      basis_.project_out(w, j + 1, 1);
      break;
    case LanczosReorth::kSelective: {
      // Parlett-Simon omega recurrence over the tridiagonal tail estimates
      // |<v_{j+1}, v_i>| growth from the three-term recurrence alone; a
      // full pass fires only when the estimate crosses sqrt(eps). The
      // locked thick-restart prefix is always projected out (it is k+8
      // vectors at most — cheap next to a matvec). Conventions: omega_
      // holds the current generation omega_{j,.} with the implicit
      // diagonal omega_{j,j} = 1, omega_prev_ the previous one; the new
      // generation is computed strictly from OLD values (old_im1 carries
      // the pre-overwrite omega_{j,i-1}).
      if (locked_ > 0) basis_.project_out(w, locked_, 1);
      const double bj = std::max(vec_norm(w), 1e-300);
      const double bjm1 = j > locked_ ? tmat_[(j - 1) * m_ + j] : 0.0;
      double worst = 0.0;
      double old_im1 = 0.0;  // omega_{j,locked_-1}: outside the tail, ~0
      for (std::size_t i = locked_; i + 1 <= j; ++i) {
        const double ai = tmat_[i * m_ + i];
        const double bi = i + 1 < m_ ? tmat_[i * m_ + i + 1] : 0.0;
        const double bim1 = i > locked_ ? tmat_[(i - 1) * m_ + i] : 0.0;
        const double old_i = omega_[i];
        const double old_ip1 = i + 2 <= j ? omega_[i + 1] : 1.0;  // om_{j,j}
        double next = bi * old_ip1 + (ai - a) * old_i + bim1 * old_im1 -
                      bjm1 * omega_prev_[i];
        next = std::abs(next) / bj + kEps;
        omega_prev_[i] = old_i;
        omega_[i] = next;
        old_im1 = old_i;
        worst = std::max(worst, next);
      }
      omega_prev_[j] = 1.0;   // omega_{j,j}
      omega_[j] = kEps;       // omega_{j+1,j}: freshly orthogonal pair
      if (worst > kOmegaLimit) {
        basis_.project_out(w, j + 1, 1);
        for (std::size_t i = 0; i <= j; ++i)
          omega_[i] = omega_prev_[i] = kEps;
        return vec_norm(w);
      }
      return bj;  // w untouched since the norm above: reuse it
    }
    case LanczosReorth::kNone:
      break;
  }
  return vec_norm(w);
}

void Lanczos::project_eig(std::size_t jj) const {
  for (std::size_t r = 0; r < jj; ++r)
    for (std::size_t c = 0; c < jj; ++c)
      proj_[r * jj + c] = tmat_[r * m_ + c];
  eigh_sym(proj_, jj, ws_);
}

void Lanczos::thick_restart(std::size_t jj, std::size_t l, double b) const {
  GECOS_SPAN("lanczos.restart");
  // Ritz vectors u_i = V z_i of the l lowest pairs, staged in aux_ (the
  // basis slots are still live inputs while any u_i is unfinished).
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t r = 0; r < jj; ++r)
      coeffs_[r] = cplx(ws_.z[r * jj + i]);
    vec_fill(aux_.vec(i), cplx(0.0));
    basis_.accumulate(aux_.vec(i), coeffs_, jj);
  }
  for (std::size_t i = 0; i < l; ++i) vec_copy(basis_.vec(i), aux_.vec(i));
  vec_copy(basis_.vec(l), basis_.vec(jj));

  // Restart-boundary health monitors: every kept Ritz vector must still be
  // unit-norm and orthogonal to the carried residual vector. Both are
  // ~1e-13 for an orthogonalizing policy, so a 1e-6 excursion is a real
  // loss of invariants (reported as breakdown), not noise. The reductions
  // also sweep every amplitude for NaN/Inf via the blas1 guards. kNone is
  // the documented ghost factory and is exempt from enforcement.
  double drift = 0.0, ortho = 0.0;
  for (std::size_t i = 0; i < l; ++i) {
    drift = std::max(drift, std::abs(vec_norm(basis_.vec(i)) - 1.0));
    ortho = std::max(ortho, std::abs(vec_dot(basis_.vec(i), basis_.vec(l))));
  }
  result_.max_norm_drift = std::max(result_.max_norm_drift, drift);
  result_.max_ortho_loss = std::max(result_.max_ortho_loss, ortho);
  if (opts_.reorth != LanczosReorth::kNone &&
      (drift > kHealthLimit || ortho > kHealthLimit))
    throw Error(ErrorKind::breakdown,
                "Lanczos: basis invariants lost at restart " +
                    std::to_string(result_.restarts + 1) + " (norm drift " +
                    std::to_string(drift) + ", orthogonality loss " +
                    std::to_string(ortho) + ")");

  // New projected matrix: diag(theta_i) bordered by the residual couplings
  // b_i = beta * z_{last,i} in row/column l.
  std::fill(tmat_.begin(), tmat_.end(), 0.0);
  for (std::size_t i = 0; i < l; ++i) {
    tmat_[i * m_ + i] = ws_.d[i];
    const double bi = b * ws_.z[(jj - 1) * jj + i];
    tmat_[i * m_ + l] = bi;
    tmat_[l * m_ + i] = bi;
  }
  locked_ = l;
  ++result_.restarts;
  if (result_.restart_history.size() < result_.restart_history.capacity()) {
    LanczosRestartInfo info;
    info.iteration = result_.iterations;
    info.matvecs = result_.matvecs;
    info.lowest_ritz = ws_.d[0];
    info.norm_drift = drift;
    info.ortho_loss = ortho;
    result_.restart_history.push_back(info);
  }
  for (std::size_t i = 0; i <= m_; ++i) omega_[i] = omega_prev_[i] = kEps;
}

const LanczosResult& Lanczos::solve() {
  // Seeded Gaussian start vector written straight into slot 0 (no
  // temporary), normalized by the common path below. The distribution is
  // reset so each solve() draws the same sequence a fresh local would.
  dist_.reset();
  std::span<cplx> v0 = basis_.vec(0);
  for (cplx& x : v0) x = cplx(dist_(rng_), dist_(rng_));
  return run();
}

const LanczosResult& Lanczos::solve(std::span<const cplx> v0) {
  if (v0.size() != dim_)
    throw std::invalid_argument("Lanczos::solve: start vector size mismatch");
  vec_copy(basis_.vec(0), v0);
  return run();
}

void Lanczos::save_checkpoint(std::size_t j) const {
  PayloadWriter w;
  // Geometry first, so resume() can reject a mismatched solver before
  // touching any state.
  w.put_u64(dim_);
  w.put_u64(m_);
  w.put_u64(opts_.k);
  w.put_u32(static_cast<std::uint32_t>(opts_.reorth));
  w.put_u64(keep_);
  w.put_u64(locked_);
  w.put_u64(j);
  w.put_u64(result_.iterations);
  w.put_u64(result_.matvecs);
  w.put_u64(result_.restarts);
  for (std::size_t i = 0; i < m_ * m_; ++i) w.put_f64(tmat_[i]);
  for (std::size_t i = 0; i <= m_; ++i) w.put_f64(omega_[i]);
  for (std::size_t i = 0; i <= m_; ++i) w.put_f64(omega_prev_[i]);
  // Engine and distribution serialize exactly through their iostream
  // operators (integer words; max_digits10 floats for the cached spare).
  std::ostringstream rs;
  rs << rng_ << ' ' << dist_;
  w.put_string(rs.str());
  for (std::size_t s = 0; s <= j; ++s) w.put_cplx(basis_.vec(s));
  write_checkpoint(opts_.checkpoint_path, PayloadKind::kLanczosState,
                   w.bytes());
}

const LanczosResult& Lanczos::resume(const std::string& path) {
  const Checkpoint ck =
      read_checkpoint_with_fallback(path, PayloadKind::kLanczosState);
  PayloadReader r(ck.payload);
  const std::uint64_t dim = r.get_u64();
  const std::uint64_t m = r.get_u64();
  const std::uint64_t k = r.get_u64();
  const std::uint32_t reorth = r.get_u32();
  if (dim != dim_ || m != m_ || k != opts_.k ||
      reorth != static_cast<std::uint32_t>(opts_.reorth))
    throw Error(ErrorKind::dim_mismatch,
                path + ": checkpoint geometry (dim " + std::to_string(dim) +
                    ", m " + std::to_string(m) + ", k " + std::to_string(k) +
                    ", reorth " + std::to_string(reorth) +
                    ") does not match this solver (dim " +
                    std::to_string(dim_) + ", m " + std::to_string(m_) +
                    ", k " + std::to_string(opts_.k) + ", reorth " +
                    std::to_string(static_cast<std::uint32_t>(opts_.reorth)) +
                    ")");
  const std::uint64_t keep = r.get_u64();
  const std::uint64_t locked = r.get_u64();
  const std::uint64_t j = r.get_u64();
  if (keep != keep_ || j >= m || locked > j)
    throw Error(ErrorKind::io_corrupt,
                path + ": solver state out of bounds (keep " +
                    std::to_string(keep) + ", locked " +
                    std::to_string(locked) + ", j " + std::to_string(j) +
                    ")");
  result_.iterations = static_cast<std::size_t>(r.get_u64());
  result_.matvecs = static_cast<std::size_t>(r.get_u64());
  result_.restarts = static_cast<std::size_t>(r.get_u64());
  for (std::size_t i = 0; i < m_ * m_; ++i) tmat_[i] = r.get_f64();
  for (std::size_t i = 0; i <= m_; ++i) omega_[i] = r.get_f64();
  for (std::size_t i = 0; i <= m_; ++i) omega_prev_[i] = r.get_f64();
  std::istringstream rs(r.get_string());
  rs >> rng_ >> dist_;
  if (!rs)
    throw Error(ErrorKind::io_corrupt, path + ": RNG state unreadable");
  for (std::size_t s = 0; s <= j; ++s) r.get_cplx(basis_.vec(s));
  r.require_end();

  locked_ = static_cast<std::size_t>(locked);
  result_.converged = false;
  result_.checkpoints_written = 0;
  result_.resumed_matvecs = result_.matvecs;
  result_.resumed = true;
  result_.max_norm_drift = 0.0;
  result_.max_ortho_loss = 0.0;
  result_.residual_history.clear();
  result_.restart_history.clear();
  std::fill(result_.eigenvalues.begin(), result_.eigenvalues.end(), 0.0);
  std::fill(result_.residuals.begin(), result_.residuals.end(), 0.0);
  next_checkpoint_ = result_.matvecs + opts_.checkpoint_interval;

  // Resume-boundary health monitors: the restored prefix must be an
  // orthonormal basis (the reductions also NaN-sweep every amplitude via
  // the blas1 guards). A checksum-valid checkpoint of a healthy run passes
  // at ~1e-13; failure means the file is from a corrupted run.
  double drift = 0.0, ortho = 0.0;
  for (std::size_t s = 0; s <= j; ++s)
    drift = std::max(drift, std::abs(vec_norm(basis_.vec(s)) - 1.0));
  for (std::size_t s = 0; s < j; ++s)
    ortho = std::max(ortho, std::abs(vec_dot(basis_.vec(s), basis_.vec(j))));
  result_.max_norm_drift = drift;
  result_.max_ortho_loss = ortho;
  if (opts_.reorth != LanczosReorth::kNone &&
      (drift > kHealthLimit || ortho > kHealthLimit))
    throw Error(ErrorKind::breakdown,
                path + ": restored basis is not orthonormal (norm drift " +
                    std::to_string(drift) + ", orthogonality loss " +
                    std::to_string(ortho) + ")");

  return loop(static_cast<std::size_t>(j));
}

const LanczosResult& Lanczos::run() {
  const double n0 = vec_norm(basis_.vec(0));
  if (n0 == 0.0)
    throw std::invalid_argument("Lanczos: start vector must be nonzero");
  vec_scale(basis_.vec(0), cplx(1.0 / n0));

  result_.iterations = 0;
  result_.matvecs = 0;
  result_.restarts = 0;
  result_.converged = false;
  result_.checkpoints_written = 0;
  result_.resumed_matvecs = 0;
  result_.resumed = false;
  result_.max_norm_drift = 0.0;
  result_.max_ortho_loss = 0.0;
  result_.residual_history.clear();
  result_.restart_history.clear();
  locked_ = 0;
  dist_.reset();
  std::fill(tmat_.begin(), tmat_.end(), 0.0);
  for (std::size_t i = 0; i <= m_; ++i) omega_[i] = omega_prev_[i] = kEps;

  std::fill(result_.eigenvalues.begin(), result_.eigenvalues.end(), 0.0);
  std::fill(result_.residuals.begin(), result_.residuals.end(), 0.0);
  next_checkpoint_ = opts_.checkpoint_interval;

  return loop(0);
}

const LanczosResult& Lanczos::loop(std::size_t j0) {
  GECOS_SPAN("lanczos.solve");
  const std::size_t k = opts_.k;
  const bool checkpointing =
      opts_.checkpoint_interval > 0 && !opts_.checkpoint_path.empty();
  const std::size_t report_every =
      opts_.progress_interval == 0 ? 1 : opts_.progress_interval;
  solve_start_ns_ = telemetry::now_ns();
  first_metric_ = 0.0;
  std::size_t j = j0;      // index of the newest basis vector
  std::size_t jj = 0;      // current basis size after the extension below
  double b_exit = 0.0;     // residual coupling at loop exit

  for (;;) {
    // The loop-top state (basis prefix 0..j, projected matrix, omega
    // recurrence, RNG, counters) is self-contained: a checkpoint taken
    // here resumes into the bit-identical trajectory.
    if (checkpointing && result_.matvecs >= next_checkpoint_) {
      save_checkpoint(j);
      ++result_.checkpoints_written;
      next_checkpoint_ = result_.matvecs + opts_.checkpoint_interval;
    }
    double b = extend(j);
    ++result_.iterations;
    jj = j + 1;

    // Breakdown: the Krylov space is invariant. Every Ritz pair of the
    // current block is exact; if that is not yet enough pairs, deflate by
    // continuing from a fresh random direction orthogonal to everything
    // (coupling 0 keeps the block structure intact).
    const bool breakdown = b <= 1e-12 * std::max(1.0, std::abs(tmat_[j * m_ + j]));

    project_eig(jj);
    // Worst residual over the requested pairs available so far — the
    // convergence metric of the history and the progress reports.
    const std::size_t avail = std::min(jj, k);
    double worst = 0.0;
    for (std::size_t i = 0; i < avail; ++i) {
      const double res = breakdown ? 0.0 : b * std::abs(ws_.z[j * jj + i]);
      worst = std::max(worst, res);
    }
    if (result_.residual_history.size() <
        result_.residual_history.capacity())
      result_.residual_history.push_back(worst);
    if (opts_.progress && (result_.iterations % report_every == 0)) {
      telemetry::ProgressEvent ev;
      ev.phase = "lanczos";
      ev.iteration = result_.iterations;
      ev.metric = worst;
      ev.target = opts_.tol;
      ev.matvecs = result_.matvecs;
      ev.elapsed_s =
          static_cast<double>(telemetry::now_ns() - solve_start_ns_) * 1e-9;
      if (first_metric_ == 0.0 && jj >= k && worst > 0.0)
        first_metric_ = worst;
      ev.eta_s = telemetry::eta_from_decay(first_metric_, worst, opts_.tol,
                                           ev.elapsed_s);
      opts_.progress(ev);
    }
    const bool all_done = jj >= k && worst <= opts_.tol;
    if (all_done || result_.matvecs >= opts_.max_matvecs) {
      result_.converged = all_done;
      b_exit = breakdown ? 0.0 : b;
      break;
    }

    if (breakdown) {
      // Continue from a fresh random direction orthogonal to everything;
      // zero coupling keeps the exact block untouched.
      std::span<cplx> w = basis_.vec(jj);
      for (cplx& x : w) x = cplx(dist_(rng_), dist_(rng_));
      basis_.project_out(w, jj, 2);
      const double nw = vec_norm(w);
      if (nw == 0.0) {  // dim exhausted: nothing further to add
        result_.converged = all_done;
        break;
      }
      vec_scale(w, cplx(1.0 / nw));
      if (jj == m_) {
        // Full basis of an invariant-subspace chain: restart to make room
        // (border couplings are b * z = 0, preserving the block boundary).
        thick_restart(jj, std::min(keep_, jj - 1), 0.0);
        j = locked_;
        continue;
      }
      j = jj;
      continue;
    }

    if (jj == m_) {
      vec_scale(basis_.vec(jj), cplx(1.0 / b));
      thick_restart(jj, keep_, b);
      j = locked_;
      continue;
    }
    tmat_[j * m_ + jj] = b;
    tmat_[jj * m_ + j] = b;
    vec_scale(basis_.vec(jj), cplx(1.0 / b));
    j = jj;
  }

  for (std::size_t i = 0; i < k && i < jj; ++i) {
    result_.eigenvalues[i] = ws_.d[i];
    result_.residuals[i] = b_exit * std::abs(ws_.z[j * jj + i]);
  }

  if (opts_.compute_vectors) {
    for (std::size_t i = 0; i < k && i < jj; ++i) {
      for (std::size_t r = 0; r < jj; ++r)
        coeffs_[r] = cplx(ws_.z[r * jj + i]);
      vec_fill(aux_.vec(i), cplx(0.0));
      basis_.accumulate(aux_.vec(i), coeffs_, jj);
    }
  }
  return result_;
}

}  // namespace gecos
