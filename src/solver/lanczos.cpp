#include "solver/lanczos.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gecos {

namespace {

/// Orthogonality-loss threshold of the selective policy: a full pass fires
/// when the omega estimate crosses sqrt(machine epsilon).
const double kOmegaLimit = std::sqrt(std::numeric_limits<double>::epsilon());
/// Baseline orthogonality level right after an explicit orthogonalization.
const double kEps = std::numeric_limits<double>::epsilon();

}  // namespace

Lanczos::Lanczos(const LinearOperator& op, LanczosOptions opts)
    : op_(op),
      opts_(opts),
      dim_(op.dim()),
      m_(std::min(opts.max_subspace, dim_)),
      keep_(std::min(opts.k + 8, m_ >= 2 ? m_ - 2 : std::size_t{0})),
      basis_(dim_ < 2 ? 2 : dim_, (m_ < 2 ? 2 : m_) + 1),
      aux_(dim_ < 2 ? 2 : dim_, keep_ == 0 ? 1 : keep_),
      rng_(opts.seed) {
  if (opts.k == 0) throw std::invalid_argument("Lanczos: k must be >= 1");
  if (dim_ < 2) throw std::invalid_argument("Lanczos: operator dim < 2");
  if (opts.k + 2 > m_)
    throw std::invalid_argument(
        "Lanczos: max_subspace must be >= k + 2 (and <= operator dim)");
  tmat_.assign(m_ * m_, 0.0);
  proj_.assign(m_ * m_, 0.0);
  omega_.assign(m_ + 1, kEps);
  omega_prev_.assign(m_ + 1, kEps);
  coeffs_.assign(m_ + 1, cplx(0.0));
  ws_.reserve(m_);
  result_.eigenvalues.assign(opts_.k, 0.0);
  result_.residuals.assign(opts_.k, 0.0);
}

std::span<const cplx> Lanczos::ritz_vector(std::size_t i) const {
  assert(i < opts_.k && opts_.compute_vectors);
  return aux_.vec(i);
}

double Lanczos::extend(std::size_t j) const {
  std::span<cplx> w = basis_.vec(j + 1);
  op_.apply(basis_.vec(j), w);
  ++result_.matvecs;

  // Local recurrence: remove the known couplings of column j of the
  // projected matrix — the single sub-diagonal beta for a plain Lanczos
  // step, the whole border row when v_j is the residual vector of a thick
  // restart (j == locked_).
  if (j == locked_ && locked_ > 0) {
    for (std::size_t i = 0; i < locked_; ++i)
      vec_axpy(w, cplx(-tmat_[i * m_ + j]), basis_.vec(i));
  } else if (j > 0) {
    vec_axpy(w, cplx(-tmat_[(j - 1) * m_ + j]), basis_.vec(j - 1));
  }
  const double a = vec_dot(basis_.vec(j), w).real();
  tmat_[j * m_ + j] = a;
  vec_axpy(w, cplx(-a), basis_.vec(j));

  switch (opts_.reorth) {
    case LanczosReorth::kFull:
      // The local recurrence was the first Gram-Schmidt pass; one classical
      // pass over the whole prefix restores machine-level orthogonality
      // ("twice is enough").
      basis_.project_out(w, j + 1, 1);
      break;
    case LanczosReorth::kSelective: {
      // Parlett-Simon omega recurrence over the tridiagonal tail estimates
      // |<v_{j+1}, v_i>| growth from the three-term recurrence alone; a
      // full pass fires only when the estimate crosses sqrt(eps). The
      // locked thick-restart prefix is always projected out (it is k+8
      // vectors at most — cheap next to a matvec). Conventions: omega_
      // holds the current generation omega_{j,.} with the implicit
      // diagonal omega_{j,j} = 1, omega_prev_ the previous one; the new
      // generation is computed strictly from OLD values (old_im1 carries
      // the pre-overwrite omega_{j,i-1}).
      if (locked_ > 0) basis_.project_out(w, locked_, 1);
      const double bj = std::max(vec_norm(w), 1e-300);
      const double bjm1 = j > locked_ ? tmat_[(j - 1) * m_ + j] : 0.0;
      double worst = 0.0;
      double old_im1 = 0.0;  // omega_{j,locked_-1}: outside the tail, ~0
      for (std::size_t i = locked_; i + 1 <= j; ++i) {
        const double ai = tmat_[i * m_ + i];
        const double bi = i + 1 < m_ ? tmat_[i * m_ + i + 1] : 0.0;
        const double bim1 = i > locked_ ? tmat_[(i - 1) * m_ + i] : 0.0;
        const double old_i = omega_[i];
        const double old_ip1 = i + 2 <= j ? omega_[i + 1] : 1.0;  // om_{j,j}
        double next = bi * old_ip1 + (ai - a) * old_i + bim1 * old_im1 -
                      bjm1 * omega_prev_[i];
        next = std::abs(next) / bj + kEps;
        omega_prev_[i] = old_i;
        omega_[i] = next;
        old_im1 = old_i;
        worst = std::max(worst, next);
      }
      omega_prev_[j] = 1.0;   // omega_{j,j}
      omega_[j] = kEps;       // omega_{j+1,j}: freshly orthogonal pair
      if (worst > kOmegaLimit) {
        basis_.project_out(w, j + 1, 1);
        for (std::size_t i = 0; i <= j; ++i)
          omega_[i] = omega_prev_[i] = kEps;
        return vec_norm(w);
      }
      return bj;  // w untouched since the norm above: reuse it
    }
    case LanczosReorth::kNone:
      break;
  }
  return vec_norm(w);
}

void Lanczos::project_eig(std::size_t jj) const {
  for (std::size_t r = 0; r < jj; ++r)
    for (std::size_t c = 0; c < jj; ++c)
      proj_[r * jj + c] = tmat_[r * m_ + c];
  eigh_sym(proj_, jj, ws_);
}

void Lanczos::thick_restart(std::size_t jj, std::size_t l, double b) const {
  // Ritz vectors u_i = V z_i of the l lowest pairs, staged in aux_ (the
  // basis slots are still live inputs while any u_i is unfinished).
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t r = 0; r < jj; ++r)
      coeffs_[r] = cplx(ws_.z[r * jj + i]);
    vec_fill(aux_.vec(i), cplx(0.0));
    basis_.accumulate(aux_.vec(i), coeffs_, jj);
  }
  for (std::size_t i = 0; i < l; ++i) vec_copy(basis_.vec(i), aux_.vec(i));
  vec_copy(basis_.vec(l), basis_.vec(jj));

  // New projected matrix: diag(theta_i) bordered by the residual couplings
  // b_i = beta * z_{last,i} in row/column l.
  std::fill(tmat_.begin(), tmat_.end(), 0.0);
  for (std::size_t i = 0; i < l; ++i) {
    tmat_[i * m_ + i] = ws_.d[i];
    const double bi = b * ws_.z[(jj - 1) * jj + i];
    tmat_[i * m_ + l] = bi;
    tmat_[l * m_ + i] = bi;
  }
  locked_ = l;
  ++result_.restarts;
  for (std::size_t i = 0; i <= m_; ++i) omega_[i] = omega_prev_[i] = kEps;
}

const LanczosResult& Lanczos::solve() {
  // Seeded Gaussian start vector written straight into slot 0 (no
  // temporary), normalized by the common path below.
  std::span<cplx> v0 = basis_.vec(0);
  std::normal_distribution<double> g;
  for (cplx& x : v0) x = cplx(g(rng_), g(rng_));
  return run();
}

const LanczosResult& Lanczos::solve(std::span<const cplx> v0) {
  if (v0.size() != dim_)
    throw std::invalid_argument("Lanczos::solve: start vector size mismatch");
  vec_copy(basis_.vec(0), v0);
  return run();
}

const LanczosResult& Lanczos::run() {
  const double n0 = vec_norm(basis_.vec(0));
  if (n0 == 0.0)
    throw std::invalid_argument("Lanczos: start vector must be nonzero");
  vec_scale(basis_.vec(0), cplx(1.0 / n0));

  result_.iterations = 0;
  result_.matvecs = 0;
  result_.restarts = 0;
  result_.converged = false;
  locked_ = 0;
  std::fill(tmat_.begin(), tmat_.end(), 0.0);
  for (std::size_t i = 0; i <= m_; ++i) omega_[i] = omega_prev_[i] = kEps;

  std::fill(result_.eigenvalues.begin(), result_.eigenvalues.end(), 0.0);
  std::fill(result_.residuals.begin(), result_.residuals.end(), 0.0);

  const std::size_t k = opts_.k;
  std::size_t j = 0;       // index of the newest basis vector
  std::size_t jj = 0;      // current basis size after the extension below
  double b_exit = 0.0;     // residual coupling at loop exit
  std::normal_distribution<double> g;

  for (;;) {
    double b = extend(j);
    ++result_.iterations;
    jj = j + 1;

    // Breakdown: the Krylov space is invariant. Every Ritz pair of the
    // current block is exact; if that is not yet enough pairs, deflate by
    // continuing from a fresh random direction orthogonal to everything
    // (coupling 0 keeps the block structure intact).
    const bool breakdown = b <= 1e-12 * std::max(1.0, std::abs(tmat_[j * m_ + j]));

    project_eig(jj);
    bool all_done = jj >= k;
    if (all_done)
      for (std::size_t i = 0; i < k; ++i) {
        const double res = breakdown ? 0.0 : b * std::abs(ws_.z[j * jj + i]);
        if (res > opts_.tol) {
          all_done = false;
          break;
        }
      }
    if (all_done || result_.matvecs >= opts_.max_matvecs) {
      result_.converged = all_done;
      b_exit = breakdown ? 0.0 : b;
      break;
    }

    if (breakdown) {
      // Continue from a fresh random direction orthogonal to everything;
      // zero coupling keeps the exact block untouched.
      std::span<cplx> w = basis_.vec(jj);
      for (cplx& x : w) x = cplx(g(rng_), g(rng_));
      basis_.project_out(w, jj, 2);
      const double nw = vec_norm(w);
      if (nw == 0.0) {  // dim exhausted: nothing further to add
        result_.converged = all_done;
        break;
      }
      vec_scale(w, cplx(1.0 / nw));
      if (jj == m_) {
        // Full basis of an invariant-subspace chain: restart to make room
        // (border couplings are b * z = 0, preserving the block boundary).
        thick_restart(jj, std::min(keep_, jj - 1), 0.0);
        j = locked_;
        continue;
      }
      j = jj;
      continue;
    }

    if (jj == m_) {
      vec_scale(basis_.vec(jj), cplx(1.0 / b));
      thick_restart(jj, keep_, b);
      j = locked_;
      continue;
    }
    tmat_[j * m_ + jj] = b;
    tmat_[jj * m_ + j] = b;
    vec_scale(basis_.vec(jj), cplx(1.0 / b));
    j = jj;
  }

  for (std::size_t i = 0; i < k && i < jj; ++i) {
    result_.eigenvalues[i] = ws_.d[i];
    result_.residuals[i] = b_exit * std::abs(ws_.z[j * jj + i]);
  }

  if (opts_.compute_vectors) {
    for (std::size_t i = 0; i < k && i < jj; ++i) {
      for (std::size_t r = 0; r < jj; ++r)
        coeffs_[r] = cplx(ws_.z[r * jj + i]);
      vec_fill(aux_.vec(i), cplx(0.0));
      basis_.accumulate(aux_.vec(i), coeffs_, jj);
    }
  }
  return result_;
}

}  // namespace gecos
