#include "solver/krylov_evolve.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace gecos {

namespace {

/// Subspace cap can never exceed the vector dimension (the Krylov space is
/// the whole space by then and the projection is exact).
std::size_t effective_cap(std::size_t max_subspace, std::size_t dim) {
  return std::min(max_subspace, dim);
}

/// Floating-point floor of the residual estimate beta * |[exp(z T)]_{m,1}|:
/// the small-exponential coefficient bottoms out near machine epsilon, so
/// the estimate cannot resolve below ~eps * beta. Budgets are clamped here —
/// finer step splitting cannot buy accuracy double precision does not have.
double estimate_floor(double beta) {
  return 8 * std::numeric_limits<double>::epsilon() * std::max(1.0, beta);
}

}  // namespace

KrylovEvolver::KrylovEvolver(const LinearOperator& h, KrylovOptions opts)
    : op_(h),
      opts_(opts),
      dim_(h.dim()),
      basis_(dim_, effective_cap(opts.max_subspace, dim_) + 1) {
  if (opts.max_subspace < 2)
    throw std::invalid_argument("KrylovEvolver: max_subspace must be >= 2");
  if (!(opts.tol > 0))
    throw std::invalid_argument("KrylovEvolver: tol must be positive");
  const std::size_t m = effective_cap(opts.max_subspace, dim_);
  alpha_.resize(m);
  beta_.resize(m);
  coeffs_.resize(m);
  if (opts.mode == KrylovMode::kArnoldi) hess_.resize((m + 1) * m);
  ws_.reserve(m);
  // Residual-trajectory capacity: m extensions per substep times a generous
  // substep allowance. Pushes are capacity-guarded, so a pathological
  // splitting run truncates the history instead of allocating mid-step.
  last_.residual_history.reserve(m * 64);
}

std::size_t KrylovEvolver::n_qubits() const { return op_.n_qubits(); }

void KrylovEvolver::step(std::span<cplx> x, double dt) const {
  apply_expm(cplx(0.0, -dt), x);
}

std::size_t KrylovEvolver::build_and_solve(cplx z, std::span<const cplx> x,
                                           double tol_abs, double& beta0,
                                           bool& converged) const {
  const std::size_t m_cap = effective_cap(opts_.max_subspace, dim_);
  beta0 = vec_norm(x);
  converged = false;
  if (beta0 == 0.0) {  // zero vector: exp(zH) 0 = 0, trivially done
    converged = true;
    return 0;
  }

  // v_0 = x / beta0.
  vec_copy(basis_.vec(0), x);
  vec_scale(basis_.vec(0), cplx(1.0 / beta0));

  const bool lanczos = opts_.mode == KrylovMode::kLanczos;
  std::size_t m = 0;
  for (std::size_t j = 0; j < m_cap; ++j) {
    // w lives in the next basis slot: a successful iteration normalizes it
    // into v_{j+1} in place, no copies.
    std::span<cplx> w = basis_.vec(j + 1);
    op_.apply(basis_.vec(j), w);
    ++last_.matvecs;

    double b = 0;
    if (lanczos) {
      if (j > 0) vec_axpy(w, cplx(-beta_[j - 1]), basis_.vec(j - 1));
      const double a = vec_dot(basis_.vec(j), w).real();
      alpha_[j] = a;
      vec_axpy(w, cplx(-a), basis_.vec(j));
      // Full reorthogonalization: one classical GS pass over the whole
      // prefix keeps the basis orthonormal to machine precision (the
      // three-term recurrence above already removed the O(1) components).
      basis_.project_out(w, j + 1, 1);
      b = vec_norm(w);
    } else {
      // Arnoldi: two-pass Gram-Schmidt with coefficient recording into
      // column j of the Hessenberg matrix.
      for (std::size_t i = 0; i <= j; ++i) coeffs_[i] = cplx(0.0);
      basis_.orthogonalize(w, j + 1, coeffs_, 2);
      for (std::size_t i = 0; i <= j; ++i) hess_[i * m_cap + j] = coeffs_[i];
      b = vec_norm(w);
      hess_[(j + 1) * m_cap + j] = b;
    }
    m = j + 1;
    last_beta_ = b;

    // Small exponential of the projected matrix and the Saad a-posteriori
    // error estimate beta_m * |[exp(z T_m)]_{m,1}| — relative to the unit
    // starting vector v_0 (= x / beta0), so the same budget works for
    // shrinking imaginary-time norms.
    const double err = b * solve_projection(z, m);
    if (last_.residual_history.size() < last_.residual_history.capacity())
      last_.residual_history.push_back(err);

    if (b <= opts_.breakdown_tol) {
      // Invariant subspace: the projection is exact, no estimate needed.
      converged = true;
      break;
    }
    if (err <= std::max(tol_abs, estimate_floor(b))) {
      converged = true;
      break;
    }
    if (m == m_cap) break;  // cap hit: caller re-solves for a smaller step

    if (lanczos) beta_[j] = b;
    vec_scale(w, cplx(1.0 / b));  // w becomes v_{j+1}
  }
  last_.subspace = std::max(last_.subspace, m);
  return m;
}

double KrylovEvolver::solve_projection(cplx z, std::size_t m) const {
  if (opts_.mode == KrylovMode::kLanczos) {
    expm_tridiag_e1(alpha_, beta_, m, z, coeffs_, ws_);
  } else {
    const std::size_t m_cap = effective_cap(opts_.max_subspace, dim_);
    Matrix hm(m, m);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < m; ++c) hm(r, c) = z * hess_[r * m_cap + c];
    const Matrix em = expm(hm);
    for (std::size_t r = 0; r < m; ++r) coeffs_[r] = em(r, 0);
  }
  return std::abs(coeffs_[m - 1]);
}

void KrylovEvolver::apply_expm(cplx z, std::span<cplx> x) const {
  if (x.size() != dim_)
    throw std::invalid_argument("KrylovEvolver::apply_expm: size mismatch");
  GECOS_SPAN("krylov.apply_expm");
  last_.matvecs = 0;
  last_.subspace = 0;
  last_.substeps = 0;
  last_.residual_history.clear();  // keeps the reserved capacity
  if (z == cplx(0.0)) return;
  const std::uint64_t t0 = progress_ ? telemetry::now_ns() : 0;

  // Committed-fraction loop: try the whole remaining interval; every failure
  // at the subspace cap halves the trial fraction. Each substep gets an
  // error budget proportional to its length so the per-call total honors
  // opts_.tol regardless of how finely the step splits.
  double done = 0.0;
  double trial = 1.0;
  while (done < 1.0 - 1e-12) {
    double h = std::min(trial, 1.0 - done);
    double beta0 = 0;
    bool converged = false;
    const std::size_t m =
        build_and_solve(z * h, x, opts_.tol * h, beta0, converged);
    if (!converged && m > 0) {
      // Cap hit. The Krylov basis of x does not depend on z, so instead of
      // rebuilding (m_cap matvecs per attempt), halve the substep against
      // the ALREADY-BUILT projection until the estimate fits the budget
      // (proportional to the substep, clamped at the estimate's own fp
      // floor) — only the small exponential is re-evaluated.
      for (;;) {
        h /= 2;
        if (h < 1e-8)
          throw Error(ErrorKind::not_converged,
                      "KrylovEvolver: step splitting failed to converge "
                      "(operator norm too large for the subspace cap?)");
        const double err = last_beta_ * solve_projection(z * h, m);
        if (err <= std::max(opts_.tol * h, estimate_floor(last_beta_))) break;
      }
      trial = h;  // later substeps start from the fraction that worked
      converged = true;
    }
    if (m > 0) {
      // x <- beta0 * V_m exp(z h T_m) e1.
      for (std::size_t i = 0; i < m; ++i) coeffs_[i] *= beta0;
      vec_fill(x, cplx(0.0));
      basis_.accumulate(x, coeffs_, m);
    }
    done += h;
    ++last_.substeps;
    if (progress_) {
      telemetry::ProgressEvent ev;
      ev.phase = "krylov";
      ev.iteration = last_.substeps;
      ev.metric = done;  // fraction of the interval committed
      ev.target = 1.0;
      ev.matvecs = last_.matvecs;
      ev.elapsed_s = static_cast<double>(telemetry::now_ns() - t0) * 1e-9;
      // Substeps commit uniform fractions once the trial settles, so the
      // linear extrapolation over the committed fraction is the ETA.
      ev.eta_s = done > 0 ? ev.elapsed_s / done * (1.0 - done) : -1.0;
      progress_(ev);
    }
  }
}

void KrylovEvolver::evolve(std::span<cplx> x, double t, int steps) const {
  if (steps < 1)
    throw std::invalid_argument("KrylovEvolver::evolve: steps must be >= 1");
  // The step count is a hint only: one spectrally-exact Krylov solve covers
  // the whole interval, splitting internally where the subspace cap
  // requires it — running `steps` independent projections would cost
  // steps * matvecs for no accuracy gain.
  apply_expm(cplx(0.0, -t), x);
}

}  // namespace gecos
