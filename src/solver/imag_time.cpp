#include "solver/imag_time.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "io/checkpoint.hpp"
#include "linalg/blas1.hpp"
#include "state/state_vector.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace gecos {

ImagTimeResult imag_time_ground_state(const LinearOperator& h,
                                      std::span<cplx> psi,
                                      const ImagTimeOptions& opts) {
  if (psi.size() != h.dim())
    throw std::invalid_argument("imag_time_ground_state: dimension mismatch");
  if (!(opts.dt > 0))
    throw std::invalid_argument("imag_time_ground_state: dt must be > 0");

  KrylovOptions kopts;
  kopts.max_subspace = opts.max_subspace;
  kopts.tol = opts.krylov_tol;
  kopts.mode = KrylovMode::kLanczos;
  const KrylovEvolver expm(h, kopts);

  const auto normalize = [&] {
    const double n = vec_norm(psi);
    if (n == 0.0)
      throw Error(ErrorKind::breakdown,
                  "imag_time_ground_state: state collapsed to zero norm");
    vec_scale(psi, cplx(1.0 / n));
  };

  // One scratch vector for H psi (aligned like every other hot-path
  // amplitude buffer); energy and variance come from the same application:
  // E = Re<psi|H psi>, var = ||H psi||^2 - E^2.
  AlignedVec hpsi(h.dim());
  ImagTimeResult r;
  r.energy_history.reserve(opts.max_steps + 1);
  r.variance_history.reserve(opts.max_steps + 1);
  const std::size_t report_every =
      opts.progress_interval == 0 ? 1 : opts.progress_interval;
  const std::uint64_t t0 = telemetry::now_ns();
  double first_metric = 0.0;
  const bool checkpointing =
      opts.checkpoint_interval > 0 && !opts.checkpoint_path.empty();
  std::size_t next_checkpoint = opts.checkpoint_interval;

  if (opts.resume && checkpoint_exists(opts.checkpoint_path)) {
    const Checkpoint ck = read_checkpoint_with_fallback(
        opts.checkpoint_path, PayloadKind::kImagTimeState);
    PayloadReader rd(ck.payload);
    const std::uint64_t dim = rd.get_u64();
    if (dim != h.dim())
      throw Error(ErrorKind::dim_mismatch,
                  opts.checkpoint_path + ": checkpoint dim " +
                      std::to_string(dim) + " does not match operator dim " +
                      std::to_string(h.dim()));
    r.steps = static_cast<std::size_t>(rd.get_u64());
    r.matvecs = static_cast<std::size_t>(rd.get_u64());
    r.beta = rd.get_f64();
    rd.get_f64();  // dt at save time (informational only; beta is the truth)
    r.energy = rd.get_f64();
    r.variance = rd.get_f64();
    rd.get_cplx(psi);
    rd.require_end();
    r.resumed = true;
    r.resumed_steps = r.steps;
    next_checkpoint = r.steps + opts.checkpoint_interval;
  }

  // Also the resume-boundary health sweep: vec_norm inside throws
  // Error{numerical_nan} on any non-finite restored amplitude.
  normalize();
  GECOS_SPAN("imag_time.solve");
  for (;;) {
    if (checkpointing && r.steps >= next_checkpoint) {
      PayloadWriter w;
      w.put_u64(h.dim());
      w.put_u64(r.steps);
      w.put_u64(r.matvecs);
      w.put_f64(r.beta);
      w.put_f64(opts.dt);
      w.put_f64(r.energy);
      w.put_f64(r.variance);
      w.put_cplx(psi);
      write_checkpoint(opts.checkpoint_path, PayloadKind::kImagTimeState,
                       w.bytes());
      ++r.checkpoints_written;
      next_checkpoint = r.steps + opts.checkpoint_interval;
    }
    h.apply(psi, hpsi);
    ++r.matvecs;
    r.energy = vec_dot(psi, hpsi).real();
    const double h2 = vec_norm(hpsi);
    r.variance = h2 * h2 - r.energy * r.energy;
    if (r.energy_history.size() < r.energy_history.capacity())
      r.energy_history.push_back(r.energy);
    if (r.variance_history.size() < r.variance_history.capacity())
      r.variance_history.push_back(r.variance);
    if (opts.progress && (r.steps % report_every == 0)) {
      telemetry::ProgressEvent ev;
      ev.phase = "imag_time";
      ev.iteration = r.steps;
      ev.total = opts.max_steps;
      ev.metric = r.variance;
      ev.target = opts.variance_tol;
      ev.matvecs = r.matvecs;
      ev.elapsed_s = static_cast<double>(telemetry::now_ns() - t0) * 1e-9;
      if (first_metric == 0.0 && r.variance > 0.0) first_metric = r.variance;
      ev.eta_s = telemetry::eta_from_decay(first_metric, r.variance,
                                           opts.variance_tol, ev.elapsed_s);
      opts.progress(ev);
    }
    if (r.variance <= opts.variance_tol) {
      r.converged = true;
      return r;
    }
    if (r.steps >= opts.max_steps) return r;

    expm.apply_expm(cplx(-opts.dt), psi);
    r.matvecs += expm.last_matvecs();
    normalize();
    ++r.steps;
    r.beta += opts.dt;
  }
}

ImagTimeResult imag_time_ground_state(const LinearOperator& h,
                                      StateVector& psi,
                                      const ImagTimeOptions& opts) {
  return imag_time_ground_state(h, psi.amps(), opts);
}

}  // namespace gecos
