#include "solver/imag_time.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas1.hpp"

namespace gecos {

ImagTimeResult imag_time_ground_state(const LinearOperator& h,
                                      StateVector& psi,
                                      const ImagTimeOptions& opts) {
  if (psi.dim() != h.dim())
    throw std::invalid_argument("imag_time_ground_state: dimension mismatch");
  if (!(opts.dt > 0))
    throw std::invalid_argument("imag_time_ground_state: dt must be > 0");

  KrylovOptions kopts;
  kopts.max_subspace = opts.max_subspace;
  kopts.tol = opts.krylov_tol;
  kopts.mode = KrylovMode::kLanczos;
  const KrylovEvolver expm(h, kopts);

  // One scratch vector for H psi; energy and variance come from the same
  // application: E = Re<psi|H psi>, var = ||H psi||^2 - E^2.
  StateVector hpsi(psi.n_qubits());
  ImagTimeResult r;
  psi.normalize();
  for (;;) {
    h.apply(psi.amps(), hpsi.amps());
    ++r.matvecs;
    r.energy = vec_dot(psi.amps(), hpsi.amps()).real();
    const double h2 = vec_norm(hpsi.amps());
    r.variance = h2 * h2 - r.energy * r.energy;
    if (r.variance <= opts.variance_tol) {
      r.converged = true;
      return r;
    }
    if (r.steps >= opts.max_steps) return r;

    expm.apply_expm(cplx(-opts.dt), psi.amps());
    r.matvecs += expm.last_matvecs();
    psi.normalize();
    ++r.steps;
  }
}

}  // namespace gecos
