#include "solver/imag_time.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas1.hpp"
#include "state/state_vector.hpp"

namespace gecos {

ImagTimeResult imag_time_ground_state(const LinearOperator& h,
                                      std::span<cplx> psi,
                                      const ImagTimeOptions& opts) {
  if (psi.size() != h.dim())
    throw std::invalid_argument("imag_time_ground_state: dimension mismatch");
  if (!(opts.dt > 0))
    throw std::invalid_argument("imag_time_ground_state: dt must be > 0");

  KrylovOptions kopts;
  kopts.max_subspace = opts.max_subspace;
  kopts.tol = opts.krylov_tol;
  kopts.mode = KrylovMode::kLanczos;
  const KrylovEvolver expm(h, kopts);

  const auto normalize = [&] {
    const double n = vec_norm(psi);
    if (n == 0.0)
      throw std::invalid_argument("imag_time_ground_state: zero state");
    vec_scale(psi, cplx(1.0 / n));
  };

  // One scratch vector for H psi (aligned like every other hot-path
  // amplitude buffer); energy and variance come from the same application:
  // E = Re<psi|H psi>, var = ||H psi||^2 - E^2.
  AlignedVec hpsi(h.dim());
  ImagTimeResult r;
  normalize();
  for (;;) {
    h.apply(psi, hpsi);
    ++r.matvecs;
    r.energy = vec_dot(psi, hpsi).real();
    const double h2 = vec_norm(hpsi);
    r.variance = h2 * h2 - r.energy * r.energy;
    if (r.variance <= opts.variance_tol) {
      r.converged = true;
      return r;
    }
    if (r.steps >= opts.max_steps) return r;

    expm.apply_expm(cplx(-opts.dt), psi);
    r.matvecs += expm.last_matvecs();
    normalize();
    ++r.steps;
  }
}

ImagTimeResult imag_time_ground_state(const LinearOperator& h,
                                      StateVector& psi,
                                      const ImagTimeOptions& opts) {
  return imag_time_ground_state(h, psi.amps(), opts);
}

}  // namespace gecos
