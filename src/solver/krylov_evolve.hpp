// Krylov-projection time evolution: expm_multiply through LinearOperator.
//
// The Trotter engine exploits the term structure of an ScbSum; this evolver
// needs only the apply_add hot path, so it propagates ANY LinearOperator —
// PauliSum, ScbSum, SumOperator, CsrMatrix — with spectral accuracy. One
// step projects H onto the Krylov space K_m(H, x) and applies the small
// exponential exactly: x <- beta0 V_m exp(z T_m) e1 with z = -i dt. The
// subspace is grown one matvec at a time until the a-posteriori residual
// estimate beta_j |[exp(z T_j)]_{j,1}| meets the error budget; when the
// budget cannot be met at the subspace cap, the step is split in half
// repeatedly (each half gets half the budget, so the per-call total is
// honored). Hermitian operators (the default, kLanczos) use the three-term
// recurrence plus full reorthogonalization and the tridiagonal eigensolver;
// kArnoldi handles general operators through a Hessenberg projection and
// the dense expm. All large-vector work runs on the shared KrylovBasis /
// BLAS-1 kernels; in kLanczos mode nothing allocates after the first step.
// See DESIGN.md "Krylov solver layer".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "evolve/evolver.hpp"
#include "linalg/sym_eig.hpp"
#include "ops/linear_op.hpp"
#include "state/krylov_basis.hpp"

namespace gecos {

/// Projection flavor of a KrylovEvolver.
enum class KrylovMode {
  kLanczos,  ///< Hermitian three-term recurrence (default; allocation-free)
  kArnoldi,  ///< general Hessenberg projection (dense expm per solve)
};

/// Tuning knobs for KrylovEvolver.
struct KrylovOptions {
  std::size_t max_subspace = 30;  ///< Krylov dimension cap m (>= 2)
  double tol = 1e-12;             ///< per-step error budget, relative to ||x||
  KrylovMode mode = KrylovMode::kLanczos;  ///< Hermitian vs general projection
  double breakdown_tol = 1e-12;   ///< beta below this: invariant subspace
};

/// Statistics of one step()/apply_expm() call on a KrylovEvolver, exposed
/// through KrylovEvolver::last_step().
struct KrylovStepInfo {
  std::size_t matvecs = 0;    ///< operator applications this call
  std::size_t subspace = 0;   ///< largest Krylov dimension used
  std::size_t substeps = 0;   ///< committed substeps (1 = no splitting)
  /// Saad a-posteriori error estimate beta_j |[exp(z T_j)]_{j,1}| after
  /// every basis extension, across all substeps — the convergence
  /// trajectory of the call. Capacity is reserved at construction, so
  /// recording never allocates during a step.
  std::vector<double> residual_history;
};

/// Matrix-free exp(z H) propagator over a Krylov subspace.
class KrylovEvolver : public Evolver {
 public:
  /// Captures the operator by reference (it must outlive the evolver) and
  /// preallocates basis and projection storage for max_subspace vectors.
  /// Throws std::invalid_argument on max_subspace < 2 or tol <= 0.
  explicit KrylovEvolver(const LinearOperator& h, KrylovOptions opts = {});

  /// Qubit count of the underlying operator.
  std::size_t n_qubits() const override;

  /// Real-time step x <- exp(-i dt H) x (adaptive subspace + splitting).
  void step(std::span<cplx> x, double dt) const override;
  /// Whole-interval evolution. The step count is a HINT (validated >= 1 for
  /// interface parity, then ignored): one spectrally-exact solve covers the
  /// interval, splitting internally where the subspace cap requires it.
  void evolve(std::span<cplx> x, double t, int steps) const override;
  /// StateVector / evolve entry points of the Evolver base.
  using Evolver::evolve;
  using Evolver::step;

  /// General form x <- exp(z H) x: z = -i dt is the unitary step, z = -dt
  /// the imaginary-time projection step (src/solver/imag_time.hpp). The
  /// error budget opts.tol is relative to the input norm. A zero vector is
  /// returned unchanged.
  void apply_expm(cplx z, std::span<cplx> x) const;

  /// Statistics of the most recent step()/apply_expm() call, including the
  /// per-extension residual-estimate trajectory.
  const KrylovStepInfo& last_step() const { return last_; }
  /// Shorthands over last_step() (kept for existing callers).
  std::size_t last_matvecs() const { return last_.matvecs; }
  std::size_t last_subspace() const { return last_.subspace; }
  std::size_t last_substeps() const { return last_.substeps; }

 private:
  /// Builds K_j(H, x) one matvec at a time until the relative error
  /// estimate meets tol_abs (converged = true; also on breakdown, where the
  /// projection is exact) or j hits the subspace cap (converged = false and
  /// the caller splits the step). Writes the exp(z T_m) e1 coefficients
  /// into coeffs_ and returns the subspace size m; x is the unnormalized
  /// input, its norm is returned through beta0.
  std::size_t build_and_solve(cplx z, std::span<const cplx> x, double tol_abs,
                              double& beta0, bool& converged) const;
  /// exp(z T_m) e1 of the currently-built projection into coeffs_; returns
  /// |coeffs_[m-1]| (the estimate factor). The basis does not depend on z,
  /// so step halving re-evaluates this without re-running matvecs.
  double solve_projection(cplx z, std::size_t m) const;

  const LinearOperator& op_;
  KrylovOptions opts_;
  std::size_t dim_ = 0;

  // Per-object scratch (step() is const but not concurrency-safe on one
  // object; see Evolver docs). All sized at construction.
  mutable KrylovBasis basis_;
  mutable std::vector<double> alpha_, beta_;  // Lanczos recurrence
  mutable std::vector<cplx> hess_;            // Arnoldi Hessenberg, row-major
  mutable std::vector<cplx> coeffs_;          // exp(z T) e1
  mutable SymEigWorkspace ws_;
  mutable double last_beta_ = 0;  // outward coupling of the built projection
  mutable KrylovStepInfo last_;   // history capacity reserved at construction
};

}  // namespace gecos
