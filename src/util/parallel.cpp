#include "util/parallel.hpp"

#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace gecos {

namespace {

// Workers run chunks; anything launched from inside a chunk body degrades to
// the serial path (no nested pools).
thread_local bool tls_in_worker = false;

int initial_threads() {
  if (const char* env = std::getenv("GECOS_THREADS"))
    return parse_threads_env(env);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int& threads_setting() {
  static int setting = [] {
    const int t = initial_threads();
    telemetry::gauge_set(telemetry::Gauge::threads, t);
    return t;
  }();
  return setting;
}

// Persistent grow-only worker pool. run() dispatches chunks 1..chunks-1 to
// workers (chunk 0 runs on the caller) and blocks until all chunks finish.
// Shrinking the thread knob only shrinks participation; idle workers park in
// the condition-variable wait. One run at a time: parallel_for is the only
// caller and nested calls short-circuit to serial.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t n, int chunks, detail::RawBody fn, void* ctx) {
    // Serialize whole dispatches: two application threads issuing
    // parallel_for concurrently must not interleave their chunk state (the
    // second would overwrite fn_/pending_ and the first caller's chunks
    // would silently never run). Uncontended cost is one lock per call.
    std::scoped_lock<std::mutex> run_lk(run_m_);
    {
      std::unique_lock<std::mutex> lk(m_);
      ensure_workers(chunks - 1);
      fn_ = fn;
      ctx_ = ctx;
      n_ = n;
      chunks_ = chunks;
      pending_ = chunks - 1;
      ++generation_;
    }
    work_cv_.notify_all();
    const bool metrics = telemetry::metrics_enabled();
    if (metrics) {
      telemetry::count(telemetry::Counter::pool_dispatches);
      telemetry::count(telemetry::Counter::pool_chunks,
                       static_cast<std::uint64_t>(chunks));
      const std::uint64_t t0 = telemetry::now_ns();
      run_chunk(n, fn, ctx, chunks, 0);
      telemetry::observe(telemetry::Hist::pool_task_ns,
                         telemetry::now_ns() - t0);
    } else {
      run_chunk(n, fn, ctx, chunks, 0);
    }
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] { return pending_ == 0; });
    fn_ = nullptr;
    ctx_ = nullptr;
  }

  static void run_chunk(std::size_t n, detail::RawBody fn, void* ctx,
                        int chunks, int c) {
    const std::size_t begin = n * static_cast<std::size_t>(c) /
                              static_cast<std::size_t>(chunks);
    const std::size_t end = n * (static_cast<std::size_t>(c) + 1) /
                            static_cast<std::size_t>(chunks);
    if (begin < end) fn(ctx, begin, end, c);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::unique_lock<std::mutex> lk(m_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensure_workers(int want) {  // caller holds m_
    while (static_cast<int>(workers_.size()) < want) {
      const int w = static_cast<int>(workers_.size());
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  void worker_loop(int w) {
    tls_in_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    while (true) {
      // Idle attribution: the wait below is exactly the worker's
      // between-dispatch park time. One enabled check per dispatch, not per
      // chunk iteration, so the disabled pool path is unchanged.
      const bool metrics = telemetry::metrics_enabled();
      const std::uint64_t idle_t0 = metrics ? telemetry::now_ns() : 0;
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (metrics)
        telemetry::observe(telemetry::Hist::pool_idle_ns,
                           telemetry::now_ns() - idle_t0);
      if (stop_) return;
      seen = generation_;
      if (w < chunks_ - 1) {
        const detail::RawBody fn = fn_;
        void* const ctx = ctx_;
        const std::size_t n = n_;
        const int chunks = chunks_;
        lk.unlock();
        if (telemetry::metrics_enabled()) {
          const std::uint64_t t0 = telemetry::now_ns();
          run_chunk(n, fn, ctx, chunks, w + 1);
          telemetry::observe(telemetry::Hist::pool_task_ns,
                             telemetry::now_ns() - t0);
        } else {
          run_chunk(n, fn, ctx, chunks, w + 1);
        }
        lk.lock();
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::mutex run_m_;  // held for a whole run(): one dispatch at a time
  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  detail::RawBody fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  int chunks_ = 0;
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

int parse_threads_env(const char* text) {
  const std::string s(text == nullptr ? "" : text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  // strtol skips leading whitespace and accepts a sign; strict means digits
  // only, so " 4" and "+4" are rejected like any other junk.
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])) ||
      end != s.c_str() + s.size() || errno == ERANGE || v < 1 || v > 1024)
    throw std::invalid_argument("GECOS_THREADS='" + s +
                                "': expected an integer in [1, 1024]");
  return static_cast<int>(v);
}

int num_threads() { return threads_setting(); }

void set_num_threads(int k) {
  threads_setting() = k < 1 ? 1 : k;
  telemetry::gauge_set(telemetry::Gauge::threads, threads_setting());
}

namespace detail {

void pool_run(std::size_t n, int chunks, RawBody fn, void* ctx) {
  Pool::instance().run(n, chunks, fn, ctx);
}

bool on_worker_thread() { return tls_in_worker; }

}  // namespace detail

}  // namespace gecos
