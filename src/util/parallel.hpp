// Shared-memory parallelism for the statevector kernels.
//
// gecos::parallel_for splits an index range into one contiguous chunk per
// worker and runs the chunks on a lazily-started persistent std::thread pool
// (no per-call thread spawn on the hot path). The worker count is a runtime
// knob: the GECOS_THREADS environment variable sets the initial value,
// set_num_threads() overrides it, and bench_main exposes it as --threads.
// Small ranges (below kParallelGrain) and num_threads() == 1 run inline on
// the calling thread, so single-threaded behavior is exactly the serial
// loop. The dispatch path is allocation-free: the callable is passed to the
// pool as a function pointer + context, never wrapped in std::function, so
// tight evolution loops (Trotter stepping, expectation values) allocate
// nothing per call.
//
// Callers are responsible for making chunk bodies race-free: every kernel in
// this library partitions its *output* indices (or a bijective relabeling of
// them) across chunks so no two chunks ever write the same amplitude. See
// DESIGN.md "Threading model".
#pragma once

#include <cstddef>
#include <type_traits>

namespace gecos {

/// Ranges smaller than this run inline; parallelism only pays for itself on
/// statevector-sized loops.
inline constexpr std::size_t kParallelGrain = std::size_t{1} << 13;

/// Upper bound on chunks per parallel_for call (and thus on the chunk id
/// passed to bodies), so reduction callers can keep per-chunk partials in a
/// fixed-size stack array.
inline constexpr int kMaxParallelChunks = 256;

/// Strict GECOS_THREADS parser: an integer in [1, 1024]. Anything else —
/// non-numeric, trailing junk, out of range — throws std::invalid_argument
/// naming the offending token (a silent fallback would quietly ignore what
/// the user asked for). Exposed for direct testing.
int parse_threads_env(const char* text);

/// Current worker-count setting (>= 1). First call reads GECOS_THREADS via
/// parse_threads_env (so an invalid value throws, loudly); an unset
/// variable defaults to std::thread::hardware_concurrency().
int num_threads();

/// Overrides the worker count (clamped to >= 1). Existing pool workers are
/// retired and restarted lazily at the next parallel_for.
void set_num_threads(int k);

namespace detail {

/// Type-erased chunk body: fn(ctx, begin, end, chunk).
using RawBody = void (*)(void*, std::size_t, std::size_t, int);

/// Dispatches chunks 1..chunks-1 to the pool, runs chunk 0 on the caller,
/// blocks until all chunks complete.
void pool_run(std::size_t n, int chunks, RawBody fn, void* ctx);

/// True on pool worker threads (nested parallel_for degrades to serial).
bool on_worker_thread();

}  // namespace detail

/// Runs body(begin, end, chunk) over [0, n) split into at most
/// min(num_threads(), kMaxParallelChunks) contiguous chunks; chunk ids are
/// dense in [0, chunks). Blocks until every chunk is done (bodies must not
/// throw). Serial fallback — a single inline body(0, n, 0) call — when n <
/// grain, num_threads() == 1, or already inside a pool worker. Safe to call
/// from several application threads at once: concurrent dispatches
/// serialize on the shared pool (they do not run simultaneously).
template <typename F>
void parallel_for(std::size_t n, F&& body,  // NOLINT: see doc above template
                  std::size_t grain = kParallelGrain) {
  if (n == 0) return;
  const int t = num_threads();
  if (t <= 1 || n < grain || detail::on_worker_thread()) {
    body(std::size_t{0}, n, 0);
    return;
  }
  int chunks = t < kMaxParallelChunks ? t : kMaxParallelChunks;
  if (static_cast<std::size_t>(chunks) > n) chunks = static_cast<int>(n);
  using Body = std::remove_reference_t<F>;
  detail::pool_run(
      n, chunks,
      [](void* ctx, std::size_t b, std::size_t e, int c) {
        (*static_cast<Body*>(ctx))(b, e, c);
      },
      const_cast<void*>(static_cast<const void*>(&body)));
}

}  // namespace gecos
