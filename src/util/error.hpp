// Structured error taxonomy for runtime failures.
//
// Until this header existed every runtime failure surfaced as a bare
// std::runtime_error string, a std::invalid_argument, or — worse — silent
// garbage (a NaN born in one matvec propagates into every downstream Ritz
// value; an unconverged Jacobi sweep returns whatever the last rotation
// left). gecos::Error carries a machine-checkable ErrorKind next to the
// human-readable message, so callers (the checkpoint/resume layer, the
// fault-injection harness, long-running drivers) can branch on WHAT failed:
// fall back to the previous checkpoint on io_corrupt, refuse a newer file
// format on version_mismatch, restart from a fresh state on numerical_nan.
// Convention: std::invalid_argument stays the exception for caller API
// misuse (bad sizes passed in, k = 0); gecos::Error is for conditions that
// arise at runtime from data, files, or floating-point state. See DESIGN.md
// "Checkpoint format & failure model".
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace gecos {

/// What failed — the machine-checkable half of a gecos::Error.
enum class ErrorKind {
  io_corrupt,       ///< checkpoint bytes fail validation (magic/size/checksum)
  version_mismatch, ///< checkpoint written by an unknown format version
  dim_mismatch,     ///< dimensions disagree, overflow, or exceed memory
  numerical_nan,    ///< a NaN/Inf surfaced in an amplitude reduction
  breakdown,        ///< an iterative method lost its invariants mid-flight
  not_converged,    ///< an iteration limit exhausted without convergence
  protocol,         ///< malformed or unsupported serve-protocol traffic
  not_found,        ///< a requested job / artifact does not exist
  cancelled,        ///< a job was cancelled before producing a result
};

/// Short stable name of an ErrorKind (for logs and test assertions).
inline const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::io_corrupt: return "io_corrupt";
    case ErrorKind::version_mismatch: return "version_mismatch";
    case ErrorKind::dim_mismatch: return "dim_mismatch";
    case ErrorKind::numerical_nan: return "numerical_nan";
    case ErrorKind::breakdown: return "breakdown";
    case ErrorKind::not_converged: return "not_converged";
    case ErrorKind::protocol: return "protocol";
    case ErrorKind::not_found: return "not_found";
    case ErrorKind::cancelled: return "cancelled";
  }
  return "unknown";
}

/// Every ErrorKind, in declaration order — the iteration domain of
/// parse_error_kind() and the round-trip tests.
inline constexpr ErrorKind kAllErrorKinds[] = {
    ErrorKind::io_corrupt, ErrorKind::version_mismatch,
    ErrorKind::dim_mismatch, ErrorKind::numerical_nan,
    ErrorKind::breakdown, ErrorKind::not_converged,
    ErrorKind::protocol, ErrorKind::not_found,
    ErrorKind::cancelled,
};

/// The stable machine-readable wire name of an ErrorKind — the form error
/// replies of the serve protocol carry (identical to to_string; this alias
/// is the documented wire-format entry point).
inline const char* error_kind_name(ErrorKind kind) { return to_string(kind); }

/// Inverse of error_kind_name(): parses a kind name back into the enum.
/// Returns true and sets `out` on a known name; returns false (leaving
/// `out` untouched) otherwise — an unknown name from a newer peer must not
/// crash an older client, so this never throws.
inline bool parse_error_kind(std::string_view name, ErrorKind& out) {
  for (const ErrorKind k : kAllErrorKinds) {
    if (name == error_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// Runtime failure with a structured kind. what() is
/// "<kind>: <message>" so plain logs stay self-describing.
class Error : public std::runtime_error {
 public:
  /// Builds the error from its kind and a human-readable message.
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  /// The machine-checkable failure category.
  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

}  // namespace gecos
