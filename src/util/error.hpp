// Structured error taxonomy for runtime failures.
//
// Until this header existed every runtime failure surfaced as a bare
// std::runtime_error string, a std::invalid_argument, or — worse — silent
// garbage (a NaN born in one matvec propagates into every downstream Ritz
// value; an unconverged Jacobi sweep returns whatever the last rotation
// left). gecos::Error carries a machine-checkable ErrorKind next to the
// human-readable message, so callers (the checkpoint/resume layer, the
// fault-injection harness, long-running drivers) can branch on WHAT failed:
// fall back to the previous checkpoint on io_corrupt, refuse a newer file
// format on version_mismatch, restart from a fresh state on numerical_nan.
// Convention: std::invalid_argument stays the exception for caller API
// misuse (bad sizes passed in, k = 0); gecos::Error is for conditions that
// arise at runtime from data, files, or floating-point state. See DESIGN.md
// "Checkpoint format & failure model".
#pragma once

#include <stdexcept>
#include <string>

namespace gecos {

/// What failed — the machine-checkable half of a gecos::Error.
enum class ErrorKind {
  io_corrupt,       ///< checkpoint bytes fail validation (magic/size/checksum)
  version_mismatch, ///< checkpoint written by an unknown format version
  dim_mismatch,     ///< dimensions disagree, overflow, or exceed memory
  numerical_nan,    ///< a NaN/Inf surfaced in an amplitude reduction
  breakdown,        ///< an iterative method lost its invariants mid-flight
  not_converged,    ///< an iteration limit exhausted without convergence
};

/// Short stable name of an ErrorKind (for logs and test assertions).
inline const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::io_corrupt: return "io_corrupt";
    case ErrorKind::version_mismatch: return "version_mismatch";
    case ErrorKind::dim_mismatch: return "dim_mismatch";
    case ErrorKind::numerical_nan: return "numerical_nan";
    case ErrorKind::breakdown: return "breakdown";
    case ErrorKind::not_converged: return "not_converged";
  }
  return "unknown";
}

/// Runtime failure with a structured kind. what() is
/// "<kind>: <message>" so plain logs stay self-describing.
class Error : public std::runtime_error {
 public:
  /// Builds the error from its kind and a human-readable message.
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  /// The machine-checkable failure category.
  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

}  // namespace gecos
