// Bit-scatter helper for chunking the selected-state walks.
//
// The matrix-free SCB kernels enumerate the 2^f subsets of a free-bit mask
// with the classic `sub = (sub - mask) & mask` successor, which is inherently
// sequential. scatter_bits gives random access into that enumeration: the
// k-th subset (in the successor's ascending order) is scatter_bits(k, mask),
// so a parallel chunk [k0, k1) seeds its local walk with scatter_bits(k0,
// mask) and then runs the cheap successor within the chunk.
#pragma once

#include <cstdint>

#ifdef __BMI2__
#include <immintrin.h>
#endif

namespace gecos {

/// Deposits the low bits of idx into the set bits of mask, lowest first
/// (x86 PDEP; portable loop elsewhere). scatter_bits(k, mask) is the k-th
/// subset of mask in ascending numeric order.
inline std::uint64_t scatter_bits(std::uint64_t idx, std::uint64_t mask) {
#ifdef __BMI2__
  return _pdep_u64(idx, mask);
#else
  std::uint64_t out = 0;
  while (mask != 0) {
    const std::uint64_t low = mask & (~mask + 1);
    if (idx & 1) out |= low;
    idx >>= 1;
    mask ^= low;
  }
  return out;
#endif
}

}  // namespace gecos
