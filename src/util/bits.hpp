// Bit-scatter/gather helpers for chunking the selected-state walks and the
// symmetry-sector ranking.
//
// The matrix-free SCB kernels enumerate the 2^f subsets of a free-bit mask
// with the classic `sub = (sub - mask) & mask` successor, which is inherently
// sequential. scatter_bits gives random access into that enumeration: the
// k-th subset (in the successor's ascending order) is scatter_bits(k, mask),
// so a parallel chunk [k0, k1) seeds its local walk with scatter_bits(k0,
// mask) and then runs the cheap successor within the chunk. gather_bits is
// the inverse permutation (PEXT), used by the sector ranking in
// src/symmetry/sector_basis.hpp to compact one species' occupation bits;
// next_same_popcount (Gosper's hack) is the fixed-Hamming-weight successor
// the sector walks advance with.
#pragma once

#include <cstdint>

#ifdef __BMI2__
#include <immintrin.h>
#endif

namespace gecos {

/// Deposits the low bits of idx into the set bits of mask, lowest first
/// (x86 PDEP; portable loop elsewhere). scatter_bits(k, mask) is the k-th
/// subset of mask in ascending numeric order.
inline std::uint64_t scatter_bits(std::uint64_t idx, std::uint64_t mask) {
#ifdef __BMI2__
  return _pdep_u64(idx, mask);
#else
  std::uint64_t out = 0;
  while (mask != 0) {
    const std::uint64_t low = mask & (~mask + 1);
    if (idx & 1) out |= low;
    idx >>= 1;
    mask ^= low;
  }
  return out;
#endif
}

/// Extracts the bits of x selected by mask into a compact low-bit word,
/// lowest mask bit first (x86 PEXT; portable loop elsewhere). Inverse of
/// scatter_bits on the mask bits: gather_bits(scatter_bits(k, m), m) == k.
inline std::uint64_t gather_bits(std::uint64_t x, std::uint64_t mask) {
#ifdef __BMI2__
  return _pext_u64(x, mask);
#else
  std::uint64_t out = 0;
  int i = 0;
  while (mask != 0) {
    const std::uint64_t low = mask & (~mask + 1);
    if (x & low) out |= std::uint64_t{1} << i;
    ++i;
    mask ^= low;
  }
  return out;
#endif
}

/// Trailing contiguous low bits of `mask` starting at bit 0 (the largest m
/// with m = 2^k - 1 and m & mask == m): the positions where a selected-state
/// walk advances through adjacent memory, i.e. the contiguous-run split the
/// SIMD kernel callers hand to wide (pointer, length) kernels.
inline std::uint64_t trailing_run_mask(std::uint64_t mask) {
  // mask | (mask+1) sets bit k (the first zero); the bits below it are the
  // run. ~mask & (mask + 1) isolates that first zero bit.
  const std::uint64_t first_zero = ~mask & (mask + 1);
  return first_zero - 1;
}

/// Next-larger word with the same popcount (Gosper's hack): the successor of
/// a fixed-Hamming-weight walk in ascending numeric order. Precondition:
/// x != 0 (the weight-0 walk has a single element and no successor). The
/// caller bounds the walk — past the largest n-bit member the result simply
/// carries into bit n and beyond.
inline std::uint64_t next_same_popcount(std::uint64_t x) {
  const std::uint64_t c = x & (~x + 1);
  const std::uint64_t r = x + c;
  return r | (((x ^ r) >> 2) / c);
}

}  // namespace gecos
