// Evolver: the shared time-propagation concept of the simulation layer.
//
// Two integrator families live in this tree — the product-formula Trotter
// engine (src/evolve/trotter.hpp, exact per-term exponentials, error from
// term splitting) and the Krylov projection evolver
// (src/solver/krylov_evolve.hpp, exact in a small subspace, error from
// subspace truncation). Both advance a statevector by x <- U(dt) x, so
// quench workloads are written against this one interface and can swap
// integrators with a constructor change: pick Trotter for many small steps
// with observables along the way, Krylov for few large high-accuracy steps.
// step() is const on every implementation; internal scratch is per-object,
// so concurrent callers must each own an evolver (same rule as
// StateVector::expectation).
#pragma once

#include <span>
#include <utility>

#include "state/state_vector.hpp"
#include "telemetry/progress.hpp"

namespace gecos {

/// Abstract propagator: advances a state by exp(-i dt H) for its Hamiltonian.
class Evolver {
 public:
  /// Evolvers are held and deleted through base pointers in
  /// integrator-agnostic workloads.
  virtual ~Evolver() = default;

  /// Qubit count n of the state the evolver advances.
  virtual std::size_t n_qubits() const = 0;

  /// One time step x <- U(dt) x in place, at the implementation's default
  /// settings (Trotter: configured product-formula order; Krylov: adaptive
  /// subspace). x.size() must be 2^n_qubits().
  virtual void step(std::span<cplx> x, double dt) const = 0;
  /// StateVector overload of step().
  void step(StateVector& x, double dt) const { step(x.amps(), dt); }

  /// `steps` equal steps of size t / steps. Implementations may override
  /// when they can do better than the plain loop (Krylov treats the step
  /// count as a hint and splits adaptively). Throws std::invalid_argument
  /// on steps < 1.
  virtual void evolve(std::span<cplx> x, double t, int steps) const;
  /// StateVector overload of evolve().
  void evolve(StateVector& x, double t, int steps) const {
    evolve(x.amps(), t, steps);
  }

  /// Installs a ProgressSink: the default evolve() loop reports phase
  /// "evolve" once per completed step, and implementations may add their
  /// own finer-grained phases (KrylovEvolver reports phase "krylov" per
  /// committed substep). An empty function disables reporting. The sink is
  /// invoked on the calling thread; it must not re-enter the evolver.
  void set_progress(telemetry::ProgressFn fn) { progress_ = std::move(fn); }

 protected:
  /// Progress sink shared with subclasses; empty by default (no reporting).
  telemetry::ProgressFn progress_;
};

}  // namespace gecos
