#include "evolve/evolver.hpp"

#include <stdexcept>

namespace gecos {

void Evolver::evolve(std::span<cplx> x, double t, int steps) const {
  if (steps < 1)
    throw std::invalid_argument("Evolver::evolve: steps must be >= 1");
  const double dt = t / steps;
  for (int i = 0; i < steps; ++i) step(x, dt);
}

}  // namespace gecos
