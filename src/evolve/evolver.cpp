#include "evolve/evolver.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace gecos {

void Evolver::evolve(std::span<cplx> x, double t, int steps) const {
  if (steps < 1)
    throw std::invalid_argument("Evolver::evolve: steps must be >= 1");
  const double dt = t / steps;
  if (!progress_) {
    for (int i = 0; i < steps; ++i) step(x, dt);
    return;
  }
  const std::uint64_t t0 = telemetry::now_ns();
  for (int i = 0; i < steps; ++i) {
    step(x, dt);
    telemetry::ProgressEvent ev;
    ev.phase = "evolve";
    ev.iteration = static_cast<std::size_t>(i + 1);
    ev.total = static_cast<std::size_t>(steps);
    ev.elapsed_s = static_cast<double>(telemetry::now_ns() - t0) * 1e-9;
    // Steps are uniform work, so the ETA is the linear extrapolation.
    ev.eta_s = ev.elapsed_s / (i + 1) * (steps - i - 1);
    progress_(ev);
  }
}

}  // namespace gecos
