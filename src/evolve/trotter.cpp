#include "evolve/trotter.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/bits.hpp"
#include "util/parallel.hpp"

namespace gecos {

TermExp::TermExp(const ScbTerm& term)
    : kernel_(term), add_hc_(term.add_hc()) {
  if (!term.is_valid_hamiltonian())
    throw std::invalid_argument("TermExp: term is not a valid Hamiltonian");
  diagonal_ = kernel_.flip == 0;
  // The h.c. partner state s ^ flip is itself selected exactly when no
  // flipped position carries an input constraint (i.e. no transition
  // factors); then A couples |s> <-> |s ^ flip> within the selected set.
  pair_in_sel_ = (kernel_.flip & kernel_.select_mask) == 0;
  if (diagonal_) {
    // H acts as d(s) = sgn(s) * d0 on selected states. Without h.c. the
    // validity check forces a real base; with h.c. the imaginary part
    // cancels against the conjugate term.
    d0_ = add_hc_ ? 2.0 * kernel_.base.real() : kernel_.base.real();
  } else {
    // On the pair (|s>, |s2 = s ^ flip>) the Hermitian block is
    // [[0, conj(h)], [h, 0]] with h(s) = <s2|H|s> = sgn(s) * h0:
    //   - bare Hermitian term (no h.c.): h0 = base (A alone is Hermitian);
    //   - h.c. with transitions: s2 is unselected, only A reaches |s2>,
    //     h0 = base;
    //   - h.c. without transitions: both A and A† couple the pair,
    //     h0 = base + (-1)^{pc(sign & flip)} * conj(base), because
    //     sgn(s2) = sgn(s) * (-1)^{pc(sign & flip)}.
    h0_ = kernel_.base;
    if (add_hc_ && pair_in_sel_) {
      const bool neg = std::popcount(kernel_.sign_mask & kernel_.flip) & 1;
      h0_ += neg ? -std::conj(kernel_.base) : std::conj(kernel_.base);
    }
  }
}

void TermExp::apply(double t, std::span<cplx> x) const {
  assert(std::has_single_bit(x.size()));
  const std::uint64_t dim_mask = x.size() - 1;
  if ((kernel_.select_val & ~dim_mask) != 0) return;  // nothing selected
  const std::uint64_t select_val = kernel_.select_val;
  const std::uint64_t sign_mask = kernel_.sign_mask;
  const std::uint64_t flip = kernel_.flip;

  if (diagonal_) {
    if (d0_ == 0.0) return;
    const cplx phase_pos = std::polar(1.0, -t * d0_);
    const cplx phase_neg = std::conj(phase_pos);
    const std::uint64_t free_mask = dim_mask & ~kernel_.select_mask;
    const std::size_t count = std::size_t{1} << std::popcount(free_mask);
    parallel_for(count, [&](std::size_t i0, std::size_t i1, int) {
      std::uint64_t sub = scatter_bits(i0, free_mask);
      for (std::size_t i = i0; i < i1; ++i) {
        const std::uint64_t s = sub | select_val;
        x[s] *= (std::popcount(sign_mask & s) & 1) ? phase_neg : phase_pos;
        sub = (sub - free_mask) & free_mask;
      }
    });
    return;
  }

  const double habs = std::abs(h0_);
  if (habs == 0.0) return;  // coupling cancelled: exp is the identity
  const double c = std::cos(t * habs);
  const double sn = std::sin(t * habs);
  const cplx unit = h0_ / habs;
  // exp(-i t [[0, conj(h)], [h, 0]]) = cos(t|h|) I - i sin(t|h|) H / |h|:
  //   x[s]  <- c x[s] + sgn * v * x[s2],   v = -i sin * conj(unit)
  //   x[s2] <- sgn * u * x[s] + c x[s2],   u = -i sin * unit
  const cplx u = cplx(0.0, -sn) * unit;
  const cplx v = cplx(0.0, -sn) * std::conj(unit);

  // Enumerate one representative s per coupled pair. When the partner is
  // itself selected, halve the walk by pinning the lowest flip bit (a free
  // bit, since no flipped position is constrained) to zero.
  std::uint64_t free_mask = dim_mask & ~kernel_.select_mask;
  if (pair_in_sel_) free_mask &= ~(flip & (~flip + 1));
  const std::size_t count = std::size_t{1} << std::popcount(free_mask);
  parallel_for(count, [&](std::size_t i0, std::size_t i1, int) {
    std::uint64_t sub = scatter_bits(i0, free_mask);
    for (std::size_t i = i0; i < i1; ++i) {
      const std::uint64_t s = sub | select_val;
      const std::uint64_t s2 = s ^ flip;
      const bool neg = std::popcount(sign_mask & s) & 1;
      const cplx xs = x[s], xs2 = x[s2];
      if (neg) {
        x[s] = c * xs - v * xs2;
        x[s2] = -u * xs + c * xs2;
      } else {
        x[s] = c * xs + v * xs2;
        x[s2] = u * xs + c * xs2;
      }
      sub = (sub - free_mask) & free_mask;
    }
  });
}

TrotterEvolver::TrotterEvolver(const ScbSum& h, double tol, int order)
    : order_(order) {
  n_ = h.num_qubits();
  if (n_ == 0)
    throw std::invalid_argument("TrotterEvolver: empty Hamiltonian");
  if (order != 1 && order != 2)
    throw std::invalid_argument("TrotterEvolver: order must be 1 or 2");
  const std::vector<ScbTerm> terms = h.hermitian_terms(tol);
  exps_.reserve(terms.size());
  for (const ScbTerm& t : terms) exps_.emplace_back(t);
}

void TrotterEvolver::step(std::span<cplx> x, double dt, int order) const {
  if (x.size() != (std::size_t{1} << n_))
    throw std::invalid_argument("TrotterEvolver::step: size mismatch");
  if (order == 1) {
    for (const TermExp& e : exps_) e.apply(dt, x);
  } else if (order == 2) {
    for (const TermExp& e : exps_) e.apply(dt / 2, x);
    for (std::size_t i = exps_.size(); i-- > 0;) exps_[i].apply(dt / 2, x);
  } else {
    throw std::invalid_argument("TrotterEvolver::step: order must be 1 or 2");
  }
}

void TrotterEvolver::step(StateVector& x, double dt, int order) const {
  step(x.amps(), dt, order);
}

void TrotterEvolver::evolve(std::span<cplx> x, double t, int steps,
                            int order) const {
  if (steps < 1)
    throw std::invalid_argument("TrotterEvolver::evolve: steps must be >= 1");
  const double dt = t / steps;
  for (int i = 0; i < steps; ++i) step(x, dt, order);
}

void TrotterEvolver::evolve(StateVector& x, double t, int steps,
                            int order) const {
  evolve(x.amps(), t, steps, order);
}

}  // namespace gecos
