#include "evolve/trotter.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "simd/kernels.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/bits.hpp"
#include "util/parallel.hpp"

namespace gecos {

namespace {

/// Runs shorter than 2^3 complex amplitudes are not worth the wide-kernel
/// call; the scalar walk handles them.
constexpr int kMinRunBits = 3;

/// Batch-group caps: at most this many rotations share one traversal, their
/// combined flip orbit stays within kMaxBatchFlipBits bits, and the full
/// cell (flip orbit x contiguous run) stays within kMaxBatchCellBits bits
/// (2^11 amplitudes = 32 KiB — L1-resident, which is where the intra-cell
/// reuse that makes batching a bandwidth win comes from).
constexpr std::size_t kMaxBatchMembers = 6;
constexpr int kMaxBatchFlipBits = 8;
constexpr int kMaxBatchCellBits = 11;

/// Upper bound on one fused diagonal group's table memory (angle + phase,
/// 24 bytes per basis state). Groups past it stay unfused singles.
constexpr std::size_t kDiagTableBudget = std::size_t{512} << 20;

/// Symbolic commutation tolerance: a Hermitian-part commutator with one-norm
/// at or below this is operator zero (the symbolic algebra produces exact
/// cancellations; the tolerance only absorbs coefficient rounding), so
/// reordering the two exponentials leaves the product-formula step exactly
/// unchanged.
constexpr double kCommuteTol = 1e-12;

}  // namespace

TermExp::TermExp(const ScbTerm& term)
    : kernel_(term), add_hc_(term.add_hc()) {
  if (!term.is_valid_hamiltonian())
    throw std::invalid_argument("TermExp: term is not a valid Hamiltonian");
  diagonal_ = kernel_.flip == 0;
  // The h.c. partner state s ^ flip is itself selected exactly when no
  // flipped position carries an input constraint (i.e. no transition
  // factors); then A couples |s> <-> |s ^ flip> within the selected set.
  pair_in_sel_ = (kernel_.flip & kernel_.select_mask) == 0;
  if (diagonal_) {
    // H acts as d(s) = sgn(s) * d0 on selected states. Without h.c. the
    // validity check forces a real base; with h.c. the imaginary part
    // cancels against the conjugate term.
    d0_ = add_hc_ ? 2.0 * kernel_.base.real() : kernel_.base.real();
  } else {
    // On the pair (|s>, |s2 = s ^ flip>) the Hermitian block is
    // [[0, conj(h)], [h, 0]] with h(s) = <s2|H|s> = sgn(s) * h0:
    //   - bare Hermitian term (no h.c.): h0 = base (A alone is Hermitian);
    //   - h.c. with transitions: s2 is unselected, only A reaches |s2>,
    //     h0 = base;
    //   - h.c. without transitions: both A and A† couple the pair,
    //     h0 = base + (-1)^{pc(sign & flip)} * conj(base), because
    //     sgn(s2) = sgn(s) * (-1)^{pc(sign & flip)}.
    h0_ = kernel_.base;
    if (add_hc_ && pair_in_sel_) {
      const bool neg = std::popcount(kernel_.sign_mask & kernel_.flip) & 1;
      h0_ += neg ? -std::conj(kernel_.base) : std::conj(kernel_.base);
    }
  }
}

void TermExp::apply(double t, std::span<cplx> x) const {
  assert(std::has_single_bit(x.size()));
  const std::uint64_t dim_mask = x.size() - 1;
  if ((kernel_.select_val & ~dim_mask) != 0) return;  // nothing selected
  const std::uint64_t select_val = kernel_.select_val;
  const std::uint64_t sign_mask = kernel_.sign_mask;
  const std::uint64_t flip = kernel_.flip;

  if (diagonal_) {
    if (d0_ == 0.0) return;
    const cplx phase_pos = std::polar(1.0, -t * d0_);
    const cplx phase_neg = std::conj(phase_pos);
    const std::uint64_t free_mask = dim_mask & ~kernel_.select_mask;

    // Contiguous-run split (same structure as TermKernel::apply_add): low
    // free bits outside sign_mask index runs of adjacent states with the
    // same phase, so each run is one wide scale sweep.
    const std::uint64_t run_mask = trailing_run_mask(free_mask & ~sign_mask);
    const int run_bits = std::popcount(run_mask);
    if (run_bits >= kMinRunBits) {
      const std::size_t run = std::size_t{1} << run_bits;
      const std::uint64_t outer_mask = free_mask & ~run_mask;
      const std::size_t count = std::size_t{1} << std::popcount(outer_mask);
      const simd::Kernels& kn = simd::active();
      parallel_for(
          count,
          [&](std::size_t i0, std::size_t i1, int) {
            std::uint64_t sub = scatter_bits(i0, outer_mask);
            for (std::size_t i = i0; i < i1; ++i) {
              const std::uint64_t s = sub | select_val;
              kn.scale(x.data() + s, run,
                       (std::popcount(sign_mask & s) & 1) ? phase_neg
                                                          : phase_pos);
              sub = (sub - outer_mask) & outer_mask;
            }
          },
          std::max<std::size_t>(1, kParallelGrain >> run_bits));
      return;
    }

    const std::size_t count = std::size_t{1} << std::popcount(free_mask);
    parallel_for(count, [&](std::size_t i0, std::size_t i1, int) {
      std::uint64_t sub = scatter_bits(i0, free_mask);
      for (std::size_t i = i0; i < i1; ++i) {
        const std::uint64_t s = sub | select_val;
        x[s] *= (std::popcount(sign_mask & s) & 1) ? phase_neg : phase_pos;
        sub = (sub - free_mask) & free_mask;
      }
    });
    return;
  }

  const double habs = std::abs(h0_);
  if (habs == 0.0) return;  // coupling cancelled: exp is the identity
  const double c = std::cos(t * habs);
  const double sn = std::sin(t * habs);
  const cplx unit = h0_ / habs;
  // exp(-i t [[0, conj(h)], [h, 0]]) = cos(t|h|) I - i sin(t|h|) H / |h|:
  //   x[s]  <- c x[s] + sgn * v * x[s2],   v = -i sin * conj(unit)
  //   x[s2] <- sgn * u * x[s] + c x[s2],   u = -i sin * unit
  const cplx u = cplx(0.0, -sn) * unit;
  const cplx v = cplx(0.0, -sn) * std::conj(unit);

  // Enumerate one representative s per coupled pair. When the partner is
  // itself selected, halve the walk by pinning the lowest flip bit (a free
  // bit, since no flipped position is constrained) to zero.
  std::uint64_t free_mask = dim_mask & ~kernel_.select_mask;
  if (pair_in_sel_) free_mask &= ~(flip & (~flip + 1));

  // Contiguous-run split: low free bits outside sign and flip give runs
  // with constant rotation data whose two streams s and s ^ flip both
  // advance through adjacent memory — one wide pair_rot per run.
  const std::uint64_t run_mask =
      trailing_run_mask(free_mask & ~sign_mask & ~flip);
  const int run_bits = std::popcount(run_mask);
  if (run_bits >= kMinRunBits) {
    const std::size_t run = std::size_t{1} << run_bits;
    const std::uint64_t outer_mask = free_mask & ~run_mask;
    const std::size_t count = std::size_t{1} << std::popcount(outer_mask);
    const simd::Kernels& kn = simd::active();
    parallel_for(
        count,
        [&](std::size_t i0, std::size_t i1, int) {
          std::uint64_t sub = scatter_bits(i0, outer_mask);
          for (std::size_t i = i0; i < i1; ++i) {
            const std::uint64_t s = sub | select_val;
            const bool neg = std::popcount(sign_mask & s) & 1;
            kn.pair_rot(x.data() + s, x.data() + (s ^ flip), run, c,
                        neg ? -u : u, neg ? -v : v);
            sub = (sub - outer_mask) & outer_mask;
          }
        },
        std::max<std::size_t>(1, kParallelGrain >> run_bits));
    return;
  }

  const std::size_t count = std::size_t{1} << std::popcount(free_mask);
  parallel_for(count, [&](std::size_t i0, std::size_t i1, int) {
    std::uint64_t sub = scatter_bits(i0, free_mask);
    for (std::size_t i = i0; i < i1; ++i) {
      const std::uint64_t s = sub | select_val;
      const std::uint64_t s2 = s ^ flip;
      const bool neg = std::popcount(sign_mask & s) & 1;
      const cplx xs = x[s], xs2 = x[s2];
      if (neg) {
        x[s] = c * xs - v * xs2;
        x[s2] = -u * xs + c * xs2;
      } else {
        x[s] = c * xs + v * xs2;
        x[s2] = u * xs + c * xs2;
      }
      sub = (sub - free_mask) & free_mask;
    }
  });
}

TrotterEvolver::TrotterEvolver(const ScbSum& h, double tol, int order,
                               bool fuse)
    : order_(order), fuse_(fuse) {
  n_ = h.num_qubits();
  if (n_ == 0)
    throw std::invalid_argument("TrotterEvolver: empty Hamiltonian");
  if (order != 1 && order != 2)
    throw std::invalid_argument("TrotterEvolver: order must be 1 or 2");
  std::vector<ScbTerm> terms = h.hermitian_terms(tol);
  // Canonical diagonal-major splitting order: all diagonal terms first
  // (mutually commuting, so their relative order is immaterial), then the
  // off-diagonal terms in input order. Any term order is an equally valid
  // product-formula splitting; this one groups the commuting diagonal
  // family into one block — the split-step convention — which the fusion
  // pass then collapses into a single phase-table sweep. Both the fused
  // and the unfused (fuse = false) paths share this order, so they realize
  // the SAME operator product.
  std::stable_partition(terms.begin(), terms.end(), [](const ScbTerm& t) {
    return TermKernel(t).flip == 0;
  });
  exps_.reserve(terms.size());
  for (const ScbTerm& t : terms) exps_.emplace_back(t);
  build_schedule(terms);
}

void TrotterEvolver::build_schedule(const std::vector<ScbTerm>& terms) {
  groups_.clear();
  diagonals_.clear();
  const std::size_t nt = exps_.size();
  if (!fuse_) {
    groups_.resize(nt);
    for (std::size_t t = 0; t < nt; ++t) groups_[t].members = {t};
    return;
  }

  // Symbolic Hermitian parts for the commutation tests that make reordering
  // legal: two exponentials may swap exactly when their Hermitian terms
  // commute as operators, which the SCB algebra decides symbolically.
  std::vector<ScbSum> hsums;
  hsums.reserve(nt);
  for (const ScbTerm& t : terms) {
    ScbSum s(n_);
    s.add(t);
    hsums.push_back(std::move(s));
  }
  const auto commutes = [&](std::size_t a, std::size_t b) {
    if (exps_[a].diagonal() && exps_[b].diagonal()) return true;
    const TermKernel& ka = exps_[a].kernel();
    const TermKernel& kb = exps_[b].kernel();
    const std::uint64_t sa = ka.flip | ka.select_mask | ka.sign_mask;
    const std::uint64_t sb = kb.flip | kb.select_mask | kb.sign_mask;
    if ((sa & sb) == 0) return true;  // disjoint qubit support
    return hsums[a].commutator(hsums[b]).one_norm() <= kCommuteTol;
  };

  // Greedy ASAP scheduling. Each term scans back for the LAST group holding
  // a member it does not commute with (the barrier — the term cannot move
  // past it without changing the operator product), then joins the earliest
  // compatible group after the barrier, else opens a new group at the end.
  // Joining appends the term after the target group's members and before
  // every later group — all verified commuting — so the flattened schedule
  // is reachable from the input order by swaps of commuting exponentials
  // and the step operator is EXACTLY the unfused one.
  struct Cand {
    std::vector<std::size_t> members;
    bool all_diag = false;
    std::uint64_t flip_union = 0;
  };
  std::vector<Cand> cands;
  for (std::size_t t = 0; t < nt; ++t) {
    const TermKernel& k = exps_[t].kernel();
    const bool diag = exps_[t].diagonal();
    std::size_t barrier = 0;  // groups [barrier, end) all commute with t
    for (std::size_t g = cands.size(); g-- > 0;) {
      bool ok = true;
      for (std::size_t m : cands[g].members)
        if (!commutes(t, m)) {
          ok = false;
          break;
        }
      if (!ok) {
        barrier = g + 1;
        break;
      }
    }
    bool joined = false;
    for (std::size_t g = barrier; g < cands.size() && !joined; ++g) {
      Cand& c = cands[g];
      if (diag != c.all_diag) continue;
      if (diag) {
        c.members.push_back(t);
        joined = true;
        continue;
      }
      // Rotation batch join: the candidate's flip must stay out of every
      // member's flip and select support (and vice versa) so the batch
      // traversal's per-cell pair enumerations never interleave — sign
      // overlap is fine, the sign is read from the actual state.
      if (c.members.size() >= kMaxBatchMembers) continue;
      if (std::popcount(c.flip_union | k.flip) > kMaxBatchFlipBits) continue;
      bool disjoint = true;
      for (std::size_t m : c.members) {
        const TermKernel& km = exps_[m].kernel();
        if ((k.flip & (km.flip | km.select_mask)) != 0 ||
            (km.flip & (k.flip | k.select_mask)) != 0) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      c.members.push_back(t);
      c.flip_union |= k.flip;
      joined = true;
    }
    if (!joined) cands.push_back({{t}, diag, k.flip});
  }

  // Materialize the groups. Diagonal groups fuse into a phase table only
  // when the members' combined selected coverage beats the fused sweep's
  // one-full-pass cost by ~1.5x (and the table fits the budget); otherwise
  // they demote to singles in scheduled order, which is still the exact
  // operator (diagonals commute).
  const std::size_t dim = std::size_t{1} << n_;
  const std::uint64_t dim_mask = dim - 1;
  for (Cand& c : cands) {
    if (c.all_diag && c.members.size() >= 2 &&
        dim * (sizeof(double) + sizeof(cplx)) <= kDiagTableBudget) {
      double cov = 0.0;
      for (std::size_t m : c.members) {
        const TermKernel& k = exps_[m].kernel();
        if (exps_[m].d0() == 0.0 || (k.select_val & ~dim_mask) != 0) continue;
        cov += std::ldexp(1.0, static_cast<int>(n_) -
                                   std::popcount(k.select_mask));
      }
      if (2.0 * cov >= 3.0 * static_cast<double>(dim)) {
        FusedDiagonal fd;
        fd.angle.assign(dim, 0.0);
        for (std::size_t m : c.members) {
          const TermKernel& k = exps_[m].kernel();
          const double d0 = exps_[m].d0();
          if (d0 == 0.0 || (k.select_val & ~dim_mask) != 0) continue;
          const std::uint64_t free_mask = dim_mask & ~k.select_mask;
          const std::uint64_t select_val = k.select_val;
          const std::uint64_t sign_mask = k.sign_mask;
          const std::size_t count = std::size_t{1}
                                    << std::popcount(free_mask);
          double* angle = fd.angle.data();
          parallel_for(count, [&](std::size_t i0, std::size_t i1, int) {
            std::uint64_t sub = scatter_bits(i0, free_mask);
            for (std::size_t i = i0; i < i1; ++i) {
              const std::uint64_t s = sub | select_val;
              angle[s] += (std::popcount(sign_mask & s) & 1) ? -d0 : d0;
              sub = (sub - free_mask) & free_mask;
            }
          });
        }
        fd.phase.assign(dim, cplx(0.0));
        diagonals_.push_back(std::move(fd));
        Group g;
        g.kind = Group::Kind::diagonal;
        g.members = std::move(c.members);
        g.diag_index = static_cast<int>(diagonals_.size()) - 1;
        groups_.push_back(std::move(g));
        continue;
      }
    }
    if (!c.all_diag && c.members.size() >= 2) {
      Group g;
      g.kind = Group::Kind::batch;
      g.members = std::move(c.members);
      g.flip_union = c.flip_union;
      groups_.push_back(std::move(g));
      continue;
    }
    for (std::size_t m : c.members) {
      Group g;
      g.members = {m};
      groups_.push_back(std::move(g));
    }
  }
}

void TrotterEvolver::apply_group(const Group& g, double dt, std::span<cplx> x,
                                 bool reverse) const {
  switch (g.kind) {
    case Group::Kind::diagonal:
      // Commuting phases: member order is immaterial, forward == reverse.
      apply_fused_diagonal(diagonals_[g.diag_index], dt, x);
      return;
    case Group::Kind::batch:
      apply_batch(g, dt, x, reverse);
      return;
    case Group::Kind::single:
      break;
  }
  if (reverse) {
    for (std::size_t i = g.members.size(); i-- > 0;)
      exps_[g.members[i]].apply(dt, x);
  } else {
    for (std::size_t m : g.members) exps_[m].apply(dt, x);
  }
}

void TrotterEvolver::apply_fused_diagonal(const FusedDiagonal& fd, double dt,
                                          std::span<cplx> x) const {
  assert(x.size() == fd.angle.size());
  {
    std::scoped_lock lock(phase_mutex_);
    if (!fd.phase_valid || fd.cached_dt != dt) {
      const double* angle = fd.angle.data();
      cplx* phase = fd.phase.data();
      parallel_for(fd.phase.size(), [&](std::size_t lo, std::size_t hi, int) {
        for (std::size_t s = lo; s < hi; ++s)
          phase[s] = std::polar(1.0, -dt * angle[s]);
      });
      fd.cached_dt = dt;
      fd.phase_valid = true;
    }
  }
  const simd::Kernels& kn = simd::active();
  parallel_for(x.size(), [&](std::size_t lo, std::size_t hi, int) {
    kn.phase_mul(x.data() + lo, fd.phase.data() + lo, hi - lo);
  });
}

void TrotterEvolver::apply_batch(const Group& g, double dt, std::span<cplx> x,
                                 bool reverse) const {
  const std::uint64_t dim_mask = x.size() - 1;
  // Per-member rotation data in apply order (a handful of cos/sin per
  // apply — nothing here allocates).
  struct Member {
    std::uint64_t flip = 0;
    std::uint64_t sign = 0;
    std::uint64_t sel_outer_mask = 0;  // select bits outside the cell
    std::uint64_t sel_outer_val = 0;
    std::uint64_t inner = 0;   // cell bits this member enumerates pairs over
    std::uint64_t forced = 0;  // cell bits pinned by transition selection
    double c = 1.0;
    cplx u, v;
    bool active = false;
  };
  std::array<Member, kMaxBatchMembers> md{};
  const std::size_t nm = g.members.size();
  std::uint64_t support = 0;
  bool any = false;
  for (std::size_t j = 0; j < nm; ++j) {
    const TermExp& e = exps_[g.members[reverse ? nm - 1 - j : j]];
    const TermKernel& k = e.kernel();
    if ((k.select_val & ~dim_mask) != 0) continue;  // never selected
    const double habs = std::abs(e.h0());
    if (habs == 0.0) continue;  // coupling cancelled: identity
    Member& m = md[j];
    const double sn = std::sin(dt * habs);
    const cplx unit = e.h0() / habs;
    m.c = std::cos(dt * habs);
    m.u = cplx(0.0, -sn) * unit;
    m.v = cplx(0.0, -sn) * std::conj(unit);
    m.flip = k.flip;
    m.sign = k.sign_mask;
    // The join rule keeps every member's select/flip support out of the
    // other members' flips, so the non-flip select bits live outside the
    // cell and test once per cell; flip-coincident select bits (transition
    // factors) pin their cell bits instead.
    m.sel_outer_mask = k.select_mask & ~k.flip;
    m.sel_outer_val = k.select_val & ~k.flip;
    const std::uint64_t pivot =
        e.pair_in_sel() ? (k.flip & (~k.flip + 1)) : 0;
    m.inner = g.flip_union & ~k.select_mask & ~pivot;
    m.forced = k.select_val & k.flip;
    m.active = true;
    any = true;
    support |= k.flip | k.select_mask | k.sign_mask;
  }
  if (!any) return;

  // Cells are orbits of the combined flip masks extended by a contiguous
  // low-bit run outside every member's support: every rotation of the batch
  // reads and writes only within one cell, so cells parallelize race-free
  // and the traversal touches each amplitude's cache line once.
  std::uint64_t run_mask =
      trailing_run_mask(dim_mask & ~support & ~g.flip_union);
  int run_bits = std::popcount(run_mask);
  const int flip_bits = std::popcount(g.flip_union);
  if (run_bits > kMaxBatchCellBits - flip_bits) {
    run_bits = std::max(0, kMaxBatchCellBits - flip_bits);
    run_mask = (std::uint64_t{1} << run_bits) - 1;
  }
  const std::size_t run = std::size_t{1} << run_bits;
  const std::uint64_t outer_mask = dim_mask & ~g.flip_union & ~run_mask;
  const std::size_t cells = std::size_t{1} << std::popcount(outer_mask);
  const int cell_bits = flip_bits + run_bits;
  // Short runs rotate inline (same scalar formulas as TermExp's fallback
  // walk): a per-pair indirect kernel call would dominate the arithmetic.
  const bool wide = run_bits >= kMinRunBits;
  const simd::Kernels& kn = simd::active();
  parallel_for(
      cells,
      [&](std::size_t c0, std::size_t c1, int) {
        std::uint64_t outer = scatter_bits(c0, outer_mask);
        for (std::size_t ci = c0; ci < c1; ++ci) {
          for (std::size_t j = 0; j < nm; ++j) {
            const Member& m = md[j];
            if (!m.active) continue;
            if ((outer & m.sel_outer_mask) != m.sel_outer_val) continue;
            std::uint64_t isub = 0;
            do {
              const std::uint64_t s = outer | isub | m.forced;
              const bool neg = std::popcount(m.sign & s) & 1;
              const cplx u = neg ? -m.u : m.u;
              const cplx v = neg ? -m.v : m.v;
              cplx* a = x.data() + s;
              cplx* b = x.data() + (s ^ m.flip);
              if (wide) {
                kn.pair_rot(a, b, run, m.c, u, v);
              } else {
                for (std::size_t r = 0; r < run; ++r) {
                  const cplx xa = a[r], xb = b[r];
                  a[r] = m.c * xa + v * xb;
                  b[r] = u * xa + m.c * xb;
                }
              }
              isub = (isub - m.inner) & m.inner;
            } while (isub != 0);
          }
          outer = (outer - outer_mask) & outer_mask;
        }
      },
      std::max<std::size_t>(1, kParallelGrain >> cell_bits));
}

double TrotterEvolver::step_traffic_bytes(int order) const {
  const double dim = std::ldexp(1.0, static_cast<int>(n_));
  double sweep = 0.0;
  for (const Group& g : groups_) {
    switch (g.kind) {
      case Group::Kind::diagonal:
        // One full pass: amplitude read + write (32 B) + phase read (16 B).
        sweep += dim * 48.0;
        break;
      case Group::Kind::batch: {
        // One cell traversal; intra-cell reuse moves each touched amplitude
        // through DRAM once (read + write), bounded by the full vector.
        double amps = 0.0;
        for (std::size_t m : g.members) {
          const TermKernel& k = exps_[m].kernel();
          amps += std::ldexp(
              2.0, static_cast<int>(n_) - std::popcount(k.select_mask) -
                       (exps_[m].pair_in_sel() ? 1 : 0));
        }
        sweep += std::min(amps, dim) * 32.0;
        break;
      }
      case Group::Kind::single: {
        const TermExp& e = exps_[g.members[0]];
        const double cov =
            std::ldexp(1.0, static_cast<int>(n_) -
                                std::popcount(e.kernel().select_mask));
        // Diagonal: selected amplitudes read + written. Off-diagonal: both
        // pair amplitudes read + written per enumerated pair.
        sweep += e.diagonal() ? cov * 32.0
                              : (e.pair_in_sel() ? cov / 2.0 : cov) * 64.0;
        break;
      }
    }
  }
  return (order == 2 ? 2.0 : 1.0) * sweep;
}

void TrotterEvolver::step(std::span<cplx> x, double dt, int order) const {
  if (x.size() != (std::size_t{1} << n_))
    throw std::invalid_argument("TrotterEvolver::step: size mismatch");
  GECOS_SPAN("trotter.step");
  if (telemetry::metrics_enabled()) {
    const std::uint64_t sweeps =
        static_cast<std::uint64_t>(groups_.size()) * (order == 2 ? 2 : 1);
    telemetry::count(telemetry::Counter::kernel_sweeps, sweeps);
    telemetry::count(telemetry::Counter::amplitudes_touched, x.size());
    telemetry::count(telemetry::Counter::bytes_moved,
                     static_cast<std::uint64_t>(step_traffic_bytes(order)));
  }
  if (order == 1) {
    for (const Group& g : groups_) apply_group(g, dt, x, false);
  } else if (order == 2) {
    for (const Group& g : groups_) apply_group(g, dt / 2, x, false);
    for (std::size_t i = groups_.size(); i-- > 0;)
      apply_group(groups_[i], dt / 2, x, true);
  } else {
    throw std::invalid_argument("TrotterEvolver::step: order must be 1 or 2");
  }
}

void TrotterEvolver::step(StateVector& x, double dt, int order) const {
  step(x.amps(), dt, order);
}

void TrotterEvolver::evolve(std::span<cplx> x, double t, int steps,
                            int order) const {
  if (steps < 1)
    throw std::invalid_argument("TrotterEvolver::evolve: steps must be >= 1");
  const double dt = t / steps;
  for (int i = 0; i < steps; ++i) step(x, dt, order);
}

void TrotterEvolver::evolve(StateVector& x, double t, int steps,
                            int order) const {
  evolve(x.amps(), t, steps, order);
}

}  // namespace gecos
