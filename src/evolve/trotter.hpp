// Trotter-Suzuki time evolution with exact matrix-free SCB-term exponentials.
//
// The paper's direct strategy rests on one structural fact: a Hermitian SCB
// term H_t = c A + conj(c) A† (A a bare SCB product) acts on any basis state
// either as a phase (diagonal terms) or as a 2x2 rotation coupling |s> with
// |s ^ flip| — so exp(-i t H_t) has a CLOSED FORM touching only the
// 2^(n-k) selected amplitudes (k = #projector/transition factors), no matrix
// exponential and no scratch buffer. TermExp compiles one such exponential;
// TrotterEvolver chains them into first-order and second-order (Strang)
// product-formula steps over ScbSum::hermitian_terms(). Each step is a
// sequence of in-place parallel sweeps with zero per-step allocation. See
// DESIGN.md "Exact SCB-term exponentials" for the derivation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "evolve/evolver.hpp"
#include "ops/scb_sum.hpp"
#include "ops/term.hpp"
#include "state/state_vector.hpp"

namespace gecos {

/// Compiled exact exponential exp(-i t H) of one Hermitian ScbTerm
/// H = coeff * A (+ h.c. when the term's flag is set).
class TermExp {
 public:
  /// Compiles the term; throws std::invalid_argument unless
  /// term.is_valid_hamiltonian() (the exponential of a non-Hermitian term is
  /// not unitary and has no closed form here).
  explicit TermExp(const ScbTerm& term);

  /// Qubit count of the compiled term.
  std::size_t n_qubits() const { return kernel_.num_qubits; }

  /// x <- exp(-i t H) x in place, touching only the selected amplitudes.
  /// Parallelized over chunks of the selected-state walk; each basis-state
  /// pair is owned by exactly one chunk, so the sweep is race-free.
  void apply(double t, std::span<cplx> x) const;

 private:
  TermKernel kernel_;  // bare-product masks and base amplitude (coeff folded)
  bool add_hc_ = false;
  bool diagonal_ = false;    // flip == 0: pure phase on selected states
  bool pair_in_sel_ = false; // partner s ^ flip is itself a selected state
  double d0_ = 0.0;          // diagonal: phase angle magnitude per sign
  cplx h0_;                  // off-diagonal: block coupling h(s) = sgn(s)*h0
};

/// Product-formula propagator for a Hermitian ScbSum (an Evolver, so quench
/// workloads can swap it against the Krylov integrator).
class TrotterEvolver : public Evolver {
 public:
  /// Gathers h.hermitian_terms(tol) (throws if the sum is not Hermitian)
  /// and compiles one TermExp per term. `order` (1 or 2) is the
  /// product-formula order used by the two-argument Evolver entry points.
  explicit TrotterEvolver(const ScbSum& h, double tol = 1e-12, int order = 2);

  /// Qubit count and number of compiled term exponentials.
  std::size_t n_qubits() const override { return n_; }
  std::size_t num_terms() const { return exps_.size(); }

  /// Evolver step at the configured default order.
  void step(std::span<cplx> x, double dt) const override {
    step(x, dt, order_);
  }
  /// StateVector / evolve entry points of the Evolver base.
  using Evolver::evolve;
  using Evolver::step;

  /// One Trotter step x <- U(dt) x in place. order 1: prod_t exp(-i dt H_t);
  /// order 2 (Strang): forward half-sweep then reverse half-sweep, error
  /// O(dt^3) per step. Throws on any other order.
  void step(std::span<cplx> x, double dt, int order) const;
  /// StateVector overload of the explicit-order step().
  void step(StateVector& x, double dt, int order) const;

  /// steps equal Trotter steps of size t / steps: x <- U(dt)^steps x.
  /// Global error O(dt) for order 1, O(dt^2) for order 2.
  void evolve(std::span<cplx> x, double t, int steps, int order) const;
  /// StateVector overload of the explicit-order evolve().
  void evolve(StateVector& x, double t, int steps, int order) const;

 private:
  std::size_t n_ = 0;
  int order_ = 2;
  std::vector<TermExp> exps_;
};

}  // namespace gecos
