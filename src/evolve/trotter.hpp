// Trotter-Suzuki time evolution with exact matrix-free SCB-term exponentials.
//
// The paper's direct strategy rests on one structural fact: a Hermitian SCB
// term H_t = c A + conj(c) A† (A a bare SCB product) acts on any basis state
// either as a phase (diagonal terms) or as a 2x2 rotation coupling |s> with
// |s ^ flip| — so exp(-i t H_t) has a CLOSED FORM touching only the
// 2^(n-k) selected amplitudes (k = #projector/transition factors), no matrix
// exponential and no scratch buffer. TermExp compiles one such exponential;
// TrotterEvolver chains them into first-order and second-order (Strang)
// product-formula steps over ScbSum::hermitian_terms(). Each step is a
// sequence of in-place parallel sweeps with zero per-step allocation. See
// DESIGN.md "Exact SCB-term exponentials" for the derivation.
//
// Fusion passes: a product-formula sweep is memory-bound — every term
// exponential traverses the statevector once — so TrotterEvolver schedules
// the term sequence into fused GROUPS at construction (only reordering
// across terms whose Hermitian parts symbolically commute, which leaves the
// operator product exactly unchanged):
//
//   * diagonal groups — all commuting diagonal exponentials collapse into
//     ONE precomputed phase table e^{-i dt A[s]} (the angle table sums the
//     members' +-d0 contributions; the phase table is cached per dt and
//     rebuilt allocation-free when dt changes) applied in a single sweep;
//   * rotation batches — pair rotations whose flips stay out of each
//     other's flip/select support are applied cell-by-cell (cells = orbits
//     of the combined flip masks, so cells never share amplitudes across
//     parallel chunks) in one traversal instead of one sweep per term.
//
// See DESIGN.md "SIMD kernels & runtime dispatch" for the legality rules.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "evolve/evolver.hpp"
#include "ops/scb_sum.hpp"
#include "ops/term.hpp"
#include "state/state_vector.hpp"

namespace gecos {

/// Compiled exact exponential exp(-i t H) of one Hermitian ScbTerm
/// H = coeff * A (+ h.c. when the term's flag is set).
class TermExp {
 public:
  /// Compiles the term; throws std::invalid_argument unless
  /// term.is_valid_hamiltonian() (the exponential of a non-Hermitian term is
  /// not unitary and has no closed form here).
  explicit TermExp(const ScbTerm& term);

  /// Qubit count of the compiled term.
  std::size_t n_qubits() const { return kernel_.num_qubits; }

  /// x <- exp(-i t H) x in place, touching only the selected amplitudes.
  /// Parallelized over chunks of the selected-state walk; each basis-state
  /// pair is owned by exactly one chunk, so the sweep is race-free.
  void apply(double t, std::span<cplx> x) const;

  /// Compiled mask kernel of the bare product (coeff folded into base) —
  /// the structural data the fusion scheduler groups on.
  const TermKernel& kernel() const { return kernel_; }
  /// True when the term is diagonal (pure phase on selected states).
  bool diagonal() const { return diagonal_; }
  /// True when the h.c. partner state s ^ flip is itself selected.
  bool pair_in_sel() const { return pair_in_sel_; }
  /// Diagonal phase angle per sign (0 for off-diagonal terms).
  double d0() const { return d0_; }
  /// Off-diagonal pair coupling h(s) = sgn(s) * h0 (0 for diagonal terms).
  cplx h0() const { return h0_; }

 private:
  TermKernel kernel_;  // bare-product masks and base amplitude (coeff folded)
  bool add_hc_ = false;
  bool diagonal_ = false;    // flip == 0: pure phase on selected states
  bool pair_in_sel_ = false; // partner s ^ flip is itself a selected state
  double d0_ = 0.0;          // diagonal: phase angle magnitude per sign
  cplx h0_;                  // off-diagonal: block coupling h(s) = sgn(s)*h0
};

/// Product-formula propagator for a Hermitian ScbSum (an Evolver, so quench
/// workloads can swap it against the Krylov integrator).
class TrotterEvolver : public Evolver {
 public:
  /// Gathers h.hermitian_terms(tol) (throws if the sum is not Hermitian)
  /// and compiles one TermExp per term. `order` (1 or 2) is the
  /// product-formula order used by the two-argument Evolver entry points.
  /// `fuse` enables the construction-time fusion scheduler (see the file
  /// comment); fuse = false keeps one sweep per term in input order — the
  /// reference the fused path is benchmarked and tested against.
  explicit TrotterEvolver(const ScbSum& h, double tol = 1e-12, int order = 2,
                          bool fuse = true);

  /// Qubit count and number of compiled term exponentials.
  std::size_t n_qubits() const override { return n_; }
  std::size_t num_terms() const { return exps_.size(); }
  /// Scheduled fused groups per sweep (== num_terms() when fuse = false).
  std::size_t num_groups() const { return groups_.size(); }
  /// Whether the fusion scheduler was enabled at construction.
  bool fused() const { return fuse_; }
  /// Estimated bytes of statevector traffic per step at the given order
  /// (reads + writes of amplitudes and phase tables; the bench roofline
  /// model divides this by measured step time).
  double step_traffic_bytes(int order) const;

  /// Evolver step at the configured default order.
  void step(std::span<cplx> x, double dt) const override {
    step(x, dt, order_);
  }
  /// StateVector / evolve entry points of the Evolver base.
  using Evolver::evolve;
  using Evolver::step;

  /// One Trotter step x <- U(dt) x in place. order 1: prod_t exp(-i dt H_t);
  /// order 2 (Strang): forward half-sweep then reverse half-sweep, error
  /// O(dt^3) per step. Throws on any other order.
  void step(std::span<cplx> x, double dt, int order) const;
  /// StateVector overload of the explicit-order step().
  void step(StateVector& x, double dt, int order) const;

  /// steps equal Trotter steps of size t / steps: x <- U(dt)^steps x.
  /// Global error O(dt) for order 1, O(dt^2) for order 2.
  void evolve(std::span<cplx> x, double t, int steps, int order) const;
  /// StateVector overload of the explicit-order evolve().
  void evolve(StateVector& x, double t, int steps, int order) const;

 private:
  // One fused diagonal group: angle[s] sums the members' signed d0
  // contributions over the full dimension; phase caches e^{-i dt angle[s]}
  // for the last dt (both sized at construction, so steps never allocate —
  // a dt change refills in place). cached_dt guards the cache; phases are
  // mutable because caching does not change the evolver's value.
  struct FusedDiagonal {
    std::vector<double> angle;
    mutable std::vector<cplx> phase;
    mutable double cached_dt = 0.0;
    mutable bool phase_valid = false;
  };
  // One scheduled group of the term sequence (kind single = plain
  // TermExp::apply; diagonal = one phase-table sweep over diagonals_[
  // diag_index]; batch = disjoint-support rotations applied cell-by-cell).
  struct Group {
    enum class Kind { single, diagonal, batch };
    Kind kind = Kind::single;
    std::vector<std::size_t> members;  // indices into exps_, apply order
    std::uint64_t flip_union = 0;      // batch: union of member flips
    int diag_index = -1;               // diagonal: index into diagonals_
  };

  /// Builds groups_ (and diagonals_) from the compiled exponentials; the
  /// `terms` are the Hermitian terms the exponentials came from, used for
  /// the symbolic commutation tests that make reordering legal.
  void build_schedule(const std::vector<ScbTerm>& terms);
  /// Applies one scheduled group (members reversed when reverse, for the
  /// Strang back-sweep).
  void apply_group(const Group& g, double dt, std::span<cplx> x,
                   bool reverse) const;
  /// One phase-table sweep of a fused diagonal group (rebuilds the cached
  /// phases in place when dt differs from the cached one).
  void apply_fused_diagonal(const FusedDiagonal& fd, double dt,
                            std::span<cplx> x) const;
  /// One cell-parallel traversal applying every rotation of a batch group.
  void apply_batch(const Group& g, double dt, std::span<cplx> x,
                   bool reverse) const;

  std::size_t n_ = 0;
  int order_ = 2;
  bool fuse_ = true;
  std::vector<TermExp> exps_;
  std::vector<Group> groups_;
  std::vector<FusedDiagonal> diagonals_;
  // Guards the lazy per-dt phase-table rebuild so concurrent const steps
  // (same contract as ScbSum's kernel cache) stay safe.
  mutable std::mutex phase_mutex_;
};

}  // namespace gecos
