// Power-iteration spectral bounds for Hermitian LinearOperators.
//
// The kernel-polynomial method (src/spectral/kpm.hpp) needs the spectrum of
// H mapped into (-1, 1) before any Chebyshev recurrence runs, and the
// continued-fraction evaluator needs a sane default frequency window. Both
// come from the same place: a matrix-free power iteration through
// LinearOperator::apply_add — the operator sibling of the dense
// Matrix::norm2_est estimate. Two runs bracket the spectrum: the first
// converges on the eigenvalue of largest magnitude (the spectral radius,
// with its sign recovered from the Rayleigh quotient), the second power-
// iterates the shifted operator H - lambda_1 I, whose dominant eigenvalue is
// the point of spec(H) farthest from lambda_1 — i.e. the opposite end.
// Rayleigh quotients of a Hermitian operator always lie inside the spectrum,
// so the raw estimates are inner bounds; the returned interval is widened by
// a caller-controlled pad factor to make it an outer bracket in practice
// (KPM maps it strictly inside [-1, 1] on top of that).
#pragma once

#include <cstdint>

#include "ops/linear_op.hpp"

namespace gecos {

/// Knobs for estimate_spectral_bounds.
struct SpectralBoundsOptions {
  int iters = 50;                ///< power-iteration steps per run (>= 1)
  std::uint64_t seed = 20260808; ///< start-vector seed (reproducible)
  double pad = 0.05;             ///< fractional widening of the raw interval
};

/// Spectral bracket returned by estimate_spectral_bounds.
struct SpectralBounds {
  double e_min = 0.0;        ///< padded lower bound on spec(H)
  double e_max = 0.0;        ///< padded upper bound on spec(H)
  std::size_t matvecs = 0;   ///< operator applications spent
  /// Interval midpoint (E_max + E_min) / 2 — the KPM shift b.
  double center() const { return 0.5 * (e_max + e_min); }
  /// Interval half-width (E_max - E_min) / 2 — the KPM scale a.
  double half_width() const { return 0.5 * (e_max - e_min); }
};

/// Estimates [E_min, E_max] of a HERMITIAN operator by two seeded power
/// iterations (H, then H - lambda_1 I), widened by opts.pad. The estimate is
/// statistical-free and deterministic for a fixed seed and thread count; a
/// pathological start vector exactly orthogonal to the extremal eigenvector
/// is measure-zero and broken by the Gaussian start. Throws
/// std::invalid_argument on iters < 1 or an operator with dim() < 2.
SpectralBounds estimate_spectral_bounds(const LinearOperator& h,
                                        SpectralBoundsOptions opts = {});

}  // namespace gecos
