#include "spectral/kpm.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <utility>

#include "linalg/blas1.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace gecos {

KpmDos::KpmDos(const LinearOperator& h, KpmOptions opts)
    : op_(h), opts_(opts), dim_(h.dim()) {
  if (opts_.num_moments < 2)
    throw std::invalid_argument("KpmDos: num_moments must be >= 2");
  if (dim_ < 2)
    throw std::invalid_argument("KpmDos: operator dimension must be >= 2");
  if (opts_.e_min < opts_.e_max) {
    e_min_ = opts_.e_min;
    e_max_ = opts_.e_max;
  } else {
    const SpectralBounds b = estimate_spectral_bounds(h, opts_.bounds);
    e_min_ = b.e_min;
    e_max_ = b.e_max;
  }
  shift_ = 0.5 * (e_max_ + e_min_);
  scale_ = 0.5 * (e_max_ - e_min_);
  if (!(scale_ > 0.0))
    throw std::invalid_argument("KpmDos: spectral bounds must have e_min < e_max");
  t0_.resize(dim_);
  t1_.resize(dim_);
  mu_.resize(opts_.num_moments);

  // Jackson damping factors g_k: the positive resolution kernel of width
  // ~ pi/M that replaces the Gibbs-ringing sharp truncation.
  const double m1 = static_cast<double>(opts_.num_moments) + 1.0;
  const double cot = std::cos(M_PI / m1) / std::sin(M_PI / m1);
  jackson_.resize(opts_.num_moments);
  for (std::size_t k = 0; k < opts_.num_moments; ++k) {
    const double kd = static_cast<double>(k);
    jackson_[k] =
        ((m1 - kd) * std::cos(M_PI * kd / m1) + std::sin(M_PI * kd / m1) * cot) /
        m1;
  }
}

void KpmDos::apply_scaled(std::span<const cplx> x, std::span<cplx> y) const {
  vec_fill(y, cplx(0.0));
  op_.apply_add(x, y, cplx(1.0 / scale_));
  vec_axpy(y, cplx(-shift_ / scale_), x);
}

std::size_t KpmDos::accumulate_moments() {
  const std::size_t m = opts_.num_moments;
  const double n0 = vec_norm(t0_);
  const double m0 = n0 * n0;
  apply_scaled(t0_, t1_);
  std::size_t matvecs = 1;
  const double m1 = vec_dot(t0_, t1_).real();
  mu_[0] += m0;
  mu_[1] += m1;
  // Two moments per matvec: mu_{2k} and mu_{2k+1} come from the recurrence
  // pair (T_k r, T_{k+1} r) via 2 T_j T_k = T_{j+k} + T_{|j-k|}.
  for (std::size_t k = 1; 2 * k < m; ++k) {
    const double nk = vec_norm(t1_);
    mu_[2 * k] += 2.0 * nk * nk - m0;
    if (2 * k + 1 >= m) break;
    // t0 <- 2 H~ t1 - t0 in one fused sweep plus one apply_add, then swap:
    // (t0, t1) becomes (T_k r, T_{k+1} r).
    vec_axpby(t0_, cplx(-2.0 * shift_ / scale_), t1_, cplx(-1.0));
    op_.apply_add(t1_, t0_, cplx(2.0 / scale_));
    ++matvecs;
    std::swap(t0_, t1_);
    mu_[2 * k + 1] += 2.0 * vec_dot(t1_, t0_).real() - m1;
  }
  return matvecs;
}

std::size_t KpmDos::compute() {
  GECOS_SPAN("spectral.kpm.compute");
  std::fill(mu_.begin(), mu_.end(), 0.0);
  std::size_t matvecs = 0;
  std::size_t samples = 0;
  const std::size_t total = opts_.num_random == 0 ? dim_ : opts_.num_random;
  const std::uint64_t t0ns = opts_.progress ? telemetry::now_ns() : 0;
  const auto report = [&] {
    if (!opts_.progress) return;
    telemetry::ProgressEvent ev;
    ev.phase = "spectral.kpm";
    ev.iteration = samples;
    ev.total = total;
    ev.matvecs = matvecs;
    ev.elapsed_s = static_cast<double>(telemetry::now_ns() - t0ns) * 1e-9;
    ev.eta_s = ev.elapsed_s / static_cast<double>(samples) *
               static_cast<double>(total - samples);
    opts_.progress(ev);
  };
  if (opts_.num_random == 0) {
    // Exact trace: one Chebyshev recurrence per basis state. O(dim * M / 2)
    // matvecs — the dense-reference-grade mode for small sectors.
    for (std::size_t i = 0; i < dim_; ++i) {
      vec_fill(t0_, cplx(0.0));
      t0_[i] = cplx(1.0);
      matvecs += accumulate_moments();
      ++samples;
      report();
    }
  } else {
    // Stochastic trace: normalized Gaussian probes, E<r|T|r> = Tr T / dim.
    std::mt19937_64 rng(opts_.seed);
    std::normal_distribution<double> g;
    for (std::size_t s = 0; s < opts_.num_random; ++s) {
      for (auto& x : t0_) x = cplx(g(rng), g(rng));
      vec_scale(t0_, cplx(1.0 / vec_norm(t0_)));
      matvecs += accumulate_moments();
      ++samples;
      report();
    }
  }
  const double inv = opts_.num_random == 0
                         ? 1.0 / static_cast<double>(dim_)
                         : 1.0 / static_cast<double>(samples);
  for (double& v : mu_) v *= inv;
  weight_ = 1.0;
  computed_ = true;
  return matvecs;
}

std::size_t KpmDos::compute_local(std::span<const cplx> phi) {
  if (phi.size() != dim_)
    throw std::invalid_argument("KpmDos::compute_local: dimension mismatch");
  const double nrm = vec_norm(phi);
  if (nrm == 0.0)
    throw std::invalid_argument("KpmDos::compute_local: zero probe state");
  GECOS_SPAN("spectral.kpm.local");
  std::fill(mu_.begin(), mu_.end(), 0.0);
  vec_copy(t0_, phi);
  vec_scale(t0_, cplx(1.0 / nrm));
  const std::size_t matvecs = accumulate_moments();
  weight_ = nrm * nrm;
  computed_ = true;
  return matvecs;
}

double KpmDos::evaluate_at(double omega) const {
  if (!computed_)
    throw std::invalid_argument("KpmDos::evaluate_at: no compute yet");
  const double x = (omega - shift_) / scale_;
  if (!(std::abs(x) < 1.0)) return 0.0;
  // Damped Chebyshev series via the scalar three-term recurrence.
  double ck_prev = 1.0;  // T_0(x)
  double ck = x;         // T_1(x)
  double s = jackson_[0] * mu_[0] + 2.0 * jackson_[1] * mu_[1] * ck;
  for (std::size_t k = 2; k < opts_.num_moments; ++k) {
    const double cn = 2.0 * x * ck - ck_prev;
    ck_prev = ck;
    ck = cn;
    s += 2.0 * jackson_[k] * mu_[k] * ck;
  }
  return weight_ * s / (M_PI * std::sqrt(1.0 - x * x) * scale_);
}

void KpmDos::evaluate(std::span<const double> omega,
                      std::span<double> out) const {
  if (omega.size() != out.size())
    throw std::invalid_argument("KpmDos::evaluate: grid/output size mismatch");
  for (std::size_t i = 0; i < omega.size(); ++i)
    out[i] = evaluate_at(omega[i]);
}

}  // namespace gecos
