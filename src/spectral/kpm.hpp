// Kernel-polynomial method: Chebyshev-moment densities of states.
//
// The density of states rho(E) = (1/D) sum_j delta(E - E_j) is the one
// spectral quantity that needs NO eigenvector and no probe state — and the
// Chebyshev moments mu_k = (1/D) Tr T_k(H~) reach it through nothing but
// repeated apply_add. H~ = (H - b)/a is the operator rescaled into (-1, 1)
// by the power-iteration bounds of src/spectral/spectral_bounds.hpp; the
// trace is taken either EXACTLY (one recurrence per basis state — the
// dense-reference-grade mode for small dimensions) or STOCHASTICALLY (R
// normalized Gaussian vectors, whose expectation <r|T|r> is Tr T / D, with
// fluctuations ~ 1/sqrt(R D)). Each probe vector yields two moments per
// matvec through the product identities 2 T_j T_k = T_{j+k} + T_{|j-k|}.
// Truncating the Chebyshev series at M moments rings (Gibbs); the Jackson
// kernel damps the coefficients into a strictly positive resolution kernel
// of width ~ pi/M — the broadening is part of the ESTIMATOR's definition,
// so exactness tests compare against the dense reference smeared with the
// same kernel (tests/spectral_ref.hpp). Local densities of states
// <phi| delta(E - H) |phi> use the same machinery from a caller-supplied
// probe vector. Work vectors are preallocated at construction (compute() is
// allocation-free after warm-up) and every inner loop is a shared BLAS-1
// kernel, so the recurrence parallelizes like every other amplitude sweep.
// Runs unchanged on SectorOperator inputs. See DESIGN.md "Spectral &
// thermal workloads".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ops/linear_op.hpp"
#include "spectral/spectral_bounds.hpp"
#include "state/state_vector.hpp"
#include "telemetry/progress.hpp"

namespace gecos {

/// Tuning knobs for the KPM moment machinery.
struct KpmOptions {
  std::size_t num_moments = 128;  ///< Chebyshev truncation order M (>= 2)
  /// Stochastic-trace sample count; 0 selects the exact trace (one
  /// recurrence per basis state — affordable only at small dim()).
  std::size_t num_random = 0;
  std::uint64_t seed = 20260808;  ///< sample-vector seed (reproducible)
  /// Explicit spectral bounds; used when e_min < e_max, otherwise the
  /// power-iteration estimate runs at construction.
  double e_min = 0.0;
  double e_max = 0.0;
  SpectralBoundsOptions bounds;   ///< knobs of the automatic estimate
  /// Optional ProgressSink (phase "spectral.kpm"): called once per trace
  /// probe during compute() with the probe index and the matvecs spent so
  /// far. Empty disables reporting.
  telemetry::ProgressFn progress;
};

/// Chebyshev-moment density-of-states estimator with Jackson damping.
class KpmDos {
 public:
  /// Captures the operator by reference (it must outlive this object),
  /// resolves the spectral bounds (explicit or power-iteration) and
  /// preallocates the three recurrence vectors and the moment buffers.
  /// Throws std::invalid_argument on num_moments < 2 or dim() < 2.
  explicit KpmDos(const LinearOperator& h, KpmOptions opts = {});

  /// Computes the DOS moments mu_k = (1/D) Tr T_k(H~): exact trace when
  /// opts.num_random == 0, stochastic otherwise. Returns the operator
  /// applications spent. Allocation-free after the first call.
  std::size_t compute();
  /// Local-DOS moments mu_k = <phi~|T_k(H~)|phi~> of the normalized probe
  /// (the spectral measure of phi; evaluate() then integrates to 1 * the
  /// stored weight ||phi||^2). phi must have the operator dimension and
  /// nonzero norm.
  std::size_t compute_local(std::span<const cplx> phi);

  /// Resolved spectral bracket (explicit or estimated at construction).
  double e_min() const { return e_min_; }
  double e_max() const { return e_max_; }
  /// Raw (undamped) moments of the last compute; size num_moments.
  std::span<const double> moments() const { return mu_; }
  /// Total weight of the represented measure: 1 for the DOS modes, the
  /// probe norm squared for compute_local.
  double weight() const { return weight_; }

  /// Jackson-reconstructed density at omega — zero outside the resolved
  /// bounds; integrates to weight() over the bracket. Requires a prior
  /// compute()/compute_local().
  double evaluate_at(double omega) const;
  /// Grid form: out[i] = evaluate_at(omega[i]); sizes must match
  /// (std::invalid_argument otherwise). Allocation-free.
  void evaluate(std::span<const double> omega, std::span<double> out) const;

 private:
  /// Accumulates the 2-moments-per-matvec Chebyshev recurrence of one probe
  /// vector (already loaded in t0_) into mu_; returns the matvecs spent.
  std::size_t accumulate_moments();
  /// y = H~ x = ((H - b)/a) x through apply_add plus one fused axpy.
  void apply_scaled(std::span<const cplx> x, std::span<cplx> y) const;

  const LinearOperator& op_;
  KpmOptions opts_;
  std::size_t dim_ = 0;
  double e_min_ = 0.0, e_max_ = 0.0;
  double scale_ = 1.0, shift_ = 0.0;  // a, b of H~ = (H - b)/a
  double weight_ = 0.0;
  bool computed_ = false;
  AlignedVec t0_, t1_;                // recurrence pair T_{k-1} r, T_k r
  std::vector<double> mu_;            // accumulated moments
  std::vector<double> jackson_;       // g_k damping factors (fixed by M)
};

}  // namespace gecos
