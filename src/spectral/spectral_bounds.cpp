#include "spectral/spectral_bounds.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/blas1.hpp"
#include "state/state_vector.hpp"

namespace gecos {

namespace {

/// One seeded power-iteration run on the shifted operator H - shift I:
/// returns the Rayleigh quotient <v|H|v> of the final iterate (an interior
/// point of spec(H) near the eigenvalue farthest from `shift`). v and w are
/// caller-owned work buffers of dim amplitudes; matvecs is accumulated.
double power_extreme(const LinearOperator& h, double shift, int iters,
                     std::mt19937_64& rng, std::span<cplx> v, std::span<cplx> w,
                     std::size_t& matvecs) {
  std::normal_distribution<double> g;
  for (auto& x : v) x = cplx(g(rng), g(rng));
  vec_scale(v, cplx(1.0 / vec_norm(v)));
  double rayleigh = 0.0;
  for (int it = 0; it < iters; ++it) {
    // w = (H - shift) v for a normalized v; the Rayleigh quotient of H is
    // read off the same product before v is replaced by w / ||w||.
    vec_fill(w, cplx(0.0));
    h.apply_add(v, w, cplx(1.0));
    ++matvecs;
    rayleigh = vec_dot(v, w).real();
    vec_axpy(w, cplx(-shift), v);
    const double n = vec_norm(w);
    if (n == 0.0) break;  // v is an exact eigenvector of the shifted op
    vec_scale(w, cplx(1.0 / n));
    vec_copy(v, w);
  }
  return rayleigh;
}

}  // namespace

SpectralBounds estimate_spectral_bounds(const LinearOperator& h,
                                        SpectralBoundsOptions opts) {
  if (opts.iters < 1)
    throw std::invalid_argument("estimate_spectral_bounds: iters must be >= 1");
  if (h.dim() < 2)
    throw std::invalid_argument(
        "estimate_spectral_bounds: operator dimension must be >= 2");

  AlignedVec v(h.dim()), w(h.dim());
  std::mt19937_64 rng(opts.seed);
  SpectralBounds b;

  // Run 1: plain power iteration converges on the eigenvalue of largest
  // magnitude; the Rayleigh quotient recovers its sign.
  const double lam1 = power_extreme(h, 0.0, opts.iters, rng, v, w, b.matvecs);
  // Run 2: power iteration on H - lam1 I converges on the point of spec(H)
  // farthest from lam1 — the opposite spectral edge.
  const double lam2 = power_extreme(h, lam1, opts.iters, rng, v, w, b.matvecs);

  double lo = std::min(lam1, lam2);
  double hi = std::max(lam1, lam2);
  // Rayleigh quotients are inner estimates; widen to an outer bracket. A
  // (near-)degenerate interval — H close to a multiple of the identity —
  // still needs nonzero width for the KPM rescaling to be well defined.
  double half = 0.5 * (hi - lo);
  const double mid = 0.5 * (hi + lo);
  if (half < 1e-12 * (std::abs(mid) + 1.0)) half = std::abs(mid) * 0.5 + 0.5;
  b.e_min = mid - half * (1.0 + opts.pad);
  b.e_max = mid + half * (1.0 + opts.pad);
  return b;
}

}  // namespace gecos
