// Continued-fraction Lanczos for dynamical correlation functions.
//
// The dynamical structure of a Hermitian system lives in resolvent matrix
// elements: for a probe state |phi> = B|psi> the spectral function is
//
//   A(w) = -(1/pi) Im <phi| (w + i eta - H)^{-1} |phi>
//        =  sum_j |<j|phi>|^2 * (eta/pi) / ((w - E_j)^2 + eta^2),
//
// a Lorentzian-broadened line spectrum. The Lanczos recurrence from
// v_0 = phi/||phi|| tridiagonalizes H over exactly the invariant subspace
// that carries |phi>'s weight, and the resolvent's (0,0) element is then the
// continued fraction
//
//   G(z) = 1 / (z - a_0 - b_0^2 / (z - a_1 - b_1^2 / (...)))
//
// with a_j/b_j the recurrence coefficients — so m matvecs buy the FULL
// frequency dependence at once (the tridiagonal T is z-independent), where a
// naive shifted solve would pay a Krylov run per frequency point. A
// breakdown (b_j below tolerance) means the invariant subspace is exhausted
// and the continued fraction is EXACT from that depth on. Reorthogonalization
// is full (two-pass Gram-Schmidt against the whole basis, the
// tests-trustworthy choice of the Lanczos eigensolver); bases are
// preallocated at construction, so build() and evaluate() are
// allocation-free after warm-up. Runs unchanged on SectorOperator inputs —
// only apply_add and dim() are used. See DESIGN.md "Spectral & thermal
// workloads".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ops/linear_op.hpp"
#include "state/krylov_basis.hpp"
#include "telemetry/progress.hpp"

namespace gecos {

/// Tuning knobs for the continued-fraction builder.
struct SpectralFunctionOptions {
  /// Lanczos depth cap m (clamped to the operator dimension at
  /// construction; m = dim() with full reorthogonalization makes the
  /// continued fraction exact on the probe state's invariant subspace).
  std::size_t max_moments = 256;
  /// Recurrence norm below breakdown_tol * ||phi|| stops the build — the
  /// invariant subspace is exhausted and the fraction is exact.
  double breakdown_tol = 1e-12;
  /// Optional ProgressSink (phase "spectral.cf"): called once per Lanczos
  /// moment during build() with the depth reached and the matvec count.
  /// Empty disables reporting.
  telemetry::ProgressFn progress;
};

/// Continued-fraction spectral function of one probe state.
class SpectralFunction {
 public:
  /// Captures the operator by reference (it must outlive this object) and
  /// preallocates the Lanczos basis for max_moments vectors. Throws
  /// std::invalid_argument when the operator dimension is < 2 or
  /// max_moments == 0.
  explicit SpectralFunction(const LinearOperator& h,
                            SpectralFunctionOptions opts = {});

  /// Tridiagonalizes H from the (unnormalized) probe state phi and returns
  /// the number of moments built (== depth reached; early on breakdown).
  /// phi.size() must equal the operator dimension and ||phi|| must be
  /// nonzero (std::invalid_argument otherwise). Allocation-free after the
  /// first call.
  std::size_t build(std::span<const cplx> phi);
  /// Convenience form for A_B(w) of an operator probe: phi = B psi is
  /// applied into an internal scratch buffer, then built as above. B must
  /// share the operator dimension.
  std::size_t build(const LinearOperator& b, std::span<const cplx> psi);

  /// Moments built by the last build() (0 before the first).
  std::size_t moments() const { return m_; }
  /// Probe weight ||phi||^2 of the last build — the total integrated
  /// spectral weight sum_j |<j|phi>|^2.
  double weight() const { return weight_; }
  /// Recurrence diagonal a_0..a_{m-1} of the last build.
  std::span<const double> alpha() const { return {alpha_.data(), m_}; }
  /// Recurrence off-diagonal b_0..b_{m-2} of the last build.
  std::span<const double> beta() const {
    return {beta_.data(), m_ > 0 ? m_ - 1 : 0};
  }

  /// Resolvent element weight * <v0|(z - H)^{-1}|v0> by bottom-up
  /// evaluation of the continued fraction. Requires a prior build().
  cplx greens(cplx z) const;
  /// A(w) = -(1/pi) Im greens(w + i eta); eta > 0 is the Lorentzian
  /// broadening half-width.
  double evaluate_at(double omega, double eta) const;
  /// Grid form: out[i] = evaluate_at(omega[i], eta); sizes must match
  /// (std::invalid_argument otherwise). Allocation-free.
  void evaluate(std::span<const double> omega, double eta,
                std::span<double> out) const;

 private:
  const LinearOperator& op_;
  SpectralFunctionOptions opts_;
  std::size_t dim_ = 0;
  std::size_t cap_ = 0;      // moment cap actually preallocated
  std::size_t m_ = 0;        // moments built by the last build()
  double weight_ = 0.0;      // ||phi||^2 of the last build()
  KrylovBasis basis_;        // cap_ + 1 slots: v_0..v_cap
  std::vector<double> alpha_, beta_;
  mutable std::vector<cplx> scratch_;  // operator-probe application buffer
};

}  // namespace gecos
