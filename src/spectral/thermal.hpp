// Finite-temperature observables by thermal-pure-state sampling.
//
// A thermal average <O>_beta = Tr(e^{-beta H} O) / Tr(e^{-beta H}) never
// needs the full spectrum: for a random normalized Gaussian state |r> the
// projected state |phi_r> = e^{-beta H / 2} |r> satisfies
//
//   E[ <phi_r|O|phi_r> ] = Tr(e^{-beta H} O) / D,
//
// so a handful of samples estimates the ratio with fluctuations that SHRINK
// exponentially with system size (the thermal-pure-quantum-state effect).
// The imaginary-time projection runs through KrylovEvolver::apply_expm in
// chunks of dbeta, renormalizing after each chunk and accumulating the log
// of the squared norm — the weight w_r = <r|e^{-beta H}|r> stays in log
// space, so large beta never overflows and the Boltzmann-dominated regime
// degrades gracefully into a ground-state projector. The estimator is the
// self-normalizing ratio sum_r w_r O_r / sum_r w_r with jackknife standard
// errors (the ratio's bias and variance are both handled by leave-one-out
// resampling). Sampling is seeded and the generator is re-seeded on every
// call, so results are bit-reproducible and independent of call order.
// All work buffers are preallocated at construction; expectation() is
// allocation-free after the first call warms the evolver. Runs unchanged on
// SectorOperator inputs. See DESIGN.md "Spectral & thermal workloads".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ops/linear_op.hpp"
#include "solver/krylov_evolve.hpp"
#include "state/state_vector.hpp"
#include "telemetry/progress.hpp"

namespace gecos {

/// Tuning knobs for the thermal-pure-state sampler.
struct ThermalOptions {
  std::size_t num_samples = 16;   ///< random thermal states (>= 2 for errors)
  std::uint64_t seed = 20260808;  ///< sample seed; re-seeded every call
  /// Imaginary-time chunk: e^{-beta H / 2} is applied in ceil((beta/2) /
  /// dbeta) renormalized Krylov steps (must be > 0).
  double dbeta = 0.25;
  std::size_t max_subspace = 24;  ///< Krylov cap of the projection evolver
  double krylov_tol = 1e-12;      ///< per-chunk projection error budget
  /// Optional ProgressSink (phase "spectral.thermal"): called once per
  /// thermal sample during expectation() with the sample index and the
  /// matvecs spent so far. Empty disables reporting.
  telemetry::ProgressFn progress;
};

/// One thermal estimate with its sampling uncertainty.
struct ThermalResult {
  double value = 0.0;          ///< ratio estimate of <O>_beta
  double std_error = 0.0;      ///< jackknife standard error of the ratio
  double log_z_over_dim = 0.0; ///< log(Z(beta)/D) from the sample weights
  std::size_t samples = 0;     ///< random states drawn
  std::size_t matvecs = 0;     ///< operator applications spent (H and O)
};

/// Stochastic finite-temperature expectation values through e^{-beta H/2}.
class ThermalSampler {
 public:
  /// Captures the Hamiltonian by reference (it must outlive the sampler),
  /// builds the internal Krylov projection evolver and preallocates all
  /// per-sample buffers. Throws std::invalid_argument on num_samples < 2,
  /// dbeta <= 0 or operator dimension < 2.
  explicit ThermalSampler(const LinearOperator& h, ThermalOptions opts = {});

  /// <O>_beta with jackknife error bars. O must share the Hamiltonian's
  /// dimension and beta must be >= 0 (std::invalid_argument otherwise).
  /// Re-seeds the generator, so equal (O, beta, options) give bit-identical
  /// results regardless of call history. Allocation-free after the first
  /// call.
  ThermalResult expectation(const LinearOperator& o, double beta);
  /// Energy <H>_beta — expectation() with the Hamiltonian as the observable.
  ThermalResult energy(double beta);

 private:
  const LinearOperator& op_;
  ThermalOptions opts_;
  std::size_t dim_ = 0;
  KrylovEvolver evolver_;            // e^{-dbeta H} chunk applier
  AlignedVec psi_, scratch_;         // thermal state and O-apply buffer
  std::vector<double> o_vals_, logw_;  // per-sample observable and log-weight
};

}  // namespace gecos
