#include "spectral/thermal.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/blas1.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace gecos {

ThermalSampler::ThermalSampler(const LinearOperator& h, ThermalOptions opts)
    : op_(h),
      opts_(opts),
      dim_(h.dim()),
      evolver_(h, KrylovOptions{opts.max_subspace, opts.krylov_tol,
                                KrylovMode::kLanczos, 1e-12}) {
  if (opts_.num_samples < 2)
    throw std::invalid_argument("ThermalSampler: num_samples must be >= 2");
  if (!(opts_.dbeta > 0.0))
    throw std::invalid_argument("ThermalSampler: dbeta must be > 0");
  if (dim_ < 2)
    throw std::invalid_argument(
        "ThermalSampler: operator dimension must be >= 2");
  psi_.resize(dim_);
  scratch_.resize(dim_);
  o_vals_.resize(opts_.num_samples);
  logw_.resize(opts_.num_samples);
}

ThermalResult ThermalSampler::expectation(const LinearOperator& o,
                                          double beta) {
  if (o.dim() != dim_)
    throw std::invalid_argument(
        "ThermalSampler::expectation: observable dimension mismatch");
  if (!(beta >= 0.0))
    throw std::invalid_argument(
        "ThermalSampler::expectation: beta must be >= 0");

  // Re-seed per call: the sample set depends only on (seed, num_samples),
  // never on what was computed before.
  std::mt19937_64 rng(opts_.seed);
  std::normal_distribution<double> g;
  const double tau = 0.5 * beta;  // imaginary time of the half-projection
  const std::size_t chunks =
      tau > 0.0
          ? static_cast<std::size_t>(std::ceil(tau / opts_.dbeta - 1e-12))
          : 0;
  const double dtau = chunks > 0 ? tau / static_cast<double>(chunks) : 0.0;

  GECOS_SPAN("spectral.thermal.expectation");
  const std::uint64_t t0 = opts_.progress ? telemetry::now_ns() : 0;
  ThermalResult r;
  r.samples = opts_.num_samples;
  for (std::size_t s = 0; s < opts_.num_samples; ++s) {
    for (auto& x : psi_) x = cplx(g(rng), g(rng));
    vec_scale(psi_, cplx(1.0 / vec_norm(psi_)));
    // |psi> <- e^{-tau H} |psi| in renormalized chunks; the weight
    // w = ||e^{-tau H} r||^2 accumulates in log space chunk by chunk.
    double logw = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
      evolver_.apply_expm(cplx(-dtau), psi_);
      r.matvecs += evolver_.last_matvecs();
      const double nrm = vec_norm(psi_);
      if (nrm == 0.0)
        throw std::runtime_error(
            "ThermalSampler::expectation: projected state vanished");
      logw += 2.0 * std::log(nrm);
      vec_scale(psi_, cplx(1.0 / nrm));
    }
    logw_[s] = logw;
    vec_fill(scratch_, cplx(0.0));
    o.apply_add(psi_, scratch_, cplx(1.0));
    ++r.matvecs;
    o_vals_[s] = vec_dot(psi_, scratch_).real();
    if (opts_.progress) {
      telemetry::ProgressEvent ev;
      ev.phase = "spectral.thermal";
      ev.iteration = s + 1;
      ev.total = opts_.num_samples;
      ev.matvecs = r.matvecs;
      ev.elapsed_s = static_cast<double>(telemetry::now_ns() - t0) * 1e-9;
      ev.eta_s = ev.elapsed_s / static_cast<double>(s + 1) *
                 static_cast<double>(opts_.num_samples - s - 1);
      opts_.progress(ev);
    }
  }

  // Self-normalizing ratio with weights shifted by the max log-weight: the
  // Boltzmann-dominant sample has weight 1 and the rest decay safely.
  double logmax = logw_[0];
  for (double lw : logw_) logmax = std::max(logmax, lw);
  double sw = 0.0, swo = 0.0, sz = 0.0;
  for (std::size_t s = 0; s < opts_.num_samples; ++s) {
    const double w = std::exp(logw_[s] - logmax);
    sw += w;
    swo += w * o_vals_[s];
    sz += w;
  }
  r.value = swo / sw;
  r.log_z_over_dim =
      logmax + std::log(sz / static_cast<double>(opts_.num_samples));

  // Jackknife over samples: leave-one-out ratios capture the correlation
  // between numerator and denominator of the self-normalized estimator.
  const double n = static_cast<double>(opts_.num_samples);
  double mean = 0.0;
  for (std::size_t s = 0; s < opts_.num_samples; ++s) {
    const double w = std::exp(logw_[s] - logmax);
    o_vals_[s] = (swo - w * o_vals_[s]) / (sw - w);  // reuse as theta_i
    mean += o_vals_[s];
  }
  mean /= n;
  double var = 0.0;
  for (std::size_t s = 0; s < opts_.num_samples; ++s)
    var += (o_vals_[s] - mean) * (o_vals_[s] - mean);
  r.std_error = std::sqrt((n - 1.0) / n * var);
  return r;
}

ThermalResult ThermalSampler::energy(double beta) {
  return expectation(op_, beta);
}

}  // namespace gecos
