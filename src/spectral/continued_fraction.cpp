#include "spectral/continued_fraction.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas1.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace gecos {

SpectralFunction::SpectralFunction(const LinearOperator& h,
                                   SpectralFunctionOptions opts)
    : op_(h),
      opts_(opts),
      dim_(h.dim()),
      cap_(std::min(opts.max_moments, h.dim())),
      basis_(h.dim(), std::min(opts.max_moments, h.dim()) + 1) {
  if (dim_ < 2)
    throw std::invalid_argument(
        "SpectralFunction: operator dimension must be >= 2");
  if (opts.max_moments == 0)
    throw std::invalid_argument("SpectralFunction: max_moments must be >= 1");
  alpha_.resize(cap_);
  beta_.resize(cap_ > 0 ? cap_ - 1 : 0);
}

std::size_t SpectralFunction::build(std::span<const cplx> phi) {
  if (phi.size() != dim_)
    throw std::invalid_argument("SpectralFunction::build: dimension mismatch");
  const double nrm = vec_norm(phi);
  if (nrm == 0.0)
    throw std::invalid_argument("SpectralFunction::build: zero probe state");
  weight_ = nrm * nrm;

  vec_copy(basis_.vec(0), phi);
  vec_scale(basis_.vec(0), cplx(1.0 / nrm));

  GECOS_SPAN("spectral.cf.build");
  const std::uint64_t t0 = opts_.progress ? telemetry::now_ns() : 0;
  m_ = 0;
  for (std::size_t j = 0; j < cap_; ++j) {
    const std::span<const cplx> vj = basis_.vec(j);
    const std::span<cplx> w = basis_.vec(j + 1);
    vec_fill(w, cplx(0.0));
    op_.apply_add(vj, w, cplx(1.0));
    alpha_[j] = vec_dot(vj, w).real();
    // Full two-pass reorthogonalization against the whole live basis: the
    // three-term recurrence would drift at exactly the depths where the
    // continued fraction starts resolving interior structure.
    basis_.project_out(w, j + 1);
    m_ = j + 1;
    if (opts_.progress) {
      telemetry::ProgressEvent ev;
      ev.phase = "spectral.cf";
      ev.iteration = m_;
      ev.total = cap_;
      ev.matvecs = m_;  // one apply per moment
      ev.elapsed_s = static_cast<double>(telemetry::now_ns() - t0) * 1e-9;
      ev.eta_s = ev.elapsed_s / static_cast<double>(m_) *
                 static_cast<double>(cap_ - m_);
      opts_.progress(ev);
    }
    if (j + 1 == cap_) break;
    const double b = vec_norm(w);
    if (b <= opts_.breakdown_tol * nrm) break;  // invariant subspace: exact
    beta_[j] = b;
    vec_scale(w, cplx(1.0 / b));
  }
  return m_;
}

std::size_t SpectralFunction::build(const LinearOperator& b,
                                    std::span<const cplx> psi) {
  if (b.dim() != dim_)
    throw std::invalid_argument(
        "SpectralFunction::build: probe operator dimension mismatch");
  if (psi.size() != dim_)
    throw std::invalid_argument("SpectralFunction::build: dimension mismatch");
  if (scratch_.size() != dim_) scratch_.resize(dim_);
  b.apply(psi, scratch_);
  return build(scratch_);
}

cplx SpectralFunction::greens(cplx z) const {
  if (m_ == 0)
    throw std::invalid_argument("SpectralFunction::greens: no build yet");
  // Bottom-up: f_j = num_j / (z - a_j - f_{j+1}) with num_0 = 1 and
  // num_j = b_{j-1}^2, so the final f_0 is G(z) itself.
  cplx f(0.0);
  for (std::size_t j = m_; j-- > 0;) {
    const double num = j > 0 ? beta_[j - 1] * beta_[j - 1] : 1.0;
    f = num / (z - alpha_[j] - f);
  }
  return weight_ * f;
}

double SpectralFunction::evaluate_at(double omega, double eta) const {
  return -greens(cplx(omega, eta)).imag() / M_PI;
}

void SpectralFunction::evaluate(std::span<const double> omega, double eta,
                                std::span<double> out) const {
  if (omega.size() != out.size())
    throw std::invalid_argument(
        "SpectralFunction::evaluate: grid/output size mismatch");
  for (std::size_t i = 0; i < omega.size(); ++i)
    out[i] = evaluate_at(omega[i], eta);
}

}  // namespace gecos
