// Packed symplectic representation of Pauli strings.
//
// A Pauli word over n qubits is stored as two bitmasks x, z of n bits each
// (multi-word std::uint64_t for n > 64) under the phase convention
//
//   W(x, z) = prod_q i^{x_q z_q} X_q^{x_q} Z_q^{z_q}
//
// so that (x,z) = (0,0) -> I, (1,0) -> X, (1,1) -> Y, (0,1) -> Z literally
// (no hidden global phase; see DESIGN.md "Packed symplectic layout"). Products
// and commutation then reduce to XOR/AND/popcount over whole words:
//
//   W(x1,z1) W(x2,z2) = i^g W(x1^x2, z1^z2),
//   g = pc(x1&z1) + pc(x2&z2) + 2 pc(z1&x2) - pc((x1^x2)&(z1^z2))   (mod 4)
//
// replacing the per-qubit Cayley loop of PauliString::multiply. This is the
// engine behind the rewritten PauliSum and the iterative mask expansion in
// conversion.cpp; the legacy per-qubit path is retained (ops/pauli_ref.hpp)
// as the correctness and benchmark reference.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "ops/scb.hpp"

namespace gecos {

class PauliString;  // ops/pauli.hpp

/// Number of 64-bit words needed for an n-qubit mask.
constexpr std::size_t packed_words(std::size_t num_qubits) {
  return (num_qubits + 63) / 64;
}

// -- raw word-span kernels (shared by PackedPauli and PauliSum) --------------

/// Phase exponent g in [0,4) with a*b = i^g * (ax^bx, az^bz).
int packed_mul_phase(const std::uint64_t* ax, const std::uint64_t* az,
                     const std::uint64_t* bx, const std::uint64_t* bz,
                     std::size_t words);

/// i^g for g in [0,4).
inline cplx packed_phase(int g) {
  switch (g & 3) {
    case 0: return {1.0, 0.0};
    case 1: return {0.0, 1.0};
    case 2: return {-1.0, 0.0};
    default: return {0.0, -1.0};
  }
}

/// True when the symplectic form pc(ax&bz) + pc(az&bx) is even.
bool packed_commute(const std::uint64_t* ax, const std::uint64_t* az,
                    const std::uint64_t* bx, const std::uint64_t* bz,
                    std::size_t words);

/// splitmix64 finalizer; good avalanche for open addressing.
inline std::uint64_t packed_mix64(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

/// Hash of an (x, z) mask pair of `words` words each. The single fold used
/// everywhere a packed key is hashed (PackedPauli::hash, the PauliSum table);
/// the two spans need not be contiguous.
inline std::uint64_t packed_hash_xz(const std::uint64_t* x,
                                    const std::uint64_t* z,
                                    std::size_t words) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < words; ++i)
    h = packed_mix64(h ^ packed_mix64(x[i]));
  for (std::size_t i = 0; i < words; ++i)
    h = packed_mix64(h ^ packed_mix64(z[i]));
  return h;
}

/// Word-packed Pauli word with value semantics. Qubit q lives in bit (q % 64)
/// of word (q / 64) of each mask.
class PackedPauli {
 public:
  /// Zero-qubit word (use the sizing constructor for a real identity).
  PackedPauli() = default;
  /// Identity on num_qubits qubits.
  explicit PackedPauli(std::size_t num_qubits)
      : num_qubits_(num_qubits), xz_(2 * packed_words(num_qubits), 0) {}
  /// From raw x/z mask words (packed_words(num_qubits) words each; bits
  /// above num_qubits must be clear).
  PackedPauli(std::size_t num_qubits, const std::uint64_t* x,
              const std::uint64_t* z);

  /// Pack an unpacked PauliString (O(n)).
  static PackedPauli from_string(const PauliString& s);
  /// From text, qubit 0 first, e.g. "XIZY" (same grammar as PauliString).
  static PackedPauli parse(const std::string& text);

  /// Qubit count, mask word count, and raw mask views (x block, z block).
  std::size_t num_qubits() const { return num_qubits_; }
  std::size_t words() const { return xz_.size() / 2; }
  const std::uint64_t* x_words() const { return xz_.data(); }
  const std::uint64_t* z_words() const { return xz_.data() + words(); }

  /// Read / write one qubit's factor (I/X/Y/Z only); O(1) bit moves.
  Scb op(std::size_t q) const;
  void set_op(std::size_t q, Scb s);

  /// True when both masks are all-zero.
  bool is_identity() const;
  /// Number of non-identity factors: pc(x | z).
  int weight() const;

  /// Unpacked copy / text form / dense 2^n matrix (verification only).
  PauliString to_pauli_string() const;
  std::string str() const;
  Matrix to_matrix() const;

  /// Phase-tracked product via the word kernels: a*b = phase * string.
  static std::pair<cplx, PackedPauli> multiply(const PackedPauli& a,
                                               const PackedPauli& b);
  /// Symplectic-form commutation test, O(words).
  bool commutes_with(const PackedPauli& o) const;

  /// Bitwise equality (same qubit count and masks).
  bool operator==(const PackedPauli& o) const = default;
  /// packed_hash_xz over the stored masks.
  std::uint64_t hash() const {
    return packed_hash_xz(x_words(), z_words(), words());
  }

  /// Qubit-wise lexicographic order with I < X < Y < Z (matches the ordering
  /// of the legacy std::map<PauliString, cplx>, so sorted views stay
  /// deterministic and comparable across representations).
  static bool less_qubitwise(const PackedPauli& a, const PackedPauli& b);

 private:
  std::size_t num_qubits_ = 0;
  std::vector<std::uint64_t> xz_;  // x words [0, w), z words [w, 2w)
};

}  // namespace gecos
