#include "ops/packed.hpp"

#include <cassert>
#include <stdexcept>

#include "ops/pauli.hpp"

namespace gecos {

namespace {

// Per-qubit (x, z) code <-> Scb. (0,0)=I, (1,0)=X, (1,1)=Y, (0,1)=Z.
inline Scb scb_from_bits(unsigned x, unsigned z) {
  static constexpr std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Z, Scb::Y};
  return t[(z << 1) | x];
}

inline void bits_from_scb(Scb s, unsigned& x, unsigned& z) {
  switch (s) {
    case Scb::I: x = 0; z = 0; return;
    case Scb::X: x = 1; z = 0; return;
    case Scb::Y: x = 1; z = 1; return;
    case Scb::Z: x = 0; z = 1; return;
    default:
      throw std::invalid_argument("PackedPauli may only contain I/X/Y/Z");
  }
}

}  // namespace

int packed_mul_phase(const std::uint64_t* ax, const std::uint64_t* az,
                     const std::uint64_t* bx, const std::uint64_t* bz,
                     std::size_t words) {
  int g = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t cx = ax[i] ^ bx[i];
    const std::uint64_t cz = az[i] ^ bz[i];
    g += std::popcount(ax[i] & az[i]) + std::popcount(bx[i] & bz[i]) +
         2 * std::popcount(az[i] & bx[i]) - std::popcount(cx & cz);
  }
  return ((g % 4) + 4) % 4;
}

bool packed_commute(const std::uint64_t* ax, const std::uint64_t* az,
                    const std::uint64_t* bx, const std::uint64_t* bz,
                    std::size_t words) {
  int anti = 0;
  for (std::size_t i = 0; i < words; ++i)
    anti += std::popcount(ax[i] & bz[i]) + std::popcount(az[i] & bx[i]);
  return (anti & 1) == 0;
}

PackedPauli::PackedPauli(std::size_t num_qubits, const std::uint64_t* x,
                         const std::uint64_t* z)
    : PackedPauli(num_qubits) {
  const std::size_t w = words();
  for (std::size_t i = 0; i < w; ++i) {
    xz_[i] = x[i];
    xz_[w + i] = z[i];
  }
  // Bits above num_qubits must stay clear so ==/hash are well-defined;
  // normalize rather than trust the caller.
  if (num_qubits_ % 64 != 0 && w > 0) {
    const std::uint64_t tail = (std::uint64_t{1} << (num_qubits_ % 64)) - 1;
    xz_[w - 1] &= tail;
    xz_[2 * w - 1] &= tail;
  }
}

PackedPauli PackedPauli::from_string(const PauliString& s) {
  PackedPauli p(s.num_qubits());
  for (std::size_t q = 0; q < s.num_qubits(); ++q) p.set_op(q, s.op(q));
  return p;
}

PackedPauli PackedPauli::parse(const std::string& text) {
  return from_string(PauliString::parse(text));
}

Scb PackedPauli::op(std::size_t q) const {
  assert(q < num_qubits_);
  const std::size_t w = q / 64, b = q % 64;
  return scb_from_bits((x_words()[w] >> b) & 1, (z_words()[w] >> b) & 1);
}

void PackedPauli::set_op(std::size_t q, Scb s) {
  assert(q < num_qubits_);
  unsigned x, z;
  bits_from_scb(s, x, z);
  const std::size_t w = q / 64;
  const std::uint64_t bit = std::uint64_t{1} << (q % 64);
  xz_[w] = (xz_[w] & ~bit) | (x ? bit : 0);
  xz_[words() + w] = (xz_[words() + w] & ~bit) | (z ? bit : 0);
}

bool PackedPauli::is_identity() const {
  for (std::uint64_t w : xz_)
    if (w != 0) return false;
  return true;
}

int PackedPauli::weight() const {
  int w = 0;
  const std::size_t nw = words();
  for (std::size_t i = 0; i < nw; ++i)
    w += std::popcount(x_words()[i] | z_words()[i]);
  return w;
}

PauliString PackedPauli::to_pauli_string() const {
  std::vector<Scb> ops(num_qubits_);
  for (std::size_t q = 0; q < num_qubits_; ++q) ops[q] = op(q);
  return PauliString(std::move(ops));
}

std::string PackedPauli::str() const {
  std::string s;
  s.reserve(num_qubits_);
  for (std::size_t q = 0; q < num_qubits_; ++q) s += scb_name(op(q));
  return s;
}

Matrix PackedPauli::to_matrix() const { return to_pauli_string().to_matrix(); }

std::pair<cplx, PackedPauli> PackedPauli::multiply(const PackedPauli& a,
                                                   const PackedPauli& b) {
  assert(a.num_qubits_ == b.num_qubits_);
  const std::size_t w = a.words();
  const int g = packed_mul_phase(a.x_words(), a.z_words(), b.x_words(),
                                 b.z_words(), w);
  PackedPauli r(a.num_qubits_);
  for (std::size_t i = 0; i < 2 * w; ++i) r.xz_[i] = a.xz_[i] ^ b.xz_[i];
  return {packed_phase(g), std::move(r)};
}

bool PackedPauli::commutes_with(const PackedPauli& o) const {
  assert(num_qubits_ == o.num_qubits_);
  return packed_commute(x_words(), z_words(), o.x_words(), o.z_words(),
                        words());
}

bool PackedPauli::less_qubitwise(const PackedPauli& a, const PackedPauli& b) {
  assert(a.num_qubits_ == b.num_qubits_);
  // Enum order I=0 < X=1 < Y=2 < Z=3 is what vector<Scb>'s <=> used.
  for (std::size_t q = 0; q < a.num_qubits_; ++q) {
    const auto ca = static_cast<unsigned>(a.op(q));
    const auto cb = static_cast<unsigned>(b.op(q));
    if (ca != cb) return ca < cb;
  }
  return false;
}

}  // namespace gecos
