#include "ops/scb_sum.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ops/conversion.hpp"
#include "telemetry/telemetry.hpp"

namespace gecos {

ScbSum::ScbSum() : kcache_(std::make_shared<ScbKernelCache>()) {}

ScbSum::ScbSum(std::size_t num_qubits)
    : num_qubits_(num_qubits), kcache_(std::make_shared<ScbKernelCache>()) {}

ScbSum::ScbSum(const ScbSum& o) : num_qubits_(o.num_qubits_), terms_(o.terms_) {
  // Share o's cache: the copy has identical terms, so one compilation
  // serves both (the serving layer's whole point). A moved-from o has no
  // cache; give the copy a fresh one.
  kcache_ = o.kcache_ != nullptr ? o.kcache_
                                 : std::make_shared<ScbKernelCache>();
}

ScbSum& ScbSum::operator=(const ScbSum& o) {
  if (this == &o) return *this;
  num_qubits_ = o.num_qubits_;
  terms_ = o.terms_;
  kcache_ = o.kcache_ != nullptr ? o.kcache_
                                 : std::make_shared<ScbKernelCache>();
  return *this;
}

ScbSum::ScbSum(ScbSum&& o) noexcept
    : num_qubits_(o.num_qubits_),
      terms_(std::move(o.terms_)),
      kcache_(std::move(o.kcache_)) {}

ScbSum& ScbSum::operator=(ScbSum&& o) noexcept {
  num_qubits_ = o.num_qubits_;
  terms_ = std::move(o.terms_);
  kcache_ = std::move(o.kcache_);
  return *this;
}

void ScbSum::ensure_qubits(std::size_t n) {
  if (num_qubits_ == 0) num_qubits_ = n;
  if (num_qubits_ != n)
    throw std::invalid_argument("ScbSum: mixed qubit counts");
}

void ScbSum::invalidate_kernels() {
  // Mutation is exclusive by contract, so reseating kcache_ here cannot
  // race with this sum's own const applications. Sole owner: mark dirty in
  // place (still under the cache mutex — another sum may have shared it a
  // moment ago on a different thread). Shared: detach onto a fresh cache
  // so the other owners keep a valid compilation of THEIR terms.
  if (kcache_ != nullptr && kcache_.use_count() == 1) {
    std::scoped_lock<std::mutex> lk(kcache_->mutex);
    kcache_->dirty = true;
    kcache_->kernels.clear();
  } else {
    kcache_ = std::make_shared<ScbKernelCache>();
  }
}

ScbKernelCache& ScbSum::ensure_cache() const {
  // Null only after a move stole the cache; the lazy recreation here is
  // NOT safe against two threads' concurrent first application of a
  // moved-from sum — but using a moved-from object concurrently without
  // first reassigning it is already out of contract.
  if (kcache_ == nullptr) kcache_ = std::make_shared<ScbKernelCache>();
  return *kcache_;
}

void ScbSum::add(const std::vector<Scb>& word, cplx coeff, double tol) {
  if (word.empty()) throw std::invalid_argument("ScbSum: empty word");
  ensure_qubits(word.size());
  invalidate_kernels();
  auto it = terms_.find(word);
  if (it == terms_.end()) {
    if (std::abs(coeff) > tol) terms_.emplace(word, coeff);
    return;
  }
  it->second += coeff;
  if (std::abs(it->second) <= tol) terms_.erase(it);
}

void ScbSum::add(const ScbTerm& term, double tol) {
  add(term.ops(), term.coeff(), tol);
  if (term.add_hc()) {
    const ScbTerm adj = term.adjoint();
    add(adj.ops(), adj.coeff(), tol);
  }
}

void ScbSum::add(const ScbSum& o, double tol) {
  for (const auto& [word, c] : o.terms_) add(word, c, tol);
}

cplx ScbSum::coeff_of(const std::vector<Scb>& word) const {
  auto it = terms_.find(word);
  return it == terms_.end() ? cplx(0.0) : it->second;
}

ScbSum ScbSum::operator+(const ScbSum& o) const {
  ScbSum r = *this;
  r.add(o);
  return r;
}

ScbSum ScbSum::operator-(const ScbSum& o) const {
  ScbSum r = *this;
  for (const auto& [word, c] : o.terms_) r.add(word, -c);
  return r;
}

ScbSum ScbSum::operator*(cplx s) const {
  ScbSum r(num_qubits_);  // fresh sum starts with a fresh dirty cache
  if (s == cplx(0.0)) return r;
  r.terms_ = terms_;
  for (auto& [word, c] : r.terms_) c *= s;
  return r;
}

ScbSum ScbSum::operator*(const ScbSum& o) const {
  if (num_qubits_ != o.num_qubits_ && !terms_.empty() && !o.terms_.empty())
    throw std::invalid_argument("ScbSum: product with mixed qubit counts");
  ScbSum r(num_qubits_ ? num_qubits_ : o.num_qubits_);
  std::vector<Scb> word(r.num_qubits());
  for (const auto& [aw, ac] : terms_) {
    for (const auto& [bw, bc] : o.terms_) {
      cplx coeff = ac * bc;
      bool zero = false;
      for (std::size_t q = 0; q < word.size() && !zero; ++q) {
        const ScaledScb p = scb_mul(aw[q], bw[q]);
        if (p.coeff == cplx(0.0)) zero = true;
        coeff *= p.coeff;
        word[q] = p.op;
      }
      if (!zero) r.add(word, coeff);
    }
  }
  return r;
}

ScbSum ScbSum::adjoint() const {
  ScbSum r(num_qubits_);
  std::vector<Scb> adj(num_qubits_);
  for (const auto& [word, c] : terms_) {
    for (std::size_t q = 0; q < word.size(); ++q) adj[q] = scb_adjoint(word[q]);
    r.add(adj, std::conj(c));
  }
  return r;
}

ScbSum ScbSum::commutator(const ScbSum& o) const {
  return *this * o - o * *this;
}

bool ScbSum::is_hermitian(double tol) const {
  std::vector<Scb> adj(num_qubits_);
  for (const auto& [word, c] : terms_) {
    for (std::size_t q = 0; q < word.size(); ++q) adj[q] = scb_adjoint(word[q]);
    if (std::abs(coeff_of(adj) - std::conj(c)) > tol) return false;
  }
  return true;
}

double ScbSum::one_norm() const {
  double s = 0;
  for (const auto& [word, c] : terms_) s += std::abs(c);
  return s;
}

void ScbSum::prune(double tol) {
  invalidate_kernels();
  for (auto it = terms_.begin(); it != terms_.end();)
    it = std::abs(it->second) <= tol ? terms_.erase(it) : std::next(it);
}

std::vector<ScbTerm> ScbSum::bare_terms() const {
  std::vector<ScbTerm> out;
  out.reserve(terms_.size());
  for (const auto& [word, c] : terms_) out.emplace_back(c, word, false);
  return out;
}

std::vector<ScbTerm> ScbSum::hermitian_terms(double tol) const {
  return gather_hermitian(bare_terms(), tol);
}

PauliSum ScbSum::to_pauli() const {
  return terms_to_pauli(bare_terms());
}

Matrix ScbSum::to_matrix() const {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  Matrix m(dim, dim);
  for (const auto& [word, c] : terms_) m += ScbTerm(c, word, false).bare_matrix();
  return m;
}

void ScbSum::apply_add(std::span<const cplx> x, std::span<cplx> y,
                       cplx scale) const {
  assert(x.data() != y.data() && "ScbSum::apply_add: x, y must not alias");
  ScbKernelCache& cache = ensure_cache();
  {
    // Guarded rebuild: several threads may share this sum const-ly (e.g.
    // expectation values from a measurement pool); only one rebuilds.
    std::scoped_lock<std::mutex> lk(cache.mutex);
    if (cache.dirty) {
      cache.kernels.clear();
      cache.kernels.reserve(terms_.size());
      for (const auto& [word, c] : terms_)
        cache.kernels.emplace_back(ScbTerm(c, word, false));
      cache.dirty = false;
      telemetry::count(telemetry::Counter::kernel_compiles, terms_.size());
    }
  }
  for (const TermKernel& k : cache.kernels) k.apply_add(x, y, scale);
}

std::string ScbSum::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [word, c] : terms_) {
    if (!first) os << " + ";
    first = false;
    os << ScbTerm(c, word, false).str();
  }
  if (first) os << "0";
  return os.str();
}

ScbSum operator*(cplx s, const ScbSum& m) { return m * s; }

}  // namespace gecos
