#include "ops/scb.hpp"

#include <cmath>
#include <stdexcept>

namespace gecos {

namespace {

const cplx kI(0.0, 1.0);

Matrix make_matrix(Scb op) {
  switch (op) {
    case Scb::I:
      return Matrix{{1, 0}, {0, 1}};
    case Scb::X:
      return Matrix{{0, 1}, {1, 0}};
    case Scb::Y:
      return Matrix{{0, -kI}, {kI, 0}};
    case Scb::Z:
      return Matrix{{1, 0}, {0, -1}};
    case Scb::N:
      return Matrix{{0, 0}, {0, 1}};
    case Scb::M:
      return Matrix{{1, 0}, {0, 0}};
    case Scb::Sm:
      return Matrix{{0, 1}, {0, 0}};  // |0><1|
    case Scb::Sp:
      return Matrix{{0, 0}, {1, 0}};  // |1><0|
  }
  throw std::logic_error("unknown Scb");
}

}  // namespace

const Matrix& scb_matrix(Scb op) {
  static const std::array<Matrix, 8> table = [] {
    std::array<Matrix, 8> t;
    for (Scb s : kAllScb) t[static_cast<std::size_t>(s)] = make_matrix(s);
    return t;
  }();
  return table[static_cast<std::size_t>(op)];
}

std::string scb_name(Scb op) {
  switch (op) {
    case Scb::I: return "I";
    case Scb::X: return "X";
    case Scb::Y: return "Y";
    case Scb::Z: return "Z";
    case Scb::N: return "n";
    case Scb::M: return "m";
    case Scb::Sm: return "s";
    case Scb::Sp: return "s+";
  }
  return "?";
}

Scb scb_from_name(const std::string& name) {
  for (Scb s : kAllScb)
    if (scb_name(s) == name) return s;
  throw std::invalid_argument("scb_from_name: unknown operator '" + name + "'");
}

Scb scb_adjoint(Scb op) {
  switch (op) {
    case Scb::Sm: return Scb::Sp;
    case Scb::Sp: return Scb::Sm;
    default: return op;
  }
}

bool scb_is_hermitian(Scb op) { return op != Scb::Sm && op != Scb::Sp; }

bool scb_is_offdiagonal(Scb op) {
  return op == Scb::X || op == Scb::Y || op == Scb::Sm || op == Scb::Sp;
}

bool scb_is_projector(Scb op) { return op == Scb::N || op == Scb::M; }

bool scb_is_transition(Scb op) { return op == Scb::Sm || op == Scb::Sp; }

bool scb_is_pauli(Scb op) {
  return op == Scb::X || op == Scb::Y || op == Scb::Z;
}

cplx scb_entry(Scb op, int x, int y) {
  return scb_matrix(op)(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
}

std::array<cplx, 4> scb_entries(Scb op) {
  const Matrix& m = scb_matrix(op);
  return {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
}

namespace {

// Matches p against coeff * basis element. The ratio is only accepted when it
// is consistent over *every* entry of the candidate's support and the
// candidate's zero pattern covers p; a separate `seen` flag distinguishes
// "no entry inspected yet" from an observed zero ratio (p vanishing on part
// of the support, e.g. diag(0, 1) against I, must reject the candidate).
std::optional<ScaledScb> match_scaled(const Matrix& p) {
  if (p.norm_max() < 1e-14) return ScaledScb{cplx(0.0), Scb::I};
  for (Scb cand : kAllScb) {
    const Matrix& q = scb_matrix(cand);
    cplx ratio = 0;
    bool seen = false;
    bool ok = true;
    for (std::size_t i = 0; i < 2 && ok; ++i)
      for (std::size_t j = 0; j < 2 && ok; ++j) {
        const cplx pv = p(i, j), qv = q(i, j);
        if (std::abs(qv) < 1e-14) {
          if (std::abs(pv) > 1e-14) ok = false;
        } else {
          const cplx r = pv / qv;
          if (!seen) {
            ratio = r;
            seen = true;
          } else if (std::abs(r - ratio) > 1e-13) {
            ok = false;
          }
        }
      }
    if (ok && seen && std::abs(ratio) > 1e-14) return ScaledScb{ratio, cand};
  }
  return std::nullopt;
}

}  // namespace

ScaledScb scb_mul(Scb a, Scb b) {
  // The Cayley table (paper Table IV) is finite: derive it once by matching
  // dense 2x2 products against coeff * basis element (closure guarantees a
  // match), then serve every call as an O(1) lookup — scb_mul sits on the
  // hot path of ScbSum products and the Jordan-Wigner composition.
  static const auto table = [] {
    std::array<std::array<ScaledScb, 8>, 8> t{};
    for (Scb x : kAllScb)
      for (Scb y : kAllScb) {
        const Matrix p = scb_matrix(x) * scb_matrix(y);
        const auto m = match_scaled(p);
        if (!m)
          throw std::logic_error("scb_mul: product left the basis (cannot happen)");
        t[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = *m;
      }
    return t;
  }();
  return table[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

std::optional<ScaledScb> scb_commutator(Scb a, Scb b) {
  const Matrix p = scb_matrix(a) * scb_matrix(b) - scb_matrix(b) * scb_matrix(a);
  return match_scaled(p);
}

std::optional<ScaledScb> scb_anticommutator(Scb a, Scb b) {
  const Matrix p = scb_matrix(a) * scb_matrix(b) + scb_matrix(b) * scb_matrix(a);
  return match_scaled(p);
}

}  // namespace gecos
