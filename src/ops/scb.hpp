// Single-Component Basis (SCB) operator algebra.
//
// The paper's formalism works with tensor products of the eight single-qubit
// operators {I, X, Y, Z, n, m, sigma, sigma^dagger}. This header provides the
// operators, their 2x2 matrices, the multiplicative Cayley table (paper
// Table IV), commutators/anticommutators (Table V) and adjoints.
//
// Conventions (see DESIGN.md): sigma = |0><1| = (X + iY)/2 (annihilation),
// sigma^dagger = |1><0|, n = |1><1|, m = |0><0|.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "linalg/matrix.hpp"

namespace gecos {

/// The eight single-qubit basis operators of the Single Component Basis.
enum class Scb : std::uint8_t {
  I = 0,
  X = 1,
  Y = 2,
  Z = 3,
  N = 4,   // number operator |1><1|
  M = 5,   // hole operator   |0><0|
  Sm = 6,  // sigma          |0><1|
  Sp = 7,  // sigma^dagger   |1><0|
};

inline constexpr std::array<Scb, 8> kAllScb = {Scb::I, Scb::X, Scb::Y, Scb::Z,
                                               Scb::N, Scb::M, Scb::Sm, Scb::Sp};

/// 2x2 matrix of a basis operator.
const Matrix& scb_matrix(Scb op);

/// Short printable name ("I","X","Y","Z","n","m","s","s+").
std::string scb_name(Scb op);
/// Parses the name produced by scb_name; throws on unknown token.
Scb scb_from_name(const std::string& name);

/// Adjoint stays in the basis: I,X,Y,Z,n,m are self-adjoint; Sm <-> Sp.
Scb scb_adjoint(Scb op);

/// True for the self-adjoint operators (everything but Sm/Sp).
bool scb_is_hermitian(Scb op);
/// True for X, Y, Sm, Sp: operators with off-diagonal support (they flip the
/// qubit in the computational basis).
bool scb_is_offdiagonal(Scb op);
/// True for n, m (diagonal projectors).
bool scb_is_projector(Scb op);
/// True for Sm, Sp (transition family of Section III).
bool scb_is_transition(Scb op);
/// True for X, Y, Z (Pauli family of Section III).
bool scb_is_pauli(Scb op);

/// A scalar multiple of a basis operator: coeff * op. coeff == 0 encodes the
/// zero operator (op is then irrelevant).
struct ScaledScb {
  cplx coeff;        ///< scalar factor; 0 encodes the zero operator
  Scb op = Scb::I;   ///< basis operator (irrelevant when coeff == 0)
};

/// Product a*b following the Cayley table (paper Table IV). The product of
/// any two basis operators is again a scalar multiple of a basis operator
/// (possibly zero); this closure is what makes the symbolic Jordan-Wigner
/// composition in src/fermion/jordan_wigner.hpp and the ScbSum product
/// (src/ops/scb_sum.hpp) collapse to one term per word. O(1): the table is
/// derived from the dense 2x2 matrices once and cached.
ScaledScb scb_mul(Scb a, Scb b);

/// Commutator [a,b] = ab - ba if it is a scalar multiple of a basis element;
/// std::nullopt when the result leaves the basis (e.g. [n,X] = i Y is in the
/// basis, but [X, n] related entries stay representable; entries that are
/// sums of two basis elements return nullopt).
std::optional<ScaledScb> scb_commutator(Scb a, Scb b);
std::optional<ScaledScb> scb_anticommutator(Scb a, Scb b);

/// <x| op |y> for computational basis bits x,y in {0,1}.
cplx scb_entry(Scb op, int x, int y);

/// Matrix entries as a flat array {e00, e01, e10, e11}.
std::array<cplx, 4> scb_entries(Scb op);

}  // namespace gecos
