// Conversions between the Single Component Basis and Pauli strings.
//
// term_to_pauli is the "mapping" arrow of Fig. 1 (usual strategy): each
// {n, m, sigma, sigma^dagger} factor doubles the number of Pauli strings,
// which is exactly the exponential blow-up the direct strategy avoids.
#pragma once

#include <vector>

#include "ops/pauli.hpp"
#include "ops/term.hpp"

namespace gecos {

/// Pauli expansion of a single ScbTerm (including its h.c. part if set).
PauliSum term_to_pauli(const ScbTerm& term);

/// Pauli expansion of a sum of terms, with cancellation across terms.
PauliSum terms_to_pauli(const std::vector<ScbTerm>& terms);

/// Number of Pauli strings the bare product of `term` expands to (before any
/// cross-term cancellation): 2^k with k = #(n,m,sigma,sigma^dagger factors).
std::size_t pauli_expansion_count(const ScbTerm& term);

/// Gathers a list of *bare* products (add_hc == false) into Hermitian terms:
/// Hermitian products keep a real coefficient; conjugate pairs A, A† merge
/// into one "+ h.c." term (eq. (5) of the paper). Throws if the input sum is
/// not Hermitian.
std::vector<ScbTerm> gather_hermitian(const std::vector<ScbTerm>& bare,
                                      double tol = 1e-12);

/// A Pauli string as a (trivially Hermitian) ScbTerm.
ScbTerm pauli_string_as_term(const PauliString& s, double coeff);

}  // namespace gecos
