#include "ops/sum_operator.hpp"

#include <stdexcept>

namespace gecos {

void SumOperator::add(std::shared_ptr<const LinearOperator> op, cplx coeff) {
  if (!op) throw std::invalid_argument("SumOperator::add: null operator");
  const std::size_t n = op->n_qubits();
  if (num_qubits_ == 0) num_qubits_ = n;
  if (num_qubits_ != n)
    throw std::invalid_argument("SumOperator::add: mixed qubit counts");
  parts_.emplace_back(coeff, std::move(op));
}

void SumOperator::apply_add(std::span<const cplx> x, std::span<cplx> y,
                            cplx scale) const {
  assert(x.data() != y.data() &&
         "SumOperator::apply_add: x, y must not alias");
  for (const auto& [c, op] : parts_) op->apply_add(x, y, scale * c);
}

}  // namespace gecos
