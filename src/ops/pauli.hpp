// Pauli-string algebra: the decomposition basis of the "usual" strategy.
//
// A PauliString is a word over {I,X,Y,Z}; a PauliSum is a coefficient map
// over strings. SCB terms expand into PauliSums with 2^k strings where k is
// the number of {n,m,sigma,sigma^dagger} factors -- the exponential blow-up
// Section II-B1 of the paper is about.
//
// PauliSum stores its strings in the packed symplectic representation
// (ops/packed.hpp) inside a flat open-addressing hash table (quadratic
// probing, power-of-two capacity), so add/product run allocation-free per
// term with O(words) XOR/popcount kernels instead of the legacy
// std::map<PauliString, cplx> with per-qubit Cayley loops. The legacy layer
// survives as RefPauliSum (ops/pauli_ref.hpp) for tests and benchmarks;
// sorted_terms() provides the deterministic ordered view the map used to
// give for free.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "ops/linear_op.hpp"
#include "ops/packed.hpp"
#include "ops/scb.hpp"

namespace gecos {

/// Word over {I,X,Y,Z}; index = qubit (0 = least significant).
class PauliString {
 public:
  /// Zero-qubit (empty) string.
  PauliString() = default;
  /// From per-qubit factors; throws if any entry is not I/X/Y/Z.
  explicit PauliString(std::vector<Scb> paulis);
  /// From text, qubit 0 first, e.g. "XIZY". Only I/X/Y/Z allowed.
  static PauliString parse(const std::string& text);

  /// Qubit count and per-qubit factor access.
  std::size_t num_qubits() const { return ops_.size(); }
  Scb op(std::size_t q) const { return ops_[q]; }
  const std::vector<Scb>& ops() const { return ops_; }

  /// True when every factor is I.
  bool is_identity() const;
  /// Number of non-identity factors.
  int weight() const;

  /// Text form (qubit 0 first) and dense 2^n matrix (verification only).
  std::string str() const;
  Matrix to_matrix() const;

  /// Phase-tracked product: returns (phase, string) with a*b = phase * string.
  /// Per-qubit Cayley loop; kept as the legacy reference for the packed
  /// word-parallel PackedPauli::multiply.
  static std::pair<cplx, PauliString> multiply(const PauliString& a,
                                               const PauliString& b);
  /// Per-qubit commutation test (legacy; see PackedPauli::commutes_with).
  bool commutes_with(const PauliString& o) const;

  /// Lexicographic order over (length, per-qubit factors), I < X < Y < Z.
  auto operator<=>(const PauliString& o) const = default;

 private:
  std::vector<Scb> ops_;  // entries restricted to I/X/Y/Z
};

/// Sparse complex combination of Pauli strings over packed symplectic keys.
///
/// A default-constructed sum adopts the qubit count of the first string
/// added; all strings must share it. Cancelled terms (|coeff| <= tol on add)
/// stop counting toward size() and are dropped from iteration immediately;
/// their table slots are reclaimed on the next rehash or prune().
class PauliSum : public LinearOperator {
 public:
  /// Empty sum; adopts the qubit count of the first string added.
  PauliSum() = default;
  /// Empty sum with a fixed qubit count.
  explicit PauliSum(std::size_t num_qubits) { ensure_qubits(num_qubits); }

  /// Qubit count (0 until fixed by construction or first add).
  std::size_t num_qubits() const { return num_qubits_; }
  /// LinearOperator qubit count (same as num_qubits()).
  std::size_t n_qubits() const override { return num_qubits_; }
  /// 64-bit words per mask (x or z) of each stored key.
  std::size_t words() const { return words_; }

  /// Accumulates coeff * string, merging with an existing entry and
  /// dropping it when the merged coefficient cancels below tol. Amortized
  /// O(words) per call.
  void add(const PauliString& s, cplx coeff, double tol = 1e-14);
  void add(const PackedPauli& p, cplx coeff, double tol = 1e-14);
  void add(const PauliSum& other);
  /// Expert API for allocation-free hot loops: key given as raw x/z spans of
  /// words() words each (bits above num_qubits() must be clear).
  void add_raw(const std::uint64_t* x, const std::uint64_t* z, cplx coeff,
               double tol = 1e-14);

  /// Number of live strings / whether the sum is zero.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Coefficient of a string (0 if absent).
  cplx coeff_of(const PauliString& s) const;
  cplx coeff_of(const PackedPauli& p) const;

  /// Deterministic snapshot ordered qubit-wise with I < X < Y < Z — the same
  /// order the legacy std::map iteration produced. O(size * num_qubits log).
  std::vector<std::pair<PauliString, cplx>> sorted_terms() const;

  /// Unordered fast iteration: f(const std::uint64_t* x,
  /// const std::uint64_t* z, cplx coeff) per live term.
  template <typename F>
  void for_each_raw(F&& f) const {
    const std::size_t stride = 2 * words_;
    for (std::size_t i = 0; i < cap_; ++i)
      if (state_[i] == kLive)
        f(keys_.data() + i * stride, keys_.data() + i * stride + words_,
          coeffs_[i]);
  }

  /// Pre-sizes the table for n live terms.
  void reserve(std::size_t n);

  /// Scalar scaling and termwise sum.
  PauliSum operator*(cplx s) const;
  PauliSum operator+(const PauliSum& o) const;
  /// Product expands distributively with packed-word phase tracking.
  PauliSum operator*(const PauliSum& o) const;

  /// Dense 2^n matrix (verification only; O(size * 4^n) writes).
  Matrix to_matrix(std::size_t num_qubits) const;
  /// True when every coefficient is real within tol (Pauli strings are
  /// Hermitian, so realness of the coefficients is the whole condition).
  bool is_hermitian(double tol = 1e-12) const;
  /// Sum of |coeff| (the LCU normalization lambda).
  double one_norm() const;
  /// Drops terms with |coeff| <= tol and compacts the table.
  void prune(double tol = 1e-12);

  /// Two-argument accumulate and overwriting apply from the base class.
  using LinearOperator::apply_add;
  /// y += scale * H x matrix-free: each term costs O(1) mask ops per basis
  /// state, no dense to_matrix() materialization. Requires x.size() == 2^n;
  /// x and y must be distinct buffers (asserted). Parallelized over output
  /// blocks (each thread owns a y range and reads x[y ^ mask]), one parallel
  /// region per call and no scratch allocation.
  void apply_add(std::span<const cplx> x, std::span<cplx> y,
                 cplx scale) const override;

  /// Deterministic " + "-joined text form (sorted_terms order).
  std::string str() const;

 private:
  static constexpr std::uint8_t kEmpty = 0, kLive = 1, kDead = 2;

  void ensure_qubits(std::size_t n);
  void grow(std::size_t min_live_capacity);

  std::size_t num_qubits_ = 0;
  std::size_t words_ = 0;
  std::size_t cap_ = 0;       // slot count, power of two (or 0 before first add)
  std::size_t occupied_ = 0;  // live + dead slots
  std::size_t live_ = 0;
  std::vector<std::uint64_t> keys_;  // cap_ * 2*words_: x block then z block
  std::vector<cplx> coeffs_;         // cap_
  std::vector<std::uint8_t> state_;  // cap_
};

/// Tr[P * M] / 2^n: the coefficient of P in the Pauli expansion of M.
cplx pauli_coefficient(const PauliString& p, const Matrix& m);

/// Full Pauli decomposition of a 2^n x 2^n matrix (4^n inner products; only
/// for small verification cases).
PauliSum pauli_decompose(const Matrix& m, std::size_t num_qubits,
                         double tol = 1e-12);

}  // namespace gecos
