// Pauli-string algebra: the decomposition basis of the "usual" strategy.
//
// A PauliString is a word over {I,X,Y,Z}; a PauliSum is a coefficient map
// over strings. SCB terms expand into PauliSums with 2^k strings where k is
// the number of {n,m,sigma,sigma^dagger} factors -- the exponential blow-up
// Section II-B1 of the paper is about.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ops/scb.hpp"

namespace gecos {

/// Word over {I,X,Y,Z}; index = qubit (0 = least significant).
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::vector<Scb> paulis);
  /// From text, qubit 0 first, e.g. "XIZY". Only I/X/Y/Z allowed.
  static PauliString parse(const std::string& text);

  std::size_t num_qubits() const { return ops_.size(); }
  Scb op(std::size_t q) const { return ops_[q]; }
  const std::vector<Scb>& ops() const { return ops_; }

  bool is_identity() const;
  /// Number of non-identity factors.
  int weight() const;

  std::string str() const;
  Matrix to_matrix() const;

  /// Phase-tracked product: returns (phase, string) with a*b = phase * string.
  static std::pair<cplx, PauliString> multiply(const PauliString& a,
                                               const PauliString& b);
  bool commutes_with(const PauliString& o) const;

  auto operator<=>(const PauliString& o) const = default;

 private:
  std::vector<Scb> ops_;  // entries restricted to I/X/Y/Z
};

/// Sparse real/complex combination of Pauli strings.
class PauliSum {
 public:
  PauliSum() = default;

  void add(const PauliString& s, cplx coeff, double tol = 1e-14);
  void add(const PauliSum& other);

  std::size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }
  const std::map<PauliString, cplx>& terms() const { return terms_; }

  PauliSum operator*(cplx s) const;
  PauliSum operator+(const PauliSum& o) const;
  /// Product expands distributively with Pauli phase tracking.
  PauliSum operator*(const PauliSum& o) const;

  Matrix to_matrix(std::size_t num_qubits) const;
  bool is_hermitian(double tol = 1e-12) const;
  /// Sum of |coeff| (the LCU normalization lambda).
  double one_norm() const;
  /// Drops terms with |coeff| <= tol.
  void prune(double tol = 1e-12);

  std::string str() const;

 private:
  std::map<PauliString, cplx> terms_;
};

/// Tr[P * M] / 2^n: the coefficient of P in the Pauli expansion of M.
cplx pauli_coefficient(const PauliString& p, const Matrix& m);

/// Full Pauli decomposition of a 2^n x 2^n matrix (4^n inner products; only
/// for small verification cases).
PauliSum pauli_decompose(const Matrix& m, std::size_t num_qubits,
                         double tol = 1e-12);

}  // namespace gecos
