#include "ops/linear_op.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/parallel.hpp"

namespace gecos {

void LinearOperator::apply(std::span<const cplx> x, std::span<cplx> y) const {
  assert(x.data() != y.data() &&
         "LinearOperator::apply: x and y must not alias");
  if (x.size() != y.size() || x.size() != dim())
    throw std::invalid_argument("LinearOperator::apply: size mismatch");
  // The one logical-matvec chokepoint: every solver applies operators
  // through here, so Counter::matvecs / Hist::matvec_ns count operator
  // applications regardless of the concrete kernel (per-sweep traffic is
  // counted inside the implementations' apply_add).
  GECOS_SPAN("op.apply");
  parallel_for(y.size(), [&](std::size_t b, std::size_t e, int) {
    std::fill(y.begin() + static_cast<std::ptrdiff_t>(b),
              y.begin() + static_cast<std::ptrdiff_t>(e), cplx(0.0));
  });
  if (telemetry::metrics_enabled()) {
    const std::uint64_t t0 = telemetry::now_ns();
    apply_add(x, y, cplx(1.0));
    telemetry::count(telemetry::Counter::matvecs);
    telemetry::observe(telemetry::Hist::matvec_ns, telemetry::now_ns() - t0);
    return;
  }
  apply_add(x, y, cplx(1.0));
}

void LinearOperator::apply_inplace(std::span<cplx> x,
                                   std::span<cplx> scratch) const {
  assert(x.data() != scratch.data() &&
         "LinearOperator::apply_inplace: scratch must not alias x");
  if (scratch.size() != x.size())
    throw std::invalid_argument(
        "LinearOperator::apply_inplace: scratch size mismatch");
  apply(x, scratch);
  parallel_for(x.size(), [&](std::size_t b, std::size_t e, int) {
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(b),
              scratch.begin() + static_cast<std::ptrdiff_t>(e),
              x.begin() + static_cast<std::ptrdiff_t>(b));
  });
}

}  // namespace gecos
