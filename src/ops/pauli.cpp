#include "ops/pauli.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace gecos {

namespace {

// Single-qubit Pauli product table: a*b = phase * c over indices I=0,X=1,Y=2,Z=3.
struct PauliProd {
  cplx phase;
  int result;
};

PauliProd pauli1_mul(int a, int b) {
  static const cplx i(0.0, 1.0);
  if (a == 0) return {1.0, b};
  if (b == 0) return {1.0, a};
  if (a == b) return {1.0, 0};
  // XY=iZ, YZ=iX, ZX=iY and antisymmetric partners.
  if (a == 1 && b == 2) return {i, 3};
  if (a == 2 && b == 1) return {-i, 3};
  if (a == 2 && b == 3) return {i, 1};
  if (a == 3 && b == 2) return {-i, 1};
  if (a == 3 && b == 1) return {i, 2};
  if (a == 1 && b == 3) return {-i, 2};
  throw std::logic_error("pauli1_mul");
}

int pauli_index(Scb s) {
  switch (s) {
    case Scb::I: return 0;
    case Scb::X: return 1;
    case Scb::Y: return 2;
    case Scb::Z: return 3;
    default:
      throw std::invalid_argument("PauliString may only contain I/X/Y/Z");
  }
}

Scb pauli_from_index(int i) {
  static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  return t[static_cast<std::size_t>(i)];
}

bool key_equal(const std::uint64_t* slot, const std::uint64_t* x,
               const std::uint64_t* z, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i)
    if (slot[i] != x[i]) return false;
  for (std::size_t i = 0; i < words; ++i)
    if (slot[words + i] != z[i]) return false;
  return true;
}

std::size_t next_pow2(std::size_t v) {
  return std::max<std::size_t>(16, std::bit_ceil(v));
}

}  // namespace

PauliString::PauliString(std::vector<Scb> paulis) : ops_(std::move(paulis)) {
  for (Scb s : ops_) (void)pauli_index(s);  // validate
}

PauliString PauliString::parse(const std::string& text) {
  std::vector<Scb> ops;
  ops.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case 'I': ops.push_back(Scb::I); break;
      case 'X': ops.push_back(Scb::X); break;
      case 'Y': ops.push_back(Scb::Y); break;
      case 'Z': ops.push_back(Scb::Z); break;
      default:
        throw std::invalid_argument("PauliString::parse: bad char");
    }
  }
  return PauliString(std::move(ops));
}

bool PauliString::is_identity() const {
  for (Scb s : ops_)
    if (s != Scb::I) return false;
  return true;
}

int PauliString::weight() const {
  int w = 0;
  for (Scb s : ops_) w += (s != Scb::I);
  return w;
}

std::string PauliString::str() const {
  std::string s;
  s.reserve(ops_.size());
  for (Scb o : ops_) s += scb_name(o);
  return s;
}

Matrix PauliString::to_matrix() const {
  // Qubit 0 is the least significant bit: matrix = op[n-1] (x) ... (x) op[0].
  Matrix m = Matrix::identity(1);
  for (std::size_t q = ops_.size(); q-- > 0;) m = m.kron(scb_matrix(ops_[q]));
  return m;
}

std::pair<cplx, PauliString> PauliString::multiply(const PauliString& a,
                                                   const PauliString& b) {
  assert(a.num_qubits() == b.num_qubits());
  cplx phase = 1.0;
  std::vector<Scb> out(a.num_qubits());
  for (std::size_t q = 0; q < a.num_qubits(); ++q) {
    const PauliProd p = pauli1_mul(pauli_index(a.op(q)), pauli_index(b.op(q)));
    phase *= p.phase;
    out[q] = pauli_from_index(p.result);
  }
  return {phase, PauliString(std::move(out))};
}

bool PauliString::commutes_with(const PauliString& o) const {
  assert(num_qubits() == o.num_qubits());
  int anti = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    const int a = pauli_index(ops_[q]);
    const int b = pauli_index(o.op(q));
    if (a != 0 && b != 0 && a != b) ++anti;
  }
  return anti % 2 == 0;
}

// -- PauliSum ----------------------------------------------------------------

void PauliSum::ensure_qubits(std::size_t n) {
  if (num_qubits_ == 0) {
    // A zero-qubit sum may already hold the scalar term (stride-0 keys);
    // adopting a different qubit count then is the same mixed-count error as
    // below, not a license to drop it.
    if (n != 0 && occupied_ != 0)
      throw std::invalid_argument("PauliSum: mixed qubit counts");
    num_qubits_ = n;
    words_ = packed_words(n);
    if (cap_ != 0) {
      // A table reserved before adoption was laid out with stride 0 and is
      // empty; discard it so the next add sizes it correctly.
      cap_ = occupied_ = live_ = 0;
      keys_.clear();
      coeffs_.clear();
      state_.clear();
    }
    return;
  }
  // A real check, not an assert: with mismatched word counts the raw-key
  // paths below would read out of bounds in Release builds.
  if (n != num_qubits_)
    throw std::invalid_argument("PauliSum: mixed qubit counts");
}

void PauliSum::grow(std::size_t min_live_capacity) {
  const std::size_t new_cap = next_pow2(min_live_capacity * 2);
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<cplx> old_coeffs = std::move(coeffs_);
  std::vector<std::uint8_t> old_state = std::move(state_);
  const std::size_t old_cap = cap_;
  const std::size_t stride = 2 * words_;

  cap_ = new_cap;
  keys_.assign(cap_ * stride, 0);
  coeffs_.assign(cap_, cplx(0.0));
  state_.assign(cap_, kEmpty);
  occupied_ = live_;  // dead slots are dropped by the rehash

  const std::size_t mask = cap_ - 1;
  for (std::size_t i = 0; i < old_cap; ++i) {
    if (old_state[i] != kLive) continue;
    const std::uint64_t* key = old_keys.data() + i * stride;
    std::size_t idx = packed_hash_xz(key, key + words_, words_) & mask;
    std::size_t step = 0;
    while (state_[idx] != kEmpty) idx = (idx + ++step) & mask;
    std::memcpy(keys_.data() + idx * stride, key, stride * sizeof(std::uint64_t));
    coeffs_[idx] = old_coeffs[i];
    state_[idx] = kLive;
  }
}

void PauliSum::reserve(std::size_t n) {
  if (next_pow2(n * 2) > cap_) grow(n);
}

void PauliSum::add_raw(const std::uint64_t* x, const std::uint64_t* z,
                       cplx coeff, double tol) {
  // Keep occupancy (live + dead) below 5/8 so quadratic probes stay short.
  if (cap_ == 0 || (occupied_ + 1) * 8 > cap_ * 5) grow(occupied_ + 1);
  const std::size_t stride = 2 * words_;
  const std::size_t mask = cap_ - 1;
  std::size_t idx = packed_hash_xz(x, z, words_) & mask;
  std::size_t step = 0;
  while (true) {
    if (state_[idx] == kEmpty) {
      if (std::abs(coeff) <= tol) return;
      std::uint64_t* slot = keys_.data() + idx * stride;
      std::memcpy(slot, x, words_ * sizeof(std::uint64_t));
      std::memcpy(slot + words_, z, words_ * sizeof(std::uint64_t));
      coeffs_[idx] = coeff;
      state_[idx] = kLive;
      ++occupied_;
      ++live_;
      return;
    }
    if (key_equal(keys_.data() + idx * stride, x, z, words_)) {
      cplx c = coeffs_[idx] + coeff;
      if (std::abs(c) <= tol) {
        // Mirror the legacy map erase: the residual below tol is discarded.
        if (state_[idx] == kLive) --live_;
        coeffs_[idx] = cplx(0.0);
        state_[idx] = kDead;
      } else {
        if (state_[idx] == kDead) ++live_;
        coeffs_[idx] = c;
        state_[idx] = kLive;
      }
      return;
    }
    idx = (idx + ++step) & mask;
  }
}

void PauliSum::add(const PackedPauli& p, cplx coeff, double tol) {
  ensure_qubits(p.num_qubits());
  add_raw(p.x_words(), p.z_words(), coeff, tol);
}

void PauliSum::add(const PauliString& s, cplx coeff, double tol) {
  add(PackedPauli::from_string(s), coeff, tol);
}

void PauliSum::add(const PauliSum& other) {
  if (other.empty()) return;
  if (&other == this) {
    // add_raw may rehash mid-iteration; doubling must walk a snapshot.
    const PauliSum copy = other;
    add(copy);
    return;
  }
  ensure_qubits(other.num_qubits());
  other.for_each_raw(
      [&](const std::uint64_t* x, const std::uint64_t* z, cplx c) {
        add_raw(x, z, c);
      });
}

cplx PauliSum::coeff_of(const PackedPauli& p) const {
  if (cap_ == 0 || p.num_qubits() != num_qubits_) return cplx(0.0);
  const std::size_t stride = 2 * words_;
  const std::size_t mask = cap_ - 1;
  std::size_t idx = packed_hash_xz(p.x_words(), p.z_words(), words_) & mask;
  std::size_t step = 0;
  while (state_[idx] != kEmpty) {
    if (key_equal(keys_.data() + idx * stride, p.x_words(), p.z_words(),
                  words_))
      return state_[idx] == kLive ? coeffs_[idx] : cplx(0.0);
    idx = (idx + ++step) & mask;
  }
  return cplx(0.0);
}

cplx PauliSum::coeff_of(const PauliString& s) const {
  return coeff_of(PackedPauli::from_string(s));
}

std::vector<std::pair<PauliString, cplx>> PauliSum::sorted_terms() const {
  std::vector<std::pair<PauliString, cplx>> out;
  out.reserve(live_);
  for_each_raw([&](const std::uint64_t* x, const std::uint64_t* z, cplx c) {
    out.emplace_back(PackedPauli(num_qubits_, x, z).to_pauli_string(), c);
  });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

PauliSum PauliSum::operator*(cplx s) const {
  PauliSum r(num_qubits_);
  r.reserve(live_);
  for_each_raw([&](const std::uint64_t* x, const std::uint64_t* z, cplx c) {
    r.add_raw(x, z, c * s);
  });
  return r;
}

PauliSum PauliSum::operator+(const PauliSum& o) const {
  PauliSum r = *this;
  r.add(o);
  return r;
}

PauliSum PauliSum::operator*(const PauliSum& o) const {
  if (!empty() && !o.empty() && num_qubits_ != o.num_qubits_)
    throw std::invalid_argument("PauliSum::operator*: mixed qubit counts");
  PauliSum r(num_qubits_ ? num_qubits_ : o.num_qubits_);
  r.reserve(std::max(live_, o.live_));
  std::vector<std::uint64_t> prod(2 * words_);
  for_each_raw([&](const std::uint64_t* ax, const std::uint64_t* az, cplx ca) {
    o.for_each_raw(
        [&](const std::uint64_t* bx, const std::uint64_t* bz, cplx cb) {
          for (std::size_t i = 0; i < words_; ++i) {
            prod[i] = ax[i] ^ bx[i];
            prod[words_ + i] = az[i] ^ bz[i];
          }
          const int g = packed_mul_phase(ax, az, bx, bz, words_);
          r.add_raw(prod.data(), prod.data() + words_,
                    ca * cb * packed_phase(g));
        });
  });
  return r;
}

Matrix PauliSum::to_matrix(std::size_t num_qubits) const {
  if (!empty() && num_qubits != num_qubits_)
    throw std::invalid_argument("PauliSum::to_matrix: qubit count mismatch");
  const std::size_t dim = std::size_t{1} << num_qubits;
  Matrix m(dim, dim);
  for_each_raw([&](const std::uint64_t* x, const std::uint64_t* z, cplx c) {
    m += PackedPauli(num_qubits_, x, z).to_matrix() * c;
  });
  return m;
}

bool PauliSum::is_hermitian(double tol) const {
  bool herm = true;
  for_each_raw([&](const std::uint64_t*, const std::uint64_t*, cplx c) {
    if (std::abs(c.imag()) > tol) herm = false;
  });
  return herm;
}

double PauliSum::one_norm() const {
  double s = 0;
  for_each_raw([&](const std::uint64_t*, const std::uint64_t*, cplx c) {
    s += std::abs(c);
  });
  return s;
}

void PauliSum::prune(double tol) {
  for (std::size_t i = 0; i < cap_; ++i) {
    if (state_[i] == kLive && std::abs(coeffs_[i]) <= tol) {
      coeffs_[i] = cplx(0.0);
      state_[i] = kDead;
      --live_;
    }
  }
  if (cap_ != 0 && occupied_ != live_) grow(live_);  // compact dead slots
}

void PauliSum::apply_add(std::span<const cplx> x, std::span<cplx> y,
                         cplx scale) const {
  if (empty()) return;  // the zero operator: y += 0 * x for any dimension
  if (num_qubits_ > 63)
    throw std::invalid_argument("PauliSum::apply_add: masks need one word");
  if (x.size() != y.size() || x.size() != (std::size_t{1} << num_qubits_))
    throw std::invalid_argument(
        "PauliSum::apply_add: statevector size mismatch");
  assert(x.data() != y.data() && "PauliSum::apply_add: x, y must not alias");
  if (telemetry::metrics_enabled()) {
    // Every live term streams the full statevector once: dim outputs
    // updated per term at 48 B each (x gather + y read-modify-write).
    const std::uint64_t d = x.size();
    telemetry::count(telemetry::Counter::kernel_sweeps, live_);
    telemetry::count(telemetry::Counter::amplitudes_touched, d);
    telemetry::count(telemetry::Counter::bytes_moved, live_ * d * 48);
  }
  // Partition the *output* index o = s ^ xm across threads: each thread owns
  // a contiguous y range, loops every live term per range and gathers from
  // x[o ^ xm], so no two threads ever write the same amplitude and the whole
  // call is one parallel region with zero scratch.
  parallel_for(x.size(), [&](std::size_t o0, std::size_t o1, int) {
    for_each_raw(
        [&](const std::uint64_t* xw, const std::uint64_t* zw, cplx c) {
          const std::uint64_t xm = words_ ? xw[0] : 0;
          const std::uint64_t zm = words_ ? zw[0] : 0;
          // W(x,z)|s> = i^{pc(x&z)} (-1)^{pc(z&s)} |s^x>.
          const cplx base =
              c * scale * packed_phase(std::popcount(xm & zm) & 3);
          for (std::uint64_t o = o0; o < o1; ++o) {
            const std::uint64_t s = o ^ xm;
            const cplx amp = (std::popcount(zm & s) & 1) ? -base : base;
            y[o] += amp * x[s];
          }
        });
  });
}

std::string PauliSum::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [s, c] : sorted_terms()) {
    if (!first) os << " + ";
    first = false;
    os << "(" << c.real();
    if (c.imag() != 0.0) os << (c.imag() > 0 ? "+" : "") << c.imag() << "i";
    os << ")*" << s.str();
  }
  return os.str();
}

cplx pauli_coefficient(const PauliString& p, const Matrix& m) {
  const Matrix pm = p.to_matrix();
  assert(pm.rows() == m.rows());
  cplx tr = 0;
  // Tr[P M] = sum_ij P(i,j) M(j,i); P is sparse (one entry per row).
  for (std::size_t i = 0; i < pm.rows(); ++i)
    for (std::size_t j = 0; j < pm.cols(); ++j)
      if (pm(i, j) != cplx(0.0)) tr += pm(i, j) * m(j, i);
  return tr / cplx(static_cast<double>(m.rows()));
}

PauliSum pauli_decompose(const Matrix& m, std::size_t num_qubits, double tol) {
  assert(m.rows() == (std::size_t{1} << num_qubits));
  PauliSum sum(num_qubits);
  std::vector<Scb> word(num_qubits, Scb::I);
  // Enumerate all 4^n words by counting in base 4.
  const std::size_t total = std::size_t{1} << (2 * num_qubits);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t q = 0; q < num_qubits; ++q) {
      static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
      word[q] = t[c & 3];
      c >>= 2;
    }
    PauliString ps(word);
    const cplx coeff = pauli_coefficient(ps, m);
    if (std::abs(coeff) > tol) sum.add(ps, coeff);
  }
  return sum;
}

}  // namespace gecos
