#include "ops/pauli.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gecos {

namespace {

// Single-qubit Pauli product table: a*b = phase * c over indices I=0,X=1,Y=2,Z=3.
struct PauliProd {
  cplx phase;
  int result;
};

PauliProd pauli1_mul(int a, int b) {
  static const cplx i(0.0, 1.0);
  if (a == 0) return {1.0, b};
  if (b == 0) return {1.0, a};
  if (a == b) return {1.0, 0};
  // XY=iZ, YZ=iX, ZX=iY and antisymmetric partners.
  if (a == 1 && b == 2) return {i, 3};
  if (a == 2 && b == 1) return {-i, 3};
  if (a == 2 && b == 3) return {i, 1};
  if (a == 3 && b == 2) return {-i, 1};
  if (a == 3 && b == 1) return {i, 2};
  if (a == 1 && b == 3) return {-i, 2};
  throw std::logic_error("pauli1_mul");
}

int pauli_index(Scb s) {
  switch (s) {
    case Scb::I: return 0;
    case Scb::X: return 1;
    case Scb::Y: return 2;
    case Scb::Z: return 3;
    default:
      throw std::invalid_argument("PauliString may only contain I/X/Y/Z");
  }
}

Scb pauli_from_index(int i) {
  static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  return t[static_cast<std::size_t>(i)];
}

}  // namespace

PauliString::PauliString(std::vector<Scb> paulis) : ops_(std::move(paulis)) {
  for (Scb s : ops_) (void)pauli_index(s);  // validate
}

PauliString PauliString::parse(const std::string& text) {
  std::vector<Scb> ops;
  ops.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case 'I': ops.push_back(Scb::I); break;
      case 'X': ops.push_back(Scb::X); break;
      case 'Y': ops.push_back(Scb::Y); break;
      case 'Z': ops.push_back(Scb::Z); break;
      default:
        throw std::invalid_argument("PauliString::parse: bad char");
    }
  }
  return PauliString(std::move(ops));
}

bool PauliString::is_identity() const {
  for (Scb s : ops_)
    if (s != Scb::I) return false;
  return true;
}

int PauliString::weight() const {
  int w = 0;
  for (Scb s : ops_) w += (s != Scb::I);
  return w;
}

std::string PauliString::str() const {
  std::string s;
  s.reserve(ops_.size());
  for (Scb o : ops_) s += scb_name(o);
  return s;
}

Matrix PauliString::to_matrix() const {
  // Qubit 0 is the least significant bit: matrix = op[n-1] (x) ... (x) op[0].
  Matrix m = Matrix::identity(1);
  for (std::size_t q = ops_.size(); q-- > 0;) m = m.kron(scb_matrix(ops_[q]));
  return m;
}

std::pair<cplx, PauliString> PauliString::multiply(const PauliString& a,
                                                   const PauliString& b) {
  assert(a.num_qubits() == b.num_qubits());
  cplx phase = 1.0;
  std::vector<Scb> out(a.num_qubits());
  for (std::size_t q = 0; q < a.num_qubits(); ++q) {
    const PauliProd p = pauli1_mul(pauli_index(a.op(q)), pauli_index(b.op(q)));
    phase *= p.phase;
    out[q] = pauli_from_index(p.result);
  }
  return {phase, PauliString(std::move(out))};
}

bool PauliString::commutes_with(const PauliString& o) const {
  assert(num_qubits() == o.num_qubits());
  int anti = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    const int a = pauli_index(ops_[q]);
    const int b = pauli_index(o.op(q));
    if (a != 0 && b != 0 && a != b) ++anti;
  }
  return anti % 2 == 0;
}

void PauliSum::add(const PauliString& s, cplx coeff, double tol) {
  if (std::abs(coeff) <= tol) return;
  auto [it, inserted] = terms_.try_emplace(s, coeff);
  if (!inserted) {
    it->second += coeff;
    if (std::abs(it->second) <= tol) terms_.erase(it);
  }
}

void PauliSum::add(const PauliSum& other) {
  for (const auto& [s, c] : other.terms_) add(s, c);
}

PauliSum PauliSum::operator*(cplx s) const {
  PauliSum r;
  for (const auto& [str, c] : terms_) r.add(str, c * s);
  return r;
}

PauliSum PauliSum::operator+(const PauliSum& o) const {
  PauliSum r = *this;
  r.add(o);
  return r;
}

PauliSum PauliSum::operator*(const PauliSum& o) const {
  PauliSum r;
  for (const auto& [sa, ca] : terms_)
    for (const auto& [sb, cb] : o.terms_) {
      auto [phase, prod] = PauliString::multiply(sa, sb);
      r.add(prod, ca * cb * phase);
    }
  return r;
}

Matrix PauliSum::to_matrix(std::size_t num_qubits) const {
  const std::size_t dim = std::size_t{1} << num_qubits;
  Matrix m(dim, dim);
  for (const auto& [s, c] : terms_) {
    assert(s.num_qubits() == num_qubits);
    m += s.to_matrix() * c;
  }
  return m;
}

bool PauliSum::is_hermitian(double tol) const {
  for (const auto& [s, c] : terms_)
    if (std::abs(c.imag()) > tol) return false;
  return true;
}

double PauliSum::one_norm() const {
  double s = 0;
  for (const auto& [str, c] : terms_) s += std::abs(c);
  return s;
}

void PauliSum::prune(double tol) {
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::abs(it->second) <= tol)
      it = terms_.erase(it);
    else
      ++it;
  }
}

std::string PauliSum::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [s, c] : terms_) {
    if (!first) os << " + ";
    first = false;
    os << "(" << c.real();
    if (c.imag() != 0.0) os << (c.imag() > 0 ? "+" : "") << c.imag() << "i";
    os << ")*" << s.str();
  }
  return os.str();
}

cplx pauli_coefficient(const PauliString& p, const Matrix& m) {
  const Matrix pm = p.to_matrix();
  assert(pm.rows() == m.rows());
  cplx tr = 0;
  // Tr[P M] = sum_ij P(i,j) M(j,i); P is sparse (one entry per row).
  for (std::size_t i = 0; i < pm.rows(); ++i)
    for (std::size_t j = 0; j < pm.cols(); ++j)
      if (pm(i, j) != cplx(0.0)) tr += pm(i, j) * m(j, i);
  return tr / cplx(static_cast<double>(m.rows()));
}

PauliSum pauli_decompose(const Matrix& m, std::size_t num_qubits, double tol) {
  assert(m.rows() == (std::size_t{1} << num_qubits));
  PauliSum sum;
  std::vector<Scb> word(num_qubits, Scb::I);
  // Enumerate all 4^n words by counting in base 4.
  const std::size_t total = std::size_t{1} << (2 * num_qubits);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t q = 0; q < num_qubits; ++q) {
      static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
      word[q] = t[c & 3];
      c >>= 2;
    }
    PauliString ps(word);
    const cplx coeff = pauli_coefficient(ps, m);
    if (std::abs(coeff) > tol) sum.add(ps, coeff);
  }
  return sum;
}

}  // namespace gecos
