// LinearOperator: the one abstraction every statevector kernel sits behind.
//
// PauliSum, ScbSum, TermKernel, CsrMatrix and SumOperator all act on a
// 2^n-amplitude statevector; before this interface each carried its own
// ad-hoc apply signature. A LinearOperator exposes exactly one virtual hot
// path — apply_add(x, y, scale): y += scale * A x — and the base class
// derives the rest (overwriting apply, in-place apply with caller-owned
// scratch, dimension bookkeeping). StateVector::expectation and the Trotter
// evolution engine are written against this interface only, so every
// concrete operator is usable in every simulation workload.
//
// Aliasing precondition: x and y must be DISTINCT buffers in every
// apply/apply_add call. The kernels read x[s ^ flip]-style permuted indices
// while writing y, so in-place application through the two-buffer entry
// points would silently corrupt amplitudes; each implementation asserts
// x.data() != y.data(). Use apply_inplace when x should be overwritten — it
// routes through a scratch buffer once, instead of every caller re-deriving
// the dance.
#pragma once

#include <cassert>
#include <span>

#include "linalg/matrix.hpp"

namespace gecos {

/// Abstract linear operator on a 2^n-dimensional statevector.
class LinearOperator {
 public:
  /// Virtual destructor: operators are deleted through base pointers (e.g.
  /// by SumOperator's shared ownership).
  virtual ~LinearOperator() = default;

  /// Qubit count n of the space the operator acts on.
  virtual std::size_t n_qubits() const = 0;
  /// Statevector dimension; defaults to 2^n_qubits(). CsrMatrix overrides it
  /// (its rows need not be a power of two).
  virtual std::size_t dim() const { return std::size_t{1} << n_qubits(); }

  /// y += scale * A x. The single virtual kernel every implementation
  /// provides. Precondition (asserted): x and y are distinct buffers of
  /// dim() amplitudes.
  virtual void apply_add(std::span<const cplx> x, std::span<cplx> y,
                         cplx scale) const = 0;

  /// y += A x (scale = 1). Same no-aliasing precondition as the scaled form.
  void apply_add(std::span<const cplx> x, std::span<cplx> y) const {
    apply_add(x, y, cplx(1.0));
  }

  /// y = A x: zero-fills y, then apply_add. Throws std::invalid_argument on
  /// a size mismatch; asserts x and y are distinct buffers.
  void apply(std::span<const cplx> x, std::span<cplx> y) const;

  /// x = A x via a scratch buffer (the one sanctioned way to apply in
  /// place). scratch must have x.size() amplitudes and be distinct from x;
  /// its prior contents are ignored and clobbered.
  void apply_inplace(std::span<cplx> x, std::span<cplx> scratch) const;
};

}  // namespace gecos
