#include "ops/pauli_ref.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gecos {

void RefPauliSum::add(const PauliString& s, cplx coeff, double tol) {
  if (std::abs(coeff) <= tol) return;
  auto [it, inserted] = terms_.try_emplace(s, coeff);
  if (!inserted) {
    it->second += coeff;
    if (std::abs(it->second) <= tol) terms_.erase(it);
  }
}

void RefPauliSum::add(const RefPauliSum& other) {
  for (const auto& [s, c] : other.terms_) add(s, c);
}

RefPauliSum RefPauliSum::operator*(cplx s) const {
  RefPauliSum r;
  for (const auto& [str, c] : terms_) r.add(str, c * s);
  return r;
}

RefPauliSum RefPauliSum::operator+(const RefPauliSum& o) const {
  RefPauliSum r = *this;
  r.add(o);
  return r;
}

RefPauliSum RefPauliSum::operator*(const RefPauliSum& o) const {
  RefPauliSum r;
  for (const auto& [sa, ca] : terms_)
    for (const auto& [sb, cb] : o.terms_) {
      auto [phase, prod] = PauliString::multiply(sa, sb);
      r.add(prod, ca * cb * phase);
    }
  return r;
}

Matrix RefPauliSum::to_matrix(std::size_t num_qubits) const {
  const std::size_t dim = std::size_t{1} << num_qubits;
  Matrix m(dim, dim);
  for (const auto& [s, c] : terms_) {
    assert(s.num_qubits() == num_qubits);
    m += s.to_matrix() * c;
  }
  return m;
}

double RefPauliSum::one_norm() const {
  double s = 0;
  for (const auto& [str, c] : terms_) s += std::abs(c);
  return s;
}

void RefPauliSum::prune(double tol) {
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::abs(it->second) <= tol)
      it = terms_.erase(it);
    else
      ++it;
  }
}

std::string RefPauliSum::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [s, c] : terms_) {
    if (!first) os << " + ";
    first = false;
    os << "(" << c.real();
    if (c.imag() != 0.0) os << (c.imag() > 0 ? "+" : "") << c.imag() << "i";
    os << ")*" << s.str();
  }
  return os.str();
}

namespace {

/// Single-qubit Pauli expansion op = sum_i coeff_i * P_i (legacy table).
std::vector<std::pair<cplx, Scb>> scb_to_pauli1(Scb op) {
  const cplx i(0.0, 1.0);
  switch (op) {
    case Scb::I: return {{1.0, Scb::I}};
    case Scb::X: return {{1.0, Scb::X}};
    case Scb::Y: return {{1.0, Scb::Y}};
    case Scb::Z: return {{1.0, Scb::Z}};
    case Scb::N: return {{0.5, Scb::I}, {-0.5, Scb::Z}};   // (I - Z)/2
    case Scb::M: return {{0.5, Scb::I}, {0.5, Scb::Z}};    // (I + Z)/2
    case Scb::Sm: return {{0.5, Scb::X}, {0.5 * i, Scb::Y}};   // (X + iY)/2
    case Scb::Sp: return {{0.5, Scb::X}, {-0.5 * i, Scb::Y}};  // (X - iY)/2
  }
  throw std::logic_error("scb_to_pauli1");
}

void expand_bare(const ScbTerm& term, cplx scale, RefPauliSum& out) {
  // Distribute the per-qubit expansions; recursion depth = num_qubits.
  const std::size_t n = term.num_qubits();
  std::vector<Scb> word(n, Scb::I);
  auto rec = [&](auto&& self, std::size_t q, cplx acc) -> void {
    if (q == n) {
      out.add(PauliString(word), acc);
      return;
    }
    for (const auto& [c, p] : scb_to_pauli1(term.op(q))) {
      word[q] = p;
      self(self, q + 1, acc * c);
    }
    word[q] = Scb::I;
  };
  rec(rec, 0, scale * term.coeff());
}

}  // namespace

RefPauliSum ref_term_to_pauli(const ScbTerm& term) {
  RefPauliSum sum;
  expand_bare(term, 1.0, sum);
  if (term.add_hc()) expand_bare(term.adjoint(), 1.0, sum);
  sum.prune();
  return sum;
}

RefPauliSum ref_terms_to_pauli(const std::vector<ScbTerm>& terms) {
  RefPauliSum sum;
  for (const ScbTerm& t : terms) sum.add(ref_term_to_pauli(t));
  sum.prune();
  return sum;
}

}  // namespace gecos
