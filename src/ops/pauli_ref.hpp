// Legacy map-based Pauli layer, retained verbatim as the correctness and
// benchmark reference for the packed symplectic engine (ops/packed.hpp).
//
// RefPauliSum is the pre-refactor PauliSum: std::map<PauliString, cplx> with
// per-qubit Cayley-table products; ref_term_to_pauli is the pre-refactor
// recursive expansion that allocated one std::vector<Scb> per emitted string.
// BENCH_pauli.json speedups and the randomized agreement tests in
// tests/test_packed.cpp and tests/test_pauli_sum.cpp are measured against
// this implementation. Not a hot path: do not optimize.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ops/pauli.hpp"
#include "ops/term.hpp"

namespace gecos {

/// Sparse combination of Pauli strings over an ordered std::map (legacy).
class RefPauliSum {
 public:
  /// Empty sum.
  RefPauliSum() = default;

  /// Accumulates coeff * string, erasing on cancellation below tol.
  void add(const PauliString& s, cplx coeff, double tol = 1e-14);
  void add(const RefPauliSum& other);

  /// Size, emptiness, and the ordered string -> coefficient view.
  std::size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }
  const std::map<PauliString, cplx>& terms() const { return terms_; }

  /// Scalar scaling and termwise sum.
  RefPauliSum operator*(cplx s) const;
  RefPauliSum operator+(const RefPauliSum& o) const;
  /// Product expands distributively with per-qubit Pauli phase tracking.
  RefPauliSum operator*(const RefPauliSum& o) const;

  /// Dense 2^n matrix (verification only).
  Matrix to_matrix(std::size_t num_qubits) const;
  /// Sum of |coeff|.
  double one_norm() const;
  /// Drops terms with |coeff| <= tol.
  void prune(double tol = 1e-12);

  /// Deterministic " + "-joined text form (map order).
  std::string str() const;

 private:
  std::map<PauliString, cplx> terms_;
};

/// Legacy recursive Pauli expansion of an ScbTerm (including h.c.).
RefPauliSum ref_term_to_pauli(const ScbTerm& term);

/// Legacy expansion of a sum of terms, with cross-term cancellation.
RefPauliSum ref_terms_to_pauli(const std::vector<ScbTerm>& terms);

}  // namespace gecos
