// SumOperator: a complex combination of arbitrary LinearOperators.
//
// The generic counterpart of the representation-specific sums: where ScbSum
// adds SCB words and PauliSum adds Pauli strings, a SumOperator adds whole
// operators — mixing representations freely (an ScbSum hopping block plus a
// CsrMatrix potential, say) behind the one LinearOperator interface. apply_add
// just forwards to each part with the coefficient folded into the scale, so
// the sum inherits every part's matrix-free kernel and parallelism without a
// scratch buffer of its own.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "ops/linear_op.hpp"

namespace gecos {

/// sum_i coeff_i * op_i over shared-ownership LinearOperators.
class SumOperator : public LinearOperator {
 public:
  /// Empty sum; adopts the qubit count of the first operator added.
  SumOperator() = default;

  /// Appends coeff * op. Throws on a null operator or a qubit-count
  /// mismatch with the parts already added.
  void add(std::shared_ptr<const LinearOperator> op, cplx coeff = cplx(1.0));

  /// Number of parts.
  std::size_t size() const { return parts_.size(); }
  /// Qubit count (0 until the first add).
  std::size_t n_qubits() const override { return num_qubits_; }

  /// Two-argument accumulate shorthand from the base class.
  using LinearOperator::apply_add;
  /// y += scale * sum_i coeff_i * (op_i x): one apply_add per part with the
  /// coefficient folded into the scale — no intermediate buffers.
  void apply_add(std::span<const cplx> x, std::span<cplx> y,
                 cplx scale) const override;

 private:
  std::size_t num_qubits_ = 0;
  std::vector<std::pair<cplx, std::shared_ptr<const LinearOperator>>> parts_;
};

}  // namespace gecos
