#include "ops/term.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "simd/kernels.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bits.hpp"
#include "util/parallel.hpp"

namespace gecos {

namespace {

/// Runs shorter than 2^3 complex amplitudes are not worth the wide-kernel
/// call; the scalar walk handles them.
constexpr int kMinRunBits = 3;

}  // namespace

ScbTerm::ScbTerm(cplx coeff, std::vector<Scb> ops, bool add_hc)
    : coeff_(coeff), ops_(std::move(ops)), add_hc_(add_hc) {
  if (ops_.empty()) throw std::invalid_argument("ScbTerm: empty operator list");
  if (ops_.size() > 63)
    throw std::invalid_argument("ScbTerm: more than 63 qubits unsupported");
}

ScbTerm ScbTerm::parse(const std::string& text, cplx coeff, bool add_hc) {
  std::istringstream is(text);
  std::vector<Scb> ops;
  std::string tok;
  while (is >> tok) ops.push_back(scb_from_name(tok));
  return ScbTerm(coeff, std::move(ops), add_hc);
}

ScbTerm ScbTerm::adjoint() const {
  std::vector<Scb> adj(ops_.size());
  for (std::size_t q = 0; q < ops_.size(); ++q) adj[q] = scb_adjoint(ops_[q]);
  return ScbTerm(std::conj(coeff_), std::move(adj), false);
}

bool ScbTerm::bare_is_hermitian() const {
  for (Scb s : ops_)
    if (!scb_is_hermitian(s)) return false;
  return true;
}

bool ScbTerm::is_valid_hamiltonian(double tol) const {
  if (add_hc_) {
    // coeff*A + conj(coeff)*A† is Hermitian for any A. The only failure mode
    // is a *diagonal* complex coefficient: if A is Hermitian the sum is
    // 2*Re(coeff)*A, fine; but callers usually mean a complex amplitude, so we
    // still accept it (the imaginary part simply cancels).
    return true;
  }
  // Without h.c. the bare product must be Hermitian with a real coefficient.
  return bare_is_hermitian() && std::abs(coeff_.imag()) <= tol;
}

Matrix ScbTerm::bare_matrix() const {
  Matrix m = Matrix::identity(1);
  for (std::size_t q = ops_.size(); q-- > 0;) m = m.kron(scb_matrix(ops_[q]));
  return m * coeff_;
}

Matrix ScbTerm::hamiltonian_matrix() const {
  Matrix m = bare_matrix();
  if (add_hc_) m += m.dagger();
  return m;
}

std::vector<int> ScbTerm::transition_qubits() const {
  std::vector<int> r;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (scb_is_transition(ops_[q])) r.push_back(static_cast<int>(q));
  return r;
}

std::vector<int> ScbTerm::control_qubits() const {
  std::vector<int> r;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (scb_is_projector(ops_[q])) r.push_back(static_cast<int>(q));
  return r;
}

std::vector<int> ScbTerm::pauli_qubits() const {
  std::vector<int> r;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (scb_is_pauli(ops_[q])) r.push_back(static_cast<int>(q));
  return r;
}

std::vector<int> ScbTerm::identity_qubits() const {
  std::vector<int> r;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (ops_[q] == Scb::I) r.push_back(static_cast<int>(q));
  return r;
}

std::uint64_t ScbTerm::flip_mask() const {
  std::uint64_t m = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (scb_is_offdiagonal(ops_[q])) m |= std::uint64_t{1} << q;
  return m;
}

std::uint64_t ScbTerm::transition_mask() const {
  std::uint64_t m = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (scb_is_transition(ops_[q])) m |= std::uint64_t{1} << q;
  return m;
}

std::uint64_t ScbTerm::transition_a_bits() const {
  std::uint64_t m = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q)
    if (ops_[q] == Scb::Sp) m |= std::uint64_t{1} << q;
  return m;
}

std::pair<std::uint64_t, std::uint64_t> ScbTerm::control_key() const {
  std::uint64_t mask = 0, val = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    if (ops_[q] == Scb::N) {
      mask |= std::uint64_t{1} << q;
      val |= std::uint64_t{1} << q;
    } else if (ops_[q] == Scb::M) {
      mask |= std::uint64_t{1} << q;
    }
  }
  return {mask, val};
}

cplx ScbTerm::bare_amplitude(std::uint64_t x) const {
  const std::uint64_t y = x ^ flip_mask();
  cplx amp = coeff_;
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    const int xq = static_cast<int>((x >> q) & 1);
    const int yq = static_cast<int>((y >> q) & 1);
    amp *= scb_entry(ops_[q], yq, xq);
    if (amp == cplx(0.0)) return amp;
  }
  return amp;
}

std::string ScbTerm::str() const {
  std::ostringstream os;
  os << "(" << coeff_.real();
  if (coeff_.imag() != 0.0)
    os << (coeff_.imag() > 0 ? "+" : "") << coeff_.imag() << "i";
  os << ") ";
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    if (q) os << " ";
    os << scb_name(ops_[q]);
  }
  if (add_hc_) os << " + h.c.";
  return os.str();
}

TermKernel::TermKernel(const ScbTerm& term)
    : base(term.coeff()), num_qubits(term.num_qubits()) {
  const cplx i(0.0, 1.0);
  for (std::size_t q = 0; q < term.num_qubits(); ++q) {
    const std::uint64_t bit = std::uint64_t{1} << q;
    switch (term.op(q)) {
      case Scb::I: break;
      case Scb::X: flip |= bit; break;
      case Scb::Y:  // <y|Y|x> = i * (-1)^{x_q}
        flip |= bit;
        sign_mask |= bit;
        base *= i;
        break;
      case Scb::Z: sign_mask |= bit; break;
      case Scb::N: select_mask |= bit; select_val |= bit; break;
      case Scb::M: select_mask |= bit; break;
      case Scb::Sm:  // |0><1|: input bit must be 1
        flip |= bit;
        select_mask |= bit;
        select_val |= bit;
        break;
      case Scb::Sp:  // |1><0|: input bit must be 0
        flip |= bit;
        select_mask |= bit;
        break;
    }
  }
}

void TermKernel::apply_add(std::span<const cplx> x, std::span<cplx> y,
                           cplx scale) const {
  assert(x.size() == y.size());
  assert(std::has_single_bit(x.size()));
  assert(x.data() != y.data() && "TermKernel: x and y must not alias");
  // Walk only the selected states: s = sub | select_val with sub ranging over
  // subsets of the unconstrained bits (the standard (sub - free) & free trick
  // enumerates them in ascending order). Chunks seed their local walk with
  // scatter_bits; within one term s -> s ^ flip is a bijection, so chunks of
  // distinct s never write the same y amplitude and the loop is race-free.
  const std::uint64_t free_mask = (x.size() - 1) & ~select_mask;
  if ((select_val & ~(x.size() - 1)) != 0) return;  // selection out of range
  const cplx b = base * scale;
  if (telemetry::metrics_enabled()) {
    // One sweep over the selected states; 48 B per touched amplitude (16 B
    // x gather + 32 B y read-modify-write) — the bench traffic model.
    const std::uint64_t touched = std::uint64_t{1}
                                  << std::popcount(free_mask);
    telemetry::count(telemetry::Counter::kernel_sweeps);
    telemetry::count(telemetry::Counter::amplitudes_touched, touched);
    telemetry::count(telemetry::Counter::bytes_moved, touched * 48);
  }

  // Contiguous-run split: low free bits outside sign_mask and flip index
  // runs of 2^r adjacent states with constant sign, constant amplitude and
  // adjacent targets (s ^ flip preserves the run bits), so each run is one
  // wide axpy y[s^flip ..] += amp * x[s ..]. The outer walk enumerates the
  // remaining free bits exactly like the scalar path; race-freedom is
  // unchanged (s -> s ^ flip is still a bijection, runs partition states).
  const std::uint64_t run_mask =
      trailing_run_mask(free_mask & ~sign_mask & ~flip);
  const int run_bits = std::popcount(run_mask);
  if (run_bits >= kMinRunBits) {
    const std::size_t run = std::size_t{1} << run_bits;
    const std::uint64_t outer_mask = free_mask & ~run_mask;
    const std::size_t count = std::size_t{1} << std::popcount(outer_mask);
    const simd::Kernels& kn = simd::active();
    parallel_for(
        count,
        [&](std::size_t i0, std::size_t i1, int) {
          std::uint64_t sub = scatter_bits(i0, outer_mask);
          for (std::size_t i = i0; i < i1; ++i) {
            const std::uint64_t s = sub | select_val;
            const cplx amp = (std::popcount(sign_mask & s) & 1) ? -b : b;
            kn.axpy(y.data() + (s ^ flip), x.data() + s, run, amp);
            sub = (sub - outer_mask) & outer_mask;
          }
        },
        std::max<std::size_t>(1, kParallelGrain >> run_bits));
    return;
  }

  const std::size_t count = std::size_t{1}
                            << std::popcount(free_mask);
  parallel_for(count, [&](std::size_t i0, std::size_t i1, int) {
    std::uint64_t sub = scatter_bits(i0, free_mask);
    for (std::size_t i = i0; i < i1; ++i) {
      const std::uint64_t s = sub | select_val;
      const cplx amp = (std::popcount(sign_mask & s) & 1) ? -b : b;
      y[s ^ flip] += amp * x[s];
      sub = (sub - free_mask) & free_mask;
    }
  });
}

void ScbTerm::apply_add(std::span<const cplx> x, std::span<cplx> y) const {
  TermKernel(*this).apply_add(x, y);
  if (add_hc_) TermKernel(adjoint()).apply_add(x, y);
}

Matrix terms_matrix(const std::vector<ScbTerm>& terms, std::size_t num_qubits) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  Matrix m(dim, dim);
  for (const ScbTerm& t : terms) {
    assert(t.num_qubits() == num_qubits);
    m += t.hamiltonian_matrix();
  }
  return m;
}

void apply_terms(const std::vector<ScbTerm>& terms, std::span<const cplx> x,
                 std::span<cplx> y) {
  assert(x.size() == y.size());
  assert(x.data() != y.data() && "apply_terms: x and y must not alias");
  for (const ScbTerm& t : terms) t.apply_add(x, y);
}

double terms_one_norm_bound(const std::vector<ScbTerm>& terms) {
  double s = 0;
  for (const ScbTerm& t : terms) s += std::abs(t.coeff()) * (t.add_hc() ? 2 : 1);
  return s;
}

}  // namespace gecos
