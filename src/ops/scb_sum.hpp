// ScbSum: a complex combination of *bare* SCB products.
//
// This is the sum-of-terms layer above ScbTerm: a Hamiltonian (or any
// operator) kept symbolically in the Single Component Basis as
// sum_t coeff_t * (C_{n-1} (x) ... (x) C_0). Because the SCB closes under
// multiplication (scb_mul, paper Table IV), the product of two sums with T1
// and T2 terms has at most T1*T2 terms — each term-pair collapses per qubit
// to a *single* term instead of branching into 2^k Pauli strings. This
// closure is what the direct composition strategy of the paper (and the
// Jordan-Wigner layer in src/fermion/jordan_wigner.hpp) builds on; see
// DESIGN.md "SCB sums and normal ordering".
//
// Terms are bare products (no "+ h.c." flag): Hermiticity is represented
// explicitly by the presence of the adjoint term. hermitian_terms() gathers
// conjugate pairs back into "+ h.c." ScbTerms for the circuit builders.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ops/linear_op.hpp"
#include "ops/pauli.hpp"
#include "ops/scb.hpp"
#include "ops/term.hpp"

namespace gecos {

/// Shared compiled-kernel cache for ScbSum. Hoisted out of the sum itself
/// (ROADMAP item 3 / the serving layer's artifact cache) so copies of an
/// unmutated sum — and cached Hamiltonians handed out by gecosd — share one
/// set of compiled TermKernels instead of each recompiling. The mutex
/// guards the lazy rebuild; after the rebuild the kernels are immutable, so
/// any number of threads can apply concurrently.
struct ScbKernelCache {
  std::mutex mutex;                 ///< guards the dirty-rebuild transition
  std::vector<TermKernel> kernels;  ///< one compiled kernel per term
  bool dirty = true;                ///< true until rebuilt from the terms
};

/// Sparse complex combination of bare SCB products, keyed by the operator
/// word (qubit 0 first). A default-constructed sum adopts the qubit count of
/// the first word added; all words must share it. Deterministic iteration
/// (std::map over words); sizes stay polynomial for the workloads this layer
/// targets, so no packed representation is needed.
class ScbSum : public LinearOperator {
 public:
  /// Empty sum; adopts the qubit count of the first word added.
  ScbSum();
  /// Empty sum with a fixed qubit count.
  explicit ScbSum(std::size_t num_qubits);
  /// Copies SHARE the compiled-kernel cache (the copy and the original have
  /// identical terms, so one compilation serves both until either mutates —
  /// a mutation detaches onto a fresh cache, see invalidate_kernels()).
  /// Moves steal the cache outright; the moved-from sum lazily recreates
  /// one if applied again.
  ScbSum(const ScbSum& o);
  ScbSum& operator=(const ScbSum& o);
  ScbSum(ScbSum&& o) noexcept;
  ScbSum& operator=(ScbSum&& o) noexcept;

  /// Qubit count (0 until fixed by construction or first add).
  std::size_t num_qubits() const { return num_qubits_; }
  /// LinearOperator qubit count (same as num_qubits()).
  std::size_t n_qubits() const override { return num_qubits_; }
  /// Number of live terms (words with |coeff| above the add tolerance).
  std::size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// Accumulates coeff * word; merges with an existing term for the same
  /// word and erases it when the merged coefficient cancels below tol.
  /// O(n log size). Throws on a qubit-count mismatch.
  void add(const std::vector<Scb>& word, cplx coeff, double tol = 1e-14);
  /// Adds a bare ScbTerm (its h.c. part too when add_hc is set).
  void add(const ScbTerm& term, double tol = 1e-14);
  /// Termwise sum: *this += o.
  void add(const ScbSum& o, double tol = 1e-14);

  /// Coefficient of a word (0 if absent). O(n log size).
  cplx coeff_of(const std::vector<Scb>& word) const;
  /// Deterministic word -> coefficient view (lexicographic in Scb order).
  const std::map<std::vector<Scb>, cplx>& terms() const { return terms_; }

  /// Termwise sum/difference and scalar scaling.
  ScbSum operator+(const ScbSum& o) const;
  ScbSum operator-(const ScbSum& o) const;
  ScbSum operator*(cplx s) const;
  /// Distributive product via the per-qubit Cayley closure: every pair of
  /// terms collapses to one term (or vanishes), so the result has at most
  /// size()*o.size() terms. O(size * o.size * n log) — no 2^k branching.
  ScbSum operator*(const ScbSum& o) const;

  /// Termwise adjoint: conj(coeff) * adjoint word (Sm <-> Sp).
  ScbSum adjoint() const;
  /// Commutator [*this, o] = *this*o - o**this (stays an ScbSum).
  ScbSum commutator(const ScbSum& o) const;
  /// True when every word's adjoint carries the conjugate coefficient.
  bool is_hermitian(double tol = 1e-12) const;

  /// Sum of |coeff| (LCU normalization of the bare-term sum).
  double one_norm() const;
  /// Drops terms with |coeff| <= tol.
  void prune(double tol = 1e-12);

  /// One bare ScbTerm (add_hc == false) per stored word.
  std::vector<ScbTerm> bare_terms() const;
  /// Gathers conjugate word pairs into "+ h.c." terms via gather_hermitian;
  /// throws if the sum is not Hermitian.
  std::vector<ScbTerm> hermitian_terms(double tol = 1e-12) const;

  /// Pauli expansion of the whole sum (2^k strings per term before
  /// cross-term cancellation) — the "usual strategy" representation this
  /// container exists to avoid.
  PauliSum to_pauli() const;
  /// Dense 2^n x 2^n matrix (verification only).
  Matrix to_matrix() const;

  /// Two-argument accumulate and overwriting apply from the base class.
  using LinearOperator::apply_add;
  /// y += scale * A x matrix-free via one TermKernel per term
  /// (x.size() == 2^n; x and y distinct buffers, asserted). The compiled
  /// kernels are cached between calls and rebuilt only after a mutation, so
  /// repeated application (the evolution loop, expectation values) does no
  /// per-call allocation; the rebuild is mutex-guarded, so concurrent
  /// apply_add/expectation on a shared *const* sum is safe (mutating
  /// concurrently with application is not, as usual).
  void apply_add(std::span<const cplx> x, std::span<cplx> y,
                 cplx scale) const override;

  /// True when this sum and o currently share one compiled-kernel cache
  /// (i.e. they are copies with no intervening mutation). Diagnostic for
  /// the cache tests and the serve artifact layer.
  bool shares_kernel_cache(const ScbSum& o) const {
    return kcache_ != nullptr && kcache_ == o.kcache_;
  }

  /// Deterministic " + "-joined text form ("0" for the empty sum).
  std::string str() const;

 private:
  void ensure_qubits(std::size_t n);
  // Mutation hook: sole owner -> mark the cache dirty in place; shared ->
  // detach onto a fresh cache so sums still holding the old kernels keep a
  // valid compilation of THEIR terms.
  void invalidate_kernels();
  // Returns the cache, recreating it when a move left kcache_ null.
  ScbKernelCache& ensure_cache() const;

  std::size_t num_qubits_ = 0;
  std::map<std::vector<Scb>, cplx> terms_;
  // Shared compiled-kernel cache (see ScbKernelCache). Eagerly allocated by
  // the constructors and reseated by invalidate_kernels(), so on the const
  // apply path the pointer itself is stable and only the cache's own mutex
  // is needed for thread safety; null only transiently on a moved-from sum.
  // Mutable because caching never changes the observable value.
  mutable std::shared_ptr<ScbKernelCache> kcache_;
};

/// Scalar-from-the-left product s * m.
ScbSum operator*(cplx s, const ScbSum& m);

}  // namespace gecos
