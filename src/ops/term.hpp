// ScbTerm: one summand of a Hamiltonian in the Single Component Basis.
//
// A term is  coeff * (C_{n-1} (x) ... (x) C_0)  with C_q in the SCB, plus
// optionally its Hermitian conjugate ("+ h.c.", eq. (5) of the paper). This
// is the central IR of GECOS: the direct strategy exponentiates one ScbTerm
// exactly per Trotter slice, and the block-encoding builder maps one ScbTerm
// to at most six unitaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ops/linear_op.hpp"
#include "ops/scb.hpp"

namespace gecos {

/// One summand: coeff * tensor product of SCB factors, optional "+ h.c.".
class ScbTerm {
 public:
  /// Zero-qubit placeholder (assign a parsed/constructed term over it).
  ScbTerm() = default;
  /// ops[q] acts on qubit q (qubit 0 = least significant bit). Throws on an
  /// empty list or more than 63 qubits.
  ScbTerm(cplx coeff, std::vector<Scb> ops, bool add_hc);

  /// Parses whitespace-separated operator names in *paper order* (qubit 0
  /// first), e.g. "n m m X Y s+ n s s s s+ Y Z s+ s" for the Fig. 2 term.
  static ScbTerm parse(const std::string& text, cplx coeff = 1.0,
                       bool add_hc = true);

  /// Accessors for the qubit count, coefficient, "+ h.c." flag and the
  /// per-qubit factor word.
  std::size_t num_qubits() const { return ops_.size(); }
  cplx coeff() const { return coeff_; }
  void set_coeff(cplx c) { coeff_ = c; }
  bool add_hc() const { return add_hc_; }
  void set_add_hc(bool v) { add_hc_ = v; }
  Scb op(std::size_t q) const { return ops_[q]; }
  const std::vector<Scb>& ops() const { return ops_; }

  /// The term with coeff conjugated and every factor adjointed (no h.c. flag).
  ScbTerm adjoint() const;
  /// True when the bare product A is Hermitian (all factors Hermitian);
  /// together with a real coefficient the term needs no "+ h.c.".
  bool bare_is_hermitian() const;
  /// True when coeff*A (+A† if add_hc) is a Hermitian operator.
  bool is_valid_hamiltonian(double tol = 1e-14) const;

  /// coeff * kron(ops), *without* the h.c. part.
  Matrix bare_matrix() const;
  /// Full Hermitian matrix: coeff*A + conj(coeff)*A† when add_hc, else
  /// coeff*A.
  Matrix hamiltonian_matrix() const;

  // -- structure queries used by the circuit builders ------------------------

  /// Qubits holding sigma/sigma^dagger (the transition family).
  std::vector<int> transition_qubits() const;
  /// Qubits holding n/m (the control family).
  std::vector<int> control_qubits() const;
  /// Qubits holding X/Y/Z (the Pauli family).
  std::vector<int> pauli_qubits() const;
  /// Qubits holding the identity.
  std::vector<int> identity_qubits() const;

  /// Bitmask of qubits the bare product flips in the computational basis
  /// (X, Y, sigma, sigma^dagger positions).
  std::uint64_t flip_mask() const;
  /// Bitmask of the transition qubits only.
  std::uint64_t transition_mask() const;
  /// Key |a> of the transition family: bit q is 1 where op==sigma^dagger
  /// (A = ... |a><b| ... with b = complement of a on the transition qubits).
  std::uint64_t transition_a_bits() const;
  /// Control-family key: (mask, value) with value bit 1 for n, 0 for m.
  std::pair<std::uint64_t, std::uint64_t> control_key() const;

  /// Amplitude <x ^ flip_mask| A |x> of the bare product on basis state |x>
  /// (product of per-qubit matrix entries, including coeff). Zero when the
  /// projectors/transitions do not match x. Per-qubit loop; TermKernel is the
  /// fast mask-based equivalent.
  cplx bare_amplitude(std::uint64_t x) const;

  /// y += H x matrix-free for this term's Hermitian operator (bare product
  /// plus its h.c. when add_hc), via TermKernel. x.size() must be 2^n and x
  /// and y must be distinct buffers (asserted).
  void apply_add(std::span<const cplx> x, std::span<cplx> y) const;

  /// Human-readable form "(coeff) op op ... [+ h.c.]", paper order.
  std::string str() const;

 private:
  cplx coeff_ = 1.0;
  std::vector<Scb> ops_;
  bool add_hc_ = false;
};

/// Precompiled statevector kernel of one *bare* SCB product.
///
/// Every SCB factor either flips its qubit or not and either selects a basis
/// value or not, so <y| A |x> collapses to four masks and one complex base:
/// the amplitude is base * (-1)^{pc(sign_mask & x)} on states with
/// (x & select_mask) == select_val and target y = x ^ flip, zero elsewhere.
/// apply_add() walks only the 2^(n-k) selected states (k = #projector/
/// transition factors) instead of testing all 2^n per-qubit products like
/// the legacy bare_amplitude loop, parallelized over chunks of the walk.
struct TermKernel : public LinearOperator {
  std::uint64_t flip = 0;         // X/Y/s/s+ positions (computational flips)
  std::uint64_t select_mask = 0;  // n/m/s/s+ positions (constrained inputs)
  std::uint64_t select_val = 0;   // required input bits under select_mask
  std::uint64_t sign_mask = 0;    // Y/Z positions ((-1)^{x_q} factors)
  cplx base;                      // coeff * i^{#Y}
  std::size_t num_qubits = 0;     // qubit count of the compiled term

  /// Compiles the bare product of `term` (h.c. flag ignored); O(n).
  explicit TermKernel(const ScbTerm& term);

  /// Qubit count of the compiled term.
  std::size_t n_qubits() const override { return num_qubits; }

  /// Two-argument accumulate shorthand from the base class.
  using LinearOperator::apply_add;
  /// y += scale * A x for the bare product only (no h.c.); x and y must be
  /// distinct buffers (asserted).
  void apply_add(std::span<const cplx> x, std::span<cplx> y,
                 cplx scale) const override;
};

/// Hermitian matrix of a sum of terms (for verification).
Matrix terms_matrix(const std::vector<ScbTerm>& terms, std::size_t num_qubits);

/// y += H x where H is the Hermitian sum of the given terms (matrix-free;
/// each term touches every basis state once). x and y must be distinct
/// buffers (asserted).
void apply_terms(const std::vector<ScbTerm>& terms,
                 std::span<const cplx> x, std::span<cplx> y);

/// Sum over terms of |coeff| * (1 + add_hc): an upper bound on the LCU
/// normalization used by the block-encoding composition.
double terms_one_norm_bound(const std::vector<ScbTerm>& terms);

}  // namespace gecos
