#include "ops/conversion.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

#include "ops/packed.hpp"

namespace gecos {

namespace {

// Iterative mask expansion of one bare product into `out` (see DESIGN.md,
// "Mask expansion"). Every SCB factor is either a fixed Pauli (I/X/Y/Z: one
// packed (x,z) bit pair) or a two-branch factor:
//
//   n  = (I - Z)/2      m  = (I + Z)/2
//   s  = (X + iY)/2     s+ = (X - iY)/2
//
// Both branches of every factor share the same x bit and differ only in the
// z bit, and the two branch coefficients differ by a unit {+-1, +-i}. So the
// 2^k strings of the expansion are enumerated with a Gray-code counter:
// per step one z bit toggles and the running coefficient multiplies by an
// exact unit ratio -- no recursion, no per-string std::vector<Scb>, no
// re-accumulated products, and writes go straight into the packed hash table.
void expand_bare_packed(const ScbTerm& term, PauliSum& out) {
  const std::size_t n = term.num_qubits();
  if (out.num_qubits() != n)
    throw std::invalid_argument("terms_to_pauli: mixed qubit counts");
  const std::size_t words = packed_words(n);
  std::vector<std::uint64_t> x(words, 0), z(words, 0);

  struct Branch {
    std::size_t word;      // word index of the toggling z bit
    std::uint64_t bit;     // single-bit mask within that word
    cplx up_ratio;         // coeff ratio option0 -> option1
    cplx down_ratio;       // coeff ratio option1 -> option0
  };
  std::vector<Branch> branches;
  cplx coeff = term.coeff();

  const cplx i(0.0, 1.0);
  for (std::size_t q = 0; q < n; ++q) {
    const std::size_t w = q / 64;
    const std::uint64_t bit = std::uint64_t{1} << (q % 64);
    switch (term.op(q)) {
      case Scb::I: break;
      case Scb::X: x[w] |= bit; break;
      case Scb::Y: x[w] |= bit; z[w] |= bit; break;
      case Scb::Z: z[w] |= bit; break;
      // Branch option 0 is the z=0 member; its coefficient folds into the
      // base coefficient. Option 1 sets the z bit and scales by the ratio.
      case Scb::N:  // 0.5*I, -0.5*Z
        coeff *= 0.5;
        branches.push_back({w, bit, -1.0, -1.0});
        break;
      case Scb::M:  // 0.5*I, 0.5*Z
        coeff *= 0.5;
        branches.push_back({w, bit, 1.0, 1.0});
        break;
      case Scb::Sm:  // 0.5*X, 0.5i*Y
        coeff *= 0.5;
        x[w] |= bit;
        branches.push_back({w, bit, i, -i});
        break;
      case Scb::Sp:  // 0.5*X, -0.5i*Y
        coeff *= 0.5;
        x[w] |= bit;
        branches.push_back({w, bit, -i, i});
        break;
    }
  }

  const std::size_t k = branches.size();
  // Not an assert: 1 << k with k >= 64 is UB in Release builds, and a 2^63
  // string expansion could never fit in memory anyway.
  if (k >= 63)
    throw std::invalid_argument(
        "term_to_pauli: too many projector/transition factors to expand");
  out.reserve(out.size() + (std::size_t{1} << k));
  out.add_raw(x.data(), z.data(), coeff);
  std::uint64_t gray = 0;
  for (std::uint64_t code = 1; code < (std::uint64_t{1} << k); ++code) {
    const int j = std::countr_zero(code);
    const std::uint64_t jbit = std::uint64_t{1} << j;
    gray ^= jbit;
    const Branch& br = branches[static_cast<std::size_t>(j)];
    coeff *= (gray & jbit) ? br.up_ratio : br.down_ratio;
    z[br.word] ^= br.bit;
    out.add_raw(x.data(), z.data(), coeff);
  }
}

}  // namespace

PauliSum term_to_pauli(const ScbTerm& term) {
  PauliSum sum(term.num_qubits());
  expand_bare_packed(term, sum);
  if (term.add_hc()) expand_bare_packed(term.adjoint(), sum);
  sum.prune();
  return sum;
}

PauliSum terms_to_pauli(const std::vector<ScbTerm>& terms) {
  PauliSum sum;
  for (const ScbTerm& t : terms) {
    if (sum.num_qubits() == 0) sum = PauliSum(t.num_qubits());
    expand_bare_packed(t, sum);
    if (t.add_hc()) expand_bare_packed(t.adjoint(), sum);
  }
  sum.prune();
  return sum;
}

std::size_t pauli_expansion_count(const ScbTerm& term) {
  std::size_t k = 0;
  for (Scb op : term.ops())
    if (scb_is_projector(op) || scb_is_transition(op)) ++k;
  return std::size_t{1} << k;
}

std::vector<ScbTerm> gather_hermitian(const std::vector<ScbTerm>& bare,
                                      double tol) {
  // Accumulate coefficients per operator word, then pair words with their
  // adjoints.
  std::map<std::vector<Scb>, cplx> acc;
  for (const ScbTerm& t : bare) {
    if (t.add_hc())
      throw std::invalid_argument("gather_hermitian expects bare products");
    acc[t.ops()] += t.coeff();
  }
  std::vector<ScbTerm> out;
  while (!acc.empty()) {
    auto it = acc.begin();
    const std::vector<Scb> word = it->first;
    const cplx coeff = it->second;
    acc.erase(it);
    if (std::abs(coeff) <= tol) continue;

    std::vector<Scb> adj(word.size());
    for (std::size_t q = 0; q < word.size(); ++q) adj[q] = scb_adjoint(word[q]);

    if (adj == word) {
      // Hermitian product: Hermiticity of the sum requires a real coefficient.
      if (std::abs(coeff.imag()) > tol)
        throw std::invalid_argument(
            "gather_hermitian: Hermitian product with complex coefficient");
      out.emplace_back(coeff.real(), word, false);
      continue;
    }
    auto jt = acc.find(adj);
    const cplx adj_coeff = jt == acc.end() ? cplx(0.0) : jt->second;
    if (jt != acc.end()) acc.erase(jt);
    if (std::abs(adj_coeff - std::conj(coeff)) > tol)
      throw std::invalid_argument(
          "gather_hermitian: sum is not Hermitian (unpaired " +
          ScbTerm(coeff, word, false).str() + ")");
    out.emplace_back(coeff, word, true);
  }
  return out;
}

ScbTerm pauli_string_as_term(const PauliString& s, double coeff) {
  return ScbTerm(coeff, s.ops(), false);
}

}  // namespace gecos
