#include "ops/conversion.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace gecos {

namespace {

/// Single-qubit Pauli expansion op = sum_i coeff_i * P_i.
std::vector<std::pair<cplx, Scb>> scb_to_pauli1(Scb op) {
  const cplx i(0.0, 1.0);
  switch (op) {
    case Scb::I: return {{1.0, Scb::I}};
    case Scb::X: return {{1.0, Scb::X}};
    case Scb::Y: return {{1.0, Scb::Y}};
    case Scb::Z: return {{1.0, Scb::Z}};
    case Scb::N: return {{0.5, Scb::I}, {-0.5, Scb::Z}};   // (I - Z)/2
    case Scb::M: return {{0.5, Scb::I}, {0.5, Scb::Z}};    // (I + Z)/2
    case Scb::Sm: return {{0.5, Scb::X}, {0.5 * i, Scb::Y}};   // (X + iY)/2
    case Scb::Sp: return {{0.5, Scb::X}, {-0.5 * i, Scb::Y}};  // (X - iY)/2
  }
  throw std::logic_error("scb_to_pauli1");
}

void expand_bare(const ScbTerm& term, cplx scale, PauliSum& out) {
  // Distribute the per-qubit expansions; recursion depth = num_qubits.
  const std::size_t n = term.num_qubits();
  std::vector<Scb> word(n, Scb::I);
  auto rec = [&](auto&& self, std::size_t q, cplx acc) -> void {
    if (q == n) {
      out.add(PauliString(word), acc);
      return;
    }
    for (const auto& [c, p] : scb_to_pauli1(term.op(q))) {
      word[q] = p;
      self(self, q + 1, acc * c);
    }
    word[q] = Scb::I;
  };
  rec(rec, 0, scale * term.coeff());
}

}  // namespace

PauliSum term_to_pauli(const ScbTerm& term) {
  PauliSum sum;
  expand_bare(term, 1.0, sum);
  if (term.add_hc()) expand_bare(term.adjoint(), 1.0, sum);
  sum.prune();
  return sum;
}

PauliSum terms_to_pauli(const std::vector<ScbTerm>& terms) {
  PauliSum sum;
  for (const ScbTerm& t : terms) sum.add(term_to_pauli(t));
  sum.prune();
  return sum;
}

std::size_t pauli_expansion_count(const ScbTerm& term) {
  std::size_t k = 0;
  for (Scb op : term.ops())
    if (scb_is_projector(op) || scb_is_transition(op)) ++k;
  return std::size_t{1} << k;
}

std::vector<ScbTerm> gather_hermitian(const std::vector<ScbTerm>& bare,
                                      double tol) {
  // Accumulate coefficients per operator word, then pair words with their
  // adjoints.
  std::map<std::vector<Scb>, cplx> acc;
  for (const ScbTerm& t : bare) {
    if (t.add_hc())
      throw std::invalid_argument("gather_hermitian expects bare products");
    acc[t.ops()] += t.coeff();
  }
  std::vector<ScbTerm> out;
  while (!acc.empty()) {
    auto it = acc.begin();
    const std::vector<Scb> word = it->first;
    const cplx coeff = it->second;
    acc.erase(it);
    if (std::abs(coeff) <= tol) continue;

    std::vector<Scb> adj(word.size());
    for (std::size_t q = 0; q < word.size(); ++q) adj[q] = scb_adjoint(word[q]);

    if (adj == word) {
      // Hermitian product: Hermiticity of the sum requires a real coefficient.
      if (std::abs(coeff.imag()) > tol)
        throw std::invalid_argument(
            "gather_hermitian: Hermitian product with complex coefficient");
      out.emplace_back(coeff.real(), word, false);
      continue;
    }
    auto jt = acc.find(adj);
    const cplx adj_coeff = jt == acc.end() ? cplx(0.0) : jt->second;
    if (jt != acc.end()) acc.erase(jt);
    if (std::abs(adj_coeff - std::conj(coeff)) > tol)
      throw std::invalid_argument(
          "gather_hermitian: sum is not Hermitian (unpaired " +
          ScbTerm(coeff, word, false).str() + ")");
    out.emplace_back(coeff, word, true);
  }
  return out;
}

ScbTerm pauli_string_as_term(const PauliString& s, double coeff) {
  return ScbTerm(coeff, s.ops(), false);
}

}  // namespace gecos
