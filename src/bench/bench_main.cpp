// Benchmark runner for the packed symplectic Pauli engine.
//
// Establishes the repo's perf trajectory (BENCH_pauli.json): term -> Pauli
// expansion, PauliSum products, matrix-free statevector application, dense
// matmul and expm. The packed paths are measured against the retained legacy
// implementations (ops/pauli_ref.hpp and a per-qubit apply loop) so
// regressions and speedup claims are visible in one artifact.
//
// Usage: bench_main [--quick] [--out PATH]   (default PATH: BENCH_pauli.json)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "ops/conversion.hpp"
#include "ops/pauli.hpp"
#include "ops/pauli_ref.hpp"
#include "ops/term.hpp"

using namespace gecos;

namespace {

std::size_t sink = 0;  // defeats dead-code elimination of benchmark bodies

/// Median seconds per call over `reps` timed runs of >= min_seconds each.
double time_per_op(const std::function<void()>& fn, double min_seconds,
                   int reps = 3) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    int iters = 0;
    const auto start = clock::now();
    double elapsed = 0;
    while (elapsed < min_seconds) {
      fn();
      ++iters;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    }
    samples.push_back(elapsed / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

std::string json_escape_free_format(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

bool write_json(const std::string& path, bool quick,
                const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"gecos-bench-v1\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    {\"name\": \"" << results[i].name << "\"";
    for (const auto& [k, v] : results[i].fields)
      out << ", \"" << k << "\": " << json_escape_free_format(v);
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  return out.good();
}

PauliString random_string(std::size_t n, std::mt19937& rng) {
  static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  std::vector<Scb> ops(n);
  for (auto& o : ops) o = t[rng() % 4];
  return PauliString(std::move(ops));
}

/// A term whose bare product expands to exactly 2^k Pauli strings.
ScbTerm make_expanding_term(std::size_t n, std::size_t k, std::mt19937& rng) {
  static const std::array<Scb, 4> branching = {Scb::N, Scb::M, Scb::Sm,
                                               Scb::Sp};
  static const std::array<Scb, 4> fixed = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  std::vector<Scb> ops(n);
  for (std::size_t q = 0; q < n; ++q)
    ops[q] = q < k ? branching[rng() % 4] : fixed[rng() % 4];
  return ScbTerm(cplx(0.8, -0.3), std::move(ops), false);
}

/// Pre-refactor apply_terms: per-qubit bare_amplitude on every basis state.
void legacy_apply_terms(const std::vector<ScbTerm>& terms,
                        std::span<const cplx> x, std::span<cplx> y) {
  const std::size_t dim = x.size();
  for (const ScbTerm& t : terms) {
    const std::uint64_t flip = t.flip_mask();
    for (std::uint64_t s = 0; s < dim; ++s) {
      const cplx amp = t.bare_amplitude(s);
      if (amp != cplx(0.0)) y[s ^ flip] += amp * x[s];
    }
    if (t.add_hc()) {
      for (std::uint64_t s = 0; s < dim; ++s) {
        const cplx amp = std::conj(t.bare_amplitude(s ^ flip));
        if (amp != cplx(0.0)) y[s ^ flip] += amp * x[s];
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pauli.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  const double min_s = quick ? 0.05 : 0.25;
  std::mt19937 rng(20260730);
  std::vector<BenchResult> results;

  // -- term -> Pauli expansion (the Fig. 1 "mapping" arrow) ------------------
  {
    const std::size_t n = 32;
    const std::size_t k = quick ? 10 : 14;  // 2^k strings
    const ScbTerm term = make_expanding_term(n, k, rng);
    const double strings = static_cast<double>(std::size_t{1} << k);

    const double packed_s = time_per_op(
        [&] { sink += term_to_pauli(term).size(); }, min_s);
    const double ref_s = time_per_op(
        [&] { sink += ref_term_to_pauli(term).size(); }, min_s);
    std::printf("term_expansion       n=%zu strings=%g packed=%.3fms ref=%.3fms"
                " speedup=%.2fx\n",
                n, strings, packed_s * 1e3, ref_s * 1e3, ref_s / packed_s);
    results.push_back({"term_expansion",
                       {{"num_qubits", static_cast<double>(n)},
                        {"strings", strings},
                        {"seconds_per_op", packed_s},
                        {"strings_per_sec", strings / packed_s},
                        {"ref_seconds_per_op", ref_s},
                        {"speedup_vs_ref", ref_s / packed_s}}});
  }

  // -- PauliSum * PauliSum ---------------------------------------------------
  {
    const std::size_t n = 32;
    const std::size_t terms = quick ? 48 : 128;  // terms^2 string products
    PauliSum a(n), b(n);
    RefPauliSum ra, rb;
    std::uniform_real_distribution<double> cd(-1.0, 1.0);
    while (a.size() < terms) {
      const PauliString s = random_string(n, rng);
      const cplx c(cd(rng), cd(rng));
      a.add(s, c);
      ra.add(s, c);
    }
    while (b.size() < terms) {
      const PauliString s = random_string(n, rng);
      const cplx c(cd(rng), cd(rng));
      b.add(s, c);
      rb.add(s, c);
    }
    const double pairs = static_cast<double>(terms) * terms;
    const double packed_s =
        time_per_op([&] { sink += (a * b).size(); }, min_s);
    const double ref_s = time_per_op([&] { sink += (ra * rb).size(); }, min_s);
    std::printf("pauli_sum_product    n=%zu pairs=%g packed=%.3fms ref=%.3fms"
                " speedup=%.2fx\n",
                n, pairs, packed_s * 1e3, ref_s * 1e3, ref_s / packed_s);
    results.push_back({"pauli_sum_product",
                       {{"num_qubits", static_cast<double>(n)},
                        {"terms_each", static_cast<double>(terms)},
                        {"string_products", pairs},
                        {"seconds_per_op", packed_s},
                        {"products_per_sec", pairs / packed_s},
                        {"ref_seconds_per_op", ref_s},
                        {"speedup_vs_ref", ref_s / packed_s}}});
  }

  // -- matrix-free statevector apply ----------------------------------------
  {
    const std::size_t n = quick ? 12 : 16;
    const std::size_t dim = std::size_t{1} << n;
    std::vector<ScbTerm> terms;
    for (int j = 0; j < 16; ++j)
      terms.push_back(make_expanding_term(n, 4, rng));
    const std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim);

    const double kernel_s = time_per_op(
        [&] {
          std::fill(y.begin(), y.end(), cplx(0.0));
          apply_terms(terms, x, y);
          sink += static_cast<std::size_t>(std::abs(y[0].real()) < 2);
        },
        min_s);
    const double legacy_s = time_per_op(
        [&] {
          std::fill(y.begin(), y.end(), cplx(0.0));
          legacy_apply_terms(terms, x, y);
          sink += static_cast<std::size_t>(std::abs(y[0].real()) < 2);
        },
        min_s);
    const double amps = static_cast<double>(dim) * static_cast<double>(terms.size());
    std::printf("scb_apply            n=%zu terms=%zu kernel=%.3fms"
                " legacy=%.3fms speedup=%.2fx\n",
                n, terms.size(), kernel_s * 1e3, legacy_s * 1e3,
                legacy_s / kernel_s);
    results.push_back({"scb_apply",
                       {{"num_qubits", static_cast<double>(n)},
                        {"terms", static_cast<double>(terms.size())},
                        {"seconds_per_op", kernel_s},
                        {"term_amplitudes_per_sec", amps / kernel_s},
                        {"ref_seconds_per_op", legacy_s},
                        {"speedup_vs_ref", legacy_s / kernel_s}}});

    PauliSum ps(n);
    std::uniform_real_distribution<double> cd(-1.0, 1.0);
    while (ps.size() < 64) ps.add(random_string(n, rng), cplx(cd(rng)));
    const double psum_s = time_per_op(
        [&] {
          std::fill(y.begin(), y.end(), cplx(0.0));
          ps.apply(x, y);
          sink += static_cast<std::size_t>(std::abs(y[0].real()) < 2);
        },
        min_s);
    const double pamps = static_cast<double>(dim) * 64.0;
    std::printf("pauli_sum_apply      n=%zu terms=64 t=%.3fms (%.1f Mamp/s)\n",
                n, psum_s * 1e3, pamps / psum_s / 1e6);
    results.push_back({"pauli_sum_apply",
                       {{"num_qubits", static_cast<double>(n)},
                        {"terms", 64.0},
                        {"seconds_per_op", psum_s},
                        {"term_amplitudes_per_sec", pamps / psum_s}}});
  }

  // -- dense kernels ---------------------------------------------------------
  {
    const std::size_t n = quick ? 128 : 384;
    const Matrix a = Matrix::random_hermitian(n, rng);
    const Matrix b = Matrix::random_hermitian(n, rng);
    Matrix out(n, n);
    const double mm_s = time_per_op(
        [&] {
          Matrix::mul_into(out, a, b);
          sink += static_cast<std::size_t>(std::abs(out(0, 0).real()) < 1e9);
        },
        min_s);
    const double nd = static_cast<double>(n);
    std::printf("dense_matmul         n=%zu t=%.3fms (%.2f complex GFLOP/s)\n",
                n, mm_s * 1e3, 8.0 * nd * nd * nd / mm_s / 1e9);
    results.push_back({"dense_matmul",
                       {{"size", nd},
                        {"seconds_per_op", mm_s},
                        {"cmul_per_sec", nd * nd * nd / mm_s}}});

    const std::size_t ne = quick ? 48 : 96;
    const Matrix h = Matrix::random_hermitian(ne, rng);
    const Matrix ih = h * cplx(0.0, 1.0);
    const double expm_s = time_per_op(
        [&] {
          const Matrix e = expm(ih);
          sink += static_cast<std::size_t>(std::abs(e(0, 0).real()) < 2);
        },
        min_s);
    std::printf("dense_expm           n=%zu t=%.3fms\n", ne, expm_s * 1e3);
    results.push_back({"dense_expm",
                       {{"size", static_cast<double>(ne)},
                        {"seconds_per_op", expm_s}}});
  }

  if (!write_json(out_path, quick, results)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (sink=%zu)\n", out_path.c_str(), sink);
  return 0;
}
