// Benchmark runner for the packed symplectic Pauli engine, the fermionic
// Jordan-Wigner workloads, the Krylov solver layer and the U(1)
// symmetry-sector subsystem.
//
// Establishes the repo's perf trajectory (BENCH_pauli.json): term -> Pauli
// expansion, PauliSum products, matrix-free statevector application, dense
// matmul and expm, the fermion_* entries measuring the paper's central
// claim head-to-head — SCB term count and build time of second-quantized
// Hamiltonians versus their expanded Pauli representation — the threaded
// apply/evolution throughput, Lanczos/Krylov solver runs, and the sector_*
// entries pinning the sector-restricted solvers against their full-space
// references. The packed paths are measured against the retained legacy
// implementations (ops/pauli_ref.hpp and a per-qubit apply loop) so
// regressions and speedup claims are visible in one artifact.
//
// Every entry is a named *section*; `--only <substr>` (repeatable) runs the
// matching subset, which is what keeps the dev loop short now that a full
// run takes minutes, and `--list` prints the registered entry names. Each
// section seeds its own RNG, so a filtered run reproduces the inputs of the
// full run exactly. The spectral_* entries pin the continued-fraction,
// KPM and thermal-sampling estimators against dense eigh references.
//
// Usage: bench_main [--quick] [--out PATH] [--threads K] [--repeat K]
//        [--simd TIER] [--only SUBSTR]... [--trace PATH] [--progress]
//        [--list] [--help]
// (see print_help)
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "evolve/trotter.hpp"
#include "fermion/hubbard.hpp"
#include "io/checkpoint.hpp"
#include "fermion/jordan_wigner.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "ops/conversion.hpp"
#include "ops/pauli.hpp"
#include "ops/pauli_ref.hpp"
#include "ops/scb_sum.hpp"
#include "ops/term.hpp"
#include "serve/batch.hpp"
#include "serve/scheduler.hpp"
#include "simd/simd.hpp"
#include "solver/krylov_evolve.hpp"
#include "solver/lanczos.hpp"
#include "spectral/continued_fraction.hpp"
#include "spectral/kpm.hpp"
#include "spectral/thermal.hpp"
#include "state/state_vector.hpp"
#include "symmetry/sector_operator.hpp"
#include "symmetry/sector_vector.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/parallel.hpp"

using namespace gecos;

namespace {

std::size_t sink = 0;  // defeats dead-code elimination of benchmark bodies

int g_repeat = 5;  // timed runs per entry (--repeat)

// Min-time STREAM-triad bandwidth in GB/s, filled by the stream_triad
// section (which runs before every entry that reports achieved_gbs).
// Stays 0 when --only filtered stream_triad out; stream_fraction fields
// are then 0 too.
double g_triad_gbs = 0;

/// min + median seconds per call over the repeated timed runs. The median
/// is the headline number (robust against one-off stalls); the min is the
/// least-noise sample, the best trajectory anchor on shared machines where
/// ambient load inflates every other statistic.
struct Timing {
  double median = 0;
  double min = 0;
};

/// Timing over g_repeat runs of >= min_seconds each.
Timing time_per_op(const std::function<void()>& fn, double min_seconds) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  std::vector<double> samples;
  for (int r = 0; r < g_repeat; ++r) {
    int iters = 0;
    const auto start = clock::now();
    double elapsed = 0;
    while (elapsed < min_seconds) {
      fn();
      ++iters;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    }
    samples.push_back(elapsed / iters);
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const double median = n % 2 ? samples[n / 2]
                              : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  return {median, samples.front()};
}

struct BenchResult {
  // Constructor (not aggregate init) so the existing two-field push_back
  // sites stay untouched: the telemetry block is attached by the run loop.
  BenchResult(std::string n, std::vector<std::pair<std::string, double>> f)
      : name(std::move(n)), fields(std::move(f)) {}
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
  /// Nested "telemetry" block: the metrics-registry delta over the entry
  /// (matvecs, modeled bytes, pool utilization). Filled by the run loop
  /// from snapshot pairs; empty when metrics were off for the entry.
  std::vector<std::pair<std::string, double>> telemetry;
};

std::string json_escape_free_format(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

bool write_json(const std::string& path, bool quick,
                const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"gecos-bench-v4\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  // Hardware context: numbers in one report are only comparable to another
  // report from the same (core count, ISA tier) machine. The avx2/avx512
  // flags record tier *usability* (compiled in AND host CPUID, FMA
  // included); simd_tier is the tier the run actually dispatched to
  // (GECOS_SIMD / --simd override included).
  out << "  \"hw\": {\"nproc\": " << std::thread::hardware_concurrency()
      << ", \"avx2\": "
      << (simd_tier_available(SimdTier::avx2) ? "true" : "false")
      << ", \"avx512\": "
      << (simd_tier_available(SimdTier::avx512) ? "true" : "false")
      << ", \"simd_tier\": \"" << simd_tier_name(simd_tier()) << "\"},\n";
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    {\"name\": \"" << results[i].name << "\"";
    for (const auto& [k, v] : results[i].fields)
      out << ", \"" << k << "\": " << json_escape_free_format(v);
    if (!results[i].telemetry.empty()) {
      out << ", \"telemetry\": {";
      for (std::size_t j = 0; j < results[i].telemetry.size(); ++j) {
        const auto& [k, v] = results[i].telemetry[j];
        out << (j ? ", " : "") << "\"" << k
            << "\": " << json_escape_free_format(v);
      }
      out << "}";
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  return out.good();
}

PauliString random_string(std::size_t n, std::mt19937& rng) {
  static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  std::vector<Scb> ops(n);
  for (auto& o : ops) o = t[rng() % 4];
  return PauliString(std::move(ops));
}

/// A term whose bare product expands to exactly 2^k Pauli strings.
ScbTerm make_expanding_term(std::size_t n, std::size_t k, std::mt19937& rng) {
  static const std::array<Scb, 4> branching = {Scb::N, Scb::M, Scb::Sm,
                                               Scb::Sp};
  static const std::array<Scb, 4> fixed = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  std::vector<Scb> ops(n);
  for (std::size_t q = 0; q < n; ++q)
    ops[q] = q < k ? branching[rng() % 4] : fixed[rng() % 4];
  return ScbTerm(cplx(0.8, -0.3), std::move(ops), false);
}

/// Pre-refactor apply_terms: per-qubit bare_amplitude on every basis state.
void legacy_apply_terms(const std::vector<ScbTerm>& terms,
                        std::span<const cplx> x, std::span<cplx> y) {
  const std::size_t dim = x.size();
  for (const ScbTerm& t : terms) {
    const std::uint64_t flip = t.flip_mask();
    for (std::uint64_t s = 0; s < dim; ++s) {
      const cplx amp = t.bare_amplitude(s);
      if (amp != cplx(0.0)) y[s ^ flip] += amp * x[s];
    }
    if (t.add_hc()) {
      for (std::uint64_t s = 0; s < dim; ++s) {
        const cplx amp = std::conj(t.bare_amplitude(s ^ flip));
        if (amp != cplx(0.0)) y[s ^ flip] += amp * x[s];
      }
    }
  }
}

/// The shared quench lattice of the threaded/solver/sector entries: one
/// baseline scope so parallel_apply, hubbard_quench, lanczos_ground_state,
/// krylov_quench, sector_xcheck and sector_quench all measure the SAME
/// Hamiltonian (2D spinful, n = 16 quick / 20 full).
HubbardParams quench_lattice(bool quick) {
  HubbardParams hq;
  hq.lx = quick ? 4 : 5;
  hq.ly = 2;
  hq.t = 1.0;
  hq.u = 4.0;
  hq.mu = 0.5;
  hq.periodic_x = true;
  hq.spinful = true;
  return hq;
}

/// Fixed RNG seed: every section seeds its own generator with this, so a
/// --only run feeds each benchmark the exact inputs of a full run.
constexpr std::uint32_t kSeed = 20260730;

/// The molecular workload shared by fermion_molecular and
/// fermion_apply_xcheck — one definition, so the cross-check gate always
/// covers the exact Hamiltonian the timing entry benchmarks.
FermionSum molecular_workload(bool quick, std::size_t& modes) {
  modes = quick ? 16 : 20;
  return random_two_body(modes, 16, quick ? 12 : 24, kSeed);
}

/// Full-space Lanczos ground-state energy of the n = 20 quench lattice as
/// recorded by the PR 4 run (bit-identical across that PR's repeated runs).
/// sector_xcheck gates the ground-sector solve against it without paying
/// for a full-space re-solve.
constexpr double kFullE0N20 = -13.8785798502;

/// Dense matrix of any LinearOperator, column by column — the bench-side
/// reference builder of the spectral_* gates (small dimensions only).
Matrix dense_operator(const LinearOperator& a) {
  const std::size_t d = a.dim();
  Matrix m(d, d);
  std::vector<cplx> x(d), y(d);
  for (std::size_t c = 0; c < d; ++c) {
    std::fill(x.begin(), x.end(), cplx(0.0));
    std::fill(y.begin(), y.end(), cplx(0.0));
    x[c] = cplx(1.0);
    a.apply_add(x, y, cplx(1.0));
    for (std::size_t r = 0; r < d; ++r) m(r, c) = y[r];
  }
  return m;
}

/// Integrated |A_cf - exact Lorentzian pole sum| over a 601-point grid
/// bracketing the spectrum — the acceptance metric of spectral_greens. The
/// exact weights |<j|phi>|^2 come from the eigenvector projection.
double cf_integrated_dev(const SpectralFunction& sf, const EigenSystem& es,
                         std::span<const cplx> phi, double eta) {
  const std::size_t d = es.eigenvalues.size();
  std::vector<double> w(d);
  for (std::size_t j = 0; j < d; ++j) {
    cplx amp(0.0);
    for (std::size_t i = 0; i < d; ++i)
      amp += std::conj(es.eigenvectors(i, j)) * phi[i];
    w[j] = std::norm(amp);
  }
  const double lo = es.eigenvalues.front() - 1.0;
  const double hi = es.eigenvalues.back() + 1.0;
  const double dx = (hi - lo) / 600.0;
  double dev = 0.0;
  for (int i = 0; i <= 600; ++i) {
    const double omega = lo + dx * i;
    double ref = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double e = omega - es.eigenvalues[j];
      ref += w[j] * (eta / M_PI) / (e * e + eta * eta);
    }
    const double diff = std::abs(sf.evaluate_at(omega, eta) - ref);
    dev += (i == 0 || i == 600) ? 0.5 * diff : diff;
  }
  return dev * dx;
}

/// Integrated |rho_kpm - exact-moment Jackson reconstruction| over the
/// interior 90% of the KPM bracket — the acceptance metric of
/// spectral_kpm_dos. The reference moments come from the eigenvalues with
/// the estimator's own bounds and kernel, so the shared broadening cancels.
double kpm_integrated_dev(const KpmDos& kpm, const EigenSystem& es) {
  const std::size_t mcount = kpm.moments().size();
  const double shift = 0.5 * (kpm.e_max() + kpm.e_min());
  const double scale = 0.5 * (kpm.e_max() - kpm.e_min());
  const double dinv = 1.0 / static_cast<double>(es.eigenvalues.size());
  std::vector<double> mu(mcount, 0.0);
  for (double e : es.eigenvalues) {
    const double x = (e - shift) / scale;
    double tp = 1.0, tc = x;
    mu[0] += dinv;
    mu[1] += dinv * x;
    for (std::size_t k = 2; k < mcount; ++k) {
      const double tn = 2.0 * x * tc - tp;
      tp = tc;
      tc = tn;
      mu[k] += dinv * tc;
    }
  }
  const double m1 = static_cast<double>(mcount) + 1.0;
  const double cot = std::cos(M_PI / m1) / std::sin(M_PI / m1);
  std::vector<double> jack(mcount);
  for (std::size_t k = 0; k < mcount; ++k) {
    const double kd = static_cast<double>(k);
    jack[k] = ((m1 - kd) * std::cos(M_PI * kd / m1) +
               std::sin(M_PI * kd / m1) * cot) /
              m1;
  }
  const double width = kpm.e_max() - kpm.e_min();
  const double lo = kpm.e_min() + 0.05 * width;
  const double dx = 0.9 * width / 600.0;
  double dev = 0.0;
  for (int i = 0; i <= 600; ++i) {
    const double omega = lo + dx * i;
    const double x = (omega - shift) / scale;
    double cp = 1.0, cc = x;
    double s = jack[0] * mu[0] + 2.0 * jack[1] * mu[1] * cc;
    for (std::size_t k = 2; k < mcount; ++k) {
      const double cn = 2.0 * x * cc - cp;
      cp = cc;
      cc = cn;
      s += 2.0 * jack[k] * mu[k] * cc;
    }
    const double ref = s / (M_PI * std::sqrt(1.0 - x * x) * scale);
    const double diff = std::abs(kpm.evaluate_at(omega) - ref);
    dev += (i == 0 || i == 600) ? 0.5 * diff : diff;
  }
  return dev * dx;
}

/// Exact <H>_beta from the eigenvalues alone (the observable is diagonal in
/// its own eigenbasis) — the acceptance reference of spectral_thermal.
double thermal_energy_ref(const std::vector<double>& eigenvalues,
                          double beta) {
  const double e0 = eigenvalues.front();
  double z = 0.0, acc = 0.0;
  for (double e : eigenvalues) {
    const double w = std::exp(-beta * (e - e0));
    z += w;
    acc += w * e;
  }
  return acc / z;
}

void print_help(const char* prog) {
  std::printf(
      "usage: %s [--quick] [--out PATH] [--threads K] [--repeat K]\n"
      "       [--simd TIER] [--only SUBSTR]... [--trace PATH] [--progress]\n"
      "       [--list] [--help]\n"
      "\n"
      "Runs the GECOS benchmark suite and writes a JSON report.\n"
      "\n"
      "  --quick       smaller workloads and shorter timing windows (0.05 s\n"
      "                instead of 0.25 s per sample); CI uses this as a\n"
      "                smoke test, so absolute numbers are noisier\n"
      "  --out PATH    output path for the JSON report (default:\n"
      "                BENCH_pauli.json)\n"
      "  --threads K   worker count for the parallel statevector kernels;\n"
      "                the parallel_apply/hubbard_quench entries measure\n"
      "                1 vs K explicitly (without the flag: 1 vs 4; other\n"
      "                entries follow GECOS_THREADS, else hardware\n"
      "                concurrency)\n"
      "  --repeat K    timed runs per entry (default 5); every timed entry\n"
      "                reports the median and the min across the runs\n"
      "  --simd TIER   force the SIMD dispatch tier (scalar | avx2 | avx512)\n"
      "                for every kernel in the run, same spelling as the\n"
      "                GECOS_SIMD environment variable; forcing a tier this\n"
      "                host cannot run is an error. Without the flag the\n"
      "                widest available tier is used (see the hw block)\n"
      "  --only SUBSTR run only the bench entries whose name contains\n"
      "                SUBSTR (repeatable; a filter matching no entry is an\n"
      "                error). Entries run in their full-suite order and\n"
      "                the JSON schema is unchanged; without an explicit\n"
      "                --out the partial report goes to BENCH_partial.json\n"
      "                so the tracked full-suite artifact is never\n"
      "                clobbered\n"
      "  --trace PATH  record scoped spans during the run and write a\n"
      "                chrome://tracing / Perfetto trace-event JSON to PATH\n"
      "                on exit (same format as GECOS_TRACE=<path>; validate\n"
      "                or digest it with tools/trace_report.py)\n"
      "  --progress    stream throttled solver progress lines (iteration,\n"
      "                residual, matvecs, ETA) to stderr from the\n"
      "                Lanczos-based entries\n"
      "  --list        print the registered bench entry names (one per\n"
      "                line, full-suite order) and exit without running\n"
      "                anything; with --only filters it prints exactly the\n"
      "                entries the same filters would run (a filter preview)\n"
      "  --help        print this message and exit\n"
      "\n"
      "Output schema \"gecos-bench-v4\":\n"
      "  {\"schema\": \"gecos-bench-v4\", \"quick\": bool,\n"
      "   \"hw\": {\"nproc\", \"avx2\", \"avx512\", \"simd_tier\"},\n"
      "   \"benchmarks\": [{\"name\": str, <numeric fields>,\n"
      "                    \"telemetry\": {<counter deltas>}}]}\n"
      "v4 adds the per-entry \"telemetry\" object: the metrics-registry\n"
      "delta over the entry — matvecs (logical operator applications),\n"
      "kernel_sweeps, amplitudes_touched, bytes_moved (the same analytic\n"
      "traffic models as the roofline fields), pool_dispatches and\n"
      "pool_utilization (pool task time / (task + idle)). Every other\n"
      "field and the entry names are unchanged from v3.\n"
      "Fields ending in seconds_per_op are the MEDIAN over --repeat timed\n"
      "runs; the matching min_* field is the minimum across the same runs\n"
      "(the least-noise sample — compare trajectories on that). *_per_sec\n"
      "are derived from the median; speedup_vs_ref compares against the\n"
      "retained legacy implementation in the same binary and run.\n"
      "stream_triad measures the machine's streaming memory bandwidth; the\n"
      "achieved_gbs fields of scb_apply / hubbard_quench / sector_quench\n"
      "divide each entry's modeled memory traffic by its min time, and\n"
      "stream_fraction is achieved_gbs over the triad roofline (how close\n"
      "the kernel runs to memory-bound peak). fermion_*\n"
      "entries report scb_terms vs pauli_strings and the build time of each\n"
      "representation; parallel_apply and hubbard_quench report the threaded\n"
      "statevector/evolution throughput (hubbard_quench also times the\n"
      "unfused one-sweep-per-term evolver and reports fused_speedup plus the\n"
      "fused-vs-unfused trajectory gate); lanczos_ground_state and\n"
      "krylov_quench cover the Krylov solver layer; lanczos_resume gates\n"
      "checkpoint/restore (interrupt mid-solve, resume from the file,\n"
      "require the recovered E0 within 1e-10 of the uninterrupted\n"
      "reference); sector_* entries cover\n"
      "the U(1) symmetry-sector subsystem (sector_xcheck gates the sector\n"
      "ground state against the full-space value, sector_ground_state is\n"
      "the n >= 28 scale proof, sector_quench the sector-native evolution);\n"
      "spectral_* entries cover the spectral & thermal workloads, each\n"
      "gated against a dense eigh reference (spectral_greens: continued-\n"
      "fraction A(w) full-space and sector-restricted within 1e-8\n"
      "integrated deviation; spectral_kpm_dos: exact-trace KPM DOS within\n"
      "the same gate, stochastic trace timed; spectral_thermal: sampled\n"
      "<H>_beta inside its own error bars across a beta sweep,\n"
      "bit-reproducible under the fixed seed). telemetry_overhead gates\n"
      "the instrumentation cost itself: the quench Strang step is timed\n"
      "with telemetry off, with metrics on, and with metrics + tracing on,\n"
      "and the enabled-over-off ratios must stay within 1%% (metrics) and\n"
      "5%% (traced) at full size (relaxed gates under --quick, where the\n"
      "short timing windows are noise-dominated). serve_batch gates the\n"
      "serving layer: 16 coalesced expectation requests run as one batched\n"
      "evolution pass must beat the 16 sequential passes by >= 5x with\n"
      "bitwise-identical values, and a warm re-submit of an identical\n"
      "ground-state job to a live Scheduler must be served from the\n"
      "artifact cache (artifact_hits > 0, zero kernel compiles / sector\n"
      "table builds in the warm telemetry delta) while reproducing the\n"
      "cold solve trajectory bit-for-bit.\n"
      "See DESIGN.md \"Benchmark methodology\", \"Krylov solver layer\",\n"
      "\"Symmetry sectors\", \"Spectral & thermal workloads\",\n"
      "\"Telemetry & tracing\", \"Serving layer\" and README.md\n"
      "\"Reading BENCH_pauli.json\".\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool list_only = false;  // --list: print entry names, run nothing
  int threads_flag = 0;  // 0 = not given; parallel entries then default to 4
  std::string out_path = "BENCH_pauli.json";
  bool out_given = false;
  std::string trace_path;        // --trace PATH (empty = no trace)
  bool progress_flag = false;    // --progress: stderr solver progress
  std::vector<std::string> only;  // --only filters (empty = run everything)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --out requires a PATH argument\n", argv[0]);
        return 2;
      }
      out_path = argv[++i];
      out_given = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --repeat requires a count argument\n",
                     argv[0]);
        return 2;
      }
      const int k = std::atoi(argv[++i]);
      if (k < 1) {
        std::fprintf(stderr, "%s: --repeat needs a positive count, got '%s'\n",
                     argv[0], argv[i]);
        return 2;
      }
      g_repeat = k;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --threads requires a count argument\n",
                     argv[0]);
        return 2;
      }
      const int k = std::atoi(argv[++i]);
      if (k < 1) {
        std::fprintf(stderr, "%s: --threads needs a positive count, got '%s'\n",
                     argv[0], argv[i]);
        return 2;
      }
      threads_flag = k;
      set_num_threads(k);
    } else if (std::strcmp(argv[i], "--simd") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "%s: --simd requires a tier argument "
                     "(scalar | avx2 | avx512)\n",
                     argv[0]);
        return 2;
      }
      try {
        set_simd_tier(parse_simd_tier(argv[++i]));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: --simd %s: %s\n", argv[0], argv[i],
                     e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--only") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --only requires a SUBSTR argument\n",
                     argv[0]);
        return 2;
      }
      only.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --trace requires a PATH argument\n",
                     argv[0]);
        return 2;
      }
      trace_path = argv[++i];
      if (trace_path.empty()) {
        std::fprintf(stderr, "%s: --trace requires a non-empty PATH\n",
                     argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress_flag = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_only = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
             std::strcmp(argv[i], "-h") == 0) {
      print_help(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument '%s'\nusage: %s [--quick] [--out "
                   "PATH] [--threads K] [--repeat K] [--simd TIER] "
                   "[--only SUBSTR]... [--trace PATH] [--progress] "
                   "[--list] [--help]\n",
                   argv[0], argv[i], argv[0]);
      return 2;
    }
  }
  // Validate the lazily-parsed environment up front: a bad GECOS_THREADS /
  // GECOS_SIMD should fail the run with the offending token and the
  // flag-error exit code, not explode inside the first parallel kernel.
  try {
    (void)num_threads();
    (void)simd_tier();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  // Metrics are on for bench runs: the per-entry telemetry JSON block needs
  // the registry live, and telemetry_overhead gates the cost of exactly
  // this mode against the disabled path. --trace additionally records
  // scoped spans into the per-thread rings.
  telemetry::set_metrics_enabled(true);
  if (!trace_path.empty()) telemetry::set_tracing_enabled(true);
  // Probe --out writability before the (potentially minutes-long) run: CI
  // daemon integration points --out into a job workspace, and a typo'd
  // directory should fail now with the flag-error exit code, not after the
  // suite finishes. Append mode so an existing artifact is left untouched;
  // the probe file is removed again when the path did not pre-exist.
  if (!list_only) {
    const bool pre_existed =
        static_cast<bool>(std::ifstream(out_path.c_str()));
    if (!std::ofstream(out_path.c_str(), std::ios::app)) {
      std::fprintf(stderr, "%s: --out %s: cannot open for writing\n",
                   argv[0], out_path.c_str());
      return 2;
    }
    if (!pre_existed) std::remove(out_path.c_str());
  }
  // A filtered run writes a PARTIAL report; defaulting it onto the tracked
  // full-suite artifact would silently clobber the perf trajectory, so
  // --only redirects the default output (an explicit --out still wins).
  if (!only.empty() && !out_given && !list_only) {
    out_path = "BENCH_partial.json";
    std::printf("note: --only without --out writes %s (not the tracked "
                "full-suite BENCH_pauli.json)\n",
                out_path.c_str());
  }
  const double min_s = quick ? 0.05 : 0.25;
  std::vector<BenchResult> results;

  // achieved_gbs / triad roofline ratio; 0 when stream_triad did not run
  // in this invocation (--only filtered it out).
  const auto stream_frac = [](double gbs) {
    return g_triad_gbs > 0.0 ? gbs / g_triad_gbs : 0.0;
  };

  // -- section registry ------------------------------------------------------
  // One named section per JSON entry, in full-suite order. Sections return
  // nonzero on a gate failure (cross-checks), which becomes the exit code.
  struct Section {
    const char* name;
    std::function<int()> run;
  };
  std::vector<Section> sections;

  // -- term -> Pauli expansion (the Fig. 1 "mapping" arrow) ------------------
  sections.push_back({"term_expansion", [&] {
    std::mt19937 rng(kSeed);
    const std::size_t n = 32;
    const std::size_t k = quick ? 10 : 14;  // 2^k strings
    const ScbTerm term = make_expanding_term(n, k, rng);
    const double strings = static_cast<double>(std::size_t{1} << k);

    const Timing packed_t = time_per_op(
        [&] { sink += term_to_pauli(term).size(); }, min_s);
    const Timing ref_t = time_per_op(
        [&] { sink += ref_term_to_pauli(term).size(); }, min_s);
    std::printf("term_expansion       n=%zu strings=%g packed=%.3fms ref=%.3fms"
                " speedup=%.2fx\n",
                n, strings, packed_t.median * 1e3, ref_t.median * 1e3,
                ref_t.median / packed_t.median);
    results.push_back({"term_expansion",
                       {{"num_qubits", static_cast<double>(n)},
                        {"strings", strings},
                        {"seconds_per_op", packed_t.median},
                        {"min_seconds_per_op", packed_t.min},
                        {"strings_per_sec", strings / packed_t.median},
                        {"ref_seconds_per_op", ref_t.median},
                        {"ref_min_seconds_per_op", ref_t.min},
                        {"speedup_vs_ref", ref_t.median / packed_t.median}}});
    return 0;
  }});

  // -- PauliSum * PauliSum ---------------------------------------------------
  sections.push_back({"pauli_sum_product", [&] {
    std::mt19937 rng(kSeed);
    const std::size_t n = 32;
    const std::size_t terms = quick ? 48 : 128;  // terms^2 string products
    PauliSum a(n), b(n);
    RefPauliSum ra, rb;
    std::uniform_real_distribution<double> cd(-1.0, 1.0);
    while (a.size() < terms) {
      const PauliString s = random_string(n, rng);
      const cplx c(cd(rng), cd(rng));
      a.add(s, c);
      ra.add(s, c);
    }
    while (b.size() < terms) {
      const PauliString s = random_string(n, rng);
      const cplx c(cd(rng), cd(rng));
      b.add(s, c);
      rb.add(s, c);
    }
    const double pairs = static_cast<double>(terms) * terms;
    const Timing packed_t =
        time_per_op([&] { sink += (a * b).size(); }, min_s);
    const Timing ref_t = time_per_op([&] { sink += (ra * rb).size(); }, min_s);
    std::printf("pauli_sum_product    n=%zu pairs=%g packed=%.3fms ref=%.3fms"
                " speedup=%.2fx\n",
                n, pairs, packed_t.median * 1e3, ref_t.median * 1e3,
                ref_t.median / packed_t.median);
    results.push_back({"pauli_sum_product",
                       {{"num_qubits", static_cast<double>(n)},
                        {"terms_each", static_cast<double>(terms)},
                        {"string_products", pairs},
                        {"seconds_per_op", packed_t.median},
                        {"min_seconds_per_op", packed_t.min},
                        {"products_per_sec", pairs / packed_t.median},
                        {"ref_seconds_per_op", ref_t.median},
                        {"ref_min_seconds_per_op", ref_t.min},
                        {"speedup_vs_ref", ref_t.median / packed_t.median}}});
    return 0;
  }});

  // -- roofline anchor -------------------------------------------------------
  // STREAM triad (a[i] = b[i] + s*c[i] over doubles, arrays far beyond the
  // last-level cache): the streaming-bandwidth ceiling of this machine.
  // The statevector sweeps below are memory-bound, so their achieved_gbs
  // (modeled traffic / min time) is meaningful exactly as a fraction of
  // this number — stream_fraction close to 1 means the kernel is running
  // at the roofline and further ILP/SIMD work cannot help.
  sections.push_back({"stream_triad", [&] {
    const std::size_t len =
        quick ? (std::size_t{1} << 21) : (std::size_t{1} << 23);
    std::vector<double> a(len, 1.0), b(len, 2.0), c(len, 0.5);
    const double s = 3.0;
    const Timing t = time_per_op(
        [&] {
          double* pa = a.data();
          const double* pb = b.data();
          const double* pc = c.data();
          for (std::size_t i = 0; i < len; ++i) pa[i] = pb[i] + s * pc[i];
          sink += static_cast<std::size_t>(a[len / 2] < 1e9);
        },
        min_s);
    const double bytes = 24.0 * static_cast<double>(len);  // 2 loads, 1 store
    g_triad_gbs = bytes / t.min / 1e9;
    std::printf("stream_triad         len=%zu doubles peak=%.2f GB/s "
                "(median %.2f GB/s)\n",
                len, g_triad_gbs, bytes / t.median / 1e9);
    results.push_back({"stream_triad",
                       {{"doubles_per_array", static_cast<double>(len)},
                        {"bytes_per_pass", bytes},
                        {"seconds_per_op", t.median},
                        {"min_seconds_per_op", t.min},
                        {"triad_gbs", bytes / t.median / 1e9},
                        {"peak_triad_gbs", g_triad_gbs}}});
    return 0;
  }});

  // -- matrix-free statevector apply -----------------------------------------
  sections.push_back({"scb_apply", [&] {
    std::mt19937 rng(kSeed);
    const std::size_t n = quick ? 12 : 16;
    const std::size_t dim = std::size_t{1} << n;
    std::vector<ScbTerm> terms;
    for (int j = 0; j < 16; ++j)
      terms.push_back(make_expanding_term(n, 4, rng));
    const std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim);

    const Timing kernel_t = time_per_op(
        [&] {
          std::fill(y.begin(), y.end(), cplx(0.0));
          apply_terms(terms, x, y);
          sink += static_cast<std::size_t>(std::abs(y[0].real()) < 2);
        },
        min_s);
    const Timing legacy_t = time_per_op(
        [&] {
          std::fill(y.begin(), y.end(), cplx(0.0));
          legacy_apply_terms(terms, x, y);
          sink += static_cast<std::size_t>(std::abs(y[0].real()) < 2);
        },
        min_s);
    const double amps =
        static_cast<double>(dim) * static_cast<double>(terms.size());
    // Traffic model: each term's kernel walks its selected states only
    // (dim >> popcount(select)), reading x (16 B) and read-modify-writing
    // y (32 B) per covered amplitude. The zero-fill of y before each apply
    // is part of the timed op, so count its dim stores once.
    double traffic = 16.0 * static_cast<double>(dim);  // the std::fill
    for (const ScbTerm& t : terms) {
      const TermKernel k(t);
      traffic += 48.0 * static_cast<double>(
                            dim >> std::popcount(k.select_mask));
    }
    const double gbs = traffic / kernel_t.min / 1e9;
    std::printf("scb_apply            n=%zu terms=%zu kernel=%.3fms"
                " legacy=%.3fms speedup=%.2fx %.2f GB/s\n",
                n, terms.size(), kernel_t.median * 1e3, legacy_t.median * 1e3,
                legacy_t.median / kernel_t.median, gbs);
    results.push_back({"scb_apply",
                       {{"num_qubits", static_cast<double>(n)},
                        {"terms", static_cast<double>(terms.size())},
                        {"seconds_per_op", kernel_t.median},
                        {"min_seconds_per_op", kernel_t.min},
                        {"term_amplitudes_per_sec", amps / kernel_t.median},
                        {"traffic_bytes_per_op", traffic},
                        {"achieved_gbs", gbs},
                        {"stream_fraction", stream_frac(gbs)},
                        {"ref_seconds_per_op", legacy_t.median},
                        {"ref_min_seconds_per_op", legacy_t.min},
                        {"speedup_vs_ref", legacy_t.median / kernel_t.median}}});
    return 0;
  }});

  sections.push_back({"pauli_sum_apply", [&] {
    std::mt19937 rng(kSeed + 1);  // distinct stream from scb_apply
    const std::size_t n = quick ? 12 : 16;
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim);
    PauliSum ps(n);
    std::uniform_real_distribution<double> cd(-1.0, 1.0);
    while (ps.size() < 64) ps.add(random_string(n, rng), cplx(cd(rng)));
    const Timing psum_t = time_per_op(
        [&] {
          std::fill(y.begin(), y.end(), cplx(0.0));
          ps.apply(x, y);
          sink += static_cast<std::size_t>(std::abs(y[0].real()) < 2);
        },
        min_s);
    const double pamps = static_cast<double>(dim) * 64.0;
    std::printf("pauli_sum_apply      n=%zu terms=64 t=%.3fms (%.1f Mamp/s)\n",
                n, psum_t.median * 1e3, pamps / psum_t.median / 1e6);
    results.push_back({"pauli_sum_apply",
                       {{"num_qubits", static_cast<double>(n)},
                        {"terms", 64.0},
                        {"seconds_per_op", psum_t.median},
                        {"min_seconds_per_op", psum_t.min},
                        {"term_amplitudes_per_sec", pamps / psum_t.median}}});
    return 0;
  }});

  // -- dense kernels ---------------------------------------------------------
  sections.push_back({"dense_matmul", [&] {
    std::mt19937 rng(kSeed);
    const std::size_t n = quick ? 128 : 384;
    const Matrix a = Matrix::random_hermitian(n, rng);
    const Matrix b = Matrix::random_hermitian(n, rng);
    Matrix out(n, n);
    const Timing mm_t = time_per_op(
        [&] {
          Matrix::mul_into(out, a, b);
          sink += static_cast<std::size_t>(std::abs(out(0, 0).real()) < 1e9);
        },
        min_s);
    const double nd = static_cast<double>(n);
    std::printf("dense_matmul         n=%zu t=%.3fms (%.2f complex GFLOP/s)\n",
                n, mm_t.median * 1e3, 8.0 * nd * nd * nd / mm_t.median / 1e9);
    results.push_back({"dense_matmul",
                       {{"size", nd},
                        {"seconds_per_op", mm_t.median},
                        {"min_seconds_per_op", mm_t.min},
                        {"cmul_per_sec", nd * nd * nd / mm_t.median}}});
    return 0;
  }});

  sections.push_back({"dense_expm", [&] {
    std::mt19937 rng(kSeed);
    const std::size_t ne = quick ? 48 : 96;
    const Matrix h = Matrix::random_hermitian(ne, rng);
    const Matrix ih = h * cplx(0.0, 1.0);
    const Timing expm_t = time_per_op(
        [&] {
          const Matrix e = expm(ih);
          sink += static_cast<std::size_t>(std::abs(e(0, 0).real()) < 2);
        },
        min_s);
    std::printf("dense_expm           n=%zu t=%.3fms\n", ne,
                expm_t.median * 1e3);
    results.push_back({"dense_expm",
                       {{"size", static_cast<double>(ne)},
                        {"seconds_per_op", expm_t.median},
                        {"min_seconds_per_op", expm_t.min}}});
    return 0;
  }});

  // -- fermionic Jordan-Wigner workloads (paper Sec. II-B1 vs III) -----------
  // Each entry builds the same second-quantized Hamiltonian both ways: the
  // direct SCB composition (one term per fermionic word, via jw_sum) and the
  // expanded Pauli representation (2^k strings per term, via to_pauli), and
  // reports term counts plus build time per representation.
  const auto bench_fermion = [&](const std::string& name, const FermionSum& h,
                                 std::size_t modes) {
    const Timing scb_t = time_per_op(
        [&] { sink += jw_sum(h, modes).size(); }, min_s);
    const ScbSum scb = jw_sum(h, modes);
    // The "usual strategy" maps the fermionic sum all the way to Pauli
    // strings, so its build time includes the JW step too.
    const Timing pauli_t = time_per_op(
        [&] { sink += jw_sum(h, modes).to_pauli().size(); }, min_s);
    const PauliSum pauli = scb.to_pauli();
    std::printf("%-20s n=%zu scb_terms=%zu pauli_strings=%zu scb=%.3fms"
                " pauli=%.3fms build_ratio=%.2fx\n",
                name.c_str(), modes, scb.size(), pauli.size(),
                scb_t.median * 1e3, pauli_t.median * 1e3,
                pauli_t.median / scb_t.median);
    results.push_back(
        {name,
         {{"num_qubits", static_cast<double>(modes)},
          {"fermion_terms", static_cast<double>(h.size())},
          {"scb_terms", static_cast<double>(scb.size())},
          {"pauli_strings", static_cast<double>(pauli.size())},
          {"scb_build_seconds", scb_t.median},
          {"scb_build_min_seconds", scb_t.min},
          {"pauli_build_seconds", pauli_t.median},
          {"pauli_build_min_seconds", pauli_t.min},
          {"pauli_vs_scb_build_ratio", pauli_t.median / scb_t.median}}});
  };

  sections.push_back({"fermion_hubbard_1d", [&] {
    HubbardParams h1;  // 1D spinless chain, >= 16 sites
    h1.lx = quick ? 16 : 32;
    h1.t = 1.0;
    h1.u = 2.0;
    h1.mu = 0.5;
    h1.periodic_x = true;
    bench_fermion("fermion_hubbard_1d", hubbard_hamiltonian(h1),
                  hubbard_num_modes(h1));
    return 0;
  }});

  sections.push_back({"fermion_hubbard_2d_spinful", [&] {
    HubbardParams h2;  // 2D spinful lattice
    h2.lx = 4;
    h2.ly = quick ? 2 : 4;
    h2.t = 1.0;
    h2.u = 4.0;
    h2.mu = 0.5;
    h2.periodic_x = true;
    h2.periodic_y = !quick;
    h2.spinful = true;
    bench_fermion("fermion_hubbard_2d_spinful", hubbard_hamiltonian(h2),
                  hubbard_num_modes(h2));
    return 0;
  }});

  sections.push_back({"fermion_molecular", [&] {
    std::size_t mol_modes = 0;
    const FermionSum mol = molecular_workload(quick, mol_modes);
    bench_fermion("fermion_molecular", mol, mol_modes);
    return 0;
  }});

  sections.push_back({"fermion_density_string", [&] {
    // A product of k number operators: ONE SCB term versus 2^k Pauli
    // strings — the Section II-B1 blow-up measured head-to-head.
    const std::size_t k = quick ? 10 : 16;
    const std::size_t dn = k + 4;
    FermionSum density;
    std::vector<LadderOp> word;
    for (std::uint32_t m = 0; m < k; ++m) {
      word.push_back({m, true});
      word.push_back({m, false});
    }
    density.add(FermionProduct(1.0, word));
    bench_fermion("fermion_density_string", density, dn);
    return 0;
  }});

  sections.push_back({"fermion_apply_xcheck", [&] {
    // Matrix-free cross-validation at n = mol_modes: both representations of
    // the molecular Hamiltonian applied to the same random state.
    std::mt19937 rng(kSeed);
    std::size_t mol_modes = 0;
    const FermionSum mol = molecular_workload(quick, mol_modes);
    const ScbSum scb = jw_sum(mol, mol_modes);
    const PauliSum pauli = scb.to_pauli();
    const std::size_t dim = std::size_t{1} << mol_modes;
    const std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> ys(dim, cplx(0.0)), yp(dim, cplx(0.0));
    scb.apply(x, ys);
    pauli.apply(x, yp);
    const double diff = vec_max_abs_diff(ys, yp);
    if (diff > 1e-10) {
      std::fprintf(stderr,
                   "error: fermion_molecular SCB vs Pauli apply mismatch "
                   "(max diff %g)\n",
                   diff);
      return 1;
    }
    std::printf("fermion_apply_xcheck n=%zu scb_vs_pauli_max_diff=%.2e\n",
                mol_modes, diff);
    results.push_back({"fermion_apply_xcheck",
                       {{"num_qubits", static_cast<double>(mol_modes)},
                        {"scb_vs_pauli_max_diff", diff}}});
    return 0;
  }});

  // -- threaded statevector apply and Trotter quench throughput --------------
  // parallel_apply: the matrix-free ScbSum apply of a Hubbard Hamiltonian at
  // 1 worker vs the configured count (--threads, default 4); the quench
  // entry then runs the full Strang evolution engine on the same lattice
  // from the CDW product state, where each exact term exponential sweeps its
  // selected amplitudes in parallel with zero per-step allocation.
  //
  // An explicit --threads K wins (even K = 1: the parallel leg then just
  // re-measures the serial path); otherwise measure 1 vs 4 workers.
  const int k_threads = threads_flag > 0 ? threads_flag : 4;

  sections.push_back({"parallel_apply", [&] {
    std::mt19937 rng(kSeed);
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);  // 16 quick, 20 full
    const std::size_t dim = std::size_t{1} << n;
    const ScbSum h = hubbard_scb(hq);
    const std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim);

    const auto apply_once = [&] {
      h.apply(x, y);
      sink += static_cast<std::size_t>(std::abs(y[0].real()) < 2);
    };
    set_num_threads(1);
    const Timing serial_t = time_per_op(apply_once, min_s);
    set_num_threads(k_threads);
    const Timing par_t = time_per_op(apply_once, min_s);
    const double amps =
        static_cast<double>(dim) * static_cast<double>(h.size());
    std::printf("parallel_apply       n=%zu terms=%zu 1thr=%.3fms %dthr=%.3fms"
                " speedup=%.2fx\n",
                n, h.size(), serial_t.median * 1e3, k_threads,
                par_t.median * 1e3, serial_t.median / par_t.median);
    results.push_back({"parallel_apply",
                       {{"num_qubits", static_cast<double>(n)},
                        {"scb_terms", static_cast<double>(h.size())},
                        {"threads", static_cast<double>(k_threads)},
                        // How the configured worker count relates to the
                        // machine: speedups plateau at hardware_concurrency.
                        {"hardware_concurrency",
                         static_cast<double>(
                             std::thread::hardware_concurrency())},
                        {"serial_seconds_per_op", serial_t.median},
                        {"serial_min_seconds_per_op", serial_t.min},
                        {"seconds_per_op", par_t.median},
                        {"min_seconds_per_op", par_t.min},
                        {"term_amplitudes_per_sec", amps / par_t.median},
                        {"parallel_speedup", serial_t.median / par_t.median}}});
    return 0;
  }});

  sections.push_back({"hubbard_quench", [&] {
    // Hubbard quench: Strang steps from the half-filling CDW state. The
    // fused evolver (the default: one phase-table sweep over all commuting
    // diagonal terms, batched disjoint pair rotations) is timed against the
    // unfused one-sweep-per-term evolver IN THE SAME RUN, and the two
    // trajectories are gated against each other first — the fusion passes
    // only reorder within provably commuting groups, so they must agree to
    // 1e-12 over a real quench before any speedup is reported.
    set_num_threads(k_threads);
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const std::size_t dim = std::size_t{1} << n;
    const ScbSum h = hubbard_scb(hq);
    const TrotterEvolver ev(h);  // fused schedule (the production default)
    const TrotterEvolver plain(h, 1e-12, 2, false);  // one sweep per term
    const double dt = 0.02;

    StateVector ga = StateVector::product(n, hubbard_cdw_occupation(hq));
    StateVector gb = ga;
    for (int s = 0; s < 5; ++s) {
      ev.step(ga, dt, 2);
      plain.step(gb, dt, 2);
    }
    const double fdiff = ga.max_abs_diff(gb);
    if (fdiff > 1e-12) {
      std::fprintf(stderr,
                   "error: hubbard_quench fused-vs-unfused trajectory "
                   "mismatch (max diff %g over 5 steps, gate 1e-12)\n",
                   fdiff);
      return 1;
    }

    StateVector psi = StateVector::product(n, hubbard_cdw_occupation(hq));
    const double e0 = psi.expectation(h).real();
    const Timing step_t = time_per_op(
        [&] {
          ev.step(psi, dt, 2);
          sink += static_cast<std::size_t>(psi[0].real() < 2);
        },
        min_s);
    const double drift = std::abs(psi.expectation(h).real() - e0);
    StateVector psi2 = StateVector::product(n, hubbard_cdw_occupation(hq));
    const Timing plain_t = time_per_op(
        [&] {
          plain.step(psi2, dt, 2);
          sink += static_cast<std::size_t>(psi2[0].real() < 2);
        },
        min_s);
    const double fused_speedup = plain_t.min / step_t.min;
    const double step_amps =
        2.0 * static_cast<double>(ev.num_terms()) * static_cast<double>(dim);
    const double traffic = ev.step_traffic_bytes(2);
    const double gbs = traffic / step_t.min / 1e9;
    std::printf("hubbard_quench       n=%zu exp_terms=%zu groups=%zu "
                "step=%.3fms unfused=%.3fms fused_speedup=%.2fx "
                "(%.2f steps/s, %.2f GB/s) fused_diff=%.1e drift=%.2e\n",
                n, ev.num_terms(), ev.num_groups(), step_t.median * 1e3,
                plain_t.median * 1e3, fused_speedup, 1.0 / step_t.median,
                gbs, fdiff, drift);
    results.push_back({"hubbard_quench",
                       {{"num_qubits", static_cast<double>(n)},
                        {"exp_terms", static_cast<double>(ev.num_terms())},
                        {"fused_groups", static_cast<double>(ev.num_groups())},
                        {"threads", static_cast<double>(k_threads)},
                        {"seconds_per_step", step_t.median},
                        {"min_seconds_per_step", step_t.min},
                        {"steps_per_sec", 1.0 / step_t.median},
                        {"term_amplitudes_per_sec", step_amps / step_t.median},
                        {"unfused_seconds_per_step", plain_t.median},
                        {"unfused_min_seconds_per_step", plain_t.min},
                        {"fused_speedup", fused_speedup},
                        {"fused_vs_unfused_max_diff", fdiff},
                        {"step_traffic_bytes", traffic},
                        {"achieved_gbs", gbs},
                        {"stream_fraction", stream_frac(gbs)},
                        {"energy_drift", drift}}});
    return 0;
  }});

  // -- Krylov solver layer: ground state and Krylov quench step --------------
  // Same scope as hubbard_quench above, deliberately: lanczos_ground_state
  // and krylov_quench run on the SAME lattice and Hamiltonian, so the
  // evolution strategies and the ground-state entry share one baseline.
  sections.push_back({"lanczos_ground_state", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    // lanczos_ground_state answers the question the dense eigh never could —
    // the ground-state energy and gap of the n = 20 Hubbard lattice — as a
    // single timed convergence run (tens of seconds at n = 20) reported as
    // time-to-residual with iteration/matvec counts.
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const ScbSum h = hubbard_scb(hq);
    LanczosOptions lo;
    lo.k = 2;  // ground state + gap
    lo.tol = 1e-8;
    if (progress_flag) {
      lo.progress = telemetry::stderr_progress("lanczos_ground_state");
      lo.progress_interval = 10;
    }
    Lanczos solver(h, lo);
    const auto t0 = std::chrono::steady_clock::now();
    const LanczosResult& lr = solver.solve();
    const double lanczos_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double gap = lr.eigenvalues[1] - lr.eigenvalues[0];
    std::printf("lanczos_ground_state n=%zu E0=%.10f gap=%.6f matvecs=%zu"
                " restarts=%zu t=%.2fs conv=%d\n",
                n, lr.eigenvalues[0], gap, lr.matvecs, lr.restarts, lanczos_s,
                lr.converged ? 1 : 0);
    results.push_back(
        {"lanczos_ground_state",
         {{"num_qubits", static_cast<double>(n)},
          {"scb_terms", static_cast<double>(h.size())},
          {"k", static_cast<double>(lo.k)},
          {"residual_tol", lo.tol},
          {"iterations", static_cast<double>(lr.iterations)},
          {"matvecs", static_cast<double>(lr.matvecs)},
          {"restarts", static_cast<double>(lr.restarts)},
          {"seconds_to_converge", lanczos_s},
          {"ground_energy", lr.eigenvalues[0]},
          {"gap", gap},
          {"converged", lr.converged ? 1.0 : 0.0}}});
    return 0;
  }});

  sections.push_back({"lanczos_resume", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    // The checkpoint/restore gate on the same solve as lanczos_ground_state:
    // interrupt a checkpointing run mid-flight at a matvec budget, resume
    // from the file, and require the recovered ground state to match the
    // uninterrupted reference to 1e-10 (the resumed trajectory is
    // bit-identical for a fixed thread count, so this asserts the recorded
    // n = 20 energy at full size and a self-computed reference at --quick).
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const ScbSum h = hubbard_scb(hq);
    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-8;
    const std::string ckpt = "bench_lanczos_resume.ckpt";
    remove_checkpoint(ckpt);
    double full_e0 = kFullE0N20;
    if (quick) full_e0 = Lanczos(h, lo).solve().eigenvalues[0];

    LanczosOptions li = lo;
    li.checkpoint_path = ckpt;
    li.checkpoint_interval = quick ? 10 : 25;
    li.max_matvecs = quick ? 25 : 60;  // the interrupt: budget, then "crash"
    Lanczos interrupted(h, li);
    const std::size_t matvecs_at_interrupt = interrupted.solve().matvecs;

    LanczosOptions lr2 = lo;
    lr2.checkpoint_path = ckpt;
    lr2.checkpoint_interval = li.checkpoint_interval;
    Lanczos resumed(h, lr2);
    const auto t0 = std::chrono::steady_clock::now();
    const LanczosResult& rr = resumed.resume(ckpt);
    const double resume_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    remove_checkpoint(ckpt);
    const double diff = std::abs(rr.eigenvalues[0] - full_e0);
    const bool pass = rr.converged && diff <= 1e-10;
    std::printf("lanczos_resume n=%zu E0=%.10f |diff|=%.2e saved=%zu"
                " matvecs=%zu t=%.2fs %s\n",
                n, rr.eigenvalues[0], diff, rr.resumed_matvecs, rr.matvecs,
                resume_s, pass ? "OK" : "MISMATCH");
    results.push_back(
        {"lanczos_resume",
         {{"num_qubits", static_cast<double>(n)},
          {"checkpoint_interval", static_cast<double>(li.checkpoint_interval)},
          {"matvecs_at_interrupt", static_cast<double>(matvecs_at_interrupt)},
          {"matvecs_saved_by_resume", static_cast<double>(rr.resumed_matvecs)},
          {"matvecs", static_cast<double>(rr.matvecs)},
          {"checkpoints_written", static_cast<double>(rr.checkpoints_written)},
          {"resumed_e0", rr.eigenvalues[0]},
          {"resumed_e0_abs_diff", diff},
          {"max_norm_drift", rr.max_norm_drift},
          {"max_ortho_loss", rr.max_ortho_loss},
          {"seconds_to_converge", resume_s},
          {"converged", rr.converged ? 1.0 : 0.0}}});
    return pass ? 0 : 1;
  }});

  sections.push_back({"krylov_quench", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const ScbSum h = hubbard_scb(hq);
    const TrotterEvolver ev(h);
    KrylovOptions ko;
    ko.tol = 1e-10;
    KrylovEvolver kev(h, ko);
    StateVector kpsi = StateVector::product(n, hubbard_cdw_occupation(hq));
    const double kdt = 0.02;  // the hubbard_quench step size
    const Timing kq_t = time_per_op([&] { kev.step(kpsi, kdt); }, min_s);
    // Per-step cost stats captured here, from the run that was timed (the
    // cross-check below runs on a different state and may settle on a
    // different subspace).
    const std::size_t kq_matvecs = kev.last_matvecs();
    const std::size_t kq_subspace = kev.last_subspace();

    // Integrator cross-check at full scale: the same short quench through
    // both Evolvers must agree within the Strang O(dt^2) budget (the Krylov
    // error is 1e-10 — the difference IS the Trotter error). A gate, like
    // fermion_apply_xcheck: disagreement here means a broken integrator.
    StateVector pk = StateVector::product(n, hubbard_cdw_occupation(hq));
    StateVector pt = pk;
    const int xsteps = 5;
    for (int s = 0; s < xsteps; ++s) kev.step(pk, kdt);
    for (int s = 0; s < xsteps; ++s) ev.step(pt, kdt, 2);
    const double xdiff = pk.max_abs_diff(pt);
    if (xdiff > 1e-3) {
      std::fprintf(stderr,
                   "error: krylov_quench Trotter-vs-Krylov mismatch "
                   "(max diff %g over %d steps)\n",
                   xdiff, xsteps);
      return 1;
    }
    std::printf("krylov_quench        n=%zu step=%.3fms (min %.3fms)"
                " matvecs/step=%zu subspace=%zu vs_trotter=%.2e\n",
                n, kq_t.median * 1e3, kq_t.min * 1e3, kq_matvecs,
                kq_subspace, xdiff);
    results.push_back(
        {"krylov_quench",
         {{"num_qubits", static_cast<double>(n)},
          {"dt", kdt},
          {"krylov_tol", ko.tol},
          {"seconds_per_step", kq_t.median},
          {"min_seconds_per_step", kq_t.min},
          {"steps_per_sec", 1.0 / kq_t.median},
          {"matvecs_per_step", static_cast<double>(kq_matvecs)},
          {"subspace", static_cast<double>(kq_subspace)},
          {"vs_trotter_max_diff", xdiff}}});
    return 0;
  }});

  // -- U(1) symmetry-sector subsystem ----------------------------------------
  // sector_xcheck: the sector decomposition must reproduce the full-space
  // Lanczos ground energy. At mu = 0.5 the global ground state of the
  // quench lattice sits one particle per spin BELOW half filling — (4,4) at
  // n = 20, sector dimension 44,100 of 1,048,576 — so that sector's Lanczos
  // E0 is gated against the full-space value to 1e-8, pinning the whole
  // rank/kernel/solver stack end to end. The half-filling CDW sector (5,5)
  // (dimension 63,504, where the quench entries live) is solved and
  // recorded alongside: its energy is strictly above the global one, which
  // is itself a physics statement the full-space solver cannot make.
  sections.push_back({"sector_xcheck", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const std::size_t half = hubbard_num_sites(hq) / 2;  // per-spin filling
    const ScbSum h = hubbard_scb(hq);
    const SectorBasis ground_basis = hubbard_sector(hq, half - 1, half - 1);
    const SectorOperator hs(ground_basis, h);

    // Full-space reference: the recorded PR 4 constant at n = 20; in quick
    // mode (a different lattice) a full-space solve computes it on the fly.
    double full_e0 = kFullE0N20;
    if (quick) {
      LanczosOptions flo;
      flo.tol = 1e-8;
      Lanczos fsolver(h, flo);
      full_e0 = fsolver.solve().eigenvalues[0];
    }

    LanczosOptions lo;
    lo.tol = 1e-8;
    if (progress_flag) {
      lo.progress = telemetry::stderr_progress("sector_xcheck");
      lo.progress_interval = 10;
    }
    Lanczos solver(hs, lo);
    const auto t0 = std::chrono::steady_clock::now();
    const LanczosResult& lr = solver.solve();
    const double solve_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double diff = std::abs(lr.eigenvalues[0] - full_e0);
    if (!lr.converged || diff > 1e-8) {
      std::fprintf(stderr,
                   "error: sector_xcheck sector-vs-full E0 mismatch "
                   "(sector %.12f, full %.12f, diff %g, conv %d)\n",
                   lr.eigenvalues[0], full_e0, diff, lr.converged ? 1 : 0);
      return 1;
    }

    // Half-filling (CDW) sector, solved sector-natively.
    const SectorBasis cdw_basis =
        hubbard_sector_of(hq, hubbard_cdw_occupation(hq));
    const SectorOperator hs_cdw(cdw_basis, h);
    Lanczos cdw_solver(hs_cdw, lo);
    const LanczosResult& cr = cdw_solver.solve();
    if (!cr.converged || cr.eigenvalues[0] <= full_e0) {
      std::fprintf(stderr,
                   "error: sector_xcheck half-filling sector E0 %.12f not "
                   "above the global ground energy %.12f\n",
                   cr.eigenvalues[0], full_e0);
      return 1;
    }

    std::printf("sector_xcheck        n=%zu ground(%zu,%zu) dim=%zu "
                "E0=%.10f full=%.10f diff=%.2e matvecs=%zu t=%.2fs | "
                "half(%zu,%zu) dim=%zu E0=%.10f\n",
                n, half - 1, half - 1, ground_basis.dim(), lr.eigenvalues[0],
                full_e0, diff, lr.matvecs, solve_s, half, half,
                cdw_basis.dim(), cr.eigenvalues[0]);
    results.push_back(
        {"sector_xcheck",
         {{"num_qubits", static_cast<double>(n)},
          {"full_dim", static_cast<double>(std::size_t{1} << n)},
          {"sector_dim", static_cast<double>(ground_basis.dim())},
          {"n_up", static_cast<double>(half - 1)},
          {"n_down", static_cast<double>(half - 1)},
          {"residual_tol", lo.tol},
          {"matvecs", static_cast<double>(lr.matvecs)},
          {"seconds_to_converge", solve_s},
          {"ground_energy", lr.eigenvalues[0]},
          {"full_reference_e0", full_e0},
          {"sector_vs_full_abs_diff", diff},
          {"half_filling_sector_dim", static_cast<double>(cdw_basis.dim())},
          {"half_filling_e0", cr.eigenvalues[0]},
          {"converged", lr.converged ? 1.0 : 0.0}}});
    return 0;
  }});

  // sector_ground_state: the scale proof. A Lanczos vector at n = 32 costs
  // 2^32 * 16 B = 69 GB in the full space — the basis alone would need
  // several TB — while the (3,3) sector holds 313,600 amplitudes (4.8 MB),
  // so the solve below is simply impossible without the sector subsystem on
  // this machine's memory.
  sections.push_back({"sector_ground_state", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    HubbardParams hp;  // 2D spinful ladder: n = 28 quick / 32 full
    hp.lx = quick ? 7 : 8;
    hp.ly = 2;
    hp.t = 1.0;
    hp.u = 4.0;
    hp.mu = 0.5;
    hp.periodic_x = true;
    hp.spinful = true;
    const std::size_t n = hubbard_num_modes(hp);
    const std::size_t n_up = quick ? 2 : 3;
    const ScbSum h = hubbard_scb(hp);
    const SectorBasis basis = hubbard_sector(hp, n_up, n_up);
    const SectorOperator hs(basis, h);

    LanczosOptions lo;
    lo.k = 2;  // ground state + gap
    lo.tol = 1e-8;
    if (progress_flag) {
      lo.progress = telemetry::stderr_progress("sector_ground_state");
      lo.progress_interval = 10;
    }
    Lanczos solver(hs, lo);
    const auto t0 = std::chrono::steady_clock::now();
    const LanczosResult& lr = solver.solve();
    const double solve_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double gap = lr.eigenvalues[1] - lr.eigenvalues[0];
    std::printf("sector_ground_state  n=%zu (N_up,N_down)=(%zu,%zu) "
                "sector_dim=%zu E0=%.10f gap=%.6f matvecs=%zu t=%.2fs "
                "conv=%d\n",
                n, n_up, n_up, basis.dim(), lr.eigenvalues[0], gap,
                lr.matvecs, solve_s, lr.converged ? 1 : 0);
    results.push_back(
        {"sector_ground_state",
         {{"num_qubits", static_cast<double>(n)},
          {"n_up", static_cast<double>(n_up)},
          {"n_down", static_cast<double>(n_up)},
          {"sector_dim", static_cast<double>(basis.dim())},
          {"scb_terms", static_cast<double>(h.size())},
          {"k", static_cast<double>(lo.k)},
          {"residual_tol", lo.tol},
          {"iterations", static_cast<double>(lr.iterations)},
          {"matvecs", static_cast<double>(lr.matvecs)},
          {"restarts", static_cast<double>(lr.restarts)},
          {"seconds_to_converge", solve_s},
          {"ground_energy", lr.eigenvalues[0]},
          {"gap", gap},
          {"converged", lr.converged ? 1.0 : 0.0}}});
    return 0;
  }});

  // sector_quench: the CDW quench of krylov_quench run sector-natively, with
  // a full-space cross-check (both evolutions are spectrally accurate, so
  // the embedded sector state must match the full KrylovEvolver to ~the
  // per-step budget).
  sections.push_back({"sector_quench", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const ScbSum h = hubbard_scb(hq);
    const std::uint64_t occ = hubbard_cdw_occupation(hq);
    const SectorBasis basis = hubbard_sector_of(hq, occ);
    const SectorOperator hs(basis, h);
    KrylovOptions ko;
    ko.tol = 1e-10;
    const KrylovEvolver sector_ev(hs, ko);
    const KrylovEvolver full_ev(h, ko);
    const double dt = 0.02;  // the krylov_quench step size

    SectorVector spsi = SectorVector::config_state(basis, occ);
    const Timing s_t =
        time_per_op([&] { sector_ev.step(spsi.amps(), dt); }, min_s);
    const std::size_t s_matvecs = sector_ev.last_matvecs();
    StateVector fpsi = StateVector::product(n, occ);
    const Timing f_t = time_per_op([&] { full_ev.step(fpsi, dt); }, min_s);

    // Cross-check over a fresh short quench in both spaces.
    SectorVector xs = SectorVector::config_state(basis, occ);
    StateVector xf = StateVector::product(n, occ);
    const int xsteps = 5;
    for (int s = 0; s < xsteps; ++s) {
      sector_ev.step(xs.amps(), dt);
      full_ev.step(xf, dt);
    }
    const double xdiff = xs.embed().max_abs_diff(xf);
    if (xdiff > 1e-8) {
      std::fprintf(stderr,
                   "error: sector_quench sector-vs-full mismatch "
                   "(max diff %g over %d steps)\n",
                   xdiff, xsteps);
      return 1;
    }
    // Per-matvec traffic model of the sector apply: the fused diagonal
    // pass streams x and read-modify-writes y (48 B/amplitude, one pass for
    // all diagonal terms); each hop kernel reads x, its u32 target-table
    // entry and read-modify-writes y (52 B/amplitude with tables, 48
    // without). Krylov orthogonalization traffic is not modeled, so
    // achieved_gbs is a lower bound on the true bandwidth. Sector vectors
    // are small enough to live in cache (~1 MB at n = 20), so
    // stream_fraction here can legitimately EXCEED 1: cache bandwidth
    // beats the DRAM triad roofline.
    const double sdim = static_cast<double>(basis.dim());
    const double matvec_bytes =
        (hs.has_fused_diagonal() ? 48.0 * sdim : 0.0) +
        (hs.has_hop_tables() ? 52.0 : 48.0) * sdim *
            static_cast<double>(hs.num_hop_kernels());
    const double step_bytes =
        matvec_bytes * static_cast<double>(s_matvecs);
    const double gbs = step_bytes / s_t.min / 1e9;
    std::printf("sector_quench        n=%zu sector_dim=%zu step=%.3fms "
                "(full %.3fms, %.2fx) matvecs/step=%zu vs_full=%.2e "
                "%.2f GB/s\n",
                n, basis.dim(), s_t.median * 1e3, f_t.median * 1e3,
                f_t.median / s_t.median, s_matvecs, xdiff, gbs);
    results.push_back(
        {"sector_quench",
         {{"num_qubits", static_cast<double>(n)},
          {"sector_dim", static_cast<double>(basis.dim())},
          {"dt", dt},
          {"krylov_tol", ko.tol},
          {"seconds_per_step", s_t.median},
          {"min_seconds_per_step", s_t.min},
          {"matvecs_per_step", static_cast<double>(s_matvecs)},
          {"step_traffic_bytes", step_bytes},
          {"achieved_gbs", gbs},
          {"stream_fraction", stream_frac(gbs)},
          {"full_seconds_per_step", f_t.median},
          {"full_min_seconds_per_step", f_t.min},
          {"sector_speedup_vs_full", f_t.median / s_t.median},
          {"sector_vs_full_max_diff", xdiff}}});
    return 0;
  }});

  // -- spectral_greens: continued-fraction A(w) gated by dense eigh ----------
  // Full-space n = 8 AND sector-restricted n = 10 (quick: n = 8 sector),
  // both within 1e-8 integrated absolute deviation of the exact Lorentzian
  // pole sum. The timed quantity is the full-space Lanczos build.
  sections.push_back({"spectral_greens", [&] {
    HubbardParams p;  // spinless ring, full space n = 8 (dim 256)
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const EigenSystem es = eigh(h.to_matrix());

    std::mt19937_64 prng(kSeed);
    std::normal_distribution<double> g;
    std::vector<cplx> phi(256);
    for (auto& x : phi) x = cplx(g(prng), g(prng));
    SpectralFunctionOptions so;
    so.max_moments = 256;
    SpectralFunction sf(h, so);
    const std::size_t m = sf.build(phi);
    const double eta = 0.1;
    const double dev_full = cf_integrated_dev(sf, es, phi, eta);

    HubbardParams ps = p;  // sector lattice: n = 10, N = 5 (dim 252) full run
    ps.lx = quick ? 8 : 10;
    const ScbSum hsec = hubbard_scb(ps);
    const SectorBasis sb = hubbard_sector(ps, quick ? 4 : 5);
    const SectorOperator hs(sb, hsec);
    const EigenSystem ess = eigh(dense_operator(hs));
    const SectorVector sv = SectorVector::random(sb, kSeed);
    SpectralFunctionOptions sso;
    sso.max_moments = sb.dim();
    SpectralFunction sfs(hs, sso);
    sfs.build(sv.amps());
    const double dev_sector = cf_integrated_dev(sfs, ess, sv.amps(), eta);

    if (dev_full > 1e-8 || dev_sector > 1e-8) {
      std::fprintf(stderr,
                   "error: spectral_greens deviates from the dense reference "
                   "(full %.3e, sector %.3e, gate 1e-8)\n",
                   dev_full, dev_sector);
      return 1;
    }
    const Timing t = time_per_op([&] { sink += sf.build(phi); }, min_s);
    std::printf("spectral_greens      n=%zu moments=%zu build=%.3fms "
                "dev_full=%.2e dev_sector=%.2e (sector_dim=%zu)\n",
                p.lx, m, t.median * 1e3, dev_full, dev_sector, sb.dim());
    results.push_back(
        {"spectral_greens",
         {{"num_qubits", static_cast<double>(p.lx)},
          {"moments", static_cast<double>(m)},
          {"eta", eta},
          {"build_seconds_per_op", t.median},
          {"min_build_seconds_per_op", t.min},
          {"integrated_abs_dev_full", dev_full},
          {"sector_dim", static_cast<double>(sb.dim())},
          {"integrated_abs_dev_sector", dev_sector},
          {"gate_integrated_abs_dev", 1e-8}}});
    return 0;
  }});

  // -- spectral_kpm_dos: Chebyshev-moment DOS gated by dense eigh ------------
  // Exact-trace moments (the dense-reference-grade mode) must match the
  // eigenvalue-derived moments under the shared Jackson kernel to 1e-8
  // integrated deviation, full-space and sector-restricted; the stochastic
  // trace (the production mode at scale) is the timed quantity.
  sections.push_back({"spectral_kpm_dos", [&] {
    HubbardParams p;  // same full-space lattice as spectral_greens
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const EigenSystem es = eigh(h.to_matrix());

    KpmDos kpm(h);  // M = 128, exact trace, power-iteration bounds
    const std::size_t matvecs = kpm.compute();
    const double dev_full = kpm_integrated_dev(kpm, es);

    HubbardParams ps = p;  // sector lattice mirrors spectral_greens
    ps.lx = quick ? 8 : 10;
    const ScbSum hsec = hubbard_scb(ps);
    const SectorBasis sb = hubbard_sector(ps, quick ? 4 : 5);
    const SectorOperator hs(sb, hsec);
    const EigenSystem ess = eigh(dense_operator(hs));
    KpmDos kpms(hs);
    kpms.compute();
    const double dev_sector = kpm_integrated_dev(kpms, ess);

    if (dev_full > 1e-8 || dev_sector > 1e-8) {
      std::fprintf(stderr,
                   "error: spectral_kpm_dos deviates from the dense reference "
                   "(full %.3e, sector %.3e, gate 1e-8)\n",
                   dev_full, dev_sector);
      return 1;
    }
    KpmOptions sto;
    sto.num_random = 16;
    KpmDos kpmr(h, sto);
    const Timing t = time_per_op([&] { sink += kpmr.compute(); }, min_s);
    std::printf("spectral_kpm_dos     n=%zu M=%zu exact_matvecs=%zu "
                "stochastic=%.3fms dev_full=%.2e dev_sector=%.2e\n",
                p.lx, kpm.moments().size(), matvecs, t.median * 1e3, dev_full,
                dev_sector);
    results.push_back(
        {"spectral_kpm_dos",
         {{"num_qubits", static_cast<double>(p.lx)},
          {"num_moments", static_cast<double>(kpm.moments().size())},
          {"exact_trace_matvecs", static_cast<double>(matvecs)},
          {"e_min", kpm.e_min()},
          {"e_max", kpm.e_max()},
          {"stochastic_samples", static_cast<double>(sto.num_random)},
          {"stochastic_seconds_per_op", t.median},
          {"min_stochastic_seconds_per_op", t.min},
          {"integrated_abs_dev_full", dev_full},
          {"sector_dim", static_cast<double>(sb.dim())},
          {"integrated_abs_dev_sector", dev_sector},
          {"gate_integrated_abs_dev", 1e-8}}});
    return 0;
  }});

  // -- spectral_thermal: sampled <H>_beta gated by exact thermodynamics ------
  // Across the beta sweep the estimate must sit within 3x its own reported
  // jackknife error bar of the exact eigenvalue average, and a repeated
  // call must be bit-identical (the fixed-seed reproducibility contract).
  sections.push_back({"spectral_thermal", [&] {
    HubbardParams p;  // spinless ring, n = 8 (dim 256)
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const EigenSystem es = eigh(h.to_matrix());

    ThermalOptions to;
    to.num_samples = 16;
    ThermalSampler sampler(h, to);
    const double betas[] = {0.5, 2.0, 8.0};
    double max_sigma_dev = 0.0;
    ThermalResult mid{};
    for (double beta : betas) {
      const ThermalResult r = sampler.energy(beta);
      const double ref = thermal_energy_ref(es.eigenvalues, beta);
      const double sigmas = std::abs(r.value - ref) / r.std_error;
      max_sigma_dev = std::max(max_sigma_dev, sigmas);
      if (beta == 2.0) mid = r;
      if (sigmas > 3.0) {
        std::fprintf(stderr,
                     "error: spectral_thermal <H>_beta off by %.2f sigma at "
                     "beta=%g (est %.6f +- %.6f, exact %.6f)\n",
                     sigmas, beta, r.value, r.std_error, ref);
        return 1;
      }
    }
    const ThermalResult again = sampler.energy(2.0);
    if (again.value != mid.value || again.std_error != mid.std_error) {
      std::fprintf(stderr,
                   "error: spectral_thermal repeated call not bit-identical "
                   "(%.17g vs %.17g)\n",
                   again.value, mid.value);
      return 1;
    }
    const Timing t = time_per_op([&] { sink += sampler.energy(2.0).samples; },
                                 min_s);
    std::printf("spectral_thermal     n=%zu samples=%zu beta_max=%g "
                "call=%.3fms max_dev=%.2f sigma E(2)=%.6f+-%.6f\n",
                p.lx, to.num_samples, betas[2], t.median * 1e3, max_sigma_dev,
                mid.value, mid.std_error);
    results.push_back(
        {"spectral_thermal",
         {{"num_qubits", static_cast<double>(p.lx)},
          {"num_samples", static_cast<double>(to.num_samples)},
          {"beta_max", betas[2]},
          {"seconds_per_call", t.median},
          {"min_seconds_per_call", t.min},
          {"energy_beta2", mid.value},
          {"std_error_beta2", mid.std_error},
          {"log_z_over_dim_beta2", mid.log_z_over_dim},
          {"matvecs_per_call", static_cast<double>(mid.matvecs)},
          {"max_sigma_dev", max_sigma_dev},
          {"gate_max_sigma_dev", 3.0},
          {"reproducible", 1.0}}});
    return 0;
  }});

  // -- telemetry_overhead: the instrumentation-cost gate ---------------------
  // The telemetry design promise is that the disabled path is a relaxed
  // atomic load plus a predicted branch at every site. This entry proves it
  // on the most instrumentation-dense hot loop in the tree — the fused
  // Strang quench step at full size — by timing the SAME step with
  // telemetry off, with metrics on, and with metrics + span tracing on,
  // gating the enabled-over-off ratios. min-of-repeats on both sides, so
  // the comparison uses the least-noise samples.
  sections.push_back({"telemetry_overhead", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const ScbSum h = hubbard_scb(hq);
    const TrotterEvolver ev(h);
    const double dt = 0.02;
    StateVector psi = StateVector::product(n, hubbard_cdw_occupation(hq));
    const auto step_once = [&] {
      ev.step(psi, dt, 2);
      sink += static_cast<std::size_t>(psi[0].real() < 2);
    };

    const bool metrics_was = telemetry::metrics_enabled();
    const bool tracing_was = telemetry::tracing_enabled();
    telemetry::set_tracing_enabled(false);
    telemetry::set_metrics_enabled(false);
    const Timing off_t = time_per_op(step_once, min_s);
    telemetry::set_metrics_enabled(true);
    const Timing met_t = time_per_op(step_once, min_s);
    telemetry::set_tracing_enabled(true);
    const Timing trc_t = time_per_op(step_once, min_s);
    telemetry::set_metrics_enabled(metrics_was);
    telemetry::set_tracing_enabled(tracing_was);

    const double metrics_over = std::max(0.0, met_t.min / off_t.min - 1.0);
    const double traced_over = std::max(0.0, trc_t.min / off_t.min - 1.0);
    // Quick runs use 0.05 s windows (CI smoke boxes): the ratios there are
    // noise-dominated, so the gates relax by an order of magnitude. The
    // full-size gates are the recorded contract.
    const double metrics_gate = quick ? 0.10 : 0.01;
    const double traced_gate = quick ? 0.25 : 0.05;
    if (metrics_over > metrics_gate || traced_over > traced_gate) {
      std::fprintf(stderr,
                   "error: telemetry_overhead gate failed (metrics %+.2f%% "
                   "gate %.0f%%, traced %+.2f%% gate %.0f%%; off %.3fms)\n",
                   metrics_over * 100, metrics_gate * 100, traced_over * 100,
                   traced_gate * 100, off_t.min * 1e3);
      return 1;
    }
    std::printf("telemetry_overhead   n=%zu off=%.3fms metrics=%.3fms "
                "traced=%.3fms over=%.2f%%/%.2f%% (gates %.0f%%/%.0f%%)\n",
                n, off_t.min * 1e3, met_t.min * 1e3, trc_t.min * 1e3,
                metrics_over * 100, traced_over * 100, metrics_gate * 100,
                traced_gate * 100);
    results.push_back(
        {"telemetry_overhead",
         {{"num_qubits", static_cast<double>(n)},
          {"threads", static_cast<double>(k_threads)},
          {"off_seconds_per_step", off_t.median},
          {"off_min_seconds_per_step", off_t.min},
          {"metrics_seconds_per_step", met_t.median},
          {"metrics_min_seconds_per_step", met_t.min},
          {"traced_seconds_per_step", trc_t.median},
          {"traced_min_seconds_per_step", trc_t.min},
          {"metrics_overhead_frac", metrics_over},
          {"traced_overhead_frac", traced_over},
          {"gate_metrics_overhead_frac", metrics_gate},
          {"gate_traced_overhead_frac", traced_gate}}});
    return 0;
  }});

  // -- serve_batch: the serving-layer gates ----------------------------------
  // Two promises of src/serve/, measured and gated in one entry. (1)
  // Observable batching: K = 16 coalesced expectation requests cost one
  // Krylov evolution plus 16 cheap diagonal sweeps, not 16 evolutions —
  // batched must beat sequential by >= 5x AND return bitwise-identical
  // values (the trajectory is the same object, so equality is exact). (2)
  // The artifact cache: re-submitting an identical ground-state job to a
  // live Scheduler must serve the compiled sector operator from cache
  // (artifact_hits > 0, zero kernel compiles, zero sector-table builds in
  // the warm telemetry delta) and reproduce the cold solve bit-for-bit.
  sections.push_back({"serve_batch", [&] {
    set_num_threads(k_threads);  // pin: identical under --only and full runs
    const HubbardParams hq = quench_lattice(quick);
    const std::size_t n = hubbard_num_modes(hq);
    const std::uint64_t occ = hubbard_cdw_occupation(hq);
    const SectorBasis basis = hubbard_sector_of(hq, occ);
    const SectorOperator hs(basis, hubbard_scb(hq));
    const SectorVector psi0 = SectorVector::config_state(basis, occ);
    const double dt = 0.02;  // the krylov_quench step size
    const std::size_t steps = quick ? 4 : 6;
    const double tol = 1e-10;

    // The serve menu under test: density + doublon on the first 8 sites.
    std::vector<serve::ObservableSpec> menu;
    for (std::uint32_t site = 0; site < 8; ++site) {
      menu.push_back({serve::ObservableKind::kDensity, site, 0});
      menu.push_back({serve::ObservableKind::kDoublon, site, 0});
    }
    std::vector<std::shared_ptr<const SectorOperator>> obs;
    obs.reserve(menu.size());
    for (const serve::ObservableSpec& o : menu)
      obs.push_back(std::make_shared<const SectorOperator>(
          basis, serve::build_observable(hq, o)));
    const std::size_t k_obs = obs.size();

    // Single-shot wall times (the idiom of the lanczos_* entries): the
    // workloads are deterministic multi-second evolutions, and the gate
    // margin (~Kx expected vs 5x required) dwarfs scheduler noise.
    const auto wall = [](const std::function<void()>& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };

    serve::BatchResult batched;
    const double batched_s = wall([&] {
      batched = serve::run_observable_batch(hs, psi0, dt, steps, obs, tol);
    });
    std::vector<serve::BatchResult> singles(k_obs);
    const double sequential_s = wall([&] {
      for (std::size_t i = 0; i < k_obs; ++i)
        singles[i] = serve::run_observable_batch(
            hs, psi0, dt, steps, std::span(&obs[i], 1), tol);
    });
    sink += batched.values.size();

    // Gate 1a: bitwise identity of every batched column against its
    // sequential run (values, plus the shared times/loschmidt trajectory).
    bool identical = batched.values.size() == steps * k_obs;
    for (std::size_t i = 0; identical && i < k_obs; ++i) {
      const serve::BatchResult& s = singles[i];
      identical = s.values.size() == steps &&
                  s.times.size() == batched.times.size() &&
                  s.loschmidt.size() == batched.loschmidt.size() &&
                  std::memcmp(s.times.data(), batched.times.data(),
                              steps * sizeof(double)) == 0 &&
                  std::memcmp(s.loschmidt.data(), batched.loschmidt.data(),
                              steps * sizeof(double)) == 0;
      for (std::size_t st = 0; identical && st < steps; ++st)
        identical = std::memcmp(&s.values[st],
                                &batched.values[st * k_obs + i],
                                sizeof(double)) == 0;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "error: serve_batch batched values are not bitwise "
                   "identical to the sequential runs\n");
      return 1;
    }
    // Gate 1b: the batching win itself.
    const double batch_speedup = sequential_s / batched_s;
    const double speedup_gate = 5.0;
    if (batch_speedup < speedup_gate) {
      std::fprintf(stderr,
                   "error: serve_batch speedup gate failed (%zu obs batched "
                   "%.3fs vs sequential %.3fs = %.2fx, gate %.1fx)\n",
                   k_obs, batched_s, sequential_s, batch_speedup,
                   speedup_gate);
      return 1;
    }

    // (2) Warm-cache re-submit on a live scheduler. Same spec twice on the
    // SAME Scheduler: the second run must find the compiled sector operator
    // in the artifact cache and reproduce the cold trajectory exactly.
    serve::JobSpec js;
    js.kind = serve::JobKind::kGroundState;
    js.lattice = hq;
    js.use_sector = true;
    js.n_up = static_cast<std::uint32_t>(n / 4);  // half filling per species
    js.n_down = static_cast<std::uint32_t>(n / 4);
    js.tol = tol;

    serve::Scheduler sched;  // in-process, no state dir
    const bool metrics_was = telemetry::metrics_enabled();
    telemetry::set_metrics_enabled(true);
    serve::JobResult cold, warm;
    const auto snap0 = telemetry::metrics_snapshot();
    const double cold_s = wall([&] {
      const std::uint64_t id = sched.submit(js);
      if (!sched.wait(id, 600.0)) return;
      cold = sched.fetch(id);
    });
    const auto snap1 = telemetry::metrics_snapshot();
    const double warm_s = wall([&] {
      const std::uint64_t id = sched.submit(js);
      if (!sched.wait(id, 600.0)) return;
      warm = sched.fetch(id);
    });
    const auto snap2 = telemetry::metrics_snapshot();
    telemetry::set_metrics_enabled(metrics_was);
    sched.stop(false);

    using telemetry::Counter;
    const auto cold_d = telemetry::metrics_delta(snap0, snap1);
    const auto warm_d = telemetry::metrics_delta(snap1, snap2);
    const std::uint64_t warm_hits = warm_d.counter(Counter::artifact_hits);
    const std::uint64_t warm_compiles =
        warm_d.counter(Counter::kernel_compiles);
    const std::uint64_t warm_tables =
        warm_d.counter(Counter::sector_table_builds);
    // Gate 2a: the warm pass is served from cache — hits recorded, nothing
    // rebuilt. (Sanity on the cold side: it must have actually built.)
    if (cold_d.counter(Counter::artifact_misses) == 0 || warm_hits == 0 ||
        warm_compiles != 0 || warm_tables != 0) {
      std::fprintf(stderr,
                   "error: serve_batch warm-cache gate failed (cold misses "
                   "%llu, warm hits %llu compiles %llu table builds %llu)\n",
                   static_cast<unsigned long long>(
                       cold_d.counter(Counter::artifact_misses)),
                   static_cast<unsigned long long>(warm_hits),
                   static_cast<unsigned long long>(warm_compiles),
                   static_cast<unsigned long long>(warm_tables));
      return 1;
    }
    // Gate 2b: warm solve bit-identical to cold — both are full fresh
    // solves of the same deterministic trajectory, so the entire history
    // must match, not just the converged values.
    const auto same = [](const std::vector<double>& a,
                         const std::vector<double>& b) {
      return a.size() == b.size() &&
             (a.empty() || std::memcmp(a.data(), b.data(),
                                       a.size() * sizeof(double)) == 0);
    };
    if (!cold.converged || !warm.converged ||
        !same(cold.eigenvalues, warm.eigenvalues) ||
        !same(cold.residuals, warm.residuals) ||
        !same(cold.residual_history, warm.residual_history) ||
        cold.matvecs != warm.matvecs || cold.iterations != warm.iterations) {
      std::fprintf(stderr,
                   "error: serve_batch warm solve is not bit-identical to "
                   "cold (E0 %.17g vs %.17g, matvecs %llu vs %llu)\n",
                   cold.eigenvalues.empty() ? 0.0 : cold.eigenvalues[0],
                   warm.eigenvalues.empty() ? 0.0 : warm.eigenvalues[0],
                   static_cast<unsigned long long>(cold.matvecs),
                   static_cast<unsigned long long>(warm.matvecs));
      return 1;
    }

    std::printf("serve_batch          n=%zu sector_dim=%zu K=%zu "
                "batched=%.3fs sequential=%.3fs %.2fx (gate %.1fx) "
                "warm hits=%llu cold=%.3fs warm=%.3fs\n",
                n, basis.dim(), k_obs, batched_s, sequential_s, batch_speedup,
                speedup_gate, static_cast<unsigned long long>(warm_hits),
                cold_s, warm_s);
    results.push_back(
        {"serve_batch",
         {{"num_qubits", static_cast<double>(n)},
          {"sector_dim", static_cast<double>(basis.dim())},
          {"observables", static_cast<double>(k_obs)},
          {"steps", static_cast<double>(steps)},
          {"dt", dt},
          {"krylov_tol", tol},
          {"batched_seconds", batched_s},
          {"sequential_seconds", sequential_s},
          {"batch_speedup", batch_speedup},
          {"gate_batch_speedup", speedup_gate},
          {"batch_matvecs", static_cast<double>(batched.matvecs)},
          {"cold_submit_seconds", cold_s},
          {"warm_submit_seconds", warm_s},
          {"warm_artifact_hits", static_cast<double>(warm_hits)},
          {"warm_kernel_compiles", static_cast<double>(warm_compiles)},
          {"warm_sector_table_builds", static_cast<double>(warm_tables)},
          {"ground_energy", cold.eigenvalues.empty() ? 0.0
                                                     : cold.eigenvalues[0]},
          {"solver_matvecs", static_cast<double>(cold.matvecs)}}});
    return 0;
  }});

  // -- filter validation + list / run ----------------------------------------
  // One match predicate for the validation loop, the --list preview and the
  // run loop, so a filter the validator accepts always selects the same
  // subset — and --list shows exactly what a run with the same --only
  // filters would execute.
  const auto matches = [](const char* name, const std::string& filter) {
    return std::string_view(name).find(filter) != std::string_view::npos;
  };
  for (const std::string& f : only) {
    bool any = false;
    for (const Section& s : sections) any = any || matches(s.name, f);
    if (!any) {
      std::fprintf(stderr, "%s: --only '%s' matches no bench entry; entries:\n",
                   argv[0], f.c_str());
      for (const Section& s : sections)
        std::fprintf(stderr, "  %s\n", s.name);
      return 2;
    }
  }
  const auto selected = [&](const char* name) {
    if (only.empty()) return true;
    for (const std::string& f : only)
      if (matches(name, f)) return true;
    return false;
  };
  if (list_only) {
    for (const Section& s : sections)
      if (selected(s.name)) std::printf("%s\n", s.name);
    return 0;
  }
  for (const Section& s : sections) {
    if (!selected(s.name)) continue;
    // Snapshot pair around the section: the delta becomes the entry's
    // nested "telemetry" JSON block. Sections can push several results
    // (bench_fermion); they all get the same section-level delta.
    const std::size_t first = results.size();
    const telemetry::MetricsSnapshot before = telemetry::metrics_snapshot();
    const int rc = s.run();
    if (rc != 0) return rc;
    const telemetry::MetricsSnapshot d =
        telemetry::metrics_delta(before, telemetry::metrics_snapshot());
    using telemetry::Counter;
    using telemetry::Hist;
    const double task = static_cast<double>(d.hist(Hist::pool_task_ns).sum);
    const double idle = static_cast<double>(d.hist(Hist::pool_idle_ns).sum);
    const std::vector<std::pair<std::string, double>> tele = {
        {"matvecs", static_cast<double>(d.counter(Counter::matvecs))},
        {"kernel_sweeps",
         static_cast<double>(d.counter(Counter::kernel_sweeps))},
        {"amplitudes_touched",
         static_cast<double>(d.counter(Counter::amplitudes_touched))},
        {"bytes_moved", static_cast<double>(d.counter(Counter::bytes_moved))},
        {"pool_dispatches",
         static_cast<double>(d.counter(Counter::pool_dispatches))},
        {"pool_utilization", task + idle > 0.0 ? task / (task + idle) : 0.0},
    };
    for (std::size_t i = first; i < results.size(); ++i)
      results[i].telemetry = tele;
  }

  if (!write_json(out_path, quick, results)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!trace_path.empty()) {
    const telemetry::TraceWriter tw;
    if (!tw.write_file(trace_path)) {
      std::fprintf(stderr, "error: cannot write trace %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("wrote trace %s (%zu events, %llu dropped)\n",
                trace_path.c_str(), telemetry::trace_events().size(),
                static_cast<unsigned long long>(
                    telemetry::trace_dropped_events()));
  }
  std::printf("wrote %s (sink=%zu)\n", out_path.c_str(), sink);
  return 0;
}
