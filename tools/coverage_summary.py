#!/usr/bin/env python3
"""Per-directory line-coverage summary from an lcov tracefile (stdlib only).

Reads the SF:/DA: records of an lcov .info file and prints, for each source
directory (relative to the repo root when possible), the covered/total line
counts and the percentage, plus a repo-wide total. This is the console
digest of the CI coverage leg — the full tracefile is uploaded as an
artifact for anyone who wants line-level detail.

Usage: coverage_summary.py <tracefile.info> [...]

Exit status is 0 whenever the tracefiles parse; coverage is reported, not
gated (thresholds would just get ratcheted to whatever the suite does
today — the value is the visible per-directory trend).
"""

import os
import sys
from collections import defaultdict


def parse_tracefile(path: str):
    """Yields (source_file, lines_hit, lines_total) per SF: record."""
    source = None
    hit = total = 0
    with open(path, encoding="utf-8", errors="replace") as f:
        for raw in f:
            line = raw.strip()
            if line.startswith("SF:"):
                source = line[3:]
                hit = total = 0
            elif line.startswith("DA:") and source is not None:
                total += 1
                # DA:<lineno>,<exec count>[,<checksum>]
                count = line[3:].split(",")[1]
                if count not in ("0", "-"):
                    hit += 1
            elif line == "end_of_record" and source is not None:
                yield source, hit, total
                source = None


def relative_dir(source: str, root: str) -> str:
    """Directory of `source` relative to the repo root when it is inside."""
    path = os.path.dirname(os.path.abspath(source))
    if path.startswith(root + os.sep):
        return os.path.relpath(path, root)
    return path


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    per_dir = defaultdict(lambda: [0, 0])  # dir -> [hit, total]
    files = 0
    for trace in argv[1:]:
        if not os.path.exists(trace):
            print(f"coverage_summary: no such tracefile: {trace}",
                  file=sys.stderr)
            return 2
        for source, hit, total in parse_tracefile(trace):
            entry = per_dir[relative_dir(source, root)]
            entry[0] += hit
            entry[1] += total
            files += 1

    if not per_dir:
        print("coverage_summary: no SF records found", file=sys.stderr)
        return 2

    width = max(len(d) for d in per_dir)
    print(f"{'directory':<{width}}  covered/total   line%")
    grand_hit = grand_total = 0
    for d in sorted(per_dir):
        hit, total = per_dir[d]
        grand_hit += hit
        grand_total += total
        pct = 100.0 * hit / total if total else 0.0
        print(f"{d:<{width}}  {hit:>7}/{total:<7} {pct:6.1f}%")
    pct = 100.0 * grand_hit / grand_total if grand_total else 0.0
    print(f"{'TOTAL':<{width}}  {grand_hit:>7}/{grand_total:<7} {pct:6.1f}%  "
          f"({files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
