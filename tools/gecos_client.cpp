// gecos_client: command-line client for a running gecosd daemon.
//
// One subcommand per protocol request, speaking GECOSRV1 over the daemon's
// unix socket via serve::Client:
//
//   gecos_client [--socket PATH] submit [spec flags...]   -> prints job id
//   gecos_client [--socket PATH] status ID                -> one status line
//   gecos_client [--socket PATH] wait ID [--timeout S]    -> poll to terminal
//   gecos_client [--socket PATH] fetch ID                 -> result values
//   gecos_client [--socket PATH] cancel ID
//   gecos_client [--socket PATH] stats
//   gecos_client [--socket PATH] shutdown
//
// Spec flags for submit (defaults in serve::JobSpec):
//   --kind ground|quench|expectation|spectral
//   --lx N --ly N --t V --u V --mu V [--open-x] [--spinless]
//   --n-up N --n-down N           ground-state sector counts
//   --k N --tol V --max-matvecs N --seed N --checkpoint-interval N
//   --dt V --steps N --occupation BITS
//   --obs density:A | doublon:A | corr:A,B | total   (repeatable)
//   --eta V --moments N --w-min V --w-max V --w-points N
//   --priority N
//
// Daemon-side failures arrive as gecos::Error with the machine-readable
// kind name; this tool prints "error (<kind>): <message>" and exits 1.
// Usage errors exit 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.hpp"

using gecos::serve::JobKind;
using gecos::serve::JobSpec;
using gecos::serve::JobState;
using gecos::serve::JobStatus;
using gecos::serve::ObservableKind;
using gecos::serve::ObservableSpec;

namespace {

const char* state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

void print_status(const JobStatus& st) {
  std::printf("job %llu: %s iter=%llu matvecs=%llu metric=%.3e elapsed=%.2fs",
              static_cast<unsigned long long>(st.id), state_name(st.state),
              static_cast<unsigned long long>(st.iteration),
              static_cast<unsigned long long>(st.matvecs), st.metric,
              st.elapsed_s);
  if (st.state == JobState::kFailed)
    std::printf(" error=%s (%s)", st.error_kind.c_str(),
                st.error_message.c_str());
  std::printf("\n");
}

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] "
               "submit|status|wait|fetch|cancel|stats|shutdown [args...]\n"
               "(see the header of tools/gecos_client.cpp for spec flags)\n",
               argv0);
  return code;
}

// Parses "kind:site" / "corr:a,b" / "total" into an ObservableSpec.
bool parse_observable(const std::string& text, ObservableSpec& out) {
  if (text == "total") {
    out = {ObservableKind::kTotalNumber, 0, 0};
    return true;
  }
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  const std::string kind = text.substr(0, colon);
  const std::string rest = text.substr(colon + 1);
  if (kind == "density" || kind == "doublon") {
    out.kind = kind == "density" ? ObservableKind::kDensity
                                 : ObservableKind::kDoublon;
    out.site_a = static_cast<std::uint32_t>(std::atoi(rest.c_str()));
    out.site_b = 0;
    return !rest.empty();
  }
  if (kind == "corr") {
    const auto comma = rest.find(',');
    if (comma == std::string::npos) return false;
    out.kind = ObservableKind::kDensityCorr;
    out.site_a =
        static_cast<std::uint32_t>(std::atoi(rest.substr(0, comma).c_str()));
    out.site_b =
        static_cast<std::uint32_t>(std::atoi(rest.substr(comma + 1).c_str()));
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "gecosd.sock";
  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
    socket_path = argv[i + 1];
    i += 2;
  }
  if (i >= argc) return usage(argv[0], 2);
  const std::string cmd = argv[i++];

  try {
    gecos::serve::Client client(socket_path);

    if (cmd == "submit") {
      JobSpec spec;
      for (; i < argc; ++i) {
        const auto need_value = [&](const char* flag) -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s requires an argument\n", argv[0],
                         flag);
            std::exit(2);
          }
          return argv[++i];
        };
        const std::string flag = argv[i];
        if (flag == "--kind") {
          const std::string k = need_value("--kind");
          if (k == "ground") spec.kind = JobKind::kGroundState;
          else if (k == "quench") spec.kind = JobKind::kQuench;
          else if (k == "expectation") spec.kind = JobKind::kExpectation;
          else if (k == "spectral") spec.kind = JobKind::kSpectral;
          else {
            std::fprintf(stderr, "%s: unknown job kind '%s'\n", argv[0],
                         k.c_str());
            return 2;
          }
        } else if (flag == "--lx") {
          spec.lattice.lx = std::atoi(need_value("--lx"));
        } else if (flag == "--ly") {
          spec.lattice.ly = std::atoi(need_value("--ly"));
        } else if (flag == "--t") {
          spec.lattice.t = std::atof(need_value("--t"));
        } else if (flag == "--u") {
          spec.lattice.u = std::atof(need_value("--u"));
        } else if (flag == "--mu") {
          spec.lattice.mu = std::atof(need_value("--mu"));
        } else if (flag == "--open-x") {
          spec.lattice.periodic_x = false;
        } else if (flag == "--spinless") {
          spec.lattice.spinful = false;
        } else if (flag == "--n-up") {
          spec.n_up = static_cast<std::uint32_t>(std::atoi(need_value("--n-up")));
        } else if (flag == "--n-down") {
          spec.n_down =
              static_cast<std::uint32_t>(std::atoi(need_value("--n-down")));
        } else if (flag == "--k") {
          spec.num_eigenpairs =
              static_cast<std::uint32_t>(std::atoi(need_value("--k")));
        } else if (flag == "--tol") {
          spec.tol = std::atof(need_value("--tol"));
        } else if (flag == "--max-matvecs") {
          spec.max_matvecs = std::strtoull(need_value("--max-matvecs"),
                                           nullptr, 10);
        } else if (flag == "--seed") {
          spec.seed = std::strtoull(need_value("--seed"), nullptr, 10);
        } else if (flag == "--checkpoint-interval") {
          spec.checkpoint_interval =
              std::strtoull(need_value("--checkpoint-interval"), nullptr, 10);
        } else if (flag == "--dt") {
          spec.dt = std::atof(need_value("--dt"));
        } else if (flag == "--steps") {
          spec.steps = std::strtoull(need_value("--steps"), nullptr, 10);
        } else if (flag == "--occupation") {
          spec.initial_occupation =
              std::strtoull(need_value("--occupation"), nullptr, 0);
        } else if (flag == "--obs") {
          ObservableSpec o;
          const char* text = need_value("--obs");
          if (!parse_observable(text, o)) {
            std::fprintf(stderr, "%s: bad observable '%s'\n", argv[0], text);
            return 2;
          }
          spec.observables.push_back(o);
        } else if (flag == "--eta") {
          spec.eta = std::atof(need_value("--eta"));
        } else if (flag == "--moments") {
          spec.max_moments =
              std::strtoull(need_value("--moments"), nullptr, 10);
        } else if (flag == "--w-min") {
          spec.w_min = std::atof(need_value("--w-min"));
        } else if (flag == "--w-max") {
          spec.w_max = std::atof(need_value("--w-max"));
        } else if (flag == "--w-points") {
          spec.w_points =
              std::strtoull(need_value("--w-points"), nullptr, 10);
        } else if (flag == "--priority") {
          spec.priority =
              static_cast<std::uint32_t>(std::atoi(need_value("--priority")));
        } else {
          std::fprintf(stderr, "%s: unknown submit flag '%s'\n", argv[0],
                       flag.c_str());
          return 2;
        }
      }
      const std::uint64_t id = client.submit(spec);
      std::printf("%llu\n", static_cast<unsigned long long>(id));
      return 0;
    }

    if (cmd == "status" || cmd == "wait" || cmd == "fetch" ||
        cmd == "cancel") {
      if (i >= argc) {
        std::fprintf(stderr, "%s: %s requires a job id\n", argv[0],
                     cmd.c_str());
        return 2;
      }
      const std::uint64_t id = std::strtoull(argv[i++], nullptr, 10);
      if (cmd == "status") {
        print_status(client.status(id));
        return 0;
      }
      if (cmd == "wait") {
        double timeout_s = 3600.0;
        if (i + 1 < argc && std::strcmp(argv[i], "--timeout") == 0)
          timeout_s = std::atof(argv[i + 1]);
        const JobStatus st = client.wait(id, timeout_s);
        print_status(st);
        return st.state == JobState::kDone ? 0 : 1;
      }
      if (cmd == "cancel") {
        std::printf("%s\n",
                    client.cancel(id) ? "cancelled" : "already terminal");
        return 0;
      }
      // fetch
      const gecos::serve::JobResult res = client.fetch(id);
      if (!res.eigenvalues.empty()) {
        std::printf("eigenvalues:");
        for (const double e : res.eigenvalues) std::printf(" %.12f", e);
        std::printf("\nconverged=%d matvecs=%llu resumed=%d\n",
                    res.converged ? 1 : 0,
                    static_cast<unsigned long long>(res.matvecs),
                    res.resumed ? 1 : 0);
      }
      for (std::size_t s = 0; s < res.times.size(); ++s) {
        std::printf("t=%.6f", res.times[s]);
        if (s < res.loschmidt.size())
          std::printf(" loschmidt=%.12f", res.loschmidt[s]);
        if (!res.times.empty() && !res.values.empty()) {
          const std::size_t per_step = res.values.size() / res.times.size();
          for (std::size_t c = 0; c < per_step; ++c)
            std::printf(" v%zu=%.12f", c, res.values[s * per_step + c]);
        }
        std::printf("\n");
      }
      for (std::size_t k = 0; k < res.omega.size(); ++k)
        std::printf("w=%.6f A=%.12e\n", res.omega[k], res.spectral[k]);
      return 0;
    }

    if (cmd == "stats") {
      const gecos::serve::ServerStats st = client.stats();
      std::printf(
          "jobs: submitted=%llu completed=%llu failed=%llu cancelled=%llu "
          "queued=%llu running=%llu\n"
          "batching: passes=%llu jobs=%llu\n"
          "cache: hits=%llu misses=%llu evictions=%llu entries=%llu "
          "bytes=%llu\n",
          static_cast<unsigned long long>(st.submitted),
          static_cast<unsigned long long>(st.completed),
          static_cast<unsigned long long>(st.failed),
          static_cast<unsigned long long>(st.cancelled),
          static_cast<unsigned long long>(st.queue_depth),
          static_cast<unsigned long long>(st.running),
          static_cast<unsigned long long>(st.batch_passes),
          static_cast<unsigned long long>(st.batched_jobs),
          static_cast<unsigned long long>(st.cache_hits),
          static_cast<unsigned long long>(st.cache_misses),
          static_cast<unsigned long long>(st.cache_evictions),
          static_cast<unsigned long long>(st.cache_entries),
          static_cast<unsigned long long>(st.cache_bytes));
      return 0;
    }

    if (cmd == "shutdown") {
      client.shutdown();
      std::printf("daemon shutting down\n");
      return 0;
    }

    std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0], cmd.c_str());
    return usage(argv[0], 2);
  } catch (const gecos::Error& e) {
    std::fprintf(stderr, "error (%s): %s\n",
                 gecos::error_kind_name(e.kind()), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
