#!/usr/bin/env python3
"""Validate a gecos trace-event JSON file and digest its top spans (stdlib only).

Reads the chrome://tracing / Perfetto trace-event JSON that bench_main
--trace (or GECOS_TRACE=<path>) writes, validates its structure — every
"X" complete event needs a name, pid/tid, and numeric non-negative ts/dur;
"M" metadata events are allowed through — and prints a digest of the top
spans by SELF time (wall time minus the time covered by nested child
spans on the same thread, reconstructed from the ts/dur intervals).

CI runs this over the traced sector_quench bench artifact: a malformed
trace fails the job here rather than silently failing to load in the
Perfetto UI later.

Usage: trace_report.py <trace.json> [--top N]

Exit status: 0 when the trace validates (the digest is informational),
1 when the file is structurally invalid, 2 on usage errors.
"""

import json
import sys
from collections import defaultdict


def fail(msg: str) -> int:
    print(f"trace_report: {msg}", file=sys.stderr)
    return 1


def validate(trace) -> list:
    """Returns the list of "X" events, raising ValueError on bad structure."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("top level must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be an array")
    spans = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph == "M":  # process_name / thread_name metadata
            continue
        if ph != "X":
            raise ValueError(f"traceEvents[{i}]: unexpected phase {ph!r} "
                             "(only 'X' complete events and 'M' metadata)")
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}]: missing '{key}'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise ValueError(f"traceEvents[{i}]: 'name' must be a non-empty "
                             "string")
        for key in ("ts", "dur"):
            v = ev[key]
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                raise ValueError(f"traceEvents[{i}]: '{key}' must be a "
                                 f"non-negative number, got {v!r}")
        spans.append(ev)
    return spans


def self_times(spans):
    """Per-name (count, total_us, self_us) via a per-thread interval stack.

    Events are sorted by (ts, -dur) per thread — a parent span strictly
    contains its children, so in that order a child always follows its
    parent while the parent is still on the stack, and each child's
    duration is subtracted from its innermost enclosing span's self time.
    """
    stats = defaultdict(lambda: [0, 0.0, 0.0])  # name -> [count, total, self]
    by_thread = defaultdict(list)
    for ev in spans:
        by_thread[(ev["pid"], ev["tid"])].append(ev)
    for thread_spans in by_thread.values():
        thread_spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, name) of open enclosing spans
        for ev in thread_spans:
            ts, dur = ev["ts"], ev["dur"]
            while stack and stack[-1][0] <= ts:
                stack.pop()
            stats[ev["name"]][0] += 1
            stats[ev["name"]][1] += dur
            stats[ev["name"]][2] += dur
            if stack:  # the innermost open span loses this child's time
                stats[stack[-1][1]][2] -= dur
            stack.append((ts + dur, ev["name"]))
    return stats


def main(argv: list) -> int:
    args = []
    top = 15
    i = 1
    while i < len(argv):
        if argv[i] == "--top":
            if i + 1 >= len(argv):
                print("trace_report: --top requires a count", file=sys.stderr)
                return 2
            try:
                top = int(argv[i + 1])
            except ValueError:
                print(f"trace_report: --top needs an integer, got "
                      f"{argv[i + 1]!r}", file=sys.stderr)
                return 2
            i += 2
        elif argv[i].startswith("--"):
            print(f"trace_report: unknown flag {argv[i]}", file=sys.stderr)
            return 2
        else:
            args.append(argv[i])
            i += 1
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except OSError as e:
        return fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{path} is not valid JSON: {e}")

    try:
        spans = validate(trace)
    except ValueError as e:
        return fail(f"{path}: {e}")

    threads = len({(e["pid"], e["tid"]) for e in spans})
    total_us = sum(e["dur"] for e in spans)
    print(f"{path}: {len(spans)} spans across {threads} thread(s), "
          f"{total_us / 1e6:.3f} s total span time")
    stats = self_times(spans)
    ranked = sorted(stats.items(), key=lambda kv: kv[1][2], reverse=True)
    if ranked:
        print(f"top {min(top, len(ranked))} spans by self time:")
        print(f"  {'name':<32} {'count':>8} {'total ms':>12} {'self ms':>12}")
        for name, (count, total, self_us) in ranked[:top]:
            print(f"  {name:<32} {count:>8} {total / 1e3:>12.3f} "
                  f"{self_us / 1e3:>12.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
