// gecosd: the gecos simulation daemon.
//
// Listens on a unix-domain socket, accepts ground-state / quench /
// expectation / spectral jobs over the GECOSRV1 protocol and runs them on
// one Scheduler executor: priority queue, observable batching, the
// cross-request artifact cache, and durable job journals in --state-dir so
// a killed daemon restarts with in-flight jobs resumed from their solver
// checkpoints (bit-identically, for a fixed thread count — the property
// tools/serve_smoke.cpp pins in CI). Submit and inspect jobs with
// tools/gecos_client.cpp or any serve::Client.
//
// Flags: --socket PATH    unix socket to listen on (default gecosd.sock;
//                         AF_UNIX caps the path near 107 bytes, so prefer
//                         short relative paths)
//        --state-dir DIR  job journals + solver checkpoints (default
//                         gecosd-state; empty string disables durability)
//        --cache-mb N     artifact-cache idle budget in MiB (default 512)
//        --threads K      worker threads for the solver kernels
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--state-dir DIR] [--cache-mb N] "
               "[--threads K]\n",
               argv0);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "gecosd.sock";
  std::string state_dir = "gecosd-state";
  std::size_t cache_mb = 512;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires an argument\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = need_value("--socket");
    } else if (std::strcmp(argv[i], "--state-dir") == 0) {
      state_dir = need_value("--state-dir");
    } else if (std::strcmp(argv[i], "--cache-mb") == 0) {
      const char* v = need_value("--cache-mb");
      char* end = nullptr;
      const long mb = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || mb < 0) {
        std::fprintf(stderr, "%s: --cache-mb needs a non-negative count\n",
                     argv[0]);
        return 2;
      }
      cache_mb = static_cast<std::size_t>(mb);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = need_value("--threads");
      const int k = std::atoi(v);
      if (k < 1) {
        std::fprintf(stderr, "%s: --threads needs a positive count\n",
                     argv[0]);
        return 2;
      }
      gecos::set_num_threads(k);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      return usage(argv[0], 2);
    }
  }
  try {
    gecos::serve::SchedulerOptions so;
    so.state_dir = state_dir;
    so.cache_bytes = cache_mb << 20;
    gecos::serve::Scheduler scheduler(so);
    gecos::serve::Server server(scheduler, socket_path);
    std::fprintf(stderr, "gecosd: listening on %s (state dir %s)\n",
                 socket_path.c_str(),
                 state_dir.empty() ? "<none>" : state_dir.c_str());
    server.serve();
    // Clean exit: finish (or abandon-and-journal) the running job, leave
    // queued jobs journaled for the next daemon.
    scheduler.stop(/*abandon_running=*/true);
    std::fprintf(stderr, "gecosd: shutdown complete\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gecosd: fatal: %s\n", e.what());
    return 1;
  }
}
