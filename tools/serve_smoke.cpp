// Client/server smoke: daemon kill-and-resume, end to end over the socket.
//
// The serving layer's headline durability claim is that a SIGKILL'd daemon
// loses no work: journaled jobs re-enqueue on restart and a mid-flight
// ground-state solve resumes from its solver checkpoint bit-identically
// (for a fixed thread count). This harness proves it with a real daemon
// process and a real SIGKILL:
//
//   1. reference: an in-process Scheduler solves the job uninterrupted
//   2. fork+exec gecosd, submit the same spec over the socket
//   3. poll for the solver checkpoint file, then SIGKILL the daemon
//   4. restart gecosd on the same state dir, poll the SAME job id to done
//   5. assert the resumed eigenvalues/matvecs/iterations are bitwise equal
//      to the reference, then shut the daemon down cleanly
//
// Like tools/resume_driver.cpp, a child that wins the race (solve finishes
// before the first checkpoint lands) degrades the run to a
// journal-resubmission check — still asserted bitwise — rather than a
// failure, since the kill timing is scheduling-dependent.
//
// Flags: --gecosd PATH  daemon binary (default ./gecosd)
//        --dir DIR      scratch directory (default serve_smoke_state)
//        --socket PATH  daemon socket (default serve_smoke.sock; short
//                       relative paths dodge the AF_UNIX length cap)
//        --threads K    worker threads, fixed across all runs (default 2)
// Exit 0 on PASS, 1 on FAIL, 2 on usage/setup errors.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/checkpoint.hpp"
#include "serve/client.hpp"
#include "serve/scheduler.hpp"
#include "util/parallel.hpp"

using namespace gecos;
using namespace gecos::serve;

namespace {

// The bench quench lattice (--quick size): 4x2 spinful Hubbard, n = 16,
// half-filling sector dim C(8,4)^2 = 4900 — seconds to solve, hundreds of
// matvecs, so checkpoints land mid-flight.
JobSpec smoke_spec() {
  JobSpec spec;
  spec.kind = JobKind::kGroundState;
  spec.lattice.lx = 4;
  spec.lattice.ly = 2;
  spec.lattice.t = 1.0;
  spec.lattice.u = 4.0;
  spec.lattice.mu = 0.5;
  spec.lattice.periodic_x = true;
  spec.lattice.spinful = true;
  spec.use_sector = true;
  spec.n_up = 4;
  spec.n_down = 4;
  spec.checkpoint_interval = 25;
  return spec;
}

// Mirrors Scheduler::checkpoint_path so the harness can watch for the
// solver checkpoint landing.
std::string ck_path(const std::string& state_dir, const JobSpec& spec) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(job_key(spec)));
  return state_dir + "/ck_" + hex + ".ckpt";
}

pid_t spawn_daemon(const std::string& binary, const std::string& socket,
                   const std::string& state_dir, int threads) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return -1;
  }
  if (pid == 0) {
    const std::string threads_s = std::to_string(threads);
    std::vector<char*> argv;
    const char* args[] = {binary.c_str(),    "--socket",
                          socket.c_str(),    "--state-dir",
                          state_dir.c_str(), "--threads",
                          threads_s.c_str()};
    for (const char* a : args) argv.push_back(const_cast<char*>(a));
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::perror("execv gecosd");
    ::_exit(127);
  }
  return pid;
}

// Connects with retries while the daemon boots.
std::unique_ptr<Client> connect_daemon(const std::string& socket,
                                       double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    try {
      return std::make_unique<Client>(socket);
    } catch (const Error&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

int fail(const char* what) {
  std::fprintf(stderr, "serve_smoke: FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string gecosd = "./gecosd";
  std::string dir = "serve_smoke_state";
  std::string socket = "serve_smoke.sock";
  int threads = 2;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_smoke: %s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--gecosd") == 0) gecosd = need_value("--gecosd");
    else if (std::strcmp(argv[i], "--dir") == 0) dir = need_value("--dir");
    else if (std::strcmp(argv[i], "--socket") == 0)
      socket = need_value("--socket");
    else if (std::strcmp(argv[i], "--threads") == 0)
      threads = std::atoi(need_value("--threads"));
    else {
      std::fprintf(stderr, "serve_smoke: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  set_num_threads(threads);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  const std::string daemon_dir = dir + "/daemon";
  const JobSpec spec = smoke_spec();

  try {
    // 1. Uninterrupted in-process reference.
    JobResult ref;
    {
      SchedulerOptions so;
      so.state_dir = dir + "/ref";
      Scheduler sched(so);
      const std::uint64_t id = sched.submit(spec);
      if (!sched.wait(id, 600.0)) return fail("reference solve timed out");
      ref = sched.fetch(id);
      sched.stop(false);
    }
    std::fprintf(stderr,
                 "serve_smoke: reference E0=%.12f matvecs=%llu iters=%llu\n",
                 ref.eigenvalues.at(0),
                 static_cast<unsigned long long>(ref.matvecs),
                 static_cast<unsigned long long>(ref.iterations));

    // 2. Daemon run #1: submit over the socket, kill mid-solve.
    const pid_t pid1 = spawn_daemon(gecosd, socket, daemon_dir, threads);
    if (pid1 < 0) return 2;
    std::uint64_t job_id = 0;
    {
      const auto client = connect_daemon(socket, 20.0);
      job_id = client->submit(spec);
    }
    // 3. Wait for the first solver checkpoint, then SIGKILL. If the solve
    // beats the watcher, the kill still exercises journal re-submission.
    const std::string ck = ck_path(daemon_dir, spec);
    bool saw_checkpoint = false;
    for (int poll = 0; poll < 3000; ++poll) {  // <= 60 s
      if (checkpoint_exists(ck)) {
        saw_checkpoint = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(pid1, SIGKILL);
    int status = 0;
    ::waitpid(pid1, &status, 0);
    std::fprintf(stderr, "serve_smoke: daemon killed (%s checkpoint)\n",
                 saw_checkpoint ? "after" : "BEFORE first");

    // 4. Daemon run #2 on the same state dir: the journaled job re-enqueues
    // under its original id and resumes from the checkpoint.
    const pid_t pid2 = spawn_daemon(gecosd, socket, daemon_dir, threads);
    if (pid2 < 0) return 2;
    JobResult resumed;
    bool clean_shutdown = false;
    {
      const auto client = connect_daemon(socket, 20.0);
      const JobStatus st = client->wait(job_id, 600.0);
      if (st.state != JobState::kDone) {
        std::fprintf(stderr, "serve_smoke: job ended %u (%s: %s)\n",
                     static_cast<unsigned>(st.state), st.error_kind.c_str(),
                     st.error_message.c_str());
        ::kill(pid2, SIGKILL);
        ::waitpid(pid2, &status, 0);
        return fail("resumed job did not reach done");
      }
      resumed = client->fetch(job_id);
      const ServerStats stats = client->stats();
      std::fprintf(stderr,
                   "serve_smoke: resumed E0=%.12f matvecs=%llu resumed=%d "
                   "(daemon completed=%llu)\n",
                   resumed.eigenvalues.at(0),
                   static_cast<unsigned long long>(resumed.matvecs),
                   resumed.resumed ? 1 : 0,
                   static_cast<unsigned long long>(stats.completed));
      client->shutdown();
      clean_shutdown = true;
    }
    ::waitpid(pid2, &status, 0);
    if (!clean_shutdown || !WIFEXITED(status) || WEXITSTATUS(status) != 0)
      return fail("daemon did not exit cleanly after shutdown");

    // 5. The acceptance assertions: bit-identical solve across the kill.
    if (!bitwise_equal(resumed.eigenvalues, ref.eigenvalues))
      return fail("eigenvalues differ from the uninterrupted reference");
    if (!bitwise_equal(resumed.residuals, ref.residuals))
      return fail("residuals differ from the uninterrupted reference");
    if (resumed.matvecs != ref.matvecs)
      return fail("matvec count differs from the uninterrupted reference");
    if (resumed.iterations != ref.iterations)
      return fail("iteration count differs from the reference");
    if (!resumed.converged) return fail("resumed solve did not converge");
    if (saw_checkpoint && !resumed.resumed)
      return fail("checkpoint existed but the job did not resume from it");

    std::fprintf(stderr, "serve_smoke: PASS%s\n",
                 saw_checkpoint ? "" : " (child won the race; "
                                       "journal-resubmission path)");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_smoke: FAIL: %s\n", e.what());
    return 1;
  }
}
