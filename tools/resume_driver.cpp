// Kill-and-resume driver for the checkpoint/restore subsystem.
//
// Runs the bench quench lattice (2D spinful Hubbard, n = 16 --quick / 20
// full) through the checkpointing Lanczos ground-state solve and proves the
// crash-recovery story end to end, with a real SIGKILL instead of a
// simulated interrupt:
//
//   resume_driver run      solve to convergence, writing checkpoints
//   resume_driver resume   continue from an existing checkpoint file
//   resume_driver selftest fork this binary in `run` mode, SIGKILL it as
//                          soon as the first checkpoint appears, resume
//                          in-process and assert the recovered E0 matches
//                          the uninterrupted reference to --tol
//
// The full-size reference is the recorded n = 20 ground-state energy
// -13.8785798502 (see src/bench/bench_main.cpp); --quick computes its own
// reference with an uninterrupted solve first. CI runs
// `resume_driver selftest --quick` as the kill-and-resume smoke step.
//
// Flags: --checkpoint PATH  checkpoint file (default resume_driver.ckpt)
//        --interval N       matvecs between checkpoint writes (default 25)
//        --quick            n = 16 lattice + self-computed reference
//        --threads K        worker threads (default: library default)
//        --expected E       override the reference energy
//        --tol T            |E0_resumed - reference| bound (default 1e-10)
//        --progress         throttled solver progress (iteration, residual,
//                           matvecs, ETA) on stderr during every solve
#include <sys/stat.h>
#include <sys/wait.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "fermion/hubbard.hpp"
#include "io/checkpoint.hpp"
#include "ops/scb_sum.hpp"
#include "solver/lanczos.hpp"
#include "telemetry/progress.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

using namespace gecos;

namespace {

constexpr double kFullE0N20 = -13.8785798502;  // recorded n = 20 reference

struct Args {
  std::string mode;
  std::string checkpoint = "resume_driver.ckpt";
  std::size_t interval = 25;
  bool quick = false;
  int threads = 0;
  double expected = std::nan("");
  double tol = 1e-10;
  bool progress = false;
};

/// The bench quench lattice (src/bench/bench_main.cpp quench_lattice):
/// 2D spinful Hubbard, n = 16 quick / 20 full — the selftest assertion
/// value kFullE0N20 belongs to exactly this Hamiltonian.
HubbardParams lattice(bool quick) {
  HubbardParams hq;
  hq.lx = quick ? 4 : 5;
  hq.ly = 2;
  hq.t = 1.0;
  hq.u = 4.0;
  hq.mu = 0.5;
  hq.periodic_x = true;
  hq.spinful = true;
  return hq;
}

/// The bench lanczos_ground_state options (k = 2, tol = 1e-8) plus the
/// checkpoint wiring from the command line.
LanczosOptions options(const Args& a) {
  LanczosOptions lo;
  lo.k = 2;
  lo.tol = 1e-8;
  lo.checkpoint_path = a.checkpoint;
  lo.checkpoint_interval = a.interval;
  if (a.progress) {
    lo.progress = telemetry::stderr_progress(a.mode.c_str());
    lo.progress_interval = 10;
  }
  return lo;
}

bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) return false;
  a.mode = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string f = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (f == "--quick") {
      a.quick = true;
    } else if (f == "--progress") {
      a.progress = true;
    } else if (f == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      a.checkpoint = v;
    } else if (f == "--interval") {
      const char* v = next();
      if (!v) return false;
      a.interval = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (f == "--threads") {
      const char* v = next();
      if (!v) return false;
      a.threads = std::atoi(v);
    } else if (f == "--expected") {
      const char* v = next();
      if (!v) return false;
      a.expected = std::strtod(v, nullptr);
    } else if (f == "--tol") {
      const char* v = next();
      if (!v) return false;
      a.tol = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr, "resume_driver: unknown flag %s\n", f.c_str());
      return false;
    }
  }
  return a.mode == "run" || a.mode == "resume" || a.mode == "selftest";
}

int do_run(const Args& a) {
  const ScbSum h = hubbard_scb(lattice(a.quick));
  Lanczos solver(h, options(a));
  const LanczosResult& r = solver.solve();
  std::printf("run: E0=%.12f matvecs=%zu checkpoints=%zu converged=%d\n",
              r.eigenvalues[0], r.matvecs, r.checkpoints_written,
              r.converged ? 1 : 0);
  return r.converged ? 0 : 1;
}

int do_resume(const Args& a) {
  const ScbSum h = hubbard_scb(lattice(a.quick));
  Lanczos solver(h, options(a));
  const LanczosResult& r = solver.resume(a.checkpoint);
  std::printf("resume: E0=%.12f matvecs=%zu saved=%zu converged=%d\n",
              r.eigenvalues[0], r.matvecs, r.resumed_matvecs,
              r.converged ? 1 : 0);
  if (!r.converged) return 1;
  if (!std::isnan(a.expected)) {
    const double diff = std::abs(r.eigenvalues[0] - a.expected);
    std::printf("resume: |E0 - expected| = %.3e (tol %.3e)\n", diff, a.tol);
    if (!(diff <= a.tol)) return 1;
  }
  return 0;
}

/// Blocks until `path` exists (checkpoint writes are atomic renames, so
/// existence implies a complete file) or the deadline passes.
bool wait_for_file(const std::string& path, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  struct stat st;
  while (::stat(path.c_str(), &st) != 0) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

int do_selftest(const Args& a, const char* self) {
  remove_checkpoint(a.checkpoint);

  // Reference energy of the uninterrupted run: the recorded value at full
  // size, a fresh in-process solve at --quick size.
  double expected = a.expected;
  if (std::isnan(expected)) {
    if (a.quick) {
      const ScbSum h = hubbard_scb(lattice(true));
      Args plain = a;
      plain.checkpoint.clear();  // reference run writes nothing
      LanczosOptions lo = options(plain);
      lo.checkpoint_interval = 0;
      Lanczos solver(h, lo);
      expected = solver.solve().eigenvalues[0];
      std::printf("selftest: quick reference E0=%.12f (matvecs=%zu)\n",
                  expected, solver.result().matvecs);
    } else {
      expected = kFullE0N20;
    }
  }

  // Victim process: this same binary in `run` mode. fork + immediate exec
  // is safe even with the parent's worker threads already running.
  std::vector<std::string> cargs = {self,
                                    "run",
                                    "--checkpoint",
                                    a.checkpoint,
                                    "--interval",
                                    std::to_string(a.interval)};
  if (a.quick) cargs.push_back("--quick");
  if (a.threads > 0) {
    cargs.push_back("--threads");
    cargs.push_back(std::to_string(a.threads));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("resume_driver: fork");
    return 1;
  }
  if (pid == 0) {
    std::vector<char*> cv;
    cv.reserve(cargs.size() + 1);
    for (std::string& s : cargs) cv.push_back(s.data());
    cv.push_back(nullptr);
    ::execv("/proc/self/exe", cv.data());
    std::perror("resume_driver: execv");
    ::_exit(127);
  }

  // SIGKILL the victim the moment its first checkpoint lands: no atexit
  // handlers, no flushing — the hard-crash case the format is built for.
  if (!wait_for_file(a.checkpoint, 600.0)) {
    std::fprintf(stderr, "selftest: no checkpoint appeared, killing child\n");
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return 1;
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    std::printf("selftest: child killed mid-run (SIGKILL)\n");
  } else {
    // The child can legitimately win the race and finish; the resume below
    // still exercises recovery from its last checkpoint.
    std::printf("selftest: child exited before the kill landed (status %d)\n",
                status);
  }

  const ScbSum h = hubbard_scb(lattice(a.quick));
  Lanczos solver(h, options(a));
  const LanczosResult& r = solver.resume(a.checkpoint);
  const double diff = std::abs(r.eigenvalues[0] - expected);
  std::printf(
      "selftest: resumed E0=%.12f |diff|=%.3e matvecs=%zu saved=%zu "
      "converged=%d\n",
      r.eigenvalues[0], diff, r.matvecs, r.resumed_matvecs,
      r.converged ? 1 : 0);
  remove_checkpoint(a.checkpoint);
  const bool pass = r.converged && diff <= a.tol && r.resumed_matvecs > 0;
  std::printf("selftest: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) {
    std::fprintf(stderr,
                 "usage: %s run|resume|selftest [--quick] [--checkpoint P]\n"
                 "       [--interval N] [--threads K] [--expected E] "
                 "[--tol T] [--progress]\n",
                 argv[0]);
    return 2;
  }
  if (a.threads > 0) set_num_threads(a.threads);
  try {
    if (a.mode == "run") return do_run(a);
    if (a.mode == "resume") return do_resume(a);
    return do_selftest(a, argv[0]);
  } catch (const Error& e) {
    std::fprintf(stderr, "resume_driver: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "resume_driver: %s\n", e.what());
    return 1;
  }
}
