#!/usr/bin/env python3
"""Doc-hygiene gate for CI (stdlib only).

Two checks:

1. Markdown links in README.md / DESIGN.md / ROADMAP.md resolve to files
   that exist in the repo.
2. Public headers under src/ are documented: the file opens with a comment
   block, and every public declaration (namespace scope, or public section
   of a class/struct) is covered by a doc comment — a `//`/`///` line
   directly above it, a trailing comment on the line, or membership in a
   contiguous group of one-line declarations whose first member is
   documented.

The declaration scanner is a line heuristic, not a parser: multi-line
declaration continuations (deeper indent, or lines ending in ','), enum
bodies, access specifiers and braces are skipped. False negatives are
acceptable — this is a hygiene floor, not clang-tidy.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
MARKDOWN = ["README.md", "DESIGN.md", "ROADMAP.md"]

errors: list[str] = []


def check_markdown_links() -> None:
    link_re = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
    for name in MARKDOWN:
        path = REPO / name
        if not path.exists():
            errors.append(f"{name}: file missing")
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for target in link_re.findall(line):
                if target.startswith(("http://", "https://", "#", "mailto:")):
                    continue
                rel = target.split("#", 1)[0]
                if rel and not (REPO / rel).exists():
                    errors.append(f"{name}:{lineno}: broken link -> {target}")


COMMENT_RE = re.compile(r"^\s*//")
# A declaration line at namespace scope (indent 0) or class-member scope
# (indent 2) that opens a definition or ends a one-line declaration.
DECL_RE = re.compile(r"^(  )?[A-Za-z_~]")
SKIP_RE = re.compile(
    r"^\s*(#|\}|\{|$|public:|private:|protected:|namespace\b|using namespace\b)"
)


def check_header(path: Path) -> None:
    rel = path.relative_to(REPO)
    lines = path.read_text().splitlines()
    if not lines or not lines[0].startswith("//"):
        errors.append(f"{rel}:1: header must open with a file comment block")
        return
    # Block stack: 'namespace' | 'class' | 'other' (function body, enum —
    # declarations are only scanned directly inside namespaces and the
    # public part of classes).
    stack: list[str] = []
    in_private = False
    prev_documented_decl = False  # one-line decl group inheritance
    prev_nonblank_comment = False
    for lineno, line in enumerate(lines, 1):
        code = line.split("//", 1)[0] if "//" in line else line
        stripped = line.strip()
        if stripped in ("private:", "protected:"):
            in_private = True
        elif stripped == "public:":
            in_private = False

        scope = stack[-1] if stack else "namespace"
        in_enum = bool(stack) and stack[-1] == "enum"
        net = code.count("{") - code.count("}")
        if net > 0:
            if re.match(r"\s*(inline\s+)?namespace\b", code):
                kind = "namespace"
            elif re.match(r"\s*(class|struct|union)\b", code):
                kind = "class"
            elif re.match(r"\s*enum\b", code):
                kind = "enum"
            else:
                kind = "other"
            stack.extend([kind] * net)
        elif net < 0:
            del stack[net:]
            if scope == "class" and (not stack or stack[-1] != "class"):
                in_private = False

        if SKIP_RE.match(line):
            if not stripped:
                prev_documented_decl = False
            prev_nonblank_comment = False
            continue
        if COMMENT_RE.match(line):
            prev_nonblank_comment = True
            prev_documented_decl = False
            continue

        at_ns_scope = scope == "namespace" and not line.startswith((" ", "\t"))
        at_class_scope = scope == "class" and re.match(r"^  \S", line)
        is_decl_start = bool(
            (at_ns_scope or at_class_scope)
            and DECL_RE.match(line)
            and not in_private
            and not in_enum
        )
        ends_like_decl = (
            stripped.endswith((";", "{"))
            or (net == 0 and stripped.endswith("}"))
            or stripped.startswith("template")
        )
        if is_decl_start and ends_like_decl:
            # One-line declarations/definitions chain into documented groups
            # (one comment covers a contiguous run, e.g. operator overload
            # sets); a group also covers an immediately-following multi-line
            # overload of the same kind.
            one_line = stripped.endswith(";") or (
                net == 0 and stripped.endswith("}")
            )
            documented = (
                prev_nonblank_comment or "//" in line or prev_documented_decl
            )
            if not documented:
                errors.append(f"{rel}:{lineno}: undocumented declaration: "
                              f"{stripped[:60]}")
            # A documented template<> line covers the declaration under it.
            prev_documented_decl = documented and (
                one_line or stripped.startswith("template")
            )
        elif is_decl_start and "(" in line:
            # Multi-line function declaration head (ends with ','): require
            # a comment above. Lines without '(' at this point are
            # aggregate/member continuations — skip those.
            if not prev_nonblank_comment and "//" not in line:
                errors.append(f"{rel}:{lineno}: undocumented declaration: "
                              f"{stripped[:60]}")
            prev_documented_decl = False
        else:
            prev_documented_decl = False
        prev_nonblank_comment = False


def main() -> int:
    check_markdown_links()
    for path in sorted(REPO.glob("src/**/*.hpp")):
        check_header(path)
    if errors:
        for e in errors:
            print(f"check_docs: {e}")
        print(f"check_docs: {len(errors)} problem(s)")
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
