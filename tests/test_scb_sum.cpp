// ScbSum container semantics: merging/cancellation on add, distributive
// Cayley-closed products (term count <= T1*T2, matrix agreement with dense),
// adjoint/hermiticity, Pauli expansion round-trip and matrix-free apply.
#include "linalg/blas1.hpp"
#include "ops/scb_sum.hpp"

#include <random>

#include "ops/conversion.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

ScbSum random_sum(std::size_t n, std::size_t terms, std::mt19937& rng) {
  std::uniform_int_distribution<int> d(0, 7);
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  ScbSum s(n);
  for (std::size_t t = 0; t < terms; ++t) {
    std::vector<Scb> word(n);
    for (auto& o : word) o = kAllScb[static_cast<std::size_t>(d(rng))];
    s.add(word, cplx(c(rng), c(rng)));
  }
  return s;
}

}  // namespace

int main() {
  std::mt19937 rng(7);

  // add merges like words and erases on cancellation.
  {
    ScbSum s(2);
    s.add({Scb::N, Scb::Z}, 0.5);
    s.add({Scb::N, Scb::Z}, 0.25);
    CHECK_EQ(s.size(), std::size_t{1});
    CHECK_NEAR(s.coeff_of({Scb::N, Scb::Z}) - cplx(0.75), 0.0, 1e-15);
    s.add({Scb::N, Scb::Z}, -0.75);
    CHECK(s.empty());
  }

  // add(ScbTerm) includes the h.c. part.
  {
    ScbSum s(2);
    s.add(ScbTerm(cplx(0.0, 2.0), {Scb::Sm, Scb::Z}, true));
    CHECK_EQ(s.size(), std::size_t{2});
    CHECK_NEAR(s.coeff_of({Scb::Sp, Scb::Z}) - cplx(0.0, -2.0), 0.0, 1e-15);
    CHECK(s.is_hermitian());
  }

  // Product: at most T1*T2 terms and dense-matrix agreement.
  for (int it = 0; it < 40; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 4);
    const ScbSum a = random_sum(n, 1 + rng() % 4, rng);
    const ScbSum b = random_sum(n, 1 + rng() % 4, rng);
    const ScbSum ab = a * b;
    CHECK(ab.size() <= a.size() * b.size());
    CHECK_NEAR(ab.to_matrix().max_abs_diff(a.to_matrix() * b.to_matrix()), 0.0,
               1e-12);
    const ScbSum sum = a + b, diff = a - b;
    CHECK_NEAR(sum.to_matrix().max_abs_diff(a.to_matrix() + b.to_matrix()), 0.0,
               1e-13);
    CHECK_NEAR(diff.to_matrix().max_abs_diff(a.to_matrix() - b.to_matrix()),
               0.0, 1e-13);
    CHECK_NEAR(a.adjoint().to_matrix().max_abs_diff(a.to_matrix().dagger()),
               0.0, 1e-13);
    CHECK_NEAR(a.commutator(b).to_matrix().max_abs_diff(
                   a.to_matrix() * b.to_matrix() - b.to_matrix() * a.to_matrix()),
               0.0, 1e-12);
  }

  // H = A + A† is Hermitian both by the predicate and by gathering.
  for (int it = 0; it < 20; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 4);
    const ScbSum a = random_sum(n, 3, rng);
    const ScbSum h = a + a.adjoint();
    CHECK(h.is_hermitian());
    const std::vector<ScbTerm> gathered = h.hermitian_terms();
    CHECK_NEAR(terms_matrix(gathered, n).max_abs_diff(h.to_matrix()), 0.0,
               1e-12);
  }

  // to_pauli matches the dense matrix; apply matches dense matvec.
  for (int it = 0; it < 20; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 4);
    const ScbSum a = random_sum(n, 4, rng);
    CHECK_NEAR(a.to_pauli().to_matrix(n).max_abs_diff(a.to_matrix()), 0.0,
               1e-12);
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim, cplx(0.0));
    a.apply(x, y);
    CHECK_NEAR(vec_max_abs_diff(y, a.to_matrix().apply(x)), 0.0, 1e-12);
  }

  // one_norm and scalar scaling.
  {
    ScbSum s(1);
    s.add({Scb::X}, cplx(3.0, 4.0));
    s.add({Scb::N}, -2.0);
    CHECK_NEAR(s.one_norm(), 7.0, 1e-15);
    CHECK_NEAR((s * cplx(2.0)).one_norm(), 14.0, 1e-15);
    CHECK_NEAR((cplx(0.5) * s).one_norm(), 3.5, 1e-15);
  }

  // prune drops sub-tolerance terms.
  {
    ScbSum s(1);
    s.add({Scb::Z}, 1e-15, 0.0);  // tol 0 keeps it
    CHECK_EQ(s.size(), std::size_t{1});
    s.prune(1e-12);
    CHECK(s.empty());
  }

  return gecos::test::finish("test_scb_sum");
}
