// SIMD dispatch layer: tier plumbing (names, parsing, availability,
// forcing) and the cross-tier bitwise-equality contract. Every wide kernel
// of every host-available tier is pinned BITWISE against the always-compiled
// scalar tier — stronger than the 1-ulp acceptance bound — across odd
// lengths, unaligned starting offsets and sentinel-guarded tails (so an
// overrunning tail loop fails loudly). On top of the raw kernels, whole
// operator applies and Trotter steps are pinned bitwise across tiers, and
// an allocation probe pins the fused Trotter phase tables as warmup-only
// (steady-state steps, including a dt change, allocate nothing).
#include "alloc_probe.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "evolve/trotter.hpp"
#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "ops/scb_sum.hpp"
#include "ops/term.hpp"
#include "simd/kernels.hpp"
#include "simd/simd.hpp"
#include "state/state_vector.hpp"
#include "test_util.hpp"

namespace {

using gecos::cplx;

/// Bit-exact complex comparison (distinguishes -0.0 from +0.0 — the tiers
/// must agree on signs too).
bool same_bits(cplx a, cplx b) {
  return std::memcmp(&a, &b, sizeof(cplx)) == 0;
}

bool same_bits(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

std::vector<cplx> random_vec(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (cplx& z : v) z = cplx(d(rng), d(rng));
  return v;
}

}  // namespace

int main() {
  using namespace gecos;
  std::mt19937 rng(2025);

  // -- tier plumbing --------------------------------------------------------
  CHECK(simd_tier_available(SimdTier::scalar));
  for (SimdTier t :
       {SimdTier::scalar, SimdTier::avx2, SimdTier::avx512}) {
    CHECK_EQ(parse_simd_tier(simd_tier_name(t)), t);
  }
  {
    bool threw = false;
    try {
      parse_simd_tier("sse9");
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }
  const SimdTier initial = simd_tier();
  CHECK(simd_tier_available(initial));
  CHECK(simd_tier_available(simd_best_tier()));
  for (SimdTier t :
       {SimdTier::scalar, SimdTier::avx2, SimdTier::avx512}) {
    if (simd_tier_available(t)) {
      set_simd_tier(t);
      CHECK_EQ(simd_tier(), t);
    } else {
      bool threw = false;
      try {
        set_simd_tier(t);
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      CHECK(threw);
    }
  }
  set_simd_tier(SimdTier::scalar);

  // -- raw kernels: every wide tier bitwise against the scalar tier ---------
  // Odd lengths exercise every tail-loop length; offsets make the pointers
  // unaligned relative to the 32/64-byte vector width; kPad sentinel
  // complexes after the range catch any out-of-bounds write.
  const std::size_t lengths[] = {0,  1,  2,  3,  4,  5,   6,   7,   8,  9,
                                 11, 13, 15, 16, 17, 23,  31,  32,  33, 47,
                                 63, 64, 65, 97, 100, 127, 128, 129, 511};
  const std::size_t offsets[] = {0, 1, 2, 3};
  constexpr std::size_t kPad = 8;
  const cplx s1(0.7, -0.3), s2(-0.4, 1.1);
  const simd::Kernels& ref = simd::impl_for(SimdTier::scalar).kernels;

  for (SimdTier t : {SimdTier::avx2, SimdTier::avx512}) {
    if (!simd_tier_available(t)) {
      std::printf("tier %s unavailable on this host, skipped\n",
                  simd_tier_name(t));
      continue;
    }
    const simd::Kernels& kn = simd::impl_for(t).kernels;
    for (const std::size_t n : lengths) {
      for (const std::size_t o : offsets) {
        const std::vector<cplx> xs = random_vec(n + o + kPad, rng);
        const std::vector<cplx> ys = random_vec(n + o + kPad, rng);
        std::vector<cplx> ph = random_vec(n + o + kPad, rng);
        for (cplx& p : ph) p /= std::abs(p);  // unit-modulus phases
        const cplx* x = xs.data() + o;

        // Reductions: every lane must match, not just the combined value.
        double la[8], lb[8];
        ref.norm2_lanes(x, n, la);
        kn.norm2_lanes(x, n, lb);
        CHECK(std::memcmp(la, lb, sizeof la) == 0);
        ref.dot_lanes(x, ys.data() + o, n, la);
        kn.dot_lanes(x, ys.data() + o, n, lb);
        CHECK(std::memcmp(la, lb, sizeof la) == 0);

        // Elementwise kernels: run scalar and wide on identical copies,
        // compare the WHOLE buffer (touched range, pad and prefix).
        const auto elementwise = [&](auto&& run) {
          std::vector<cplx> a = ys, b = ys;
          run(ref, a.data() + o);
          run(kn, b.data() + o);
          CHECK(same_bits(a, b));
        };
        elementwise([&](const simd::Kernels& k, cplx* y) {
          k.scale(y, n, s1);
        });
        elementwise([&](const simd::Kernels& k, cplx* y) {
          k.axpy(y, x, n, s1);
        });
        elementwise([&](const simd::Kernels& k, cplx* y) {
          k.axpby(y, x, n, s1, s2);
        });
        elementwise([&](const simd::Kernels& k, cplx* y) {
          k.diag_mul_add(y, ph.data() + o, x, n, s2);
        });
        elementwise([&](const simd::Kernels& k, cplx* y) {
          k.phase_mul(y, ph.data() + o, n);
        });

        // pair_rot rotates two distinct streams in place.
        {
          std::vector<cplx> a1 = xs, b1 = ys, a2 = xs, b2 = ys;
          ref.pair_rot(a1.data() + o, b1.data() + o, n, 0.8, s1, s2);
          kn.pair_rot(a2.data() + o, b2.data() + o, n, 0.8, s1, s2);
          CHECK(same_bits(a1, a2));
          CHECK(same_bits(b1, b2));
        }

        // hop_scatter through a permutation table with skips and signs.
        if (n > 0) {
          std::vector<std::uint32_t> tgt(n);
          std::iota(tgt.begin(), tgt.end(), 0u);
          std::shuffle(tgt.begin(), tgt.end(), rng);
          for (std::size_t i = 0; i < n; ++i) {
            if (i % 3 == 0) tgt[i] = simd::kHopSkip;
            else if (i % 5 == 0) tgt[i] |= simd::kHopSignBit;
          }
          std::vector<cplx> y1(ys.begin(), ys.begin() + n);
          std::vector<cplx> y2 = y1;
          ref.hop_scatter(y1.data(), x, tgt.data(), n, s1);
          kn.hop_scatter(y2.data(), x, tgt.data(), n, s1);
          CHECK(same_bits(y1, y2));
        }
      }
    }
    std::printf("tier %s: all kernels bitwise-equal to scalar\n",
                simd_tier_name(t));
  }

  // -- dispatched blas1 and operator sweeps: bitwise across tiers -----------
  // The same run-splitting happens at every tier and the kernels are
  // bitwise-equal, so whole vec_* reductions, TermKernel applies and
  // Trotter trajectories must agree bit-for-bit between forced-scalar and
  // every wide tier.
  {
    HubbardParams p;
    p.lx = 5;
    p.u = 3.0;
    p.mu = 0.2;
    p.periodic_x = true;
    p.spinful = true;  // n = 10
    const ScbSum h = hubbard_scb(p);
    const std::size_t n = h.num_qubits();
    const std::size_t dim = std::size_t{1} << n;
    const std::vector<cplx> x0 = random_vec(dim, rng);

    set_simd_tier(SimdTier::scalar);
    const double nrm = vec_norm(x0);
    const cplx dot = vec_dot(x0, x0);
    std::vector<cplx> y_ref(dim, cplx(0.0));
    h.apply_add(x0, y_ref);
    StateVector tr_ref(n);
    std::copy(x0.begin(), x0.end(), tr_ref.amps().begin());
    const TrotterEvolver ev(h);
    for (int s = 0; s < 3; ++s) ev.step(tr_ref, 0.05, 2);

    for (SimdTier t : {SimdTier::avx2, SimdTier::avx512}) {
      if (!simd_tier_available(t)) continue;
      set_simd_tier(t);
      CHECK(nrm == vec_norm(x0));
      CHECK(same_bits(dot, vec_dot(x0, x0)));
      std::vector<cplx> y(dim, cplx(0.0));
      h.apply_add(x0, y);
      CHECK(same_bits(y_ref, y));
      StateVector tr(n);
      std::copy(x0.begin(), x0.end(), tr.amps().begin());
      for (int s = 0; s < 3; ++s) ev.step(tr, 0.05, 2);
      CHECK(same_bits(std::vector<cplx>(tr_ref.amps().begin(),
                                        tr_ref.amps().end()),
                      std::vector<cplx>(tr.amps().begin(),
                                        tr.amps().end())));
    }
    set_simd_tier(initial);
  }

  // -- fusion tables are warmup-only ----------------------------------------
  // The fused diagonal angle/phase tables are sized at construction and a
  // dt change refills the phase table in place, so steady-state stepping —
  // even across a dt change — performs ZERO heap allocations.
  {
    HubbardParams p;
    p.lx = 5;
    p.u = 3.0;
    p.mu = 0.2;
    p.periodic_x = true;
    p.spinful = true;
    const ScbSum h = hubbard_scb(p);
    const TrotterEvolver ev(h);
    CHECK(ev.fused());
    CHECK(ev.num_groups() < ev.num_terms());
    StateVector x = StateVector::product(h.num_qubits(),
                                         hubbard_cdw_occupation(p));
    ev.step(x, 0.02, 2);  // warmup: phase fill, thread pool
    const long before = gecos::test::allocations();
    for (int s = 0; s < 5; ++s) ev.step(x, 0.02, 2);
    ev.step(x, 0.01, 2);  // dt change: in-place phase refill
    const long delta = gecos::test::allocations() - before;
#if GECOS_ALLOC_PROBE_ACTIVE
    std::printf("alloc probe: %ld allocations over 6 fused steps\n", delta);
    CHECK_EQ(delta, 0);
#else
    (void)delta;
#endif
  }

  set_simd_tier(initial);
  return gecos::test::finish("test_simd");
}
