// Sector-native solver suite: the Krylov solver layer running unchanged on
// SectorOperator through LinearOperator. Pins (1) sector Lanczos minimized
// over all sectors == full-space dense ground state (the sector decomposition
// is exhaustive), (2) sector Lanczos == dense eigh of the explicitly
// projected sector matrix per sector, (3) imaginary-time projection agrees
// with sector Lanczos, (4) sector KrylovEvolver == full-space KrylovEvolver
// on embedded states, (5) warm sector Lanczos re-solves allocate nothing,
// and (6) KrylovBasis::reset repartitioning.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <vector>
// clang-format on

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "ops/scb_sum.hpp"
#include "solver/imag_time.hpp"
#include "solver/krylov_evolve.hpp"
#include "solver/lanczos.hpp"
#include "state/krylov_basis.hpp"
#include "symmetry/sector_operator.hpp"
#include "symmetry/sector_vector.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// Dense matrix of the sector-restricted operator, built by applying it to
/// every sector basis vector (columns) — the brute-force reference the
/// matrix-free kernels are checked against.
Matrix sector_dense(const SectorOperator& op) {
  const std::size_t d = op.dim();
  Matrix m(d, d);
  std::vector<cplx> e(d, cplx(0.0)), col(d);
  for (std::size_t j = 0; j < d; ++j) {
    e[j] = cplx(1.0);
    op.apply(e, col);
    for (std::size_t i = 0; i < d; ++i) m(i, j) = col[i];
    e[j] = cplx(0.0);
  }
  return m;
}

/// Lowest eigenvalue of a Hermitian matrix via the dense Jacobi eigh.
double dense_ground(const Matrix& m) { return eigh(m).eigenvalues.front(); }

}  // namespace

int main() {
  // -- exhaustive sector decomposition reproduces the full ground state ------
  {
    HubbardParams p;  // 2x2 spinful lattice, n = 8
    p.lx = 2;
    p.ly = 2;
    p.u = 4.0;
    p.mu = 0.5;
    p.spinful = true;
    const ScbSum h = hubbard_scb(p);
    const double full_e0 = dense_ground(h.to_matrix());

    double best = std::numeric_limits<double>::infinity();
    for (std::size_t up = 0; up <= 4; ++up)
      for (std::size_t dn = 0; dn <= 4; ++dn) {
        const SectorBasis b = hubbard_sector(p, up, dn);
        const SectorOperator hs(b, h);
        // Per-sector pin: matrix-free sector Lanczos vs dense eigh of the
        // explicitly projected sector matrix.
        const double dense_e0 = dense_ground(sector_dense(hs));
        if (b.dim() < 2) {  // 1x1 sector: the diagonal entry IS the energy
          const SectorVector v(b);
          best = std::min(best, v.expectation(hs).real());
          CHECK_NEAR(v.expectation(hs).real(), dense_e0, 1e-10);
          continue;
        }
        LanczosOptions lo;
        lo.tol = 1e-10;
        lo.max_subspace = std::min<std::size_t>(32, b.dim());
        if (lo.max_subspace < lo.k + 2) lo.max_subspace = lo.k + 2;
        Lanczos solver(hs, lo);
        const double e0 = solver.solve().eigenvalues[0];
        CHECK_NEAR(e0, dense_e0, 1e-8);
        best = std::min(best, e0);
      }
    CHECK_NEAR(best, full_e0, 1e-8);
  }

  // -- sector Lanczos vs imaginary-time projection (independent principle) ---
  {
    HubbardParams p;  // spinless ring, n = 10
    p.lx = 10;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const SectorBasis b = hubbard_sector(p, 5);
    CHECK_EQ(b.dim(), std::size_t{252});
    const SectorOperator hs(b, h);

    LanczosOptions lo;
    lo.tol = 1e-10;
    Lanczos solver(hs, lo);
    const double e0 = solver.solve().eigenvalues[0];

    SectorVector psi = SectorVector::random(b, 97);
    ImagTimeOptions io;
    io.variance_tol = 1e-10;
    const ImagTimeResult ir = imag_time_ground_state(hs, psi.amps(), io);
    CHECK(ir.converged);
    CHECK_NEAR(ir.energy, e0, 1e-6);
    // The projected state is the Lanczos Ritz vector up to a global phase.
    CHECK(vec_diff_up_to_phase(psi.amps(), solver.ritz_vector(0)) < 1e-4);
  }

  // -- sector KrylovEvolver == full-space KrylovEvolver on embedded states ---
  {
    HubbardParams p;  // 3x2 spinful lattice, n = 12
    p.lx = 3;
    p.ly = 2;
    p.u = 4.0;
    p.mu = 0.5;
    p.periodic_x = true;
    p.spinful = true;
    const ScbSum h = hubbard_scb(p);
    const std::uint64_t occ = hubbard_cdw_occupation(p);
    const SectorBasis b = hubbard_sector_of(p, occ);
    const SectorOperator hs(b, h);

    KrylovOptions ko;
    ko.tol = 1e-12;
    const KrylovEvolver sector_ev(hs, ko);
    const KrylovEvolver full_ev(h, ko);

    SectorVector xs = SectorVector::config_state(b, occ);
    StateVector xf = StateVector::product(hubbard_num_modes(p), occ);
    const double dt = 0.05;
    for (int s = 0; s < 4; ++s) {
      sector_ev.step(xs.amps(), dt);
      full_ev.step(xf, dt);
    }
    // The full evolution never leaves the sector ([H, N_s] = 0), so the
    // embedded sector evolution must match everywhere.
    CHECK(xs.embed().max_abs_diff(xf) < 1e-9);
    CHECK_NEAR(xs.norm(), 1.0, 1e-10);
  }

  // -- allocation probe: a warm sector Lanczos re-solve allocates nothing ----
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    p.mu = 0.3;
    const ScbSum h = hubbard_scb(p);
    const SectorBasis b = hubbard_sector(p, 3);
    const SectorOperator hs(b, h);
    LanczosOptions lo;
    lo.tol = 1e-10;
    Lanczos solver(hs, lo);
    solver.solve();  // warm-up: results and workspaces all sized
    const long before = gecos::test::allocations();
    const LanczosResult& r = solver.solve();
    const long delta = gecos::test::allocations() - before;
    CHECK(r.converged);
#if GECOS_ALLOC_PROBE_ACTIVE
    CHECK_EQ(delta, 0L);
#endif
    std::printf("alloc probe: %ld allocations during warm sector re-solve\n",
                delta);
  }

  // -- KrylovBasis::reset repartitions one allocation across dimensions ------
  {
    KrylovBasis kb(64, 4);  // 256 amplitudes total
    kb.vec(3)[63] = cplx(2.0);
    kb.reset(32);  // same capacity, half the dim: fits the allocation
    CHECK_EQ(kb.dim(), std::size_t{32});
    CHECK_EQ(kb.capacity(), std::size_t{4});
    for (std::size_t j = 0; j < 4; ++j)
      for (const cplx& a : kb.vec(j)) CHECK(a == cplx(0.0));
    kb.vec(3)[31] = cplx(1.0);
    kb.reset(64);  // back to the construction dim: also fits
    CHECK_EQ(kb.dim(), std::size_t{64});
    for (std::size_t j = 0; j < 4; ++j)
      for (const cplx& a : kb.vec(j)) CHECK(a == cplx(0.0));
  }

  return gecos::test::finish("test_sector_solve");
}
