// ScbTerm structure queries and the TermKernel matrix-free statevector
// kernels against dense ground truth.
#include "linalg/blas1.hpp"
#include "ops/term.hpp"

#include <bit>
#include <random>

#include "test_util.hpp"

using namespace gecos;

namespace {

ScbTerm random_term(std::size_t n, std::mt19937& rng, bool add_hc) {
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  std::vector<Scb> ops(n);
  for (auto& o : ops) o = kAllScb[rng() % 8];
  return ScbTerm(cplx(c(rng), c(rng)), std::move(ops), add_hc);
}

}  // namespace

int main() {
  std::mt19937 rng(99);

  // Parse / str roundtrip and the paper's Fig. 2 example shape.
  {
    const ScbTerm t = ScbTerm::parse("n m X s+ s");
    CHECK_EQ(t.num_qubits(), std::size_t{5});
    CHECK(t.op(0) == Scb::N && t.op(3) == Scb::Sp && t.op(4) == Scb::Sm);
    CHECK(t.add_hc());
    CHECK_EQ(t.control_qubits(), (std::vector<int>{0, 1}));
    CHECK_EQ(t.transition_qubits(), (std::vector<int>{3, 4}));
    CHECK_EQ(t.pauli_qubits(), (std::vector<int>{2}));
    CHECK_EQ(t.flip_mask(), std::uint64_t{0b11100});
    CHECK_EQ(t.transition_mask(), std::uint64_t{0b11000});
    CHECK_EQ(t.transition_a_bits(), std::uint64_t{0b01000});
    const auto [cmask, cval] = t.control_key();
    CHECK_EQ(cmask, std::uint64_t{0b00011});
    CHECK_EQ(cval, std::uint64_t{0b00001});
  }

  // TermKernel amplitudes equal bare_amplitude on every basis state.
  for (int it = 0; it < 100; ++it) {
    const std::size_t n = 1 + it % 8;
    const std::size_t dim = std::size_t{1} << n;
    const ScbTerm t = random_term(n, rng, false);
    const TermKernel k(t);
    for (std::uint64_t s = 0; s < dim; ++s) {
      cplx kernel_amp(0.0);
      if ((s & k.select_mask) == k.select_val)
        kernel_amp = (std::popcount(k.sign_mask & s) & 1) ? -k.base : k.base;
      CHECK_NEAR(kernel_amp - t.bare_amplitude(s), 0.0, 1e-14);
    }
    CHECK_EQ(k.flip, t.flip_mask());
  }

  // apply (bare and with h.c.) against the dense Hamiltonian.
  for (int it = 0; it < 60; ++it) {
    const std::size_t n = 1 + it % 7;
    const std::size_t dim = std::size_t{1} << n;
    const ScbTerm t = random_term(n, rng, it % 2 == 0);
    std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim, cplx(0.0));
    t.apply_add(x, y);
    const std::vector<cplx> expect = t.hamiltonian_matrix().apply(x);
    CHECK_NEAR(vec_max_abs_diff(y, expect), 0.0, 1e-12);
  }

  // apply_terms accumulates a whole Hamiltonian matrix-free.
  for (int it = 0; it < 20; ++it) {
    const std::size_t n = 2 + it % 5;
    const std::size_t dim = std::size_t{1} << n;
    std::vector<ScbTerm> terms;
    for (int j = 0; j < 5; ++j) terms.push_back(random_term(n, rng, j % 2 == 0));
    std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim, cplx(0.0));
    apply_terms(terms, x, y);
    const std::vector<cplx> expect = terms_matrix(terms, n).apply(x);
    CHECK_NEAR(vec_max_abs_diff(y, expect), 0.0, 1e-12);
  }

  // adjoint / hermiticity bookkeeping.
  for (int it = 0; it < 50; ++it) {
    const std::size_t n = 1 + it % 6;
    const ScbTerm t = random_term(n, rng, false);
    CHECK_NEAR(t.adjoint().bare_matrix().max_abs_diff(t.bare_matrix().dagger()),
               0.0, 1e-13);
    const ScbTerm h = random_term(n, rng, true);
    CHECK(h.hamiltonian_matrix().is_hermitian(1e-12));
    CHECK_NEAR(terms_one_norm_bound({h}) - 2.0 * std::abs(h.coeff()), 0.0,
               1e-14);
  }

  return gecos::test::finish("test_term");
}
