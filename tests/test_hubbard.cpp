// Hamiltonian builders: Hubbard hermiticity, particle-number commutation
// (symbolically at the CAR level and in the Pauli canonical basis),
// SCB-vs-Pauli matrix equality up to n = 10, matrix-free SCB-vs-Pauli
// agreement at n = 18, and the paper's scaling pin: the SCB representation
// stays one term per fermionic word while the Pauli expansion pays 2^k per
// term (k = projector/transition factor count).
#include "linalg/blas1.hpp"
#include "fermion/hubbard.hpp"

#include <random>

#include "ops/conversion.hpp"
#include "test_util.hpp"

using namespace gecos;

int main() {
  std::mt19937 rng(13);

  // Mode layout: spin fastest, then x, then y.
  {
    HubbardParams p;
    p.lx = 3;
    p.ly = 2;
    p.spinful = true;
    CHECK_EQ(hubbard_num_sites(p), std::size_t{6});
    CHECK_EQ(hubbard_num_modes(p), std::size_t{12});
    CHECK_EQ(hubbard_mode(p, 0, 0, 0), std::uint32_t{0});
    CHECK_EQ(hubbard_mode(p, 0, 0, 1), std::uint32_t{1});
    CHECK_EQ(hubbard_mode(p, 1, 0, 0), std::uint32_t{2});
    CHECK_EQ(hubbard_mode(p, 0, 1, 0), std::uint32_t{6});
  }

  // Hermiticity: fermionic predicate, SCB predicate, and dense check, for a
  // grid of small lattices (1D/2D, open/periodic, spinless/spinful).
  for (const bool spinful : {false, true})
    for (const bool periodic : {false, true})
      for (const std::size_t ly : {std::size_t{1}, std::size_t{2}}) {
        HubbardParams p;
        p.lx = 3;
        p.ly = ly;
        p.t = 1.0;
        p.u = 2.5;
        p.mu = 0.7;
        p.periodic_x = periodic;
        p.periodic_y = periodic;
        p.spinful = spinful;
        const FermionSum h = hubbard_hamiltonian(p);
        CHECK(h.is_hermitian());
        const ScbSum scb = hubbard_scb(p);
        CHECK(scb.is_hermitian());
        if (hubbard_num_modes(p) <= 8)
          CHECK(scb.to_matrix().is_hermitian(1e-12));
        // Particle-number symmetry, fully symbolically: the CAR rewriting of
        // [H, N] leaves no term, and independently the JW/SCB commutator
        // vanishes in the Pauli canonical basis.
        const FermionSum num = total_number(hubbard_num_modes(p));
        CHECK(normal_order(h * num - num * h).empty());
        CHECK(scb.commutator(jw_sum(num, hubbard_num_modes(p))).to_pauli()
                  .empty());
      }

  // SCB-vs-Pauli matrix equality at n = 10 (1D periodic chain) and for a
  // spinful 2x2 plaquette (8 modes).
  {
    HubbardParams p;
    p.lx = 10;
    p.t = 1.0;
    p.u = 4.0;
    p.mu = 0.5;
    p.periodic_x = true;
    const ScbSum scb = hubbard_scb(p);
    CHECK_NEAR(scb.to_pauli().to_matrix(10).max_abs_diff(scb.to_matrix()), 0.0,
               1e-11);

    HubbardParams q;
    q.lx = 2;
    q.ly = 2;
    q.spinful = true;
    q.u = 3.0;
    q.mu = 0.25;
    const ScbSum scbq = hubbard_scb(q);
    CHECK_NEAR(scbq.to_pauli().to_matrix(8).max_abs_diff(scbq.to_matrix()),
               0.0, 1e-12);
  }

  // Matrix-free SCB-vs-Pauli cross-validation at n = 18: apply both
  // representations of the same Hamiltonian to a random state.
  {
    HubbardParams p;
    p.lx = 18;
    p.t = 1.0;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum scb = hubbard_scb(p);
    const PauliSum pauli = scb.to_pauli();
    const std::size_t dim = std::size_t{1} << 18;
    const std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> ys(dim, cplx(0.0)), yp(dim, cplx(0.0));
    scb.apply(x, ys);
    pauli.apply(x, yp);
    CHECK_NEAR(vec_max_abs_diff(ys, yp), 0.0, 1e-11);
  }

  // Scaling pin (paper Section II-B1 vs III): a product of k number
  // operators is ONE SCB term for every k, while its Pauli expansion has
  // exactly 2^k strings — the SCB side is constant in k, the Pauli side
  // exponential. Counted analytically for k <= 20, by expansion for k <= 12.
  for (std::size_t k = 2; k <= 20; ++k) {
    std::vector<LadderOp> word;
    for (std::uint32_t m = 0; m < k; ++m) {
      word.push_back({m, true});
      word.push_back({m, false});
    }
    FermionSum density;
    density.add(FermionProduct(1.0, word));
    const ScbSum scb = jw_sum(density, k);
    CHECK_EQ(scb.size(), std::size_t{1});
    const ScbTerm t = scb.bare_terms()[0];
    CHECK_EQ(pauli_expansion_count(t), std::size_t{1} << k);
    if (k <= 12) CHECK_EQ(term_to_pauli(t).size(), std::size_t{1} << k);
  }

  // Molecular-like generator: Hermitian by construction (fermionic, SCB and
  // dense), deterministic under the seed, and SCB size bounded by the
  // fermionic word count while the Pauli expansion is strictly larger.
  {
    const FermionSum mol = random_two_body(5, 4, 6, 99);
    CHECK(mol.is_hermitian());
    const ScbSum scb = jw_sum(mol, 5);
    CHECK(scb.is_hermitian());
    CHECK(scb.to_matrix().is_hermitian(1e-12));
    CHECK(scb.size() <= mol.size());
    CHECK_NEAR(scb.to_pauli().to_matrix(5).max_abs_diff(scb.to_matrix()), 0.0,
               1e-12);
    const FermionSum again = random_two_body(5, 4, 6, 99);
    CHECK_EQ(again.str(), mol.str());
    const FermionSum other = random_two_body(5, 4, 6, 100);
    CHECK(other.str() != mol.str());

    const ScbSum big = jw_sum(random_two_body(20, 20, 40, 7), 20);
    std::size_t pauli_strings = 0;
    for (const ScbTerm& t : big.bare_terms())
      pauli_strings += pauli_expansion_count(t);
    CHECK(big.size() < pauli_strings);  // 4x / 16x per one-/two-body word
  }

  return gecos::test::finish("test_hubbard");
}
