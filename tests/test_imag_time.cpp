// Imaginary-time projection suite: ground-state energies against dense eigh
// AND the Lanczos eigensolver (the pairwise agreement demanded of two
// independent projection principles), final-state fidelity, stopping
// behavior, and error paths.
#include <cmath>
#include <cstdio>
#include <vector>

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "ops/scb_sum.hpp"
#include "solver/imag_time.hpp"
#include "solver/lanczos.hpp"
#include "test_util.hpp"

using namespace gecos;

int main() {
  // -- three-way agreement: dense eigh, Lanczos, imaginary time -------------
  for (const bool spinful : {false, true}) {
    HubbardParams p;
    p.lx = spinful ? 4 : 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = !spinful;
    p.spinful = spinful;
    const ScbSum h = hubbard_scb(p);
    const std::size_t n = h.num_qubits();  // 8 both ways

    const EigenSystem dense = eigh(h.to_matrix());
    const double e_dense = dense.eigenvalues[0];

    LanczosOptions lo;
    lo.k = 1;
    lo.tol = 1e-11;
    Lanczos lan(h, lo);
    const double e_lanczos = lan.solve().eigenvalues[0];

    StateVector psi = StateVector::random(n, 11);
    ImagTimeOptions io;
    io.variance_tol = 1e-12;
    const ImagTimeResult r = imag_time_ground_state(h, psi, io);
    std::printf("n=%zu spinful=%d E(dense)=%.12f E(imag)=%.12f var=%.2e "
                "steps=%zu matvecs=%zu\n",
                n, spinful ? 1 : 0, e_dense, r.energy, r.variance, r.steps,
                r.matvecs);
    CHECK(r.converged);

    // Pairwise: dense vs Lanczos vs imaginary time. The imaginary-time
    // energy error is bounded by var / gap; var = 1e-12 and gap O(1) puts
    // it far inside 1e-9.
    CHECK_NEAR(e_lanczos, e_dense, 1e-10);
    CHECK_NEAR(r.energy, e_dense, 1e-9);
    CHECK_NEAR(r.energy, e_lanczos, 1e-9);

    // The projected state IS the ground state: overlap deficiency with the
    // dense eigenvector is var / gap^2.
    cplx overlap = 0;
    for (std::size_t i = 0; i < psi.dim(); ++i)
      overlap += std::conj(dense.eigenvectors(i, 0)) * psi[i];
    CHECK_NEAR(std::abs(overlap), 1.0, 1e-8);
    CHECK_NEAR(psi.norm(), 1.0, 1e-12);

    // And it agrees with the Lanczos Ritz vector up to global phase.
    CHECK_NEAR(vec_diff_up_to_phase(lan.ritz_vector(0), psi.amps()), 0.0,
               1e-5);
  }

  // -- a product-state start (the CDW quench state) projects too. [H, N] = 0
  // confines both Krylov methods to the start state's particle-number
  // sector, so the reference is Lanczos FROM THE SAME START, not the global
  // dense ground state (which may live at another filling) ------------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 3.0;
    p.mu = 0.1;
    const ScbSum h = hubbard_scb(p);
    StateVector psi = StateVector::product(6, hubbard_cdw_occupation(p));
    LanczosOptions lo;
    lo.k = 1;
    lo.tol = 1e-11;
    Lanczos lan(h, lo);
    const double e_sector = lan.solve(psi.amps()).eigenvalues[0];
    ImagTimeOptions io;
    io.variance_tol = 1e-12;
    const ImagTimeResult r = imag_time_ground_state(h, psi, io);
    CHECK(r.converged);
    CHECK_NEAR(r.energy, e_sector, 1e-9);
  }

  // -- stopping: an unreachable variance target exhausts max_steps ----------
  {
    HubbardParams p;
    p.lx = 4;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    StateVector psi = StateVector::random(4, 3);
    ImagTimeOptions io;
    io.variance_tol = 0.0;  // exact eigenstate: unreachable in fp
    io.max_steps = 5;
    const ImagTimeResult r = imag_time_ground_state(h, psi, io);
    CHECK(!r.converged);
    CHECK_EQ(r.steps, std::size_t{5});
  }

  // -- error paths ----------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 4;
    const ScbSum h = hubbard_scb(p);
    bool threw = false;
    try {
      StateVector psi(5);  // wrong dimension
      imag_time_ground_state(h, psi);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      StateVector psi(4);
      ImagTimeOptions io;
      io.dt = 0.0;
      imag_time_ground_state(h, psi, io);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  return gecos::test::finish("test_imag_time");
}
