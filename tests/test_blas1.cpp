// BLAS-1 kernel suite: every parallel vector kernel in linalg/blas1.hpp
// against a straightforward serial reference, at sizes below and above the
// parallel_for grain so both the inline and the pooled path are exercised.
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "linalg/blas1.hpp"
#include "simd/simd.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

using namespace gecos;

namespace {

std::vector<cplx> random_vec(std::size_t n, std::mt19937& rng) {
  std::normal_distribution<double> g;
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(g(rng), g(rng));
  return v;
}

}  // namespace

int main() {
  std::mt19937 rng(20260730);
  // One size well below the parallel grain (serial inline path) and one well
  // above it (pooled path); the results must agree with the serial reference
  // to fp accumulation accuracy either way.
  const std::size_t sizes[] = {257, (std::size_t{1} << 15) + 3};
  for (const std::size_t n : sizes) {
    const std::vector<cplx> a = random_vec(n, rng);
    const std::vector<cplx> b = random_vec(n, rng);
    const cplx s(0.7, -0.4);

    // vec_norm and vec_dot against serial accumulation.
    double nrm2 = 0;
    cplx dot = 0;
    for (std::size_t i = 0; i < n; ++i) {
      nrm2 += std::norm(a[i]);
      dot += std::conj(a[i]) * b[i];
    }
    CHECK_NEAR(vec_norm(a), std::sqrt(nrm2), 1e-11 * std::sqrt(nrm2));
    CHECK_NEAR(std::abs(vec_dot(a, b) - dot), 0.0, 1e-10);
    // <a|a> is real and equals ||a||^2.
    CHECK_NEAR(vec_dot(a, a).imag(), 0.0, 1e-12);
    CHECK_NEAR(vec_dot(a, a).real(), nrm2, 1e-10 * nrm2);

    // vec_axpy and vec_scale.
    std::vector<cplx> y = b;
    vec_axpy(y, s, a);
    double err = 0;
    for (std::size_t i = 0; i < n; ++i)
      err = std::max(err, std::abs(y[i] - (b[i] + s * a[i])));
    CHECK_NEAR(err, 0.0, 1e-14);  // fp-contraction (fma) may differ slightly
    vec_scale(y, s);
    err = 0;
    for (std::size_t i = 0; i < n; ++i)
      err = std::max(err, std::abs(y[i] - (b[i] + s * a[i]) * s));
    CHECK_NEAR(err, 0.0, 1e-13);

    // vec_axpby: the fused y = a x + b y of the Chebyshev recurrence.
    const cplx t(-1.3, 0.2);
    y = b;
    vec_axpby(y, s, a, t);
    err = 0;
    for (std::size_t i = 0; i < n; ++i)
      err = std::max(err, std::abs(y[i] - (s * a[i] + t * b[i])));
    CHECK_NEAR(err, 0.0, 1e-13);

    // vec_copy / vec_fill.
    std::vector<cplx> c(n, cplx(9.0));
    vec_copy(c, a);
    CHECK_NEAR(vec_max_abs_diff(c, a), 0.0, 0.0);
    vec_fill(c, cplx(2.0, 1.0));
    bool all = true;
    for (const cplx& x : c) all &= x == cplx(2.0, 1.0);
    CHECK(all);

    // vec_max_abs_diff: perturb one entry by a known amount.
    c = a;
    c[n / 2] += cplx(0.0, 0.125);
    CHECK_NEAR(vec_max_abs_diff(c, a), 0.125, 1e-15);

    // vec_diff_up_to_phase: a global phase is invisible, anything else not.
    c = a;
    vec_scale(c, std::polar(1.0, 0.8));
    CHECK_NEAR(vec_diff_up_to_phase(c, a), 0.0, 1e-12);
  }

  // random_state is normalized and seeded-deterministic.
  {
    std::mt19937 r1(7), r2(7);
    const std::vector<cplx> u = random_state(512, r1);
    const std::vector<cplx> v = random_state(512, r2);
    CHECK_NEAR(vec_norm(u), 1.0, 1e-12);
    CHECK_NEAR(vec_max_abs_diff(u, v), 0.0, 0.0);
  }

  // Determinism across a fixed thread count: the chunk-ordered reductions
  // give bit-identical results call-to-call.
  {
    const std::vector<cplx> a = random_vec(std::size_t{1} << 15, rng);
    const double n1 = vec_norm(a);
    const double n2 = vec_norm(a);
    CHECK(n1 == n2);
  }

  // Forced-tier sweep: the dispatched kernels give BITWISE-identical
  // reductions and updates under every SIMD tier available on this host
  // (same run splits, bitwise-equal kernels — see src/simd/simd.hpp).
  {
    const SimdTier initial = simd_tier();
    const std::size_t n = (std::size_t{1} << 12) + 5;
    const std::vector<cplx> a = random_vec(n, rng);
    const std::vector<cplx> b = random_vec(n, rng);
    const cplx s(0.3, 0.9), t(0.5, -0.25);
    set_simd_tier(SimdTier::scalar);
    const double nrm = vec_norm(a);
    const cplx dot = vec_dot(a, b);
    std::vector<cplx> yref = b;
    vec_axpy(yref, s, a);
    vec_axpby(yref, s, a, t);
    vec_scale(yref, s);
    for (SimdTier tier : {SimdTier::avx2, SimdTier::avx512}) {
      if (!simd_tier_available(tier)) continue;
      set_simd_tier(tier);
      CHECK(vec_norm(a) == nrm);
      CHECK(vec_dot(a, b) == dot);
      std::vector<cplx> y = b;
      vec_axpy(y, s, a);
      vec_axpby(y, s, a, t);
      vec_scale(y, s);
      CHECK_NEAR(vec_max_abs_diff(y, yref), 0.0, 0.0);
    }
    set_simd_tier(initial);
  }

  // Numerical-health guards: a NaN or Inf anywhere in a reduction input
  // surfaces as Error{numerical_nan} instead of poisoning downstream math.
  // Both the serial-inline and the pooled path, and both contaminants.
  {
    const auto throws_nan = [](const auto& fn) {
      try {
        fn();
      } catch (const Error& e) {
        return e.kind() == ErrorKind::numerical_nan;
      }
      return false;
    };
    for (const std::size_t n : sizes) {
      for (const double bad :
           {std::nan(""), std::numeric_limits<double>::infinity()}) {
        std::vector<cplx> a = random_vec(n, rng);
        const std::vector<cplx> b = random_vec(n, rng);
        a[n / 3] = cplx(bad, 0.0);
        CHECK(throws_nan([&] { (void)vec_norm(a); }));
        CHECK(throws_nan([&] { (void)vec_dot(a, b); }));
        CHECK(throws_nan([&] { (void)vec_dot(b, a); }));
      }
      // Clean vectors of the same size keep not throwing.
      const std::vector<cplx> a = random_vec(n, rng);
      (void)vec_norm(a);
    }
  }

  return gecos::test::finish("test_blas1");
}
