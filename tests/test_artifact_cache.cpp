// Artifact-cache suite: hit/miss accounting and pointer identity, the
// type-checked key collision rule, LRU eviction under a byte budget with
// pinned entries exempt, clear() semantics, and the three serve-layer
// artifact builders (Hamiltonian ScbSum, compiled sector operator, compiled
// observable) — including the headline warm-path property that a cache hit
// skips kernel compilation and sector-table construction entirely
// (telemetry deltas pinned at zero).
#include <cmath>
#include <memory>
#include <vector>

#include "serve/artifact_cache.hpp"
#include "symmetry/sector_vector.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"

using namespace gecos;
using namespace gecos::serve;

namespace {

/// A payload with a visible size for budget tests.
using Blob = std::vector<unsigned char>;

std::shared_ptr<const Blob> make_blob(std::size_t n) {
  return std::make_shared<const Blob>(n, 0xab);
}

auto blob_bytes = [](const Blob& b) { return b.size(); };

HubbardParams quick_lattice() {
  HubbardParams p;
  p.lx = 3;
  p.ly = 2;
  p.t = 1.0;
  p.u = 4.0;
  p.mu = 0.5;
  p.periodic_x = true;
  p.spinful = true;
  return p;
}

}  // namespace

int main() {
  set_num_threads(2);

  // -- miss, hit, pointer identity ------------------------------------------
  {
    ArtifactCache cache(1 << 20);
    int builds = 0;
    const auto build = [&] {
      ++builds;
      return make_blob(64);
    };
    const auto a = cache.get_or_build<Blob>(1, build, blob_bytes);
    CHECK_EQ(builds, 1);
    CHECK_EQ(cache.misses(), 1u);
    CHECK_EQ(cache.hits(), 0u);
    const auto b = cache.get_or_build<Blob>(1, build, blob_bytes);
    CHECK_EQ(builds, 1);  // second lookup never calls build
    CHECK_EQ(cache.hits(), 1u);
    CHECK(a.get() == b.get());  // pointer identity, not just equality
    CHECK_EQ(cache.resident_entries(), 1u);
    CHECK_EQ(cache.resident_bytes(), 64u);
  }

  // -- a key colliding across types is a miss, never a wrong-type cast ------
  {
    ArtifactCache cache(1 << 20);
    const auto blob = cache.get_or_build<Blob>(7, [] { return make_blob(8); },
                                               blob_bytes);
    const auto ints = cache.get_or_build<std::vector<int>>(
        7, [] { return std::make_shared<const std::vector<int>>(4, -1); },
        [](const std::vector<int>& v) { return v.size() * sizeof(int); });
    CHECK_EQ(cache.misses(), 2u);  // same key, different type: both build
    CHECK(ints->size() == 4 && ints->at(0) == -1);
    CHECK(blob->size() == 8);
  }

  // -- LRU eviction under the byte budget -----------------------------------
  {
    ArtifactCache cache(100);
    // A is released back to the cache (unpinned); B arrives and pushes the
    // total over budget, so A — the least recently used unpinned entry —
    // is evicted.
    cache.get_or_build<Blob>(1, [] { return make_blob(60); }, blob_bytes);
    const auto b = cache.get_or_build<Blob>(
        2, [] { return make_blob(60); }, blob_bytes);
    CHECK_EQ(cache.evictions(), 1u);
    CHECK_EQ(cache.resident_entries(), 1u);
    CHECK_EQ(cache.resident_bytes(), 60u);
    // A rebuilds on the next request (a fresh miss).
    int rebuilds = 0;
    cache.get_or_build<Blob>(1,
                             [&] {
                               ++rebuilds;
                               return make_blob(60);
                             },
                             blob_bytes);
    CHECK_EQ(rebuilds, 1);
    (void)b;
  }

  // -- pinned entries are never evicted: the budget bounds idle bytes -------
  {
    ArtifactCache cache(100);
    auto a = cache.get_or_build<Blob>(1, [] { return make_blob(60); },
                                      blob_bytes);
    auto b = cache.get_or_build<Blob>(2, [] { return make_blob(60); },
                                      blob_bytes);
    // Both pinned by the local shared_ptrs: over budget, zero evictions.
    CHECK_EQ(cache.evictions(), 0u);
    CHECK_EQ(cache.resident_entries(), 2u);
    CHECK_EQ(cache.resident_bytes(), 120u);
    // Release both and insert C: the sweep now drops the idle A and B,
    // keeping only C within budget.
    a.reset();
    b.reset();
    const auto c = cache.get_or_build<Blob>(
        3, [] { return make_blob(60); }, blob_bytes);
    CHECK_EQ(cache.evictions(), 2u);
    CHECK_EQ(cache.resident_entries(), 1u);
    CHECK(c->size() == 60);
  }

  // -- clear() drops unpinned entries and keeps pinned ones -----------------
  {
    ArtifactCache cache(1 << 20);
    const auto pinned = cache.get_or_build<Blob>(
        1, [] { return make_blob(16); }, blob_bytes);
    cache.get_or_build<Blob>(2, [] { return make_blob(16); }, blob_bytes);
    cache.clear();
    // The pinned entry survived: next lookup is a hit with the same object.
    const auto again = cache.get_or_build<Blob>(
        1, [] { return make_blob(16); }, blob_bytes);
    CHECK(again.get() == pinned.get());
    // The unpinned entry was dropped: next lookup rebuilds.
    int rebuilds = 0;
    cache.get_or_build<Blob>(2,
                             [&] {
                               ++rebuilds;
                               return make_blob(16);
                             },
                             blob_bytes);
    CHECK_EQ(rebuilds, 1);
  }

  // -- serve artifact builders: identity across calls, keyed by content -----
  {
    ArtifactCache cache(std::size_t{256} << 20);
    const HubbardParams p = quick_lattice();

    const auto h1 = cached_hubbard(cache, p);
    const auto h2 = cached_hubbard(cache, p);
    CHECK(h1.get() == h2.get());
    HubbardParams p2 = p;
    p2.u = 4.25;
    CHECK(cached_hubbard(cache, p2).get() != h1.get());

    const auto s1 = cached_sector_op(cache, p, 3, 3);
    const auto s2 = cached_sector_op(cache, p, 3, 3);
    CHECK(s1.get() == s2.get());
    CHECK(cached_sector_op(cache, p, 2, 2).get() != s1.get());

    const ObservableSpec obs{ObservableKind::kDensity, 1, 0};
    const auto o1 = cached_observable(cache, p, 3, 3, obs);
    const auto o2 = cached_observable(cache, p, 3, 3, obs);
    CHECK(o1.get() == o2.get());
    const ObservableSpec other{ObservableKind::kDensity, 2, 0};
    CHECK(cached_observable(cache, p, 3, 3, other).get() != o1.get());
    // Same site, different kind: a distinct artifact.
    const ObservableSpec doublon{ObservableKind::kDoublon, 1, 0};
    CHECK(cached_observable(cache, p, 3, 3, doublon).get() != o1.get());
  }

  // -- the warm path skips kernel compiles and sector-table builds ----------
  {
    telemetry::set_metrics_enabled(true);
    ArtifactCache cache(std::size_t{256} << 20);
    const HubbardParams p = quick_lattice();

    const auto before_cold = telemetry::metrics_snapshot();
    const auto op = cached_sector_op(cache, p, 3, 3);
    const auto after_cold = telemetry::metrics_snapshot();
    const auto cold = telemetry::metrics_delta(before_cold, after_cold);
    CHECK(cold.counter(telemetry::Counter::kernel_compiles) > 0);
    CHECK(cold.counter(telemetry::Counter::artifact_misses) > 0);

    const auto before_warm = telemetry::metrics_snapshot();
    const auto warm_op = cached_sector_op(cache, p, 3, 3);
    const auto after_warm = telemetry::metrics_snapshot();
    const auto warm = telemetry::metrics_delta(before_warm, after_warm);
    CHECK(warm_op.get() == op.get());
    CHECK_EQ(warm.counter(telemetry::Counter::kernel_compiles), 0u);
    CHECK_EQ(warm.counter(telemetry::Counter::sector_table_builds), 0u);
    CHECK(warm.counter(telemetry::Counter::artifact_hits) > 0);
    CHECK_EQ(warm.counter(telemetry::Counter::artifact_misses), 0u);
    telemetry::set_metrics_enabled(false);

    // And the cached operator actually computes: a Hermitian expectation
    // on the rank-0 sector state is finite and real.
    const SectorVector v(op->basis());
    const cplx e = v.expectation(*op);
    CHECK(std::isfinite(e.real()));
    CHECK_NEAR(e.imag(), 0.0, 1e-12);
  }

  return gecos::test::finish("test_artifact_cache");
}
