// Threading layer: parallel_for coverage and chunk bookkeeping, scatter_bits
// random access into the subset walk, and thread-count invariance of the
// parallel kernels (same answers at 1 and several workers).
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "linalg/blas1.hpp"
#include "fermion/hubbard.hpp"
#include "ops/scb_sum.hpp"
#include "state/state_vector.hpp"
#include "test_util.hpp"
#include "util/bits.hpp"
#include "util/parallel.hpp"

using namespace gecos;

int main() {
  const int saved_threads = num_threads();
  std::mt19937 rng(5);

  // scatter_bits is the k-th subset of the mask in ascending order — check
  // against the (sub - mask) & mask successor walk.
  {
    const std::uint64_t mask = 0b1011010110;
    std::uint64_t sub = 0;
    for (std::uint64_t k = 0;; ++k) {
      CHECK_EQ(scatter_bits(k, mask), sub);
      if (sub == mask) break;
      sub = (sub - mask) & mask;
    }
    CHECK_EQ(scatter_bits(0, 0), std::uint64_t{0});
  }

  // parallel_for covers [0, n) exactly once with in-range chunk ids, at
  // several thread-count settings and with a grain forcing real dispatch.
  for (int t : {1, 2, 3, 5}) {
    set_num_threads(t);
    const std::size_t n = 100000;
    std::vector<std::atomic<int>> hits(n);
    std::atomic<bool> chunk_ok{true};
    parallel_for(
        n,
        [&](std::size_t b, std::size_t e, int chunk) {
          if (chunk < 0 || chunk >= num_threads()) chunk_ok = false;
          for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
        },
        /*grain=*/1);
    CHECK(chunk_ok.load());
    bool all_once = true;
    for (std::size_t i = 0; i < n; ++i) all_once &= hits[i].load() == 1;
    CHECK(all_once);
  }

  // Zero-length and tiny ranges stay serial and correct.
  {
    set_num_threads(4);
    int calls = 0;
    parallel_for(0, [&](std::size_t, std::size_t, int) { ++calls; });
    CHECK_EQ(calls, 0);
    std::vector<int> seen(3, 0);
    parallel_for(3, [&](std::size_t b, std::size_t e, int) {
      for (std::size_t i = b; i < e; ++i) seen[i] = 1;
    });
    CHECK_EQ(seen[0] + seen[1] + seen[2], 3);
  }

  // Thread-count invariance of the statevector kernels on a real workload:
  // Hubbard chain apply and reductions agree between 1 and 4 workers.
  {
    HubbardParams p;
    p.lx = 12;
    p.t = 1.0;
    p.u = 2.0;
    p.mu = 0.4;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const PauliSum hp = h.to_pauli();
    const StateVector x = StateVector::random(12, 8);

    set_num_threads(1);
    std::vector<cplx> y1(x.dim());
    h.apply(x.amps(), y1);
    std::vector<cplx> yp1(x.dim());
    hp.apply(x.amps(), yp1);
    const double n1 = vec_norm(y1);
    const cplx d1 = vec_dot(x.amps(), y1);

    set_num_threads(4);
    std::vector<cplx> y4(x.dim());
    h.apply(x.amps(), y4);
    std::vector<cplx> yp4(x.dim());
    hp.apply(x.amps(), yp4);

    CHECK_NEAR(vec_max_abs_diff(y1, y4), 0.0, 0.0);  // identical per term
    CHECK_NEAR(vec_max_abs_diff(yp1, yp4), 0.0, 0.0);
    CHECK_NEAR(vec_norm(y4) - n1, 0.0, 1e-12);
    CHECK_NEAR(vec_dot(x.amps(), y4) - d1, 0.0, 1e-12);
    CHECK_NEAR(vec_max_abs_diff(y1, yp1), 0.0, 1e-11);  // SCB == Pauli

    // axpy and scale across the pool.
    std::vector<cplx> a1(y1), a4(y1);
    set_num_threads(1);
    vec_axpy(a1, cplx(0.5, -0.25), x.amps());
    vec_scale(a1, cplx(1.5));
    set_num_threads(4);
    vec_axpy(a4, cplx(0.5, -0.25), x.amps());
    vec_scale(a4, cplx(1.5));
    CHECK_NEAR(vec_max_abs_diff(a1, a4), 0.0, 0.0);
  }

  // Concurrent const use from two application threads: both expectation
  // calls race on the first-use kernel-cache rebuild of a shared const
  // ScbSum and issue overlapping parallel_for dispatches (serialized by the
  // pool). Results must match the single-threaded answer; the CI ASan leg
  // guards the memory safety of this path.
  {
    set_num_threads(2);
    HubbardParams p;
    p.lx = 10;
    p.t = 1.0;
    p.u = 3.0;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);  // fresh: kernel cache not built yet
    const StateVector x = StateVector::random(10, 17);
    // Per-thread StateVector copies: the internal expectation scratch is
    // per-object and not safe to share across threads (see state_vector.hpp).
    const StateVector xa = x, xb = x;
    cplx ea, eb;
    std::thread ta([&] { ea = xa.expectation(h); });
    std::thread tb([&] { eb = xb.expectation(h); });
    ta.join();
    tb.join();
    set_num_threads(1);
    const cplx expect = x.expectation(h);
    CHECK_NEAR(ea - expect, 0.0, 1e-12);
    CHECK_NEAR(eb - expect, 0.0, 1e-12);
  }

  // The knob clamps to >= 1.
  set_num_threads(0);
  CHECK_EQ(num_threads(), 1);

  set_num_threads(saved_threads);
  return gecos::test::finish("test_parallel");
}
