// Telemetry suite: strict env policy (in a re-exec'd child process),
// histogram percentiles against a sorted reference, counter merge across
// thread shards at 1 and 4 workers, span nesting and thread attribution,
// the TraceWriter JSON output, bit-identical solver trajectories with
// telemetry on vs off, solver progress callbacks and per-iteration
// histories, and the zero-allocation pin with telemetry disabled AND with
// warm enabled shards.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <sys/wait.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>
// clang-format on

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "ops/scb_sum.hpp"
#include "simd/simd.hpp"
#include "solver/imag_time.hpp"
#include "solver/krylov_evolve.hpp"
#include "solver/lanczos.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"

using namespace gecos;
namespace tel = gecos::telemetry;

namespace {

/// Child half of the env-policy tests: this binary re-exec'd with one
/// GECOS_* variable set. Static init (telemetry::init_from_env) already ran
/// — a bad GECOS_METRICS / GECOS_TRACE exited 2 before reaching main. The
/// lazily parsed knobs are forced here: a bad GECOS_THREADS / GECOS_SIMD
/// throws and maps to exit 3. A valid environment records one span (so a
/// GECOS_TRACE file has content) and exits 0.
int env_child_main() {
  try {
    (void)num_threads();
    (void)simd_tier();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "env-child: %s\n", e.what());
    return 3;
  }
  { GECOS_SPAN("test.child"); }
  return 0;
}

/// Forks, pins the child environment to exactly one GECOS_* setting
/// (value == nullptr means "unset"), re-execs this binary in --env-child
/// mode and returns the child's exit status (128 + signal on a crash).
int run_env_child(const char* var, const char* value) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::unsetenv("GECOS_METRICS");
    ::unsetenv("GECOS_TRACE");
    ::unsetenv("GECOS_THREADS");
    ::unsetenv("GECOS_SIMD");
    if (value != nullptr) ::setenv(var, value, 1);
    const char* argv[] = {"test_telemetry", "--env-child", nullptr};
    ::execv("/proc/self/exe", const_cast<char**>(argv));
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// The small deterministic Hamiltonian the solver tests reuse: a periodic
/// n = 8 Hubbard ring (same system test_lanczos pins against dense eigh).
ScbSum ring8() {
  HubbardParams p;
  p.lx = 8;
  p.u = 2.0;
  p.mu = 0.3;
  p.periodic_x = true;
  return hubbard_scb(p);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--env-child") == 0)
    return env_child_main();

  // -- env policy in a fresh process: strict parses, loud failures ---------
  // (first, before this process starts pool threads)
  {
    CHECK_EQ(run_env_child("GECOS_THREADS", "4"), 0);
    CHECK_EQ(run_env_child("GECOS_THREADS", "abc"), 3);
    CHECK_EQ(run_env_child("GECOS_THREADS", "0"), 3);
    CHECK_EQ(run_env_child("GECOS_THREADS", "4 "), 3);
    CHECK_EQ(run_env_child("GECOS_SIMD", "scalar"), 0);
    CHECK_EQ(run_env_child("GECOS_SIMD", "sse9"), 3);
    CHECK_EQ(run_env_child("GECOS_METRICS", "0"), 0);
    CHECK_EQ(run_env_child("GECOS_METRICS", "1"), 0);
    CHECK_EQ(run_env_child("GECOS_METRICS", "yes"), 2);
    CHECK_EQ(run_env_child("GECOS_TRACE", ""), 2);

    // A valid GECOS_TRACE writes the trace file from the atexit hook.
    const std::string path =
        "/tmp/gecos_test_env_trace_" + std::to_string(::getpid()) + ".json";
    std::remove(path.c_str());
    CHECK_EQ(run_env_child("GECOS_TRACE", path.c_str()), 0);
    std::ifstream in(path);
    CHECK(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string trace = ss.str();
    CHECK(trace.find("traceEvents") != std::string::npos);
    CHECK(trace.find("test.child") != std::string::npos);
    std::remove(path.c_str());
  }

  // -- expand_trace_path: every %p becomes the pid, nothing else changes ----
  {
    const std::string pid = std::to_string(::getpid());
    CHECK_EQ(tel::expand_trace_path("plain.json"), std::string("plain.json"));
    CHECK_EQ(tel::expand_trace_path("t_%p.json"), "t_" + pid + ".json");
    CHECK_EQ(tel::expand_trace_path("%p/%p"), pid + "/" + pid);
    CHECK_EQ(tel::expand_trace_path("%p"), pid);
    CHECK_EQ(tel::expand_trace_path(""), std::string(""));
    // A lone trailing % is not a placeholder and passes through.
    CHECK_EQ(tel::expand_trace_path("x%"), std::string("x%"));
    CHECK_EQ(tel::expand_trace_path("x%q"), std::string("x%q"));
  }

  // -- GECOS_TRACE %p: concurrent processes sharing one env value get one
  // file each instead of clobbering a single path (the gecosd scenario) -----
  {
    const std::string dir =
        "/tmp/gecos_test_trace_pp_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string pattern = dir + "/t_%p.json";
    CHECK_EQ(run_env_child("GECOS_TRACE", pattern.c_str()), 0);
    CHECK_EQ(run_env_child("GECOS_TRACE", pattern.c_str()), 0);
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      CHECK(name.rfind("t_", 0) == 0);  // expanded, no literal %p left
      CHECK(name.find('%') == std::string::npos);
      std::ifstream in(entry.path());
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string trace = ss.str();
      CHECK(trace.find("traceEvents") != std::string::npos);
      CHECK(trace.find("test.child") != std::string::npos);
      ++files;
    }
    CHECK_EQ(files, std::size_t{2});  // two children, two distinct files
    std::filesystem::remove_all(dir);
  }

  // -- strict parsers directly: value round-trips and offending tokens ------
  {
    CHECK_EQ(parse_threads_env("1"), 1);
    CHECK_EQ(parse_threads_env("8"), 8);
    CHECK_EQ(parse_threads_env("1024"), 1024);
    for (const char* bad : {"", "abc", "8x", "0", "-2", "1025", " 4"}) {
      bool threw = false;
      try {
        parse_threads_env(bad);
      } catch (const std::invalid_argument& e) {
        threw = true;
        if (bad[0] != '\0')
          CHECK(std::string(e.what()).find(bad) != std::string::npos);
      }
      CHECK(threw);
    }
    CHECK(tel::parse_metrics_env("0") == false);
    CHECK(tel::parse_metrics_env("1") == true);
    for (const char* bad : {"", "2", "true", "on"}) {
      bool threw = false;
      try {
        tel::parse_metrics_env(bad);
      } catch (const std::invalid_argument& e) {
        threw = true;
        CHECK(std::string(e.what()).find("GECOS_METRICS") !=
              std::string::npos);
      }
      CHECK(threw);
    }
    CHECK(parse_simd_tier("scalar") == SimdTier::scalar);
    CHECK(parse_simd_tier("avx2") == SimdTier::avx2);
    CHECK(parse_simd_tier("avx512") == SimdTier::avx512);
    bool threw = false;
    try {
      parse_simd_tier("neon");
    } catch (const std::invalid_argument& e) {
      threw = true;
      CHECK(std::string(e.what()).find("neon") != std::string::npos);
    }
    CHECK(threw);
  }

  // -- histogram buckets: bit_width bins with tight upper bounds ------------
  {
    CHECK_EQ(tel::hist_bucket(0), std::size_t{0});
    CHECK_EQ(tel::hist_bucket(1), std::size_t{1});
    CHECK_EQ(tel::hist_bucket(2), std::size_t{2});
    CHECK_EQ(tel::hist_bucket(3), std::size_t{2});
    CHECK_EQ(tel::hist_bucket(4), std::size_t{3});
    CHECK_EQ(tel::hist_bucket_upper(0), std::uint64_t{0});
    CHECK_EQ(tel::hist_bucket_upper(1), std::uint64_t{1});
    CHECK_EQ(tel::hist_bucket_upper(2), std::uint64_t{3});
    for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{5},
                            std::uint64_t{1} << 20, ~std::uint64_t{0}}) {
      const std::size_t b = tel::hist_bucket(v);
      CHECK(v <= tel::hist_bucket_upper(b));
      CHECK(b == 0 || v > tel::hist_bucket_upper(b - 1));
    }
  }

  // -- histogram percentiles vs a sorted reference: the estimate for any
  // percentile is exactly the bucket upper bound of the rank-matched sample,
  // which brackets the true value within a factor of two -------------------
  {
    const bool metrics_was = tel::metrics_enabled();
    tel::set_metrics_enabled(true);
    const std::size_t n = 2000;
    std::mt19937_64 rng(20260808);
    std::uniform_int_distribution<std::uint64_t> val(1, std::uint64_t{1}
                                                            << 30);
    std::vector<std::uint64_t> ref(n);
    const tel::MetricsSnapshot before = tel::metrics_snapshot();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ref[i] = val(rng);
      sum += ref[i];
      tel::observe(tel::Hist::checkpoint_write_ns, ref[i]);
    }
    const tel::MetricsSnapshot d =
        tel::metrics_delta(before, tel::metrics_snapshot());
    const tel::HistogramSnapshot& h = d.hist(tel::Hist::checkpoint_write_ns);
    CHECK_EQ(h.count, static_cast<std::uint64_t>(n));
    CHECK_EQ(h.sum, sum);
    CHECK_NEAR(h.mean(), static_cast<double>(sum) / static_cast<double>(n),
               1e-6);
    std::sort(ref.begin(), ref.end());
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      const double rank = p / 100.0 * static_cast<double>(n);
      std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
      if (idx == 0) idx = 1;
      const std::uint64_t v = ref[idx - 1];  // rank-matched sorted sample
      const double est = h.percentile(p);
      CHECK_NEAR(est, static_cast<double>(
                          tel::hist_bucket_upper(tel::hist_bucket(v))),
                 0.0);
      CHECK(est >= static_cast<double>(v));
      CHECK(est < 2.0 * static_cast<double>(v));
    }
    tel::set_metrics_enabled(metrics_was);
  }

  // -- counter merge: per-thread shards retire into the totals on thread
  // exit, so a snapshot after the joins sees every increment ----------------
  {
    const bool metrics_was = tel::metrics_enabled();
    tel::set_metrics_enabled(true);
    const tel::MetricsSnapshot before = tel::metrics_snapshot();
    tel::count(tel::Counter::checkpoint_restores, 7);
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.emplace_back(
          [] { tel::count(tel::Counter::checkpoint_restores, 1000); });
    for (std::thread& t : ts) t.join();
    const tel::MetricsSnapshot d =
        tel::metrics_delta(before, tel::metrics_snapshot());
    CHECK_EQ(d.counter(tel::Counter::checkpoint_restores),
             std::uint64_t{4007});
    tel::set_metrics_enabled(metrics_was);
  }

  // -- solver counters at 1 and 4 workers: Counter::matvecs is the logical
  // apply() chokepoint, so its delta matches LanczosResult::matvecs exactly
  // and the matvec_ns histogram records once per apply ----------------------
  {
    const bool metrics_was = tel::metrics_enabled();
    const int threads_was = num_threads();
    const ScbSum h = ring8();
    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-10;
    for (int workers : {1, 4}) {
      set_num_threads(workers);
      tel::set_metrics_enabled(true);
      Lanczos solver(h, lo);
      const tel::MetricsSnapshot before = tel::metrics_snapshot();
      const LanczosResult& r = solver.solve();
      const tel::MetricsSnapshot d =
          tel::metrics_delta(before, tel::metrics_snapshot());
      CHECK(r.converged);
      CHECK_EQ(d.counter(tel::Counter::matvecs),
               static_cast<std::uint64_t>(r.matvecs));
      CHECK_EQ(d.hist(tel::Hist::matvec_ns).count,
               static_cast<std::uint64_t>(r.matvecs));
      CHECK(d.counter(tel::Counter::kernel_sweeps) > 0);
      CHECK(d.counter(tel::Counter::amplitudes_touched) > 0);
      CHECK(d.counter(tel::Counter::bytes_moved) >
            d.counter(tel::Counter::amplitudes_touched));
      CHECK_EQ(d.gauge(tel::Gauge::threads),
               static_cast<std::int64_t>(workers));
      std::printf("lanczos @%d workers: matvecs=%llu sweeps=%llu\n", workers,
                  static_cast<unsigned long long>(
                      d.counter(tel::Counter::matvecs)),
                  static_cast<unsigned long long>(
                      d.counter(tel::Counter::kernel_sweeps)));
    }
    tel::set_metrics_enabled(metrics_was);
    set_num_threads(threads_was);
  }

  // -- span nesting, depth and thread attribution ---------------------------
  {
    const bool tracing_was = tel::tracing_enabled();
    tel::set_tracing_enabled(true);
    tel::trace_clear();
    {
      GECOS_SPAN("test.outer");
      { GECOS_SPAN("test.inner"); }
      { GECOS_SPAN("test.inner"); }
    }
    std::thread worker([] { GECOS_SPAN("test.worker"); });
    worker.join();
    const std::vector<tel::TraceEvent> evs = tel::trace_events();
    CHECK_EQ(tel::trace_dropped_events(), std::uint64_t{0});
    std::size_t outer = 0, inner = 0, other = 0;
    std::uint32_t outer_tid = 0, worker_tid = 0;
    std::uint64_t outer_ts = 0, outer_end = 0;
    for (const tel::TraceEvent& e : evs) {
      if (std::strcmp(e.name, "test.outer") == 0) {
        ++outer;
        CHECK_EQ(e.depth, std::uint32_t{0});
        outer_tid = e.tid;
        outer_ts = e.ts_ns;
        outer_end = e.ts_ns + e.dur_ns;
      } else if (std::strcmp(e.name, "test.worker") == 0) {
        ++other;
        CHECK_EQ(e.depth, std::uint32_t{0});
        worker_tid = e.tid;
      }
    }
    for (const tel::TraceEvent& e : evs) {
      if (std::strcmp(e.name, "test.inner") == 0) {
        ++inner;
        CHECK_EQ(e.depth, std::uint32_t{1});
        CHECK_EQ(e.tid, outer_tid);
        CHECK(e.ts_ns >= outer_ts);
        CHECK(e.ts_ns + e.dur_ns <= outer_end);
      }
    }
    CHECK_EQ(outer, std::size_t{1});
    CHECK_EQ(inner, std::size_t{2});
    CHECK_EQ(other, std::size_t{1});
    CHECK(worker_tid != outer_tid);

    // TraceWriter: the events above serialize as loadable trace JSON.
    const std::string path =
        "/tmp/gecos_test_trace_" + std::to_string(::getpid()) + ".json";
    const tel::TraceWriter tw;
    CHECK(tw.write_file(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    CHECK(!json.empty() && json.front() == '{');
    CHECK(json.find("\"traceEvents\"") != std::string::npos);
    CHECK(json.find("test.outer") != std::string::npos);
    CHECK(json.find("\"ph\": \"X\"") != std::string::npos);
    std::remove(path.c_str());

    tel::trace_clear();
    CHECK(tel::trace_events().empty());
    tel::set_tracing_enabled(tracing_was);
  }

  // -- telemetry never changes the numbers: bit-identical trajectories with
  // metrics + tracing on vs off ---------------------------------------------
  {
    const ScbSum h = ring8();
    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-10;
    tel::set_metrics_enabled(false);
    tel::set_tracing_enabled(false);
    Lanczos off(h, lo);
    const LanczosResult r_off = off.solve();  // copy: solver reuses buffers
    tel::set_metrics_enabled(true);
    tel::set_tracing_enabled(true);
    Lanczos on(h, lo);
    const LanczosResult& r_on = on.solve();
    CHECK_EQ(r_off.iterations, r_on.iterations);
    CHECK_EQ(r_off.matvecs, r_on.matvecs);
    CHECK_EQ(r_off.residual_history.size(), r_on.residual_history.size());
    bool identical = r_off.eigenvalues == r_on.eigenvalues &&
                     r_off.residual_history == r_on.residual_history;
    CHECK(identical);

    std::vector<cplx> psi_off(h.dim()), psi_on(h.dim());
    std::mt19937_64 rng(20260808);
    std::normal_distribution<double> g;
    for (std::size_t i = 0; i < h.dim(); ++i)
      psi_off[i] = psi_on[i] = cplx(g(rng), g(rng));
    ImagTimeOptions io;
    io.dt = 0.3;
    io.max_steps = 40;
    io.variance_tol = 1e-8;
    tel::set_metrics_enabled(false);
    tel::set_tracing_enabled(false);
    const ImagTimeResult i_off = imag_time_ground_state(h, psi_off, io);
    tel::set_metrics_enabled(true);
    tel::set_tracing_enabled(true);
    const ImagTimeResult i_on = imag_time_ground_state(h, psi_on, io);
    tel::set_metrics_enabled(false);
    tel::set_tracing_enabled(false);
    CHECK_EQ(i_off.steps, i_on.steps);
    identical = i_off.energy == i_on.energy &&
                i_off.energy_history == i_on.energy_history &&
                i_off.variance_history == i_on.variance_history &&
                psi_off == psi_on;
    CHECK(identical);
    tel::trace_clear();
  }

  // -- progress callbacks and per-iteration histories -----------------------
  {
    const ScbSum h = ring8();
    std::vector<tel::ProgressEvent> events;

    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-10;
    lo.progress = [&](const tel::ProgressEvent& e) { events.push_back(e); };
    Lanczos solver(h, lo);
    const LanczosResult& r = solver.solve();
    CHECK(r.converged);
    CHECK(!events.empty());
    for (std::size_t i = 0; i < events.size(); ++i) {
      CHECK(std::strcmp(events[i].phase, "lanczos") == 0);
      CHECK(events[i].elapsed_s >= 0.0);
      CHECK_NEAR(events[i].target, lo.tol, 0.0);
      if (i > 0) {
        CHECK(events[i].iteration > events[i - 1].iteration);
        CHECK(events[i].matvecs >= events[i - 1].matvecs);
      }
    }
    CHECK(!r.residual_history.empty());
    CHECK(r.residual_history.back() <= lo.tol);
    CHECK_EQ(r.restart_history.size(), r.restarts);

    // KrylovEvolver: phase "krylov" once per committed substep, and the
    // per-extension Saad residual estimates land in last_step().
    events.clear();
    KrylovEvolver ev(h, KrylovOptions{});
    ev.set_progress([&](const tel::ProgressEvent& e) { events.push_back(e); });
    std::vector<cplx> psi(h.dim(), cplx(0.0));
    psi[1] = cplx(1.0);
    ev.apply_expm(cplx(0.0, -0.5), psi);
    CHECK_NEAR(vec_norm(psi), 1.0, 1e-12);
    const KrylovStepInfo& info = ev.last_step();
    CHECK(info.matvecs > 0);
    CHECK(info.subspace > 0);
    CHECK(info.substeps >= 1);
    CHECK(!info.residual_history.empty());
    CHECK_EQ(events.size(), info.substeps);
    for (const tel::ProgressEvent& e : events)
      CHECK(std::strcmp(e.phase, "krylov") == 0);
    CHECK_NEAR(events.back().metric, 1.0, 1e-9);  // committed fraction

    // imag_time: one history entry per measurement, one progress event per
    // step at interval 1, and the history tails equal the final result.
    events.clear();
    std::vector<cplx> phi(h.dim());
    std::mt19937_64 rng(7);
    std::normal_distribution<double> g;
    for (auto& x : phi) x = cplx(g(rng), g(rng));
    ImagTimeOptions io;
    io.dt = 0.3;
    io.max_steps = 25;
    io.variance_tol = 1e-8;
    io.progress = [&](const tel::ProgressEvent& e) { events.push_back(e); };
    const ImagTimeResult ir = imag_time_ground_state(h, phi, io);
    CHECK_EQ(ir.energy_history.size(), ir.steps + 1);
    CHECK_EQ(ir.variance_history.size(), ir.steps + 1);
    CHECK_NEAR(ir.energy_history.back(), ir.energy, 0.0);
    CHECK_NEAR(ir.variance_history.back(), ir.variance, 0.0);
    CHECK_EQ(events.size(), ir.steps + 1);
    for (const tel::ProgressEvent& e : events)
      CHECK(std::strcmp(e.phase, "imag_time") == 0);

    // eta_from_decay: converged -> 0, no decay -> unknown, decay -> finite.
    CHECK_NEAR(tel::eta_from_decay(1.0, 1e-9, 1e-8, 5.0), 0.0, 0.0);
    CHECK_NEAR(tel::eta_from_decay(1.0, 1.0, 1e-8, 5.0), -1.0, 0.0);
    CHECK_NEAR(tel::eta_from_decay(0.0, 0.5, 1e-8, 5.0), -1.0, 0.0);
    const double eta = tel::eta_from_decay(1.0, 1e-4, 1e-8, 10.0);
    CHECK(eta > 0.0);
    CHECK_NEAR(eta, 10.0, 1e-9);  // equal decades ahead and behind
  }

  // -- allocation pins: a warm re-solve allocates nothing with telemetry
  // disabled (the instrumented hot paths cost one branch) AND with metrics +
  // tracing enabled once shards and rings exist -----------------------------
  {
    const int threads_was = num_threads();
    set_num_threads(4);
    const ScbSum h = ring8();
    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-10;
    Lanczos solver(h, lo);

    tel::set_metrics_enabled(false);
    tel::set_tracing_enabled(false);
    solver.solve();  // warm-up: kernel cache, pool, workspaces
    long before = gecos::test::allocations();
    solver.solve();
    const long disabled_delta = gecos::test::allocations() - before;

    tel::set_metrics_enabled(true);
    tel::set_tracing_enabled(true);
    tel::trace_clear();
    solver.solve();  // warm-up: thread shards, span rings
    before = gecos::test::allocations();
    solver.solve();
    const long enabled_delta = gecos::test::allocations() - before;
    tel::set_metrics_enabled(false);
    tel::set_tracing_enabled(false);
    tel::trace_clear();
    set_num_threads(threads_was);

#if GECOS_ALLOC_PROBE_ACTIVE
    std::printf("alloc probe: disabled=%ld enabled=%ld allocations\n",
                disabled_delta, enabled_delta);
    CHECK_EQ(disabled_delta, 0);
    CHECK_EQ(enabled_delta, 0);
#else
    (void)disabled_delta;
    (void)enabled_delta;
#endif
  }

  return gecos::test::finish("test_telemetry");
}
