#!/usr/bin/env python3
"""CLI-contract test for bench_main.

Pins the argument-handling policy the CI pipeline and the serve-layer job
workspaces depend on:

  * unknown flags and missing flag arguments exit 2 with a usage message,
  * an unwritable --out path fails FAST (the writability probe runs before
    any timed entry, so a typo'd path cannot waste a full bench run),
  * a valid --only + --out run exits 0 and writes a parseable JSON report
    with the gecos-bench-v4 schema,
  * an --only filter matching nothing is an error, not a silent no-op.

Usage: bench_cli_test.py /path/to/bench_main
"""

import json
import os
import subprocess
import sys
import tempfile
import time


def run(args, timeout=600):
    return subprocess.run(
        args, capture_output=True, text=True, timeout=timeout
    )


def main():
    if len(sys.argv) != 2:
        print("usage: bench_cli_test.py /path/to/bench_main", file=sys.stderr)
        return 2
    bench = sys.argv[1]
    failures = 0

    def check(name, cond, detail=""):
        nonlocal failures
        if cond:
            print(f"PASS {name}")
        else:
            failures += 1
            print(f"FAIL {name}: {detail}")

    # Unknown flag: exit 2, usage on stderr, nothing run.
    r = run([bench, "--frobnicate"])
    check("unknown flag exits 2", r.returncode == 2, f"rc={r.returncode}")
    check(
        "unknown flag names itself",
        "--frobnicate" in r.stderr and "usage" in r.stderr,
        r.stderr[:200],
    )

    # --out without its PATH argument: exit 2.
    r = run([bench, "--out"])
    check("--out without arg exits 2", r.returncode == 2, f"rc={r.returncode}")
    check("--out error names the flag", "--out" in r.stderr, r.stderr[:200])

    # Unwritable --out: the probe rejects it before any timed work, so this
    # must come back in seconds, not bench-run minutes.
    bad_out = "/no/such/dir/bench.json"
    t0 = time.monotonic()
    r = run([bench, "--quick", "--out", bad_out])
    elapsed = time.monotonic() - t0
    check("unwritable --out exits 2", r.returncode == 2, f"rc={r.returncode}")
    check(
        "unwritable --out names the path",
        bad_out in r.stderr,
        r.stderr[:200],
    )
    check(
        "unwritable --out fails fast",
        elapsed < 30.0,
        f"took {elapsed:.1f}s — probe ran after the bench?",
    )

    # --only with a filter matching no entry: an error, not an empty report.
    r = run([bench, "--quick", "--only", "no_such_entry_xyz"])
    check("empty --only filter exits 2", r.returncode == 2,
          f"rc={r.returncode}")

    # --list prints entry names without running anything.
    r = run([bench, "--list"], timeout=60)
    check("--list exits 0", r.returncode == 0, f"rc={r.returncode}")
    entries = [line for line in r.stdout.split() if line]
    check("--list prints entries", len(entries) >= 5, r.stdout[:200])

    # Valid --only + --out: exit 0 and a parseable v4 report at the path.
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "report.json")
        r = run([bench, "--quick", "--repeat", "1", "--only", "fermion",
                 "--out", out])
        check("valid --only run exits 0", r.returncode == 0,
              f"rc={r.returncode} stderr={r.stderr[:300]}")
        check("--out file exists", os.path.exists(out), out)
        if os.path.exists(out):
            with open(out) as f:
                report = json.load(f)
            check(
                "report schema is gecos-bench-v4",
                report.get("schema") == "gecos-bench-v4",
                str(report.get("schema")),
            )
            names = [b.get("name", "") for b in report.get("benchmarks", [])]
            check("filtered entries all match", names != [] and all(
                "fermion" in n for n in names), str(names))

    print(f"bench_cli_test: {'FAIL' if failures else 'PASS'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
