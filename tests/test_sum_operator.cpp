// SumOperator algebraic surface: previously only exercised incidentally by
// the solver suites, this pins (1) apply_add scale-factor correctness of
// mixed PauliSum + ScbSum sums against the dense reference matrix, (2)
// Hermiticity of Hermitian-part sums as an operator property
// (<x|A y> == <A x|y>), (3) adjoint consistency of a deliberately
// non-Hermitian mix via dense matrices, and (4) accumulate semantics with
// coefficient folding (coeff into scale, no intermediate buffers).
#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"
#include "ops/pauli.hpp"
#include "ops/scb_sum.hpp"
#include "ops/sum_operator.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// y = M x by dense row sweeps (reference only).
std::vector<cplx> dense_apply(const Matrix& m, const std::vector<cplx>& x) {
  std::vector<cplx> y(m.rows(), cplx(0.0));
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) y[r] += m(r, c) * x[c];
  return y;
}

}  // namespace

int main() {
  const std::size_t n = 6;
  const std::size_t dim = std::size_t{1} << n;
  std::mt19937 rng(20260730);

  // A mixed-representation sum: the SCB Hubbard Hamiltonian plus a Pauli
  // transverse field, with complex combination coefficients.
  HubbardParams p;
  p.lx = 6;
  p.u = 2.0;
  p.mu = 0.3;
  const auto scb = std::make_shared<ScbSum>(hubbard_scb(p));
  auto pauli = std::make_shared<PauliSum>(n);
  for (std::size_t q = 0; q < n; ++q) {
    std::vector<Scb> ops(n, Scb::I);
    ops[q] = Scb::X;
    pauli->add(PauliString(ops), cplx(0.25));
    ops[q] = Scb::Z;
    pauli->add(PauliString(ops), cplx(-0.4));
  }

  const cplx ca(0.8, 0.0), cb(-1.3, 0.0);
  SumOperator sum;
  sum.add(scb, ca);
  sum.add(pauli, cb);
  CHECK_EQ(sum.size(), std::size_t{2});
  CHECK_EQ(sum.n_qubits(), n);

  const Matrix dense =
      scb->to_matrix() * ca + pauli->to_matrix(n) * cb;

  // -- apply_add scale-factor correctness vs dense ---------------------------
  {
    const std::vector<cplx> x = random_state(dim, rng);
    for (const cplx s : {cplx(1.0), cplx(0.0), cplx(-0.7, 0.0),
                         cplx(0.3, -1.1)}) {
      std::vector<cplx> y(dim, cplx(0.2, -0.1));  // nonzero: accumulate check
      std::vector<cplx> expect = y;
      const std::vector<cplx> dx = dense_apply(dense, x);
      for (std::size_t i = 0; i < dim; ++i) expect[i] += s * dx[i];
      sum.apply_add(x, y, s);
      CHECK(vec_max_abs_diff(y, expect) < 1e-12);
    }
  }

  // -- Hermiticity as an operator property -----------------------------------
  // Both parts are Hermitian and the combination is real, so the sum must
  // satisfy <x|A y> == conj(<y|A x>) on random states.
  {
    CHECK(scb->is_hermitian());
    CHECK(pauli->is_hermitian());
    const std::vector<cplx> x = random_state(dim, rng);
    const std::vector<cplx> y = random_state(dim, rng);
    std::vector<cplx> ax(dim), ay(dim);
    sum.apply(x, ax);
    sum.apply(y, ay);
    const cplx xay = vec_dot(x, ay);   // <x|A y>
    const cplx yax = vec_dot(y, ax);   // <y|A x>
    CHECK(std::abs(xay - std::conj(yax)) < 1e-12);
  }

  // -- adjoint of a non-Hermitian mix, via dense references ------------------
  // SumOperator carries no symbolic adjoint; the adjoint identity
  // <x|A y> == <A† x|y> is checked with the dense conjugate transpose.
  {
    SumOperator skew;
    auto lower = std::make_shared<ScbSum>(n);
    std::vector<Scb> word(n, Scb::I);
    word[0] = Scb::Sp;
    word[3] = Scb::Sm;
    lower->add(word, cplx(0.9, 0.4));  // one bare (non-Hermitian) SCB word
    skew.add(lower, cplx(1.0));
    skew.add(pauli, cplx(0.0, 0.5));   // imaginary coefficient breaks H = H†
    const Matrix skew_dense = lower->to_matrix() + pauli->to_matrix(n) * cplx(0.0, 0.5);
    Matrix adj(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        adj(r, c) = std::conj(skew_dense(c, r));

    const std::vector<cplx> x = random_state(dim, rng);
    const std::vector<cplx> y = random_state(dim, rng);
    std::vector<cplx> ay(dim);
    skew.apply(y, ay);
    const std::vector<cplx> adx = dense_apply(adj, x);
    const cplx lhs = vec_dot(x, ay);   // <x|A y>
    cplx rhs(0.0);                     // <A† x|y>
    for (std::size_t i = 0; i < dim; ++i) rhs += std::conj(adx[i]) * y[i];
    CHECK(std::abs(lhs - rhs) < 1e-12);
    // And the operator genuinely is non-Hermitian (the check above is not
    // vacuous).
    double asym = 0.0;
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        asym = std::max(asym,
                        std::abs(skew_dense(r, c) - std::conj(skew_dense(c, r))));
    CHECK(asym > 0.1);
  }

  // -- error paths: null part, qubit mismatch --------------------------------
  {
    SumOperator s2;
    bool threw = false;
    try {
      s2.add(nullptr);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    s2.add(pauli);
    threw = false;
    try {
      HubbardParams q;
      q.lx = 4;
      s2.add(std::make_shared<ScbSum>(hubbard_scb(q)));  // 4 qubits vs 6
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  return gecos::test::finish("test_sum_operator");
}
