// SectorOperator suite: sector-restricted apply against the full-space
// P H P reference (embed -> full matrix-free apply -> project) on Hubbard
// lattices and ad-hoc conserving sums, the per-term classification paths
// (diagonal, hop, filtered XX+YY, statically dead), the symbolic
// conservation rejection, PauliSum-vs-ScbSum construction agreement,
// embed/project round trips, thread-count determinism, and the
// zero-allocation pin on warm sector matvecs.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>
// clang-format on

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "ops/scb_sum.hpp"
#include "symmetry/sector_operator.hpp"
#include "symmetry/sector_vector.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"

using namespace gecos;

namespace {

/// Max |(P H P) x - sector_apply(x)| over a random sector state: embeds x,
/// applies the full-space operator, projects back, and compares against the
/// sector operator's own apply.
double sector_vs_full(const SectorBasis& basis, const ScbSum& h,
                      std::uint64_t seed) {
  const SectorOperator hs(basis, h);
  SectorVector x = SectorVector::random(basis, seed);

  SectorVector y_sector = x;
  y_sector.apply(hs);

  StateVector full = x.embed();
  full.apply(h);
  const SectorVector y_full = SectorVector::project(basis, full);
  return y_sector.max_abs_diff(y_full);
}

}  // namespace

int main() {
  // -- Hubbard lattices: sector apply == projected full apply ----------------
  {
    HubbardParams p1;  // spinless periodic ring
    p1.lx = 8;
    p1.u = 2.0;
    p1.mu = 0.3;
    p1.periodic_x = true;
    const ScbSum h1 = hubbard_scb(p1);
    for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{7}})
      CHECK(sector_vs_full(hubbard_sector(p1, n), h1, 11 + n) < 1e-12);

    HubbardParams p2;  // 2D spinful lattice, n = 8
    p2.lx = 2;
    p2.ly = 2;
    p2.u = 4.0;
    p2.mu = 0.5;
    p2.spinful = true;
    const ScbSum h2 = hubbard_scb(p2);
    for (std::size_t up = 0; up <= 2; ++up)
      for (std::size_t dn = 0; dn <= 2; ++dn)
        CHECK(sector_vs_full(hubbard_sector(p2, up, dn), h2, 31 + 4 * up + dn) <
              1e-12);
  }

  // -- filtered kernels: XX+YY conserves as a sum, not per term --------------
  {
    // (X0 X1 + Y0 Y1)/2 = s+_0 s_1 + s_0 s+_1 commutes with N; its X/Y terms
    // have unconstrained flips, so they exercise the membership filter.
    ScbSum hop(3);
    hop.add(ScbTerm::parse("X X I", cplx(0.5), false));
    hop.add(ScbTerm::parse("Y Y I", cplx(0.5), false));
    hop.add(ScbTerm::parse("n I I", cplx(0.7), false));  // a diagonal term too
    for (std::size_t n : {std::size_t{1}, std::size_t{2}})
      CHECK(sector_vs_full(SectorBasis::fixed_number(3, n), hop, 7 + n) <
            1e-13);
  }

  // -- conservation check rejects non-commuting operators --------------------
  {
    ScbSum bad(2);
    bad.add(ScbTerm::parse("X I", cplx(1.0), false));  // [X, N] != 0
    bool threw = false;
    try {
      SectorOperator op(SectorBasis::fixed_number(2, 1), bad);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    // Total-number conserving but NOT per-species conserving: a spin-flip
    // hop must be rejected on the spinful product sector...
    ScbSum flip(4);
    flip.add(ScbTerm::parse("s+ s I I", cplx(1.0), true));  // a+_up a_down
    threw = false;
    try {
      SectorOperator op(SectorBasis::spinful(4, 1, 1), flip);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    // ...but accepted on the total-N sector of the same 4 qubits.
    const SectorOperator ok(SectorBasis::fixed_number(4, 2), flip);
    CHECK(ok.num_kernels() == 2);
  }

  // -- kernel classification: one diagonal + the hop pair of one "+ h.c." ----
  {
    ScbSum h(2);
    h.add(ScbTerm::parse("n I", cplx(1.0), false));
    h.add(ScbTerm::parse("s+ s", cplx(0.25), true));
    const SectorOperator op(SectorBasis::fixed_number(2, 1), h);
    CHECK_EQ(op.num_kernels(), std::size_t{3});  // n, s+ s, and its adjoint
  }

  // -- PauliSum construction path agrees with ScbSum -------------------------
  {
    HubbardParams p;
    p.lx = 4;
    p.u = 1.5;
    p.mu = 0.2;
    const ScbSum h = hubbard_scb(p);
    const SectorBasis b = hubbard_sector(p, 2);
    const SectorOperator from_scb(b, h);
    const SectorOperator from_pauli(b, h.to_pauli());
    SectorVector x = SectorVector::random(b, 5);
    SectorVector ys = x, yp = x;
    ys.apply(from_scb);
    yp.apply(from_pauli);
    CHECK(ys.max_abs_diff(yp) < 1e-12);
  }

  // -- apply_add scale factor and accumulate semantics -----------------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    const SectorBasis b = hubbard_sector(p, 3);
    const SectorOperator hs(b, h);
    const SectorVector x = SectorVector::random(b, 17);
    std::vector<cplx> y(b.dim(), cplx(0.5, -0.25));
    std::vector<cplx> expect = y;
    std::vector<cplx> hx(b.dim(), cplx(0.0));
    hs.apply(x.amps(), hx);
    const cplx s(0.3, -1.1);
    for (std::size_t i = 0; i < expect.size(); ++i) expect[i] += s * hx[i];
    hs.apply_add(x.amps(), y, s);
    CHECK(vec_max_abs_diff(y, expect) < 1e-13);
  }

  // -- embed / project round trip --------------------------------------------
  {
    const SectorBasis b = SectorBasis::spinful(10, 2, 3);
    const SectorVector x = SectorVector::random(b, 23);
    const SectorVector back = SectorVector::project(b, x.embed());
    CHECK_EQ(x.max_abs_diff(back), 0.0);  // lossless: amplitudes are copied
    // Projecting a full random state and re-embedding keeps exactly the
    // sector component.
    const StateVector full = StateVector::random(10, 29);
    const SectorVector proj = SectorVector::project(b, full);
    const StateVector emb = proj.embed();
    double off = 0.0, on = 0.0;
    for (std::uint64_t c = 0; c < full.dim(); ++c) {
      if (b.contains(c))
        on = std::max(on, std::abs(emb[c] - full[c]));
      else
        off = std::max(off, std::abs(emb[c]));
    }
    CHECK_EQ(on, 0.0);
    CHECK_EQ(off, 0.0);
  }

  // -- determinism across thread counts (dim 12870 > parallel grain) ---------
  {
    const SectorBasis b = SectorBasis::fixed_number(16, 8);
    CHECK_EQ(b.dim(), std::size_t{12870});
    ScbSum h(16);
    std::vector<Scb> word(16, Scb::I);
    // A ring of hops plus a staggered diagonal: enough terms to matter.
    for (std::size_t q = 0; q < 16; ++q) {
      word.assign(16, Scb::I);
      word[q] = Scb::Sp;
      word[(q + 1) % 16] = Scb::Sm;
      h.add(word, cplx(0.3, 0.1 * static_cast<double>(q)));
      word[q] = Scb::Sm;
      word[(q + 1) % 16] = Scb::Sp;
      h.add(word, cplx(0.3, -0.1 * static_cast<double>(q)));
      word.assign(16, Scb::I);
      word[q] = Scb::N;
      h.add(word, cplx(q % 2 ? 1.0 : -1.0));
    }
    const SectorOperator hs(b, h);
    const SectorVector x = SectorVector::random(b, 41);
    std::vector<cplx> y1(b.dim(), cplx(0.0)), y4(b.dim(), cplx(0.0));
    set_num_threads(1);
    hs.apply_add(x.amps(), y1, cplx(1.0));
    set_num_threads(4);
    hs.apply_add(x.amps(), y4, cplx(1.0));
    set_num_threads(1);
    bool identical = true;
    for (std::size_t i = 0; i < y1.size(); ++i)
      if (y1[i] != y4[i]) identical = false;
    CHECK(identical);  // bitwise: output partitioning, not just tolerance

    // -- allocation probe: warm sector matvecs allocate nothing --------------
    std::vector<cplx> z(b.dim(), cplx(0.0));
    hs.apply_add(x.amps(), z, cplx(1.0));  // warm-up
    const long before = gecos::test::allocations();
    hs.apply_add(x.amps(), z, cplx(1.0));
    hs.apply_add(x.amps(), z, cplx(0.5, 0.5));
    const long delta = gecos::test::allocations() - before;
#if GECOS_ALLOC_PROBE_ACTIVE
    CHECK_EQ(delta, 0L);
#endif
    std::printf("alloc probe: %ld allocations during warm sector matvecs\n",
                delta);
  }

  return gecos::test::finish("test_sector_op");
}
