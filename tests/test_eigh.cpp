// Analytic-spectrum suite for the dense Hermitian eigensolver (eigh) and
// the small symmetric/tridiagonal solvers behind the Krylov layer.
//
// eigh was previously exercised only through expm_hermitian; here it meets
// closed-form spectra: single Pauli terms (half/half ±1 levels) and the
// U = 0 tight-binding chain, whose many-body spectrum is exactly the set of
// subset sums of the cosine band eps_k = -2 t cos(k pi / (L + 1)) - mu.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sym_eig.hpp"
#include "ops/pauli.hpp"
#include "ops/scb_sum.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// Checks H V = V diag(w) and V unitary for an eigh result.
void check_eigensystem(const Matrix& h, const EigenSystem& es, double tol) {
  const std::size_t n = h.rows();
  CHECK(es.eigenvectors.is_unitary(1e-10));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      cplx hv = 0;
      for (std::size_t k = 0; k < n; ++k)
        hv += h(i, k) * es.eigenvectors(k, j);
      CHECK_NEAR(std::abs(hv - es.eigenvalues[j] * es.eigenvectors(i, j)),
                 0.0, tol);
    }
  }
}

}  // namespace

int main() {
  // -- single Pauli terms: involutions with exactly half the spectrum at -1
  // and half at +1 ----------------------------------------------------------
  {
    const std::vector<std::vector<Scb>> words = {
        {Scb::X},
        {Scb::Z, Scb::X},
        {Scb::Y, Scb::Z, Scb::X},
    };
    for (const auto& w : words) {
      const PauliString s{std::vector<Scb>(w)};
      const Matrix m = s.to_matrix();
      const EigenSystem es = eigh(m);
      const std::size_t dim = m.rows();
      for (std::size_t i = 0; i < dim; ++i) {
        const double expect = i < dim / 2 ? -1.0 : 1.0;
        CHECK_NEAR(es.eigenvalues[i], expect, 1e-12);
      }
      check_eigensystem(m, es, 1e-11);
    }
  }

  // -- tight-binding chain (hubbard_1d at U = 0): the many-body spectrum is
  // all subset sums of the single-particle cosine band ----------------------
  {
    const std::size_t L = 6;
    HubbardParams p;
    p.lx = L;
    p.t = 1.0;
    p.u = 0.0;  // free fermions: exactly solvable
    p.mu = 0.4;
    const Matrix hd = hubbard_scb(p).to_matrix();
    const EigenSystem es = eigh(hd);

    std::vector<double> eps(L);
    for (std::size_t k = 1; k <= L; ++k)
      eps[k - 1] = -2.0 * p.t *
                       std::cos(static_cast<double>(k) * M_PI /
                                (static_cast<double>(L) + 1.0)) -
                   p.mu;
    std::vector<double> expect;
    expect.reserve(std::size_t{1} << L);
    for (std::size_t mask = 0; mask < (std::size_t{1} << L); ++mask) {
      double s = 0;
      for (std::size_t k = 0; k < L; ++k)
        if (mask & (std::size_t{1} << k)) s += eps[k];
      expect.push_back(s);
    }
    std::sort(expect.begin(), expect.end());

    double worst = 0;
    for (std::size_t i = 0; i < expect.size(); ++i)
      worst = std::max(worst, std::abs(es.eigenvalues[i] - expect[i]));
    std::printf("tight-binding L=%zu: worst |eigh - subset-sum| = %.3e\n", L,
                worst);
    CHECK_NEAR(worst, 0.0, 1e-10);
    check_eigensystem(hd, es, 1e-9);
  }

  // -- small symmetric/tridiagonal solvers vs eigh on the same matrices -----
  {
    std::mt19937 rng(17);
    std::normal_distribution<double> g;
    SymEigWorkspace ws;
    for (const std::size_t m : {1ul, 2ul, 7ul, 24ul}) {
      // Random symmetric dense, embedded as a real Hermitian Matrix for the
      // eigh reference.
      std::vector<double> a(m * m);
      Matrix ref(m, m);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j <= i; ++j) {
          const double v = g(rng);
          a[i * m + j] = a[j * m + i] = v;
          ref(i, j) = ref(j, i) = cplx(v);
        }
      const EigenSystem es = eigh(ref);
      eigh_sym(a, m, ws);
      for (std::size_t i = 0; i < m; ++i)
        CHECK_NEAR(ws.d[i], es.eigenvalues[i], 1e-11);

      // Random tridiagonal: eigh_tridiag against eigh_sym of its dense
      // embedding, plus the exp(z T) e1 helper against dense expm.
      std::vector<double> alpha(m), beta(m > 0 ? m - 1 : 0);
      for (auto& x : alpha) x = g(rng);
      for (auto& x : beta) x = g(rng);
      std::vector<double> dense(m * m, 0.0);
      for (std::size_t i = 0; i < m; ++i) dense[i * m + i] = alpha[i];
      for (std::size_t i = 0; i + 1 < m; ++i)
        dense[i * m + i + 1] = dense[(i + 1) * m + i] = beta[i];
      eigh_sym(dense, m, ws);
      std::vector<double> want(ws.d.begin(),
                               ws.d.begin() + static_cast<std::ptrdiff_t>(m));
      eigh_tridiag(alpha, beta, m, ws);
      for (std::size_t i = 0; i < m; ++i) CHECK_NEAR(ws.d[i], want[i], 1e-11);
      // Eigenvectors: T z = d z columnwise.
      for (std::size_t j = 0; j < m; ++j)
        for (std::size_t i = 0; i < m; ++i) {
          double tv = alpha[i] * ws.z[i * m + j];
          if (i > 0) tv += beta[i - 1] * ws.z[(i - 1) * m + j];
          if (i + 1 < m) tv += beta[i] * ws.z[(i + 1) * m + j];
          CHECK_NEAR(tv, ws.d[j] * ws.z[i * m + j], 1e-11);
        }

      const cplx z(0.2, -0.7);
      std::vector<cplx> out(m);
      expm_tridiag_e1(alpha, beta, m, z, out, ws);
      Matrix tz(m, m);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
          tz(i, j) = z * dense[i * m + j];
      const Matrix ez = expm(tz);
      for (std::size_t i = 0; i < m; ++i)
        CHECK_NEAR(std::abs(out[i] - ez(i, 0)), 0.0, 1e-12);
    }
  }

  return gecos::test::finish("test_eigh");
}
