// Lanczos eigensolver suite: k lowest eigenpairs against dense eigh on
// Hubbard lattices up to n = 10, Ritz-vector residuals and orthonormality,
// reorthogonalization-policy agreement, operator-interface genericity
// (ScbSum / PauliSum / CsrMatrix), restart and deflation paths, and the
// zero-allocation-after-warm-up pin via the operator-new probe.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>
// clang-format on

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "linalg/sparse.hpp"
#include "ops/scb_sum.hpp"
#include "ops/sum_operator.hpp"
#include "solver/lanczos.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// Distinct eigenvalues of a dense spectrum (single-vector Krylov reports
/// one Ritz pair per degenerate multiplet, so comparisons go level-by-level
/// against the deduplicated spectrum).
std::vector<double> distinct_levels(const std::vector<double>& w,
                                    double tol = 1e-8) {
  std::vector<double> out;
  for (double v : w)
    if (out.empty() || v - out.back() > tol) out.push_back(v);
  return out;
}

}  // namespace

int main() {
  // -- Hubbard chains and lattices up to n = 10 vs dense eigh ---------------
  struct Case {
    HubbardParams p;
    const char* name;
  };
  std::vector<Case> cases;
  {
    HubbardParams a;  // 1D open chain
    a.lx = 6;
    a.u = 2.0;
    a.mu = 0.3;
    cases.push_back({a, "chain6_open"});
    HubbardParams b;  // 1D periodic ring, n = 8
    b.lx = 8;
    b.u = 2.0;
    b.mu = 0.3;
    b.periodic_x = true;
    cases.push_back({b, "ring8"});
    HubbardParams c;  // 2D spinful 2x2, n = 8
    c.lx = 2;
    c.ly = 2;
    c.u = 4.0;
    c.mu = 0.5;
    c.spinful = true;
    cases.push_back({c, "spinful2x2"});
    HubbardParams d;  // 1D spinful chain, n = 10
    d.lx = 5;
    d.u = 3.0;
    d.mu = 0.2;
    d.spinful = true;
    cases.push_back({d, "spinful5"});
  }

  for (const Case& c : cases) {
    const ScbSum h = hubbard_scb(c.p);
    const std::size_t n = h.num_qubits();
    const std::size_t dim = std::size_t{1} << n;
    const EigenSystem dense = eigh(h.to_matrix());
    const std::vector<double> levels = distinct_levels(dense.eigenvalues);

    LanczosOptions lo;
    lo.k = 3;
    lo.tol = 1e-11;
    Lanczos solver(h, lo);
    const LanczosResult& r = solver.solve();
    CHECK(r.converged);
    std::printf("%-12s n=%zu E0=%.12f matvecs=%zu restarts=%zu\n", c.name, n,
                r.eigenvalues[0], r.matvecs, r.restarts);
    for (std::size_t i = 0; i < lo.k; ++i)
      CHECK_NEAR(r.eigenvalues[i], levels[i], 1e-10);

    // Ritz pairs: true residual ||H y - theta y||, unit norm, mutual
    // orthogonality.
    std::vector<cplx> hy(dim);
    for (std::size_t i = 0; i < lo.k; ++i) {
      const std::span<const cplx> y = solver.ritz_vector(i);
      CHECK_NEAR(vec_norm(y), 1.0, 1e-10);
      h.apply(y, hy);
      vec_axpy(hy, cplx(-r.eigenvalues[i]), y);
      CHECK_NEAR(vec_norm(hy), 0.0, 1e-9);
      for (std::size_t l = 0; l < i; ++l)
        CHECK_NEAR(std::abs(vec_dot(solver.ritz_vector(l), y)), 0.0, 1e-9);
    }
  }

  // -- reorthogonalization policies agree (kNone is the documented ghost
  // factory and is excluded) ------------------------------------------------
  {
    HubbardParams p;
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    LanczosOptions full;
    full.k = 2;
    full.tol = 1e-11;
    LanczosOptions sel = full;
    sel.reorth = LanczosReorth::kSelective;
    Lanczos sf(h, full), ss(h, sel);
    const double e_full = sf.solve().eigenvalues[0];
    const LanczosResult& rs = ss.solve();
    CHECK(rs.converged);
    CHECK_NEAR(rs.eigenvalues[0], e_full, 1e-10);
    std::printf("selective: matvecs=%zu (full %zu)\n", rs.matvecs,
                sf.result().matvecs);
  }

  // -- selective reorth on an adversarial spectrum: a wide PSD diagonal
  // operator where a broken omega recurrence silently converges to Ritz
  // values BELOW the spectrum (regression pin for the in-place-update bug).
  // True residuals are checked, not the solver's own estimates ------------
  {
    const std::size_t nn = 1024;
    std::vector<Triplet> t;
    for (std::size_t i = 0; i < nn; ++i)
      t.push_back({i, i, cplx(static_cast<double>(i * i) / 100.0)});
    const CsrMatrix d(nn, nn, t);
    LanczosOptions lo;
    lo.k = 4;
    lo.tol = 1e-10;
    lo.max_subspace = 60;
    lo.reorth = LanczosReorth::kSelective;
    Lanczos s(d, lo);
    const LanczosResult& r = s.solve();
    CHECK(r.converged);
    std::vector<cplx> hy(nn);
    for (std::size_t i = 0; i < lo.k; ++i) {
      CHECK_NEAR(r.eigenvalues[i], static_cast<double>(i * i) / 100.0, 1e-9);
      const std::span<const cplx> y = s.ritz_vector(i);
      d.apply(y, hy);
      vec_axpy(hy, cplx(-r.eigenvalues[i]), y);
      CHECK_NEAR(vec_norm(hy), 0.0, 1e-8);
    }
  }

  // -- interface genericity: the same spectrum through PauliSum, CsrMatrix
  // and mixed-representation SumOperator backends ---------------------------
  {
    HubbardParams p;
    p.lx = 4;
    p.u = 2.0;
    p.mu = 0.3;
    const ScbSum h = hubbard_scb(p);
    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-11;
    const double e_scb = Lanczos(h, lo).solve().eigenvalues[0];

    const PauliSum hp = h.to_pauli();
    CHECK_NEAR(Lanczos(hp, lo).solve().eigenvalues[0], e_scb, 1e-10);

    const CsrMatrix hc = CsrMatrix::from_dense(h.to_matrix(), 1e-14);
    CHECK_NEAR(Lanczos(hc, lo).solve().eigenvalues[0], e_scb, 1e-10);

    // Mixed sum (H/2 as SCB) + (H/2 as CSR) — still the same operator.
    SumOperator mixed;
    mixed.add(std::make_shared<ScbSum>(h), cplx(0.5));
    mixed.add(std::make_shared<CsrMatrix>(hc), cplx(0.5));
    CHECK_NEAR(Lanczos(mixed, lo).solve().eigenvalues[0], e_scb, 1e-10);
  }

  // -- start-vector overload: beginning at the ground state converges on
  // the spot ---------------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    LanczosOptions lo;
    lo.k = 1;
    lo.tol = 1e-10;
    Lanczos warm(h, lo);
    warm.solve();
    Lanczos cold(h, lo);
    const LanczosResult& r = cold.solve(warm.ritz_vector(0));
    CHECK(r.converged);
    CHECK(r.iterations <= 3);
    CHECK_NEAR(r.eigenvalues[0], warm.result().eigenvalues[0], 1e-10);
  }

  // -- breakdown/deflation: a basis-state start on a diagonal operator is
  // an exact eigenvector, so the first extension breaks down and k = 2
  // forces the random-deflation path ----------------------------------------
  {
    std::vector<Triplet> t;
    for (std::size_t i = 0; i < 16; ++i)
      t.push_back({i, i, cplx(static_cast<double>(i))});
    const CsrMatrix diag(16, 16, t);
    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-10;
    Lanczos solver(diag, lo);
    std::vector<cplx> e0(16, cplx(0.0));
    e0[0] = cplx(1.0);
    const LanczosResult& r = solver.solve(e0);
    CHECK(r.converged);
    CHECK_NEAR(r.eigenvalues[0], 0.0, 1e-9);
    CHECK_NEAR(r.eigenvalues[1], 1.0, 1e-9);
  }

  // -- error paths ----------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 4;
    const ScbSum h = hubbard_scb(p);
    bool threw = false;
    try {
      LanczosOptions lo;
      lo.k = 0;
      Lanczos bad(h, lo);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      LanczosOptions lo;
      lo.k = 10;
      lo.max_subspace = 4;
      Lanczos bad(h, lo);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      const std::vector<cplx> zero(std::size_t{1} << 4, cplx(0.0));
      LanczosOptions lo;
      Lanczos solver(h, lo);
      solver.solve(zero);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // -- allocation probe: after a warm-up solve, a full re-solve on the same
  // object performs ZERO heap allocations (basis, projection, workspace and
  // result storage are all preallocated; the operator's kernel cache is
  // warm) -----------------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 5;
    p.u = 3.0;
    p.mu = 0.2;
    p.spinful = true;  // n = 10
    const ScbSum h = hubbard_scb(p);
    LanczosOptions lo;
    lo.k = 2;
    lo.tol = 1e-10;
    Lanczos solver(h, lo);
    solver.solve();  // warm-up: kernel cache, thread pool, workspaces
    const long before = gecos::test::allocations();
    const LanczosResult& r = solver.solve();
    const long delta = gecos::test::allocations() - before;
    CHECK(r.converged);
#if GECOS_ALLOC_PROBE_ACTIVE
    std::printf("alloc probe: %ld allocations during warm re-solve\n", delta);
    CHECK_EQ(delta, 0);
#else
    (void)delta;
#endif
  }

  return gecos::test::finish("test_lanczos");
}
