// PauliSum (packed flat-hash engine) vs RefPauliSum (legacy ordered map):
// identical algebra on randomized workloads, including the multi-word
// (> 64 qubit) key path, plus the matrix-free statevector apply.
#include "linalg/blas1.hpp"
#include "ops/pauli.hpp"

#include <random>
#include <stdexcept>

#include "ops/pauli_ref.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

PauliString random_string(std::size_t n, std::mt19937& rng) {
  static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  std::vector<Scb> ops(n);
  for (auto& o : ops) o = t[rng() % 4];
  return PauliString(std::move(ops));
}

void check_same(const PauliSum& packed, const RefPauliSum& ref, double tol) {
  CHECK_EQ(packed.size(), ref.size());
  const auto sorted = packed.sorted_terms();
  std::size_t i = 0;
  for (const auto& [rs, rc] : ref.terms()) {
    if (i >= sorted.size()) break;
    CHECK(sorted[i].first == rs);
    CHECK_NEAR(sorted[i].second - rc, 0.0, tol);
    ++i;
  }
}

}  // namespace

int main() {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> cd(-1.0, 1.0);

  // Accumulation with duplicates and cancellations mirrors the map.
  for (std::size_t n : {std::size_t{3}, std::size_t{8}, std::size_t{96}}) {
    PauliSum a(n);
    RefPauliSum r;
    std::vector<PauliString> pool;
    for (int j = 0; j < 40; ++j) pool.push_back(random_string(n, rng));
    for (int j = 0; j < 400; ++j) {
      const PauliString& s = pool[rng() % pool.size()];
      const cplx c(cd(rng), cd(rng));
      a.add(s, c);
      r.add(s, c);
    }
    // Exact cancellation of one live key.
    const PauliString victim = pool[0];
    const cplx vc = a.coeff_of(victim);
    if (vc != cplx(0.0)) {
      a.add(victim, -vc);
      r.add(victim, -vc);
    }
    check_same(a, r, 1e-12);
    CHECK_NEAR(a.one_norm() - r.one_norm(), 0.0, 1e-10);
    CHECK_EQ(a.str(), r.str());

    // Re-adding a cancelled key revives its slot.
    a.add(victim, cplx(0.25));
    r.add(victim, cplx(0.25));
    check_same(a, r, 1e-12);

    // Product agreement (the tentpole hot path).
    PauliSum b(n);
    RefPauliSum rb;
    for (int j = 0; j < 25; ++j) {
      const PauliString s = random_string(n, rng);
      const cplx c(cd(rng), cd(rng));
      b.add(s, c);
      rb.add(s, c);
    }
    check_same(a * b, r * rb, 1e-10);
    check_same(a + b, r + rb, 1e-12);
    check_same(a * cplx(0.5, -2.0), r * cplx(0.5, -2.0), 1e-12);

    // prune drops small terms like the map erase did.
    PauliSum ap = a;
    RefPauliSum rp = r;
    ap.add(random_string(n, rng), cplx(1e-13));
    rp.add(random_string(n, rng), cplx(1e-13));
    ap.prune(1e-12);
    rp.prune(1e-12);
    CHECK_EQ(ap.size(), rp.size());
  }

  // Mixed qubit counts are a runtime error (not UB) even in Release builds.
  {
    PauliSum a(3), b(4);
    a.add(PauliString::parse("XYZ"), cplx(1.0));
    b.add(PauliString::parse("ZZII"), cplx(1.0));
    bool threw = false;
    try {
      a.add(PauliString::parse("XX"), cplx(1.0));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      (void)(a * b);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    std::vector<cplx> x(4), y(4);
    try {
      a.apply(x, y);  // dim 4 != 2^3
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // reserve() before the first add must not lock in a zero qubit count, and
  // a default-constructed (zero-operator) sum applies as a no-op.
  {
    PauliSum s;
    s.reserve(8);
    s.add(PauliString::parse("XZ"), cplx(1.0));
    CHECK_EQ(s.num_qubits(), std::size_t{2});
    CHECK_NEAR(s.coeff_of(PauliString::parse("XZ")) - cplx(1.0), 0.0, 0.0);
    PauliSum scaled = PauliSum{} * cplx(2.0);
    scaled.add(PauliString::parse("Y"), cplx(1.0));
    CHECK_EQ(scaled.size(), std::size_t{1});
    const PauliSum zero;
    std::vector<cplx> x(8, cplx(1.0)), y(8, cplx(0.5));
    zero.apply_add(x, y);  // no-op, any dimension
    CHECK_NEAR(y[0] - cplx(0.5), 0.0, 0.0);
  }

  // A zero-qubit (scalar) term is kept, and widening past it throws instead
  // of silently dropping it.
  {
    PauliSum s;
    s.add(PauliString(std::vector<Scb>{}), cplx(2.0));
    CHECK_EQ(s.size(), std::size_t{1});
    bool threw = false;
    try {
      s.add(PauliString::parse("X"), cplx(3.0));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    CHECK_NEAR(s.one_norm() - 2.0, 0.0, 0.0);
  }

  // Self-add (doubling) must walk a snapshot, not the table being mutated.
  {
    const std::size_t n = 10;
    PauliSum a(n);
    RefPauliSum r;
    // Enough inserts that a mid-iteration rehash would trigger without the
    // aliasing guard.
    for (int j = 0; j < 300; ++j) {
      const PauliString s = random_string(n, rng);
      const cplx c(cd(rng), cd(rng));
      a.add(s, c);
      r.add(s, c);
    }
    a.add(a);
    r.add(r);  // std::map self-add is safe: keys already exist
    check_same(a, r, 1e-12);
  }

  // Pauli self-product: A*A for a real combination is Hermitian with the
  // identity coefficient equal to sum |c|^2.
  {
    const std::size_t n = 6;
    PauliSum a(n);
    double norm2 = 0;
    for (int j = 0; j < 30; ++j) {
      const double c = cd(rng);
      const PauliString s = random_string(n, rng);
      const cplx before = a.coeff_of(s);
      a.add(s, c);
      norm2 += std::norm(before + c) - std::norm(before);
    }
    const PauliSum sq = a * a;
    CHECK(sq.is_hermitian(1e-10));
    CHECK_NEAR(sq.coeff_of(PauliString(std::vector<Scb>(n, Scb::I))) -
                   cplx(norm2),
               0.0, 1e-10);
  }

  // Dense agreement and the matrix-free apply.
  for (int it = 0; it < 20; ++it) {
    const std::size_t n = 2 + it % 4;
    const std::size_t dim = std::size_t{1} << n;
    PauliSum a(n);
    RefPauliSum r;
    for (int j = 0; j < 12; ++j) {
      const PauliString s = random_string(n, rng);
      const cplx c(cd(rng), cd(rng));
      a.add(s, c);
      r.add(s, c);
    }
    CHECK_NEAR(a.to_matrix(n).max_abs_diff(r.to_matrix(n)), 0.0, 1e-12);

    std::vector<cplx> x = random_state(dim, rng);
    std::vector<cplx> y(dim, cplx(0.0));
    a.apply(x, y);
    const std::vector<cplx> expect = a.to_matrix(n).apply(x);
    CHECK_NEAR(vec_max_abs_diff(y, expect), 0.0, 1e-12);

    // apply_add accumulates: a second call doubles the result.
    a.apply_add(x, y);
    for (auto& v : y) v *= 0.5;
    CHECK_NEAR(vec_max_abs_diff(y, expect), 0.0, 1e-12);
  }

  // pauli_decompose of a matrix built from a PauliSum roundtrips.
  {
    const std::size_t n = 3;
    PauliSum a(n);
    for (int j = 0; j < 6; ++j) a.add(random_string(n, rng), cplx(cd(rng)));
    const PauliSum back = pauli_decompose(a.to_matrix(n), n);
    CHECK_EQ(back.size(), a.size());
    for (const auto& [s, c] : a.sorted_terms())
      CHECK_NEAR(back.coeff_of(s) - c, 0.0, 1e-10);
  }

  // Heavy insert/erase churn keeps the table consistent (rehash + dead-slot
  // reclamation paths).
  {
    const std::size_t n = 16;
    PauliSum a(n);
    RefPauliSum r;
    std::vector<PauliString> pool;
    for (int j = 0; j < 2000; ++j) pool.push_back(random_string(n, rng));
    for (const auto& s : pool) {
      a.add(s, cplx(1.0));
      r.add(s, cplx(1.0));
    }
    for (std::size_t j = 0; j < pool.size(); j += 2) {
      a.add(pool[j], cplx(-1.0));
      r.add(pool[j], cplx(-1.0));
    }
    check_same(a, r, 1e-12);
    a.prune();
    r.prune();
    check_same(a, r, 1e-12);
  }

  return gecos::test::finish("test_pauli_sum");
}
