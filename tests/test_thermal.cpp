// Thermal-pure-state sampler suite, pinned against exact dense
// thermodynamics (tests/spectral_ref.hpp). Pins (1) <H>_beta and <N>_beta
// at n = 8 sit within their own reported error bars across a beta sweep,
// (2) the beta = 0 limit is the exact infinite-temperature trace average,
// (3) log(Z/D) tracks the dense value, (4) bit-reproducibility under one
// seed and independence from call order, (5) the sector-restricted sampler
// against the sector-dense reference, (6) warm calls allocate nothing, and
// (7) the error paths.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>
// clang-format on

#include "fermion/hubbard.hpp"
#include "fermion/jordan_wigner.hpp"
#include "linalg/expm.hpp"
#include "ops/scb_sum.hpp"
#include "spectral/thermal.hpp"
#include "spectral_ref.hpp"
#include "symmetry/sector_operator.hpp"
#include "test_util.hpp"

using namespace gecos;

int main() {
  // -- beta sweep at n = 8: estimates inside their own error bars ------------
  {
    HubbardParams p;  // spinless ring, n = 8 (dim 256)
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const ScbSum num = jw_sum(total_number(8), 8);
    const EigenSystem es = eigh(h.to_matrix());
    const Matrix h_dense = h.to_matrix();
    const Matrix n_dense = num.to_matrix();

    ThermalOptions to;
    to.num_samples = 24;
    ThermalSampler sampler(h, to);
    for (double beta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const ThermalResult re = sampler.energy(beta);
      const double e_ref = gecos::test::thermal_expectation(es, h_dense, beta);
      CHECK(re.std_error > 0.0);
      CHECK(std::abs(re.value - e_ref) <= 3.0 * re.std_error);

      const ThermalResult rn = sampler.expectation(num, beta);
      const double n_ref = gecos::test::thermal_expectation(es, n_dense, beta);
      CHECK(std::abs(rn.value - n_ref) <= 3.0 * rn.std_error);

      // log(Z/D) from the same weights: a few percent at these sample
      // counts (it is a plain mean, not a ratio, so bars are not reported).
      const double lz_ref = gecos::test::log_partition_over_dim(es, beta);
      CHECK_NEAR(re.log_z_over_dim, lz_ref, 0.35);
      CHECK(re.matvecs > 0);
      CHECK_EQ(re.samples, std::size_t{24});
    }
  }

  // -- beta = 0: exact infinite-temperature average, unit weights ------------
  {
    HubbardParams p;  // open chain, n = 6 (dim 64)
    p.lx = 6;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    const ScbSum num = jw_sum(total_number(6), 6);
    const EigenSystem es = eigh(h.to_matrix());

    ThermalOptions to;
    to.num_samples = 16;
    ThermalSampler sampler(h, to);
    const ThermalResult r = sampler.expectation(num, 0.0);
    // No projection chunks ran: every weight is exactly 1.
    CHECK_EQ(r.log_z_over_dim, 0.0);
    // Tr N / D = modes / 2 = 3 exactly; the estimate fluctuates around it.
    const double n_ref =
        gecos::test::thermal_expectation(es, num.to_matrix(), 0.0);
    CHECK_NEAR(n_ref, 3.0, 1e-10);
    CHECK(std::abs(r.value - n_ref) <= 3.0 * r.std_error);
  }

  // -- reproducibility: bit-identical under one seed, call-order free --------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    p.mu = 0.3;
    const ScbSum h = hubbard_scb(p);
    const ScbSum num = jw_sum(total_number(6), 6);

    ThermalSampler a(h), b(h);
    b.energy(4.0);  // unrelated history must not shift b's next estimate
    const ThermalResult ra = a.expectation(num, 1.5);
    const ThermalResult rb = b.expectation(num, 1.5);
    CHECK(ra.value == rb.value);
    CHECK(ra.std_error == rb.std_error);
    CHECK(ra.log_z_over_dim == rb.log_z_over_dim);

    ThermalOptions to;
    to.seed = 99;
    ThermalSampler c(h, to);
    CHECK(c.expectation(num, 1.5).value != ra.value);  // seed matters
  }

  // -- sector-restricted sampler vs the sector-dense reference ---------------
  {
    HubbardParams p;  // spinless ring, n = 10; N = 5 sector (dim 252)
    p.lx = 10;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const SectorBasis b = hubbard_sector(p, 5);
    const SectorOperator hs(b, h);
    const EigenSystem es = eigh(gecos::test::dense_of(hs));

    ThermalOptions to;
    to.num_samples = 16;
    ThermalSampler sampler(hs, to);
    const ThermalResult r = sampler.energy(2.0);
    const double e_ref = gecos::test::thermal_expectation(
        es, gecos::test::dense_of(hs), 2.0);
    CHECK(std::abs(r.value - e_ref) <= 3.0 * r.std_error);
  }

  // -- allocation probe: warm expectation calls allocate nothing -------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    ThermalOptions to;
    to.num_samples = 4;
    ThermalSampler sampler(h, to);
    sampler.energy(1.0);  // warm-up: evolver basis and scratch all sized
    const long before = gecos::test::allocations();
    sampler.energy(1.0);
    const long delta = gecos::test::allocations() - before;
#if GECOS_ALLOC_PROBE_ACTIVE
    CHECK_EQ(delta, 0L);
#endif
    std::printf("alloc probe: %ld allocations during warm thermal call\n",
                delta);
  }

  // -- error paths -----------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 4;
    const ScbSum h = hubbard_scb(p);

    bool threw = false;
    try {
      ThermalOptions to;
      to.num_samples = 1;
      ThermalSampler bad(h, to);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    threw = false;
    try {
      ThermalOptions to;
      to.dbeta = 0.0;
      ThermalSampler bad(h, to);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    ThermalSampler sampler(h);
    threw = false;
    try {
      sampler.energy(-1.0);  // negative temperature parameter
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    threw = false;
    try {
      const ScbSum small = jw_sum(total_number(2), 2);  // dim 4 != dim 16
      sampler.expectation(small, 1.0);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  return gecos::test::finish("test_thermal");
}
