// Fault-injection helpers for the checkpoint corruption matrix: byte-level
// file surgery (truncate, bit-flip, magic smash, version skew) used by
// test_checkpoint.cpp and test_resume.cpp to prove every damage mode is
// detected and recovery proceeds from the last good file. Header-only,
// test-tree only — deliberately not part of src/.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/xxhash.hpp"

namespace gecos::test {

/// Reads a whole file; throws on failure (tests want loud plumbing).
inline std::vector<unsigned char> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("read_file: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
  const std::size_t got =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size())
    throw std::runtime_error("read_file: short read on " + path);
  return bytes;
}

/// Overwrites a file with the given bytes (plain write; the crash-safety
/// under test lives in the production writer, not here).
inline void write_file(const std::string& path,
                       const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("write_file: cannot open " + path);
  const std::size_t put =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (put != bytes.size())
    throw std::runtime_error("write_file: short write on " + path);
}

/// Truncates the file to its first `keep` bytes (simulated torn write).
inline void truncate_file(const std::string& path, std::size_t keep) {
  std::vector<unsigned char> bytes = read_file(path);
  if (keep < bytes.size()) bytes.resize(keep);
  write_file(path, bytes);
}

/// Flips one bit: bit `bit` (0-7) of byte `offset` (simulated media error).
inline void flip_bit(const std::string& path, std::size_t offset,
                     unsigned bit) {
  std::vector<unsigned char> bytes = read_file(path);
  if (offset >= bytes.size())
    throw std::runtime_error("flip_bit: offset past end of " + path);
  bytes[offset] ^= static_cast<unsigned char>(1u << bit);
  write_file(path, bytes);
}

/// Overwrites the 8-byte magic with an alien signature.
inline void corrupt_magic(const std::string& path) {
  std::vector<unsigned char> bytes = read_file(path);
  if (bytes.size() < 8)
    throw std::runtime_error("corrupt_magic: file too short: " + path);
  std::memcpy(bytes.data(), "NOTGECOS", 8);
  write_file(path, bytes);
}

/// Version-skews the file: patches the header's format-version field to
/// `version` and RECOMPUTES the trailing digest, producing a checksum-valid
/// file from a future (or past) format generation. Without the re-hash the
/// reader would report io_corrupt — correct, but not the condition under
/// test; this helper isolates the version_mismatch path.
inline void rewrite_version(const std::string& path, std::uint32_t version) {
  std::vector<unsigned char> bytes = read_file(path);
  if (bytes.size() < 32)
    throw std::runtime_error("rewrite_version: file too short: " + path);
  std::memcpy(bytes.data() + 8, &version, 4);
  const std::size_t hashed = bytes.size() - 8;
  const std::uint64_t digest = gecos::xxh64(bytes.data(), hashed);
  std::memcpy(bytes.data() + hashed, &digest, 8);
  write_file(path, bytes);
}

/// Deletes a file if present (cleanup between scenarios).
inline void remove_file(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace gecos::test
