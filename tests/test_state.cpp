// StateVector layer and the unified LinearOperator interface: construction,
// norms and inner products, expectation values against dense quadratic
// forms, in-place apply through the scratch path, and interface conformance
// of every concrete operator (PauliSum, ScbSum, TermKernel, CsrMatrix,
// SumOperator).
#include <memory>
#include <random>
#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/sparse.hpp"
#include "ops/pauli.hpp"
#include "ops/scb_sum.hpp"
#include "ops/sum_operator.hpp"
#include "ops/term.hpp"
#include "state/state_vector.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// Random ScbSum of `terms` Hermitian pairs on n qubits.
ScbSum random_hermitian_sum(std::size_t n, int terms, std::mt19937& rng) {
  std::uniform_real_distribution<double> cd(-1.0, 1.0);
  ScbSum s(n);
  for (int j = 0; j < terms; ++j) {
    std::vector<Scb> ops(n);
    for (auto& o : ops) o = kAllScb[rng() % kAllScb.size()];
    s.add(ScbTerm(cplx(cd(rng), cd(rng)), ops, true));
  }
  return s;
}

/// <x|M|x> via the dense matrix (ground truth).
cplx dense_expectation(const Matrix& m, std::span<const cplx> x) {
  return vec_dot(x, m.apply(x));
}

}  // namespace

int main() {
  std::mt19937 rng(99);

  // Constructors: default |0..0>, basis index, product bitmask, random.
  {
    StateVector zero(3);
    CHECK_EQ(zero.dim(), std::size_t{8});
    CHECK_NEAR(zero[0] - cplx(1.0), 0.0, 0.0);
    CHECK_NEAR(zero.norm(), 1.0, 0.0);

    const StateVector b = StateVector::basis(3, 5);
    CHECK_NEAR(b[5] - cplx(1.0), 0.0, 0.0);
    CHECK_NEAR(b[0], 0.0, 0.0);

    const StateVector pr = StateVector::product(4, 0b1010);
    CHECK_NEAR(pr[0b1010] - cplx(1.0), 0.0, 0.0);

    const StateVector r1 = StateVector::random(5, 42);
    const StateVector r2 = StateVector::random(5, 42);
    CHECK_NEAR(r1.norm(), 1.0, 1e-12);
    CHECK_NEAR(r1.max_abs_diff(r2), 0.0, 0.0);  // seeded => reproducible

    bool threw = false;
    try {
      StateVector::basis(2, 4);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // Inner products and normalization.
  {
    StateVector a = StateVector::random(4, 1);
    const StateVector b = StateVector::random(4, 2);
    CHECK_NEAR(a.inner(a) - cplx(1.0), 0.0, 1e-12);
    // Conjugate symmetry <a|b> = conj(<b|a>).
    CHECK_NEAR(a.inner(b) - std::conj(b.inner(a)), 0.0, 1e-12);
    vec_scale(a.amps(), cplx(0.0, 2.5));
    CHECK_NEAR(a.norm(), 2.5, 1e-12);
    a.normalize();
    CHECK_NEAR(a.norm(), 1.0, 1e-12);
  }

  // Expectation values against dense quadratic forms, for ScbSum and its
  // Pauli expansion (same operator, two kernels, one interface).
  for (int it = 0; it < 10; ++it) {
    const std::size_t n = 2 + it % 3;
    const ScbSum s = random_hermitian_sum(n, 4, rng);
    const PauliSum ps = s.to_pauli();
    const Matrix m = s.to_matrix();
    const StateVector x = StateVector::random(n, 1000 + it);
    const cplx es = x.expectation(s);
    const cplx ep = x.expectation(ps);
    const cplx ed = dense_expectation(m, x.amps());
    CHECK_NEAR(es - ed, 0.0, 1e-12);
    CHECK_NEAR(ep - ed, 0.0, 1e-12);
    CHECK_NEAR(es.imag(), 0.0, 1e-12);  // Hermitian => real expectation
  }

  // In-place apply through the internal scratch (x <- A x), and the
  // two-buffer overwrite apply of the base interface.
  for (int it = 0; it < 10; ++it) {
    const std::size_t n = 2 + it % 3;
    const std::size_t dim = std::size_t{1} << n;
    const ScbSum s = random_hermitian_sum(n, 3, rng);
    const Matrix m = s.to_matrix();
    StateVector x = StateVector::random(n, 2000 + it);
    const std::vector<cplx> expect = m.apply(x.amps());
    x.apply(s);
    CHECK_NEAR(vec_max_abs_diff(x.amps(), expect), 0.0, 1e-12);

    // Overwrite semantics: y's prior garbage must not leak into the result.
    std::vector<cplx> y(dim, cplx(7.0, -3.0));
    const StateVector x2 = StateVector::random(n, 3000 + it);
    static_cast<const LinearOperator&>(s).apply(x2.amps(), y);
    CHECK_NEAR(vec_max_abs_diff(y, m.apply(x2.amps())), 0.0, 1e-12);
  }

  // TermKernel conformance: bare product against its dense matrix.
  {
    const ScbTerm t = ScbTerm::parse("n s+ X m s", cplx(0.4, -1.1), false);
    const TermKernel k(t);
    CHECK_EQ(k.n_qubits(), std::size_t{5});
    const StateVector x = StateVector::random(5, 7);
    std::vector<cplx> y(x.dim());
    k.apply(x.amps(), y);
    CHECK_NEAR(vec_max_abs_diff(y, t.bare_matrix().apply(x.amps())), 0.0,
               1e-12);
  }

  // CsrMatrix conformance: n_qubits/dim and apply_add with scale.
  {
    const ScbSum s = random_hermitian_sum(3, 3, rng);
    const Matrix m = s.to_matrix();
    const CsrMatrix csr = CsrMatrix::from_dense(m, 1e-14);
    CHECK_EQ(csr.n_qubits(), std::size_t{3});
    CHECK_EQ(csr.dim(), std::size_t{8});
    const StateVector x = StateVector::random(3, 11);
    CHECK_NEAR(x.expectation(csr) - dense_expectation(m, x.amps()), 0.0,
               1e-12);
    // Non-power-of-two rows stay usable as CSR but reject n_qubits().
    const CsrMatrix odd(3, 3, {{0, 0, cplx(1.0)}});
    bool threw = false;
    try {
      (void)odd.n_qubits();
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // SumOperator: mixed representations compose linearly.
  {
    const std::size_t n = 3;
    const ScbSum s1 = random_hermitian_sum(n, 3, rng);
    const ScbSum s2 = random_hermitian_sum(n, 2, rng);
    auto sum = std::make_shared<SumOperator>();
    sum->add(std::make_shared<ScbSum>(s1), cplx(2.0));
    sum->add(std::make_shared<PauliSum>(s2.to_pauli()), cplx(-0.5));
    sum->add(std::make_shared<CsrMatrix>(CsrMatrix::from_dense(s1.to_matrix())),
             cplx(0.0, 1.0));
    CHECK_EQ(sum->size(), std::size_t{3});
    CHECK_EQ(sum->n_qubits(), n);
    const Matrix expect = s1.to_matrix() * cplx(2.0) +
                          s2.to_matrix() * cplx(-0.5) +
                          s1.to_matrix() * cplx(0.0, 1.0);
    const StateVector x = StateVector::random(n, 21);
    std::vector<cplx> y(x.dim());
    sum->apply(x.amps(), y);
    CHECK_NEAR(vec_max_abs_diff(y, expect.apply(x.amps())), 0.0, 1e-12);

    // Mixed qubit counts are rejected.
    bool threw = false;
    try {
      sum->add(std::make_shared<ScbSum>(random_hermitian_sum(2, 1, rng)));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // apply_inplace: the sanctioned in-place path matches the two-buffer one.
  {
    const ScbSum s = random_hermitian_sum(3, 4, rng);
    const StateVector x0 = StateVector::random(3, 31);
    std::vector<cplx> a(x0.amps().begin(), x0.amps().end());
    std::vector<cplx> scratch(a.size());
    s.apply_inplace(a, scratch);
    std::vector<cplx> b(a.size());
    s.apply(x0.amps(), b);
    CHECK_NEAR(vec_max_abs_diff(a, b), 0.0, 0.0);
  }

  return gecos::test::finish("test_state");
}
