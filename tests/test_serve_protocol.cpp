// Serve-protocol suite: ErrorKind wire names, encode/decode round trips
// for every payload schema (bitwise doubles), job/evolution key semantics,
// framed socket IO including truncation and oversize rejection, the error
// frame round trip, and a live in-process Server + Client integration over
// a real unix-domain socket (submit / status / fetch / cancel / stats /
// error passthrough / version-mismatch handshake / shutdown).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"

using namespace gecos;
using namespace gecos::serve;

namespace {

bool throws_kind(ErrorKind kind, const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.kind() == kind;
  } catch (...) {
    return false;
  }
  return false;
}

/// A fully non-default spec so every field must round-trip to survive.
JobSpec full_spec() {
  JobSpec s;
  s.kind = JobKind::kExpectation;
  s.lattice.lx = 3;
  s.lattice.ly = 2;
  s.lattice.t = 1.25;
  s.lattice.u = 3.5;
  s.lattice.mu = -0.75;
  s.lattice.periodic_x = false;
  s.lattice.periodic_y = true;
  s.lattice.spinful = true;
  s.use_sector = true;
  s.n_up = 3;
  s.n_down = 2;
  s.num_eigenpairs = 4;
  s.tol = 1e-8;
  s.max_matvecs = 777;
  s.seed = 123456789;
  s.checkpoint_interval = 50;
  s.dt = 0.0625;
  s.steps = 12;
  s.initial_occupation = 0b101101;
  s.observables = {{ObservableKind::kDensity, 1, 0},
                   {ObservableKind::kDoublon, 4, 0},
                   {ObservableKind::kDensityCorr, 0, 5},
                   {ObservableKind::kTotalNumber, 0, 0}};
  s.eta = 0.05;
  s.max_moments = 96;
  s.w_min = -7.5;
  s.w_max = 12.5;
  s.w_points = 33;
  s.priority = 9;
  return s;
}

bool specs_equal(const JobSpec& a, const JobSpec& b) {
  if (a.observables.size() != b.observables.size()) return false;
  for (std::size_t i = 0; i < a.observables.size(); ++i)
    if (a.observables[i].kind != b.observables[i].kind ||
        a.observables[i].site_a != b.observables[i].site_a ||
        a.observables[i].site_b != b.observables[i].site_b)
      return false;
  return a.kind == b.kind && a.lattice.lx == b.lattice.lx &&
         a.lattice.ly == b.lattice.ly && a.lattice.t == b.lattice.t &&
         a.lattice.u == b.lattice.u && a.lattice.mu == b.lattice.mu &&
         a.lattice.periodic_x == b.lattice.periodic_x &&
         a.lattice.periodic_y == b.lattice.periodic_y &&
         a.lattice.spinful == b.lattice.spinful &&
         a.use_sector == b.use_sector && a.n_up == b.n_up &&
         a.n_down == b.n_down && a.num_eigenpairs == b.num_eigenpairs &&
         a.tol == b.tol && a.max_matvecs == b.max_matvecs &&
         a.seed == b.seed &&
         a.checkpoint_interval == b.checkpoint_interval && a.dt == b.dt &&
         a.steps == b.steps &&
         a.initial_occupation == b.initial_occupation && a.eta == b.eta &&
         a.max_moments == b.max_moments && a.w_min == b.w_min &&
         a.w_max == b.w_max && a.w_points == b.w_points &&
         a.priority == b.priority;
}

/// The tiny ground-state job the live-server test runs: 2x2 spinful
/// half-filling, sector dim C(4,2)^2 = 36 — solves in milliseconds.
JobSpec tiny_ground() {
  JobSpec s;
  s.kind = JobKind::kGroundState;
  s.lattice.lx = 2;
  s.lattice.ly = 2;
  s.lattice.u = 4.0;
  s.lattice.mu = 0.5;
  s.lattice.spinful = true;
  s.use_sector = true;
  s.n_up = 2;
  s.n_down = 2;
  return s;
}

}  // namespace

int main() {
  set_num_threads(2);

  // -- ErrorKind wire names: total, distinct, round-trip --------------------
  {
    for (const ErrorKind k : kAllErrorKinds) {
      const char* name = error_kind_name(k);
      CHECK(name != nullptr && name[0] != '\0');
      ErrorKind parsed = ErrorKind::io_corrupt;
      CHECK(parse_error_kind(name, parsed));
      CHECK(parsed == k);
    }
    ErrorKind sink = ErrorKind::breakdown;
    CHECK(!parse_error_kind("definitely_not_a_kind", sink));
    CHECK(sink == ErrorKind::breakdown);  // untouched on failure
    CHECK(!parse_error_kind("", sink));
  }

  // -- spec round trip, bitwise ---------------------------------------------
  {
    const JobSpec spec = full_spec();
    PayloadWriter w;
    encode_job_spec(w, spec);
    PayloadReader r(w.bytes());
    const JobSpec back = decode_job_spec(r);
    r.require_end();
    CHECK(specs_equal(spec, back));

    // Truncated payload is io_corrupt (bounds-checked reader), not UB.
    PayloadReader short_r(w.bytes().subspan(0, w.bytes().size() - 4));
    CHECK(throws_kind(ErrorKind::io_corrupt,
                      [&] { (void)decode_job_spec(short_r); }));
  }

  // -- result round trip, bitwise -------------------------------------------
  {
    JobResult res;
    res.kind = JobKind::kSpectral;
    res.eigenvalues = {-13.8785798502, -11.25, 0.1};
    res.residuals = {1e-11, 3e-11, 7e-11};
    res.residual_history = {1.0, 0.1, 0.01, 1e-11};
    res.matvecs = 12345;
    res.iterations = 678;
    res.converged = true;
    res.resumed = true;
    res.times = {0.02, 0.04};
    res.values = {1.5, 0.5, 1.25, 0.75};
    res.loschmidt = {0.99, 0.98};
    res.omega = {-1.0, 0.0, 1.0};
    res.spectral = {0.1, 0.7, 0.2};
    PayloadWriter w;
    encode_job_result(w, res);
    PayloadReader r(w.bytes());
    const JobResult back = decode_job_result(r);
    r.require_end();
    CHECK(back.kind == res.kind);
    CHECK(std::memcmp(back.eigenvalues.data(), res.eigenvalues.data(),
                      res.eigenvalues.size() * sizeof(double)) == 0);
    CHECK(back.residuals == res.residuals);
    CHECK(back.residual_history == res.residual_history);
    CHECK_EQ(back.matvecs, res.matvecs);
    CHECK_EQ(back.iterations, res.iterations);
    CHECK(back.converged && back.resumed);
    CHECK(back.times == res.times);
    CHECK(back.values == res.values);
    CHECK(back.loschmidt == res.loschmidt);
    CHECK(back.omega == res.omega);
    CHECK(back.spectral == res.spectral);
  }

  // -- status and stats round trips -----------------------------------------
  {
    JobStatus st;
    st.id = 42;
    st.state = JobState::kFailed;
    st.kind = JobKind::kQuench;
    st.priority = 3;
    st.iteration = 17;
    st.matvecs = 204;
    st.metric = 3.25e-7;
    st.target = 1e-10;
    st.elapsed_s = 1.5;
    st.eta_s = 2.75;
    st.error_kind = "breakdown";
    st.error_message = "beta underflow";
    PayloadWriter w;
    encode_job_status(w, st);
    PayloadReader r(w.bytes());
    const JobStatus back = decode_job_status(r);
    r.require_end();
    CHECK_EQ(back.id, st.id);
    CHECK(back.state == st.state && back.kind == st.kind);
    CHECK_EQ(back.priority, st.priority);
    CHECK_EQ(back.iteration, st.iteration);
    CHECK_EQ(back.matvecs, st.matvecs);
    CHECK(back.metric == st.metric && back.target == st.target);
    CHECK(back.elapsed_s == st.elapsed_s && back.eta_s == st.eta_s);
    CHECK_EQ(back.error_kind, st.error_kind);
    CHECK_EQ(back.error_message, st.error_message);

    ServerStats ss;
    ss.submitted = 10;
    ss.completed = 7;
    ss.failed = 1;
    ss.cancelled = 2;
    ss.batch_passes = 3;
    ss.batched_jobs = 9;
    ss.cache_hits = 100;
    ss.cache_misses = 5;
    ss.cache_evictions = 1;
    ss.cache_bytes = 1 << 20;
    ss.cache_entries = 4;
    ss.queue_depth = 6;
    ss.running = 1;
    PayloadWriter w2;
    encode_server_stats(w2, ss);
    PayloadReader r2(w2.bytes());
    const ServerStats back2 = decode_server_stats(r2);
    r2.require_end();
    CHECK_EQ(back2.submitted, ss.submitted);
    CHECK_EQ(back2.completed, ss.completed);
    CHECK_EQ(back2.cancelled, ss.cancelled);
    CHECK_EQ(back2.batched_jobs, ss.batched_jobs);
    CHECK_EQ(back2.cache_bytes, ss.cache_bytes);
    CHECK_EQ(back2.running, ss.running);
  }

  // -- job_key / evolution_key semantics ------------------------------------
  {
    const JobSpec a = full_spec();
    JobSpec b = a;
    CHECK_EQ(job_key(a), job_key(b));
    b.priority = 0;  // priority is excluded: same artifact
    CHECK_EQ(job_key(a), job_key(b));
    b = a;
    b.seed += 1;  // any physics field changes the key
    CHECK(job_key(a) != job_key(b));
    b = a;
    b.lattice.u = 3.50001;
    CHECK(job_key(a) != job_key(b));

    // Observables do NOT enter the evolution key (that is the whole point
    // of batching), but dt/steps/occupation do.
    b = a;
    b.observables = {{ObservableKind::kDensity, 0, 0}};
    CHECK_EQ(evolution_key(a), evolution_key(b));
    CHECK(job_key(a) != job_key(b));
    b = a;
    b.dt = 0.125;
    CHECK(evolution_key(a) != evolution_key(b));
    b = a;
    b.initial_occupation = 0b111;
    CHECK(evolution_key(a) != evolution_key(b));
  }

  // -- validate_job_spec: protocol errors with field names ------------------
  {
    CHECK(throws_kind(ErrorKind::protocol, [] {
      JobSpec s = tiny_ground();
      s.lattice.lx = 0;
      validate_job_spec(s);
    }));
    CHECK(throws_kind(ErrorKind::protocol, [] {
      JobSpec s = tiny_ground();
      s.n_up = 5;  // only 4 up-modes on 2x2 spinful
      validate_job_spec(s);
    }));
    CHECK(throws_kind(ErrorKind::protocol, [] {
      JobSpec s = tiny_ground();
      s.tol = 0.0;
      validate_job_spec(s);
    }));
    CHECK(throws_kind(ErrorKind::protocol, [] {
      JobSpec s = tiny_ground();
      s.kind = JobKind::kExpectation;
      s.steps = 4;
      // expectation without observables
      validate_job_spec(s);
    }));
    CHECK(throws_kind(ErrorKind::protocol, [] {
      JobSpec s = tiny_ground();
      s.kind = JobKind::kQuench;
      s.steps = 4;
      s.use_sector = false;  // evolution requires a sector
      validate_job_spec(s);
    }));
    CHECK(throws_kind(ErrorKind::protocol, [] {
      JobSpec s = tiny_ground();
      s.kind = JobKind::kExpectation;
      s.steps = 4;
      s.observables = {{ObservableKind::kDensity, 99, 0}};
      validate_job_spec(s);
    }));
    CHECK(throws_kind(ErrorKind::protocol, [] {
      JobSpec s = tiny_ground();
      s.kind = JobKind::kSpectral;
      s.w_min = 5.0;
      s.w_max = -5.0;
      validate_job_spec(s);
    }));
    validate_job_spec(tiny_ground());  // and a good one passes
  }

  // -- framed IO over a socketpair ------------------------------------------
  {
    int fds[2];
    CHECK_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::vector<unsigned char> payload = {0xde, 0xad, 0xbe, 0xef, 0x01};
    write_frame(fds[0], payload);
    const std::vector<unsigned char> got = read_frame(fds[1]);
    CHECK(got == payload);

    // Clean EOF before any byte -> empty vector, not an error.
    ::close(fds[0]);
    CHECK(read_frame(fds[1]).empty());
    ::close(fds[1]);

    // Truncation mid-frame: a length prefix promising more bytes than ever
    // arrive is a protocol error on the reader.
    CHECK_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::uint32_t lie = 100;
    CHECK_EQ(::write(fds[0], &lie, sizeof(lie)),
             static_cast<ssize_t>(sizeof(lie)));
    const unsigned char partial[10] = {};
    CHECK_EQ(::write(fds[0], partial, sizeof(partial)),
             static_cast<ssize_t>(sizeof(partial)));
    ::close(fds[0]);
    CHECK(throws_kind(ErrorKind::protocol, [&] { (void)read_frame(fds[1]); }));
    ::close(fds[1]);

    // Oversized length prefix: rejected before any allocation.
    CHECK_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::uint32_t huge = kMaxFrameBytes + 1;
    CHECK_EQ(::write(fds[0], &huge, sizeof(huge)),
             static_cast<ssize_t>(sizeof(huge)));
    CHECK(throws_kind(ErrorKind::protocol, [&] { (void)read_frame(fds[1]); }));
    ::close(fds[0]);
    ::close(fds[1]);
  }

  // -- error frames and expect_reply ----------------------------------------
  {
    const std::vector<unsigned char> frame =
        encode_error_frame(ErrorKind::not_found, "no such job: 7");
    try {
      (void)expect_reply(frame, MsgType::kFetchOk);
      CHECK(false);
    } catch (const Error& e) {
      CHECK(e.kind() == ErrorKind::not_found);
      CHECK(std::string(e.what()).find("no such job: 7") !=
            std::string::npos);
    }

    // A reply of the wrong type is a protocol error.
    PayloadWriter w;
    w.put_u32(static_cast<std::uint32_t>(MsgType::kStatusOk));
    const std::vector<unsigned char> wrong(w.bytes().begin(),
                                           w.bytes().end());
    CHECK(throws_kind(ErrorKind::protocol,
                      [&] { (void)expect_reply(wrong, MsgType::kFetchOk); }));

    // An unknown kind name from a newer peer degrades to protocol, still an
    // Error (never a crash).
    PayloadWriter we;
    we.put_u32(static_cast<std::uint32_t>(MsgType::kError));
    we.put_string("kind_from_the_future");
    we.put_string("message");
    const std::vector<unsigned char> future(we.bytes().begin(),
                                            we.bytes().end());
    CHECK(throws_kind(ErrorKind::protocol,
                      [&] { (void)expect_reply(future, MsgType::kFetchOk); }));
  }

  // -- live server + client over a real unix socket -------------------------
  {
    const std::string sock = "./gecos_test_proto.sock";
    Scheduler scheduler;  // no state dir: in-memory jobs only
    Server server(scheduler, sock);
    std::thread serve_thread([&] { server.serve(); });

    {
      Client client(sock);

      // Unknown ids travel back as the same Error an in-process call gives.
      CHECK(throws_kind(ErrorKind::not_found,
                        [&] { (void)client.status(999); }));
      CHECK(throws_kind(ErrorKind::not_found,
                        [&] { (void)client.fetch(999); }));
      CHECK(throws_kind(ErrorKind::not_found,
                        [&] { (void)client.cancel(999); }));

      // An invalid spec is rejected at submit with a protocol error.
      CHECK(throws_kind(ErrorKind::protocol, [&] {
        JobSpec bad = tiny_ground();
        bad.lattice.lx = 0;
        (void)client.submit(bad);
      }));

      // Submit, wait, fetch: the daemon result equals the in-process one.
      const std::uint64_t id = client.submit(tiny_ground());
      const JobStatus done = client.wait(id, 120.0);
      CHECK(done.state == JobState::kDone);
      const JobResult via_daemon = client.fetch(id);
      CHECK(via_daemon.converged);

      Scheduler local;
      const std::uint64_t lid = local.submit(tiny_ground());
      CHECK(local.wait(lid, 120.0));
      const JobResult local_res = local.fetch(lid);
      CHECK_EQ(via_daemon.eigenvalues.size(), local_res.eigenvalues.size());
      CHECK(std::memcmp(via_daemon.eigenvalues.data(),
                        local_res.eigenvalues.data(),
                        local_res.eigenvalues.size() * sizeof(double)) == 0);
      CHECK_EQ(via_daemon.matvecs, local_res.matvecs);
      local.stop(false);

      // Fetching a cancelled job reports cancelled; cancel of a terminal
      // job is refused.
      CHECK(!client.cancel(id));
      const ServerStats st = client.stats();
      CHECK_EQ(st.submitted, 1u);
      CHECK_EQ(st.completed, 1u);

      client.shutdown();
    }
    serve_thread.join();

    // Handshake version drift: hand-roll a hello with a bogus version and
    // expect a version_mismatch error frame back.
    Server server2(scheduler, sock);
    std::thread serve2([&] { server2.serve(); });
    {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      CHECK(fd >= 0);
      CHECK_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)),
               0);
      PayloadWriter w;
      w.put_u32(static_cast<std::uint32_t>(MsgType::kHello));
      w.put_string(std::string(kServeMagic, sizeof(kServeMagic)));
      w.put_u32(kServeVersion + 7);
      write_frame(fd, w.bytes());
      const std::vector<unsigned char> reply = read_frame(fd);
      CHECK(throws_kind(ErrorKind::version_mismatch, [&] {
        (void)expect_reply(reply, MsgType::kHelloOk);
      }));
      ::close(fd);
    }
    // Clean shutdown of the second server via a well-behaved client.
    {
      Client client(sock);
      client.shutdown();
    }
    serve2.join();
    scheduler.stop(false);
  }

  return gecos::test::finish("test_serve_protocol");
}
