// Fermionic layer: the CAR algebra {a_i, a_j+} = delta_ij, {a_i, a_j} = 0
// verified symbolically in the SCB (via the Cayley closure) and against
// dense matrices at n <= 6; Jordan-Wigner product collapse vs matrix
// products; CAR normal ordering preserves the operator.
#include "fermion/fermion_op.hpp"

#include <random>

#include "fermion/jordan_wigner.hpp"
#include "ops/scb_sum.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

ScbSum as_sum(const ScbTerm& t, std::size_t n) {
  ScbSum s(n);
  if (t.coeff() != cplx(0.0)) s.add(t);
  return s;
}

FermionProduct random_product(std::size_t modes, std::size_t degree,
                              std::mt19937& rng) {
  std::vector<LadderOp> f(degree);
  for (auto& l : f)
    l = {static_cast<std::uint32_t>(rng() % modes), rng() % 2 == 0};
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  return FermionProduct(cplx(c(rng), c(rng)), std::move(f));
}

}  // namespace

int main() {
  std::mt19937 rng(11);

  // jw_ladder structure: Z-string below the mode, s/s+ at it, I above.
  {
    const ScbTerm a2 = jw_ladder(2, false, 5);
    CHECK_EQ(a2.op(0), Scb::Z);
    CHECK_EQ(a2.op(1), Scb::Z);
    CHECK_EQ(a2.op(2), Scb::Sm);
    CHECK_EQ(a2.op(3), Scb::I);
    CHECK_EQ(a2.op(4), Scb::I);
    CHECK_EQ(jw_ladder(2, true, 5).op(2), Scb::Sp);
    CHECK_NEAR(jw_ladder(0, true, 3).bare_matrix().max_abs_diff(
                   jw_ladder(0, false, 3).bare_matrix().dagger()),
               0.0, 1e-15);
  }

  // CAR, symbolically in the SCB: for all i, j at n <= 6,
  // {a_i, a_j+} = delta_ij * I and {a_i, a_j} = 0. Each anticommutator is
  // computed with ScbSum products (per-qubit Cayley collapse). For i != j
  // the two orderings collapse to the same word with opposite exact unit
  // coefficients, so the formal sum is literally empty; for i == j the
  // result is the word pair n_i + m_i, equal to I only through the linear
  // relation n + m = I — canonicalize in the (linearly independent) Pauli
  // basis, where the cancellation is still exact (all halves and units).
  for (std::size_t n = 1; n <= 6; ++n) {
    ScbSum ident(n);
    ident.add(std::vector<Scb>(n, Scb::I), 1.0);
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t j = 0; j < n; ++j) {
        const ScbSum ai = as_sum(jw_ladder(i, false, n), n);
        const ScbSum ajd = as_sum(jw_ladder(j, true, n), n);
        const ScbSum aj = as_sum(jw_ladder(j, false, n), n);
        ScbSum acar = ai * ajd + ajd * ai;  // {a_i, a_j+}
        if (i != j) {
          CHECK(acar.empty());  // exact formal cancellation
        } else {
          acar = acar - ident;
          CHECK_EQ(acar.size(), std::size_t{3});  // n_i, m_i, -I words
          CHECK(acar.to_pauli().empty());         // = 0 in the Pauli basis
        }
        CHECK((ai * aj + aj * ai).empty());  // {a_i, a_j} = 0, exactly
      }
  }

  // CAR against dense matrices at n <= 6.
  for (std::size_t n = 1; n <= 6; ++n)
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t j = 0; j < n; ++j) {
        const Matrix ai = jw_ladder(i, false, n).bare_matrix();
        const Matrix ajd = jw_ladder(j, true, n).bare_matrix();
        const Matrix aj = jw_ladder(j, false, n).bare_matrix();
        Matrix acar = ai * ajd + ajd * ai;
        if (i == j) acar -= Matrix::identity(std::size_t{1} << n);
        CHECK_NEAR(acar.norm_max(), 0.0, 1e-14);
        CHECK_NEAR((ai * aj + aj * ai).norm_max(), 0.0, 1e-14);
      }

  // jw_product collapses a ladder word to ONE SCB term equal to the matrix
  // product of the factor images.
  for (int it = 0; it < 60; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 5);
    const FermionProduct p = random_product(n, 1 + rng() % 4, rng);
    Matrix expect = Matrix::identity(std::size_t{1} << n) * p.coeff();
    for (const LadderOp& f : p.factors())
      expect = expect * jw_ladder(f.mode, f.dagger, n).bare_matrix();
    const ScbTerm t = jw_product(p, n);
    CHECK_NEAR(t.bare_matrix().max_abs_diff(expect), 0.0, 1e-13);
    // Adjoint commutes with the map.
    CHECK_NEAR(jw_product(p.adjoint(), n).bare_matrix().max_abs_diff(
                   expect.dagger()),
               0.0, 1e-13);
  }

  // normal_order preserves the operator (checked through the JW image) and
  // lands in canonical order: creators ascending, then annihilators
  // descending, no repeated mode within a species.
  for (int it = 0; it < 60; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 4);
    const FermionProduct p = random_product(n, 1 + rng() % 5, rng);
    const FermionSum no = normal_order(p);
    CHECK_NEAR(jw_sum(no, n).to_matrix().max_abs_diff(
                   jw_product(p, n).bare_matrix()),
               0.0, 1e-12);
    for (const auto& [word, c] : no.terms()) {
      for (std::size_t i = 0; i + 1 < word.size(); ++i) {
        const LadderOp a = word[i], b = word[i + 1];
        CHECK(a.dagger || !b.dagger);  // no creator right of an annihilator
        if (a.dagger == b.dagger)
          CHECK(a.dagger ? a.mode < b.mode : a.mode > b.mode);
      }
    }
  }

  // FermionSum algebra: product = concatenation, adjoint termwise,
  // is_hermitian detects A + A† and rejects a lone hopping term.
  {
    FermionSum h;
    h.add(FermionProduct::one_body(cplx(0.3, 0.7), 0, 2));
    CHECK(!h.is_hermitian());
    h.add(FermionProduct::one_body(cplx(0.3, -0.7), 2, 0));
    CHECK(h.is_hermitian());
    const FermionSum hh = h * h;
    CHECK_NEAR(jw_sum(normal_order(hh), 3).to_matrix().max_abs_diff(
                   jw_sum(h, 3).to_matrix() * jw_sum(h, 3).to_matrix()),
               0.0, 1e-13);
  }

  // Pauli exclusion: a_p a_p maps to the zero term and normal-orders to 0.
  {
    const FermionProduct pp(1.0, {{1, false}, {1, false}});
    CHECK_EQ(jw_product(pp, 3).coeff(), cplx(0.0));
    CHECK(normal_order(pp).empty());
  }

  return gecos::test::finish("test_fermion");
}
