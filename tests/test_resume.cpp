// Interrupt/resume suite: a checkpointing Lanczos run cut off by a matvec
// budget resumes into the bit-identical trajectory (same eigenvalues, same
// final matvec count as the uninterrupted run); recovery falls back to
// .bak when the primary is damaged; geometry mismatches are rejected;
// imaginary-time projections resume with their accumulated beta; and the
// same machinery works unchanged on sector-restricted operators.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "fault_inject.hpp"
#include "fermion/hubbard.hpp"
#include "io/checkpoint.hpp"
#include "ops/scb_sum.hpp"
#include "solver/imag_time.hpp"
#include "solver/lanczos.hpp"
#include "state/state_vector.hpp"
#include "symmetry/sector_operator.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

using namespace gecos;

namespace {

/// True when fn() throws a gecos::Error of exactly the given kind.
template <typename Fn>
bool throws_kind(ErrorKind kind, Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.kind() == kind;
  } catch (...) {
    return false;
  }
  return false;
}

}  // namespace

int main() {
  const std::string lpath = "resume_test_lanczos.bin";
  const std::string ipath = "resume_test_imag.bin";

  // -- Lanczos: interrupted + resumed == uninterrupted ----------------------
  HubbardParams ring;  // 1D periodic ring, n = 8
  ring.lx = 8;
  ring.u = 2.0;
  ring.mu = 0.3;
  ring.periodic_x = true;
  const ScbSum h = hubbard_scb(ring);

  LanczosOptions lo;
  lo.k = 2;
  lo.tol = 1e-11;
  Lanczos ref(h, lo);
  const double e_ref = ref.solve().eigenvalues[0];
  const double e1_ref = ref.result().eigenvalues[1];
  const std::size_t matvecs_ref = ref.result().matvecs;
  CHECK(ref.result().converged);

  LanczosOptions lc = lo;
  lc.checkpoint_path = lpath;
  lc.checkpoint_interval = 10;
  remove_checkpoint(lpath);
  {
    LanczosOptions cut = lc;
    cut.max_matvecs = 30;  // interrupt mid-flight, well before convergence
    Lanczos part(h, cut);
    const LanczosResult& ri = part.solve();
    CHECK(!ri.converged);
    CHECK_EQ(ri.checkpoints_written, 2);  // at matvecs 10 and 20
    CHECK(checkpoint_exists(lpath));
  }
  {
    Lanczos cont(h, lc);
    const LanczosResult& rr = cont.resume(lpath);
    CHECK(rr.converged);
    CHECK(rr.resumed);
    CHECK_EQ(rr.resumed_matvecs, 20);  // inherited from the last checkpoint
    // Bit-identical continuation for a fixed thread count: the resumed run
    // lands on the very trajectory the uninterrupted one took.
    CHECK_NEAR(rr.eigenvalues[0], e_ref, 1e-13);
    CHECK_NEAR(rr.eigenvalues[1], e1_ref, 1e-13);
    CHECK_EQ(rr.matvecs, matvecs_ref);
    CHECK(rr.max_norm_drift <= 1e-10);  // resume-boundary health monitors
    CHECK(rr.max_ortho_loss <= 1e-10);
    std::printf("lanczos resume: E0=%.12f matvecs=%zu (saved %zu)\n",
                rr.eigenvalues[0], rr.matvecs, rr.resumed_matvecs);
  }

  // -- geometry validation: a checkpoint only resumes into the same solver --
  {
    HubbardParams chain;  // n = 6: wrong dimension entirely
    chain.lx = 6;
    chain.u = 2.0;
    const ScbSum h6 = hubbard_scb(chain);
    Lanczos wrong_dim(h6, lo);
    CHECK(throws_kind(ErrorKind::dim_mismatch,
                      [&] { (void)wrong_dim.resume(lpath); }));

    LanczosOptions lo2 = lo;  // right operator, different subspace cap
    lo2.max_subspace = 20;
    Lanczos wrong_m(h, lo2);
    CHECK(throws_kind(ErrorKind::dim_mismatch,
                      [&] { (void)wrong_m.resume(lpath); }));

    LanczosOptions lo3 = lo;  // different reorth policy
    lo3.reorth = LanczosReorth::kSelective;
    Lanczos wrong_policy(h, lo3);
    CHECK(throws_kind(ErrorKind::dim_mismatch,
                      [&] { (void)wrong_policy.resume(lpath); }));
  }

  // -- fault recovery: corrupt primary falls back to .bak, both dead throws -
  {
    // Re-create the interrupted state (the resumed run above kept writing,
    // rotating its own generations over these files): after the cut solve,
    // .bak holds the matvecs=10 checkpoint and the primary matvecs=20.
    remove_checkpoint(lpath);
    {
      LanczosOptions cut = lc;
      cut.max_matvecs = 30;
      Lanczos part(h, cut);
      CHECK(!part.solve().converged);
    }
    // Damage the primary: resume proceeds from the backup and still
    // reproduces the uninterrupted physics. The resume solver itself runs
    // with checkpointing off so the damaged files stay as laid out here.
    test::flip_bit(lpath, 200, 5);
    Lanczos cont(h, lo);
    const LanczosResult& rr = cont.resume(lpath);
    CHECK(rr.converged);
    CHECK_EQ(rr.resumed_matvecs, 10);  // the .bak generation
    CHECK_NEAR(rr.eigenvalues[0], e_ref, 1e-13);
    CHECK_EQ(rr.matvecs, matvecs_ref);

    // Both generations damaged: the error surfaces instead of garbage.
    test::flip_bit(lpath + ".bak", 200, 5);
    Lanczos dead(h, lo);
    CHECK(throws_kind(ErrorKind::io_corrupt, [&] { (void)dead.resume(lpath); }));

    // No file at all is also io_corrupt (unopenable), not a silent fresh run.
    remove_checkpoint(lpath);
    Lanczos gone(h, lo);
    CHECK(throws_kind(ErrorKind::io_corrupt, [&] { (void)gone.resume(lpath); }));
  }

  // -- imaginary time: resume continues the filter from the saved state -----
  {
    HubbardParams chain;  // n = 6
    chain.lx = 6;
    chain.u = 2.0;
    const ScbSum h6 = hubbard_scb(chain);
    LanczosOptions glo;
    glo.k = 1;
    glo.tol = 1e-11;
    const double e0 = Lanczos(h6, glo).solve().eigenvalues[0];

    ImagTimeOptions io;
    io.dt = 0.2;
    io.variance_tol = 1e-8;
    io.max_steps = 400;

    StateVector psi_ref = StateVector::random(6, 7);
    const ImagTimeResult ra = imag_time_ground_state(h6, psi_ref, io);
    CHECK(ra.converged);
    CHECK_NEAR(ra.energy, e0, 1e-5);

    ImagTimeOptions ic = io;
    ic.checkpoint_path = ipath;
    ic.checkpoint_interval = 2;
    remove_checkpoint(ipath);
    {
      ImagTimeOptions cut = ic;
      cut.max_steps = 4;  // interrupt after four filter steps
      StateVector psi = StateVector::random(6, 7);
      const ImagTimeResult ri = imag_time_ground_state(h6, psi, cut);
      CHECK(!ri.converged);
      CHECK_EQ(ri.steps, 4);
      CHECK_EQ(ri.checkpoints_written, 2);  // at steps 2 and 4
      CHECK_NEAR(ri.beta, 4 * io.dt, 1e-12);
    }
    {
      ImagTimeOptions res = ic;
      res.resume = true;
      StateVector psi(6);  // contents replaced by the checkpoint
      const ImagTimeResult rr = imag_time_ground_state(h6, psi, res);
      CHECK(rr.converged);
      CHECK(rr.resumed);
      CHECK_EQ(rr.resumed_steps, 4);
      CHECK_NEAR(rr.beta, static_cast<double>(rr.steps) * io.dt, 1e-9);
      CHECK_NEAR(rr.energy, e0, 1e-5);
      // Physics-identical: both runs filter to the same ground state.
      CHECK_NEAR(rr.energy, ra.energy, 1e-6);
      std::printf("imag_time resume: E=%.10f beta=%.2f steps=%zu (saved %zu)\n",
                  rr.energy, rr.beta, rr.steps, rr.resumed_steps);
    }

    // Resuming into the wrong operator dimension is rejected.
    {
      ImagTimeOptions res = ic;
      res.resume = true;
      std::vector<cplx> big(std::size_t{1} << 8, cplx(1.0));
      CHECK(throws_kind(ErrorKind::dim_mismatch, [&] {
        (void)imag_time_ground_state(h, std::span<cplx>(big), res);
      }));
    }

    // opts.resume with no file present is a fresh start, not an error —
    // drivers keep a single code path.
    {
      remove_checkpoint(ipath);
      ImagTimeOptions res = ic;
      res.resume = true;
      StateVector psi = StateVector::random(6, 7);
      const ImagTimeResult rf = imag_time_ground_state(h6, psi, res);
      CHECK(rf.converged);
      CHECK(!rf.resumed);
      CHECK_NEAR(rf.energy, e0, 1e-5);
      remove_checkpoint(ipath);
    }
  }

  // -- sector-restricted operators resume through the same machinery --------
  {
    HubbardParams p;  // 2x2 spinful lattice, n = 8; half-filling sector
    p.lx = 2;
    p.ly = 2;
    p.u = 4.0;
    p.mu = 0.5;
    p.spinful = true;
    const ScbSum hf = hubbard_scb(p);
    const SectorBasis basis = hubbard_sector(p, 2, 2);
    const SectorOperator hs(basis, hf);

    LanczosOptions so;
    so.k = 1;
    so.tol = 1e-11;
    Lanczos sref(hs, so);
    const double es_ref = sref.solve().eigenvalues[0];
    const std::size_t sm_ref = sref.result().matvecs;
    CHECK(sref.result().converged);

    LanczosOptions sc = so;
    sc.checkpoint_path = lpath;
    sc.checkpoint_interval = 4;
    remove_checkpoint(lpath);
    {
      LanczosOptions cut = sc;
      cut.max_matvecs = 10;
      Lanczos part(hs, cut);
      CHECK(!part.solve().converged);
    }
    Lanczos cont(hs, sc);
    const LanczosResult& rr = cont.resume(lpath);
    CHECK(rr.converged);
    CHECK_NEAR(rr.eigenvalues[0], es_ref, 1e-13);
    CHECK_EQ(rr.matvecs, sm_ref);
    std::printf("sector resume: dim=%zu E0=%.12f matvecs=%zu\n", basis.dim(),
                rr.eigenvalues[0], rr.matvecs);
    remove_checkpoint(lpath);
  }

  return gecos::test::finish("test_resume");
}
