// Scheduler suite: deterministic results across scheduler instances,
// priority ordering under a busy executor, observable batching (one Krylov
// pass for K coalesced expectation jobs, bitwise equal to sequential runs),
// cooperative cancel, runtime-failure kind propagation, abandon-and-resume
// through the job journal + solver checkpoint, and terminal-result
// persistence across a process-lifetime boundary (simulated by a fresh
// Scheduler on the same state dir with the executor never started).
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"

using namespace gecos;
using namespace gecos::serve;

namespace {

bool throws_kind(ErrorKind kind, const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.kind() == kind;
  } catch (...) {
    return false;
  }
  return false;
}

/// 3x2 spinful half-filling: sector dim C(6,3)^2 = 400, solves in tens of
/// milliseconds — the fast workhorse spec.
JobSpec small_ground() {
  JobSpec s;
  s.kind = JobKind::kGroundState;
  s.lattice.lx = 3;
  s.lattice.ly = 2;
  s.lattice.u = 4.0;
  s.lattice.mu = 0.5;
  s.lattice.periodic_x = true;
  s.lattice.spinful = true;
  s.use_sector = true;
  s.n_up = 3;
  s.n_down = 3;
  return s;
}

/// 4x2 spinful half-filling: sector dim C(8,4)^2 = 4900, seconds to solve —
/// the slow spec the ordering and resume tests lean on.
JobSpec big_ground() {
  JobSpec s = small_ground();
  s.lattice.lx = 4;
  s.n_up = 4;
  s.n_down = 4;
  return s;
}

/// Expectation job on the small lattice (CDW initial state by default);
/// per-test observable lists vary, everything else shares one evolution key.
JobSpec small_expectation(std::vector<ObservableSpec> obs) {
  JobSpec s = small_ground();
  s.kind = JobKind::kExpectation;
  s.dt = 0.05;
  s.steps = 8;
  s.observables = std::move(obs);
  return s;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

int main() {
  set_num_threads(2);
  const std::string root = "sched_test_state";
  std::error_code ec;
  std::filesystem::remove_all(root, ec);

  // -- identical specs give bitwise-identical results across instances ------
  JobResult small_ref;
  {
    Scheduler s1;
    Scheduler s2;
    const std::uint64_t i1 = s1.submit(small_ground());
    const std::uint64_t i2 = s2.submit(small_ground());
    CHECK(s1.wait(i1, 600.0));
    CHECK(s2.wait(i2, 600.0));
    const JobResult r1 = s1.fetch(i1);
    const JobResult r2 = s2.fetch(i2);
    CHECK(r1.converged && r2.converged);
    CHECK(bitwise_equal(r1.eigenvalues, r2.eigenvalues));
    CHECK(bitwise_equal(r1.residuals, r2.residuals));
    CHECK(bitwise_equal(r1.residual_history, r2.residual_history));
    CHECK_EQ(r1.matvecs, r2.matvecs);
    CHECK_EQ(r1.iterations, r2.iterations);
    small_ref = r1;
    s1.stop(false);
    s2.stop(false);
  }

  // -- priority: a high-priority late arrival overtakes the queue -----------
  {
    Scheduler sched;
    // The blocker occupies the executor while A and B queue behind it.
    JobSpec blocker = small_expectation({});
    blocker.kind = JobKind::kQuench;
    blocker.steps = 20;
    (void)sched.submit(blocker);
    // The low-priority job is a long quench (hundreds of fixed-cost Krylov
    // steps — a much wider timing margin than a fast-converging solve).
    // Its step count differs from the blocker's so their evolution keys
    // cannot coalesce.
    JobSpec slow = small_expectation({});
    slow.kind = JobKind::kQuench;
    slow.steps = 300;
    const std::uint64_t slow_id = sched.submit(slow);
    JobSpec fast = small_ground();
    fast.priority = 5;  // submitted later, runs first
    const std::uint64_t fast_id = sched.submit(fast);
    CHECK(sched.wait(fast_id, 600.0));
    CHECK(sched.fetch(fast_id).converged);
    // The long low-priority quench cannot have finished already: the
    // executor provably took the late high-priority job first. (Margin:
    // the quench needs hundreds of Krylov steps after the fast job's
    // terminal notification; this check runs milliseconds after it.)
    CHECK(sched.status(slow_id).state != JobState::kDone);
    CHECK(sched.wait(slow_id, 600.0));
    CHECK(sched.fetch(slow_id).converged);
    sched.stop(false);
  }

  // -- observable batching: one pass, bitwise equal to sequential runs ------
  {
    const std::vector<std::vector<ObservableSpec>> requests = {
        {{ObservableKind::kDensity, 0, 0}, {ObservableKind::kDensity, 3, 0}},
        {{ObservableKind::kDoublon, 1, 0}},
        {{ObservableKind::kDensityCorr, 0, 2},
         {ObservableKind::kTotalNumber, 0, 0}},
    };

    // Batched: enqueue the backlog first, then start the executor — the
    // equal evolution keys coalesce into exactly one pass.
    SchedulerOptions batched_opts;
    batched_opts.autostart = false;
    Scheduler batched(batched_opts);
    std::vector<std::uint64_t> ids;
    for (const auto& obs : requests)
      ids.push_back(batched.submit(small_expectation(obs)));
    batched.start();
    for (const std::uint64_t id : ids) CHECK(batched.wait(id, 600.0));
    const ServerStats bs = batched.stats();
    CHECK_EQ(bs.batch_passes, 1u);
    CHECK_EQ(bs.batched_jobs, static_cast<std::uint64_t>(requests.size()));

    // Sequential: same jobs one at a time — no batching possible.
    Scheduler seq;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::uint64_t sid = seq.submit(small_expectation(requests[i]));
      CHECK(seq.wait(sid, 600.0));
      const JobResult sr = seq.fetch(sid);
      const JobResult br = batched.fetch(ids[i]);
      CHECK(bitwise_equal(br.times, sr.times));
      CHECK(bitwise_equal(br.loschmidt, sr.loschmidt));
      CHECK(bitwise_equal(br.values, sr.values));
      CHECK_EQ(br.values.size(),
               requests[i].size() * static_cast<std::size_t>(8));
    }
    CHECK_EQ(seq.stats().batch_passes, 0u);
    batched.stop(false);
    seq.stop(false);
  }

  // -- cancel: queued jobs cancel immediately, fetch reports cancelled ------
  {
    SchedulerOptions o;
    o.autostart = false;  // executor never runs: the job stays queued
    Scheduler sched(o);
    const std::uint64_t id = sched.submit(small_ground());
    CHECK(sched.cancel(id));
    CHECK(sched.status(id).state == JobState::kCancelled);
    CHECK(throws_kind(ErrorKind::cancelled, [&] { (void)sched.fetch(id); }));
    CHECK(!sched.cancel(id));  // already terminal
    CHECK(throws_kind(ErrorKind::not_found, [&] { (void)sched.cancel(999); }));
    CHECK(throws_kind(ErrorKind::not_found, [&] { (void)sched.status(999); }));
    // wait() on a job that will never run times out false, not hang.
    CHECK(!sched.wait(sched.submit(small_ground()), 0.05));
    CHECK_EQ(sched.list().size(), 2u);
    CHECK_EQ(sched.stats().cancelled, 1u);
  }

  // -- runtime failures carry a machine-readable kind -----------------------
  {
    Scheduler sched;
    // Bits above the lattice's 12 modes pass spec validation (the sector
    // counts mask them off) but make the initial configuration invalid at
    // state-construction time — a runtime failure, not a submit rejection.
    JobSpec bad = small_expectation({{ObservableKind::kDensity, 0, 0}});
    bad.initial_occupation = (1ull << 40) | 0b111000111;
    const std::uint64_t id = sched.submit(bad);
    CHECK(sched.wait(id, 600.0));
    const JobStatus st = sched.status(id);
    CHECK(st.state == JobState::kFailed);
    CHECK_EQ(st.error_kind, std::string("protocol"));
    CHECK(!st.error_message.empty());
    CHECK(throws_kind(ErrorKind::protocol, [&] { (void)sched.fetch(id); }));
    CHECK_EQ(sched.stats().failed, 1u);
    sched.stop(false);
  }

  // -- abandon + restart: the journal and checkpoint survive a stop ---------
  {
    JobSpec spec = big_ground();
    spec.checkpoint_interval = 25;

    // Uninterrupted reference on its own state dir.
    JobResult ref;
    {
      SchedulerOptions o;
      o.state_dir = root + "/ref";
      Scheduler sched(o);
      const std::uint64_t id = sched.submit(spec);
      CHECK(sched.wait(id, 600.0));
      ref = sched.fetch(id);
      sched.stop(false);
    }

    // Interrupted run: stop(abandon) mid-solve, then a successor scheduler
    // on the same state dir picks the journaled job back up. If the solve
    // wins the race and finishes first, the comparison still must hold —
    // the test degrades to terminal-journal persistence.
    const std::string dir = root + "/resume";
    std::uint64_t id = 0;
    {
      SchedulerOptions o;
      o.state_dir = dir;
      Scheduler sched(o);
      id = sched.submit(spec);
      // Give the solve time to make real progress (and usually write a
      // checkpoint) before abandoning it.
      for (int poll = 0; poll < 200; ++poll) {
        const JobStatus st = sched.status(id);
        if (st.state != JobState::kQueued && st.matvecs > 30) break;
        if (st.state == JobState::kDone) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      sched.stop(true);
    }
    JobResult resumed;
    {
      SchedulerOptions o;
      o.state_dir = dir;
      Scheduler sched(o);
      CHECK(sched.wait(id, 600.0));  // same id, straight from the journal
      resumed = sched.fetch(id);
      sched.stop(false);
    }
    // The PR 6 resume contract: eigenvalues, residuals and the matvec /
    // iteration counts are bit-identical to the uninterrupted run.
    // residual_history is deliberately NOT compared — a resumed solve
    // reports the history since the checkpoint, not a replay of the past
    // (same contract tests/test_resume.cpp and tools/serve_smoke.cpp pin).
    CHECK(resumed.converged);
    CHECK(bitwise_equal(resumed.eigenvalues, ref.eigenvalues));
    CHECK(bitwise_equal(resumed.residuals, ref.residuals));
    CHECK_EQ(resumed.matvecs, ref.matvecs);
    CHECK_EQ(resumed.iterations, ref.iterations);

    // Terminal persistence: a third scheduler that never starts its
    // executor serves the done result purely from the journal.
    {
      SchedulerOptions o;
      o.state_dir = dir;
      o.autostart = false;
      Scheduler sched(o);
      const JobResult from_journal = sched.fetch(id);
      CHECK(bitwise_equal(from_journal.eigenvalues, resumed.eigenvalues));
      CHECK(bitwise_equal(from_journal.residual_history,
                          resumed.residual_history));
      CHECK_EQ(from_journal.matvecs, resumed.matvecs);
      CHECK(from_journal.converged);
    }
  }

  std::filesystem::remove_all(root, ec);
  return gecos::test::finish("test_scheduler");
}
