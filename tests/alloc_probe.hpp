// Heap-allocation probe for the solver tests: counts every operator new in
// the including test binary, so "zero allocations per iteration after
// warm-up" claims are pinned by a test instead of asserted in prose.
//
// Including this header replaces the global operator new/delete family with
// malloc-backed versions that bump a counter. Under ASan/UBSan the probe
// compiles to a no-op (GECOS_ALLOC_PROBE_ACTIVE 0): the sanitizer runtime
// owns the allocator there, and its own bookkeeping allocations would make
// the counts meaningless anyway. Guard probe assertions with
// GECOS_ALLOC_PROBE_ACTIVE.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define GECOS_ALLOC_PROBE_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GECOS_ALLOC_PROBE_ACTIVE 0
#else
#define GECOS_ALLOC_PROBE_ACTIVE 1
#endif
#else
#define GECOS_ALLOC_PROBE_ACTIVE 1
#endif

namespace gecos::test {

/// Number of operator-new calls since process start (0 when the probe is
/// inactive under sanitizers).
inline std::atomic<long> alloc_count{0};

/// Convenience read of the counter.
inline long allocations() { return alloc_count.load(); }

}  // namespace gecos::test

#if GECOS_ALLOC_PROBE_ACTIVE

namespace gecos::test::detail {

/// Shared malloc-backed allocation path of every operator-new replacement.
inline void* probe_alloc(std::size_t n, std::size_t align) {
  ++gecos::test::alloc_count;
  if (n == 0) n = 1;
  void* p = nullptr;
  if (align <= alignof(::max_align_t)) {
    p = std::malloc(n);
  } else if (posix_memalign(&p, align, n) != 0) {
    p = nullptr;
  }
  return p;
}

}  // namespace gecos::test::detail

// Replaceable global allocation functions ([new.delete]): throwing and
// nothrow, scalar and array, default- and over-aligned. All route through
// probe_alloc / free.
void* operator new(std::size_t n) {
  void* p = gecos::test::detail::probe_alloc(n, alignof(::max_align_t));
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  void* p = gecos::test::detail::probe_alloc(n, static_cast<std::size_t>(a));
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return gecos::test::detail::probe_alloc(n, alignof(::max_align_t));
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return gecos::test::detail::probe_alloc(n, alignof(::max_align_t));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // GECOS_ALLOC_PROBE_ACTIVE
