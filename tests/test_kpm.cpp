// Kernel-polynomial DOS suite, pinned against the dense eigh reference with
// the IDENTICAL Jackson kernel and spectral bracket (tests/spectral_ref.hpp).
// Pins (1) exact-trace moments and DOS at n = 8 match the dense reference
// to <= 1e-8 integrated absolute deviation, (2) the power-iteration bounds
// bracket the true spectrum, (3) the same gate sector-restricted at n = 10
// (dim 252), (4) local DOS of a probe state against its dense reference,
// (5) stochastic-trace reproducibility (bit-identical under one seed) and
// consistency with the exact trace, (6) explicit-bounds passthrough,
// (7) warm recompute allocates nothing, and (8) the error paths.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <cmath>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <vector>
// clang-format on

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "ops/scb_sum.hpp"
#include "spectral/kpm.hpp"
#include "spectral/spectral_bounds.hpp"
#include "spectral_ref.hpp"
#include "symmetry/sector_operator.hpp"
#include "symmetry/sector_vector.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// Integrated |rho_kpm - rho_ref| over the interior 90% of the bracket
/// (the shared grid of the exactness gates; edges excluded because the
/// 1/sqrt(1-x^2) Chebyshev weight is singular there).
double kpm_vs_ref(const KpmDos& kpm, const gecos::test::KpmRef& ref) {
  const double w = kpm.e_max() - kpm.e_min();
  const std::vector<double> grid = gecos::test::linspace(
      kpm.e_min() + 0.05 * w, kpm.e_max() - 0.05 * w, 601);
  std::vector<double> a(grid.size()), b(grid.size());
  kpm.evaluate(grid, a);
  for (std::size_t i = 0; i < grid.size(); ++i)
    b[i] = ref.evaluate_at(grid[i]);
  return gecos::test::integrated_abs_dev(a, b, grid[1] - grid[0]);
}

}  // namespace

int main() {
  // -- exact-trace DOS at n = 8 (dim 256) vs the dense reference -------------
  {
    HubbardParams p;  // spinless ring, n = 8
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const EigenSystem es = eigh(h.to_matrix());

    KpmDos kpm(h);  // M = 128, exact trace, automatic bounds
    const std::size_t matvecs = kpm.compute();
    CHECK_EQ(matvecs, std::size_t{256 * 64});  // dim * M/2: doubling trick

    // The power-iteration bracket must contain the true spectrum — KPM
    // moments are meaningless for eigenvalues mapped outside (-1, 1).
    CHECK(kpm.e_min() < es.eigenvalues.front());
    CHECK(kpm.e_max() > es.eigenvalues.back());

    const auto ref = gecos::test::KpmRef::dos(es, kpm.e_min(), kpm.e_max(),
                                              kpm.moments().size());
    CHECK_NEAR(kpm.moments()[0], 1.0, 1e-12);
    for (std::size_t k = 0; k < ref.mu.size(); ++k)
      CHECK_NEAR(kpm.moments()[k], ref.mu[k], 1e-10);
    CHECK(kpm_vs_ref(kpm, ref) < 1e-8);
  }

  // -- sector-restricted exact trace at n = 10 (N = 5 sector, dim 252) ------
  {
    HubbardParams p;  // spinless ring, n = 10
    p.lx = 10;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const SectorBasis b = hubbard_sector(p, 5);
    const SectorOperator hs(b, h);
    const EigenSystem es = eigh(gecos::test::dense_of(hs));

    KpmDos kpm(hs);
    kpm.compute();
    CHECK(kpm.e_min() < es.eigenvalues.front());
    CHECK(kpm.e_max() > es.eigenvalues.back());
    const auto ref = gecos::test::KpmRef::dos(es, kpm.e_min(), kpm.e_max(),
                                              kpm.moments().size());
    CHECK(kpm_vs_ref(kpm, ref) < 1e-8);
  }

  // -- local DOS of a probe state vs its dense reference ---------------------
  {
    HubbardParams p;  // open chain, n = 6 (dim 64)
    p.lx = 6;
    p.u = 2.0;
    p.mu = 0.3;
    const ScbSum h = hubbard_scb(p);
    const EigenSystem es = eigh(h.to_matrix());

    std::mt19937_64 rng(42);
    std::normal_distribution<double> g;
    std::vector<cplx> phi(64);
    for (auto& x : phi) x = cplx(g(rng), g(rng));  // unnormalized on purpose

    KpmDos kpm(h);
    kpm.compute_local(phi);
    const double nrm = vec_norm(phi);
    CHECK_NEAR(kpm.weight(), nrm * nrm, 1e-10 * nrm * nrm);
    const auto ref = gecos::test::KpmRef::local(es, phi, kpm.e_min(),
                                                kpm.e_max(),
                                                kpm.moments().size());
    CHECK(kpm_vs_ref(kpm, ref) < 1e-8);
  }

  // -- stochastic trace: seeded reproducibility + exact-trace consistency ----
  {
    HubbardParams p;
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);

    KpmOptions ko;
    ko.num_random = 32;
    KpmDos a(h, ko), b(h, ko);
    a.compute();
    b.compute();
    // Bit-identical under one seed — the reproducibility contract.
    for (std::size_t k = 0; k < a.moments().size(); ++k)
      CHECK(a.moments()[k] == b.moments()[k]);

    KpmOptions ko2 = ko;
    ko2.seed = 99;
    KpmDos c(h, ko2);
    c.compute();
    double diff = 0.0;
    for (std::size_t k = 0; k < a.moments().size(); ++k)
      diff += std::abs(a.moments()[k] - c.moments()[k]);
    CHECK(diff > 0.0);  // a different seed draws different probes

    // 32 Gaussian probes over dim 256: moment fluctuations ~ 1/sqrt(R*D).
    KpmDos exact(h);
    exact.compute();
    const std::vector<double> grid =
        gecos::test::linspace(exact.e_min() + 0.8, exact.e_max() - 0.8, 301);
    std::vector<double> da(grid.size()), de(grid.size());
    a.evaluate(grid, da);
    exact.evaluate(grid, de);
    CHECK(gecos::test::integrated_abs_dev(da, de, grid[1] - grid[0]) < 0.2);
  }

  // -- explicit bounds passthrough -------------------------------------------
  {
    HubbardParams p;
    p.lx = 4;
    const ScbSum h = hubbard_scb(p);
    KpmOptions ko;
    ko.e_min = -9.0;
    ko.e_max = 7.0;
    const KpmDos kpm(h, ko);
    CHECK_EQ(kpm.e_min(), -9.0);
    CHECK_EQ(kpm.e_max(), 7.0);
  }

  // -- allocation probe: warm recompute allocates nothing --------------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    KpmOptions ko;
    ko.num_moments = 64;
    KpmDos kpm(h, ko);
    kpm.compute();
    std::vector<double> grid = gecos::test::linspace(-6.0, 6.0, 101);
    std::vector<double> out(grid.size());
    kpm.evaluate(grid, out);
    const long before = gecos::test::allocations();
    kpm.compute();
    kpm.evaluate(grid, out);
    const long delta = gecos::test::allocations() - before;
#if GECOS_ALLOC_PROBE_ACTIVE
    CHECK_EQ(delta, 0L);
#endif
    std::printf("alloc probe: %ld allocations during warm recompute\n", delta);
  }

  // -- error paths -----------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 4;
    const ScbSum h = hubbard_scb(p);

    bool threw = false;
    try {
      KpmOptions ko;
      ko.num_moments = 1;
      KpmDos bad(h, ko);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    KpmDos kpm(h);
    threw = false;
    try {
      kpm.evaluate_at(0.0);  // no compute yet
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    const std::vector<cplx> short_probe(4, cplx(1.0));
    threw = false;
    try {
      kpm.compute_local(short_probe);  // wrong dimension
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    const std::vector<cplx> zero_probe(16, cplx(0.0));
    threw = false;
    try {
      kpm.compute_local(zero_probe);  // zero probe
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    kpm.compute();
    threw = false;
    try {
      std::vector<double> grid(10), out(9);
      kpm.evaluate(grid, out);  // size mismatch
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    threw = false;
    try {
      SpectralBoundsOptions bo;
      bo.iters = 0;
      estimate_spectral_bounds(h, bo);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  return gecos::test::finish("test_kpm");
}
