// Trotter evolution engine: exact single-term exponentials against dense
// expm, global-error scaling of the order-1/2 product formulas on a 6-qubit
// Hubbard chain, conservation laws under Strang stepping, and the Evolver
// interface used polymorphically (TrotterEvolver and KrylovEvolver behind
// one Evolver*, the integrator-swap contract of the quench workloads).
#include <cstdio>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "linalg/blas1.hpp"
#include "evolve/evolver.hpp"
#include "evolve/trotter.hpp"
#include "fermion/hubbard.hpp"
#include "linalg/expm.hpp"
#include "ops/scb_sum.hpp"
#include "simd/simd.hpp"
#include "solver/krylov_evolve.hpp"
#include "state/state_vector.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// Random valid-Hamiltonian term: either a Hermitian bare product with a
/// real coefficient or an arbitrary product with "+ h.c.".
ScbTerm random_term(std::size_t n, std::mt19937& rng, bool add_hc) {
  std::uniform_real_distribution<double> cd(-1.0, 1.0);
  std::vector<Scb> ops(n);
  for (;;) {
    for (auto& o : ops) o = kAllScb[rng() % kAllScb.size()];
    if (!add_hc) {
      bool herm = true;
      for (Scb o : ops) herm &= scb_is_hermitian(o);
      if (!herm) continue;
      return ScbTerm(cd(rng), ops, false);
    }
    return ScbTerm(cplx(cd(rng), cd(rng)), ops, true);
  }
}

/// Dense exp(-i t H) |x> reference.
std::vector<cplx> dense_evolve(const Matrix& h, double t,
                               std::span<const cplx> x) {
  return expm_hermitian(h, -t).apply(x);
}

/// Max-amplitude global error of an `order` Trotter evolution with the given
/// step count against the dense propagator.
double trotter_error(const TrotterEvolver& ev, const Matrix& h, double t,
                     int steps, int order, std::span<const cplx> x0) {
  std::vector<cplx> x(x0.begin(), x0.end());
  ev.evolve(x, t, steps, order);
  return vec_max_abs_diff(x, dense_evolve(h, t, x0));
}

}  // namespace

int main() {
  std::mt19937 rng(77);

  // TermExp against dense expm over random single terms: every structural
  // family (diagonal, Pauli flips, transitions, mixtures; bare and + h.c.).
  for (int it = 0; it < 200; ++it) {
    const std::size_t n = 1 + it % 5;
    const std::size_t dim = std::size_t{1} << n;
    const ScbTerm term = random_term(n, rng, it % 2 == 0);
    const double t = (static_cast<double>(rng() % 100) - 50.0) / 25.0;
    const std::vector<cplx> x0 = random_state(dim, rng);

    std::vector<cplx> x = x0;
    TermExp(term).apply(t, x);
    const std::vector<cplx> expect =
        dense_evolve(term.hamiltonian_matrix(), t, x0);
    CHECK_NEAR(vec_max_abs_diff(x, expect), 0.0, 1e-12);
    CHECK_NEAR(vec_norm(x), 1.0, 1e-12);  // exact exponentials are unitary
  }

  // A non-Hermitian bare term has no closed-form unitary: must throw.
  {
    bool threw = false;
    try {
      TermExp(ScbTerm(cplx(1.0, 0.5), {Scb::Sp}, false));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // 6-qubit Hubbard chain for the product-formula scaling pins.
  HubbardParams p;
  p.lx = 6;
  p.t = 1.0;
  p.u = 2.0;
  p.mu = 0.3;
  p.periodic_x = true;
  const ScbSum h = hubbard_scb(p);
  const Matrix hd = h.to_matrix();
  const TrotterEvolver ev(h);
  const std::size_t dim = std::size_t{1} << 6;
  const std::vector<cplx> x0 = random_state(dim, rng);
  const double t_total = 1.0;

  // Order-1 global error is O(dt): halving dt halves the error.
  {
    const double e1 = trotter_error(ev, hd, t_total, 16, 1, x0);
    const double e2 = trotter_error(ev, hd, t_total, 32, 1, x0);
    const double ratio = e1 / e2;
    std::printf("order1: e(dt)=%.3e e(dt/2)=%.3e ratio=%.2f\n", e1, e2, ratio);
    CHECK(e1 > 1e-6);  // far from fp noise, scaling is meaningful
    CHECK(ratio > 1.6 && ratio < 2.4);
  }

  // Order-2 (Strang) global error is O(dt^2): halving dt quarters it.
  {
    const double e1 = trotter_error(ev, hd, t_total, 16, 2, x0);
    const double e2 = trotter_error(ev, hd, t_total, 32, 2, x0);
    const double ratio = e1 / e2;
    std::printf("order2: e(dt)=%.3e e(dt/2)=%.3e ratio=%.2f\n", e1, e2, ratio);
    CHECK(e1 > 1e-8);
    CHECK(ratio > 3.2 && ratio < 4.8);
  }

  // Acceptance pin: order-2 error < 1e-6 at dt = 1e-3.
  {
    const double e = trotter_error(ev, hd, 0.1, 100, 2, x0);
    std::printf("order2 dt=1e-3: err=%.3e\n", e);
    CHECK(e < 1e-6);
  }

  // Conservation under Strang steps. Norm is exact (every TermExp is
  // exactly unitary) and <N> is exact too: every Hermitian Hubbard term
  // (hopping pair, density product) commutes with total particle number, so
  // each term exponential preserves <N> individually. Energy <H> follows
  // the modified-Hamiltonian picture of symmetric integrators: it
  // oscillates at O(dt^2) with no secular drift — at a physically large
  // dt = 0.05 it stays bounded, and at dt = 2e-5 the O(dt^2) envelope sits
  // below the 1e-10 drift pin. The dt = 0.05 bound is calibrated to the
  // evolver's diagonal-major splitting order (all commuting diagonal terms
  // as one block — see trotter.cpp), whose oscillation constant on this
  // chain is ~6e-3; the pin guards against secular growth, not the
  // splitting-dependent prefactor.
  {
    StateVector x(6);
    x = StateVector::product(6, hubbard_cdw_occupation(p));
    const ScbSum nop = jw_sum(total_number(6), 6);
    const cplx e0 = x.expectation(h);
    const cplx n0 = x.expectation(nop);
    CHECK_NEAR(n0 - cplx(3.0), 0.0, 1e-12);  // CDW on 6 sites: 3 particles
    for (int s = 0; s < 200; ++s) ev.step(x, 0.05, 2);
    CHECK_NEAR(x.norm(), 1.0, 1e-12);
    CHECK_NEAR((x.expectation(h) - e0).real(), 0.0, 1e-2);  // bounded
    CHECK_NEAR(std::abs(x.expectation(h).imag()), 0.0, 1e-10);
    CHECK_NEAR((x.expectation(nop) - n0).real(), 0.0, 1e-10);  // exact
  }
  {
    StateVector x = StateVector::product(6, hubbard_cdw_occupation(p));
    const cplx e0 = x.expectation(h);
    double drift = 0.0;
    for (int s = 0; s < 200; ++s) {
      ev.step(x, 2e-5, 2);
      drift = std::max(drift, std::abs((x.expectation(h) - e0).real()));
    }
    std::printf("strang dt=2e-5: max <H> drift over 200 steps = %.3e\n",
                drift);
    CHECK(drift < 1e-10);
  }

  // Trotter steps commute with the dense propagator limit under refinement:
  // a StateVector evolve equals the span evolve (same engine, same buffers).
  {
    StateVector a = StateVector::random(6, 123);
    std::vector<cplx> b(a.amps().begin(), a.amps().end());
    ev.evolve(a, 0.3, 7, 2);
    ev.evolve(b, 0.3, 7, 2);
    CHECK_NEAR(vec_max_abs_diff(a.amps(), b), 0.0, 0.0);
  }

  // The integrator-swap contract: both engines behind one Evolver*, driven
  // through only the base interface, agree with the dense propagator (each
  // at its own accuracy) and with each other.
  {
    std::vector<std::unique_ptr<Evolver>> evolvers;
    evolvers.push_back(std::make_unique<TrotterEvolver>(h));
    evolvers.push_back(std::make_unique<KrylovEvolver>(h));
    const double tols[] = {1e-5, 1e-9};  // Trotter at dt=1e-3, Krylov budget
    const std::vector<cplx> expect = dense_evolve(hd, 0.2, x0);
    std::vector<std::vector<cplx>> results;
    for (std::size_t i = 0; i < evolvers.size(); ++i) {
      const Evolver& e = *evolvers[i];
      CHECK_EQ(e.n_qubits(), std::size_t{6});
      StateVector x(6);
      std::copy(x0.begin(), x0.end(), x.amps().begin());
      e.evolve(x, 0.2, 200);
      CHECK(vec_max_abs_diff(x.amps(), expect) < tols[i]);
      results.emplace_back(x.amps().begin(), x.amps().end());

      // The base-class steps<1 validation holds for every implementation.
      bool threw = false;
      try {
        std::vector<cplx> y = x0;
        e.evolve(y, 0.1, 0);
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      CHECK(threw);
    }
    CHECK(vec_max_abs_diff(results[0], results[1]) < 2e-5);
  }

  // Fusion schedule: the fused evolver collapses the term sequence into
  // fewer groups, reproduces the unfused (one-sweep-per-term, same
  // canonical order) trajectory to 1e-12 over a real quench, and its
  // traffic model shrinks accordingly.
  {
    const TrotterEvolver fused(h, 1e-12, 2, true);
    const TrotterEvolver plain(h, 1e-12, 2, false);
    CHECK(fused.fused());
    CHECK(!plain.fused());
    CHECK_EQ(fused.num_terms(), plain.num_terms());
    CHECK(fused.num_groups() < fused.num_terms());
    CHECK_EQ(plain.num_groups(), plain.num_terms());
    CHECK(fused.step_traffic_bytes(2) < plain.step_traffic_bytes(2));
    CHECK(fused.step_traffic_bytes(1) < fused.step_traffic_bytes(2));
    StateVector a = StateVector::product(6, hubbard_cdw_occupation(p));
    StateVector b = a;
    fused.evolve(a, 1.0, 50, 2);
    plain.evolve(b, 1.0, 50, 2);
    CHECK_NEAR(a.max_abs_diff(b), 0.0, 1e-12);
    // Order 1 fuses and agrees the same way.
    StateVector c = StateVector::product(6, hubbard_cdw_occupation(p));
    StateVector d = c;
    fused.evolve(c, 0.5, 50, 1);
    plain.evolve(d, 0.5, 50, 1);
    CHECK_NEAR(c.max_abs_diff(d), 0.0, 1e-12);
  }

  // Forced-tier sweep: the same Strang trajectory is BITWISE identical
  // under every SIMD tier available on this host (the cross-tier kernel
  // contract lifted to whole evolutions), fused and unfused alike.
  {
    const SimdTier initial = simd_tier();
    const TrotterEvolver fused(h, 1e-12, 2, true);
    const TrotterEvolver plain(h, 1e-12, 2, false);
    for (const TrotterEvolver* ev2 : {&fused, &plain}) {
      set_simd_tier(SimdTier::scalar);
      StateVector ref = StateVector::product(6, hubbard_cdw_occupation(p));
      for (int s = 0; s < 5; ++s) ev2->step(ref, 0.03, 2);
      for (SimdTier t : {SimdTier::avx2, SimdTier::avx512}) {
        if (!simd_tier_available(t)) continue;
        set_simd_tier(t);
        StateVector x = StateVector::product(6, hubbard_cdw_occupation(p));
        for (int s = 0; s < 5; ++s) ev2->step(x, 0.03, 2);
        CHECK_NEAR(ref.max_abs_diff(x), 0.0, 0.0);
      }
    }
    set_simd_tier(initial);
  }

  return gecos::test::finish("test_evolve");
}
