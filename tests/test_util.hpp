// Minimal assertion harness for the ctest suite: header-only, no framework
// dependency (the container deliberately ships no gtest). Each test file is
// one executable; a nonzero failure count is the process exit code, which is
// all ctest needs.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace gecos::test {

inline int failures = 0;
inline int checks = 0;

#define CHECK(cond)                                                       \
  do {                                                                    \
    ++gecos::test::checks;                                                \
    if (!(cond)) {                                                        \
      ++gecos::test::failures;                                            \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);         \
    }                                                                     \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                             \
  do {                                                                    \
    ++gecos::test::checks;                                                \
    const double check_near_d_ = std::abs((a) - (b));                     \
    if (!(check_near_d_ <= (tol))) {                                      \
      ++gecos::test::failures;                                            \
      std::printf("FAIL %s:%d: |%s - %s| = %g > %g\n", __FILE__,          \
                  __LINE__, #a, #b, check_near_d_, (double)(tol));        \
    }                                                                     \
  } while (0)

#define CHECK_EQ(a, b)                                                    \
  do {                                                                    \
    ++gecos::test::checks;                                                \
    if (!((a) == (b))) {                                                  \
      ++gecos::test::failures;                                            \
      std::printf("FAIL %s:%d: %s != %s\n", __FILE__, __LINE__, #a, #b);  \
    }                                                                     \
  } while (0)

/// Prints the tally; return this from main().
inline int finish(const char* name) {
  std::printf("%s: %d checks, %d failures\n", name, checks, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace gecos::test
