// Dense-reference library for the spectral & thermal suites: every quantity
// the src/spectral/ estimators produce, recomputed EXACTLY from a full eigh
// eigendecomposition at small dimension (n <= 10). The references share the
// estimators' own broadening conventions — Lorentzian eta for the continued
// fraction, the identical Jackson kernel and spectral bracket for KPM — so
// agreement is limited only by floating-point accumulation, and the 1e-8
// integrated-deviation gates in the tests and bench entries are meaningful.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "ops/linear_op.hpp"

namespace gecos::test {

/// Dense matrix of any LinearOperator, built column by column through
/// apply_add on basis states. O(dim^2) memory — small operators only.
inline Matrix dense_of(const LinearOperator& a) {
  const std::size_t n = a.dim();
  Matrix m(n, n);
  std::vector<cplx> x(n), y(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::fill(x.begin(), x.end(), cplx(0.0));
    std::fill(y.begin(), y.end(), cplx(0.0));
    x[c] = cplx(1.0);
    a.apply_add(x, y, cplx(1.0));
    for (std::size_t r = 0; r < n; ++r) m(r, c) = y[r];
  }
  return m;
}

/// Exact pole representation of one probe state's spectral function:
/// energies E_j and weights |<j|phi>|^2 from the eigensystem.
struct SpectralRef {
  std::vector<double> energies;
  std::vector<double> weights;

  /// Projects the (unnormalized) probe onto the eigenbasis.
  static SpectralRef build(const EigenSystem& es, std::span<const cplx> phi) {
    SpectralRef r;
    const std::size_t n = es.eigenvalues.size();
    r.energies = es.eigenvalues;
    r.weights.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      cplx amp(0.0);
      for (std::size_t i = 0; i < n; ++i)
        amp += std::conj(es.eigenvectors(i, j)) * phi[i];
      r.weights[j] = std::norm(amp);
    }
    return r;
  }

  /// A(w) = sum_j w_j (eta/pi) / ((w - E_j)^2 + eta^2) — the same Lorentzian
  /// broadening the continued fraction's complex shift eta produces.
  double evaluate_at(double omega, double eta) const {
    double s = 0.0;
    for (std::size_t j = 0; j < energies.size(); ++j) {
      const double d = omega - energies[j];
      s += weights[j] * (eta / M_PI) / (d * d + eta * eta);
    }
    return s;
  }
};

/// Exact Chebyshev-moment reconstruction: the KPM estimator's own kernel
/// applied to moments computed from the eigenvalues directly, so the dense
/// reference carries the identical resolution broadening.
struct KpmRef {
  double scale = 1.0, shift = 0.0;  // the estimator's (a, b)
  double weight = 1.0;
  std::vector<double> mu;
  std::vector<double> jackson;

  /// DOS moments mu_k = (1/D) sum_j T_k(x_j) with x_j = (E_j - b)/a; the
  /// bracket [e_min, e_max] must be the one the estimator resolved.
  static KpmRef dos(const EigenSystem& es, double e_min, double e_max,
                    std::size_t num_moments) {
    const std::size_t n = es.eigenvalues.size();
    std::vector<double> w(n, 1.0 / static_cast<double>(n));
    return weighted(es.eigenvalues, w, e_min, e_max, num_moments, 1.0);
  }

  /// Local-DOS moments of a probe state: weights |<j|phi>|^2 normalized,
  /// total weight ||phi||^2 carried as the estimator does.
  static KpmRef local(const EigenSystem& es, std::span<const cplx> phi,
                      double e_min, double e_max, std::size_t num_moments) {
    const SpectralRef sr = SpectralRef::build(es, phi);
    double total = 0.0;
    for (double x : sr.weights) total += x;
    std::vector<double> w(sr.weights);
    for (double& x : w) x /= total;
    return weighted(sr.energies, w, e_min, e_max, num_moments, total);
  }

  /// Moment build from explicit (energy, weight) pairs via the scalar
  /// Chebyshev recurrence; also precomputes the Jackson factors.
  static KpmRef weighted(const std::vector<double>& energies,
                         const std::vector<double>& w, double e_min,
                         double e_max, std::size_t num_moments,
                         double total_weight) {
    KpmRef r;
    r.shift = 0.5 * (e_max + e_min);
    r.scale = 0.5 * (e_max - e_min);
    r.weight = total_weight;
    r.mu.assign(num_moments, 0.0);
    for (std::size_t j = 0; j < energies.size(); ++j) {
      const double x = (energies[j] - r.shift) / r.scale;
      double tp = 1.0, tc = x;
      r.mu[0] += w[j];
      if (num_moments > 1) r.mu[1] += w[j] * x;
      for (std::size_t k = 2; k < num_moments; ++k) {
        const double tn = 2.0 * x * tc - tp;
        tp = tc;
        tc = tn;
        r.mu[k] += w[j] * tc;
      }
    }
    const double m1 = static_cast<double>(num_moments) + 1.0;
    const double cot = std::cos(M_PI / m1) / std::sin(M_PI / m1);
    r.jackson.resize(num_moments);
    for (std::size_t k = 0; k < num_moments; ++k) {
      const double kd = static_cast<double>(k);
      r.jackson[k] = ((m1 - kd) * std::cos(M_PI * kd / m1) +
                      std::sin(M_PI * kd / m1) * cot) /
                     m1;
    }
    return r;
  }

  /// Jackson-damped series at omega — identical in form to
  /// KpmDos::evaluate_at, fed by the exact moments.
  double evaluate_at(double omega) const {
    const double x = (omega - shift) / scale;
    if (!(std::abs(x) < 1.0)) return 0.0;
    double cp = 1.0, cc = x;
    double s = jackson[0] * mu[0] + 2.0 * jackson[1] * mu[1] * cc;
    for (std::size_t k = 2; k < mu.size(); ++k) {
      const double cn = 2.0 * x * cc - cp;
      cp = cc;
      cc = cn;
      s += 2.0 * jackson[k] * mu[k] * cc;
    }
    return weight * s / (M_PI * std::sqrt(1.0 - x * x) * scale);
  }
};

/// log(Z(beta)/D) computed stably with the ground-state energy factored out.
inline double log_partition_over_dim(const EigenSystem& es, double beta) {
  const double e0 = es.eigenvalues.front();
  double z = 0.0;
  for (double e : es.eigenvalues) z += std::exp(-beta * (e - e0));
  return -beta * e0 +
         std::log(z / static_cast<double>(es.eigenvalues.size()));
}

/// Exact thermal expectation Tr(e^{-beta H} O) / Z from the eigensystem and
/// the observable's dense matrix (only the eigenbasis diagonal of O enters).
inline double thermal_expectation(const EigenSystem& es, const Matrix& o,
                                  double beta) {
  const std::size_t n = es.eigenvalues.size();
  const double e0 = es.eigenvalues.front();
  double z = 0.0, acc = 0.0;
  std::vector<cplx> ov(n);
  for (std::size_t j = 0; j < n; ++j) {
    // o_jj = <v_j| O |v_j> with v_j the j-th eigenvector column.
    for (std::size_t r = 0; r < n; ++r) {
      cplx s(0.0);
      for (std::size_t c = 0; c < n; ++c)
        s += o(r, c) * es.eigenvectors(c, j);
      ov[r] = s;
    }
    cplx diag(0.0);
    for (std::size_t r = 0; r < n; ++r)
      diag += std::conj(es.eigenvectors(r, j)) * ov[r];
    const double w = std::exp(-beta * (es.eigenvalues[j] - e0));
    z += w;
    acc += w * diag.real();
  }
  return acc / z;
}

/// Uniformly spaced closed grid [a, b] with n >= 2 points.
inline std::vector<double> linspace(double a, double b, std::size_t n) {
  std::vector<double> g(n);
  for (std::size_t i = 0; i < n; ++i)
    g[i] = a + (b - a) * static_cast<double>(i) / static_cast<double>(n - 1);
  return g;
}

/// Trapezoidal integral of |f - g| over a uniform grid — the acceptance
/// metric of the spectral exactness gates.
inline double integrated_abs_dev(std::span<const double> f,
                                 std::span<const double> g, double dx) {
  double s = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double d = std::abs(f[i] - g[i]);
    s += (i == 0 || i + 1 == f.size()) ? 0.5 * d : d;
  }
  return s * dx;
}

}  // namespace gecos::test
