// Packed symplectic layer vs the legacy per-qubit PauliString algebra:
// 10^4 randomized multiply cases (phase AND string) on up to 96 qubits,
// exercising the multi-word (> 64 qubit) path, plus roundtrips, commutation
// agreement, ordering and hashing.
#include "ops/packed.hpp"

#include <random>

#include "ops/pauli.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

PauliString random_string(std::size_t n, std::mt19937& rng) {
  static const std::array<Scb, 4> t = {Scb::I, Scb::X, Scb::Y, Scb::Z};
  std::uniform_int_distribution<int> d(0, 3);
  std::vector<Scb> ops(n);
  for (auto& o : ops) o = t[static_cast<std::size_t>(d(rng))];
  return PauliString(std::move(ops));
}

}  // namespace

int main() {
  std::mt19937 rng(20260730);
  std::uniform_int_distribution<std::size_t> nd(1, 96);

  // Roundtrip and structure queries.
  for (int it = 0; it < 200; ++it) {
    const std::size_t n = nd(rng);
    const PauliString s = random_string(n, rng);
    const PackedPauli p = PackedPauli::from_string(s);
    CHECK_EQ(p.num_qubits(), n);
    CHECK_EQ(p.words(), (n + 63) / 64);
    CHECK(p.to_pauli_string() == s);
    CHECK_EQ(p.str(), s.str());
    CHECK_EQ(p.weight(), s.weight());
    CHECK_EQ(p.is_identity(), s.is_identity());
    for (std::size_t q = 0; q < n; ++q) CHECK(p.op(q) == s.op(q));
    CHECK(PackedPauli::parse(s.str()) == p);
    CHECK_EQ(PackedPauli::from_string(s).hash(), p.hash());
  }

  // set_op covers every word position.
  {
    PackedPauli p(96);
    CHECK(p.is_identity());
    p.set_op(0, Scb::X);
    p.set_op(63, Scb::Y);
    p.set_op(64, Scb::Z);
    p.set_op(95, Scb::Y);
    CHECK_EQ(p.weight(), 4);
    CHECK(p.op(63) == Scb::Y);
    CHECK(p.op(64) == Scb::Z);
    p.set_op(63, Scb::I);
    CHECK_EQ(p.weight(), 3);
  }

  // The acceptance bar: 10^4 randomized multiply cases up to 96 qubits,
  // phase and string agreement with the legacy per-qubit loop. All phases
  // are exact units, so the comparison is exact.
  int multiword_cases = 0;
  for (int it = 0; it < 10000; ++it) {
    const std::size_t n = nd(rng);
    if (n > 64) ++multiword_cases;
    const PauliString a = random_string(n, rng);
    const PauliString b = random_string(n, rng);
    const auto [ref_phase, ref_prod] = PauliString::multiply(a, b);
    const auto [phase, prod] = PackedPauli::multiply(
        PackedPauli::from_string(a), PackedPauli::from_string(b));
    CHECK(prod.to_pauli_string() == ref_prod);
    CHECK(phase == ref_phase);
    CHECK_EQ(PackedPauli::from_string(a).commutes_with(
                 PackedPauli::from_string(b)),
             a.commutes_with(b));
  }
  CHECK(multiword_cases > 1000);  // the >64-qubit path really ran

  // Algebraic identities on the packed layer alone: P*P = I, and the phase
  // flips sign under argument exchange iff the strings anticommute.
  for (int it = 0; it < 500; ++it) {
    const std::size_t n = nd(rng);
    const PackedPauli a = PackedPauli::from_string(random_string(n, rng));
    const PackedPauli b = PackedPauli::from_string(random_string(n, rng));
    const auto [self_phase, self_prod] = PackedPauli::multiply(a, a);
    CHECK(self_prod.is_identity());
    CHECK(self_phase == cplx(1.0));
    const auto [pab, sab] = PackedPauli::multiply(a, b);
    const auto [pba, sba] = PackedPauli::multiply(b, a);
    CHECK(sab == sba);
    CHECK(pab == (a.commutes_with(b) ? pba : -pba));
  }

  // Ordering agrees with the legacy map comparator.
  for (int it = 0; it < 500; ++it) {
    const std::size_t n = nd(rng);
    const PauliString a = random_string(n, rng);
    const PauliString b = random_string(n, rng);
    CHECK_EQ(PackedPauli::less_qubitwise(PackedPauli::from_string(a),
                                         PackedPauli::from_string(b)),
             a < b);
  }

  return gecos::test::finish("test_packed");
}
