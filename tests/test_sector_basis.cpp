// SectorBasis suite: the ranking bit-tricks (gather/scatter inverse pair,
// Gosper successor), combinadic rank/unrank bijection and ascending order
// against brute-force enumeration for single-species and spinful product
// sectors, the next_config walk, containment, the Hubbard sector pickers,
// and the constructor error paths.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "fermion/hubbard.hpp"
#include "symmetry/sector_basis.hpp"
#include "test_util.hpp"
#include "util/bits.hpp"

using namespace gecos;

namespace {

/// All configurations of the sector by brute force over 2^n, in numeric
/// order (the order the mixed-radix combinadic ranking must reproduce when
/// species masks are contiguous from bit 0... in general, numeric order of
/// the per-species compact words composed species-0-fastest).
std::vector<std::uint64_t> brute_force(const SectorBasis& b) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t c = 0; c < (std::uint64_t{1} << b.n_qubits()); ++c)
    if (b.contains(c)) out.push_back(c);
  return out;
}

/// Sorts brute-force configs into the basis' mixed-radix order: key =
/// sum_s compact_word_s * stride_s with species 0 fastest — the numeric
/// compact-word pair ordered down-species-major.
std::vector<std::uint64_t> in_rank_order(const SectorBasis& b) {
  std::vector<std::uint64_t> all = brute_force(b);
  const auto species = b.species();
  std::sort(all.begin(), all.end(), [&](std::uint64_t x, std::uint64_t y) {
    for (std::size_t s = species.size(); s-- > 0;) {
      const std::uint64_t wx = gather_bits(x, species[s].mask);
      const std::uint64_t wy = gather_bits(y, species[s].mask);
      if (wx != wy) return wx < wy;
    }
    return false;
  });
  return all;
}

}  // namespace

int main() {
  // -- bit tricks ------------------------------------------------------------
  {
    const std::uint64_t mask = 0b1011010110;
    for (std::uint64_t k = 0; k < 64; ++k)
      CHECK_EQ(gather_bits(scatter_bits(k, mask), mask), k);
    // Gosper: the weight-3 walk over 6 bits enumerates all C(6,3) = 20
    // members ascending.
    std::uint64_t w = 0b111;
    int steps = 0;
    std::uint64_t prev = 0;
    while (w < (1u << 6)) {
      CHECK(w > prev);
      CHECK_EQ(std::popcount(w), 3);
      prev = w;
      w = next_same_popcount(w);
      ++steps;
    }
    CHECK_EQ(steps, 20);
  }

  // -- single-species rank/unrank vs brute force -----------------------------
  for (std::size_t n : {1u, 5u, 8u, 10u}) {
    for (std::size_t k = 0; k <= n; ++k) {
      const SectorBasis b = SectorBasis::fixed_number(n, k);
      const std::vector<std::uint64_t> all = brute_force(b);
      CHECK_EQ(b.dim(), all.size());
      std::uint64_t walk = b.first_config();
      for (std::size_t r = 0; r < all.size(); ++r) {
        CHECK_EQ(b.config_at(r), all[r]);  // ascending numeric order
        CHECK_EQ(b.rank(all[r]), r);
        CHECK_EQ(walk, all[r]);
        walk = b.next_config(walk);
      }
      CHECK_EQ(walk, b.first_config());  // the walk wraps at the end
    }
  }

  // -- spinful product sector vs brute force ---------------------------------
  {
    const SectorBasis b = SectorBasis::spinful(8, 2, 1);  // C(4,2)*C(4,1)=24
    CHECK_EQ(b.dim(), std::size_t{24});
    const std::vector<std::uint64_t> ordered = in_rank_order(b);
    CHECK_EQ(ordered.size(), b.dim());
    std::uint64_t walk = b.first_config();
    for (std::size_t r = 0; r < ordered.size(); ++r) {
      CHECK_EQ(b.config_at(r), ordered[r]);
      CHECK_EQ(b.rank(ordered[r]), r);
      CHECK_EQ(walk, ordered[r]);
      walk = b.next_config(walk);
    }
    // Containment: wrong per-species counts are rejected even at the right
    // total count.
    CHECK(b.contains(0b00000111));   // up bits {0,2}, down bit {1}: (2,1)
    CHECK(!b.contains(0b00101010));  // down bits {1,3,5}: (0,3) — wrong split
    CHECK(!b.contains(0b00001110));  // up {2}, down {1,3}: (1,2) — wrong split
  }
  {
    // The example from hubbard workloads: n = 20, (5,5) half filling.
    const SectorBasis b = SectorBasis::spinful(20, 5, 5);
    CHECK_EQ(b.dim(), std::size_t{63504});  // C(10,5)^2
    // Spot-check the bijection on a stride through the sector.
    for (std::size_t r = 0; r < b.dim(); r += 997) {
      const std::uint64_t c = b.config_at(r);
      CHECK(b.contains(c));
      CHECK_EQ(b.rank(c), r);
    }
  }

  // -- Hubbard pickers -------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 5;
    p.ly = 2;
    p.spinful = true;
    CHECK_EQ(hubbard_species_mask(p, 0), std::uint64_t{0x55555});
    CHECK_EQ(hubbard_species_mask(p, 1), std::uint64_t{0xAAAAA});
    const SectorBasis b = hubbard_sector(p, 5, 5);
    CHECK_EQ(b.dim(), std::size_t{63504});
    CHECK(b == SectorBasis::spinful(20, 5, 5));
    // The CDW state occupies 5 sites with both spins: its sector is (5,5).
    const SectorBasis c = hubbard_sector_of(p, hubbard_cdw_occupation(p));
    CHECK(c == b);
    CHECK(c.contains(hubbard_cdw_occupation(p)));

    HubbardParams q;  // spinless chain
    q.lx = 6;
    CHECK_EQ(hubbard_species_mask(q, 0), std::uint64_t{0x3F});
    CHECK_EQ(hubbard_sector(q, 3).dim(), std::size_t{20});
    CHECK(hubbard_sector_of(q, 0b101010) == hubbard_sector(q, 3));
  }

  // -- error paths -----------------------------------------------------------
  {
    bool threw = false;
    try {
      SectorBasis::fixed_number(4, 5);  // count > qubits
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      SectorBasis(4, {{0b0011, 1}, {0b0110, 1}});  // overlapping masks
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      SectorBasis(4, {{0b0011, 1}});  // masks must cover all qubits
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      HubbardParams q;
      q.lx = 4;
      hubbard_sector(q, 2, 1);  // spinless with n_down != 0
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  return gecos::test::finish("test_sector_basis");
}
