// Continued-fraction spectral function suite, pinned against the dense
// eigh reference of tests/spectral_ref.hpp. Pins (1) full-space A(w) at
// n = 8 matches the exact Lorentzian pole sum to <= 1e-8 integrated
// absolute deviation, (2) the operator-probe build B|psi> agrees with the
// dense B phi reference, (3) the same gate holds sector-restricted at
// n = 10 (dim 252), (4) breakdown on an exact eigenvector stops at one
// moment and reproduces the single Lorentzian, (5) A(w) >= 0 everywhere
// (Herglotz continued fraction), (6) warm rebuild + evaluate allocate
// nothing, and (7) the std::invalid_argument error paths.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <cmath>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <vector>
// clang-format on

#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "ops/scb_sum.hpp"
#include "spectral/continued_fraction.hpp"
#include "spectral_ref.hpp"
#include "symmetry/sector_operator.hpp"
#include "symmetry/sector_vector.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

/// Seeded unnormalized Gaussian probe (the builds must handle weight != 1).
std::vector<cplx> random_probe(std::size_t dim, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g;
  std::vector<cplx> phi(dim);
  for (auto& x : phi) x = cplx(g(rng), g(rng));
  return phi;
}

/// Integrated |A_cf - A_dense| over a shared grid bracketing the spectrum.
double cf_vs_dense(const SpectralFunction& sf, const gecos::test::SpectralRef& ref,
                   double lo, double hi, double eta) {
  const std::vector<double> grid = gecos::test::linspace(lo, hi, 601);
  std::vector<double> a(grid.size()), b(grid.size());
  sf.evaluate(grid, eta, a);
  for (std::size_t i = 0; i < grid.size(); ++i)
    b[i] = ref.evaluate_at(grid[i], eta);
  return gecos::test::integrated_abs_dev(a, b, grid[1] - grid[0]);
}

}  // namespace

int main() {
  // -- full-space exactness at n = 8 (dim 256), state and operator probes ----
  {
    HubbardParams p;  // spinless ring, n = 8
    p.lx = 8;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const EigenSystem es = eigh(h.to_matrix());
    const double lo = es.eigenvalues.front() - 1.0;
    const double hi = es.eigenvalues.back() + 1.0;

    const std::vector<cplx> phi = random_probe(256, 20260808);
    SpectralFunctionOptions so;
    so.max_moments = 256;  // clamped to dim: exact on the invariant subspace
    SpectralFunction sf(h, so);
    const std::size_t m = sf.build(phi);
    CHECK(m >= 2);
    const double nrm = vec_norm(phi);
    CHECK_NEAR(sf.weight(), nrm * nrm, 1e-10 * nrm * nrm);

    const auto ref = gecos::test::SpectralRef::build(es, phi);
    CHECK(cf_vs_dense(sf, ref, lo, hi, 0.1) < 1e-8);
    // Narrower broadening stresses the interior structure harder.
    CHECK(cf_vs_dense(sf, ref, lo, hi, 0.02) < 1e-8);

    // Herglotz positivity: the exact continued fraction is a sum of
    // Lorentzians with nonnegative weights.
    for (double w = lo; w <= hi; w += 0.05)
      CHECK(sf.evaluate_at(w, 0.05) > -1e-12);

    // Operator probe B = H: phi_B = H psi through the convenience build.
    const std::vector<cplx> psi = random_probe(256, 7);
    SpectralFunction sfb(h, so);
    sfb.build(h, psi);
    std::vector<cplx> hphi(256, cplx(0.0));
    h.apply_add(psi, hphi, cplx(1.0));
    const auto refb = gecos::test::SpectralRef::build(es, hphi);
    CHECK(cf_vs_dense(sfb, refb, lo, hi, 0.1) < 1e-8);
  }

  // -- sector-restricted exactness at n = 10 (N = 5 sector, dim 252) --------
  {
    HubbardParams p;  // spinless ring, n = 10
    p.lx = 10;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const SectorBasis b = hubbard_sector(p, 5);
    CHECK_EQ(b.dim(), std::size_t{252});
    const SectorOperator hs(b, h);
    const EigenSystem es = eigh(gecos::test::dense_of(hs));

    const SectorVector v = SectorVector::random(b, 11);
    SpectralFunctionOptions so;
    so.max_moments = 252;
    SpectralFunction sf(hs, so);
    sf.build(v.amps());
    const auto ref = gecos::test::SpectralRef::build(
        es, std::vector<cplx>(v.amps().begin(), v.amps().end()));
    CHECK(cf_vs_dense(sf, ref, es.eigenvalues.front() - 1.0,
                      es.eigenvalues.back() + 1.0, 0.1) < 1e-8);
  }

  // -- breakdown on an exact eigenvector: one moment, one Lorentzian ---------
  {
    HubbardParams p;  // open chain, n = 6 (dim 64)
    p.lx = 6;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    const EigenSystem es = eigh(h.to_matrix());
    std::vector<cplx> gs(64);
    for (std::size_t i = 0; i < 64; ++i) gs[i] = es.eigenvectors(i, 0);

    SpectralFunctionOptions so;
    so.breakdown_tol = 1e-8;  // headroom over the eigh residual of gs
    SpectralFunction sf(h, so);
    const std::size_t m = sf.build(gs);
    CHECK_EQ(m, std::size_t{1});  // invariant subspace of dimension 1
    const double e0 = es.eigenvalues.front();
    CHECK_NEAR(sf.alpha()[0], e0, 1e-9);
    // A(E0) of a single pole of unit weight: 1 / (pi * eta).
    CHECK_NEAR(sf.evaluate_at(e0, 0.05), 1.0 / (M_PI * 0.05), 1e-6);
  }

  // -- allocation probe: warm rebuild + evaluate allocate nothing ------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    p.mu = 0.3;
    const ScbSum h = hubbard_scb(p);
    const std::vector<cplx> phi = random_probe(64, 3);
    const std::vector<cplx> psi = random_probe(64, 4);
    const std::vector<double> grid = gecos::test::linspace(-8.0, 8.0, 201);
    std::vector<double> out(grid.size());

    SpectralFunction sf(h);
    sf.build(phi);
    sf.build(h, psi);  // warm-up sizes the operator-probe scratch too
    sf.evaluate(grid, 0.1, out);
    const long before = gecos::test::allocations();
    sf.build(phi);
    sf.build(h, psi);
    sf.evaluate(grid, 0.1, out);
    const long delta = gecos::test::allocations() - before;
#if GECOS_ALLOC_PROBE_ACTIVE
    CHECK_EQ(delta, 0L);
#endif
    std::printf("alloc probe: %ld allocations during warm rebuild\n", delta);
  }

  // -- error paths -----------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 4;
    const ScbSum h = hubbard_scb(p);

    bool threw = false;
    try {
      SpectralFunctionOptions so;
      so.max_moments = 0;
      SpectralFunction bad(h, so);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    SpectralFunction sf(h);
    threw = false;
    try {
      sf.greens(cplx(0.0, 0.1));  // no build yet
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    const std::vector<cplx> short_probe(8, cplx(1.0));
    threw = false;
    try {
      sf.build(short_probe);  // wrong dimension
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    const std::vector<cplx> zero_probe(16, cplx(0.0));
    threw = false;
    try {
      sf.build(zero_probe);  // zero probe
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);

    const std::vector<cplx> ok_probe = random_probe(16, 5);
    sf.build(ok_probe);
    threw = false;
    try {
      std::vector<double> grid(10), out(9);
      sf.evaluate(grid, 0.1, out);  // size mismatch
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  return gecos::test::finish("test_spectral_function");
}
