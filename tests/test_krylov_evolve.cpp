// Krylov expm_multiply suite: Lanczos- and Arnoldi-mode propagation against
// dense exp(-i t H) at n <= 8, unitarity, adaptive step splitting, the
// shared Evolver interface (integrator swap against Trotter), general
// exp(z H) application, and the zero-allocation pin after warm-up.
#include "alloc_probe.hpp"  // first: replaces global operator new
// clang-format off
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>
// clang-format on

#include "evolve/evolver.hpp"
#include "evolve/trotter.hpp"
#include "fermion/hubbard.hpp"
#include "linalg/blas1.hpp"
#include "linalg/expm.hpp"
#include "linalg/sparse.hpp"
#include "ops/scb_sum.hpp"
#include "solver/krylov_evolve.hpp"
#include "test_util.hpp"

using namespace gecos;

int main() {
  std::mt19937 rng(20260730);

  // -- dense cross-check on Hubbard Hamiltonians at n = 6 and 8 -------------
  for (const std::size_t lx : {6, 8}) {
    HubbardParams p;
    p.lx = lx;
    p.u = 2.0;
    p.mu = 0.3;
    p.periodic_x = true;
    const ScbSum h = hubbard_scb(p);
    const Matrix hd = h.to_matrix();
    const std::size_t dim = std::size_t{1} << lx;
    const std::vector<cplx> x0 = random_state(dim, rng);

    for (const double t : {0.1, 1.0, 3.7}) {
      const std::vector<cplx> ref = expm_hermitian(hd, -t).apply(x0);

      KrylovOptions ko;
      ko.tol = 1e-13;
      KrylovEvolver ev(h, ko);
      std::vector<cplx> x = x0;
      ev.step(x, t);
      CHECK_NEAR(vec_max_abs_diff(x, ref), 0.0, 1e-10);
      CHECK_NEAR(vec_norm(x), 1.0, 1e-12);  // Krylov steps are unitary

      KrylovOptions ka = ko;
      ka.mode = KrylovMode::kArnoldi;
      KrylovEvolver eva(h, ka);
      std::vector<cplx> xa = x0;
      eva.step(xa, t);
      CHECK_NEAR(vec_max_abs_diff(xa, ref), 0.0, 1e-10);
    }
  }

  // -- adaptive step splitting: a tight subspace cap forces substeps, the
  // result stays at dense accuracy ------------------------------------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 4.0;
    p.mu = 0.5;
    const ScbSum h = hubbard_scb(p);
    const Matrix hd = h.to_matrix();
    const std::vector<cplx> x0 = random_state(64, rng);
    KrylovOptions ko;
    ko.max_subspace = 12;
    ko.tol = 1e-12;
    KrylovEvolver ev(h, ko);
    std::vector<cplx> x = x0;
    const double t = 4.0;
    ev.step(x, t);
    std::printf("splitting: substeps=%zu matvecs=%zu subspace=%zu\n",
                ev.last_substeps(), ev.last_matvecs(), ev.last_subspace());
    CHECK(ev.last_substeps() > 1);
    CHECK_NEAR(vec_max_abs_diff(x, expm_hermitian(hd, -t).apply(x0)), 0.0,
               1e-10);
  }

  // -- general exp(z H): imaginary-time z = -dt against the dense
  // exponential --------------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 5;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    const Matrix hd = h.to_matrix();
    const std::vector<cplx> x0 = random_state(32, rng);
    const double dt = 0.8;
    const Matrix ref = expm(hd * cplx(-dt));
    KrylovOptions ko;
    ko.tol = 1e-13;
    KrylovEvolver ev(h, ko);
    std::vector<cplx> x = x0;
    ev.apply_expm(cplx(-dt), x);
    CHECK_NEAR(vec_max_abs_diff(x, ref.apply(x0)), 0.0, 1e-10);
  }

  // -- Evolver interface: Trotter and Krylov swap behind one pointer; both
  // track the dense propagator within their own error budgets ---------------
  {
    HubbardParams p;
    p.lx = 6;
    p.u = 2.0;
    p.mu = 0.3;
    const ScbSum h = hubbard_scb(p);
    const Matrix hd = h.to_matrix();
    const std::vector<cplx> x0 = random_state(64, rng);
    const double t = 1.0;
    const int steps = 64;
    const std::vector<cplx> ref = expm_hermitian(hd, -t).apply(x0);

    std::vector<std::unique_ptr<Evolver>> evs;
    evs.emplace_back(std::make_unique<TrotterEvolver>(h));
    evs.emplace_back(std::make_unique<KrylovEvolver>(h));
    const double budget[] = {1e-4, 1e-10};  // Strang O(dt^2) vs Krylov tol
    for (std::size_t i = 0; i < evs.size(); ++i) {
      std::vector<cplx> x = x0;
      evs[i]->evolve(x, t, steps);
      CHECK_EQ(evs[i]->n_qubits(), std::size_t{6});
      CHECK_NEAR(vec_max_abs_diff(x, ref), 0.0, budget[i]);
    }

    // StateVector entry points reach the same engine.
    StateVector sv(6);
    vec_copy(sv.amps(), x0);
    evs[1]->step(sv, t);
    CHECK_NEAR(vec_max_abs_diff(sv.amps(), ref), 0.0, 1e-10);
  }

  // -- CsrMatrix backend: the evolver is operator-representation-agnostic ---
  {
    HubbardParams p;
    p.lx = 5;
    p.u = 2.0;
    const ScbSum h = hubbard_scb(p);
    const CsrMatrix hc = CsrMatrix::from_dense(h.to_matrix(), 1e-14);
    const std::vector<cplx> x0 = random_state(32, rng);
    std::vector<cplx> xs = x0, xc = x0;
    KrylovEvolver es(h), ec(hc);
    es.step(xs, 1.3);
    ec.step(xc, 1.3);
    CHECK_NEAR(vec_max_abs_diff(xs, xc), 0.0, 1e-11);
  }

  // -- error paths ----------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 4;
    const ScbSum h = hubbard_scb(p);
    bool threw = false;
    try {
      KrylovOptions ko;
      ko.max_subspace = 1;
      KrylovEvolver bad(h, ko);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      KrylovOptions ko;
      ko.tol = 0.0;
      KrylovEvolver bad(h, ko);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      KrylovEvolver ev(h);
      std::vector<cplx> wrong(8);
      ev.step(wrong, 0.1);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // -- allocation probe: Lanczos-mode steps after the first allocate
  // nothing (basis, recurrence and small-eigensolver workspace are all
  // preallocated) -----------------------------------------------------------
  {
    HubbardParams p;
    p.lx = 5;
    p.u = 3.0;
    p.spinful = true;  // n = 10
    const ScbSum h = hubbard_scb(p);
    KrylovEvolver ev(h);
    StateVector psi = StateVector::random(10, 7);
    ev.step(psi, 0.05);  // warm-up: kernel cache, pool, workspaces
    const long before = gecos::test::allocations();
    for (int i = 0; i < 5; ++i) ev.step(psi, 0.05);
    const long delta = gecos::test::allocations() - before;
#if GECOS_ALLOC_PROBE_ACTIVE
    std::printf("alloc probe: %ld allocations over 5 warm steps\n", delta);
    CHECK_EQ(delta, 0);
#else
    (void)delta;
#endif
    CHECK_NEAR(psi.norm(), 1.0, 1e-12);
  }

  return gecos::test::finish("test_krylov_evolve");
}
