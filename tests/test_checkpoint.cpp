// Checkpoint-format suite: error taxonomy, XXH64 reference vectors,
// bitwise save/load round trips for StateVector / SectorVector /
// SectorBasis, the full corruption matrix (truncations at every 64-byte
// boundary, single bit-flips across header/payload/checksum, wrong magic,
// version skew) with a 100% detection requirement, the .bak fallback that
// recovery is built on, and the concurrent-writer guarantee: two threads
// hammering one path each publish complete images — a reader never sees an
// interleaving of both.
#include <atomic>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "fault_inject.hpp"
#include "io/checkpoint.hpp"
#include "io/xxhash.hpp"
#include "state/state_vector.hpp"
#include "symmetry/sector_basis.hpp"
#include "symmetry/sector_vector.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

using namespace gecos;

namespace {

/// True when fn() throws a gecos::Error of exactly the given kind.
bool throws_kind(ErrorKind kind, const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.kind() == kind;
  } catch (...) {
    return false;
  }
  return false;
}

/// True when fn() throws any gecos::Error (detection, kind not pinned).
bool throws_error(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error&) {
    return true;
  } catch (...) {
    return false;
  }
  return false;
}

}  // namespace

int main() {
  // -- error taxonomy basics ------------------------------------------------
  {
    const Error e(ErrorKind::io_corrupt, "details");
    CHECK(e.kind() == ErrorKind::io_corrupt);
    CHECK_EQ(std::string(e.what()), std::string("io_corrupt: details"));
    CHECK_EQ(std::string(to_string(ErrorKind::version_mismatch)),
             std::string("version_mismatch"));
    CHECK_EQ(std::string(to_string(ErrorKind::numerical_nan)),
             std::string("numerical_nan"));
    // It is a runtime_error, so legacy catch sites still see it.
    const std::runtime_error& base = e;
    CHECK(std::strstr(base.what(), "details") != nullptr);
  }

  // -- XXH64 reference vectors (spec test values) ---------------------------
  {
    CHECK_EQ(xxh64("", 0), 0xEF46DB3751D8E999ULL);
    CHECK_EQ(xxh64("a", 1), 0xD24EC4F1A98C6E5BULL);
    CHECK_EQ(xxh64("abc", 3), 0x44BC2CF5AD770999ULL);
    const char fox[] = "The quick brown fox jumps over the lazy dog";
    CHECK_EQ(xxh64(fox, sizeof(fox) - 1), 0x0B242D361FDA71BCULL);
    // Seed participates; single-byte change avalanches.
    CHECK(xxh64("abc", 3, 1) != xxh64("abc", 3, 0));
    CHECK(xxh64("abd", 3) != xxh64("abc", 3));
  }

  // -- PayloadWriter/PayloadReader: typed round trip + bounds checking ------
  {
    PayloadWriter w;
    w.put_u32(0xDEADBEEFu);
    w.put_u64(0x0123456789ABCDEFULL);
    w.put_f64(-13.8785798502);
    w.put_string("rng-state blob");
    const std::vector<cplx> amps = {cplx(1.5, -2.5), cplx(0.0, 3.25)};
    w.put_cplx(amps);

    PayloadReader r(w.bytes());
    CHECK_EQ(r.get_u32(), 0xDEADBEEFu);
    CHECK_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
    CHECK_EQ(r.get_f64(), -13.8785798502);
    CHECK_EQ(r.get_string(), std::string("rng-state blob"));
    std::vector<cplx> back(2);
    r.get_cplx(back);
    CHECK(std::memcmp(back.data(), amps.data(), 2 * sizeof(cplx)) == 0);
    r.require_end();  // consumed exactly

    PayloadReader over(w.bytes());
    over.get_u64();
    CHECK(throws_kind(ErrorKind::io_corrupt, [&] {
      for (int i = 0; i < 100; ++i) over.get_u64();  // walks off the end
    }));
    PayloadReader under(w.bytes());
    under.get_u32();
    CHECK(throws_kind(ErrorKind::io_corrupt, [&] { under.require_end(); }));
  }

  // -- property round trips: random state -> save -> load -> bitwise equal --
  const std::string path = "ckpt_test_state.bin";
  remove_checkpoint(path);
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const StateVector psi = StateVector::random(6, seed);
    save_state_vector(path, psi);
    const StateVector back = load_state_vector(path);
    CHECK_EQ(back.n_qubits(), psi.n_qubits());
    CHECK(std::memcmp(back.amps().data(), psi.amps().data(),
                      psi.dim() * sizeof(cplx)) == 0);
  }
  {
    const SectorBasis basis = SectorBasis::spinful(8, 2, 2);
    const SectorVector psi = SectorVector::random(basis, 99);
    const std::string spath = "ckpt_test_sector.bin";
    remove_checkpoint(spath);
    save_sector_vector(spath, psi);
    const SectorVector back = load_sector_vector(spath);
    CHECK(back.basis() == psi.basis());
    CHECK(std::memcmp(back.amps().data(), psi.amps().data(),
                      psi.dim() * sizeof(cplx)) == 0);

    const std::string bpath = "ckpt_test_basis.bin";
    remove_checkpoint(bpath);
    save_sector_basis(bpath, basis);
    CHECK(load_sector_basis(bpath) == basis);

    // Payload-kind confusion is detected, not misparsed.
    CHECK(throws_kind(ErrorKind::io_corrupt,
                      [&] { (void)load_sector_basis(spath); }));
    remove_checkpoint(spath);
    remove_checkpoint(bpath);
  }

  // -- corruption matrix: every injected fault must be detected -------------
  {
    const StateVector psi = StateVector::random(6, 5);
    remove_checkpoint(path);
    save_state_vector(path, psi);  // fresh file, no .bak to fall back to
    const std::vector<unsigned char> pristine = test::read_file(path);
    std::size_t injected = 0, detected = 0;

    const auto expect_detection = [&](const std::function<void()>& corrupt) {
      test::write_file(path, pristine);
      corrupt();
      ++injected;
      if (throws_error([&] { (void)read_checkpoint(path); })) ++detected;
    };

    // Truncation at every 64-byte boundary, plus one byte short of intact.
    for (std::size_t keep = 0; keep < pristine.size(); keep += 64)
      expect_detection([&] { test::truncate_file(path, keep); });
    expect_detection([&] { test::truncate_file(path, pristine.size() - 1); });

    // Single bit-flips: every byte of the 24-byte header and the 8-byte
    // trailing checksum, and a stride through the payload; rotate the bit
    // index so all eight bit positions are exercised.
    for (std::size_t off = 0; off < 24; ++off)
      expect_detection([&] { test::flip_bit(path, off, off % 8); });
    for (std::size_t off = pristine.size() - 8; off < pristine.size(); ++off)
      expect_detection([&] { test::flip_bit(path, off, off % 8); });
    for (std::size_t off = 24; off < pristine.size() - 8; off += 7)
      expect_detection([&] { test::flip_bit(path, off, off % 8); });

    // Wrong magic and version skew (version skew is checksum-valid, so it
    // must surface as version_mismatch specifically).
    expect_detection([&] { test::corrupt_magic(path); });
    test::write_file(path, pristine);
    test::rewrite_version(path, 999);
    ++injected;
    if (throws_kind(ErrorKind::version_mismatch,
                    [&] { (void)read_checkpoint(path); }))
      ++detected;
    test::write_file(path, pristine);
    test::rewrite_version(path, 0);
    ++injected;
    if (throws_kind(ErrorKind::version_mismatch,
                    [&] { (void)read_checkpoint(path); }))
      ++detected;

    std::printf("corruption matrix: %zu/%zu detected\n", detected, injected);
    CHECK_EQ(detected, injected);  // 100% detection, no exceptions

    // And the pristine bytes still load (the matrix tested the file, not
    // the reader's goodwill).
    test::write_file(path, pristine);
    const StateVector back = load_state_vector(path);
    CHECK(std::memcmp(back.amps().data(), psi.amps().data(),
                      psi.dim() * sizeof(cplx)) == 0);
  }

  // -- atomic rotation and .bak recovery ------------------------------------
  {
    const StateVector first = StateVector::random(6, 11);
    const StateVector second = StateVector::random(6, 22);
    remove_checkpoint(path);
    save_state_vector(path, first);
    save_state_vector(path, second);  // rotates first -> .bak

    // Primary intact: primary wins.
    StateVector got = load_state_vector(path);
    CHECK(std::memcmp(got.amps().data(), second.amps().data(),
                      second.dim() * sizeof(cplx)) == 0);

    // Primary corrupted: recovery proceeds from the last good file.
    test::flip_bit(path, 100, 3);
    Checkpoint ck =
        read_checkpoint_with_fallback(path, PayloadKind::kStateVector);
    CHECK(ck.from_backup);
    got = load_state_vector(path);
    CHECK(std::memcmp(got.amps().data(), first.amps().data(),
                      first.dim() * sizeof(cplx)) == 0);

    // Primary missing entirely: same story.
    test::remove_file(path);
    got = load_state_vector(path);
    CHECK(std::memcmp(got.amps().data(), first.amps().data(),
                      first.dim() * sizeof(cplx)) == 0);
    CHECK(checkpoint_exists(path));  // .bak counts as existence

    // Both damaged: the primary's diagnosis is what surfaces.
    save_state_vector(path, second);
    test::flip_bit(path, 50, 1);
    test::flip_bit(path + ".bak", 50, 1);
    CHECK(throws_kind(ErrorKind::io_corrupt,
                      [&] { (void)load_state_vector(path); }));

    // A stray .tmp (torn write that never renamed) is ignored by readers.
    remove_checkpoint(path);
    save_state_vector(path, first);
    test::write_file(path + ".tmp", {0xDE, 0xAD});
    got = load_state_vector(path);
    CHECK(std::memcmp(got.amps().data(), first.amps().data(),
                      first.dim() * sizeof(cplx)) == 0);
    remove_checkpoint(path);
    CHECK(!checkpoint_exists(path));
  }

  // -- concurrent writers on one path: complete images, never interleaved ---
  {
    // Two writer threads race ~50 write_checkpoint() calls each on the SAME
    // path (the gecosd journal scenario: an executor finishing a job while
    // a second scheduler instance journals a resubmission). The atomic
    // side-file + rename protocol promises every published file is one
    // writer's complete payload. Each payload is self-describing — writer
    // id, sequence number, and 1024 words derived from both — so a reader
    // can prove non-interleaving word by word.
    const std::string cpath = "ckpt_test_concurrent.bin";
    remove_checkpoint(cpath);
    constexpr int kWrites = 50;
    constexpr std::size_t kWords = 1024;

    const auto encode = [](std::uint64_t writer, std::uint64_t seq) {
      PayloadWriter w;
      w.put_u64(writer);
      w.put_u64(seq);
      for (std::size_t i = 0; i < kWords; ++i)
        w.put_u64(writer * 1000003 + seq * 31 + i);
      return std::vector<unsigned char>(w.bytes().begin(), w.bytes().end());
    };
    // Returns true when the payload is one writer's complete image.
    const auto coherent = [&](std::span<const unsigned char> payload) {
      PayloadReader r(payload);
      const std::uint64_t writer = r.get_u64();
      const std::uint64_t seq = r.get_u64();
      if (writer != 1 && writer != 2) return false;
      for (std::size_t i = 0; i < kWords; ++i)
        if (r.get_u64() != writer * 1000003 + seq * 31 + i) return false;
      r.require_end();
      return true;
    };

    std::atomic<bool> stop_reader{false};
    std::atomic<int> incoherent{0};
    std::atomic<int> good_reads{0};
    const auto writer = [&](std::uint64_t id) {
      for (int s = 0; s < kWrites; ++s)
        write_checkpoint(cpath, PayloadKind::kServeJob,
                         encode(id, static_cast<std::uint64_t>(s)));
    };
    std::thread reader([&] {
      while (!stop_reader.load(std::memory_order_relaxed)) {
        try {
          const Checkpoint ck =
              read_checkpoint_with_fallback(cpath, PayloadKind::kServeJob);
          if (coherent(ck.payload)) good_reads.fetch_add(1);
          else incoherent.fetch_add(1);
        } catch (const Error&) {
          // Transient rotation windows (primary and .bak both mid-rename)
          // may surface as missing/corrupt; that is allowed — what is NOT
          // allowed is a successful read of an interleaved image.
        }
      }
    });
    std::thread w1(writer, 1);
    std::thread w2(writer, 2);
    w1.join();
    w2.join();
    stop_reader.store(true);
    reader.join();

    CHECK_EQ(incoherent.load(), 0);  // every successful read was coherent
    CHECK(good_reads.load() > 0);    // and the reader did observe images

    // After the dust settles both the primary and the rotated .bak are
    // valid, complete images.
    const Checkpoint final_ck = read_checkpoint(cpath, PayloadKind::kServeJob);
    CHECK(coherent(final_ck.payload));
    const Checkpoint bak_ck =
        read_checkpoint(cpath + ".bak", PayloadKind::kServeJob);
    CHECK(coherent(bak_ck.payload));
    remove_checkpoint(cpath);
  }

  return gecos::test::finish("test_checkpoint");
}
