// SCB -> Pauli conversion: the iterative packed mask expansion must match
// the retained recursive map-based reference term-for-term, produce exactly
// pauli_expansion_count strings for bare products, and reproduce the dense
// Hamiltonian on small systems.
#include "ops/conversion.hpp"

#include <random>
#include <stdexcept>

#include "ops/pauli_ref.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

ScbTerm random_term(std::size_t n, std::mt19937& rng, bool add_hc) {
  std::uniform_int_distribution<int> d(0, 7);
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  std::vector<Scb> ops(n);
  for (auto& o : ops) o = kAllScb[static_cast<std::size_t>(d(rng))];
  return ScbTerm(cplx(c(rng), c(rng)), std::move(ops), add_hc);
}

}  // namespace

int main() {
  std::mt19937 rng(42);

  // Bare products: expansion count is exactly 2^k and every emitted
  // coefficient matches the legacy recursion bitwise (both paths only ever
  // scale by powers of two and exact units).
  for (int it = 0; it < 200; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 12);
    const ScbTerm t = random_term(n, rng, false);
    const PauliSum packed = term_to_pauli(t);
    const RefPauliSum ref = ref_term_to_pauli(t);
    CHECK_EQ(packed.size(), pauli_expansion_count(t));
    CHECK_EQ(packed.size(), ref.size());
    const auto sorted = packed.sorted_terms();
    std::size_t i = 0;
    for (const auto& [rs, rc] : ref.terms()) {
      CHECK(i < sorted.size() && sorted[i].first == rs);
      if (i < sorted.size()) CHECK(sorted[i].second == rc);
      ++i;
    }
  }

  // With h.c.: agreement with the reference (counts can shrink through
  // cancellation, so compare against the reference rather than 2^k).
  for (int it = 0; it < 100; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 10);
    const ScbTerm t = random_term(n, rng, true);
    const PauliSum packed = term_to_pauli(t);
    const RefPauliSum ref = ref_term_to_pauli(t);
    CHECK_EQ(packed.size(), ref.size());
    for (const auto& [rs, rc] : ref.terms())
      CHECK_NEAR(packed.coeff_of(rs) - rc, 0.0, 1e-14);
  }

  // Dense verification on small systems, including the h.c. part.
  for (int it = 0; it < 30; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 5);
    const ScbTerm t = random_term(n, rng, it % 2 == 0);
    const Matrix expect = t.hamiltonian_matrix();
    CHECK_NEAR(term_to_pauli(t).to_matrix(n).max_abs_diff(expect), 0.0, 1e-12);
  }

  // Multi-term expansion with cross-term cancellation: n + m = I means
  // terms_to_pauli({n, m}) collapses to the identity string.
  {
    const ScbTerm tn(1.0, {Scb::N, Scb::I}, false);
    const ScbTerm tm(1.0, {Scb::M, Scb::I}, false);
    const PauliSum s = terms_to_pauli({tn, tm});
    CHECK_EQ(s.size(), std::size_t{1});
    CHECK_NEAR(s.coeff_of(PauliString::parse("II")) - cplx(1.0), 0.0, 1e-15);
  }
  for (int it = 0; it < 30; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 8);
    std::vector<ScbTerm> terms;
    for (int j = 0; j < 4; ++j) terms.push_back(random_term(n, rng, j % 2 == 0));
    const PauliSum packed = terms_to_pauli(terms);
    const RefPauliSum ref = ref_terms_to_pauli(terms);
    CHECK_EQ(packed.size(), ref.size());
    for (const auto& [rs, rc] : ref.terms())
      CHECK_NEAR(packed.coeff_of(rs) - rc, 0.0, 1e-13);
  }

  // An unexpandable term (2^63 strings) is a clean error, not shift UB.
  {
    bool threw = false;
    try {
      (void)term_to_pauli(ScbTerm(1.0, std::vector<Scb>(63, Scb::N), false));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // The sigma^dagger sigma ladder: s+ on one qubit expands to (X - iY)/2.
  {
    const PauliSum s = term_to_pauli(ScbTerm(1.0, {Scb::Sp}, false));
    CHECK_EQ(s.size(), std::size_t{2});
    CHECK_NEAR(s.coeff_of(PauliString::parse("X")) - cplx(0.5), 0.0, 1e-15);
    CHECK_NEAR(s.coeff_of(PauliString::parse("Y")) - cplx(0.0, -0.5), 0.0,
               1e-15);
  }

  // gather_hermitian pairs conjugate products and preserves the matrix.
  for (int it = 0; it < 20; ++it) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 4);
    std::vector<ScbTerm> bare;
    for (int j = 0; j < 3; ++j) {
      const ScbTerm t = random_term(n, rng, false);
      bare.push_back(t);
      bare.push_back(t.adjoint());
    }
    const std::vector<ScbTerm> gathered = gather_hermitian(bare);
    Matrix expect(std::size_t{1} << n, std::size_t{1} << n);
    for (const ScbTerm& t : bare) expect += t.bare_matrix();
    CHECK_NEAR(terms_matrix(gathered, n).max_abs_diff(expect), 0.0, 1e-12);
  }

  // pauli_string_as_term embeds a string as a Hermitian bare product.
  {
    const PauliString p = PauliString::parse("XZY");
    const ScbTerm t = pauli_string_as_term(p, 0.75);
    CHECK(t.is_valid_hamiltonian());
    CHECK_NEAR(t.hamiltonian_matrix().max_abs_diff(p.to_matrix() * cplx(0.75)),
               0.0, 1e-14);
  }

  return gecos::test::finish("test_conversion");
}
