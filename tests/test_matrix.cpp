// Dense linalg: the cache-blocked product must match a naive triple loop to
// within FMA-contraction noise, expm must be unaffected by the
// scratch-buffer reuse, norm2_est must track the exact spectral norm from
// eigh on random Hermitians, and the small helpers must hold up.
#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "linalg/expm.hpp"
#include "test_util.hpp"

using namespace gecos;

namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::mt19937& rng) {
  std::normal_distribution<double> g;
  Matrix m(r, c);
  for (auto& x : m.flat()) x = cplx(g(rng), g(rng));
  return m;
}

/// Reference product: naive ijk triple loop, accumulating in the same
/// ascending-k order as the blocked kernel. The sums are mathematically
/// identical; the only admissible deviation is FMA contraction noise from
/// the optimizer (a few ulp), hence the 1e-12 bound below instead of 0.
Matrix naive_mul(const Matrix& a, const Matrix& b) {
  Matrix r(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      cplx acc = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      r(i, j) = acc;
    }
  return r;
}

}  // namespace

int main() {
  std::mt19937 rng(12345);

  // Blocked multiply == naive multiply, exactly, across panel boundaries
  // (sizes straddling the 64-wide k-panel) and non-square shapes.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{33}, std::size_t{64}, std::size_t{65},
                        std::size_t{129}, std::size_t{200}}) {
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    CHECK_NEAR((a * b).max_abs_diff(naive_mul(a, b)), 0.0, 1e-12);
  }
  {
    const Matrix a = random_matrix(70, 130, rng);
    const Matrix b = random_matrix(130, 5, rng);
    CHECK_NEAR((a * b).max_abs_diff(naive_mul(a, b)), 0.0, 1e-12);
  }

  // mul_into reuses the output buffer (including a shape change) and keeps
  // producing the same result.
  {
    const Matrix a = random_matrix(65, 65, rng);
    const Matrix b = random_matrix(65, 65, rng);
    Matrix out = random_matrix(3, 4, rng);  // wrong shape: must be resized
    Matrix::mul_into(out, a, b);
    CHECK_NEAR(out.max_abs_diff(naive_mul(a, b)), 0.0, 1e-12);
    Matrix::mul_into(out, a, b);  // reuse path: same shape, no realloc
    CHECK_NEAR(out.max_abs_diff(naive_mul(a, b)), 0.0, 1e-12);
  }

  // add_scaled == operator+ with a scalar multiple.
  {
    const Matrix a = random_matrix(20, 20, rng);
    const Matrix b = random_matrix(20, 20, rng);
    Matrix lhs = a;
    lhs.add_scaled(b, cplx(0.5, -1.5));
    CHECK_NEAR(lhs.max_abs_diff(a + b * cplx(0.5, -1.5)), 0.0, 1e-14);
  }

  // expm: agrees with the exact Hermitian eigendecomposition path; the
  // scratch-buffer rewrite must not change the numerics.
  for (std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                        std::size_t{16}}) {
    const Matrix h = Matrix::random_hermitian(n, rng);
    const Matrix via_eig = expm_hermitian(h, 0.7);
    const Matrix via_taylor = expm(h * cplx(0.0, 0.7));
    CHECK_NEAR(via_eig.max_abs_diff(via_taylor), 0.0, 1e-10);
    CHECK(via_taylor.is_unitary(1e-9));
  }
  {
    // Known closed form: expm([[0, t], [-t, 0]]) is a rotation by t.
    const double t = 0.3;
    const Matrix r = expm(Matrix{{0, t}, {-t, 0}});
    CHECK_NEAR(r(0, 0) - cplx(std::cos(t)), 0.0, 1e-12);
    CHECK_NEAR(r(0, 1) - cplx(std::sin(t)), 0.0, 1e-12);
    // Scaling-and-squaring path: a norm well above the 0.5 threshold.
    const Matrix big = expm(Matrix{{0, 8.0}, {-8.0, 0}});
    CHECK_NEAR(big(0, 0) - cplx(std::cos(8.0)), 0.0, 1e-9);
  }

  // eigh reconstructs its input.
  {
    const std::size_t n = 12;
    const Matrix h = Matrix::random_hermitian(n, rng);
    const EigenSystem es = eigh(h);
    Matrix recon(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        cplx acc = 0;
        for (std::size_t k = 0; k < n; ++k)
          acc += es.eigenvectors(i, k) * es.eigenvalues[k] *
                 std::conj(es.eigenvectors(j, k));
        recon(i, j) = acc;
      }
    CHECK_NEAR(recon.max_abs_diff(h), 0.0, 1e-9);
    for (std::size_t k = 0; k + 1 < n; ++k)
      CHECK(es.eigenvalues[k] <= es.eigenvalues[k + 1]);
  }

  // norm2_est vs the exact spectral norm max|lambda| from eigh on random
  // Hermitians: power iteration on A^dagger A converges from below, so the
  // estimate must sit in [0.99 * sigma_max, sigma_max * (1 + 1e-12)] at a
  // generous iteration count, and the few-iteration default stays a sane
  // same-order estimate (it feeds step-size heuristics, not proofs).
  for (std::size_t n : {std::size_t{4}, std::size_t{16}, std::size_t{48}}) {
    const Matrix h = Matrix::random_hermitian(n, rng);
    const EigenSystem es = eigh(h);
    double sigma = 0.0;
    for (double e : es.eigenvalues) sigma = std::max(sigma, std::abs(e));
    const double est = h.norm2_est(200);
    CHECK(est <= sigma * (1.0 + 1e-12));
    CHECK(est >= 0.99 * sigma);
    const double quick = h.norm2_est();
    CHECK(quick <= sigma * (1.0 + 1e-12));
    CHECK(quick >= 0.5 * sigma);
  }

  // Small helpers.
  {
    const Matrix u = Matrix::random_unitary(8, rng);
    CHECK(u.is_unitary(1e-10));
    const Matrix s2 = sqrt_unitary_2x2(Matrix{{0, 1}, {1, 0}});
    CHECK_NEAR((s2 * s2).max_abs_diff(Matrix{{0, 1}, {1, 0}}), 0.0, 1e-12);
    const Matrix a = random_matrix(4, 4, rng);
    CHECK_NEAR(a.dagger().dagger().max_abs_diff(a), 0.0, 0.0);
    CHECK_NEAR(std::abs(a.trace() - (a(0, 0) + a(1, 1) + a(2, 2) + a(3, 3))),
               0.0, 1e-14);
    const Matrix k = Matrix::identity(2).kron(a);
    CHECK_EQ(k.rows(), std::size_t{8});
    CHECK_NEAR(k.block(0, 0, 4, 4).max_abs_diff(a), 0.0, 0.0);
  }

  return gecos::test::finish("test_matrix");
}
